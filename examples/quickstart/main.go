// Quickstart: deploy the paper's heavy-hitter task (List. 2) on an
// emulated spine-leaf fabric, drive traffic through it, and watch the
// seed detect the heavy flow, react locally with a TCAM rule, and
// report to its harvester.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"farm/internal/core"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/harvest"
	"farm/internal/netmodel"
	"farm/internal/seeder"
	"farm/internal/soil"
	"farm/internal/tasks"
)

func main() {
	// 1. An emulated data center: 2 spines, 4 leaves, 8 hosts per leaf.
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{
		Spines: 2, Leaves: 4, HostsPerLeaf: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	loop := engine.NewSerial()
	fab := fabric.New(topo, loop, fabric.Options{})

	// 2. The seeder — FARM's centralized control instance. It creates a
	// soil on every switch and owns placement optimization.
	sd := seeder.New(fab, seeder.Options{})

	// 3. Submit the HH task from the catalogue with a harvester that
	// logs reports and reacts by tightening the threshold.
	hhTask, err := tasks.ByName("hh")
	if err != nil {
		log.Fatal(err)
	}
	logic := harvest.FuncLogic{
		Message: func(ctx harvest.Context, from soil.SeedRef, v core.Value) {
			fmt.Printf("[%8v] harvester: %s reports heavy ports %s\n",
				ctx.Now(), from.Switch, core.FormatValue(v))
		},
	}
	err = sd.AddTask(seeder.TaskSpec{
		Name:      "hh",
		Source:    hhTask.Source,
		Machines:  hhTask.Machines,
		Externals: map[string]map[string]core.Value{"HH": {"threshold": int64(1_000_000)}},
		Harvester: logic,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %d HH seeds (one per switch):\n", len(sd.Placements()))
	for id, a := range sd.Placements() {
		fmt.Printf("  %-12s -> %-8s alloc=%v\n", id, topo.Switch(a.Switch).Name, a.Alloc)
	}

	// 4. Background load plus one elephant flow on leaf0 port 1.
	var leaf0 netmodel.SwitchID
	for _, sw := range topo.Switches() {
		if sw.Name == "leaf0" {
			leaf0 = sw.ID
		}
	}
	loop.Every(time.Millisecond, func() {
		_ = fab.Switch(leaf0).CreditPort(1, 0, 0, 200, 2_000_000) // 2 GB/s elephant
		_ = fab.Switch(leaf0).CreditPort(2, 0, 0, 10, 10_000)     // mouse
	})

	// 5. Run one simulated second.
	loop.RunFor(time.Second)

	// 6. The local reaction: the seed installed a QoS rule for port 1
	// without any centralized round trip.
	fmt.Println("\nTCAM rules installed by the seed on leaf0:")
	for _, r := range fab.Switch(leaf0).TCAM().Rules() {
		fmt.Printf("  prio=%d %s action=%s (by %s)\n", r.Priority, r.Filter, r.Action, r.Note)
	}
	h, _ := sd.Harvester("hh")
	fmt.Printf("\nharvester received %d reports in 1s of simulated time\n", len(h.History()))
}
