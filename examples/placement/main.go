// Placement optimization: co-deploy several Tab. I tasks, compare the
// Alg. 1 heuristic against the exact MILP on the same problem, then
// squeeze a switch and watch the seeder live-migrate a seed (state
// intact) to restore utility.
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
	"farm/internal/placement"
	"farm/internal/seeder"
	"farm/internal/tasks"
)

func main() {
	// Part 1: heuristic vs MILP on a randomized multi-task problem.
	in := placement.RandomScenario(placement.ScenarioConfig{
		Switches: 6, Seeds: 24, Tasks: 6, Seed: 42,
	})
	h, err := placement.Heuristic(in)
	if err != nil {
		log.Fatal(err)
	}
	m, err := placement.MILP(in, placement.MILPOptions{Timeout: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("placement: 24 seeds, 6 task types, 6 switches")
	fmt.Printf("  Alg. 1 heuristic: utility %.1f in %v (%d tasks dropped)\n",
		h.Utility, h.Runtime.Round(time.Microsecond), len(h.DroppedTasks))
	fmt.Printf("  exact MILP:       utility %.1f in %v (%d tasks dropped)\n",
		m.Utility, m.Runtime.Round(time.Millisecond), len(m.DroppedTasks))
	fmt.Printf("  heuristic reaches %.0f%% of the exact optimum, %.0fx faster\n\n",
		100*h.Utility/m.Utility, m.Runtime.Seconds()/h.Runtime.Seconds())

	// Part 2: live migration in a running deployment.
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{Spines: 1, Leaves: 3, HostsPerLeaf: 4})
	if err != nil {
		log.Fatal(err)
	}
	loop := engine.NewSerial()
	fab := fabric.New(topo, loop, fabric.Options{})
	sd := seeder.New(fab, seeder.Options{MigrationCost: 0.1})

	// A movable entropy-estimation task (place any -> one seed, free to
	// sit on the emptiest switch).
	ent, err := tasks.ByName("entropy")
	if err != nil {
		log.Fatal(err)
	}
	movable := `
machine Mover {
  place any;
  long ticks;
  time tick = 10;
  state s {
    util (res) { if (res.vCPU >= 2) then { return res.vCPU * 10; } }
    when (tick as t) do { ticks = ticks + 1; }
  }
}
`
	_ = ent
	if err := sd.AddTask(seeder.TaskSpec{Name: "mover", Source: movable}); err != nil {
		log.Fatal(err)
	}
	loop.RunFor(500 * time.Millisecond)
	home, _ := sd.SeedSwitch("mover/Mover")
	fmt.Printf("movable seed placed on %s, accumulating state...\n", topo.Switch(home).Name)

	// Pin a heavyweight task onto the mover's switch: 3 of its 4 vCPUs.
	pinned := fmt.Sprintf(`
machine Pinner {
  place all "%s";
  time tick = 100;
  state s {
    util (res) { if (res.vCPU >= 3) then { return 1000; } }
    when (tick as t) do { }
  }
}
`, topo.Switch(home).Name)
	fmt.Printf("pinning a 3-vCPU task to %s -> resource pressure\n", topo.Switch(home).Name)
	if err := sd.AddTask(seeder.TaskSpec{Name: "pinner", Source: pinned}); err != nil {
		log.Fatal(err)
	}
	loop.RunFor(500 * time.Millisecond)

	now, _ := sd.SeedSwitch("mover/Mover")
	fmt.Printf("after re-optimization: mover on %s (%d live migration)\n",
		topo.Switch(now).Name, sd.Migrations())
	if v, ok := sd.Soil(now).SeedVar("mover/Mover", "ticks"); ok {
		fmt.Printf("migrated seed kept its state: ticks = %v (still counting)\n", v)
	}

	// Final placement map.
	fmt.Println("\nfinal placements:")
	pls := sd.Placements()
	ids := make([]string, 0, len(pls))
	for id := range pls {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		a := pls[id]
		fmt.Printf("  %-16s -> %-8s utility %.1f\n", id, topo.Switch(a.Switch).Name, a.Utility)
	}
}
