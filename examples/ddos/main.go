// DDoS mitigation: the management side of M&M. A DDoS task's seeds
// probe SYN packets on every switch; the switch nearest the attack
// detects it, installs a drop rule locally (quenching the flood without
// any controller round trip), and reports the victim to the harvester,
// which coordinates network-wide blocking and later lifts it.
//
//	go run ./examples/ddos
//	go run ./examples/ddos -parallel 4   # same output, sharded executor
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"farm/internal/core"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/harvest"
	"farm/internal/netmodel"
	"farm/internal/seeder"
	"farm/internal/soil"
	"farm/internal/tasks"
	"farm/internal/traffic"
)

func main() {
	parallel := flag.Int("parallel", 0,
		"run on the sharded executor with this many workers (0 = serial; output is identical)")
	flag.Parse()
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{
		Spines: 2, Leaves: 4, HostsPerLeaf: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	var loop engine.Scheduler
	if *parallel > 1 {
		x := engine.NewSharded(engine.ShardedOptions{
			Shards:    topo.NumSwitches(),
			Workers:   *parallel,
			Lookahead: fabric.Options{}.MinCrossLatency(),
		})
		defer x.Stop()
		loop = x
	} else {
		loop = engine.NewSerial()
	}
	fab := fabric.New(topo, loop, fabric.Options{})
	sd := seeder.New(fab, seeder.Options{})

	// Harvester: collect attack reports; after the attack subsides,
	// broadcast an unblock so seeds lift their drop rules.
	var victims []string
	logic := harvest.FuncLogic{
		Message: func(ctx harvest.Context, from soil.SeedRef, v core.Value) {
			victim, ok := v.(string)
			if !ok {
				return
			}
			victims = append(victims, victim)
			fmt.Printf("[%8v] harvester: %s reports DDoS on %s -> coordinating block\n",
				ctx.Now(), from.Switch, victim)
		},
	}
	d, err := tasks.ByName("ddos")
	if err != nil {
		log.Fatal(err)
	}
	if err := sd.AddTask(seeder.TaskSpec{
		Name: "ddos", Source: d.Source, Machines: d.Machines,
		Externals: d.DefaultExternals,
		Harvester: logic,
	}); err != nil {
		log.Fatal(err)
	}

	// Launch a 6-source SYN flood against a host on leaf0.
	gen := traffic.NewGenerator(fab, 1)
	victim := fabric.HostIP(0, 0)
	fmt.Printf("launching SYN flood against %v\n", victim)
	stopAttack := gen.SYNFlood(victim, 6, 8000)

	loop.RunFor(2 * time.Second)
	stopAttack()

	fmt.Printf("\nattack reports: %d (victim %s)\n", len(victims), victims[0])
	fmt.Printf("packets dropped in-fabric by local reactions: %d\n", fab.DroppedInFabric())

	// Show where the mitigation rules landed.
	fmt.Println("drop rules installed by seeds:")
	for _, sw := range topo.Switches() {
		for _, r := range fab.Switch(sw.ID).TCAM().Rules() {
			fmt.Printf("  %-8s prio=%d %s -> %s\n", sw.Name, r.Priority, r.Filter, r.Action)
		}
	}

	// The harvester lifts the block network-wide once the attack ends.
	fmt.Println("\nattack over: harvester broadcasts unblock")
	if err := sd.BroadcastToTask("ddos", "DDoS", victims[0]); err != nil {
		log.Fatal(err)
	}
	loop.RunFor(100 * time.Millisecond)
	rules := 0
	for _, sw := range topo.Switches() {
		rules += len(fab.Switch(sw.ID).TCAM().Rules())
	}
	fmt.Printf("remaining mitigation rules after unblock: %d\n", rules)
}
