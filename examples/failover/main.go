// Failover: the fault-tolerance extension. Deploy the sketch-based HH
// task (bounded-memory, another §VIII extension), kill a switch, and
// watch the seeder exclude it from the placement model and redeploy the
// movable monitoring capacity on the survivors.
//
//	go run ./examples/failover
//	go run ./examples/failover -parallel 4   # same output, sharded executor
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"farm/internal/core"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/harvest"
	"farm/internal/netmodel"
	"farm/internal/seeder"
	"farm/internal/soil"
	"farm/internal/tasks"
	"farm/internal/traffic"
)

func main() {
	parallel := flag.Int("parallel", 0,
		"run on the sharded executor with this many workers (0 = serial; output is identical)")
	flag.Parse()
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{
		Spines: 2, Leaves: 3, HostsPerLeaf: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	var loop engine.Scheduler
	if *parallel > 1 {
		x := engine.NewSharded(engine.ShardedOptions{
			Shards:    topo.NumSwitches(),
			Workers:   *parallel,
			Lookahead: fabric.Options{}.MinCrossLatency(),
		})
		defer x.Stop()
		loop = x
	} else {
		loop = engine.NewSerial()
	}
	fab := fabric.New(topo, loop, fabric.Options{})
	sd := seeder.New(fab, seeder.Options{})

	// A movable analysis task (place any) plus the pinned sketch-HH
	// detectors (place all).
	movable := `
machine Analyzer {
  place any;
  time tick = 50;
  long windows;
  state s {
    util (res) { if (res.vCPU >= 2) then { return res.vCPU * 5; } }
    when (tick as t) do { windows = windows + 1; }
  }
}
`
	if err := sd.AddTask(seeder.TaskSpec{Name: "analyzer", Source: movable}); err != nil {
		log.Fatal(err)
	}
	sk, err := tasks.ByName("hh-sketch")
	if err != nil {
		log.Fatal(err)
	}
	detections := 0
	if err := sd.AddTask(seeder.TaskSpec{
		Name: "hh-sketch", Source: sk.Source, Machines: sk.Machines,
		Externals: sk.DefaultExternals,
		Harvester: harvest.FuncLogic{
			Message: func(ctx harvest.Context, from soil.SeedRef, v core.Value) {
				detections++
				fmt.Printf("[%10v] %s flags heavy destination %s\n", ctx.Now(), from.Switch, core.FormatValue(v))
			},
		},
	}); err != nil {
		log.Fatal(err)
	}

	gen := traffic.NewGenerator(fab, 11)
	stop := gen.StartFlow(traffic.FlowSpec{
		Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
		SrcPort: 7, DstPort: 80, Proto: 6, PacketSize: 1200, Rate: 1500,
	})
	defer stop()

	printPlacement := func(hdr string) {
		fmt.Println(hdr)
		pls := sd.Placements()
		ids := make([]string, 0, len(pls))
		for id := range pls {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("  %-28s -> %s\n", id, topo.Switch(pls[id].Switch).Name)
		}
	}

	loop.RunFor(time.Second)
	printPlacement("initial placement:")
	home, _ := sd.SeedSwitch("analyzer/Analyzer")
	fmt.Printf("\n*** switch %s fails ***\n\n", topo.Switch(home).Name)
	dropped, err := sd.FailSwitch(home)
	if err != nil {
		log.Fatal(err)
	}
	loop.RunFor(time.Second)
	printPlacement("after failover:")
	fmt.Printf("\ntasks dropped entirely: %v (pinned sketch seed on the dead switch takes its task down, C1)\n", dropped)
	now, ok := sd.SeedSwitch("analyzer/Analyzer")
	if ok {
		fmt.Printf("analyzer relocated to %s and keeps running\n", topo.Switch(now).Name)
	}
	fmt.Printf("detections so far: %d\n", detections)

	fmt.Printf("\n*** switch %s recovers ***\n", topo.Switch(home).Name)
	if err := sd.RecoverSwitch(home); err != nil {
		log.Fatal(err)
	}
	loop.RunFor(500 * time.Millisecond)
	printPlacement("after recovery (optimizer may migrate back):")
}
