// Multitask: run several Tab. I tasks side-by-side on the same fabric
// and observe the soil's polling aggregation at work — tasks sharing a
// polling subject cost the PCIe bus one request stream, not one per
// task (§II-B-b, §IV-B's aggregation benefits).
//
//	go run ./examples/multitask
//	go run ./examples/multitask -parallel 4   # same output, sharded executor
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
	"farm/internal/seeder"
	"farm/internal/tasks"
	"farm/internal/traffic"
)

func main() {
	parallel := flag.Int("parallel", 0,
		"run on the sharded executor with this many workers (0 = serial; output is identical)")
	flag.Parse()
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{
		Spines: 2, Leaves: 4, HostsPerLeaf: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	var loop engine.Scheduler
	if *parallel > 1 {
		x := engine.NewSharded(engine.ShardedOptions{
			Shards:    topo.NumSwitches(),
			Workers:   *parallel,
			Lookahead: fabric.Options{}.MinCrossLatency(),
		})
		defer x.Stop()
		loop = x
	} else {
		loop = engine.NewSerial()
	}
	fab := fabric.New(topo, loop, fabric.Options{})
	sd := seeder.New(fab, seeder.Options{})

	// Co-deploy five catalogue tasks. hh, hhh, link-failure, and
	// traffic-change all poll `port ANY` — the soil aggregates them.
	names := []string{"hh", "hhh", "link-failure", "traffic-change", "ddos"}
	for _, name := range names {
		d, err := tasks.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		spec := seeder.TaskSpec{
			Name: d.Name, Source: d.Source, Machines: d.Machines,
			Externals: d.DefaultExternals,
		}
		if d.NewHarvester != nil {
			spec.Harvester = d.NewHarvester()
		}
		if err := sd.AddTask(spec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deployed %-16s (%s)\n", d.Name, d.Description)
	}
	fmt.Printf("\n%d seeds placed across %d switches\n", len(sd.Placements()), topo.NumSwitches())

	// Mixed workload: background flows + a heavy hitter.
	gen := traffic.NewGenerator(fab, 99)
	for i := 0; i < 6; i++ {
		stop := gen.StartFlow(traffic.FlowSpec{
			Src: fabric.HostIP(i%4, i), Dst: fabric.HostIP((i+1)%4, i),
			SrcPort: uint16(2000 + i), DstPort: 80, Proto: 6,
			PacketSize: 800, Rate: 400,
		})
		defer stop()
	}
	w := traffic.NewBulkWorkload(fab, traffic.BulkConfig{
		Tick: 10 * time.Millisecond, HeavyRatio: 0.1, Seed: 3,
	})
	defer w.Stop()

	loop.RunFor(2 * time.Second)

	// The aggregation scoreboard: polls delivered > polls issued means
	// one ASIC read served several tasks.
	fmt.Println("\npolling aggregation per switch (issued -> delivered):")
	ids := topo.SwitchIDs()
	sort.Slice(ids, func(i, j int) bool { return topo.Switch(ids[i]).Name < topo.Switch(ids[j]).Name })
	var totIssued, totDelivered uint64
	for _, id := range ids {
		s := sd.Soil(id)
		totIssued += s.PollsIssued()
		totDelivered += s.PollsDelivered()
		fmt.Printf("  %-8s %6d -> %6d (%d seeds)\n",
			topo.Switch(id).Name, s.PollsIssued(), s.PollsDelivered(), s.NumSeeds())
	}
	fmt.Printf("fabric-wide: %d ASIC polls served %d seed deliveries (%.1fx sharing)\n",
		totIssued, totDelivered, float64(totDelivered)/float64(totIssued))

	// What the harvesters learned.
	fmt.Println("\nharvester summaries:")
	for _, name := range names {
		if h, ok := sd.Harvester(name); ok {
			fmt.Printf("  %-16s %d reports\n", name, len(h.History()))
		}
	}
}
