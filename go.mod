module farm

go 1.22
