// farm-fleetd is the long-lived FARM fleet daemon: it boots an emulated
// data-center fabric, runs background traffic, keeps an active/standby
// pair of control replicas over the seeder, and exposes two operator
// surfaces against the live fabric —
//
//   - an HTTP API (-http) with /healthz, /metrics, /tasks, /failover,
//     /drain for monitoring and orchestration, and
//   - the length-prefixed TCP RPC (-rpc) that farmctl's
//     submit/retire/status client mode speaks.
//
// Tasks come from the built-in Tab. I catalogue and go through the full
// compile → analyze → place → install pipeline of the seeder, with the
// warm-start incremental replan on every change. SIGINT/SIGTERM drains
// and stops the service, then self-checks for goroutine leaks.
//
// Examples:
//
//	farm-fleetd                          # 2×4 spine-leaf, default ports
//	farm-fleetd -fattree 4               # k=4 fat-tree fabric
//	farm-fleetd -leaves 8 -traffic=false # bigger fabric, no synthetic load
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"farm/internal/fleet"
)

func main() {
	fattree := flag.Int("fattree", 0, "build a k-ary fat-tree fabric (0 = spine-leaf)")
	spines := flag.Int("spines", 2, "spine switches (spine-leaf only)")
	leaves := flag.Int("leaves", 4, "leaf switches (spine-leaf only)")
	hosts := flag.Int("hosts", 8, "hosts per leaf (spine-leaf only)")
	httpAddr := flag.String("http", "127.0.0.1:7343", "HTTP operator API address (empty = off)")
	rpcAddr := flag.String("rpc", "127.0.0.1:7344", "TCP RPC address (empty = off)")
	traffic := flag.Bool("traffic", true, "run the synthetic background traffic cocktail")
	trafficSeed := flag.Int64("traffic-seed", 1, "background traffic RNG seed")
	hbInterval := flag.Duration("hb-interval", 50*time.Millisecond, "leader heartbeat interval (engine time)")
	hbTimeout := flag.Duration("hb-timeout", 0, "heartbeat timeout before standby takeover (0 = 5× interval)")
	parallel := flag.Int("placement-parallel", 0, "parallel placement LP workers (0 = auto)")
	reopt := flag.Duration("reoptimize", 0, "periodic full-replan interval (0 = off)")
	flag.Parse()

	cfg := fleet.Config{
		FatTreeK:           *fattree,
		Spines:             *spines,
		Leaves:             *leaves,
		HostsPerLeaf:       *hosts,
		Traffic:            *traffic,
		TrafficSeed:        *trafficSeed,
		HeartbeatInterval:  *hbInterval,
		HeartbeatTimeout:   *hbTimeout,
		PlacementParallel:  *parallel,
		ReoptimizeInterval: *reopt,
		HTTPAddr:           *httpAddr,
		RPCAddr:            *rpcAddr,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}

	// Register the signal watcher before taking the goroutine baseline:
	// signal.Notify lazily starts a watcher goroutine that (by design)
	// never exits, and the leak check below must not count it.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	time.Sleep(10 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	svc, err := fleet.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
	if err := svc.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
	fmt.Printf("fleetd: up — http=%s rpc=%s fabric=%s\n",
		svc.HTTPAddr(), svc.RPCAddr(), svc.FabricDesc())

	got := <-sig
	fmt.Printf("fleetd: %v — draining and stopping\n", got)
	signal.Stop(sig)

	svc.Drain()
	if err := svc.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetd: stop:", err)
		os.Exit(1)
	}

	// Goroutine-leak self-check: everything the service started must be
	// gone. Allow a few settle retries for netpoll/GC helpers to unwind.
	leaked := 0
	for i := 0; i < 50; i++ {
		leaked = runtime.NumGoroutine() - baseline
		if leaked <= 0 {
			fmt.Println("fleetd: shutdown clean")
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "fleetd: %d goroutine(s) leaked after shutdown\n", leaked)
	buf := make([]byte, 1<<20)
	os.Stderr.Write(buf[:runtime.Stack(buf, true)])
	os.Exit(1)
}
