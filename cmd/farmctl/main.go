// farmctl is the operator CLI: compile Almanac sources, inspect the
// static analysis the seeder would perform (placement directives,
// utility polynomials, polling subjects), export the XML wire format,
// and run a task from the built-in catalogue on an emulated fabric.
//
// Usage:
//
//	farmctl compile  <file.alm>           # parse + compile + report
//	farmctl analyze  <file.alm> [machine] # placement/utility/poll analysis
//	farmctl xml      <file.alm> [machine] # emit the XML wire format
//	farmctl fmt      <file.alm>           # reprint in canonical form
//	farmctl tasks                         # list the Tab. I catalogue
//	farmctl run <task> [-leaves N] [-seconds S]
//	farmctl builtins                      # runtime library functions
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"farm/internal/almanac"
	"farm/internal/core"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/harvest"
	"farm/internal/netmodel"
	"farm/internal/seeder"
	"farm/internal/soil"
	"farm/internal/tasks"
	"farm/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "compile":
		err = cmdCompile(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "xml":
		err = cmdXML(os.Args[2:])
	case "fmt":
		err = cmdFmt(os.Args[2:])
	case "tasks":
		err = cmdTasks()
	case "run":
		err = cmdRun(os.Args[2:])
	case "builtins":
		for _, n := range core.BuiltinNames() {
			fmt.Println(n)
		}
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "farmctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: farmctl <compile|analyze|xml|fmt|tasks|run|builtins> ...`)
}

func loadProgram(path string) (*almanac.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return almanac.Parse(string(data))
}

func pickMachine(prog *almanac.Program, args []string) (string, error) {
	if len(args) > 0 {
		return args[0], nil
	}
	if len(prog.Machines) == 0 {
		return "", fmt.Errorf("source declares no machines")
	}
	return prog.Machines[0].Name, nil
}

func cmdCompile(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("compile needs a source file")
	}
	prog, err := loadProgram(args[0])
	if err != nil {
		return err
	}
	cms, err := almanac.Compile(prog)
	if err != nil {
		return err
	}
	for _, cm := range cms {
		fmt.Printf("machine %s: %d states (initial %s), %d vars (%d external), %d triggers, %d placements\n",
			cm.Name, len(cm.States), cm.InitialState, len(cm.Vars), len(cm.ExternalVars()), len(cm.Triggers), len(cm.Placements))
	}
	fmt.Printf("ok: %d machine(s), %d function(s), %d struct(s)\n",
		len(cms), len(prog.Funcs), len(prog.Structs))
	return nil
}

func cmdAnalyze(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("analyze needs a source file")
	}
	prog, err := loadProgram(args[0])
	if err != nil {
		return err
	}
	name, err := pickMachine(prog, args[1:])
	if err != nil {
		return err
	}
	cm, err := almanac.CompileMachine(prog, name)
	if err != nil {
		return err
	}
	fmt.Printf("machine %s\n", cm.Name)
	for _, warn := range almanac.Lint(cm) {
		fmt.Printf("WARNING: %s\n", warn)
	}
	fmt.Println("placement directives:")
	for _, pl := range cm.Placements {
		if pl.HasRange {
			fmt.Printf("  place %s %s range %s ...\n", pl.Quant, pl.Anchor, pl.RangeOp)
		} else if len(pl.Switches) > 0 {
			fmt.Printf("  place %s on %d named switches\n", pl.Quant, len(pl.Switches))
		} else {
			fmt.Printf("  place %s (all switches)\n", pl.Quant)
		}
	}
	fmt.Println("per-state utility (C^s >= 0 -> u^s):")
	for _, st := range cm.States {
		u, err := almanac.AnalyzeUtility(st.Util, nil)
		if err != nil {
			fmt.Printf("  %s: needs deployment-time constants (%v)\n", st.Name, err)
			continue
		}
		for i, c := range u {
			fmt.Printf("  %s case %d:\n", st.Name, i)
			for _, con := range c.Constraints {
				fmt.Printf("    constraint: %s >= 0\n", con)
			}
			fmt.Printf("    utility:    %s\n", c.Util)
		}
	}
	fmt.Println("trigger variables:")
	pis, err := almanac.AnalyzePolls(cm, nil)
	if err != nil {
		return err
	}
	for _, pi := range pis {
		fmt.Printf("  %s (%s): rate/s = %s", pi.Name, pi.TType, pi.RatePerSec)
		if pi.What.Kind == almanac.ConstFilter {
			if key, err := soil.SubjectKey(pi.What); err == nil {
				fmt.Printf(", subject = %s", key)
			}
		}
		fmt.Println()
	}
	return nil
}

// cmdFmt reprints a source file in canonical form.
func cmdFmt(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("fmt needs a source file")
	}
	prog, err := loadProgram(args[0])
	if err != nil {
		return err
	}
	fmt.Print(almanac.Print(prog))
	return nil
}

func cmdXML(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("xml needs a source file")
	}
	prog, err := loadProgram(args[0])
	if err != nil {
		return err
	}
	name, err := pickMachine(prog, args[1:])
	if err != nil {
		return err
	}
	cm, err := almanac.CompileMachine(prog, name)
	if err != nil {
		return err
	}
	data, err := almanac.EncodeXML(cm)
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func cmdTasks() error {
	for _, d := range tasks.All() {
		fmt.Printf("  %-16s %s\n", d.Name, d.Description)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	leaves := fs.Int("leaves", 4, "leaf switches")
	seconds := fs.Int("seconds", 2, "simulated seconds")
	// Accept the task name anywhere among the flags.
	taskName := ""
	var flagArgs []string
	for _, a := range args {
		if taskName == "" && len(a) > 0 && a[0] != '-' {
			taskName = a
			continue
		}
		flagArgs = append(flagArgs, a)
	}
	if err := fs.Parse(flagArgs); err != nil {
		return err
	}
	if taskName == "" {
		return fmt.Errorf("run needs a task name (see farmctl tasks)")
	}
	d, err := tasks.ByName(taskName)
	if err != nil {
		return err
	}
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{
		Spines: 2, Leaves: *leaves, HostsPerLeaf: 8,
	})
	if err != nil {
		return err
	}
	loop := engine.NewSerial()
	fab := fabric.New(topo, loop, fabric.Options{})
	sd := seeder.New(fab, seeder.Options{})
	reports := 0
	spec := seeder.TaskSpec{
		Name: d.Name, Source: d.Source, Machines: d.Machines,
		Externals: d.DefaultExternals,
		Harvester: harvest.FuncLogic{
			Message: func(ctx harvest.Context, from soil.SeedRef, v core.Value) {
				reports++
				if reports <= 10 {
					fmt.Printf("[%10v] %s: %s\n", ctx.Now(), from.Switch, core.FormatValue(v))
				}
			},
		},
	}
	if err := sd.AddTask(spec); err != nil {
		return err
	}
	fmt.Printf("running %s on %d switches with mixed traffic for %ds (simulated)\n",
		d.Name, topo.NumSwitches(), *seconds)

	// A workload cocktail so most tasks have something to see.
	gen := traffic.NewGenerator(fab, time.Now().UnixNano()%1000)
	stops := []func(){
		gen.SYNFlood(fabric.HostIP(0, 0), 8, 4000),
		gen.PortScan(fabric.HostIP(1, 0), fabric.HostIP(0, 1), 1000),
		gen.SuperSpreader(fabric.HostIP(2%(*leaves), 0), 16, 2000),
		gen.SSHBruteForce(fabric.HostIP(1, 2), fabric.HostIP(0, 2), 200),
		gen.DNSReflection(fabric.HostIP(0, 3), 4, 1000),
		gen.Slowloris(fabric.HostIP(0, 4), 12, 50),
	}
	defer func() {
		for _, s := range stops {
			s()
		}
	}()
	w := traffic.NewBulkWorkload(fab, traffic.BulkConfig{
		Tick: 10 * time.Millisecond, HeavyRatio: 0.1, Churn: time.Second, Seed: 5,
	})
	defer w.Stop()

	loop.RunFor(time.Duration(*seconds) * time.Second)
	fmt.Printf("done: %d harvester reports, %d packets dropped by local reactions\n",
		reports, fab.DroppedInFabric())
	return nil
}
