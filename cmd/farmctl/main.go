// farmctl is the operator CLI: compile Almanac sources, inspect the
// static analysis the seeder would perform (placement directives,
// utility polynomials, polling subjects), export the XML wire format,
// run a task from the built-in catalogue on an emulated fabric, and —
// in client mode — drive a running farm-fleetd over its RPC port.
//
// Usage:
//
//	farmctl compile  <file.alm> [-dump]   # parse + compile + report (-dump: bytecode disassembly)
//	farmctl analyze  <file.alm> [machine] # placement/utility/poll analysis
//	farmctl xml      <file.alm> [machine] # emit the XML wire format
//	farmctl fmt      <file.alm>           # reprint in canonical form
//	farmctl tasks                         # list the Tab. I catalogue
//	farmctl run <task> [-leaves N] [-seconds S] [-seed N]
//	farmctl builtins                      # runtime library functions
//	farmctl submit <task> [-addr HOST:PORT] [-wait DUR]
//	farmctl retire <task> [-addr HOST:PORT] [-wait DUR]
//	farmctl status [-addr HOST:PORT]
//
// Client-mode commands talk to a fleetd started with -rpc; the default
// address matches fleetd's default RPC port.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"farm/internal/fleet"
)

// defaultRPCAddr matches farm-fleetd's -rpc default.
const defaultRPCAddr = "127.0.0.1:7344"

// command is one farmctl subcommand: every entry parses its own flags
// with a flag.NewFlagSet and runs against the parsed remainder.
type command struct {
	name    string
	summary string
	run     func(args []string) error
}

var commands []command

func init() {
	commands = []command{
		{"compile", "parse + compile an Almanac source, report per-machine stats", cmdCompile},
		{"analyze", "placement/utility/poll analysis for one machine", cmdAnalyze},
		{"xml", "emit one machine's XML wire format", cmdXML},
		{"fmt", "reprint an Almanac source in canonical form", cmdFmt},
		{"tasks", "list the Tab. I catalogue", cmdTasks},
		{"run", "run a catalogue task on a one-shot emulated fabric", cmdRun},
		{"builtins", "list runtime library functions", cmdBuiltins},
		{"submit", "deploy a catalogue task on a running fleetd", cmdSubmit},
		{"retire", "undeploy a task from a running fleetd", cmdRetire},
		{"status", "show a running fleetd's task/placement status", cmdStatus},
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	for _, c := range commands {
		if c.name == os.Args[1] {
			if err := c.run(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "farmctl:", err)
				os.Exit(1)
			}
			return
		}
	}
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: farmctl <command> [flags]")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-9s %s\n", c.name, c.summary)
	}
}

// newFlagSet builds the per-command FlagSet all subcommands share.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: farmctl %s [flags] [args]\n", name)
		fs.PrintDefaults()
	}
	return fs
}

// parseWithPositionals parses flags while collecting up to max leading
// non-flag arguments, so `farmctl run hh -leaves 6` and
// `farmctl run -leaves 6 hh` both work.
func parseWithPositionals(fs *flag.FlagSet, args []string, max int) ([]string, error) {
	var pos, flagArgs []string
	for _, a := range args {
		if len(pos) < max && len(a) > 0 && a[0] != '-' {
			pos = append(pos, a)
			continue
		}
		flagArgs = append(flagArgs, a)
	}
	if err := fs.Parse(flagArgs); err != nil {
		return nil, err
	}
	pos = append(pos, fs.Args()...)
	return pos, nil
}

func cmdCompile(args []string) error {
	fs := newFlagSet("compile")
	dump := fs.Bool("dump", false, "disassemble the lowered bytecode for every machine")
	pos, err := parseWithPositionals(fs, args, 1)
	if err != nil {
		return err
	}
	if len(pos) < 1 {
		return fmt.Errorf("compile needs a source file")
	}
	return fleet.CompileReport(os.Stdout, pos[0], *dump)
}

func cmdAnalyze(args []string) error {
	fs := newFlagSet("analyze")
	pos, err := parseWithPositionals(fs, args, 2)
	if err != nil {
		return err
	}
	if len(pos) < 1 {
		return fmt.Errorf("analyze needs a source file")
	}
	machine := ""
	if len(pos) > 1 {
		machine = pos[1]
	}
	return fleet.AnalyzeReport(os.Stdout, pos[0], machine)
}

func cmdXML(args []string) error {
	fs := newFlagSet("xml")
	pos, err := parseWithPositionals(fs, args, 2)
	if err != nil {
		return err
	}
	if len(pos) < 1 {
		return fmt.Errorf("xml needs a source file")
	}
	machine := ""
	if len(pos) > 1 {
		machine = pos[1]
	}
	return fleet.XMLReport(os.Stdout, pos[0], machine)
}

func cmdFmt(args []string) error {
	fs := newFlagSet("fmt")
	pos, err := parseWithPositionals(fs, args, 1)
	if err != nil {
		return err
	}
	if len(pos) < 1 {
		return fmt.Errorf("fmt needs a source file")
	}
	return fleet.FormatSource(os.Stdout, pos[0])
}

func cmdTasks(args []string) error {
	fs := newFlagSet("tasks")
	if _, err := parseWithPositionals(fs, args, 0); err != nil {
		return err
	}
	fleet.ListCatalogue(os.Stdout)
	return nil
}

func cmdBuiltins(args []string) error {
	fs := newFlagSet("builtins")
	if _, err := parseWithPositionals(fs, args, 0); err != nil {
		return err
	}
	fleet.ListBuiltins(os.Stdout)
	return nil
}

func cmdRun(args []string) error {
	fs := newFlagSet("run")
	leaves := fs.Int("leaves", 4, "leaf switches")
	seconds := fs.Int("seconds", 2, "simulated seconds")
	seed := fs.Int64("seed", time.Now().UnixNano()%1000, "traffic seed")
	pos, err := parseWithPositionals(fs, args, 1)
	if err != nil {
		return err
	}
	if len(pos) < 1 {
		return fmt.Errorf("run needs a task name (see farmctl tasks)")
	}
	return fleet.RunTask(os.Stdout, pos[0], fleet.RunOptions{
		Leaves: *leaves, Seconds: *seconds, Seed: *seed,
	})
}

// dialFleet connects to a running fleetd's RPC port.
func dialFleet(addr string) (*fleet.Client, error) {
	c, err := fleet.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("dial fleetd at %s: %w (is farm-fleetd running with -rpc?)", addr, err)
	}
	return c, nil
}

func cmdSubmit(args []string) error {
	fs := newFlagSet("submit")
	addr := fs.String("addr", defaultRPCAddr, "fleetd RPC address")
	wait := fs.Duration("wait", 5*time.Second, "retry window across leadership gaps")
	pos, err := parseWithPositionals(fs, args, 1)
	if err != nil {
		return err
	}
	if len(pos) < 1 {
		return fmt.Errorf("submit needs a task name (see farmctl tasks)")
	}
	c, err := dialFleet(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.SubmitWait(pos[0], *wait); err != nil {
		return err
	}
	fmt.Printf("submitted %s\n", pos[0])
	return nil
}

func cmdRetire(args []string) error {
	fs := newFlagSet("retire")
	addr := fs.String("addr", defaultRPCAddr, "fleetd RPC address")
	wait := fs.Duration("wait", 5*time.Second, "retry window across leadership gaps")
	pos, err := parseWithPositionals(fs, args, 1)
	if err != nil {
		return err
	}
	if len(pos) < 1 {
		return fmt.Errorf("retire needs a task name")
	}
	c, err := dialFleet(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.RetireWait(pos[0], *wait); err != nil {
		return err
	}
	fmt.Printf("retired %s\n", pos[0])
	return nil
}

func cmdStatus(args []string) error {
	fs := newFlagSet("status")
	addr := fs.String("addr", defaultRPCAddr, "fleetd RPC address")
	if _, err := parseWithPositionals(fs, args, 0); err != nil {
		return err
	}
	c, err := dialFleet(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	st, err := c.Status()
	if err != nil {
		return err
	}
	fmt.Printf("leader: %s (term %d)  engine time: %v  takeovers: %d  draining: %v\n",
		st.Leader, st.Term, st.Now, st.Takeovers, st.Draining)
	fmt.Printf("tasks: %d deployed, %d migrations, %d harvester reports\n",
		len(st.Tasks), st.Migrations, st.HarvestReports)
	for _, t := range st.Tasks {
		fmt.Printf("  %-16s seeds=%d\n", t.Name, t.Seeds)
	}
	if len(st.FailedSwitches) > 0 {
		fmt.Printf("failed switches: %v\n", st.FailedSwitches)
	}
	return nil
}
