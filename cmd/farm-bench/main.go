// farm-bench regenerates the tables and figures of the FARM paper's
// evaluation (§VI) on the emulated data center.
//
// Usage:
//
//	farm-bench -exp all            # every experiment at quick scale
//	farm-bench -exp tab4           # one experiment
//	farm-bench -exp fig7 -full     # paper-scale grid (heuristic only; slow)
//	farm-bench -exp fig4 -parallel 4   # FARM runs on the sharded executor
//	farm-bench -list
//
// Experiments: tab1 tab4 tab5 fig4 fig5 fig6 fig7 fig8 fig9 fig10
// ablation engine-scale engine-loop packet-path workload-scale
// placement-scale transport-scale seed-path fleet-soak.
//
// -json prints the selected experiment's result as machine-readable
// JSON instead of a table (supported by packet-path, workload-scale,
// placement-scale, transport-scale, seed-path, and engine-loop; CI
// archives `farm-bench -exp packet-path -json` as BENCH_packetpath.json,
// `-exp workload-scale -json` as BENCH_workload.json, `-exp
// placement-scale -json` as BENCH_placement.json, `-exp transport-scale
// -json` as BENCH_transport.json, `-exp seed-path -json` as
// BENCH_seedpath.json, and `-exp engine-loop -json` as
// BENCH_engineloop.json).
//
// engine-loop is the scheduler queue's A/B gate: the attack cocktail
// plus per-switch polling seeds run on every engine × queue-backend
// combination (serial/sharded × container-heap/timing-wheel); traffic
// digests, delivery counters, and central-link bytes must be
// byte-identical — the wheel may change wall clock and allocation
// rate, never event order. Any divergence exits non-zero.
//
// seed-path is the bytecode VM's A/B gate: every catalogue task runs
// at fabric scale once on the AST interpreter and once on the
// compiled back end under identical traffic; harvester report
// streams, final seed snapshots, and delivery counters are folded
// into digests that must match, and the wall-clock ratio is the
// fleet-level speedup. Any divergence exits non-zero.
//
// -parallel N selects the sharded conservative-parallel event executor
// with N workers for the experiments that support it (all of fig4 —
// the FARM runs and, now that their agents are per-switch, the sFlow
// and Sonata baselines — plus engine-scale; output is byte-identical
// to serial — see docs/engine.md and docs/workloads.md). Each
// experiment prints a wall-clock elapsed line, so serial vs. parallel
// runtimes can be compared directly. Parallel runs of engine-scale and
// fig4 additionally print par-avail and/or the shard-imbalance
// (max/mean central-lane load) outside the determinism-compared table.
//
// workload-scale is its own A/B harness: it drives the full attack
// cocktail once on the serial engine and once per sharded worker
// count, compares per-ingress-leaf emission digests, and exits
// non-zero on any divergence.
//
// transport-scale is the wire-path A/B: the same deterministic record
// stream driven through the TCP transport unbatched (one record per
// round trip) and batched (CallBatch frames), sweeping to 10k seeds,
// comparing per-seed response digests, and exiting non-zero on any
// divergence — batching must change throughput, never bytes.
//
// placement-scale replays a placement churn script (cold start, task
// arrival/departure, switch failure, steady state) under serial,
// parallel, warm-start, and from-scratch solves, compares placement
// digests within each step, and exits non-zero on any divergence —
// the runtime gate on the optimizer's determinism contract.
//
// -cpuprofile/-memprofile write pprof profiles covering the selected
// experiments; combined with the engine's per-phase pprof labels
// (select/run/merge) the executor's own overhead is directly visible in
// `go tool pprof -tags`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"farm/internal/experiments"
	"farm/internal/fleet"
)

type experiment struct {
	name string
	desc string
	run  func(full bool) error
}

// parallelWorkers is the -parallel flag: worker count for the sharded
// executor, 0 meaning the serial engine.
var parallelWorkers int

// profiling is true when a -cpuprofile or -memprofile destination is
// set; sharded runs then tag executor phases with pprof labels.
var profiling bool

// jsonOut is the -json flag: emit machine-readable results and no
// elapsed lines, so output can be piped straight into a file.
var jsonOut bool

func engineConfig() experiments.EngineConfig {
	return experiments.EngineConfig{Workers: parallelWorkers, ProfileLabels: profiling}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	full := flag.Bool("full", false, "paper-scale parameters (slow)")
	list := flag.Bool("list", false, "list experiments")
	flag.IntVar(&parallelWorkers, "parallel", 0,
		"run supporting experiments on the sharded executor with this many workers (0 = serial)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments")
	memProfile := flag.String("memprofile", "", "write a heap profile after the selected experiments")
	flag.BoolVar(&jsonOut, "json", false, "emit machine-readable JSON (supported by packet-path and workload-scale)")
	flag.Parse()
	profiling = *cpuProfile != "" || *memProfile != ""

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	exps := []experiment{
		{"tab1", "Tab. I: use cases implemented in Almanac", runTab1},
		{"tab4", "Tab. 4: HH detection time across systems", runTab4},
		{"tab5", "Tab. V: feature matrix of generic M&M solutions", runTab5},
		{"fig4", "Fig. 4: network load toward central components", runFig4},
		{"fig5", "Fig. 5: switch CPU load vs monitored flows", runFig5},
		{"fig6", "Fig. 6: CPU load vs collocated seeds (HH/ML)", runFig6},
		{"fig7", "Fig. 7: placement utility and runtime", runFig7},
		{"fig8", "Fig. 8: PCIe bus congestion and aggregation", runFig8},
		{"fig9", "Fig. 9: soil CPU, threads vs processes", runFig9},
		{"fig10", "Fig. 10: seed<->soil transport latency", runFig10},
		{"ablation", "Ablations: Alg. 1 passes, migration cost", runAblation},
		{"engine-scale", "Engine scaling: Fig. 4 pipeline on a 500-switch fat-tree", runEngineScale},
		{"engine-loop", "Engine loop: timing wheel vs container/heap scheduler queue (digest A/B)", runEngineLoop},
		{"packet-path", "Packet path: linear classifier vs bucketed index + flow cache", runPacketPath},
		{"workload-scale", "Workload scale: serial vs sharded traffic generation (digest A/B)", runWorkloadScale},
		{"placement-scale", "Placement scale: serial vs parallel vs warm-start solves (digest A/B)", runPlacementScale},
		{"transport-scale", "Transport scale: unbatched vs batched wire path to 10k seeds (digest A/B)", runTransportScale},
		{"seed-path", "Seed path: AST interpreter vs stack VM vs register VM over the task catalogue (digest A/B)", runSeedPath},
		{"fleet-soak", "Fleet soak: concurrent RPC clients + forced failover on a live fleetd", runFleetSoak},
	}
	if *list {
		for _, e := range exps {
			fmt.Printf("  %-12s %s\n", e.name, e.desc)
		}
		return
	}
	ran := 0
	for _, e := range exps {
		if *exp != "all" && !strings.EqualFold(*exp, e.name) {
			continue
		}
		ran++
		start := time.Now()
		if err := e.run(*full); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		if !jsonOut {
			fmt.Printf("(%s finished in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
		os.Exit(1)
	}
}

func runTab1(bool) error {
	fmt.Print(experiments.Tab1().Table().Render())
	return nil
}

func runTab5(bool) error {
	fmt.Print(experiments.Tab5().Render())
	return nil
}

func runTab4(bool) error {
	res, err := experiments.Tab4(experiments.Tab4Config{})
	if err != nil {
		return err
	}
	fmt.Print(res.Table().Render())
	return nil
}

func runFig4(full bool) error {
	cfg := experiments.Fig4Config{Engine: engineConfig()}
	if !full {
		cfg.PortCounts = []int{48, 96, 240, 480}
		cfg.Duration = 8 * time.Second
		cfg.Churn = 3 * time.Second
	}
	res, err := experiments.Fig4(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table().Render())
	fmt.Print(res.ParallelStats())
	return nil
}

func runFig5(full bool) error {
	cfg := experiments.Fig5Config{}
	if !full {
		cfg.FlowCounts = []int{100, 1000, 5000, 10000}
		cfg.Duration = 2 * time.Second
	}
	res, err := experiments.Fig5(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table().Render())
	return nil
}

func runFig6(full bool) error {
	cfg := experiments.Fig6Config{}
	if !full {
		cfg.HHSeedCounts = []int{10, 40, 100}
		cfg.MLSeedCounts = []int{10, 50, 150, 250}
		cfg.Duration = time.Second
	}
	res, err := experiments.Fig6(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table().Render())
	return nil
}

func runFig7(full bool) error {
	cfg := experiments.Fig7Config{}
	if full {
		// The paper's grid shape: 1000..10200 seeds on up to 1040
		// switches. The exact solver cannot follow; the heuristic can.
		cfg.SeedCounts = []int{1000, 4000, 7000, 10200}
		cfg.SwitchesPerSeed = 1040.0 / 10200.0
		cfg.Runs = 3
		cfg.SkipMILPAbove = 400
	}
	res, err := experiments.Fig7(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table().Render())
	return nil
}

func runFig8(bool) error {
	res, err := experiments.Fig8(experiments.Fig8Config{})
	if err != nil {
		return err
	}
	fmt.Print(res.Table().Render())
	return nil
}

func runFig9(bool) error {
	res, err := experiments.Fig9(experiments.Fig9Config{})
	if err != nil {
		return err
	}
	fmt.Print(res.Table().Render())
	return nil
}

func runFig10(full bool) error {
	cfg := experiments.Fig10Config{}
	if !full {
		cfg.CallsPerSeed = 500
	}
	res, err := experiments.Fig10(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table().Render())
	return nil
}

func runEngineScale(full bool) error {
	cfg := experiments.EngineScaleConfig{Engine: engineConfig()}
	if !full {
		cfg.Tasks = 2
		cfg.Duration = 2 * time.Second
	}
	res, err := experiments.EngineScale(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table().Render())
	fmt.Print(res.ParallelStats())
	return nil
}

func runEngineLoop(full bool) error {
	cfg := experiments.EngineLoopConfig{}
	if full {
		cfg.Leaves = 24
		cfg.HostsPerLeaf = 16
		cfg.Tasks = 6
		cfg.Duration = 5 * time.Second
	}
	// Like workload-scale, a divergence returns the measured result AND
	// an error: render first, then fail the process.
	res, err := experiments.EngineLoop(cfg)
	if res != nil {
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if encErr := enc.Encode(res); encErr != nil {
				return encErr
			}
		} else {
			fmt.Print(res.Table().Render())
		}
	}
	return err
}

func runPacketPath(full bool) error {
	cfg := experiments.PacketPathConfig{}
	if full {
		cfg.Packets = 2_000_000
		cfg.Rules = 256
	}
	res, err := experiments.PacketPath(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Print(res.Table().Render())
	return nil
}

func runWorkloadScale(full bool) error {
	cfg := experiments.WorkloadScaleConfig{}
	if full {
		cfg.Leaves = 24
		cfg.HostsPerLeaf = 16
		cfg.Duration = 5 * time.Second
		cfg.Workers = []int{2, 4, 8, 16}
	}
	// The divergence gate: WorkloadScale returns its result AND a
	// non-nil error if any sharded run's digests differ from serial.
	// Render what we measured either way, then fail the process.
	res, err := experiments.WorkloadScale(cfg)
	if res != nil {
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if encErr := enc.Encode(res); encErr != nil {
				return encErr
			}
		} else {
			fmt.Print(res.Table().Render())
		}
	}
	return err
}

func runPlacementScale(full bool) error {
	cfg := experiments.PlacementScaleConfig{}
	if full {
		// The paper-scale Fig. 7 point: 10200 seeds on 1040 switches.
		cfg.Switches = 1040
		cfg.Seeds = 10200
		cfg.Tasks = 60
	}
	// Like workload-scale, a divergence returns the measured result AND
	// an error: render first, then fail the process.
	res, err := experiments.PlacementScale(cfg)
	if res != nil {
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if encErr := enc.Encode(res); encErr != nil {
				return encErr
			}
		} else {
			fmt.Print(res.Table().Render())
		}
	}
	return err
}

func runTransportScale(full bool) error {
	cfg := experiments.TransportScaleConfig{}
	if full {
		cfg.RecordsPerSeed = 16
		cfg.Conns = 8
	}
	// Like workload-scale, a divergence returns the measured result AND
	// an error: render first, then fail the process.
	res, err := experiments.TransportScale(cfg)
	if res != nil {
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if encErr := enc.Encode(res); encErr != nil {
				return encErr
			}
		} else {
			fmt.Print(res.Table().Render())
		}
	}
	return err
}

func runSeedPath(full bool) error {
	cfg := experiments.SeedPathConfig{}
	if full {
		cfg.Leaves = 6
		cfg.Millis = 4000
	}
	// Like workload-scale, a divergence returns the measured result AND
	// an error: render first, then fail the process.
	res, err := experiments.SeedPath(cfg)
	if res != nil {
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if encErr := enc.Encode(res); encErr != nil {
				return encErr
			}
		} else {
			fmt.Print(res.Table().Render())
		}
	}
	return err
}

// runFleetSoak is the daemon's survivability gate (docs/fleetd.md): N
// concurrent RPC clients churn the catalogue against a live fleet
// service while the active control replica is killed mid-run. Unlike
// the other experiments it exercises the wall-clock engine, so elapsed
// time is real time.
func runFleetSoak(full bool) error {
	cfg := fleet.SoakConfig{
		Service: fleet.Config{
			Spines: 2, Leaves: 3, HostsPerLeaf: 4,
			Traffic:           true,
			HeartbeatInterval: 10 * time.Millisecond,
		},
		Clients: 8,
		Rounds:  3,
	}
	if full {
		cfg.Service.Leaves = 8
		cfg.Service.HostsPerLeaf = 8
		cfg.Clients = 16
		cfg.Rounds = 6
	}
	res, err := fleet.Soak(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(res); encErr != nil {
			return encErr
		}
	} else {
		fmt.Print(res)
	}
	if !res.Passed() {
		return fmt.Errorf("fleet-soak failed: lost=%v unexpected=%v takeovers=%d",
			res.Lost, res.Unexpected, res.Takeovers)
	}
	return nil
}

func runAblation(bool) error {
	res, err := experiments.Ablation(experiments.AblationConfig{})
	if err != nil {
		return err
	}
	fmt.Print(res.Passes.Render())
	fmt.Println()
	fmt.Print(res.Migration.Render())
	return nil
}
