package experiments

import (
	"testing"
	"time"
)

// TestFig4Deterministic renders a small Fig. 4 three times — twice on
// the serial engine, once on the sharded executor — and requires all
// three tables to be byte-identical. This is the regression gate for
// the engine's determinism contract: parallel execution must not change
// any reported number, only the wall-clock time it takes to produce it.
func TestFig4Deterministic(t *testing.T) {
	render := func(eng EngineConfig) string {
		res, err := Fig4(Fig4Config{
			PortCounts: []int{48, 96},
			Duration:   2 * time.Second,
			Churn:      time.Second,
			Engine:     eng,
		})
		if err != nil {
			t.Fatalf("Fig4: %v", err)
		}
		return res.Table().Render()
	}

	serial1 := render(EngineConfig{})
	serial2 := render(EngineConfig{})
	if serial1 != serial2 {
		t.Fatalf("serial runs diverged:\n--- run 1\n%s\n--- run 2\n%s", serial1, serial2)
	}
	sharded := render(EngineConfig{Workers: 4})
	if sharded != serial1 {
		t.Fatalf("sharded run diverged from serial:\n--- serial\n%s\n--- sharded\n%s", serial1, sharded)
	}
}
