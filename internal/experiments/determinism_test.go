package experiments

import (
	"testing"
	"time"
)

// TestFig4Deterministic renders a small Fig. 4 three times — twice on
// the serial engine, once on the sharded executor — and requires all
// three tables to be byte-identical. This is the regression gate for
// the engine's determinism contract: parallel execution must not change
// any reported number, only the wall-clock time it takes to produce it.
func TestFig4Deterministic(t *testing.T) {
	render := func(eng EngineConfig) string {
		res, err := Fig4(Fig4Config{
			PortCounts: []int{48, 96},
			Duration:   2 * time.Second,
			Churn:      time.Second,
			Engine:     eng,
		})
		if err != nil {
			t.Fatalf("Fig4: %v", err)
		}
		return res.Table().Render()
	}

	serial1 := render(EngineConfig{})
	serial2 := render(EngineConfig{})
	if serial1 != serial2 {
		t.Fatalf("serial runs diverged:\n--- run 1\n%s\n--- run 2\n%s", serial1, serial2)
	}
	sharded := render(EngineConfig{Workers: 4})
	if sharded != serial1 {
		t.Fatalf("sharded run diverged from serial:\n--- serial\n%s\n--- sharded\n%s", serial1, sharded)
	}
}

// TestEngineScaleDeterministic is the large-fabric determinism gate the
// executor optimizations are held to: the Fig. 4-style pipeline on the
// full 500-switch fat-tree, rendered on the serial engine and on the
// sharded executor (with the worker pool forced on, so the concurrent
// path is exercised even on single-CPU CI machines), must produce
// byte-identical tables.
func TestEngineScaleDeterministic(t *testing.T) {
	render := func(eng EngineConfig) string {
		res, err := EngineScale(EngineScaleConfig{
			Tasks:    1,
			Duration: 500 * time.Millisecond,
			Engine:   eng,
		})
		if err != nil {
			t.Fatalf("EngineScale: %v", err)
		}
		if res.Switches < 500 {
			t.Fatalf("fabric has %d switches, want >= 500", res.Switches)
		}
		return res.Table().Render()
	}

	serial := render(EngineConfig{})
	sharded := render(EngineConfig{Workers: 4, ForceWorkers: true})
	if sharded != serial {
		t.Fatalf("sharded run diverged from serial:\n--- serial\n%s\n--- sharded\n%s", serial, sharded)
	}
}
