package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
	"farm/internal/traffic"
)

// WorkloadScaleConfig parameterizes the sharded-workload A/B
// experiment: the full attack-scenario cocktail driven once on the
// serial engine (the reference) and once per configured worker count on
// the sharded engine, comparing per-switch emission digests. Any
// divergence is an error — this is the runtime gate on the generator's
// determinism contract, the same one TestGeneratorDigestAcrossEngines
// pins in CI.
type WorkloadScaleConfig struct {
	// Spines/Leaves/HostsPerLeaf shape the fabric; defaults 2/12/8
	// (96 host ports).
	Spines, Leaves, HostsPerLeaf int
	// Duration is the virtual time driven per run; 0 means 2 s. One
	// scenario is stopped at Duration/2 to exercise mid-run
	// cancellation.
	Duration time.Duration
	// Workers are the sharded worker counts to A/B against serial; nil
	// means {4, 16}.
	Workers []int
	// Seed feeds the generator; 0 means 11.
	Seed int64
	// ForceWorkers forces the worker pool on even on a single-CPU
	// process (the race-detector tests set it).
	ForceWorkers bool
}

// WorkloadScaleRun is one engine's measurement.
type WorkloadScaleRun struct {
	Label   string `json:"label"`
	Workers int    `json:"workers"` // 0 = serial
	// Digest folds the per-switch emission digests in switch order —
	// byte-identical across engines by contract.
	Digest string `json:"digest"`
	// Switches is the number of ingress leaves that emitted traffic.
	Switches  int    `json:"switches_with_traffic"`
	Delivered uint64 `json:"packets_delivered"`
	// CentralShare is the fraction of all executed events that ran on
	// shard 0 (the central shard). The serial engine is a single shard,
	// so its share is 1 by construction; the sharded runs show how far
	// the workload path actually spread out.
	CentralShare float64 `json:"central_share"`
	// ParAvail is mean runnable shards per epoch (sharded runs only).
	ParAvail float64 `json:"par_avail"`
	// ElapsedMS is wall-clock time for the run (not virtual time).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Consistent reports whether this run's digests matched the serial
	// reference (vacuously true for the reference itself).
	Consistent bool `json:"consistent"`
}

// WorkloadScaleResult is the full A/B outcome.
type WorkloadScaleResult struct {
	Ports      int                `json:"ports"`
	Duration   time.Duration      `json:"duration_virtual_ns"`
	GoMaxProcs int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Runs       []WorkloadScaleRun `json:"runs"`
	digests    []map[netmodel.SwitchID]uint64
}

// workloadMix starts the Tab. I attack cocktail plus background flows
// on every leaf, returning the stop for the scenario cancelled mid-run
// and the stops for everything else.
func workloadMix(fab *fabric.Fabric, gen *traffic.Generator, leaves int) (stopMid func(), stops []func()) {
	victim := fabric.HostIP(0, 0)
	stopMid = gen.PortScan(fabric.HostIP(1%leaves, 0), victim, 2000)
	stops = []func(){
		gen.SYNFlood(victim, 12, 6000),
		gen.SuperSpreader(fabric.HostIP(2%leaves, 1), 16, 3000),
		gen.DNSReflection(victim, 6, 3000),
		gen.SSHBruteForce(fabric.HostIP(3%leaves, 2), fabric.HostIP(0, 1), 500),
		gen.Slowloris(fabric.HostIP(4%leaves, 3), 16, 50),
	}
	for i := 0; i < leaves; i++ {
		stops = append(stops, gen.StartFlow(traffic.FlowSpec{
			Src: fabric.HostIP(i, 4), Dst: fabric.HostIP((i+1)%leaves, 4),
			SrcPort: uint16(10000 + i), DstPort: 80, PacketSize: 400, Rate: 800,
		}))
	}
	return stopMid, stops
}

// WorkloadScale runs the generator A/B and errors on any digest
// divergence between serial and sharded execution.
func WorkloadScale(cfg WorkloadScaleConfig) (*WorkloadScaleResult, error) {
	if cfg.Spines == 0 {
		cfg.Spines = 2
	}
	if cfg.Leaves == 0 {
		cfg.Leaves = 12
	}
	if cfg.HostsPerLeaf == 0 {
		cfg.HostsPerLeaf = 8
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Workers == nil {
		cfg.Workers = []int{4, 16}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	res := &WorkloadScaleResult{
		Ports:      cfg.Leaves * cfg.HostsPerLeaf,
		Duration:   cfg.Duration,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	runOne := func(label string, workers int) (WorkloadScaleRun, map[netmodel.SwitchID]uint64, error) {
		eng := EngineConfig{Workers: workers, ForceWorkers: cfg.ForceWorkers}
		fab, loop, stop, err := newFabricOn(eng, cfg.Spines, cfg.Leaves, cfg.HostsPerLeaf)
		if err != nil {
			return WorkloadScaleRun{}, nil, err
		}
		defer stop()
		gen := traffic.NewGenerator(fab, cfg.Seed)
		stopMid, stops := workloadMix(fab, gen, cfg.Leaves)
		start := time.Now()
		loop.RunFor(cfg.Duration / 2)
		stopMid() // mid-run cancellation must not perturb determinism
		loop.RunFor(cfg.Duration - cfg.Duration/2)
		elapsed := time.Since(start)
		for _, s := range stops {
			s()
		}
		digests := gen.PerSwitchDigest()
		run := WorkloadScaleRun{
			Label:     label,
			Workers:   workers,
			Digest:    combineDigests(digests),
			Switches:  len(digests),
			Delivered: fab.Delivered(),
			ElapsedMS: float64(elapsed.Nanoseconds()) / 1e6,
		}
		if x, ok := loop.(*engine.Sharded); ok {
			counts := x.ShardEventCounts()
			var total, central uint64
			for i, c := range counts {
				total += c
				if i == fabric.CentralShard {
					central = c
				}
			}
			if total > 0 {
				run.CentralShare = float64(central) / float64(total)
			}
			if epochs, shardRuns := x.EpochStats(); epochs > 0 {
				run.ParAvail = float64(shardRuns) / float64(epochs)
			}
		} else {
			run.CentralShare = 1 // single shard: everything is central
		}
		return run, digests, nil
	}

	ref, refDigests, err := runOne("serial", 0)
	if err != nil {
		return nil, err
	}
	ref.Consistent = true
	res.Runs = append(res.Runs, ref)
	res.digests = append(res.digests, refDigests)

	var firstDivergence error
	for _, workers := range cfg.Workers {
		run, digests, err := runOne(fmt.Sprintf("sharded-%dw", workers), workers)
		if err != nil {
			return nil, err
		}
		run.Consistent = digestsEqual(refDigests, digests) && run.Delivered == ref.Delivered
		if !run.Consistent && firstDivergence == nil {
			firstDivergence = fmt.Errorf(
				"workload-scale: sharded run with %d workers diverged from serial (digest %s vs %s, delivered %d vs %d)",
				workers, run.Digest, ref.Digest, run.Delivered, ref.Delivered)
		}
		res.Runs = append(res.Runs, run)
		res.digests = append(res.digests, digests)
	}
	return res, firstDivergence
}

// combineDigests folds the per-switch digests into one value in switch
// order, for compact display and comparison.
func combineDigests(d map[netmodel.SwitchID]uint64) string {
	ids := make([]int, 0, len(d))
	for id := range d {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	h := uint64(14695981039346656037)
	for _, id := range ids {
		for _, v := range []uint64{uint64(id), d[netmodel.SwitchID(id)]} {
			for i := 0; i < 8; i++ {
				h ^= v & 0xff
				h *= 1099511628211
				v >>= 8
			}
		}
	}
	return fmt.Sprintf("%016x", h)
}

func digestsEqual(a, b map[netmodel.SwitchID]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for id, h := range a {
		if b[id] != h {
			return false
		}
	}
	return true
}

// Table renders the result. CentralShare, ParAvail, and ElapsedMS vary
// by engine and host by design (they are the point of the experiment),
// so this table is not a cross-engine determinism artifact — the Digest
// column is.
func (r *WorkloadScaleResult) Table() *Table {
	t := &Table{
		Title:   "Workload scale: serial vs sharded traffic generation (digest A/B)",
		Columns: []string{"digest", "leaves", "delivered", "central-share", "par-avail", "wall ms"},
	}
	for _, run := range r.Runs {
		t.Rows = append(t.Rows, Row{
			Label: run.Label,
			Values: []string{
				run.Digest,
				fmt.Sprintf("%d", run.Switches),
				fmt.Sprintf("%d", run.Delivered),
				fmt.Sprintf("%.3f", run.CentralShare),
				fmtFloat(run.ParAvail),
				fmtFloat(run.ElapsedMS),
			},
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d host ports, %s virtual per run; one scenario stopped mid-run", r.Ports, r.Duration),
		"digest = per-ingress-leaf emission digests folded in switch order; identical across engines by contract",
		"central-share = events executed on shard 0 / all events (serial is one shard, so 1.000)")
	return t
}
