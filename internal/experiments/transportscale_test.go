package experiments

import "testing"

// TestTransportScaleConsistent runs a miniature sweep and requires the
// batched and unbatched digests to agree — the same gate farm-bench
// enforces at 10k seeds, sized for CI.
func TestTransportScaleConsistent(t *testing.T) {
	res, err := TransportScale(TransportScaleConfig{
		SeedCounts:     []int{5, 40},
		RecordsPerSeed: 6,
		RecordBytes:    64,
		Batch:          4,
		Conns:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(res.Runs))
	}
	for i := 0; i < len(res.Runs); i += 2 {
		ref, run := res.Runs[i], res.Runs[i+1]
		if !run.Consistent {
			t.Fatalf("batched run %q inconsistent with %q", run.Label, ref.Label)
		}
		if run.Digest != ref.Digest {
			t.Fatalf("digest %s vs %s at %d seeds", run.Digest, ref.Digest, ref.Seeds)
		}
		if ref.Batch != 1 || run.Batch != 4 {
			t.Fatalf("batch sizes = %d/%d, want 1/4", ref.Batch, run.Batch)
		}
		if want := uint64(ref.Seeds) * 6; ref.Records != want || run.Records != want {
			t.Fatalf("records = %d/%d, want %d", ref.Records, run.Records, want)
		}
	}
	// Distinct seed counts must produce distinct digests (the fold keys
	// on seed index, so a truncated sweep cannot masquerade as a full
	// one).
	if res.Runs[0].Digest == res.Runs[2].Digest {
		t.Fatal("digests identical across different seed counts")
	}
}

// TestTransportScaleRejectsTinyRecords pins the header floor.
func TestTransportScaleRejectsTinyRecords(t *testing.T) {
	if _, err := TransportScale(TransportScaleConfig{RecordBytes: 4}); err == nil {
		t.Fatal("RecordBytes below the record header accepted")
	}
}
