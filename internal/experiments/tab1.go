package experiments

import (
	"fmt"
	"strings"

	"farm/internal/tasks"
)

// Tab1Row is one use case with its Almanac line counts.
type Tab1Row struct {
	Name        string
	Description string
	SeedLoC     int
	Machines    int
}

// Tab1Result is the reproduced Tab. I (use cases implemented in FARM).
type Tab1Result struct {
	Rows []Tab1Row
}

// Tab1 counts the non-blank, non-comment Almanac lines of every
// catalogued use case (the paper's Tab. I reports seed/harvester LoC;
// our harvester logic is Go closures, so only seed LoC is tabulated).
func Tab1() *Tab1Result {
	res := &Tab1Result{}
	for _, d := range tasks.All() {
		loc := 0
		for _, ln := range strings.Split(d.Source, "\n") {
			ln = strings.TrimSpace(ln)
			if ln != "" && !strings.HasPrefix(ln, "//") {
				loc++
			}
		}
		res.Rows = append(res.Rows, Tab1Row{
			Name:        d.Name,
			Description: d.Description,
			SeedLoC:     loc,
			Machines:    len(d.Machines),
		})
	}
	return res
}

// Table renders the result.
func (r *Tab1Result) Table() *Table {
	t := &Table{
		Title:   "Tab. I: M&M use cases implemented in Almanac",
		Columns: []string{"LoC", "description"},
	}
	total := 0
	for _, row := range r.Rows {
		total += row.SeedLoC
		t.Rows = append(t.Rows, Row{Label: row.Name, Values: []string{
			fmt.Sprint(row.SeedLoC), row.Description,
		}})
	}
	t.Rows = append(t.Rows, Row{Label: "total", Values: []string{fmt.Sprint(total), ""}})
	return t
}
