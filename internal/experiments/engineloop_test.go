package experiments

import (
	"testing"
	"time"
)

// TestEngineLoopConsistent is the in-test form of the farm-bench
// engine-loop gate: all four engine × queue-backend combinations must
// reproduce the serial container/heap reference digest exactly.
func TestEngineLoopConsistent(t *testing.T) {
	res, err := EngineLoop(EngineLoopConfig{
		Leaves:       8,
		HostsPerLeaf: 4,
		Tasks:        2,
		Duration:     600 * time.Millisecond,
		ForceWorkers: true,
	})
	if err != nil {
		t.Fatalf("EngineLoop: %v", err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(res.Runs))
	}
	for _, run := range res.Runs {
		if !run.Consistent {
			t.Errorf("%s diverged from the serial-heap reference (digest %s vs %s)",
				run.Label, run.Digest, res.Runs[0].Digest)
		}
		if run.Delivered == 0 || run.CentralBytes == 0 {
			t.Errorf("%s: empty run (delivered %d, central bytes %d)", run.Label, run.Delivered, run.CentralBytes)
		}
	}
}
