package experiments

import (
	"fmt"
	"time"

	"farm/internal/dataplane"
	"farm/internal/engine"
	"farm/internal/metrics"
)

// Fig5Config parameterizes the CPU-load-vs-flows comparison.
type Fig5Config struct {
	// FlowCounts is the x-axis (monitored flow rules); nil means the
	// paper's sweep 100..10000.
	FlowCounts []int
	// Accuracy is the monitoring period both systems must deliver
	// (the paper uses 10 ms).
	Accuracy time.Duration
	// Duration is the measured window; 0 means 5 s.
	Duration time.Duration
	// TrafficPPS is the line rate the sFlow agent samples from; 0 means
	// 1e6 packets/s (a loaded 10G port mix).
	TrafficPPS float64
	// SampleOneInN is sFlow's sampling ratio; 0 means 64.
	SampleOneInN int
}

// Fig5Point is one (system, flows) CPU-load measurement.
type Fig5Point struct {
	Flows int
	Load  float64 // 1.0 = one core
}

// Fig5Result is the reproduced Fig. 5.
type Fig5Result struct {
	FARM  []Fig5Point
	SFlow []Fig5Point
}

// Fig5 measures switch CPU load while FARM and sFlow monitor an
// increasing number of flow rules at equal (10 ms) accuracy. This is a
// switch-local microbenchmark on the emulated ASIC and cost model: FARM
// polls the rules' counters and analyzes the deltas on the switch;
// sFlow samples packets at line rate and forwards everything (plus a
// periodic counter export), doing no local filtering (§VI-B-c).
func Fig5(cfg Fig5Config) (*Fig5Result, error) {
	if cfg.FlowCounts == nil {
		cfg.FlowCounts = []int{100, 500, 1000, 2500, 5000, 10000}
	}
	if cfg.Accuracy == 0 {
		cfg.Accuracy = 10 * time.Millisecond
	}
	if cfg.Duration == 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.TrafficPPS == 0 {
		cfg.TrafficPPS = 2e6
	}
	if cfg.SampleOneInN == 0 {
		cfg.SampleOneInN = 8
	}
	res := &Fig5Result{}
	for _, flows := range cfg.FlowCounts {
		farm, err := fig5FARM(flows, cfg)
		if err != nil {
			return nil, err
		}
		res.FARM = append(res.FARM, Fig5Point{Flows: flows, Load: farm})
		sf := fig5SFlow(flows, cfg)
		res.SFlow = append(res.SFlow, Fig5Point{Flows: flows, Load: sf})
	}
	return res, nil
}

// Table renders the result.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Title:   "Fig. 5: switch CPU load vs. monitored flows (10 ms accuracy)",
		Columns: []string{"flows", "CPU load"},
	}
	for _, p := range r.FARM {
		t.Rows = append(t.Rows, Row{Label: "FARM", Values: []string{fmt.Sprint(p.Flows), fmtPercent(p.Load)}})
	}
	for _, p := range r.SFlow {
		t.Rows = append(t.Rows, Row{Label: "sFlow", Values: []string{fmt.Sprint(p.Flows), fmtPercent(p.Load)}})
	}
	t.Notes = append(t.Notes,
		"FARM load grows with analyzed flows; sFlow's line-rate sampling keeps it flat and high")
	return t
}

// fig5CompareCost is the per-flow delta+threshold comparison a FARM
// seed performs in place of exporting the record.
const fig5CompareCost = 100 * time.Nanosecond

// fig5FARM: a seed polls `flows` rule counters every Accuracy period and
// analyzes the deltas locally (threshold compare per rule).
func fig5FARM(flows int, cfg Fig5Config) (float64, error) {
	loop := engine.NewSerial()
	sw := dataplane.NewSwitch("bench", 8, flows+8)
	bus := dataplane.NewBus(loop, 256*dataplane.DefaultPCIePollBytesPerSec)
	cpu := metrics.NewCPUMeter(loop, 4)
	costs := metrics.DefaultCostModel()

	filters := make([]dataplane.Filter, flows)
	for i := range filters {
		filters[i] = dataplane.Filter{DstPort: uint16(i%60000 + 1)}
		if err := sw.TCAM().AddRule(dataplane.Rule{Priority: 1, Filter: filters[i], Action: dataplane.ActCount}); err != nil {
			return 0, fmt.Errorf("experiments: fig5: %w", err)
		}
	}
	// Background traffic credits the rules.
	loop.Every(cfg.Accuracy, func() {
		for i := range filters {
			sw.CreditRule(filters[i], 10, 10_000)
		}
	})
	prev := make([]dataplane.RuleStats, flows)
	loop.Every(cfg.Accuracy, func() {
		// The soil aggregates the seed's rule polls into one bulk bus
		// transfer per interval (§II-B-b); analysis happens in place.
		cpu.Charge(costs.PollIssue + costs.HandlerDispatch)
		bus.Request(16+48*len(filters), func(time.Duration) {
			for i := range filters {
				st, ok := sw.TCAM().Stats(filters[i])
				if !ok {
					continue
				}
				cpu.Charge(costs.PollPerRecord + fig5CompareCost)
				prev[i] = st
			}
		})
	})
	loop.RunFor(200 * time.Millisecond)
	snap := cpu.Snapshot()
	loop.RunFor(cfg.Duration)
	return cpu.LoadSince(snap), nil
}

// fig5SFlow: the agent samples 1-in-N packets of line-rate traffic
// (cost independent of the flow count) and exports every rule counter
// unfiltered each period (serialize + ship, no analysis).
func fig5SFlow(flows int, cfg Fig5Config) float64 {
	loop := engine.NewSerial()
	cpu := metrics.NewCPUMeter(loop, 4)
	costs := metrics.DefaultCostModel()
	samplesPerSec := cfg.TrafficPPS / float64(cfg.SampleOneInN)

	// Sampling+forwarding, charged in 1 ms batches.
	loop.Every(time.Millisecond, func() {
		n := samplesPerSec / 1000
		cpu.Charge(time.Duration(n * float64(costs.SampleProcess+128*costs.SerializePerByte)))
	})
	// Periodic per-port counter export (independent of the flow count:
	// sFlow exports interface counters, it does not track flows).
	loop.Every(cfg.Accuracy, func() {
		cpu.Charge(costs.PollIssue)
		cpu.Charge(48 * (costs.PollPerRecord + 88*costs.SerializePerByte))
	})
	loop.RunFor(200 * time.Millisecond)
	snap := cpu.Snapshot()
	loop.RunFor(cfg.Duration)
	return cpu.LoadSince(snap)
}
