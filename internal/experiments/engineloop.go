package experiments

import (
	"fmt"
	"runtime"
	"time"

	"farm/internal/core"
	"farm/internal/engine"
	"farm/internal/netmodel"
	"farm/internal/seeder"
	"farm/internal/traffic"
)

// EngineLoopConfig parameterizes the scheduler-queue A/B experiment:
// the same pipeline — the Tab. I attack cocktail plus staggered
// per-switch HH monitoring tasks, i.e. both the one-shot-heavy traffic
// path and the ticker-heavy polling path — driven on every engine ×
// queue-backend combination, comparing digests against the serial
// container/heap reference. The timing wheel must change wall clock and
// allocation rate, never event order: any digest divergence is an
// error and a non-zero farm-bench exit.
type EngineLoopConfig struct {
	// Spines/Leaves/HostsPerLeaf shape the fabric; defaults 2/12/8
	// (96 host ports, 14 switches).
	Spines, Leaves, HostsPerLeaf int
	// Tasks is the number of staggered HH monitoring tasks; each places
	// one polling seed on every switch. Default 3.
	Tasks int
	// Duration is the virtual time driven per run; 0 means 2 s.
	Duration time.Duration
	// Workers is the worker count for the sharded runs; 0 means 4.
	Workers int
	// Seed feeds the traffic generator; 0 means 11.
	Seed int64
	// ForceWorkers forces the worker pool on even on a single-CPU
	// process (the race-detector tests set it).
	ForceWorkers bool
}

// EngineLoopRun is one (engine, queue backend) measurement.
type EngineLoopRun struct {
	Label   string `json:"label"`
	Queue   string `json:"queue"`
	Workers int    `json:"workers"` // 0 = serial
	// Digest folds the per-switch traffic emission digests, the
	// delivered-packet count, and the central-link byte count (the HH
	// seeds' change reports) — byte-identical across all four runs by
	// the (at, seq) determinism contract.
	Digest    string `json:"digest"`
	Delivered uint64 `json:"packets_delivered"`
	// CentralBytes is the harvester-bound report traffic: the
	// seed-visible half of the digest.
	CentralBytes uint64 `json:"central_bytes"`
	// Mallocs is the whole-process heap-allocation count for the run —
	// the pooling A/B axis. Includes scheduler and GC noise; the
	// surgical per-op numbers live in BenchmarkSerialTickerStorm.
	Mallocs   uint64  `json:"mallocs"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Consistent reports whether this run's digest matched the
	// serial-heap reference (vacuously true for the reference itself).
	Consistent bool `json:"consistent"`
}

// EngineLoopResult is the full A/B outcome.
type EngineLoopResult struct {
	Switches   int             `json:"switches"`
	Ports      int             `json:"ports"`
	Seeds      int             `json:"seeds"`
	Duration   time.Duration   `json:"duration_virtual_ns"`
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Runs       []EngineLoopRun `json:"runs"`
}

// elDigests is everything a run must reproduce exactly.
type elDigests struct {
	perSwitch    map[netmodel.SwitchID]uint64
	delivered    uint64
	centralBytes uint64
}

func (d elDigests) equal(o elDigests) bool {
	return digestsEqual(d.perSwitch, o.perSwitch) &&
		d.delivered == o.delivered && d.centralBytes == o.centralBytes
}

func (d elDigests) fold() string {
	h := fnvOffset64
	for _, v := range []uint64{d.delivered, d.centralBytes} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime64
			v >>= 8
		}
	}
	return fmt.Sprintf("%s/%08x", combineDigests(d.perSwitch), uint32(h^h>>32))
}

// EngineLoop runs the queue-backend A/B on both engines and errors on
// any digest divergence from the serial container/heap reference.
func EngineLoop(cfg EngineLoopConfig) (*EngineLoopResult, error) {
	if cfg.Spines == 0 {
		cfg.Spines = 2
	}
	if cfg.Leaves == 0 {
		cfg.Leaves = 12
	}
	if cfg.HostsPerLeaf == 0 {
		cfg.HostsPerLeaf = 8
	}
	if cfg.Tasks == 0 {
		cfg.Tasks = 3
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	switches := cfg.Spines + cfg.Leaves
	res := &EngineLoopResult{
		Switches:   switches,
		Ports:      cfg.Leaves * cfg.HostsPerLeaf,
		Seeds:      cfg.Tasks * switches,
		Duration:   cfg.Duration,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	runOne := func(label string, workers int, queue engine.QueueBackend) (EngineLoopRun, elDigests, error) {
		eng := EngineConfig{Workers: workers, ForceWorkers: cfg.ForceWorkers, Queue: queue}
		fab, loop, stop, err := newFabricOn(eng, cfg.Spines, cfg.Leaves, cfg.HostsPerLeaf)
		if err != nil {
			return EngineLoopRun{}, elDigests{}, err
		}
		defer stop()
		sd := seeder.New(fab, seeder.Options{})
		for i := 0; i < cfg.Tasks; i++ {
			if err := sd.AddTask(seeder.TaskSpec{
				Name:   fmt.Sprintf("hh%d", i),
				Source: fmt.Sprintf(engineScaleHH, i, 10+i),
				// The attack cocktail's per-port loads are far below the
				// bulk workload's, so the HH threshold sits low enough
				// that change reports actually flow — the digest must
				// cover the seeds' ticker-driven reporting path, not just
				// the data plane.
				Externals: map[string]map[string]core.Value{
					fmt.Sprintf("HHDelta%d", i): {"threshold": int64(2_000)},
				},
			}); err != nil {
				return EngineLoopRun{}, elDigests{}, err
			}
		}
		gen := traffic.NewGenerator(fab, cfg.Seed)
		stopMid, stops := workloadMix(fab, gen, cfg.Leaves)

		var msBefore, msAfter runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		loop.RunFor(cfg.Duration / 2)
		stopMid() // mid-run cancellation must not perturb determinism
		loop.RunFor(cfg.Duration - cfg.Duration/2)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&msAfter)
		for _, s := range stops {
			s()
		}

		d := elDigests{
			perSwitch:    gen.PerSwitchDigest(),
			delivered:    fab.Delivered(),
			centralBytes: fab.CentralNet.Bytes(),
		}
		run := EngineLoopRun{
			Label:        label,
			Queue:        queue.String(),
			Workers:      workers,
			Digest:       d.fold(),
			Delivered:    d.delivered,
			CentralBytes: d.centralBytes,
			Mallocs:      msAfter.Mallocs - msBefore.Mallocs,
			ElapsedMS:    float64(elapsed.Nanoseconds()) / 1e6,
		}
		return run, d, nil
	}

	ref, refDigests, err := runOne("serial-heap", 0, engine.QueueHeap)
	if err != nil {
		return nil, err
	}
	ref.Consistent = true
	res.Runs = append(res.Runs, ref)

	var firstDivergence error
	for _, m := range []struct {
		label   string
		workers int
		queue   engine.QueueBackend
	}{
		{"serial-wheel", 0, engine.QueueWheel},
		{fmt.Sprintf("sharded-heap-%dw", cfg.Workers), cfg.Workers, engine.QueueHeap},
		{fmt.Sprintf("sharded-wheel-%dw", cfg.Workers), cfg.Workers, engine.QueueWheel},
	} {
		run, d, err := runOne(m.label, m.workers, m.queue)
		if err != nil {
			return nil, err
		}
		run.Consistent = d.equal(refDigests)
		if !run.Consistent && firstDivergence == nil {
			firstDivergence = fmt.Errorf(
				"engine-loop: %s diverged from serial-heap (digest %s vs %s, delivered %d vs %d, central bytes %d vs %d)",
				m.label, run.Digest, ref.Digest, run.Delivered, ref.Delivered, run.CentralBytes, ref.CentralBytes)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, firstDivergence
}

// Table renders the result. Mallocs and ElapsedMS vary by backend and
// host by design (they are the point of the experiment); the Digest
// column is the determinism artifact.
func (r *EngineLoopResult) Table() *Table {
	t := &Table{
		Title:   "Engine loop: timing wheel vs container/heap scheduler queue (digest A/B)",
		Columns: []string{"queue", "digest", "delivered", "central bytes", "mallocs", "wall ms"},
	}
	for _, run := range r.Runs {
		t.Rows = append(t.Rows, Row{
			Label: run.Label,
			Values: []string{
				run.Queue,
				run.Digest,
				fmt.Sprintf("%d", run.Delivered),
				fmt.Sprintf("%d", run.CentralBytes),
				fmt.Sprintf("%d", run.Mallocs),
				fmtFloat(run.ElapsedMS),
			},
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d switches, %d host ports, %d polling seeds, %s virtual per run", r.Switches, r.Ports, r.Seeds, r.Duration),
		"digest = per-leaf emission digests + delivered packets + central-link bytes; identical across all runs by the (at, seq) contract",
		"mallocs = whole-process heap allocations per run; the wheel's pooled re-arms are the delta")
	return t
}
