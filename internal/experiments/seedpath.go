package experiments

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"time"

	"farm/internal/almanac"
	"farm/internal/core"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/harvest"
	"farm/internal/netmodel"
	"farm/internal/seeder"
	"farm/internal/soil"
	"farm/internal/tasks"
	"farm/internal/traffic"
)

// The seed-path experiment is the compiled back ends' A/B gate: the
// whole task catalogue deployed at fabric scale, once per back end (AST
// interpreter, stack VM, register VM), under an identical deterministic
// traffic cocktail. Everything observable — the full harvester report
// stream, every seed's final snapshot on every switch, per-soil poll
// delivery counters, and fabric drop totals — is folded into a digest
// per run; any difference between back ends is a hard failure, and the
// wall-clock ratios are the fleet-level speedups.

// SeedPathConfig parameterizes the back-end A/B run.
type SeedPathConfig struct {
	// Tasks to run; nil = the whole catalogue.
	Tasks []string
	// Leaves in the spine-leaf fabric; default 3.
	Leaves int
	// Millis of simulated time per run; default 1200.
	Millis int
	// Seed drives the traffic cocktail; default 11.
	Seed int64
}

// SeedPathProgram summarizes a task's lowered programs: how much code
// each compiled back end executes and how wide its frames are.
type SeedPathProgram struct {
	StackInstrs    int `json:"stack_instrs"`
	RegisterInstrs int `json:"register_instrs"`
	MaxRegs        int `json:"max_regs"`
	Layouts        int `json:"layouts"`
	FieldSites     int `json:"field_sites"`
}

// SeedPathTaskResult is one task's A/B outcome across the back ends.
type SeedPathTaskResult struct {
	Task    string `json:"task"`
	Seeds   int    `json:"seeds"`
	Reports int    `json:"reports"`

	InterpMs   float64 `json:"interp_wall_ms"`
	StackMs    float64 `json:"stack_wall_ms"`
	RegisterMs float64 `json:"register_wall_ms"`
	// Speedups are wall-clock ratios against the interpreter run.
	StackSpeedup    float64 `json:"stack_speedup"`
	RegisterSpeedup float64 `json:"register_speedup"`

	Program SeedPathProgram `json:"program"`

	Digest     string `json:"digest"`
	Consistent bool   `json:"consistent"`
}

// SeedPathResult is the full catalogue sweep.
type SeedPathResult struct {
	GoMaxProcs       int                  `json:"gomaxprocs"`
	NumCPU           int                  `json:"num_cpu"`
	Leaves           int                  `json:"leaves"`
	Millis           int                  `json:"millis"`
	Tasks            []SeedPathTaskResult `json:"tasks"`
	MeanStackSpeedup float64              `json:"mean_stack_speedup"`
	MeanRegSpeedup   float64              `json:"mean_register_speedup"`
	Consistent       bool                 `json:"consistent"`
}

// seedPathRun executes one task on one back end and returns the
// observable digest plus timing.
func seedPathRun(d tasks.Def, cfg SeedPathConfig, be core.Backend) (digest string, reports, seeds int, wall time.Duration, err error) {
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{
		Spines: 2, Leaves: cfg.Leaves, HostsPerLeaf: 8,
	})
	if err != nil {
		return "", 0, 0, 0, err
	}
	loop := engine.NewSerial()
	fab := fabric.New(topo, loop, fabric.Options{})
	opts := soil.DefaultOptions()
	opts.Backend = be
	sd := seeder.New(fab, seeder.Options{Soil: opts})

	h := fnv.New64a()
	var inner harvest.Logic
	if d.NewHarvester != nil {
		inner = d.NewHarvester()
	}
	spec := seeder.TaskSpec{
		Name: d.Name, Source: d.Source, Machines: d.Machines,
		Externals: d.DefaultExternals,
		Harvester: harvest.FuncLogic{
			Start: func(ctx harvest.Context) {
				if inner != nil {
					inner.OnStart(ctx)
				}
			},
			Message: func(ctx harvest.Context, from soil.SeedRef, v core.Value) {
				reports++
				fmt.Fprintf(h, "%d|%s|%s|%s\n", ctx.Now(), from.Switch, from.Machine, core.FormatValue(v))
				if inner != nil {
					// The task's real harvester runs too, so seed recv
					// paths (threshold pushes, mitigation commands) are
					// exercised on both back ends.
					inner.OnSeedMessage(ctx, from, v)
				}
			},
		},
	}
	if err := sd.AddTask(spec); err != nil {
		return "", 0, 0, 0, err
	}

	gen := traffic.NewGenerator(fab, cfg.Seed)
	stops := []func(){
		gen.SYNFlood(fabric.HostIP(0, 0), 8, 4000),
		gen.PortScan(fabric.HostIP(1, 0), fabric.HostIP(0, 1), 1000),
		gen.SuperSpreader(fabric.HostIP(2%cfg.Leaves, 0), 16, 2000),
		gen.SSHBruteForce(fabric.HostIP(1, 2), fabric.HostIP(0, 2), 200),
		gen.DNSReflection(fabric.HostIP(0, 3), 4, 1000),
		gen.Slowloris(fabric.HostIP(0, 4), 12, 50),
	}
	defer func() {
		for _, s := range stops {
			s()
		}
	}()
	bulk := traffic.NewBulkWorkload(fab, traffic.BulkConfig{
		Tick: 10 * time.Millisecond, HeavyRatio: 0.1, Churn: time.Second, Seed: 5,
	})
	defer bulk.Stop()

	start := time.Now()
	loop.RunFor(time.Duration(cfg.Millis) * time.Millisecond)
	wall = time.Since(start)

	// Fold every seed's terminal state, switch by switch in name order.
	sws := topo.Switches()
	sort.Slice(sws, func(i, j int) bool { return sws[i].Name < sws[j].Name })
	for _, sw := range sws {
		s := sd.Soil(sw.ID)
		if s == nil {
			continue
		}
		fmt.Fprintf(h, "soil %s polls=%d probes=%d\n", sw.Name, s.PollsDelivered(), s.ProbesDelivered())
		for _, id := range s.SeedIDs() {
			snap, err := s.SnapshotSeed(id)
			if err != nil {
				return "", 0, 0, 0, err
			}
			seeds++
			fmt.Fprintf(h, "seed %s/%s %s\n", sw.Name, id, seedPathSnapString(snap))
		}
	}
	fmt.Fprintf(h, "dropped=%d\n", fab.DroppedInFabric())
	return fmt.Sprintf("%016x", h.Sum64()), reports, seeds, wall, nil
}

// seedPathProgram lowers every machine of a task and sums the program
// shape counters both compiled back ends will execute.
func seedPathProgram(d tasks.Def) (SeedPathProgram, error) {
	var out SeedPathProgram
	prog, err := almanac.Parse(d.Source)
	if err != nil {
		return out, err
	}
	layouts := map[string]bool{}
	for _, m := range prog.Machines {
		cm, err := almanac.CompileMachine(prog, m.Name)
		if err != nil {
			return out, err
		}
		lp, err := almanac.Lower(cm, core.BuiltinNames())
		if err != nil {
			return out, err
		}
		out.StackInstrs += lp.NumInstrs()
		out.RegisterInstrs += lp.NumRegInstrs()
		if mr := int(lp.MaxRegs()); mr > out.MaxRegs {
			out.MaxRegs = mr
		}
		out.FieldSites += int(lp.RFieldSites)
		for _, s := range lp.Structs {
			layouts[s.TypeName+"\x1f"+strings.Join(s.Fields, "\x1f")] = true
		}
	}
	out.Layouts = len(layouts)
	return out, nil
}

// seedPathSnapString renders a snapshot deterministically.
func seedPathSnapString(s core.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "state=%s", s.State)
	keys := make([]string, 0, len(s.Env))
	for k := range s.Env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, core.FormatValue(s.Env[k]))
	}
	sts := make([]string, 0, len(s.StateVars))
	for k := range s.StateVars {
		sts = append(sts, k)
	}
	sort.Strings(sts)
	for _, st := range sts {
		vks := make([]string, 0, len(s.StateVars[st]))
		for k := range s.StateVars[st] {
			vks = append(vks, k)
		}
		sort.Strings(vks)
		for _, k := range vks {
			fmt.Fprintf(&b, " %s.%s=%s", st, k, core.FormatValue(s.StateVars[st][k]))
		}
	}
	return b.String()
}

// SeedPath runs the catalogue A/B sweep across all three back ends.
func SeedPath(cfg SeedPathConfig) (*SeedPathResult, error) {
	if cfg.Leaves == 0 {
		cfg.Leaves = 3
	}
	if cfg.Millis == 0 {
		cfg.Millis = 1200
	}
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	names := cfg.Tasks
	if names == nil {
		names = tasks.Names()
	}
	res := &SeedPathResult{
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Leaves: cfg.Leaves, Millis: cfg.Millis, Consistent: true,
	}
	sumStack, sumReg := 0.0, 0.0
	for _, name := range names {
		d, err := tasks.ByName(name)
		if err != nil {
			return nil, err
		}
		prog, err := seedPathProgram(d)
		if err != nil {
			return nil, fmt.Errorf("seed-path %s (lower): %w", name, err)
		}
		iDigest, iReports, iSeeds, iWall, err := seedPathRun(d, cfg, core.BackendInterp)
		if err != nil {
			return nil, fmt.Errorf("seed-path %s (interpreter): %w", name, err)
		}
		sDigest, sReports, _, sWall, err := seedPathRun(d, cfg, core.BackendStack)
		if err != nil {
			return nil, fmt.Errorf("seed-path %s (stack): %w", name, err)
		}
		rDigest, rReports, _, rWall, err := seedPathRun(d, cfg, core.BackendRegister)
		if err != nil {
			return nil, fmt.Errorf("seed-path %s (register): %w", name, err)
		}
		tr := SeedPathTaskResult{
			Task: name, Seeds: iSeeds, Reports: rReports,
			InterpMs:   float64(iWall.Nanoseconds()) / 1e6,
			StackMs:    float64(sWall.Nanoseconds()) / 1e6,
			RegisterMs: float64(rWall.Nanoseconds()) / 1e6,
			Program:    prog,
			Digest:     rDigest,
			Consistent: iDigest == sDigest && sDigest == rDigest &&
				iReports == sReports && sReports == rReports,
		}
		if tr.StackMs > 0 {
			tr.StackSpeedup = tr.InterpMs / tr.StackMs
		}
		if tr.RegisterMs > 0 {
			tr.RegisterSpeedup = tr.InterpMs / tr.RegisterMs
		}
		sumStack += tr.StackSpeedup
		sumReg += tr.RegisterSpeedup
		if !tr.Consistent {
			res.Consistent = false
		}
		res.Tasks = append(res.Tasks, tr)
	}
	if len(res.Tasks) > 0 {
		res.MeanStackSpeedup = sumStack / float64(len(res.Tasks))
		res.MeanRegSpeedup = sumReg / float64(len(res.Tasks))
	}
	if !res.Consistent {
		bad := []string{}
		for _, tr := range res.Tasks {
			if !tr.Consistent {
				bad = append(bad, tr.Task)
			}
		}
		return res, fmt.Errorf("seed-path: back ends diverged on %s", strings.Join(bad, ", "))
	}
	return res, nil
}

// Table renders the sweep.
func (r *SeedPathResult) Table() *Table {
	t := &Table{
		Title:   "Seed path: AST interpreter vs stack VM vs register VM, full catalogue at fabric scale",
		Columns: []string{"seeds", "reports", "interp ms", "stack ms", "register ms", "reg speedup", "instrs s/r", "identical"},
	}
	for _, tr := range r.Tasks {
		t.Rows = append(t.Rows, Row{
			Label: tr.Task,
			Values: []string{
				fmt.Sprint(tr.Seeds), fmt.Sprint(tr.Reports),
				fmtFloat(tr.InterpMs), fmtFloat(tr.StackMs), fmtFloat(tr.RegisterMs),
				fmt.Sprintf("%.2fx", tr.RegisterSpeedup),
				fmt.Sprintf("%d/%d", tr.Program.StackInstrs, tr.Program.RegisterInstrs),
				fmt.Sprint(tr.Consistent),
			},
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean wall-clock speedup vs interpreter: stack %.2fx, register %.2fx over %d tasks (%d ms simulated each, %d leaves)",
			r.MeanStackSpeedup, r.MeanRegSpeedup, len(r.Tasks), r.Millis, r.Leaves),
		"digest folds the harvester report stream, every seed's final snapshot, poll/probe counters, and fabric drops; all three back ends must agree",
	)
	return t
}
