package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"farm/internal/netmodel"
	"farm/internal/placement"
)

// PlacementScaleConfig parameterizes the placement A/B experiment: a
// churn script (cold start, task arrival, task departure, switch
// failure, steady state) replayed under serial, parallel, and
// warm-start solves. Parallel and warm-start runs must reproduce the
// serial reference byte-for-byte (placement digest) — any divergence is
// an error, the same runtime gate the engine, packet path, and workload
// experiments pin for their layers.
type PlacementScaleConfig struct {
	// Switches/Seeds/Tasks shape the random Fig. 7 scenario; defaults
	// 40/400/12 (quick). The paper-scale point is 1040/10200/60.
	Switches, Seeds, Tasks int
	// Seed feeds the scenario generator; 0 means 7.
	Seed int64
	// Workers are the step-3 LP worker counts to A/B against the serial
	// reference; nil means {1, 4, 16}.
	Workers []int
}

// PlacementScaleRun is one solve of one churn step.
type PlacementScaleRun struct {
	Label   string `json:"label"`
	Workers int    `json:"workers"` // step-3 LP workers (1 = serial)
	// Warm reports whether the solve was allowed to warm-start from the
	// previous step's placement (false = ForceFull).
	Warm bool `json:"warm"`
	// Digest fingerprints the full placement result (assignments,
	// allocations, utilities, drops, migrations).
	Digest     string  `json:"digest"`
	Placed     int     `json:"placed_seeds"`
	Dropped    int     `json:"dropped_tasks"`
	Utility    float64 `json:"utility"`
	Migrations int     `json:"migrations"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	// Consistent reports whether this run's digest matched the step's
	// serial warm reference (vacuously true for the reference; full
	// solves are compared on utility, not digest — re-placing from
	// scratch may legitimately land elsewhere).
	Consistent bool `json:"consistent"`
}

// PlacementScaleStep is one churn event and its solves.
type PlacementScaleStep struct {
	Label string              `json:"label"`
	Runs  []PlacementScaleRun `json:"runs"`
}

// PlacementScaleResult is the full churn-script outcome.
type PlacementScaleResult struct {
	Switches   int                  `json:"switches"`
	Seeds      int                  `json:"seeds"`
	Tasks      int                  `json:"tasks"`
	GoMaxProcs int                  `json:"gomaxprocs"`
	NumCPU     int                  `json:"num_cpu"`
	Steps      []PlacementScaleStep `json:"steps"`
}

// placementChurnState carries the evolving scenario between steps.
type placementChurnState struct {
	switches []placement.SwitchInfo
	seeds    []placement.SeedSpec
	current  map[string]placement.Assignment
	touched  []netmodel.SwitchID // nil = cold (full solve)
}

func (s *placementChurnState) input(workers int, forceFull bool) *placement.Input {
	in := &placement.Input{
		Switches:  append([]placement.SwitchInfo(nil), s.switches...),
		Seeds:     append([]placement.SeedSpec(nil), s.seeds...),
		Current:   map[string]placement.Assignment{},
		Parallel:  workers,
		ForceFull: forceFull,
	}
	for k, v := range s.current {
		in.Current[k] = v
	}
	if s.touched != nil {
		in.Touched = append([]netmodel.SwitchID{}, s.touched...)
	}
	return in
}

// PlacementScale replays the churn script and errors on any divergence
// between the serial reference and the parallel runs of each step.
func PlacementScale(cfg PlacementScaleConfig) (*PlacementScaleResult, error) {
	if cfg.Switches == 0 {
		cfg.Switches = 40
	}
	if cfg.Seeds == 0 {
		cfg.Seeds = 400
	}
	if cfg.Tasks == 0 {
		cfg.Tasks = 12
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.Workers == nil {
		cfg.Workers = []int{1, 4, 16}
	}
	res := &PlacementScaleResult{
		Switches:   cfg.Switches,
		Seeds:      cfg.Seeds,
		Tasks:      cfg.Tasks,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	base := placement.RandomScenario(placement.ScenarioConfig{
		Switches: cfg.Switches, Seeds: cfg.Seeds, Tasks: cfg.Tasks, Seed: cfg.Seed,
	})
	st := &placementChurnState{
		switches: base.Switches,
		seeds:    base.Seeds,
		current:  map[string]placement.Assignment{},
		touched:  nil, // cold start
	}

	runOne := func(label string, workers int, forceFull bool) (PlacementScaleRun, *placement.Result, error) {
		in := st.input(workers, forceFull)
		start := time.Now()
		r, err := placement.Heuristic(in)
		if err != nil {
			return PlacementScaleRun{}, nil, err
		}
		elapsed := time.Since(start)
		if err := placement.CheckFeasible(in, r); err != nil {
			return PlacementScaleRun{}, nil, fmt.Errorf("placement-scale: %s: %w", label, err)
		}
		return PlacementScaleRun{
			Label:      label,
			Workers:    workers,
			Warm:       !forceFull && in.Touched != nil && len(in.Current) > 0,
			Digest:     r.Digest(),
			Placed:     len(r.Placed),
			Dropped:    len(r.DroppedTasks),
			Utility:    r.Utility,
			Migrations: r.Migrations,
			ElapsedMS:  float64(elapsed.Nanoseconds()) / 1e6,
		}, r, nil
	}

	var firstDivergence error
	runStep := func(label string) error {
		step := PlacementScaleStep{Label: label}
		ref, refRes, err := runOne("serial", -1, false)
		if err != nil {
			return err
		}
		ref.Consistent = true
		step.Runs = append(step.Runs, ref)
		for _, w := range cfg.Workers {
			run, _, err := runOne(fmt.Sprintf("parallel-%dw", w), w, false)
			if err != nil {
				return err
			}
			run.Consistent = run.Digest == ref.Digest
			if !run.Consistent && firstDivergence == nil {
				firstDivergence = fmt.Errorf(
					"placement-scale: step %s with %d workers diverged from serial (digest %s vs %s)",
					label, w, run.Digest, ref.Digest)
			}
			step.Runs = append(step.Runs, run)
		}
		// A from-scratch solve for runtime/utility comparison (skipped
		// on the cold step, where every solve is already full).
		if st.touched != nil {
			full, _, err := runOne("full", -1, true)
			if err != nil {
				return err
			}
			full.Consistent = true // not digest-compared by design
			step.Runs = append(step.Runs, full)
		}
		res.Steps = append(res.Steps, step)
		st.current = refRes.Placed
		return nil
	}

	// Step 1: cold start — every solve is a full solve.
	if err := runStep("cold-start"); err != nil {
		return nil, err
	}

	// Step 2: one task arrives. No existing switch changed, so the
	// dirty set is empty and only the new task places.
	extra := placement.RandomScenario(placement.ScenarioConfig{
		Switches: cfg.Switches,
		Seeds:    maxInt(1, cfg.Seeds/cfg.Tasks),
		Tasks:    1,
		Seed:     cfg.Seed + 7,
	})
	for i := range extra.Seeds {
		extra.Seeds[i].ID = fmt.Sprintf("tadd/s%d", i)
		extra.Seeds[i].Task = "taskadd"
	}
	st.seeds = append(st.seeds, extra.Seeds...)
	st.touched = []netmodel.SwitchID{}
	if err := runStep("add-task"); err != nil {
		return nil, err
	}

	// Step 3: one task departs; its former switches are the dirty set.
	goneTask := st.seeds[0].Task
	var kept []placement.SeedSpec
	dirty := map[netmodel.SwitchID]bool{}
	for _, s := range st.seeds {
		if s.Task == goneTask {
			if a, ok := st.current[s.ID]; ok {
				dirty[a.Switch] = true
			}
			delete(st.current, s.ID)
			continue
		}
		kept = append(kept, s)
	}
	st.seeds = kept
	st.touched = sortedIDs(dirty)
	if err := runStep("remove-task"); err != nil {
		return nil, err
	}

	// Step 4: kill the most loaded switch. Seeds placed there lose
	// their assignment; seeds with no surviving candidate drop out of
	// the model (mirroring the seeder's failover path).
	load := map[netmodel.SwitchID]int{}
	for _, a := range st.current {
		load[a.Switch]++
	}
	victim := st.switches[0].ID
	for _, sw := range st.switches {
		if load[sw.ID] > load[victim] || (load[sw.ID] == load[victim] && sw.ID < victim) {
			victim = sw.ID
		}
	}
	var liveSW []placement.SwitchInfo
	for _, sw := range st.switches {
		if sw.ID != victim {
			liveSW = append(liveSW, sw)
		}
	}
	st.switches = liveSW
	kept = kept[:0:0]
	for _, s := range st.seeds {
		var cands []netmodel.SwitchID
		for _, c := range s.Candidates {
			if c != victim {
				cands = append(cands, c)
			}
		}
		if len(cands) == 0 {
			delete(st.current, s.ID)
			continue
		}
		s.Candidates = cands
		kept = append(kept, s)
	}
	st.seeds = kept
	for id, a := range st.current {
		if a.Switch == victim {
			delete(st.current, id)
		}
	}
	st.touched = []netmodel.SwitchID{victim}
	if err := runStep("kill-switch"); err != nil {
		return nil, err
	}

	// Step 5: steady state — nothing changed; the warm solve should pin
	// everything and return almost instantly.
	st.touched = []netmodel.SwitchID{}
	if err := runStep("settle"); err != nil {
		return nil, err
	}

	return res, firstDivergence
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sortedIDs(m map[netmodel.SwitchID]bool) []netmodel.SwitchID {
	out := make([]netmodel.SwitchID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Table renders the result. ElapsedMS varies by host; the Digest column
// is the determinism artifact (within each step, serial vs parallel).
func (r *PlacementScaleResult) Table() *Table {
	t := &Table{
		Title:   "Placement scale: serial vs parallel vs warm-start solves (digest A/B)",
		Columns: []string{"digest", "warm", "placed", "dropped", "utility", "migr", "wall ms"},
	}
	for _, step := range r.Steps {
		for _, run := range step.Runs {
			warm := "full"
			if run.Warm {
				warm = "warm"
			}
			t.Rows = append(t.Rows, Row{
				Label: step.Label + "/" + run.Label,
				Values: []string{
					run.Digest,
					warm,
					fmt.Sprintf("%d", run.Placed),
					fmt.Sprintf("%d", run.Dropped),
					fmt.Sprintf("%.1f", run.Utility),
					fmt.Sprintf("%d", run.Migrations),
					fmtFloat(run.ElapsedMS),
				},
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d switches, %d seeds, %d tasks; GOMAXPROCS=%d, NumCPU=%d",
			r.Switches, r.Seeds, r.Tasks, r.GoMaxProcs, r.NumCPU),
		"digest = placement result fingerprint; within a step, parallel runs must match the serial reference",
		"full = from-scratch re-solve for comparison (utility-checked, not digest-checked)")
	return t
}
