package experiments

import (
	"fmt"
	"time"

	"farm/internal/core"
	"farm/internal/dataplane"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
	"farm/internal/soil"
)

// fig8SeedSource polls the whole port table at 1 ms — the heaviest
// legitimate statistics consumer.
const fig8SeedSource = `
machine BusHog {
  place all;
  poll stats = Poll { .ival = 1, .what = port ANY };
  long seen;
  state run {
    util (res) { if (res.vCPU >= 0.001) then { return 1; } }
    when (stats as recs) do { seen = seen + list_len(recs); }
  }
}
`

// Fig8Point is one (seeds, aggregation) bus measurement.
type Fig8Point struct {
	Seeds       int
	Utilization float64       // fraction of PCIe polling capacity used
	Backlog     time.Duration // request queue depth in time
	PollsServed uint64
}

// Fig8Result is the reproduced Fig. 8 (PCIe congestion).
type Fig8Result struct {
	NoAggregation   []Fig8Point
	WithAggregation []Fig8Point
	// ASICRatio is the PCIe:ASIC bandwidth ratio (the paper's 1:12500).
	ASICRatio float64
}

// Fig8Config parameterizes the bus-congestion sweep.
type Fig8Config struct {
	SeedCounts []int
	Ports      int           // ports polled per request; 0 means 48
	Duration   time.Duration // 0 means 2 s
}

// Fig8 deploys N seeds that all poll the full port table at 1 ms, with
// the soil's polling aggregation off and on, and measures PCIe bus
// utilization and backlog. Without aggregation the 8 Mbps bus saturates
// after a handful of seeds — the 1:12500 PCIe:ASIC gap of §VI-E-a;
// aggregation collapses the demand to a single poll stream.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	if cfg.SeedCounts == nil {
		cfg.SeedCounts = []int{1, 2, 4, 8, 16, 32, 64}
	}
	if cfg.Ports == 0 {
		cfg.Ports = 8
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	res := &Fig8Result{
		// 8 Mbps polling vs 100 Gbps ASIC.
		ASICRatio: 100e9 / 8e6,
	}
	for _, n := range cfg.SeedCounts {
		p, err := fig8Run(n, cfg, false)
		if err != nil {
			return nil, err
		}
		res.NoAggregation = append(res.NoAggregation, p)
		p, err = fig8Run(n, cfg, true)
		if err != nil {
			return nil, err
		}
		res.WithAggregation = append(res.WithAggregation, p)
	}
	return res, nil
}

// Table renders the result.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Title:   "Fig. 8: PCIe bus congestion under statistics polling (1 ms, full port table)",
		Columns: []string{"seeds", "bus util", "backlog", "polls"},
	}
	for _, p := range r.NoAggregation {
		t.Rows = append(t.Rows, Row{Label: "no aggregation", Values: []string{
			fmt.Sprint(p.Seeds), fmtPercent(p.Utilization), fmtDuration(p.Backlog), fmt.Sprint(p.PollsServed),
		}})
	}
	for _, p := range r.WithAggregation {
		t.Rows = append(t.Rows, Row{Label: "soil aggregation", Values: []string{
			fmt.Sprint(p.Seeds), fmtPercent(p.Utilization), fmtDuration(p.Backlog), fmt.Sprint(p.PollsServed),
		}})
	}
	t.Rows = append(t.Rows, Row{Label: "ASIC headroom", Values: []string{
		"-", fmt.Sprintf("1:%.0f", r.ASICRatio), "-", "-"}})
	t.Notes = append(t.Notes, "PCIe polling capacity 8 Mbps vs 100 Gbps ASIC (paper's 1:12500)")
	return t
}

func fig8Run(seeds int, cfg Fig8Config, aggregate bool) (Fig8Point, error) {
	topo := netmodel.New()
	capacity := netmodel.Resources{
		netmodel.ResVCPU: 64, netmodel.ResRAM: 1 << 20,
		netmodel.ResTCAM: 1024, netmodel.ResPCIe: 64, netmodel.ResPoll: 1e9,
	}
	swID := topo.AddSwitch("bench", netmodel.Leaf, capacity)
	for i := 0; i < cfg.Ports; i++ {
		_, err := topo.AddHost(swID, fabric.HostIP(0, i))
		if err != nil {
			return Fig8Point{}, err
		}
	}
	loop := engine.NewSerial()
	fab := fabric.New(topo, loop, fabric.Options{}) // default 8 Mbps bus
	s := soil.New(fab, swID, soil.Options{ExecModel: soil.Threads, Aggregation: aggregate})
	s.SetSendFunc(func(soil.SeedRef, core.SendDest, core.Value) {})
	cm, err := compileMachine(fig8SeedSource, "BusHog")
	if err != nil {
		return Fig8Point{}, err
	}
	alloc := netmodel.Resources{netmodel.ResVCPU: 0.001, netmodel.ResRAM: 1, netmodel.ResPoll: 1000}
	for i := 0; i < seeds; i++ {
		ref := soil.SeedRef{Task: fmt.Sprintf("t%d", i), Machine: "BusHog", Switch: "bench"}
		if err := s.DeployCompiled(ref, cm, nil, alloc); err != nil {
			return Fig8Point{}, err
		}
	}
	bus := fab.Driver(swID).Bus()
	loop.RunFor(100 * time.Millisecond)
	snap := bus.Snapshot()
	polls := s.PollsIssued()
	loop.RunFor(cfg.Duration)
	var _ = dataplane.DefaultPCIePollBytesPerSec
	return Fig8Point{
		Seeds:       seeds,
		Utilization: bus.UtilizationSince(snap),
		Backlog:     bus.Backlog(),
		PollsServed: s.PollsIssued() - polls,
	}, nil
}
