package experiments

import (
	"fmt"
	"time"

	"farm/internal/core"
	"farm/internal/dataplane"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
	"farm/internal/soil"
)

// fig6SeedSource builds an HH-style seed polling one dedicated rule at
// a fixed interval; mlIterations > 0 additionally runs that many ML
// iterations (the SVR matrix workload) per poll via exec().
func fig6SeedSource(ivalMs, rulePort int, mlIterations int) string {
	body := `hot = r.dBytes;`
	if mlIterations > 0 {
		body = fmt.Sprintf(`hot = exec("svr", r.dBytes);
      iters = iters + %d;`, mlIterations)
	}
	return fmt.Sprintf(`
machine Fig6Seed {
  place all;
  poll stats = Poll { .ival = %d, .what = dstPort %d };
  long hot;
  long iters;
  state run {
    util (res) { if (res.vCPU >= 0.01) then { return 1; } }
    when (stats as recs) do {
      RuleStats r = list_get(recs, 0);
      %s
    }
  }
}
`, ivalMs, rulePort, body)
}

// Fig6Variant selects one of the four panels.
type Fig6Variant struct {
	Name         string
	IvalMs       int
	MLIterations int // 0 = the light HH task
}

// Fig6Variants returns the paper's four panels.
func Fig6Variants() []Fig6Variant {
	return []Fig6Variant{
		{Name: "HH 1ms", IvalMs: 1},
		{Name: "HH 10ms", IvalMs: 10},
		{Name: "ML 1ms x1iter", IvalMs: 1, MLIterations: 1},
		{Name: "ML 10ms x10iter (partitioned)", IvalMs: 10, MLIterations: 10},
	}
}

// Fig6Point is one (variant, seeds) measurement.
type Fig6Point struct {
	Seeds    int
	Load     float64 // CPU load, 1.0 = one core (may exceed core count = demand)
	Accuracy float64 // achieved fraction of the requested polling rate
}

// Fig6Result is the reproduced Fig. 6.
type Fig6Result struct {
	Variants map[string][]Fig6Point
	Order    []string
}

// Fig6Config parameterizes the seed-scaling experiment.
type Fig6Config struct {
	// SeedCounts per variant; nil uses the paper's axes (10..100 for HH,
	// 10..250 for ML-partitioned).
	HHSeedCounts []int
	MLSeedCounts []int
	// Duration is the measured window; 0 means 2 s.
	Duration time.Duration
	// Backend selects the seed execution engine (register VM by
	// default), for before/after comparisons of the compiled seed path.
	Backend core.Backend
}

// Fig6 deploys increasing numbers of collocated seeds on one switch and
// measures CPU load and achieved polling accuracy. Every seed polls a
// distinct rule (distinct tasks monitor distinct flows), so polling does
// not aggregate away. ML iterations charge the modelled Atom cost of the
// 1000x1000 SVR multiplication (§VI-A-c); when total demand exceeds the
// 4 cores, load reports the demand and accuracy degrades accordingly —
// the saturation regime of Fig. 6c.
func Fig6(cfg Fig6Config) (*Fig6Result, error) {
	if cfg.HHSeedCounts == nil {
		cfg.HHSeedCounts = []int{10, 20, 40, 60, 80, 100}
	}
	if cfg.MLSeedCounts == nil {
		cfg.MLSeedCounts = []int{10, 20, 40, 50, 100, 150, 200, 250}
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	res := &Fig6Result{Variants: map[string][]Fig6Point{}}
	for _, v := range Fig6Variants() {
		res.Order = append(res.Order, v.Name)
		counts := cfg.HHSeedCounts
		if v.MLIterations > 0 {
			counts = cfg.MLSeedCounts
			if v.IvalMs == 1 {
				// The unpartitioned ML panel stops at 100 seeds like the
				// paper's Fig. 6c.
				counts = cfg.HHSeedCounts
			}
		}
		for _, n := range counts {
			p, err := fig6Run(v, n, cfg.Duration, cfg.Backend)
			if err != nil {
				return nil, err
			}
			res.Variants[v.Name] = append(res.Variants[v.Name], p)
		}
	}
	return res, nil
}

// Table renders the result.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title:   "Fig. 6: CPU load and polling accuracy vs. collocated seeds",
		Columns: []string{"seeds", "CPU load", "accuracy"},
	}
	for _, v := range r.Order {
		for _, p := range r.Variants[v] {
			t.Rows = append(t.Rows, Row{
				Label:  v,
				Values: []string{fmt.Sprint(p.Seeds), fmtPercent(p.Load), fmtPercent(p.Accuracy)},
			})
		}
	}
	t.Notes = append(t.Notes,
		"load above 400% = demand exceeding the 4-core management CPU (Fig. 6c regime)",
		"accuracy = delivered polls / requested polls, degraded by CPU saturation")
	return t
}

func fig6Run(v Fig6Variant, seeds int, duration time.Duration, be core.Backend) (Fig6Point, error) {
	topo := netmodel.New()
	// One big switch with per-seed-scaled capacity so admission control
	// is not the variable under test.
	capacity := netmodel.Resources{
		netmodel.ResVCPU: 4, netmodel.ResRAM: 32768,
		netmodel.ResTCAM: float64(seeds + 64), netmodel.ResPCIe: 64,
		netmodel.ResPoll: 1e9,
	}
	swID := topo.AddSwitch("bench", netmodel.Leaf, capacity)
	loop := engine.NewSerial()
	fab := fabric.New(topo, loop, fabric.Options{
		BusBytesPerSec: 64 * dataplane.DefaultPCIePollBytesPerSec,
	})
	costs := fab.Costs()
	// The unpartitioned ML panel (Fig. 6c) runs its seeds at 1 ms as
	// separate processes — the paper attributes its blow-up to the many
	// context switches; the partitioned panel (6d) uses threads.
	opts := soil.DefaultOptions()
	opts.Backend = be
	if v.MLIterations > 0 && v.IvalMs == 1 {
		opts.ExecModel = soil.Processes
	}
	s := soil.New(fab, swID, opts)
	s.SetSendFunc(func(soil.SeedRef, core.SendDest, core.Value) {})
	cpu := fab.CPU(swID)
	s.SetExecFunc(func(cmd string, arg core.Value) (core.Value, error) {
		// One exec() call = one modelled SVR iteration on this CPU.
		cpu.Charge(costs.MLIteration)
		return arg, nil
	})

	alloc := netmodel.Resources{
		netmodel.ResVCPU: 0.01, netmodel.ResRAM: 16,
		netmodel.ResTCAM: 1, netmodel.ResPoll: 2000,
	}
	for i := 0; i < seeds; i++ {
		port := i + 1
		if err := fab.Switch(swID).TCAM().AddRule(dataplane.Rule{
			Priority: 1, Filter: dataplane.Filter{DstPort: uint16(port)}, Action: dataplane.ActCount,
		}); err != nil {
			return Fig6Point{}, err
		}
		src := fig6SeedSource(v.IvalMs, port, v.MLIterations)
		cm, err := compileMachine(src, "Fig6Seed")
		if err != nil {
			return Fig6Point{}, err
		}
		ref := soil.SeedRef{Task: fmt.Sprintf("t%d", i), Machine: "Fig6Seed", Switch: "bench"}
		if err := s.DeployCompiled(ref, cm, nil, alloc); err != nil {
			return Fig6Point{}, err
		}
	}
	// Traffic credits every rule.
	loop.Every(10*time.Millisecond, func() {
		for i := 0; i < seeds; i++ {
			fab.Switch(swID).CreditRule(dataplane.Filter{DstPort: uint16(i + 1)}, 10, 10000)
		}
	})
	loop.RunFor(200 * time.Millisecond)
	snap := cpu.Snapshot()
	pollsBefore := s.PollsDelivered()
	loop.RunFor(duration)
	load := cpu.LoadSince(snap)
	delivered := float64(s.PollsDelivered() - pollsBefore)
	requested := float64(seeds) * duration.Seconds() * 1000 / float64(v.IvalMs)
	accuracy := 1.0
	if requested > 0 {
		accuracy = delivered / requested
	}
	// CPU saturation throttles delivery on real hardware ("the CPU
	// unable to handle all seeds in parallel", §VI-C); the simulated
	// loop always keeps up, so accuracy is additionally capped by the
	// demand/core ratio.
	if load > cpu.Cores() {
		accuracy *= cpu.Cores() / load
	}
	if accuracy > 1 {
		accuracy = 1
	}
	return Fig6Point{Seeds: seeds, Load: load, Accuracy: accuracy}, nil
}
