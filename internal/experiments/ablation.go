package experiments

import (
	"fmt"
	"time"

	"farm/internal/netmodel"
	"farm/internal/placement"
	"farm/internal/poly"
)

// AblationResult compares Alg. 1 variants (DESIGN.md §4): greedy only,
// greedy + LP redistribution, and the full heuristic with migration, on
// a re-optimization scenario; plus the migration-cost sensitivity.
type AblationResult struct {
	Passes    *Table
	Migration *Table
}

// AblationConfig parameterizes the ablations.
type AblationConfig struct {
	Switches, Seeds, Tasks int
	Runs                   int
	Seed                   int64
}

// Ablation runs both ablation studies.
func Ablation(cfg AblationConfig) (*AblationResult, error) {
	if cfg.Switches == 0 {
		cfg.Switches = 10
	}
	if cfg.Seeds == 0 {
		cfg.Seeds = 80
	}
	if cfg.Tasks == 0 {
		cfg.Tasks = 8
	}
	if cfg.Runs == 0 {
		cfg.Runs = 3
	}
	passes, err := ablationPasses(cfg)
	if err != nil {
		return nil, err
	}
	migr, err := ablationMigrationCost(cfg)
	if err != nil {
		return nil, err
	}
	return &AblationResult{Passes: passes, Migration: migr}, nil
}

// ablationPasses isolates the contribution of each Alg. 1 pass.
func ablationPasses(cfg AblationConfig) (*Table, error) {
	t := &Table{
		Title:   "Ablation: Alg. 1 passes (utility gained per pass)",
		Columns: []string{"utility", "runtime"},
	}
	type variant struct {
		label string
		mut   func(*placement.Input)
	}
	variants := []variant{
		{"greedy only", func(in *placement.Input) { in.SkipRedistribution = true; in.DisableMigration = true }},
		{"greedy + LP redistribution", func(in *placement.Input) { in.DisableMigration = true }},
		{"full Alg. 1 (with migration)", func(in *placement.Input) {}},
	}
	for _, v := range variants {
		var util float64
		var rt time.Duration
		for run := 0; run < cfg.Runs; run++ {
			in := placement.RandomScenario(placement.ScenarioConfig{
				Switches: cfg.Switches, Seeds: cfg.Seeds, Tasks: cfg.Tasks,
				Seed: cfg.Seed + int64(run),
			})
			// Re-optimization setting: the migration pass only engages
			// with an existing placement, so seed it with a fresh
			// greedy-only run.
			base := placement.RandomScenario(placement.ScenarioConfig{
				Switches: cfg.Switches, Seeds: cfg.Seeds, Tasks: cfg.Tasks,
				Seed: cfg.Seed + int64(run),
			})
			base.SkipRedistribution = true
			base.DisableMigration = true
			prior, err := placement.Heuristic(base)
			if err != nil {
				return nil, err
			}
			in.Current = prior.Placed
			in.MigrationCost = 0.5
			v.mut(in)
			res, err := placement.Heuristic(in)
			if err != nil {
				return nil, err
			}
			if err := placement.CheckFeasible(in, res); err != nil {
				return nil, fmt.Errorf("experiments: ablation %s: %w", v.label, err)
			}
			util += res.Utility
			rt += res.Runtime
		}
		t.Rows = append(t.Rows, Row{Label: v.label, Values: []string{
			fmtFloat(util / float64(cfg.Runs)),
			fmtDuration(rt / time.Duration(cfg.Runs)),
		}})
	}
	return t, nil
}

// ablationMigrationCost sweeps the migration penalty on a scenario
// where moving is genuinely attractive: every seed starts (per the
// prior placement) on a cramped switch while roomy switches sit idle.
// The penalty decides how many of those beneficial moves survive.
func ablationMigrationCost(cfg AblationConfig) (*Table, error) {
	t := &Table{
		Title:   "Ablation: migration-cost sensitivity (re-optimization)",
		Columns: []string{"migrations", "utility"},
	}
	build := func() *placement.Input {
		small := netmodel.Resources{
			netmodel.ResVCPU: 1.2, netmodel.ResRAM: 2048,
			netmodel.ResTCAM: 64, netmodel.ResPCIe: 4, netmodel.ResPoll: 20000,
		}
		big := netmodel.DefaultLeafCapacity()
		in := &placement.Input{Current: map[string]placement.Assignment{}}
		nPairs := cfg.Switches / 2
		if nPairs < 2 {
			nPairs = 2
		}
		for i := 0; i < nPairs; i++ {
			in.Switches = append(in.Switches,
				placement.SwitchInfo{ID: netmodel.SwitchID(2 * i), Capacity: small.Clone()},
				placement.SwitchInfo{ID: netmodel.SwitchID(2*i + 1), Capacity: big.Clone()},
			)
		}
		// One seed per pair, currently on the small switch; utility
		// scales with vCPU so the big neighbor is worth moving to.
		for i := 0; i < nPairs; i++ {
			id := fmt.Sprintf("t%d/s0", i)
			in.Seeds = append(in.Seeds, placement.SeedSpec{
				ID: id, Task: fmt.Sprintf("t%d", i), Machine: "m",
				Candidates: []netmodel.SwitchID{netmodel.SwitchID(2 * i), netmodel.SwitchID(2*i + 1)},
				Utility: poly.Utility{{
					Constraints: []poly.Linear{poly.Term(netmodel.ResVCPU, 1).Sub(poly.Constant(1))},
					Util:        poly.MinOf(poly.Term(netmodel.ResVCPU, 10)),
				}},
			})
			in.Current[id] = placement.Assignment{
				Switch: netmodel.SwitchID(2 * i),
				Alloc:  netmodel.Resources{netmodel.ResVCPU: 1},
				Case:   0, Utility: 10,
			}
		}
		return in
	}
	for _, mc := range []float64{0.1, 5, 15, 25, 1e6} {
		in := build()
		in.MigrationCost = mc
		res, err := placement.Heuristic(in)
		if err != nil {
			return nil, err
		}
		if err := placement.CheckFeasible(in, res); err != nil {
			return nil, fmt.Errorf("experiments: migration ablation: %w", err)
		}
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("cost=%g", mc),
			Values: []string{fmt.Sprint(res.Migrations), fmtFloat(res.Utility)},
		})
	}
	t.Notes = append(t.Notes,
		"seeds start on cramped switches; each move to the roomy neighbor is worth ~28 utility",
		"higher migration cost suppresses moves; utility degrades once beneficial moves are priced out")
	return t, nil
}
