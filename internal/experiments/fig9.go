package experiments

import (
	"fmt"
	"time"

	"farm/internal/core"
	"farm/internal/dataplane"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
	"farm/internal/soil"
)

// fig9SeedSource: all seeds poll the SAME subject so the soil can
// aggregate their requests.
const fig9SeedSource = `
machine SharedPoller {
  place all;
  poll stats = Poll { .ival = 10, .what = port ANY };
  long seen;
  state run {
    util (res) { if (res.vCPU >= 0.001) then { return 1; } }
    when (stats as recs) do { seen = seen + list_len(recs); }
  }
}
`

// Fig9Point is one configuration's CPU load at a seed count.
type Fig9Point struct {
	Seeds int
	Load  float64
}

// Fig9Result is the reproduced Fig. 9 (soil CPU cost of aggregation,
// threads vs processes).
type Fig9Result struct {
	Configs map[string][]Fig9Point
	Order   []string
}

// Fig9Config parameterizes the sweep.
type Fig9Config struct {
	SeedCounts []int
	Duration   time.Duration // 0 means 2 s
}

// Fig9 measures the soil's CPU load for seeds sharing one polling
// subject, across {threads, processes} x {aggregation on, off}. The
// fan-out cost of aggregation is charged per subscriber; per-delivery
// context switches make it far more visible for process seeds, while
// thread seeds stay cheap in every configuration (§VI-E-b). In our
// accounting, skipping aggregation costs extra ASIC polls, so
// aggregation is a net CPU win as well as a bus win.
func Fig9(cfg Fig9Config) (*Fig9Result, error) {
	if cfg.SeedCounts == nil {
		cfg.SeedCounts = []int{1, 10, 25, 50, 100, 150}
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	res := &Fig9Result{Configs: map[string][]Fig9Point{}}
	for _, mode := range []struct {
		label string
		opts  soil.Options
	}{
		{"threads + aggregation", soil.Options{ExecModel: soil.Threads, Aggregation: true}},
		{"threads, no aggregation", soil.Options{ExecModel: soil.Threads, Aggregation: false}},
		{"processes + aggregation", soil.Options{ExecModel: soil.Processes, Aggregation: true}},
		{"processes, no aggregation", soil.Options{ExecModel: soil.Processes, Aggregation: false}},
	} {
		res.Order = append(res.Order, mode.label)
		for _, n := range cfg.SeedCounts {
			p, err := fig9Run(n, mode.opts, cfg.Duration)
			if err != nil {
				return nil, err
			}
			res.Configs[mode.label] = append(res.Configs[mode.label], p)
		}
	}
	return res, nil
}

// Table renders the result.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title:   "Fig. 9: soil CPU load — request aggregation, threads vs processes",
		Columns: []string{"seeds", "CPU load"},
	}
	for _, cfg := range r.Order {
		for _, p := range r.Configs[cfg] {
			t.Rows = append(t.Rows, Row{Label: cfg, Values: []string{fmt.Sprint(p.Seeds), fmtPercent(p.Load)}})
		}
	}
	t.Notes = append(t.Notes,
		"process seeds pay per-delivery context switches; thread seeds stay cheap in every configuration (§VI-E-b)",
		"without aggregation the soil also pays for N separate ASIC polls, so aggregation wins on CPU here too")
	return t
}

func fig9Run(seeds int, opts soil.Options, duration time.Duration) (Fig9Point, error) {
	topo := netmodel.New()
	capacity := netmodel.Resources{
		netmodel.ResVCPU: 64, netmodel.ResRAM: 1 << 20,
		netmodel.ResTCAM: 1024, netmodel.ResPCIe: 64, netmodel.ResPoll: 1e9,
	}
	swID := topo.AddSwitch("bench", netmodel.Leaf, capacity)
	for i := 0; i < 16; i++ {
		if _, err := topo.AddHost(swID, fabric.HostIP(0, i)); err != nil {
			return Fig9Point{}, err
		}
	}
	loop := engine.NewSerial()
	fab := fabric.New(topo, loop, fabric.Options{
		BusBytesPerSec: 64 * dataplane.DefaultPCIePollBytesPerSec,
	})
	s := soil.New(fab, swID, opts)
	s.SetSendFunc(func(soil.SeedRef, core.SendDest, core.Value) {})
	cm, err := compileMachine(fig9SeedSource, "SharedPoller")
	if err != nil {
		return Fig9Point{}, err
	}
	alloc := netmodel.Resources{netmodel.ResVCPU: 0.001, netmodel.ResRAM: 1, netmodel.ResPoll: 1000}
	for i := 0; i < seeds; i++ {
		ref := soil.SeedRef{Task: fmt.Sprintf("t%d", i), Machine: "SharedPoller", Switch: "bench"}
		if err := s.DeployCompiled(ref, cm, nil, alloc); err != nil {
			return Fig9Point{}, err
		}
	}
	cpu := fab.CPU(swID)
	loop.RunFor(100 * time.Millisecond)
	snap := cpu.Snapshot()
	loop.RunFor(duration)
	return Fig9Point{Seeds: seeds, Load: cpu.LoadSince(snap)}, nil
}
