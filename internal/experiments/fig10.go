package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"farm/internal/transport"
)

// Fig10Point is one (transport, seeds) latency measurement.
type Fig10Point struct {
	Seeds       int
	MeanLatency time.Duration
	P99Latency  time.Duration
}

// Fig10Result is the reproduced Fig. 10 (soil<->seed communication
// latency, shared buffer vs socket RPC). Unlike the simulated
// experiments this one measures real wall-clock time on real transports.
type Fig10Result struct {
	SharedBuf []Fig10Point
	TCPRPC    []Fig10Point
}

// Fig10Config parameterizes the microbenchmark.
type Fig10Config struct {
	SeedCounts []int
	// CallsPerSeed per measurement; 0 means 2000.
	CallsPerSeed int
	// PayloadBytes per request; 0 means 256 (a typical statistics
	// record batch).
	PayloadBytes int
}

// Fig10 creates N concurrent "seeds" per transport, each performing
// synchronous request/response calls against the soil, and reports the
// per-call latency. The socket path (the gRPC role) degrades linearly
// with the seed count; the shared buffer stays flat (§VI-E-c).
func Fig10(cfg Fig10Config) (*Fig10Result, error) {
	if cfg.SeedCounts == nil {
		cfg.SeedCounts = []int{1, 10, 50, 100, 150}
	}
	if cfg.CallsPerSeed == 0 {
		cfg.CallsPerSeed = 2000
	}
	if cfg.PayloadBytes == 0 {
		cfg.PayloadBytes = 256
	}
	res := &Fig10Result{}
	handler := func(dst, req []byte) []byte { return append(dst, req...) } // echo soil

	for _, n := range cfg.SeedCounts {
		shared := transport.NewSharedBufServer(64*1024, handler)
		p, err := fig10Measure(shared, n, cfg)
		shared.Close()
		if err != nil {
			return nil, err
		}
		res.SharedBuf = append(res.SharedBuf, p)

		tcp, err := transport.NewTCPServer(handler)
		if err != nil {
			return nil, err
		}
		p, err = fig10Measure(tcp, n, cfg)
		tcp.Close()
		if err != nil {
			return nil, err
		}
		res.TCPRPC = append(res.TCPRPC, p)
	}
	return res, nil
}

// Table renders the result.
func (r *Fig10Result) Table() *Table {
	t := &Table{
		Title:   "Fig. 10: soil<->seed call latency — shared buffer vs socket RPC (real time)",
		Columns: []string{"seeds", "mean", "p99"},
	}
	for _, p := range r.SharedBuf {
		t.Rows = append(t.Rows, Row{Label: "shared buffer (threads)", Values: []string{
			fmt.Sprint(p.Seeds), fmt.Sprint(p.MeanLatency), fmt.Sprint(p.P99Latency)}})
	}
	for _, p := range r.TCPRPC {
		t.Rows = append(t.Rows, Row{Label: "TCP RPC (processes)", Values: []string{
			fmt.Sprint(p.Seeds), fmt.Sprint(p.MeanLatency), fmt.Sprint(p.P99Latency)}})
	}
	t.Notes = append(t.Notes, "TCP loopback RPC stands in for gRPC (stdlib-only build)")
	return t
}

func fig10Measure(srv transport.Server, seeds int, cfg Fig10Config) (Fig10Point, error) {
	payload := make([]byte, cfg.PayloadBytes)
	type result struct {
		lats []time.Duration
		err  error
	}
	results := make([]result, seeds)
	var wg sync.WaitGroup
	for i := 0; i < seeds; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			conn, err := srv.Dial()
			if err != nil {
				results[idx].err = err
				return
			}
			defer conn.Close()
			lats := make([]time.Duration, 0, cfg.CallsPerSeed)
			for c := 0; c < cfg.CallsPerSeed; c++ {
				start := time.Now()
				if _, err := conn.Call(payload); err != nil {
					results[idx].err = err
					return
				}
				lats = append(lats, time.Since(start))
			}
			results[idx].lats = lats
		}(i)
	}
	wg.Wait()
	var all []time.Duration
	for _, r := range results {
		if r.err != nil {
			return Fig10Point{}, r.err
		}
		all = append(all, r.lats...)
	}
	if len(all) == 0 {
		return Fig10Point{}, fmt.Errorf("experiments: fig10: no samples")
	}
	var sum time.Duration
	for _, l := range all {
		sum += l
	}
	sorted := append([]time.Duration(nil), all...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return Fig10Point{
		Seeds:       seeds,
		MeanLatency: sum / time.Duration(len(all)),
		P99Latency:  sorted[len(sorted)*99/100],
	}, nil
}
