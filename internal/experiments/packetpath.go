package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"runtime"
	"time"

	"farm/internal/dataplane"
)

func mustPfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func randIP(rng *rand.Rand) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(rng.Intn(100)), byte(rng.Intn(256)), byte(1 + rng.Intn(254))})
}

// PacketPathConfig parameterizes the packet-path classifier experiment:
// the same deterministic packet trace with interleaved rule churn driven
// through one emulated ASIC twice — once on the linear reference path,
// once on the fast classifier (bucketed TCAM index + generation-stamped
// flow cache + fused inject) — verifying the observable outcomes are
// identical and measuring the speedup.
type PacketPathConfig struct {
	// Rules is the installed monitoring-rule count; default 64.
	Rules int
	// Samplers is the number of registered packet samplers; default 4.
	Samplers int
	// Flows is the flow-pool size; default 512.
	Flows int
	// Packets is the trace length; default 300k (quick) / 2M (full).
	Packets int
	// ChurnEvery reinstalls one rule every N packets (flow-cache
	// invalidation under management churn); default 20k. <0 disables.
	ChurnEvery int
	// Seed drives trace generation; default 17.
	Seed int64
}

// PacketPathResult is the measured outcome. The digest fields (Matched,
// Dropped, Sampled, RulePackets) must be identical across the two paths
// — Consistent reports that check — so the fast classifier provably
// does not change what any experiment observes.
type PacketPathResult struct {
	Rules      int `json:"rules"`
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	Samplers   int `json:"samplers"`
	Flows      int `json:"flows"`
	Packets    int `json:"packets"`
	Churns     int `json:"churns"`

	NaiveNsPerPkt float64 `json:"naive_ns_per_pkt"`
	FastNsPerPkt  float64 `json:"fast_ns_per_pkt"`
	Speedup       float64 `json:"speedup"`
	// HitRate is the fused flow cache's hit rate on the fast run.
	HitRate float64 `json:"cache_hit_rate"`

	Matched     uint64 `json:"matched"`
	Dropped     uint64 `json:"dropped"`
	Sampled     uint64 `json:"sampled"`
	RulePackets uint64 `json:"rule_packets"`
	Consistent  bool   `json:"consistent"`
}

// packetPathDigest captures everything a monitoring task could observe.
type packetPathDigest struct {
	matched, dropped, sampled, rulePackets uint64
}

// PacketPath runs the classifier A/B measurement.
func PacketPath(cfg PacketPathConfig) (*PacketPathResult, error) {
	if cfg.Rules == 0 {
		cfg.Rules = 64
	}
	if cfg.Samplers == 0 {
		cfg.Samplers = 4
	}
	if cfg.Flows == 0 {
		cfg.Flows = 512
	}
	if cfg.Packets == 0 {
		cfg.Packets = 300_000
	}
	if cfg.ChurnEvery == 0 {
		cfg.ChurnEvery = 20_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 17
	}

	rules, err := packetPathRules(cfg)
	if err != nil {
		return nil, err
	}
	trace, inPorts := packetPathTrace(cfg)

	res := &PacketPathResult{
		Rules: cfg.Rules, Samplers: cfg.Samplers,
		Flows: cfg.Flows, Packets: cfg.Packets,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}
	var hitRate float64
	run := func(fast bool) (time.Duration, packetPathDigest, error) {
		sw := dataplane.NewSwitch("pp0", 32, cfg.Rules+1)
		sw.SetFastPath(fast)
		for _, r := range rules {
			if err := sw.TCAM().AddRule(r); err != nil {
				return 0, packetPathDigest{}, err
			}
		}
		var d packetPathDigest
		samplerFilters := []dataplane.Filter{
			{},
			{Proto: dataplane.ProtoTCP},
			{DstPort: 80},
			{FlagsSet: dataplane.FlagSYN},
			{SrcPrefix: mustPfx("10.1.0.0/16")},
		}
		for i := 0; i < cfg.Samplers; i++ {
			sw.AddSampler(samplerFilters[i%len(samplerFilters)], 1+3*i, func(dataplane.Packet) { d.sampled++ })
		}
		churns := 0
		start := time.Now()
		for i, p := range trace {
			if cfg.ChurnEvery > 0 && i > 0 && i%cfg.ChurnEvery == 0 {
				// Reinstall a rule (replacement bumps the generation and
				// invalidates both flow caches wholesale) — the cost of
				// churn on the cached path is part of what we measure.
				r := rules[churns%len(rules)]
				r.Note = fmt.Sprintf("churn%d", churns)
				if err := sw.TCAM().AddRule(r); err != nil {
					return 0, packetPathDigest{}, err
				}
				churns++
			}
			v := sw.Inject(p, inPorts[i], (i%31)+1)
			if v.Matched {
				d.matched++
			}
		}
		elapsed := time.Since(start)
		res.Churns = churns
		d.dropped = sw.Dropped()
		for _, r := range sw.TCAM().Rules() {
			st, _ := sw.TCAM().Stats(r.Filter)
			d.rulePackets += st.Packets
		}
		if fast {
			hitRate = sw.CacheStats().HitRate()
		}
		return elapsed, d, nil
	}

	naiveT, naiveD, err := run(false)
	if err != nil {
		return nil, err
	}
	fastT, fastD, err := run(true)
	if err != nil {
		return nil, err
	}
	res.NaiveNsPerPkt = float64(naiveT.Nanoseconds()) / float64(cfg.Packets)
	res.FastNsPerPkt = float64(fastT.Nanoseconds()) / float64(cfg.Packets)
	if res.FastNsPerPkt > 0 {
		res.Speedup = res.NaiveNsPerPkt / res.FastNsPerPkt
	}
	res.HitRate = hitRate
	res.Matched = fastD.matched
	res.Dropped = fastD.dropped
	res.Sampled = fastD.sampled
	res.RulePackets = fastD.rulePackets
	res.Consistent = fastD == naiveD
	if !res.Consistent {
		return res, fmt.Errorf("packet-path: fast and naive paths diverged: fast %+v, naive %+v", fastD, naiveD)
	}
	return res, nil
}

// packetPathRules builds the deterministic monitoring rule set: exact
// service rules (dport), protocol rules, per-port rules, prefix blocks
// and a low-priority drop rule, with priority ties throughout.
func packetPathRules(cfg PacketPathConfig) ([]dataplane.Rule, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rules := make([]dataplane.Rule, 0, cfg.Rules)
	retries := 0 // widens the small port ranges so dedup always terminates
	for len(rules) < cfg.Rules {
		var f dataplane.Filter
		action := dataplane.ActCount
		switch len(rules) % 6 {
		case 0:
			f.DstPort = uint16(80 + rng.Intn(16+retries))
		case 1:
			f.DstPort = uint16(80 + rng.Intn(16+retries))
			f.Proto = dataplane.ProtoTCP
		case 2:
			f.Proto = []dataplane.Proto{dataplane.ProtoTCP, dataplane.ProtoUDP, dataplane.ProtoICMP}[rng.Intn(3)]
			f.SrcPort = uint16(1024 + rng.Intn(2000))
		case 3:
			f.InPort = 1 + rng.Intn(16)
			f.SrcPort = uint16(1024 + rng.Intn(2000))
		case 4:
			f.SrcPrefix = mustPfx(fmt.Sprintf("10.%d.0.0/16", rng.Intn(100)))
		case 5:
			f.DstPort = uint16(6000 + rng.Intn(100+retries))
			action = dataplane.ActDrop
		}
		dup := false
		for _, prev := range rules {
			if prev.Filter == f {
				dup = true
				break
			}
		}
		if dup {
			retries++
			continue
		}
		retries = 0
		rules = append(rules, dataplane.Rule{Priority: rng.Intn(4), Filter: f, Action: action, Note: fmt.Sprintf("pp%d", len(rules))})
	}
	return rules, nil
}

// packetPathTrace pre-generates the skewed packet trace: flows drawn
// with a power-law bias so a small set of heavy flows dominates, as in
// real data center traffic.
func packetPathTrace(cfg PacketPathConfig) ([]dataplane.Packet, []int) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	pool := make([]dataplane.Packet, cfg.Flows)
	ports := make([]int, cfg.Flows)
	for i := range pool {
		p := dataplane.Packet{
			SrcIP:   randIP(rng),
			DstIP:   randIP(rng),
			SrcPort: uint16(1024 + rng.Intn(30000)),
			DstPort: uint16(80 + rng.Intn(16)),
			Proto:   []dataplane.Proto{dataplane.ProtoTCP, dataplane.ProtoTCP, dataplane.ProtoUDP}[rng.Intn(3)],
			Size:    64 + rng.Intn(1400),
		}
		if p.Proto == dataplane.ProtoTCP && rng.Intn(4) == 0 {
			p.Flags = dataplane.FlagSYN
		}
		if rng.Intn(50) == 0 { // occasional flow toward a drop rule
			p.DstPort = uint16(6000 + rng.Intn(100))
		}
		pool[i] = p
		ports[i] = 1 + rng.Intn(16)
	}
	trace := make([]dataplane.Packet, cfg.Packets)
	inPorts := make([]int, cfg.Packets)
	for i := range trace {
		idx := int(float64(cfg.Flows) * math.Pow(rng.Float64(), 3))
		trace[i] = pool[idx]
		inPorts[i] = ports[idx]
	}
	return trace, inPorts
}

// Table renders the result in the experiment-table format.
func (r *PacketPathResult) Table() *Table {
	t := &Table{
		Title:   "Packet path: linear classifier vs bucketed index + flow cache",
		Columns: []string{"value"},
		Rows: []Row{
			{Label: "rules installed", Values: []string{fmt.Sprintf("%d", r.Rules)}},
			{Label: "samplers", Values: []string{fmt.Sprintf("%d", r.Samplers)}},
			{Label: "flows (skewed)", Values: []string{fmt.Sprintf("%d", r.Flows)}},
			{Label: "packets", Values: []string{fmt.Sprintf("%d", r.Packets)}},
			{Label: "rule churns", Values: []string{fmt.Sprintf("%d", r.Churns)}},
			{Label: "naive ns/pkt", Values: []string{fmtFloat(r.NaiveNsPerPkt)}},
			{Label: "fast ns/pkt", Values: []string{fmtFloat(r.FastNsPerPkt)}},
			{Label: "speedup", Values: []string{fmt.Sprintf("%.1fx", r.Speedup)}},
			{Label: "cache hit rate", Values: []string{fmtPercent(r.HitRate)}},
			{Label: "verdicts identical", Values: []string{fmt.Sprintf("%v", r.Consistent)}},
		},
	}
	t.Notes = append(t.Notes,
		"digest (matched/dropped/sampled/rule counters) compared across paths: the fast classifier changes no observable outcome",
		fmt.Sprintf("digest: matched=%d dropped=%d sampled=%d rule-packets=%d", r.Matched, r.Dropped, r.Sampled, r.RulePackets))
	return t
}
