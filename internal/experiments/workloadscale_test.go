package experiments

import (
	"testing"
	"time"
)

// TestWorkloadScaleConsistent runs the digest A/B at reduced scale with
// the worker pool forced on, so `go test -race` exercises the sharded
// generator's concurrent path and the divergence gate together.
func TestWorkloadScaleConsistent(t *testing.T) {
	res, err := WorkloadScale(WorkloadScaleConfig{
		Leaves:       6,
		HostsPerLeaf: 8,
		Duration:     500 * time.Millisecond,
		Workers:      []int{4},
		ForceWorkers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(res.Runs))
	}
	serial, sharded := res.Runs[0], res.Runs[1]
	if !sharded.Consistent {
		t.Fatalf("sharded digest %s diverged from serial %s", sharded.Digest, serial.Digest)
	}
	if sharded.Digest != serial.Digest {
		t.Fatalf("combined digests differ: %s vs %s", sharded.Digest, serial.Digest)
	}
	if serial.CentralShare != 1 {
		t.Fatalf("serial central share = %v, want 1", serial.CentralShare)
	}
	// The tentpole claim: the attack scenarios no longer serialize on
	// the central shard. With 16 switches and all scenario sources
	// spread over the leaves, shard 0 should be a small minority of
	// executed events.
	if sharded.CentralShare >= 0.5 {
		t.Fatalf("sharded central share = %.3f, want < 0.5 (workload still serializing on shard 0)", sharded.CentralShare)
	}
	if sharded.Delivered == 0 {
		t.Fatal("sharded run delivered no packets")
	}
}
