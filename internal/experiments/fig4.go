package experiments

import (
	"fmt"
	"strings"
	"time"

	"farm/internal/baselines/sflow"
	"farm/internal/baselines/sonata"
	"farm/internal/core"
	"farm/internal/dataplane"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
	"farm/internal/seeder"
	"farm/internal/traffic"
)

// farmChangeReportHH is the HH seed used for network-load measurements:
// like List. 2 but it only reports when the hitter set changes, which is
// what makes FARM's central traffic a function of the HH churn rate
// instead of the detection rate ("1 packet per minute for every 100
// additional ports", §VI-B-b).
const farmChangeReportHH = `
machine HHDelta {
  place all;
  poll pollStats = Poll { .ival = 10, .what = port ANY };
  external long threshold;
  list hitters;
  list reported;

  state observe {
    util (res) {
      if (res.vCPU >= 0.25 and res.RAM >= 64) then { return res.vCPU; }
    }
    when (pollStats as stats) do {
      hitters = getHH(stats, threshold);
      if (hitters <> reported) then {
        send hitters to harvester;
        reported = hitters;
      }
    }
  }
}
`

// Fig4Config parameterizes the network-load sweep.
type Fig4Config struct {
	// PortCounts is the x-axis (total monitored host ports); nil means
	// the default sweep.
	PortCounts []int
	// HeavyRatio and Churn follow the production observations (§VI-B-b):
	// 1-10% heavy, changing up to once a minute. Defaults: 5%, 10 s
	// (scaled from 1/min to keep runs short; see EXPERIMENTS.md).
	HeavyRatio float64
	Churn      time.Duration
	// Duration is the measured window per point; 0 means 20 s.
	Duration time.Duration
	// Engine selects the executor for all three systems: the FARM runs
	// and — now that their agents are per-switch — the sFlow and Sonata
	// baselines too. Output is byte-identical to serial either way.
	Engine EngineConfig
}

// Fig4Point is one (system, ports) measurement.
type Fig4Point struct {
	Ports       int
	PktPerSec   float64
	BytesPerSec float64
	// Imbalance is max/mean central-lane bytes across shards for this
	// point's run — how unevenly the collection load spread. It is
	// lane-count dependent (serial runs have one lane), so it renders in
	// ParallelStats, outside the determinism-compared Table.
	Imbalance float64
}

// Fig4Result is the reproduced Fig. 4 (network load toward the central
// components for HH detection).
type Fig4Result struct {
	Systems  map[string][]Fig4Point // keyed by system label
	Order    []string
	Parallel bool
}

// Fig4 sweeps fabric sizes and measures central-link load for FARM,
// sFlow at 1 ms and 10 ms export, and Sonata with 75% aggregation.
func Fig4(cfg Fig4Config) (*Fig4Result, error) {
	if cfg.PortCounts == nil {
		cfg.PortCounts = []int{96, 240, 480, 960, 1920}
	}
	if cfg.HeavyRatio == 0 {
		cfg.HeavyRatio = 0.05
	}
	if cfg.Churn == 0 {
		cfg.Churn = 10 * time.Second
	}
	if cfg.Duration == 0 {
		cfg.Duration = 20 * time.Second
	}
	res := &Fig4Result{
		Systems:  map[string][]Fig4Point{},
		Order:    []string{"FARM", "sFlow 1ms", "sFlow 10ms", "Sonata (75% agg)"},
		Parallel: cfg.Engine.Parallel(),
	}
	for _, ports := range cfg.PortCounts {
		leaves := ports / 48
		if leaves < 1 {
			leaves = 1
		}
		hosts := ports / leaves
		if hosts > 250 {
			hosts = 250
		}

		farm, err := fig4FARM(leaves, hosts, cfg)
		if err != nil {
			return nil, err
		}
		res.Systems["FARM"] = append(res.Systems["FARM"], farm)

		for _, sf := range []struct {
			label string
			poll  time.Duration
		}{{"sFlow 1ms", time.Millisecond}, {"sFlow 10ms", 10 * time.Millisecond}} {
			p, err := fig4SFlow(leaves, hosts, sf.poll, cfg)
			if err != nil {
				return nil, err
			}
			res.Systems[sf.label] = append(res.Systems[sf.label], p)
		}

		p, err := fig4Sonata(leaves, hosts, cfg)
		if err != nil {
			return nil, err
		}
		res.Systems["Sonata (75% agg)"] = append(res.Systems["Sonata (75% agg)"], p)
	}
	return res, nil
}

// Table renders the result.
func (r *Fig4Result) Table() *Table {
	t := &Table{
		Title:   "Fig. 4: network load toward central components vs. monitored ports",
		Columns: []string{"ports", "pkts/s", "bytes/s"},
	}
	for _, sys := range r.Order {
		for _, p := range r.Systems[sys] {
			t.Rows = append(t.Rows, Row{
				Label:  sys,
				Values: []string{fmtFloat(float64(p.Ports)), fmtFloat(p.PktPerSec), fmtFloat(p.BytesPerSec)},
			})
		}
	}
	t.Notes = append(t.Notes,
		"FARM reports only hitter-set changes; collector approaches report every interval",
		"HH ratio 5%, churn scaled to 10s (paper: <=1/min) to keep runs short")
	return t
}

// ParallelStats renders the per-point shard-imbalance column for
// sharded runs. It lives outside Table deliberately: imbalance is
// max/mean over central-net lanes, and the lane count differs between
// engines (serial = 1 lane), so including it in Table would break the
// byte-identity the determinism gates check.
func (r *Fig4Result) ParallelStats() string {
	if !r.Parallel {
		return ""
	}
	var b strings.Builder
	b.WriteString("shard imbalance (max/mean central-lane bytes) per point:\n")
	for _, sys := range r.Order {
		for _, p := range r.Systems[sys] {
			fmt.Fprintf(&b, "  %-18s %5d ports  %.2f\n", sys, p.Ports, p.Imbalance)
		}
	}
	return b.String()
}

func fig4Workload(fab *fabric.Fabric, cfg Fig4Config) *traffic.BulkWorkload {
	return traffic.NewBulkWorkload(fab, traffic.BulkConfig{
		Tick:       10 * time.Millisecond,
		BaseRate:   1e5,
		HeavyRate:  5e7,
		HeavyRatio: cfg.HeavyRatio,
		Churn:      cfg.Churn,
		Seed:       7,
	})
}

func fig4FARM(leaves, hosts int, cfg Fig4Config) (Fig4Point, error) {
	fab, loop, stop, err := newFabricOn(cfg.Engine, 2, leaves, hosts)
	if err != nil {
		return Fig4Point{}, err
	}
	defer stop()
	sd := seeder.New(fab, seeder.Options{})
	if err := sd.AddTask(seeder.TaskSpec{
		Name: "hh", Source: farmChangeReportHH,
		Externals: map[string]map[string]core.Value{"HHDelta": {"threshold": int64(400_000)}},
	}); err != nil {
		return Fig4Point{}, err
	}
	w := fig4Workload(fab, cfg)
	defer w.Stop()
	loop.RunFor(time.Second) // settle
	snap := fab.CentralNet.Snapshot()
	loop.RunFor(cfg.Duration)
	pps, bps := fab.CentralNet.RateSince(snap)
	return Fig4Point{Ports: leaves * hosts, PktPerSec: pps, BytesPerSec: bps,
		Imbalance: fab.CentralNet.Imbalance()}, nil
}

func fig4SFlow(leaves, hosts int, poll time.Duration, cfg Fig4Config) (Fig4Point, error) {
	fab, loop, stop, err := newFabricOn(cfg.Engine, 2, leaves, hosts)
	if err != nil {
		return Fig4Point{}, err
	}
	defer stop()
	sys := sflow.Deploy(fab, sflow.Config{
		PollInterval:           poll,
		HHThresholdBytesPerSec: 10_000_000,
	})
	defer sys.Stop()
	w := fig4Workload(fab, cfg)
	defer w.Stop()
	loop.RunFor(200 * time.Millisecond)
	snap := fab.CentralNet.Snapshot()
	// sFlow runs are expensive at 1 ms; a shorter window suffices since
	// its load is strictly periodic.
	loop.RunFor(cfg.Duration / 4)
	pps, bps := fab.CentralNet.RateSince(snap)
	return Fig4Point{Ports: leaves * hosts, PktPerSec: pps, BytesPerSec: bps,
		Imbalance: fab.CentralNet.Imbalance()}, nil
}

func fig4Sonata(leaves, hosts int, cfg Fig4Config) (Fig4Point, error) {
	fab, loop, stop, err := newFabricOn(cfg.Engine, 2, leaves, hosts)
	if err != nil {
		return Fig4Point{}, err
	}
	defer stop()
	window := 3 * time.Second
	q := sonata.Query{
		Name: "hh", Key: sonata.KeyByInPort, Reduce: sonata.SumBytes,
		Window: window, Threshold: 1e12,
	}
	sys := sonata.Deploy(fab, nil, sonata.Config{AggregationFactor: 0.75})
	defer sys.Stop()
	w := fig4Workload(fab, cfg)
	defer w.Stop()
	// Window flushes carry per-port byte counts from every leaf. One
	// flush agent per leaf, on the leaf's home shard: the port counters
	// it reads and the delta baseline it keeps are switch-local, and the
	// export enters the collection network from the right shard.
	var flushes []engine.Ticker
	for _, sw := range fab.Topology().Switches() {
		if sw.Role != netmodel.Leaf {
			continue
		}
		swID := sw.ID
		prev := map[int]dataplane.PortStats{}
		flushes = append(flushes, fab.SchedulerFor(swID).Every(window, func() {
			cur := map[int]dataplane.PortStats{}
			bytesByPort := map[int]float64{}
			for port := 1; port <= fab.NumPorts(swID); port++ {
				st, err := fab.Switch(swID).PortStats(port)
				if err != nil {
					continue
				}
				cur[port] = st
				d := float64(st.TxBytes - prev[port].TxBytes)
				if d > 0 {
					bytesByPort[port] = d
				}
			}
			prev = cur
			if len(bytesByPort) > 0 {
				sys.IngestCounterWindow(q, swID, bytesByPort)
			}
		}))
	}
	defer func() {
		for _, tk := range flushes {
			tk.Stop()
		}
	}()
	loop.RunFor(time.Second)
	snap := fab.CentralNet.Snapshot()
	loop.RunFor(cfg.Duration)
	pps, bps := fab.CentralNet.RateSince(snap)
	return Fig4Point{Ports: leaves * hosts, PktPerSec: pps, BytesPerSec: bps,
		Imbalance: fab.CentralNet.Imbalance()}, nil
}
