package experiments

import "testing"

// The quick-scale version of the farm-bench seed-path gate: a couple of
// catalogue tasks at small fabric scale must produce identical digests
// on all three back ends.
func TestSeedPathConsistent(t *testing.T) {
	res, err := SeedPath(SeedPathConfig{
		Tasks:  []string{"hh", "syn-flood"},
		Leaves: 2,
		Millis: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("back ends diverged: %+v", res.Tasks)
	}
	for _, tr := range res.Tasks {
		if tr.Seeds == 0 {
			t.Fatalf("%s: no seeds deployed", tr.Task)
		}
		if tr.Digest == "" {
			t.Fatalf("%s: empty digest", tr.Task)
		}
		if tr.Program.StackInstrs == 0 || tr.Program.RegisterInstrs == 0 || tr.Program.MaxRegs == 0 {
			t.Fatalf("%s: missing program counts: %+v", tr.Task, tr.Program)
		}
	}
	if res.Table().Render() == "" {
		t.Fatal("empty table")
	}
}
