package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"farm/internal/transport"
)

// TransportScaleConfig parameterizes the batched-wire-path A/B
// experiment: the same deterministic record stream — RecordsPerSeed
// records for each of N seeds — driven through the TCP transport once
// with one-record-per-round-trip calls (the reference) and once with
// batched CallBatch frames, comparing per-seed response digests. Any
// divergence is an error: batching must change throughput, never
// bytes. The sweep runs to 10k seeds by default, the scale where the
// per-call overhead dominated before the frame arena rebuild.
type TransportScaleConfig struct {
	// SeedCounts are the sweep points; nil means {100, 1000, 10000}.
	SeedCounts []int
	// RecordsPerSeed is how many records each seed ships; 0 means 8.
	RecordsPerSeed int
	// RecordBytes is the record payload size; 0 means 256 (a typical
	// statistics record).
	RecordBytes int
	// Batch is the CallBatch size for the batched runs; 0 means 64.
	Batch int
	// Conns is the number of concurrent client connections (each owns a
	// contiguous block of seeds); 0 means 4.
	Conns int
}

// TransportScaleRun is one (mode, seed count) measurement.
type TransportScaleRun struct {
	Label string `json:"label"`
	Seeds int    `json:"seeds"`
	// Batch is the records-per-frame for this run (1 = unbatched).
	Batch int `json:"batch"`
	// Digest folds the per-seed response digests in seed order —
	// byte-identical between the unbatched and batched modes by
	// contract.
	Digest     string  `json:"digest"`
	Records    uint64  `json:"records"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	// AllocsPerOp is the heap-allocation count per record over the
	// whole process (client goroutines + server) during the run — an
	// aggregate runtime.MemStats delta, so it includes scheduler noise,
	// unlike the surgical BenchmarkTransport* numbers.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Consistent reports whether this run's digests matched the
	// unbatched reference (vacuously true for the reference itself).
	Consistent bool `json:"consistent"`
}

// TransportScaleResult is the full sweep outcome.
type TransportScaleResult struct {
	RecordBytes    int                 `json:"record_bytes"`
	RecordsPerSeed int                 `json:"records_per_seed"`
	Conns          int                 `json:"conns"`
	GoMaxProcs     int                 `json:"gomaxprocs"`
	NumCPU         int                 `json:"num_cpu"`
	Runs           []TransportScaleRun `json:"runs"`
}

// tsHandler is the soil-side echo-with-transform: the response is the
// request with every byte flipped through a constant, so a digest match
// proves the records crossed the wire and the handler, not just that
// the client hashed its own buffers.
func tsHandler(dst, req []byte) []byte {
	for _, b := range req {
		dst = append(dst, b^0x5A)
	}
	return dst
}

const (
	fnvOffset64 = uint64(14695981039346656037)
	fnvPrime64  = uint64(1099511628211)
)

func fnvFold(h uint64, p []byte) uint64 {
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// tsFillRecord writes the deterministic record for (seed, seq):
// [4B seed][4B seq][payload derived from both].
func tsFillRecord(buf []byte, seed, seq int) {
	buf[0], buf[1], buf[2], buf[3] = byte(seed>>24), byte(seed>>16), byte(seed>>8), byte(seed)
	buf[4], buf[5], buf[6], buf[7] = byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq)
	for i := 8; i < len(buf); i++ {
		buf[i] = byte(seed*31 + seq*7 + i)
	}
}

// tsRun drives one full sweep point: seeds × RecordsPerSeed records
// through Conns connections, batch records per frame (1 = plain Call).
// It returns the per-seed digests for the A/B comparison.
func tsRun(label string, seeds, batch int, cfg TransportScaleConfig) (TransportScaleRun, []uint64, error) {
	srv, err := transport.NewTCPServer(tsHandler)
	if err != nil {
		return TransportScaleRun{}, nil, err
	}
	defer srv.Close()

	conns := cfg.Conns
	if conns > seeds {
		conns = seeds
	}
	// Workers write disjoint seed blocks of the shared digest slice, so
	// no lock is needed; the final fold walks it in seed order.
	digests := make([]uint64, seeds)
	errs := make([]error, conns)
	per := (seeds + conns - 1) / conns

	var wg sync.WaitGroup
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for w := 0; w < conns; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > seeds {
			hi = seeds
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			conn, err := srv.Dial()
			if err != nil {
				errs[w] = err
				return
			}
			defer conn.Close()
			// Reusable request slots: the record buffers and the batch
			// header slice live for the whole worker.
			bufs := make([][]byte, batch)
			for i := range bufs {
				bufs[i] = make([]byte, cfg.RecordBytes)
			}
			reqs := make([][]byte, 0, batch)
			for seed := lo; seed < hi; seed++ {
				h := fnvOffset64
				if batch <= 1 {
					for seq := 0; seq < cfg.RecordsPerSeed; seq++ {
						tsFillRecord(bufs[0], seed, seq)
						resp, err := conn.Call(bufs[0])
						if err != nil {
							errs[w] = err
							return
						}
						h = fnvFold(h, resp)
					}
				} else {
					for base := 0; base < cfg.RecordsPerSeed; base += batch {
						n := cfg.RecordsPerSeed - base
						if n > batch {
							n = batch
						}
						reqs = reqs[:0]
						for j := 0; j < n; j++ {
							tsFillRecord(bufs[j], seed, base+j)
							reqs = append(reqs, bufs[j])
						}
						resps, err := conn.CallBatch(reqs)
						if err != nil {
							errs[w] = err
							return
						}
						for _, r := range resps {
							h = fnvFold(h, r)
						}
					}
				}
				digests[seed] = h
			}
		}(w, lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&msAfter)
	for _, err := range errs {
		if err != nil {
			return TransportScaleRun{}, nil, err
		}
	}

	records := uint64(seeds) * uint64(cfg.RecordsPerSeed)
	run := TransportScaleRun{
		Label:       label,
		Seeds:       seeds,
		Batch:       batch,
		Digest:      tsCombine(digests),
		Records:     records,
		MsgsPerSec:  float64(records) / elapsed.Seconds(),
		ElapsedMS:   float64(elapsed.Nanoseconds()) / 1e6,
		AllocsPerOp: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(records),
	}
	return run, digests, nil
}

// tsCombine folds the per-seed digests into one value in seed order.
func tsCombine(digests []uint64) string {
	h := fnvOffset64
	for seed, v := range digests {
		for _, x := range []uint64{uint64(seed), v} {
			for i := 0; i < 8; i++ {
				h ^= x & 0xff
				h *= fnvPrime64
				x >>= 8
			}
		}
	}
	return fmt.Sprintf("%016x", h)
}

func tsDigestsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TransportScale runs the batched-vs-unbatched wire-path A/B sweep and
// errors on any digest divergence between the two emission modes.
func TransportScale(cfg TransportScaleConfig) (*TransportScaleResult, error) {
	if cfg.SeedCounts == nil {
		cfg.SeedCounts = []int{100, 1000, 10000}
	}
	if cfg.RecordsPerSeed == 0 {
		cfg.RecordsPerSeed = 8
	}
	if cfg.RecordBytes == 0 {
		cfg.RecordBytes = 256
	}
	if cfg.RecordBytes < 8 {
		return nil, fmt.Errorf("transport-scale: RecordBytes %d is below the 8-byte record header", cfg.RecordBytes)
	}
	if cfg.Batch == 0 {
		cfg.Batch = 64
	}
	if cfg.Conns == 0 {
		cfg.Conns = 4
	}
	res := &TransportScaleResult{
		RecordBytes:    cfg.RecordBytes,
		RecordsPerSeed: cfg.RecordsPerSeed,
		Conns:          cfg.Conns,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
	}

	var firstDivergence error
	for _, seeds := range cfg.SeedCounts {
		ref, refDigests, err := tsRun(fmt.Sprintf("unbatched-%d", seeds), seeds, 1, cfg)
		if err != nil {
			return nil, err
		}
		ref.Consistent = true
		res.Runs = append(res.Runs, ref)

		run, digests, err := tsRun(fmt.Sprintf("batched-%d", seeds), seeds, cfg.Batch, cfg)
		if err != nil {
			return nil, err
		}
		run.Consistent = tsDigestsEqual(refDigests, digests)
		if !run.Consistent && firstDivergence == nil {
			firstDivergence = fmt.Errorf(
				"transport-scale: batched run at %d seeds diverged from unbatched (digest %s vs %s)",
				seeds, run.Digest, ref.Digest)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, firstDivergence
}

// Table renders the result. MsgsPerSec, ElapsedMS, and AllocsPerOp vary
// by host (they are the point of the experiment); the Digest column is
// the determinism artifact.
func (r *TransportScaleResult) Table() *Table {
	t := &Table{
		Title:   "Transport scale: unbatched vs batched wire path (digest A/B)",
		Columns: []string{"seeds", "batch", "digest", "records", "msgs/sec", "allocs/op", "wall ms"},
	}
	for _, run := range r.Runs {
		t.Rows = append(t.Rows, Row{
			Label: run.Label,
			Values: []string{
				fmt.Sprintf("%d", run.Seeds),
				fmt.Sprintf("%d", run.Batch),
				run.Digest,
				fmt.Sprintf("%d", run.Records),
				fmt.Sprintf("%.0f", run.MsgsPerSec),
				fmt.Sprintf("%.1f", run.AllocsPerOp),
				fmtFloat(run.ElapsedMS),
			},
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d-byte records, %d per seed, %d client connections; TCP loopback", r.RecordBytes, r.RecordsPerSeed, r.Conns),
		"digest = per-seed FNV-1a over handler responses, folded in seed order; identical across modes by contract",
		"allocs/op = whole-process Mallocs delta per record (includes scheduler noise; see BenchmarkTransport* for the surgical 0-alloc gate)")
	return t
}
