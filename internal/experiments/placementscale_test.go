package experiments

import "testing"

// TestPlacementScaleConsistent runs the churn-script digest A/B at
// reduced scale, so `go test -race` exercises the parallel per-switch
// LP fan-out and the divergence gate together.
func TestPlacementScaleConsistent(t *testing.T) {
	res, err := PlacementScale(PlacementScaleConfig{
		Switches: 20,
		Seeds:    120,
		Tasks:    8,
		Workers:  []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 5 {
		t.Fatalf("got %d steps, want 5", len(res.Steps))
	}
	for _, step := range res.Steps {
		ref := step.Runs[0]
		for _, run := range step.Runs[1:] {
			if !run.Consistent {
				t.Fatalf("step %s run %s diverged: digest %s vs serial %s",
					step.Label, run.Label, run.Digest, ref.Digest)
			}
		}
	}
	// The churn steps after cold start must actually warm-start: the
	// point of the dirty-set plumbing.
	for _, step := range res.Steps[1:] {
		if !step.Runs[0].Warm {
			t.Fatalf("step %s reference did not warm-start", step.Label)
		}
	}
	if res.GoMaxProcs <= 0 || res.NumCPU <= 0 {
		t.Fatalf("missing host parallelism fields: GOMAXPROCS=%d NumCPU=%d",
			res.GoMaxProcs, res.NumCPU)
	}
}
