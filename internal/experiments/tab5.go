package experiments

// Tab5 reproduces the paper's Tab. V, the qualitative feature matrix of
// generic M&M solutions: decentralized processing [DEC], expressiveness
// [EXP], platform independence [IND], and cross-task optimization
// [OPT]. For FARM's row, each claim is backed by executable evidence in
// this repository; the other rows restate the paper's assessment of the
// related systems (which are emulated here only as far as the
// evaluation needs them).
func Tab5() *Table {
	t := &Table{
		Title:   "Tab. V: features of generic M&M solutions",
		Columns: []string{"[DEC]", "[EXP]", "[IND]", "[OPT]"},
		Rows: []Row{
			{Label: "sFlow", Values: []string{"no", "no", "yes", "no"}},
			{Label: "Sonata", Values: []string{"partial", "partial", "no", "partial"}},
			{Label: "Newton", Values: []string{"partial", "partial", "no", "partial"}},
			{Label: "OmniMon", Values: []string{"partial", "no", "yes", "no"}},
			{Label: "BeauCoup", Values: []string{"partial", "partial", "no", "no"}},
			{Label: "Marple", Values: []string{"partial", "partial", "yes", "no"}},
			{Label: "FARM", Values: []string{"yes", "yes", "yes", "yes"}},
		},
		Notes: []string{
			"FARM [DEC]: switch-local detection+reaction — internal/tasks integration tests, Tab. 4 experiment",
			"FARM [EXP]: 18 stateful multi-state tasks incl. reactions — internal/tasks, docs/almanac.md",
			"FARM [IND]: seeds target the Driver interface + XML wire format — internal/dataplane, almanac XML round-trip tests",
			"FARM [OPT]: joint cross-task placement with aggregation benefits — internal/placement, Fig. 7/8 experiments",
			"non-FARM rows restate the paper's qualitative assessment (§VII)",
		},
	}
	return t
}
