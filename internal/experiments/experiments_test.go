package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestTab4Shape(t *testing.T) {
	res, err := Tab4(Tab4Config{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Tab4Row{}
	for _, r := range res.Rows {
		byName[r.System] = r
	}
	farm := byName["FARM"].Time
	sf := byName["sFlow"].Time
	so := byName["Sonata"].Time
	if farm <= 0 || sf <= 0 || so <= 0 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	// The ordering claim of Tab. 4: FARM << Planck < Helios < sFlow << Sonata.
	if farm > 5*time.Millisecond {
		t.Fatalf("FARM detection %v, want low single-digit ms", farm)
	}
	if sf < 10*farm {
		t.Fatalf("sFlow %v should be >=10x FARM %v", sf, farm)
	}
	if so < 10*sf {
		t.Fatalf("Sonata %v should be >=10x sFlow %v", so, sf)
	}
	// Headline factor: Sonata/FARM in the thousands (paper: 3427x).
	if ratio := float64(so) / float64(farm); ratio < 500 {
		t.Fatalf("Sonata/FARM ratio = %.0fx, want >= 500x", ratio)
	}
	out := res.Table().Render()
	for _, want := range []string{"FARM", "Planck", "Helios", "sFlow", "Sonata"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %s:\n%s", want, out)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(Fig4Config{
		PortCounts: []int{48, 192},
		Duration:   4 * time.Second,
		Churn:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	farm := res.Systems["FARM"]
	sf1 := res.Systems["sFlow 1ms"]
	sf10 := res.Systems["sFlow 10ms"]
	so := res.Systems["Sonata (75% agg)"]
	if len(farm) != 2 || len(sf1) != 2 || len(sf10) != 2 || len(so) != 2 {
		t.Fatalf("series lengths: %d %d %d %d", len(farm), len(sf1), len(sf10), len(so))
	}
	// FARM reports changes (nonzero under churn) but stays orders of
	// magnitude below the collectors.
	if farm[1].BytesPerSec <= 0 {
		t.Fatal("FARM sent nothing despite churn")
	}
	if farm[1].BytesPerSec*100 > sf10[1].BytesPerSec {
		t.Fatalf("FARM %.0f B/s not <<100x sFlow10 %.0f B/s", farm[1].BytesPerSec, sf10[1].BytesPerSec)
	}
	// sFlow 1ms is ~10x sFlow 10ms.
	if sf1[1].BytesPerSec < 5*sf10[1].BytesPerSec {
		t.Fatalf("sFlow1ms %.0f vs sFlow10ms %.0f: expected ~10x", sf1[1].BytesPerSec, sf10[1].BytesPerSec)
	}
	// Collector load grows with ports; FARM grows much slower.
	if sf10[1].BytesPerSec < 2*sf10[0].BytesPerSec {
		t.Fatalf("sFlow10 did not scale with ports: %.0f -> %.0f", sf10[0].BytesPerSec, sf10[1].BytesPerSec)
	}
	// Sonata exports something but far less often than sFlow 1ms.
	if so[1].BytesPerSec <= 0 {
		t.Fatal("Sonata exported nothing")
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(Fig5Config{
		FlowCounts: []int{100, 2000, 10000},
		Duration:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// FARM grows with flows.
	if res.FARM[2].Load <= res.FARM[0].Load*5 {
		t.Fatalf("FARM load did not grow with flows: %v", res.FARM)
	}
	// sFlow is roughly flat (within 3x across a 100x flow range) and
	// higher than FARM across the sweep.
	if res.SFlow[2].Load > res.SFlow[0].Load*3 {
		t.Fatalf("sFlow load not flat: %v", res.SFlow)
	}
	for i := range res.FARM {
		if i > 0 && res.FARM[i].Load > res.SFlow[i].Load {
			t.Fatalf("FARM above sFlow at %d flows: %v vs %v",
				res.FARM[i].Flows, res.FARM[i].Load, res.SFlow[i].Load)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(Fig6Config{
		HHSeedCounts: []int{10, 60},
		MLSeedCounts: []int{10, 60, 120},
		Duration:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	hh1 := res.Variants["HH 1ms"]
	hh10 := res.Variants["HH 10ms"]
	ml1 := res.Variants["ML 1ms x1iter"]
	ml10 := res.Variants["ML 10ms x10iter (partitioned)"]
	// 1ms polling costs ~10x the 10ms variant.
	if hh1[1].Load < 4*hh10[1].Load {
		t.Fatalf("HH 1ms %v not >>4x HH 10ms %v", hh1[1].Load, hh10[1].Load)
	}
	// ML dominates HH at the same rate (Fig. 6c is much higher than 6a).
	if ml1[1].Load < 2*hh1[1].Load {
		t.Fatalf("ML@1ms %v not >> HH@1ms %v", ml1[1].Load, hh1[1].Load)
	}
	// The partitioned ML panel scales to more seeds at lower load than
	// the unpartitioned one at the same seed count.
	if ml10[1].Load >= ml1[1].Load {
		t.Fatalf("partitioned ML %v not cheaper than unpartitioned %v", ml10[1].Load, ml1[1].Load)
	}
	// Accuracy degrades when load exceeds the 4 cores.
	for _, p := range ml1 {
		if p.Load > 4 && p.Accuracy >= 1 {
			t.Fatalf("saturated run reports full accuracy: %+v", p)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(Fig7Config{
		SeedCounts:    []int{20, 60},
		Runs:          2,
		MILPShort:     200 * time.Millisecond,
		MILPLong:      10 * time.Second,
		SkipMILPAbove: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Heuristic) != 2 || len(res.MILPLong) == 0 {
		t.Fatalf("series: heuristic=%d milp=%d", len(res.Heuristic), len(res.MILPLong))
	}
	h := res.Heuristic[0]
	l := res.MILPLong[0]
	// Heuristic utility within a reasonable factor of the long-budget MILP.
	if h.Utility < 0.5*l.Utility {
		t.Fatalf("heuristic utility %.1f << MILP %.1f", h.Utility, l.Utility)
	}
	// And much faster than the long-budget exact solve at equal size.
	if h.Runtime > l.Runtime {
		t.Fatalf("heuristic %v slower than MILP long %v", h.Runtime, l.Runtime)
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(Fig8Config{SeedCounts: []int{1, 8, 32}, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	noAgg := res.NoAggregation
	agg := res.WithAggregation
	// Without aggregation the bus saturates as seeds multiply.
	if noAgg[2].Utilization < 0.9 {
		t.Fatalf("bus not saturated at 32 seeds without aggregation: %v", noAgg[2].Utilization)
	}
	if noAgg[0].Utilization > 0.9 {
		t.Fatalf("bus already saturated at 1 seed: %v", noAgg[0].Utilization)
	}
	// With aggregation utilization is flat in the seed count.
	if agg[2].Utilization > agg[0].Utilization*1.5+0.05 {
		t.Fatalf("aggregation did not flatten bus use: %v vs %v", agg[2].Utilization, agg[0].Utilization)
	}
	if res.ASICRatio < 10000 {
		t.Fatalf("ASIC ratio = %g", res.ASICRatio)
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(Fig9Config{SeedCounts: []int{1, 50, 150}, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	thrAgg := res.Configs["threads + aggregation"]
	prcAgg := res.Configs["processes + aggregation"]
	// Processes cost more CPU than threads at scale (context switches).
	if prcAgg[2].Load <= thrAgg[2].Load {
		t.Fatalf("processes %v not costlier than threads %v", prcAgg[2].Load, thrAgg[2].Load)
	}
	// Thread seeds stay cheap even with 150 seeds (paper: perform
	// equally well regardless of aggregation, >100 seeds).
	if thrAgg[2].Load > 0.5 {
		t.Fatalf("thread soil load %v too high", thrAgg[2].Load)
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(Fig10Config{SeedCounts: []int{1, 32}, CallsPerSeed: 300})
	if err != nil {
		t.Fatal(err)
	}
	// The RPC path is slower than the shared buffer at every point.
	for i := range res.SharedBuf {
		if res.TCPRPC[i].MeanLatency <= res.SharedBuf[i].MeanLatency {
			t.Fatalf("TCP %v not slower than shared buffer %v at %d seeds",
				res.TCPRPC[i].MeanLatency, res.SharedBuf[i].MeanLatency, res.SharedBuf[i].Seeds)
		}
	}
}

func TestTab1Catalogue(t *testing.T) {
	res := Tab1()
	if len(res.Rows) < 16 {
		t.Fatalf("catalogue rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.SeedLoC < 7 {
			t.Fatalf("task %s LoC = %d", r.Name, r.SeedLoC)
		}
	}
	out := res.Table().Render()
	if !strings.Contains(out, "total") {
		t.Fatal("render missing total row")
	}
}

func TestAblationRuns(t *testing.T) {
	res, err := Ablation(AblationConfig{Switches: 6, Seeds: 30, Tasks: 5, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Passes.Rows) != 3 || len(res.Migration.Rows) == 0 {
		t.Fatalf("rows: passes=%d migration=%d", len(res.Passes.Rows), len(res.Migration.Rows))
	}
	// Redistribution must add utility over greedy-only.
	greedy := res.Passes.Rows[0].Values[0]
	withLP := res.Passes.Rows[1].Values[0]
	if greedy == withLP {
		t.Log("warning: LP redistribution added no utility in this configuration")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    []Row{{Label: "x", Values: []string{"1", "2"}}},
		Notes:   []string{"n"},
	}
	out := tab.Render()
	for _, want := range []string{"== t ==", "x", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTab5Matrix(t *testing.T) {
	tab := Tab5()
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 systems", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last.Label != "FARM" {
		t.Fatalf("last row = %s, want FARM", last.Label)
	}
	for _, v := range last.Values {
		if v != "yes" {
			t.Fatalf("FARM row = %v, want all yes", last.Values)
		}
	}
}
