package experiments

import (
	"fmt"
	"time"

	"farm/internal/core"
	"farm/internal/engine"
	"farm/internal/netmodel"
	"farm/internal/seeder"
	"farm/internal/traffic"
)

// engineScaleHH is the change-report HH seed of the engine-scale
// pipeline, parameterized by task index so several staggered copies can
// run per switch (same shape as Fig. 4's farmChangeReportHH).
const engineScaleHH = `
machine HHDelta%d {
  place all;
  poll pollStats = Poll { .ival = %d, .what = port ANY };
  external long threshold;
  list hitters;
  list reported;

  state observe {
    when (pollStats as stats) do {
      hitters = getHH(stats, threshold);
      if (hitters <> reported) then {
        send hitters to harvester;
        reported = hitters;
      }
    }
  }
}
`

// EngineScaleConfig parameterizes the large-fabric engine scaling run:
// a Fig. 4/8-style monitoring pipeline (bulk port load with churning
// heavy hitters, per-switch HH seeds polling over the PCIe bus, change
// reports to the central harvester) on a fat-tree at the ROADMAP's
// 500-switch target.
type EngineScaleConfig struct {
	// K is the fat-tree arity; default 20, i.e. 5K²/4 = 500 switches.
	K int
	// HostsPerEdge is the host fan-out per edge switch; default 4.
	HostsPerEdge int
	// Tasks is the number of staggered HH monitoring tasks; each places
	// one seed on every switch. Default 4 (2000 seeds at K=20).
	Tasks int
	// Duration is the measured window of virtual time; default 2 s.
	Duration time.Duration
	// Churn is the heavy-hitter churn period; default 2 s.
	Churn time.Duration
	// Engine selects the executor.
	Engine EngineConfig
}

// EngineScaleResult is one engine-scale measurement. The Table output
// contains only virtual-time-deterministic quantities — serial and
// sharded runs must render byte-identically (the large-fabric
// determinism gate). Wall-clock and scheduler diagnostics live in the
// extra fields and are reported outside the table.
type EngineScaleResult struct {
	Switches    int
	HostPorts   int
	Seeds       int
	PktPerSec   float64
	BytesPerSec float64
	// CentralBytes is the cumulative central-link byte count at the end
	// of the run — the cross-engine equality check.
	CentralBytes uint64

	// Parallel diagnostics (sharded runs only; zero otherwise).
	Parallel bool
	Elapsed  time.Duration // wall clock, not virtual
	Epochs   uint64
	Runs     uint64
	// Imbalance is max/mean central-lane bytes across shards: how
	// unevenly the monitoring load spread (1.0 = perfectly even).
	Imbalance float64
}

// EngineScale runs the large-fabric monitoring pipeline and measures
// central-link load plus executor diagnostics.
func EngineScale(cfg EngineScaleConfig) (*EngineScaleResult, error) {
	if cfg.K == 0 {
		cfg.K = 20
	}
	if cfg.HostsPerEdge == 0 {
		cfg.HostsPerEdge = 4
	}
	if cfg.Tasks == 0 {
		cfg.Tasks = 4
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Churn == 0 {
		cfg.Churn = 2 * time.Second
	}
	topo, err := netmodel.FatTree(netmodel.FatTreeOptions{K: cfg.K, HostsPerEdge: cfg.HostsPerEdge})
	if err != nil {
		return nil, err
	}
	fab, loop, stop := newFabricOnTopology(cfg.Engine, topo)
	defer stop()
	sd := seeder.New(fab, seeder.Options{})
	for i := 0; i < cfg.Tasks; i++ {
		if err := sd.AddTask(seeder.TaskSpec{
			Name:   fmt.Sprintf("hh%d", i),
			Source: fmt.Sprintf(engineScaleHH, i, 10+i),
			Externals: map[string]map[string]core.Value{
				fmt.Sprintf("HHDelta%d", i): {"threshold": int64(400_000)},
			},
		}); err != nil {
			return nil, err
		}
	}
	w := traffic.NewBulkWorkload(fab, traffic.BulkConfig{
		Tick:       10 * time.Millisecond,
		BaseRate:   1e5,
		HeavyRate:  5e7,
		HeavyRatio: 0.05,
		Churn:      cfg.Churn,
		Seed:       7,
	})
	defer w.Stop()

	start := time.Now()
	loop.RunFor(time.Second) // settle
	snap := fab.CentralNet.Snapshot()
	loop.RunFor(cfg.Duration)
	elapsed := time.Since(start)

	pps, bps := fab.CentralNet.RateSince(snap)
	res := &EngineScaleResult{
		Switches:     topo.NumSwitches(),
		HostPorts:    len(topo.Hosts()),
		Seeds:        cfg.Tasks * topo.NumSwitches(),
		PktPerSec:    pps,
		BytesPerSec:  bps,
		CentralBytes: fab.CentralNet.Bytes(),
		Elapsed:      elapsed,
	}
	if x, ok := loop.(*engine.Sharded); ok {
		res.Parallel = true
		res.Epochs, res.Runs = x.EpochStats()
		res.Imbalance = fab.CentralNet.Imbalance()
	}
	return res, nil
}

// Table renders the deterministic portion of the result: identical for
// serial and sharded runs by the engine's determinism contract.
func (r *EngineScaleResult) Table() *Table {
	t := &Table{
		Title:   "Engine scale: Fig. 4-style pipeline on a 500-switch fat-tree",
		Columns: []string{"value"},
		Rows: []Row{
			{Label: "switches", Values: []string{fmt.Sprintf("%d", r.Switches)}},
			{Label: "host ports", Values: []string{fmt.Sprintf("%d", r.HostPorts)}},
			{Label: "HH seeds", Values: []string{fmt.Sprintf("%d", r.Seeds)}},
			{Label: "central pkts/s", Values: []string{fmtFloat(r.PktPerSec)}},
			{Label: "central bytes/s", Values: []string{fmtFloat(r.BytesPerSec)}},
			{Label: "central bytes", Values: []string{fmt.Sprintf("%d", r.CentralBytes)}},
		},
	}
	t.Notes = append(t.Notes,
		"all table values are virtual-time quantities: serial and sharded runs render identically")
	return t
}

// ParallelStats renders the sharded-run diagnostics that intentionally
// live outside the deterministic table (wall clock and scheduling vary
// run to run and engine to engine).
func (r *EngineScaleResult) ParallelStats() string {
	if !r.Parallel {
		return fmt.Sprintf("serial run: %v wall clock\n", r.Elapsed.Round(time.Millisecond))
	}
	parAvail := 0.0
	if r.Epochs > 0 {
		parAvail = float64(r.Runs) / float64(r.Epochs)
	}
	return fmt.Sprintf("sharded run: %v wall clock, %d epochs, par-avail %.1f, shard imbalance %.2f\n",
		r.Elapsed.Round(time.Millisecond), r.Epochs, parAvail, r.Imbalance)
}
