package experiments

import (
	"fmt"
	"time"

	"farm/internal/placement"
)

// Fig7Config parameterizes the placement-optimization comparison.
type Fig7Config struct {
	// SeedCounts is the x-axis; nil means a laptop-scale sweep with the
	// paper's grid shape. Full mode (cmd/farm-bench -full) uses the
	// paper sizes up to 10200 seeds on 1040 switches.
	SeedCounts []int
	// SwitchesPerSeed keeps the paper's seed:switch ratio (~10:1).
	SwitchesPerSeed float64
	// Runs per point with varying random needs (paper: 10).
	Runs int
	// MILPShort/MILPLong are the two exact-solver budgets (the paper's
	// Gurobi 1 s and 10 min).
	MILPShort time.Duration
	MILPLong  time.Duration
	// SkipMILPAbove disables the exact solver beyond this seed count
	// (branch & bound on a dense simplex does not reach paper scale;
	// the heuristic column keeps going, which is the claim under test).
	SkipMILPAbove int
	Seed          int64
}

// Fig7Point is one (solver, size) aggregate over runs.
type Fig7Point struct {
	Seeds    int
	Switches int
	Utility  float64 // mean
	Runtime  time.Duration
	Solved   int // runs that produced a placement
}

// Fig7Result is the reproduced Fig. 7 (a: utility, b: runtime).
type Fig7Result struct {
	Heuristic               []Fig7Point
	MILPShort               []Fig7Point
	MILPLong                []Fig7Point
	ShortBudget, LongBudget time.Duration
}

// Fig7 compares FARM's Alg. 1 heuristic against the time-boxed exact
// MILP across problem sizes, reporting mean monitoring utility (MU) and
// mean solver runtime per size.
func Fig7(cfg Fig7Config) (*Fig7Result, error) {
	if cfg.SeedCounts == nil {
		cfg.SeedCounts = []int{20, 30, 40, 100, 400}
	}
	if cfg.SwitchesPerSeed == 0 {
		cfg.SwitchesPerSeed = 0.1 // 10200 seeds : 1040 switches
	}
	if cfg.Runs == 0 {
		cfg.Runs = 3
	}
	if cfg.MILPShort == 0 {
		cfg.MILPShort = time.Second
	}
	if cfg.MILPLong == 0 {
		cfg.MILPLong = 20 * time.Second
	}
	if cfg.SkipMILPAbove == 0 {
		// Our from-scratch branch & bound stops producing incumbents
		// beyond ~40 seeds within minutes-scale budgets; Gurobi went
		// further in the paper. The heuristic column keeps going.
		cfg.SkipMILPAbove = 40
	}
	res := &Fig7Result{ShortBudget: cfg.MILPShort, LongBudget: cfg.MILPLong}
	for _, seeds := range cfg.SeedCounts {
		switches := int(float64(seeds) * cfg.SwitchesPerSeed)
		if switches < 2 {
			switches = 2
		}
		var hU, hT, sU, sT, lU, lT float64
		var hN, sN, lN int
		for run := 0; run < cfg.Runs; run++ {
			in := placement.RandomScenario(placement.ScenarioConfig{
				Switches: switches,
				Seeds:    seeds,
				Tasks:    10,
				Seed:     cfg.Seed + int64(run*1000+seeds),
			})
			h, err := placement.Heuristic(in)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig7 heuristic: %w", err)
			}
			hU += h.Utility
			hT += h.Runtime.Seconds()
			hN++
			if seeds <= cfg.SkipMILPAbove {
				ms, err := placement.MILP(in, placement.MILPOptions{Timeout: cfg.MILPShort})
				if err != nil {
					return nil, fmt.Errorf("experiments: fig7 milp-short: %w", err)
				}
				sU += ms.Utility
				sT += ms.Runtime.Seconds()
				sN++
				ml, err := placement.MILP(in, placement.MILPOptions{Timeout: cfg.MILPLong})
				if err != nil {
					return nil, fmt.Errorf("experiments: fig7 milp-long: %w", err)
				}
				lU += ml.Utility
				lT += ml.Runtime.Seconds()
				lN++
			}
		}
		res.Heuristic = append(res.Heuristic, Fig7Point{
			Seeds: seeds, Switches: switches,
			Utility: hU / float64(hN),
			Runtime: time.Duration(hT / float64(hN) * float64(time.Second)),
			Solved:  hN,
		})
		if sN > 0 {
			res.MILPShort = append(res.MILPShort, Fig7Point{
				Seeds: seeds, Switches: switches,
				Utility: sU / float64(sN),
				Runtime: time.Duration(sT / float64(sN) * float64(time.Second)),
				Solved:  sN,
			})
			res.MILPLong = append(res.MILPLong, Fig7Point{
				Seeds: seeds, Switches: switches,
				Utility: lU / float64(lN),
				Runtime: time.Duration(lT / float64(lN) * float64(time.Second)),
				Solved:  lN,
			})
		}
	}
	return res, nil
}

// Table renders the result.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Title:   "Fig. 7: placement utility (a) and runtime (b), heuristic vs exact MILP",
		Columns: []string{"seeds", "switches", "utility", "runtime"},
	}
	add := func(label string, pts []Fig7Point) {
		for _, p := range pts {
			t.Rows = append(t.Rows, Row{Label: label, Values: []string{
				fmt.Sprint(p.Seeds), fmt.Sprint(p.Switches),
				fmtFloat(p.Utility), fmtDuration(p.Runtime),
			}})
		}
	}
	add("FARM heuristic", r.Heuristic)
	add(fmt.Sprintf("MILP (%s)", fmtDuration(r.ShortBudget)), r.MILPShort)
	add(fmt.Sprintf("MILP (%s)", fmtDuration(r.LongBudget)), r.MILPLong)
	t.Notes = append(t.Notes,
		"MILP rows stop where branch & bound exceeds its budget without a usable incumbent",
		"paper grid: up to 10200 seeds / 1040 switches; run cmd/farm-bench -exp fig7 -full for that scale (heuristic only)")
	return t
}
