package experiments

import (
	"fmt"
	"time"

	"farm/internal/baselines/sflow"
	"farm/internal/baselines/sonata"
	"farm/internal/baselines/specialized"
	"farm/internal/core"
	"farm/internal/dataplane"
	"farm/internal/netmodel"
	"farm/internal/seeder"
	"farm/internal/tasks"
)

// Tab4Config parameterizes the detection-time comparison.
type Tab4Config struct {
	// SFlowPoll is the sFlow counter-export period (the deployment
	// default that yields the paper's ~100 ms row); 0 means 50 ms
	// (detection needs two exports plus the analysis tick).
	SFlowPoll time.Duration
	// SonataWindow is the stream window; 0 means 3 s (with the micro-
	// batch delay this lands at the paper's ~3.4 s row).
	SonataWindow time.Duration
}

// Tab4Row is one system's measured detection time.
type Tab4Row struct {
	System string
	Kind   string // G(eneric) / S(pecialized)
	Time   time.Duration
	Mode   string // measured / reference
}

// Tab4Result is the reproduced Tab. 4.
type Tab4Result struct {
	Rows []Tab4Row
}

// Tab4 measures the time from a heavy hitter appearing to each system
// recognizing it, on the paper's 20-switch production topology
// (4 spines + 16 leaves).
func Tab4(cfg Tab4Config) (*Tab4Result, error) {
	if cfg.SFlowPoll == 0 {
		cfg.SFlowPoll = 50 * time.Millisecond
	}
	if cfg.SonataWindow == 0 {
		cfg.SonataWindow = 3 * time.Second
	}
	res := &Tab4Result{}

	farmTime, err := tab4FARM()
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Tab4Row{System: "FARM", Kind: "G", Time: farmTime, Mode: "measured"})
	for _, ref := range specialized.References() {
		res.Rows = append(res.Rows, Tab4Row{System: ref.System, Kind: ref.Kind, Time: ref.DetectTime, Mode: "reference"})
	}
	sfTime, err := tab4SFlow(cfg.SFlowPoll)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Tab4Row{System: "sFlow", Kind: "G", Time: sfTime, Mode: "measured"})
	soTime, err := tab4Sonata(cfg.SonataWindow)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Tab4Row{System: "Sonata", Kind: "G", Time: soTime, Mode: "measured"})
	return res, nil
}

// Table renders the result.
func (r *Tab4Result) Table() *Table {
	t := &Table{
		Title:   "Tab. 4: HH detection time",
		Columns: []string{"type", "time", "mode"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, Row{Label: row.System, Values: []string{row.Kind, fmtDuration(row.Time), row.Mode}})
	}
	t.Notes = append(t.Notes,
		"FARM time = heavy flow start -> local TCAM reaction installed (recognition+mitigation)",
		"Planck/Helios are published reference numbers (closed specialized systems)")
	return t
}

// paper20Switches builds the 4-spine/16-leaf evaluation fabric.
func paper20Switches() (int, int, int) { return 4, 16, 4 }

func tab4FARM() (time.Duration, error) {
	sp, lv, hosts := paper20Switches()
	fab, loop, err := newFabric(sp, lv, hosts)
	if err != nil {
		return 0, err
	}
	sd := seeder.New(fab, seeder.Options{})
	d, err := tasks.ByName("hh")
	if err != nil {
		return 0, err
	}
	if err := sd.AddTask(seeder.TaskSpec{
		Name: "hh", Source: d.Source, Machines: d.Machines,
		Externals: map[string]map[string]core.Value{"HH": {"threshold": int64(20_000)}},
	}); err != nil {
		return 0, err
	}
	loop.RunFor(100 * time.Millisecond) // settle polling

	var leaf netmodel.SwitchID
	for _, sw := range fab.Topology().Switches() {
		if sw.Name == "leaf0" {
			leaf = sw.ID
		}
	}
	start := loop.Now()
	// The heavy flow appears: a continuous 100 MB/s stream on port 1.
	hot := loop.Every(100*time.Microsecond, func() {
		_ = fab.Switch(leaf).CreditPort(1, 0, 0, 10, 10_000)
	})
	defer hot.Stop()
	// Detection = the local mitigation rule appearing (recognition and
	// reaction both happen on the switch, §VI-B-a).
	deadline := start + 5*time.Second
	for loop.Now() < deadline {
		loop.RunFor(100 * time.Microsecond)
		if _, ok := fab.Switch(leaf).TCAM().GetRule(dataplane.Filter{InPort: 1}); ok {
			return loop.Now() - start, nil
		}
	}
	return 0, fmt.Errorf("experiments: FARM never detected the heavy hitter")
}

func tab4SFlow(poll time.Duration) (time.Duration, error) {
	sp, lv, hosts := paper20Switches()
	fab, loop, err := newFabric(sp, lv, hosts)
	if err != nil {
		return 0, err
	}
	sys := sflow.Deploy(fab, sflow.Config{
		PollInterval:           poll,
		HHThresholdBytesPerSec: 10_000_000,
	})
	defer sys.Stop()
	loop.RunFor(300 * time.Millisecond) // baseline counters
	var leaf netmodel.SwitchID
	for _, sw := range fab.Topology().Switches() {
		if sw.Name == "leaf0" {
			leaf = sw.ID
		}
	}
	start := loop.Now()
	hot := loop.Every(100*time.Microsecond, func() {
		_ = fab.Switch(leaf).CreditPort(1, 0, 0, 10, 10_000)
	})
	defer hot.Stop()
	deadline := start + 10*time.Second
	for loop.Now() < deadline {
		loop.RunFor(time.Millisecond)
		for _, d := range sys.Detections() {
			if d.At > start {
				return d.At - start, nil
			}
		}
	}
	return 0, fmt.Errorf("experiments: sFlow never detected the heavy hitter")
}

func tab4Sonata(window time.Duration) (time.Duration, error) {
	sp, lv, hosts := paper20Switches()
	fab, loop, err := newFabric(sp, lv, hosts)
	if err != nil {
		return 0, err
	}
	q := sonata.Query{
		Name: "hh", Key: sonata.KeyByInPort, Reduce: sonata.SumBytes,
		Window:    window,
		Threshold: 1_000_000,
	}
	sys := sonata.Deploy(fab, nil, sonata.Config{AggregationFactor: 0.75})
	defer sys.Stop()
	var leaf netmodel.SwitchID
	for _, sw := range fab.Topology().Switches() {
		if sw.Name == "leaf0" {
			leaf = sw.ID
		}
	}
	start := loop.Now()
	// The data plane aggregates at line rate; window flushes carry the
	// per-port byte counts (counter-window ingestion).
	var last dataplane.PortStats
	flush := loop.Every(window, func() {
		st, _ := fab.Switch(leaf).PortStats(1)
		delta := float64(st.TxBytes - last.TxBytes)
		last = st
		sys.IngestCounterWindow(q, leaf, map[int]float64{1: delta})
	})
	defer flush.Stop()
	hot := loop.Every(100*time.Microsecond, func() {
		_ = fab.Switch(leaf).CreditPort(1, 0, 0, 10, 10_000)
	})
	defer hot.Stop()
	deadline := start + 4*window
	for loop.Now() < deadline {
		loop.RunFor(10 * time.Millisecond)
		for _, d := range sys.Detections() {
			if d.At > start {
				return d.At - start, nil
			}
		}
	}
	return 0, fmt.Errorf("experiments: Sonata never detected the heavy hitter")
}
