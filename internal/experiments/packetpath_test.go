package experiments

import (
	"strings"
	"testing"
)

// TestPacketPathConsistent runs the classifier A/B experiment at a
// reduced scale and checks the invariant the full run enforces too:
// the fast path's observable digest is identical to the linear path's.
func TestPacketPathConsistent(t *testing.T) {
	res, err := PacketPath(PacketPathConfig{Packets: 30_000, ChurnEvery: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("fast and naive digests diverged: %+v", res)
	}
	if res.Churns == 0 {
		t.Fatalf("expected rule churn during the run, got none")
	}
	if res.Matched == 0 || res.Sampled == 0 || res.Dropped == 0 {
		t.Fatalf("trace failed to exercise matches, samplers, and drops: %+v", res)
	}
	if res.HitRate <= 0.5 {
		t.Fatalf("flow cache hit rate %.2f, want > 0.5 on a skewed trace", res.HitRate)
	}
	out := res.Table().Render()
	for _, want := range []string{"speedup", "verdicts identical", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
