// Package experiments regenerates every table and figure of the FARM
// paper's evaluation (§VI) on the emulated data center. Each experiment
// returns a structured result with a Render method that prints the same
// rows/series the paper reports; cmd/farm-bench and the repository-root
// benchmarks are thin wrappers around these functions.
//
// Absolute numbers differ from the paper (the substrate is an emulated
// fabric, not SAP's production hardware); the claims under test are the
// *shapes*: who wins, by roughly what factor, and where curves cross.
// EXPERIMENTS.md records paper-vs-measured values per experiment.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"farm/internal/almanac"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
)

// Row is one line of a rendered result table.
type Row struct {
	Label  string
	Values []string
}

// Table is a generic experiment output.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Render prints the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns)+1)
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
		for i, v := range r.Values {
			if i+1 < len(widths) && len(v) > widths[i+1] {
				widths[i+1] = len(v)
			}
		}
	}
	for i, c := range t.Columns {
		if i+1 < len(widths) && len(c) > widths[i+1] {
			widths[i+1] = len(c)
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0]+2, "")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", widths[i+1]+2, c)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0]+2, r.Label)
		for i, v := range r.Values {
			fmt.Fprintf(&b, "%*s", widths[i+1]+2, v)
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// EngineConfig selects the event executor an experiment runs on.
type EngineConfig struct {
	// Workers > 1 selects the sharded conservative-parallel executor
	// with that many worker goroutines; 0 or 1 means the serial engine.
	Workers int
	// Shards is the event partition count under the sharded executor;
	// 0 means one shard per switch.
	Shards int
	// ProfileLabels tags executor phases (select/run/merge) with pprof
	// labels on sharded runs, for use with farm-bench -cpuprofile.
	ProfileLabels bool
	// ForceWorkers forces worker-pool dispatch even on a single-CPU
	// process (see engine.ShardedOptions.ForceWorkers); the determinism
	// tests set it so the race detector sees the concurrent path.
	ForceWorkers bool
	// Queue selects the scheduler's queue backend: the pooled timing
	// wheel (default) or the container/heap reference the engine-loop
	// experiment A/Bs against.
	Queue engine.QueueBackend
}

// Parallel reports whether the sharded executor is selected.
func (c EngineConfig) Parallel() bool { return c.Workers > 1 }

// newFabric builds the standard experiment fabric on the serial engine.
func newFabric(spines, leaves, hostsPerLeaf int) (*fabric.Fabric, engine.Scheduler, error) {
	fab, sched, _, err := newFabricOn(EngineConfig{}, spines, leaves, hostsPerLeaf)
	return fab, sched, err
}

// newFabricOn builds the standard experiment fabric on the configured
// engine. The returned stop func releases the sharded executor's
// workers; call it when the run completes.
func newFabricOn(eng EngineConfig, spines, leaves, hostsPerLeaf int) (*fabric.Fabric, engine.Scheduler, func(), error) {
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{
		Spines: spines, Leaves: leaves, HostsPerLeaf: hostsPerLeaf,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	fab, sched, stop := newFabricOnTopology(eng, topo)
	return fab, sched, stop, nil
}

// newFabricOnTopology builds a fabric over an already-constructed
// topology (the engine-scale experiment brings its own fat-tree).
func newFabricOnTopology(eng EngineConfig, topo *netmodel.Topology) (*fabric.Fabric, engine.Scheduler, func()) {
	if eng.Parallel() {
		shards := eng.Shards
		if shards == 0 {
			shards = len(topo.Switches())
		}
		x := engine.NewSharded(engine.ShardedOptions{
			Shards:        shards,
			Workers:       eng.Workers,
			Lookahead:     fabric.Options{}.MinCrossLatency(),
			ProfileLabels: eng.ProfileLabels,
			ForceWorkers:  eng.ForceWorkers,
			Queue:         eng.Queue,
		})
		return fabric.New(topo, x, fabric.Options{}), x, x.Stop
	}
	loop := engine.NewSerialQueue(eng.Queue)
	return fabric.New(topo, loop, fabric.Options{}), loop, func() {}
}

// compileMachine parses Almanac source and compiles its sole machine.
func compileMachine(src, machine string) (*almanac.CompiledMachine, error) {
	prog, err := almanac.Parse(src)
	if err != nil {
		return nil, err
	}
	return almanac.CompileMachine(prog, machine)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d < time.Second:
		return fmt.Sprintf("%.0fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func fmtPercent(load float64) string { return fmt.Sprintf("%.0f%%", load*100) }
