// Package placement implements FARM's seed placement optimization (§IV
// of the paper): the monitoring-utility maximization model with
// constraints (C1)-(C4), polling-aggregation sharing, and migration
// overhead; solved either exactly by a MILP (the Gurobi role in Fig. 7)
// or by the scalable Alg. 1 heuristic (greedy placement by task
// min-utility, per-switch LP resource redistribution, migration by
// decreasing benefit).
package placement

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"farm/internal/lp"
	"farm/internal/netmodel"
	"farm/internal/poly"
)

// PollDemand is one poll variable's contribution to the shared polling
// resource: polls per second as a linear polynomial of the seed's
// allocated resources (the paper's 1/y.ival requirement), scaled by
// alphaPoll on consumption.
type PollDemand struct {
	Subject string // φ_enc subject key; equal keys share polling
	Rate    poly.Linear
}

// SeedSpec is the optimizer's view of one seed (§III-B outputs).
type SeedSpec struct {
	ID         string
	Task       string
	Machine    string
	Candidates []netmodel.SwitchID // N^s, non-empty
	Utility    poly.Utility        // cases of (C^s, u^s)
	Polls      []PollDemand
}

// SwitchInfo is the optimizer's view of one switch.
type SwitchInfo struct {
	ID       netmodel.SwitchID
	Capacity netmodel.Resources // ares(n, ·)
}

// Assignment is one seed's placement decision.
type Assignment struct {
	Switch  netmodel.SwitchID
	Alloc   netmodel.Resources
	Case    int // selected utility case
	Utility float64
}

// Input is a full placement problem.
type Input struct {
	Switches []SwitchInfo
	Seeds    []SeedSpec
	// Current is the existing placement (seed ID → assignment);
	// empty/nil for a fresh deployment. The heuristic's migration pass
	// and the migration-overhead accounting use it.
	Current map[string]Assignment
	// AlphaPoll converts polls/s into poll-capacity units
	// (α_poll in §IV-B); 0 means 1.
	AlphaPoll float64
	// MigrationCost is the utility penalty charged per migration when
	// scoring candidate moves; 0 means DefaultMigrationCost.
	MigrationCost float64
	// DisableMigration turns off the heuristic's migration pass
	// (ablation).
	DisableMigration bool
	// SkipRedistribution turns off the heuristic's per-switch LP
	// resource redistribution, leaving every seed at its greedy minimal
	// allocation (ablation: isolates step 3 of Alg. 1).
	SkipRedistribution bool
	// Parallel is the worker count for the heuristic's per-switch LP
	// redistribution (step 3): 0 means GOMAXPROCS, negative means
	// serial. The output is byte-identical at any worker count — the
	// same determinism contract the engine and traffic generator pin.
	Parallel int
	// ForceFull disables warm-start pinning: even with Current and
	// Touched set, every task re-places from scratch.
	ForceFull bool
	// Touched lists the switches whose capacity or hosted workload
	// changed since the solve that produced Current. A non-nil Touched
	// (possibly empty) arms the warm-start path: tasks whose current
	// assignments are still valid and feasible keep them without
	// re-running greedy placement, and only the affected switch
	// neighborhoods are re-solved. nil means "unknown" and forces the
	// classic full solve, so existing callers are unaffected.
	Touched []netmodel.SwitchID
	// FullThreshold is the fraction of tasks that must re-place before
	// the warm-start path gives up its pins and falls back to the full
	// solve; 0 means DefaultFullThreshold.
	FullThreshold float64
}

// DefaultMigrationCost approximates the transient double resource usage
// of a migration (§IV-B-a) as a flat utility penalty a move must beat.
const DefaultMigrationCost = 1.0

// DefaultFullThreshold is the warm-start fallback point: when more than
// this fraction of tasks must re-place, pinning buys little and the
// heuristic runs the classic full solve instead.
const DefaultFullThreshold = 0.25

// Result is the outcome of a placement run.
type Result struct {
	Placed       map[string]Assignment
	DroppedTasks []string // tasks removed because a seed did not fit (C1)
	Utility      float64  // the MU objective over placed seeds
	Migrations   int
	Runtime      time.Duration
}

func (in *Input) alphaPoll() float64 {
	if in.AlphaPoll == 0 {
		return 1
	}
	return in.AlphaPoll
}

func (in *Input) migrationCost() float64 {
	if in.MigrationCost == 0 {
		return DefaultMigrationCost
	}
	return in.MigrationCost
}

func (in *Input) fullThreshold() float64 {
	if in.FullThreshold == 0 {
		return DefaultFullThreshold
	}
	return in.FullThreshold
}

func (in *Input) parallelWorkers() int {
	if in.Parallel > 0 {
		return in.Parallel
	}
	if in.Parallel < 0 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

func (in *Input) switchByID(id netmodel.SwitchID) (SwitchInfo, bool) {
	for _, sw := range in.Switches {
		if sw.ID == id {
			return sw, true
		}
	}
	return SwitchInfo{}, false
}

// Validate checks structural sanity of the input.
func (in *Input) Validate() error {
	swSet := map[netmodel.SwitchID]bool{}
	for _, sw := range in.Switches {
		if swSet[sw.ID] {
			return fmt.Errorf("placement: duplicate switch %d", sw.ID)
		}
		swSet[sw.ID] = true
	}
	ids := map[string]bool{}
	for _, s := range in.Seeds {
		if s.ID == "" {
			return fmt.Errorf("placement: seed with empty ID")
		}
		if ids[s.ID] {
			return fmt.Errorf("placement: duplicate seed %s", s.ID)
		}
		ids[s.ID] = true
		if len(s.Candidates) == 0 {
			return fmt.Errorf("placement: seed %s has no candidate switches", s.ID)
		}
		for _, c := range s.Candidates {
			if !swSet[c] {
				return fmt.Errorf("placement: seed %s candidate %d is not a known switch", s.ID, c)
			}
		}
		if len(s.Utility) == 0 {
			return fmt.Errorf("placement: seed %s has no utility cases", s.ID)
		}
	}
	return nil
}

// CheckFeasible verifies that a result satisfies (C1)-(C4): task
// all-or-nothing, per-case constraints, candidate-set membership, and
// per-switch capacities including shared polling. Used by property
// tests and as a paranoia check after optimization.
func CheckFeasible(in *Input, res *Result) error {
	placedByTask := map[string]int{}
	seedsByTask := map[string]int{}
	seedByID := map[string]*SeedSpec{}
	for i := range in.Seeds {
		s := &in.Seeds[i]
		seedByID[s.ID] = s
		seedsByTask[s.Task]++
		if _, ok := res.Placed[s.ID]; ok {
			placedByTask[s.Task]++
		}
	}
	// C1: all of a task's seeds placed, or none.
	for task, n := range placedByTask {
		if n != seedsByTask[task] {
			return fmt.Errorf("placement: task %s has %d of %d seeds placed", task, n, seedsByTask[task])
		}
	}
	used := map[netmodel.SwitchID]netmodel.Resources{}
	pollUsed := map[netmodel.SwitchID]map[string]float64{}
	for id, a := range res.Placed {
		s, ok := seedByID[id]
		if !ok {
			return fmt.Errorf("placement: unknown seed %s in result", id)
		}
		inCand := false
		for _, c := range s.Candidates {
			if c == a.Switch {
				inCand = true
				break
			}
		}
		if !inCand {
			return fmt.Errorf("placement: seed %s placed outside its candidate set", id)
		}
		if a.Case < 0 || a.Case >= len(s.Utility) {
			return fmt.Errorf("placement: seed %s selected case %d of %d", id, a.Case, len(s.Utility))
		}
		cs := s.Utility[a.Case]
		if !cs.Feasible(a.Alloc.AsFloats(), 1e-6) {
			return fmt.Errorf("placement: seed %s allocation %v violates case %d constraints", id, a.Alloc, a.Case)
		}
		if used[a.Switch] == nil {
			used[a.Switch] = netmodel.Resources{}
			pollUsed[a.Switch] = map[string]float64{}
		}
		used[a.Switch] = used[a.Switch].Add(a.Alloc)
		for _, pd := range s.Polls {
			demand := in.alphaPoll() * pd.Rate.Eval(a.Alloc.AsFloats())
			if demand > pollUsed[a.Switch][pd.Subject] {
				pollUsed[a.Switch][pd.Subject] = demand
			}
		}
	}
	for swID, u := range used {
		sw, ok := in.switchByID(swID)
		if !ok {
			return fmt.Errorf("placement: seeds on unknown switch %d", swID)
		}
		for r, v := range u {
			if r == netmodel.ResPoll {
				continue // polling is checked via shared subjects below
			}
			if v > sw.Capacity[r]+1e-6 {
				return fmt.Errorf("placement: switch %d over capacity on %s: %g > %g", swID, r, v, sw.Capacity[r])
			}
		}
		total := 0.0
		for _, d := range pollUsed[swID] {
			total += d
		}
		if total > sw.Capacity[netmodel.ResPoll]+1e-6 {
			return fmt.Errorf("placement: switch %d over polling capacity: %g > %g", swID, total, sw.Capacity[netmodel.ResPoll])
		}
	}
	return nil
}

// Digest folds the full placement decision — every assignment's switch,
// case, utility, and allocation, plus dropped tasks and the migration
// count — into one FNV-1a value. Two results are byte-identical iff
// their digests match; the determinism tests and the placement-scale
// gate compare serial, parallel, and warm-start runs through it.
func (r *Result) Digest() string {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		mix(uint64(len(s)))
	}
	ids := make([]string, 0, len(r.Placed))
	for id := range r.Placed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var resNames []string
	for _, id := range ids {
		a := r.Placed[id]
		mixStr(id)
		mix(uint64(a.Switch))
		mix(uint64(a.Case))
		mix(math.Float64bits(a.Utility))
		resNames = resNames[:0]
		for name := range a.Alloc {
			resNames = append(resNames, name)
		}
		sort.Strings(resNames)
		for _, name := range resNames {
			mixStr(name)
			mix(math.Float64bits(a.Alloc[name]))
		}
	}
	for _, t := range r.DroppedTasks {
		mixStr(t)
	}
	mix(uint64(r.Migrations))
	return fmt.Sprintf("%016x", h)
}

// TotalUtility recomputes MU from a result (diagnostics).
func TotalUtility(in *Input, placed map[string]Assignment) float64 {
	total := 0.0
	for i := range in.Seeds {
		s := &in.Seeds[i]
		if a, ok := placed[s.ID]; ok {
			total += s.Utility[a.Case].Util.Eval(a.Alloc.AsFloats())
		}
	}
	return total
}

// resourceNames collects every resource mentioned by capacities or
// utilities, in deterministic order.
func resourceNames(in *Input) []string {
	set := map[string]bool{}
	for _, sw := range in.Switches {
		for r := range sw.Capacity {
			set[r] = true
		}
	}
	for i := range in.Seeds {
		for _, v := range in.Seeds[i].Utility.Vars() {
			set[v] = true
		}
		for _, pd := range in.Seeds[i].Polls {
			for _, v := range pd.Rate.Vars() {
				set[v] = true
			}
		}
	}
	names := make([]string, 0, len(set))
	for r := range set {
		names = append(names, r)
	}
	sort.Strings(names)
	return names
}

// minimalAlloc returns the cheapest allocation satisfying one utility
// case, or false if the case is infeasible even alone on the switch.
// Fast path: constraints of the form a*r - c >= 0 with a single
// variable become lower bounds; anything more general falls back to a
// small LP.
func minimalAlloc(c poly.Case, capacity netmodel.Resources) (netmodel.Resources, bool) {
	alloc := netmodel.Resources{}
	simple := true
	for _, con := range c.Constraints {
		vars := con.Vars()
		switch len(vars) {
		case 0:
			if con.Const < -1e-9 {
				return nil, false // constant infeasible
			}
		case 1:
			a := con.CoefOf(vars[0])
			if a <= 0 {
				simple = false
			} else {
				// a*r + const >= 0 -> r >= -const/a
				lb := -con.Const / a
				if lb > alloc[vars[0]] {
					alloc[vars[0]] = lb
				}
			}
		default:
			simple = false
		}
	}
	if simple {
		if !capacity.AtLeast(alloc, 1e-9) {
			return nil, false
		}
		return alloc, true
	}
	// General case: LP minimizing the (normalized) footprint.
	prob := lp.New(lp.Minimize)
	vars := map[string]lp.Var{}
	var obj []lp.Coef
	names := map[string]bool{}
	for _, con := range c.Constraints {
		for _, v := range con.Vars() {
			names[v] = true
		}
	}
	ordered := make([]string, 0, len(names))
	for v := range names {
		ordered = append(ordered, v)
	}
	sort.Strings(ordered)
	for _, v := range ordered {
		ub := capacity[v]
		vars[v] = prob.AddVar(v, 0, ub)
		w := 1.0
		if ub > 0 {
			w = 1 / ub
		}
		obj = append(obj, lp.Coef{Var: vars[v], Val: w})
	}
	for _, con := range c.Constraints {
		var coefs []lp.Coef
		for _, v := range con.Vars() {
			coefs = append(coefs, lp.Coef{Var: vars[v], Val: con.CoefOf(v)})
		}
		prob.AddConstraint(coefs, lp.GE, -con.Const)
	}
	prob.SetObjective(obj, 0)
	sol, err := prob.Solve()
	if err != nil || sol.Status != lp.Optimal {
		return nil, false
	}
	out := netmodel.Resources{}
	for v, h := range vars {
		if x := sol.Value(h); x > 1e-9 {
			out[v] = x
		}
	}
	return out, true
}

// caseUtilityAt evaluates a case's min-of-linear utility.
func caseUtilityAt(c poly.Case, alloc netmodel.Resources) float64 {
	u := c.Util.Eval(alloc.AsFloats())
	if math.IsInf(u, 1) {
		return 0
	}
	return u
}
