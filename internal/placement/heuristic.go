package placement

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"farm/internal/lp"
	"farm/internal/netmodel"
)

// testRedistErr, when non-nil (tests only), injects an error into the
// per-switch redistribution solve — real LP failures are near impossible
// to provoke from feasible greedy allocations, and the migrate pass's
// error propagation needs a regression test.
var testRedistErr func(netmodel.SwitchID) error

// Heuristic runs Alg. 1: (1) sort tasks by decreasing minimum utility,
// (2) greedily place each task's seeds at their cheapest viable
// configuration — keeping already-placed seeds where they are — dropping
// whole tasks that do not fit, (3) redistribute resources with one LP
// per switch, (4+5) evaluate migration benefits and apply them in
// decreasing order.
//
// Step 3's per-switch LPs are independent and fan out over a worker
// pool (Input.Parallel); outcomes are merged in switch order, so the
// result is byte-identical to the serial run at any worker count.
//
// When Input.Current and Input.Touched are both set (and ForceFull is
// not), the solve warm-starts: tasks whose current assignments are
// still valid and feasible are pinned as-is, greedy placement runs only
// for the rest, and redistribution and migration are confined to the
// dirty switch neighborhoods. Because the previous solve's LP outcomes
// are stored in Current and the LP is deterministic, skipping clean
// switches reproduces exactly what re-solving them would produce.
func Heuristic(in *Input) (*Result, error) {
	start := time.Now()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	st := newHeurState(in)

	// Warm start: pin tasks whose current placement is still valid.
	pinActive, dirty := st.pinCurrent()

	// Step 1: task order by decreasing minimum utility.
	taskOrder := st.sortTasks()

	// Step 2: greedy placement of everything not pinned.
	var dropped []string
	for _, task := range taskOrder {
		if st.pinned[task] {
			continue
		}
		if !st.placeTask(task) {
			dropped = append(dropped, task)
		}
	}

	// Step 3: LP resource redistribution per switch. A warm-start solve
	// only revisits dirty switches: Touched ones, the old homes of
	// re-placed seeds, and whatever greedy just filled.
	if !in.SkipRedistribution {
		sws := in.Switches
		if pinActive {
			for id := range st.greedyOn {
				dirty[id] = true
			}
			sws = sws[:0:0]
			for _, sw := range in.Switches {
				if dirty[sw.ID] {
					sws = append(sws, sw)
				}
			}
		}
		if err := st.redistributeAll(sws); err != nil {
			return nil, err
		}
	}

	// Steps 4+5: migration by decreasing benefit. Warm-start solves
	// only reconsider seeds sitting on dirty switches.
	migrations := 0
	if !in.DisableMigration && len(in.Current) > 0 {
		var scope map[string]bool
		if pinActive {
			for id := range st.greedyOn {
				dirty[id] = true
			}
			scope = map[string]bool{}
			for n := range dirty {
				for _, id := range st.seedsOn[n] {
					scope[id] = true
				}
			}
		}
		var err error
		migrations, err = st.migrate(scope)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Placed:       st.placed,
		DroppedTasks: dropped,
		Utility:      TotalUtility(in, st.placed),
		Migrations:   migrations,
		Runtime:      time.Since(start),
	}
	sort.Strings(res.DroppedTasks)
	return res, nil
}

// lpRow is one prebaked constraint row of the per-switch LP: sparse
// coefficients over the case's variable list plus a right-hand side.
type lpRow struct {
	res  []int // indices into caseLP.res
	vals []float64
	rhs  float64
}

// caseLP is the switch-independent part of a seed case's step-3 LP
// fragment, baked once per solve so redistribute never re-sorts names
// or re-walks polynomials.
type caseLP struct {
	res      []string // sorted resources the case or polls mention, sans poll
	varNames []string // interned "<seed>.<res>" LP variable names
	utilRows []lpRow  // t <= term rows: -coef per res, rhs = term const
	conRows  []lpRow  // case constraints as GE rows, rhs = -const
	pollRows []lpRow  // poll demand rows: -alpha*coef per res, rhs = alpha*const
	pollSubj []string // subject per pollRows entry
}

type seedPrep struct {
	spec *SeedSpec
	// per case: minimal allocation and its utility (nil = infeasible
	// everywhere).
	minAllocs []netmodel.Resources
	minUtils  []float64
	bestMin   float64 // max over cases of minUtils
	utilName  string  // interned "<seed>.u" LP variable name
	cases     []caseLP
}

type heurState struct {
	in     *Input
	alpha  float64
	preps  map[string]*seedPrep
	tasks  map[string][]*seedPrep
	placed map[string]Assignment
	// pinned marks tasks kept at their Current assignment (warm start).
	pinned map[string]bool

	remaining map[netmodel.SwitchID]netmodel.Resources
	// pollMax[n][subject] = current max demand for the subject on n
	// (shared consumption = max across subscribers at group rate).
	pollMax map[netmodel.SwitchID]map[string]float64
	// seedsOn[n] = IDs placed on n (sorted when consumed).
	seedsOn map[netmodel.SwitchID][]string

	// swIdx indexes Input.Switches by ID — the O(N) switchByID scan was
	// 16% of the paper-scale flat profile.
	swIdx map[netmodel.SwitchID]int
	// slackCache memoizes normalizedSlack per switch index until the
	// switch's remaining capacity changes.
	slackCache []float64
	slackOK    []bool
	// greedyOn records switches greedy placement touched this run.
	greedyOn map[netmodel.SwitchID]bool
	// lpProb is the reusable serial-path LP arena (migrate and
	// single-worker redistribution).
	lpProb *lp.Problem
}

func newHeurState(in *Input) *heurState {
	st := &heurState{
		in:        in,
		alpha:     in.alphaPoll(),
		preps:     map[string]*seedPrep{},
		tasks:     map[string][]*seedPrep{},
		placed:    map[string]Assignment{},
		pinned:    map[string]bool{},
		remaining: map[netmodel.SwitchID]netmodel.Resources{},
		pollMax:   map[netmodel.SwitchID]map[string]float64{},
		seedsOn:   map[netmodel.SwitchID][]string{},
		swIdx:     make(map[netmodel.SwitchID]int, len(in.Switches)),
		greedyOn:  map[netmodel.SwitchID]bool{},
	}
	st.slackCache = make([]float64, len(in.Switches))
	st.slackOK = make([]bool, len(in.Switches))
	for i, sw := range in.Switches {
		st.remaining[sw.ID] = sw.Capacity.Clone()
		st.pollMax[sw.ID] = map[string]float64{}
		st.swIdx[sw.ID] = i
	}
	// The largest capacity any switch offers — feasibility screen for
	// minimal allocations.
	maxCap := netmodel.Resources{}
	for _, sw := range in.Switches {
		for r, v := range sw.Capacity {
			if v > maxCap[r] {
				maxCap[r] = v
			}
		}
	}
	for i := range in.Seeds {
		s := &in.Seeds[i]
		p := &seedPrep{spec: s, bestMin: math.Inf(-1), utilName: s.ID + ".u"}
		for _, c := range s.Utility {
			alloc, ok := minimalAlloc(c, maxCap)
			if !ok {
				p.minAllocs = append(p.minAllocs, nil)
				p.minUtils = append(p.minUtils, math.Inf(-1))
				continue
			}
			u := caseUtilityAt(c, alloc)
			p.minAllocs = append(p.minAllocs, alloc)
			p.minUtils = append(p.minUtils, u)
			if u > p.bestMin {
				p.bestMin = u
			}
		}
		st.bakeCases(p)
		st.preps[s.ID] = p
		st.tasks[s.Task] = append(st.tasks[s.Task], p)
	}
	return st
}

// bakeCases precomputes every case's step-3 LP fragment for one seed.
func (st *heurState) bakeCases(p *seedPrep) {
	s := p.spec
	p.cases = make([]caseLP, len(s.Utility))
	for ci, c := range s.Utility {
		cl := &p.cases[ci]
		names := map[string]bool{}
		for _, con := range c.Constraints {
			for _, v := range con.Vars() {
				names[v] = true
			}
		}
		for _, term := range c.Util {
			for _, v := range term.Vars() {
				names[v] = true
			}
		}
		for _, pd := range s.Polls {
			for _, v := range pd.Rate.Vars() {
				names[v] = true
			}
		}
		for v := range names {
			if v != netmodel.ResPoll {
				cl.res = append(cl.res, v)
			}
		}
		sort.Strings(cl.res)
		resIdx := make(map[string]int, len(cl.res))
		for ri, r := range cl.res {
			cl.varNames = append(cl.varNames, s.ID+"."+r)
			resIdx[r] = ri
		}
		sparse := func(coefOf func(string) float64, vars []string, scale float64) ([]int, []float64) {
			var is []int
			var vs []float64
			for _, r := range vars {
				ri, ok := resIdx[r]
				if !ok {
					continue // poll-typed terms never become LP variables
				}
				is = append(is, ri)
				vs = append(vs, scale*coefOf(r))
			}
			return is, vs
		}
		for _, term := range c.Util {
			is, vs := sparse(term.CoefOf, term.Vars(), -1)
			cl.utilRows = append(cl.utilRows, lpRow{res: is, vals: vs, rhs: term.Const})
		}
		for _, con := range c.Constraints {
			is, vs := sparse(con.CoefOf, con.Vars(), 1)
			if len(is) == 0 {
				continue
			}
			cl.conRows = append(cl.conRows, lpRow{res: is, vals: vs, rhs: -con.Const})
		}
		for _, pd := range s.Polls {
			is, vs := sparse(pd.Rate.CoefOf, pd.Rate.Vars(), -st.alpha)
			cl.pollRows = append(cl.pollRows, lpRow{res: is, vals: vs, rhs: st.alpha * pd.Rate.Const})
			cl.pollSubj = append(cl.pollSubj, pd.Subject)
		}
	}
}

func (st *heurState) switchInfo(n netmodel.SwitchID) SwitchInfo {
	return st.in.Switches[st.swIdx[n]]
}

// pinCurrent arms the warm-start path: every task whose Current
// assignments are still valid (switch alive, candidate sets and cases
// unchanged-compatible, constraints feasible, aggregate capacity
// respected) is pinned in place. Returns whether pinning is active and
// the dirty switch set seeding step 3's scope.
func (st *heurState) pinCurrent() (bool, map[netmodel.SwitchID]bool) {
	in := st.in
	if in.ForceFull || in.Touched == nil || len(in.Current) == 0 {
		return false, nil
	}
	// A task pins iff every one of its seeds can stay put (C1).
	pinned := map[string]bool{}
	for name, seeds := range st.tasks {
		ok := true
		for _, p := range seeds {
			a, has := in.Current[p.spec.ID]
			if !has {
				ok = false
				break
			}
			if _, exists := st.swIdx[a.Switch]; !exists {
				ok = false
				break
			}
			inCand := false
			for _, c := range p.spec.Candidates {
				if c == a.Switch {
					inCand = true
					break
				}
			}
			if !inCand || a.Case < 0 || a.Case >= len(p.spec.Utility) ||
				!p.spec.Utility[a.Case].Feasible(a.Alloc.AsFloats(), 1e-6) {
				ok = false
				break
			}
		}
		if ok {
			pinned[name] = true
		}
	}
	// Aggregate feasibility: the pinned load must fit every switch
	// (capacities may have shrunk since the last solve). An overloaded
	// switch unpins every task touching it; one pass suffices because
	// unpinning only reduces usage elsewhere.
	used := map[netmodel.SwitchID]netmodel.Resources{}
	polls := map[netmodel.SwitchID]map[string]float64{}
	tasksOn := map[netmodel.SwitchID][]string{}
	for name := range pinned {
		for _, p := range st.tasks[name] {
			a := in.Current[p.spec.ID]
			if used[a.Switch] == nil {
				used[a.Switch] = netmodel.Resources{}
				polls[a.Switch] = map[string]float64{}
			}
			used[a.Switch] = used[a.Switch].Add(allocSansPoll(a.Alloc))
			for _, pd := range p.spec.Polls {
				d := st.alpha * pd.Rate.Eval(a.Alloc.AsFloats())
				if d > polls[a.Switch][pd.Subject] {
					polls[a.Switch][pd.Subject] = d
				}
			}
			tasksOn[a.Switch] = append(tasksOn[a.Switch], name)
		}
	}
	for _, sw := range in.Switches {
		over := false
		for r, v := range used[sw.ID] {
			if v > sw.Capacity[r]+1e-9 {
				over = true
				break
			}
		}
		if !over && pollTotal(polls[sw.ID]) > sw.Capacity[netmodel.ResPoll]+1e-9 {
			over = true
		}
		if over {
			for _, name := range tasksOn[sw.ID] {
				delete(pinned, name)
			}
		}
	}
	// Fallback: a mostly-stale problem re-solves in full. Staleness
	// counts only tasks that HAD a placement and lost their pin —
	// tasks with no Current entries (new arrivals, previously dropped)
	// go through greedy regardless and do not invalidate the pins.
	hadCurrent, stale := 0, 0
	for name, seeds := range st.tasks {
		had := false
		for _, p := range seeds {
			if _, ok := in.Current[p.spec.ID]; ok {
				had = true
				break
			}
		}
		if had {
			hadCurrent++
			if !pinned[name] {
				stale++
			}
		}
	}
	if hadCurrent > 0 && float64(stale)/float64(hadCurrent) > in.fullThreshold() {
		return false, nil
	}
	// Commit pins in sorted seed order.
	var ids []string
	for name := range pinned {
		for _, p := range st.tasks[name] {
			ids = append(ids, p.spec.ID)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := st.preps[id]
		a := in.Current[id]
		st.placeSeedAt(p, a.Switch, Assignment{
			Alloc:   a.Alloc.Clone(),
			Case:    a.Case,
			Utility: caseUtilityAt(p.spec.Utility[a.Case], a.Alloc),
		})
	}
	st.pinned = pinned
	// Dirty switches: the caller-declared Touched set plus the old
	// homes of every seed that must re-place.
	dirty := map[netmodel.SwitchID]bool{}
	for _, id := range in.Touched {
		if _, ok := st.swIdx[id]; ok {
			dirty[id] = true
		}
	}
	for i := range in.Seeds {
		s := &in.Seeds[i]
		if pinned[s.Task] {
			continue
		}
		if a, ok := in.Current[s.ID]; ok {
			if _, exists := st.swIdx[a.Switch]; exists {
				dirty[a.Switch] = true
			}
		}
	}
	return true, dirty
}

// sortTasks orders tasks by decreasing minimum utility (the utility of
// the task's weakest seed at its cheapest configuration).
func (st *heurState) sortTasks() []string {
	type taskScore struct {
		name string
		min  float64
	}
	var scores []taskScore
	for name, seeds := range st.tasks {
		minU := math.Inf(1)
		for _, p := range seeds {
			if p.bestMin < minU {
				minU = p.bestMin
			}
		}
		scores = append(scores, taskScore{name, minU})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].min != scores[j].min {
			return scores[i].min > scores[j].min
		}
		return scores[i].name < scores[j].name
	})
	out := make([]string, len(scores))
	for i, s := range scores {
		out[i] = s.name
	}
	return out
}

// normalizedSlack scores a switch's remaining headroom as the mean of
// remaining/capacity over its resource types. Values are cached per
// switch until its remaining capacity changes — greedy placement reads
// this once per (seed, candidate) pair.
func (st *heurState) normalizedSlack(n netmodel.SwitchID) float64 {
	i := st.swIdx[n]
	if st.slackOK[i] {
		return st.slackCache[i]
	}
	sw := st.in.Switches[i]
	rem := st.remaining[n]
	total, count := 0.0, 0
	for r, c := range sw.Capacity {
		if c <= 0 || r == netmodel.ResPoll {
			continue
		}
		total += rem[r] / c
		count++
	}
	v := 0.0
	if count > 0 {
		v = total / float64(count)
	}
	st.slackCache[i], st.slackOK[i] = v, true
	return v
}

func (st *heurState) invalidateSlack(n netmodel.SwitchID) {
	st.slackOK[st.swIdx[n]] = false
}

// pollDelta computes the increase in total shared polling consumption on
// switch n if a seed with the given demands is added.
func (st *heurState) pollDelta(n netmodel.SwitchID, spec *SeedSpec, alloc netmodel.Resources) float64 {
	delta := 0.0
	for _, pd := range spec.Polls {
		demand := st.alpha * pd.Rate.Eval(alloc.AsFloats())
		cur := st.pollMax[n][pd.Subject]
		if demand > cur {
			delta += demand - cur
		}
	}
	return delta
}

func (st *heurState) commitPolls(n netmodel.SwitchID, spec *SeedSpec, alloc netmodel.Resources) {
	for _, pd := range spec.Polls {
		demand := st.alpha * pd.Rate.Eval(alloc.AsFloats())
		if demand > st.pollMax[n][pd.Subject] {
			st.pollMax[n][pd.Subject] = demand
		}
	}
}

// recomputePolls rebuilds the poll-sharing maxima of one switch from
// scratch (after removals, a max cannot be updated incrementally).
func (st *heurState) recomputePolls(n netmodel.SwitchID) {
	m := map[string]float64{}
	for _, id := range st.seedsOn[n] {
		a := st.placed[id]
		spec := st.preps[id].spec
		for _, pd := range spec.Polls {
			demand := st.alpha * pd.Rate.Eval(a.Alloc.AsFloats())
			if demand > m[pd.Subject] {
				m[pd.Subject] = demand
			}
		}
	}
	st.pollMax[n] = m
}

func pollTotal(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}

// fits reports whether (alloc, polls) fit the remaining capacity of n.
func (st *heurState) fits(n netmodel.SwitchID, spec *SeedSpec, alloc netmodel.Resources) bool {
	rem := st.remaining[n]
	for r, v := range alloc {
		if r == netmodel.ResPoll {
			continue
		}
		if rem[r] < v-1e-9 {
			return false
		}
	}
	sw := st.switchInfo(n)
	if pollTotal(st.pollMax[n])+st.pollDelta(n, spec, alloc) > sw.Capacity[netmodel.ResPoll]+1e-9 {
		return false
	}
	return true
}

// placeSeed commits one seed at its minimal allocation.
func (st *heurState) placeSeed(p *seedPrep, n netmodel.SwitchID, caseIdx int) {
	alloc := p.minAllocs[caseIdx].Clone()
	st.placed[p.spec.ID] = Assignment{
		Switch:  n,
		Alloc:   alloc,
		Case:    caseIdx,
		Utility: p.minUtils[caseIdx],
	}
	st.remaining[n] = st.remaining[n].Sub(allocSansPoll(alloc))
	st.commitPolls(n, p.spec, alloc)
	st.seedsOn[n] = append(st.seedsOn[n], p.spec.ID)
	st.greedyOn[n] = true
	st.invalidateSlack(n)
}

func allocSansPoll(a netmodel.Resources) netmodel.Resources {
	c := a.Clone()
	delete(c, netmodel.ResPoll)
	return c
}

// unplaceSeed rolls a seed back out.
func (st *heurState) unplaceSeed(id string) {
	a, ok := st.placed[id]
	if !ok {
		return
	}
	delete(st.placed, id)
	st.remaining[a.Switch] = st.remaining[a.Switch].Add(allocSansPoll(a.Alloc))
	list := st.seedsOn[a.Switch]
	for i, x := range list {
		if x == id {
			st.seedsOn[a.Switch] = append(list[:i], list[i+1:]...)
			break
		}
	}
	st.recomputePolls(a.Switch)
	st.invalidateSlack(a.Switch)
}

// placeTask greedily places all seeds of a task; false (with rollback)
// if any seed cannot be placed (C1).
func (st *heurState) placeTask(task string) bool {
	seeds := st.tasks[task]
	var committed []string
	// Switches first dirtied by THIS task, unmarked again if the task
	// rolls back — a failed attempt leaves no trace, so hopeless tasks
	// do not drag clean switches into a warm solve's dirty set.
	var newlyMarked []netmodel.SwitchID
	unplaced := map[string]*seedPrep{}
	for _, p := range seeds {
		unplaced[p.spec.ID] = p
	}

	for len(unplaced) > 0 {
		type choice struct {
			p       *seedPrep
			n       netmodel.SwitchID
			caseIdx int
			util    float64
			slack   float64 // remaining headroom on the target switch
			keeps   bool    // keeps an existing valid placement (no migration)
		}
		var best *choice
		better := func(a, b *choice) bool {
			if b == nil {
				return true
			}
			if a.keeps != b.keeps {
				return a.keeps // avoid unnecessary migration first
			}
			if a.util != b.util {
				return a.util > b.util
			}
			if a.slack != b.slack {
				// Spread load: equal utility goes to the emptier
				// switch so step 3's redistribution has headroom.
				return a.slack > b.slack
			}
			return a.p.spec.ID < b.p.spec.ID
		}
		ids := make([]string, 0, len(unplaced))
		for id := range unplaced {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			p := unplaced[id]
			cur, hasCur := st.in.Current[id]
			for _, n := range p.spec.Candidates {
				for k := range p.spec.Utility {
					if p.minAllocs[k] == nil {
						continue
					}
					if !st.fits(n, p.spec, p.minAllocs[k]) {
						continue
					}
					c := &choice{
						p: p, n: n, caseIdx: k,
						util:  p.minUtils[k],
						slack: st.normalizedSlack(n),
						keeps: hasCur && cur.Switch == n,
					}
					if better(c, best) {
						best = c
					}
				}
			}
		}
		if best == nil {
			// Task cannot be completed: roll back (C1).
			for _, id := range committed {
				st.unplaceSeed(id)
			}
			for _, n := range newlyMarked {
				delete(st.greedyOn, n)
			}
			return false
		}
		if !st.greedyOn[best.n] {
			newlyMarked = append(newlyMarked, best.n)
		}
		st.placeSeed(best.p, best.n, best.caseIdx)
		committed = append(committed, best.p.spec.ID)
		delete(unplaced, best.p.spec.ID)
	}
	return true
}

// redistOutcome is the solved step-3 LP of one switch: the new
// allocations and utilities for its seeds (in sorted seed order). nil
// means "keep the greedy allocation" (empty switch or non-optimal LP).
type redistOutcome struct {
	ids    []string
	allocs []netmodel.Resources
	utils  []float64
}

// redistributeAll runs step 3 over the given switches. With more than
// one worker the independent per-switch LPs fan out over a pool — each
// worker owns one lp.Problem arena — and outcomes are applied serially
// in switch order, so the result is byte-identical to the serial run at
// any worker count. Per-switch solves read only switch-local state
// (seedsOn, the placed entries of resident seeds, the preps), and
// applies only write switch-local state, so solve-all-then-apply is
// equivalent to the interleaved serial loop.
func (st *heurState) redistributeAll(sws []SwitchInfo) error {
	workers := st.in.parallelWorkers()
	if workers > len(sws) {
		workers = len(sws)
	}
	if workers <= 1 {
		for _, sw := range sws {
			if err := st.redistribute(sw); err != nil {
				return err
			}
		}
		return nil
	}
	outcomes := make([]*redistOutcome, len(sws))
	errs := make([]error, len(sws))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prob := lp.New(lp.Maximize)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sws) {
					return
				}
				outcomes[i], errs[i] = st.solveRedist(sws[i], prob)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err // lowest switch index wins, matching serial
		}
	}
	for i, sw := range sws {
		st.applyRedist(sw, outcomes[i])
	}
	return nil
}

// redistribute solves and applies one switch's step-3 LP (serial path
// and the migrate pass), reusing the state's LP arena.
func (st *heurState) redistribute(sw SwitchInfo) error {
	if st.lpProb == nil {
		st.lpProb = lp.New(lp.Maximize)
	}
	out, err := st.solveRedist(sw, st.lpProb)
	if err != nil {
		return err
	}
	st.applyRedist(sw, out)
	return nil
}

// solveRedist builds and solves the per-switch LP of step 3: maximize
// the sum of the placed seeds' utilities subject to their selected
// cases, the switch capacities, and the shared polling budget. It is
// strictly read-only on shared state (safe to run concurrently for
// distinct switches) and reuses prob as its arena.
func (st *heurState) solveRedist(sw SwitchInfo, prob *lp.Problem) (*redistOutcome, error) {
	if testRedistErr != nil {
		if err := testRedistErr(sw.ID); err != nil {
			return nil, fmt.Errorf("placement: redistribution on switch %d: %w", sw.ID, err)
		}
	}
	ids := append([]string(nil), st.seedsOn[sw.ID]...)
	if len(ids) == 0 {
		return nil, nil
	}
	sort.Strings(ids)

	prob.Reset(lp.Maximize)
	resVars := make([][]lp.Var, len(ids))
	utilVars := make([]lp.Var, len(ids))
	cls := make([]*caseLP, len(ids))
	var obj []lp.Coef
	var coefs []lp.Coef // scratch row, copied by AddConstraint

	// Per-resource usage sums (excluding poll, handled via subjects)
	// and poll subject variables, both in deterministic first-use order
	// — row order must not depend on map iteration, or degenerate LPs
	// could pick different vertices run to run.
	usage := map[string][]lp.Coef{}
	var usageOrder []string
	pollres := map[string]lp.Var{}
	var pollOrder []string

	for k, id := range ids {
		p := st.preps[id]
		a := st.placed[id]
		cl := &p.cases[a.Case]
		cls[k] = cl
		rv := make([]lp.Var, len(cl.res))
		for ri, r := range cl.res {
			v := prob.AddVar(cl.varNames[ri], 0, sw.Capacity[r])
			rv[ri] = v
			if _, seen := usage[r]; !seen {
				usageOrder = append(usageOrder, r)
			}
			usage[r] = append(usage[r], lp.Coef{Var: v, Val: 1})
		}
		resVars[k] = rv
		// Utility variable with t <= each min-term.
		u := prob.AddVar(p.utilName, 0, lp.Inf)
		utilVars[k] = u
		obj = append(obj, lp.Coef{Var: u, Val: 1})
		for _, row := range cl.utilRows {
			coefs = append(coefs[:0], lp.Coef{Var: u, Val: 1})
			for j, ri := range row.res {
				coefs = append(coefs, lp.Coef{Var: rv[ri], Val: row.vals[j]})
			}
			prob.AddConstraint(coefs, lp.LE, row.rhs)
		}
		// Case constraints.
		for _, row := range cl.conRows {
			coefs = coefs[:0]
			for j, ri := range row.res {
				coefs = append(coefs, lp.Coef{Var: rv[ri], Val: row.vals[j]})
			}
			prob.AddConstraint(coefs, lp.GE, row.rhs)
		}
		// Poll demands: pollres_p >= alpha * rate(res).
		for pi, row := range cl.pollRows {
			subject := cl.pollSubj[pi]
			pv, ok := pollres[subject]
			if !ok {
				pv = prob.AddVar("poll."+subject, 0, lp.Inf)
				pollres[subject] = pv
				pollOrder = append(pollOrder, subject)
			}
			coefs = append(coefs[:0], lp.Coef{Var: pv, Val: 1})
			for j, ri := range row.res {
				coefs = append(coefs, lp.Coef{Var: rv[ri], Val: row.vals[j]})
			}
			prob.AddConstraint(coefs, lp.GE, row.rhs)
		}
	}

	// Capacity rows.
	for _, r := range usageOrder {
		prob.AddConstraint(usage[r], lp.LE, sw.Capacity[r])
	}
	if len(pollOrder) > 0 {
		coefs = coefs[:0]
		for _, subject := range pollOrder {
			coefs = append(coefs, lp.Coef{Var: pollres[subject], Val: 1})
		}
		prob.AddConstraint(coefs, lp.LE, sw.Capacity[netmodel.ResPoll])
	}

	prob.SetObjective(obj, 0)
	sol, err := prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("placement: redistribution on switch %d: %w", sw.ID, err)
	}
	if sol.Status != lp.Optimal {
		// The greedy allocation is feasible by construction; keep it.
		return nil, nil
	}
	out := &redistOutcome{
		ids:    ids,
		allocs: make([]netmodel.Resources, len(ids)),
		utils:  make([]float64, len(ids)),
	}
	for k := range ids {
		alloc := netmodel.Resources{}
		for ri, v := range resVars[k] {
			if x := sol.Value(v); x > 1e-9 {
				alloc[cls[k].res[ri]] = x
			}
		}
		out.allocs[k] = alloc
		out.utils[k] = sol.Value(utilVars[k])
	}
	return out, nil
}

// applyRedist commits one switch's solved LP outcome.
func (st *heurState) applyRedist(sw SwitchInfo, out *redistOutcome) {
	if out == nil {
		return
	}
	for k, id := range out.ids {
		a := st.placed[id]
		a.Alloc = out.allocs[k]
		a.Utility = out.utils[k]
		st.placed[id] = a
	}
	st.recomputePolls(sw.ID)
	// Update remaining capacity from actual allocations.
	rem := netmodel.Resources{}
	for r, v := range sw.Capacity {
		rem[r] = v
	}
	for _, id := range out.ids {
		rem = rem.Sub(allocSansPoll(st.placed[id].Alloc))
	}
	st.remaining[sw.ID] = rem
	st.invalidateSlack(sw.ID)
}

// switchUtility sums the current utilities on a switch.
func (st *heurState) switchUtility(n netmodel.SwitchID) float64 {
	total := 0.0
	for _, id := range st.seedsOn[n] {
		total += st.placed[id].Utility
	}
	return total
}

// migrate evaluates moving each in-scope seed to each alternative
// candidate and applies moves in decreasing benefit order (steps 4 and
// 5 of Alg. 1). The benefit is the change in the two affected switches'
// LP-optimal utility minus the migration cost. A nil scope considers
// every placed seed. Redistribution failures mid-migration abort the
// pass — the error propagates instead of silently leaving placed state
// and poll maxima inconsistent.
func (st *heurState) migrate(scope map[string]bool) (int, error) {
	type move struct {
		id      string
		to      netmodel.SwitchID
		benefit float64
	}
	evaluate := func(id string) (move, bool, error) {
		a, ok := st.placed[id]
		if !ok {
			return move{}, false, nil
		}
		p := st.preps[id]
		best := move{id: id, benefit: 0}
		found := false
		for _, n := range p.spec.Candidates {
			if n == a.Switch {
				continue
			}
			b, ok, err := st.moveBenefit(id, n)
			if err != nil {
				return move{}, false, err
			}
			if ok && b > best.benefit+1e-9 {
				best = move{id: id, to: n, benefit: b}
				found = true
			}
		}
		return best, found, nil
	}

	ids := make([]string, 0, len(st.placed))
	for id := range st.placed {
		if scope != nil && !scope[id] {
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var queue []move
	for _, id := range ids {
		mv, ok, err := evaluate(id)
		if err != nil {
			return 0, err
		}
		if ok {
			queue = append(queue, mv)
		}
	}
	sort.Slice(queue, func(i, j int) bool {
		if queue[i].benefit != queue[j].benefit {
			return queue[i].benefit > queue[j].benefit
		}
		return queue[i].id < queue[j].id
	})

	migrations := 0
	for _, mv := range queue {
		// Re-evaluate: earlier moves may have consumed the target.
		cur, ok, err := evaluate(mv.id)
		if err != nil {
			return migrations, err
		}
		if !ok || cur.to != mv.to || cur.benefit <= 0 {
			continue
		}
		applied, err := st.applyMove(mv.id, mv.to)
		if err != nil {
			return migrations, err
		}
		if applied {
			migrations++
		}
	}
	return migrations, nil
}

// moveBenefit estimates the utility change of moving a seed to switch n.
func (st *heurState) moveBenefit(id string, n netmodel.SwitchID) (float64, bool, error) {
	a := st.placed[id]
	from := a.Switch
	before := st.switchUtility(from) + st.switchUtility(n)

	// Tentatively move at minimal allocation.
	p := st.preps[id]
	alloc := p.minAllocs[a.Case]
	if alloc == nil {
		return 0, false, nil
	}
	st.unplaceSeed(id)
	if !st.fits(n, p.spec, alloc) {
		// Restore.
		st.placeSeedAt(p, from, a)
		return 0, false, nil
	}
	st.placeSeed(p, n, a.Case)
	swFrom := st.switchInfo(from)
	swTo := st.switchInfo(n)
	if err := st.redistribute(swFrom); err != nil {
		return 0, false, err
	}
	if err := st.redistribute(swTo); err != nil {
		return 0, false, err
	}
	after := st.switchUtility(from) + st.switchUtility(n)

	// Roll back.
	st.unplaceSeed(id)
	st.placeSeedAt(p, from, a)
	if err := st.redistribute(swFrom); err != nil {
		return 0, false, err
	}
	if err := st.redistribute(swTo); err != nil {
		return 0, false, err
	}

	return after - before - st.in.migrationCost(), true, nil
}

// placeSeedAt restores a specific prior assignment.
func (st *heurState) placeSeedAt(p *seedPrep, n netmodel.SwitchID, a Assignment) {
	a.Switch = n
	st.placed[p.spec.ID] = a
	st.remaining[n] = st.remaining[n].Sub(allocSansPoll(a.Alloc))
	st.commitPolls(n, p.spec, a.Alloc)
	st.seedsOn[n] = append(st.seedsOn[n], p.spec.ID)
	st.invalidateSlack(n)
}

// applyMove performs the migration for real.
func (st *heurState) applyMove(id string, n netmodel.SwitchID) (bool, error) {
	a := st.placed[id]
	from := a.Switch
	p := st.preps[id]
	alloc := p.minAllocs[a.Case]
	st.unplaceSeed(id)
	if alloc == nil || !st.fits(n, p.spec, alloc) {
		st.placeSeedAt(p, from, a)
		return false, nil
	}
	st.placeSeed(p, n, a.Case)
	if err := st.redistribute(st.switchInfo(from)); err != nil {
		return false, err
	}
	if err := st.redistribute(st.switchInfo(n)); err != nil {
		return false, err
	}
	return true, nil
}
