package placement

import (
	"fmt"
	"math"
	"sort"
	"time"

	"farm/internal/lp"
	"farm/internal/netmodel"
)

// Heuristic runs Alg. 1: (1) sort tasks by decreasing minimum utility,
// (2) greedily place each task's seeds at their cheapest viable
// configuration — keeping already-placed seeds where they are — dropping
// whole tasks that do not fit, (3) redistribute resources with one LP
// per switch, (4+5) evaluate migration benefits and apply them in
// decreasing order.
func Heuristic(in *Input) (*Result, error) {
	start := time.Now()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	st := newHeurState(in)

	// Step 1: task order by decreasing minimum utility.
	taskOrder := st.sortTasks()

	// Step 2: greedy placement.
	var dropped []string
	for _, task := range taskOrder {
		if !st.placeTask(task) {
			dropped = append(dropped, task)
		}
	}

	// Step 3: LP resource redistribution per switch.
	if !in.SkipRedistribution {
		for _, sw := range in.Switches {
			if err := st.redistribute(sw); err != nil {
				return nil, err
			}
		}
	}

	// Steps 4+5: migration by decreasing benefit.
	migrations := 0
	if !in.DisableMigration && len(in.Current) > 0 {
		migrations = st.migrate()
	}

	res := &Result{
		Placed:       st.placed,
		DroppedTasks: dropped,
		Utility:      TotalUtility(in, st.placed),
		Migrations:   migrations,
		Runtime:      time.Since(start),
	}
	sort.Strings(res.DroppedTasks)
	return res, nil
}

type seedPrep struct {
	spec *SeedSpec
	// per case: minimal allocation and its utility (nil = infeasible
	// everywhere).
	minAllocs []netmodel.Resources
	minUtils  []float64
	bestMin   float64 // max over cases of minUtils
}

type heurState struct {
	in     *Input
	preps  map[string]*seedPrep
	tasks  map[string][]*seedPrep
	placed map[string]Assignment

	remaining map[netmodel.SwitchID]netmodel.Resources
	// pollMax[n][subject] = current max demand for the subject on n
	// (shared consumption = max across subscribers at group rate).
	pollMax map[netmodel.SwitchID]map[string]float64
	// seedsOn[n] = IDs placed on n (sorted when consumed).
	seedsOn map[netmodel.SwitchID][]string
}

func newHeurState(in *Input) *heurState {
	st := &heurState{
		in:        in,
		preps:     map[string]*seedPrep{},
		tasks:     map[string][]*seedPrep{},
		placed:    map[string]Assignment{},
		remaining: map[netmodel.SwitchID]netmodel.Resources{},
		pollMax:   map[netmodel.SwitchID]map[string]float64{},
		seedsOn:   map[netmodel.SwitchID][]string{},
	}
	for _, sw := range in.Switches {
		st.remaining[sw.ID] = sw.Capacity.Clone()
		st.pollMax[sw.ID] = map[string]float64{}
	}
	// The largest capacity any switch offers — feasibility screen for
	// minimal allocations.
	maxCap := netmodel.Resources{}
	for _, sw := range in.Switches {
		for r, v := range sw.Capacity {
			if v > maxCap[r] {
				maxCap[r] = v
			}
		}
	}
	for i := range in.Seeds {
		s := &in.Seeds[i]
		p := &seedPrep{spec: s, bestMin: math.Inf(-1)}
		for _, c := range s.Utility {
			alloc, ok := minimalAlloc(c, maxCap)
			if !ok {
				p.minAllocs = append(p.minAllocs, nil)
				p.minUtils = append(p.minUtils, math.Inf(-1))
				continue
			}
			u := caseUtilityAt(c, alloc)
			p.minAllocs = append(p.minAllocs, alloc)
			p.minUtils = append(p.minUtils, u)
			if u > p.bestMin {
				p.bestMin = u
			}
		}
		st.preps[s.ID] = p
		st.tasks[s.Task] = append(st.tasks[s.Task], p)
	}
	return st
}

// sortTasks orders tasks by decreasing minimum utility (the utility of
// the task's weakest seed at its cheapest configuration).
func (st *heurState) sortTasks() []string {
	type taskScore struct {
		name string
		min  float64
	}
	var scores []taskScore
	for name, seeds := range st.tasks {
		minU := math.Inf(1)
		for _, p := range seeds {
			if p.bestMin < minU {
				minU = p.bestMin
			}
		}
		scores = append(scores, taskScore{name, minU})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].min != scores[j].min {
			return scores[i].min > scores[j].min
		}
		return scores[i].name < scores[j].name
	})
	out := make([]string, len(scores))
	for i, s := range scores {
		out[i] = s.name
	}
	return out
}

// normalizedSlack scores a switch's remaining headroom as the mean of
// remaining/capacity over its resource types.
func (st *heurState) normalizedSlack(n netmodel.SwitchID) float64 {
	sw, _ := st.in.switchByID(n)
	rem := st.remaining[n]
	total, count := 0.0, 0
	for r, c := range sw.Capacity {
		if c <= 0 || r == netmodel.ResPoll {
			continue
		}
		total += rem[r] / c
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// pollFits computes the increase in total shared polling consumption on
// switch n if a seed with the given demands is added, and reports
// whether it fits the remaining poll budget.
func (st *heurState) pollDelta(n netmodel.SwitchID, spec *SeedSpec, alloc netmodel.Resources) float64 {
	delta := 0.0
	for _, pd := range spec.Polls {
		demand := st.in.alphaPoll() * pd.Rate.Eval(alloc.AsFloats())
		cur := st.pollMax[n][pd.Subject]
		if demand > cur {
			delta += demand - cur
		}
	}
	return delta
}

func (st *heurState) commitPolls(n netmodel.SwitchID, spec *SeedSpec, alloc netmodel.Resources) {
	for _, pd := range spec.Polls {
		demand := st.in.alphaPoll() * pd.Rate.Eval(alloc.AsFloats())
		if demand > st.pollMax[n][pd.Subject] {
			st.pollMax[n][pd.Subject] = demand
		}
	}
}

// recomputePolls rebuilds the poll-sharing maxima of one switch from
// scratch (after removals, a max cannot be updated incrementally).
func (st *heurState) recomputePolls(n netmodel.SwitchID) {
	m := map[string]float64{}
	for _, id := range st.seedsOn[n] {
		a := st.placed[id]
		spec := st.preps[id].spec
		for _, pd := range spec.Polls {
			demand := st.in.alphaPoll() * pd.Rate.Eval(a.Alloc.AsFloats())
			if demand > m[pd.Subject] {
				m[pd.Subject] = demand
			}
		}
	}
	st.pollMax[n] = m
}

func pollTotal(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}

// fits reports whether (alloc, polls) fit the remaining capacity of n.
func (st *heurState) fits(n netmodel.SwitchID, spec *SeedSpec, alloc netmodel.Resources) bool {
	rem := st.remaining[n]
	for r, v := range alloc {
		if r == netmodel.ResPoll {
			continue
		}
		if rem[r] < v-1e-9 {
			return false
		}
	}
	sw, _ := st.in.switchByID(n)
	if pollTotal(st.pollMax[n])+st.pollDelta(n, spec, alloc) > sw.Capacity[netmodel.ResPoll]+1e-9 {
		return false
	}
	return true
}

// placeSeed commits one seed.
func (st *heurState) placeSeed(p *seedPrep, n netmodel.SwitchID, caseIdx int) {
	alloc := p.minAllocs[caseIdx].Clone()
	st.placed[p.spec.ID] = Assignment{
		Switch:  n,
		Alloc:   alloc,
		Case:    caseIdx,
		Utility: p.minUtils[caseIdx],
	}
	st.remaining[n] = st.remaining[n].Sub(allocSansPoll(alloc))
	st.commitPolls(n, p.spec, alloc)
	st.seedsOn[n] = append(st.seedsOn[n], p.spec.ID)
}

func allocSansPoll(a netmodel.Resources) netmodel.Resources {
	c := a.Clone()
	delete(c, netmodel.ResPoll)
	return c
}

// unplaceSeed rolls a seed back out.
func (st *heurState) unplaceSeed(id string) {
	a, ok := st.placed[id]
	if !ok {
		return
	}
	delete(st.placed, id)
	st.remaining[a.Switch] = st.remaining[a.Switch].Add(allocSansPoll(a.Alloc))
	list := st.seedsOn[a.Switch]
	for i, x := range list {
		if x == id {
			st.seedsOn[a.Switch] = append(list[:i], list[i+1:]...)
			break
		}
	}
	st.recomputePolls(a.Switch)
}

// placeTask greedily places all seeds of a task; false (with rollback)
// if any seed cannot be placed (C1).
func (st *heurState) placeTask(task string) bool {
	seeds := st.tasks[task]
	var committed []string
	unplaced := map[string]*seedPrep{}
	for _, p := range seeds {
		unplaced[p.spec.ID] = p
	}

	for len(unplaced) > 0 {
		type choice struct {
			p       *seedPrep
			n       netmodel.SwitchID
			caseIdx int
			util    float64
			slack   float64 // remaining headroom on the target switch
			keeps   bool    // keeps an existing valid placement (no migration)
		}
		var best *choice
		better := func(a, b *choice) bool {
			if b == nil {
				return true
			}
			if a.keeps != b.keeps {
				return a.keeps // avoid unnecessary migration first
			}
			if a.util != b.util {
				return a.util > b.util
			}
			if a.slack != b.slack {
				// Spread load: equal utility goes to the emptier
				// switch so step 3's redistribution has headroom.
				return a.slack > b.slack
			}
			return a.p.spec.ID < b.p.spec.ID
		}
		ids := make([]string, 0, len(unplaced))
		for id := range unplaced {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			p := unplaced[id]
			cur, hasCur := st.in.Current[id]
			for _, n := range p.spec.Candidates {
				for k := range p.spec.Utility {
					if p.minAllocs[k] == nil {
						continue
					}
					if !st.fits(n, p.spec, p.minAllocs[k]) {
						continue
					}
					c := &choice{
						p: p, n: n, caseIdx: k,
						util:  p.minUtils[k],
						slack: st.normalizedSlack(n),
						keeps: hasCur && cur.Switch == n,
					}
					if better(c, best) {
						best = c
					}
				}
			}
		}
		if best == nil {
			// Task cannot be completed: roll back (C1).
			for _, id := range committed {
				st.unplaceSeed(id)
			}
			return false
		}
		st.placeSeed(best.p, best.n, best.caseIdx)
		committed = append(committed, best.p.spec.ID)
		delete(unplaced, best.p.spec.ID)
	}
	return true
}

// redistribute solves the per-switch LP of step 3: maximize the sum of
// the placed seeds' utilities subject to their selected cases, the
// switch capacities, and the shared polling budget.
func (st *heurState) redistribute(sw SwitchInfo) error {
	ids := append([]string(nil), st.seedsOn[sw.ID]...)
	if len(ids) == 0 {
		return nil
	}
	sort.Strings(ids)

	prob := lp.New(lp.Maximize)
	type seedVars struct {
		res  map[string]lp.Var
		util lp.Var
	}
	sv := map[string]*seedVars{}
	var obj []lp.Coef

	// Per-resource usage sums (excluding poll, handled via subjects).
	usage := map[string][]lp.Coef{}
	// Poll subject vars.
	pollres := map[string]lp.Var{}

	for _, id := range ids {
		p := st.preps[id]
		a := st.placed[id]
		c := p.spec.Utility[a.Case]
		vars := &seedVars{res: map[string]lp.Var{}}
		// Variables: every resource the case or polls mention.
		names := map[string]bool{}
		for _, con := range c.Constraints {
			for _, v := range con.Vars() {
				names[v] = true
			}
		}
		for _, term := range c.Util {
			for _, v := range term.Vars() {
				names[v] = true
			}
		}
		for _, pd := range p.spec.Polls {
			for _, v := range pd.Rate.Vars() {
				names[v] = true
			}
		}
		ordered := make([]string, 0, len(names))
		for v := range names {
			ordered = append(ordered, v)
		}
		sort.Strings(ordered)
		for _, r := range ordered {
			if r == netmodel.ResPoll {
				continue
			}
			v := prob.AddVar(id+"."+r, 0, sw.Capacity[r])
			vars.res[r] = v
			usage[r] = append(usage[r], lp.Coef{Var: v, Val: 1})
		}
		// Utility variable with t <= each min-term.
		vars.util = prob.AddVar(id+".u", 0, lp.Inf)
		obj = append(obj, lp.Coef{Var: vars.util, Val: 1})
		for _, term := range c.Util {
			coefs := []lp.Coef{{Var: vars.util, Val: 1}}
			for _, r := range term.Vars() {
				if rv, ok := vars.res[r]; ok {
					coefs = append(coefs, lp.Coef{Var: rv, Val: -term.CoefOf(r)})
				}
			}
			prob.AddConstraint(coefs, lp.LE, term.Const)
		}
		// Case constraints.
		for _, con := range c.Constraints {
			var coefs []lp.Coef
			for _, r := range con.Vars() {
				if rv, ok := vars.res[r]; ok {
					coefs = append(coefs, lp.Coef{Var: rv, Val: con.CoefOf(r)})
				}
			}
			if len(coefs) == 0 {
				continue
			}
			prob.AddConstraint(coefs, lp.GE, -con.Const)
		}
		// Poll demands: pollres_p >= alpha * rate(res).
		for _, pd := range p.spec.Polls {
			pv, ok := pollres[pd.Subject]
			if !ok {
				pv = prob.AddVar("poll."+pd.Subject, 0, lp.Inf)
				pollres[pd.Subject] = pv
			}
			coefs := []lp.Coef{{Var: pv, Val: 1}}
			for _, r := range pd.Rate.Vars() {
				if rv, ok := vars.res[r]; ok {
					coefs = append(coefs, lp.Coef{Var: rv, Val: -st.in.alphaPoll() * pd.Rate.CoefOf(r)})
				}
			}
			prob.AddConstraint(coefs, lp.GE, st.in.alphaPoll()*pd.Rate.Const)
		}
		sv[id] = vars
	}

	// Capacity rows.
	for r, coefs := range usage {
		prob.AddConstraint(coefs, lp.LE, sw.Capacity[r])
	}
	if len(pollres) > 0 {
		var coefs []lp.Coef
		for _, pv := range pollres {
			coefs = append(coefs, lp.Coef{Var: pv, Val: 1})
		}
		prob.AddConstraint(coefs, lp.LE, sw.Capacity[netmodel.ResPoll])
	}

	prob.SetObjective(obj, 0)
	sol, err := prob.Solve()
	if err != nil {
		return fmt.Errorf("placement: redistribution on switch %d: %w", sw.ID, err)
	}
	if sol.Status != lp.Optimal {
		// The greedy allocation is feasible by construction; keep it.
		return nil
	}
	for _, id := range ids {
		vars := sv[id]
		a := st.placed[id]
		alloc := netmodel.Resources{}
		for r, v := range vars.res {
			if x := sol.Value(v); x > 1e-9 {
				alloc[r] = x
			}
		}
		a.Alloc = alloc
		a.Utility = sol.Value(vars.util)
		st.placed[id] = a
	}
	st.recomputePolls(sw.ID)
	// Update remaining capacity from actual allocations.
	rem := netmodel.Resources{}
	for r, v := range sw.Capacity {
		rem[r] = v
	}
	for _, id := range ids {
		rem = rem.Sub(allocSansPoll(st.placed[id].Alloc))
	}
	st.remaining[sw.ID] = rem
	return nil
}

// switchUtility sums the current utilities on a switch.
func (st *heurState) switchUtility(n netmodel.SwitchID) float64 {
	total := 0.0
	for _, id := range st.seedsOn[n] {
		total += st.placed[id].Utility
	}
	return total
}

// migrate evaluates moving each seed to each alternative candidate and
// applies moves in decreasing benefit order (steps 4 and 5 of Alg. 1).
// The benefit is the change in the two affected switches' LP-optimal
// utility minus the migration cost.
func (st *heurState) migrate() int {
	type move struct {
		id      string
		to      netmodel.SwitchID
		benefit float64
	}
	evaluate := func(id string) (move, bool) {
		a, ok := st.placed[id]
		if !ok {
			return move{}, false
		}
		p := st.preps[id]
		best := move{id: id, benefit: 0}
		found := false
		for _, n := range p.spec.Candidates {
			if n == a.Switch {
				continue
			}
			b, ok := st.moveBenefit(id, n)
			if ok && b > best.benefit+1e-9 {
				best = move{id: id, to: n, benefit: b}
				found = true
			}
		}
		return best, found
	}

	ids := make([]string, 0, len(st.placed))
	for id := range st.placed {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var queue []move
	for _, id := range ids {
		if mv, ok := evaluate(id); ok {
			queue = append(queue, mv)
		}
	}
	sort.Slice(queue, func(i, j int) bool {
		if queue[i].benefit != queue[j].benefit {
			return queue[i].benefit > queue[j].benefit
		}
		return queue[i].id < queue[j].id
	})

	migrations := 0
	for _, mv := range queue {
		// Re-evaluate: earlier moves may have consumed the target.
		cur, ok := evaluate(mv.id)
		if !ok || cur.to != mv.to || cur.benefit <= 0 {
			continue
		}
		if st.applyMove(mv.id, mv.to) {
			migrations++
		}
	}
	return migrations
}

// moveBenefit estimates the utility change of moving a seed to switch n.
func (st *heurState) moveBenefit(id string, n netmodel.SwitchID) (float64, bool) {
	a := st.placed[id]
	from := a.Switch
	before := st.switchUtility(from) + st.switchUtility(n)

	// Tentatively move at minimal allocation.
	p := st.preps[id]
	alloc := p.minAllocs[a.Case]
	if alloc == nil {
		return 0, false
	}
	st.unplaceSeed(id)
	if !st.fits(n, p.spec, alloc) {
		// Restore.
		st.placeSeedAt(p, from, a)
		return 0, false
	}
	st.placeSeed(p, n, a.Case)
	swFrom, _ := st.in.switchByID(from)
	swTo, _ := st.in.switchByID(n)
	_ = st.redistribute(swFrom)
	_ = st.redistribute(swTo)
	after := st.switchUtility(from) + st.switchUtility(n)

	// Roll back.
	st.unplaceSeed(id)
	st.placeSeedAt(p, from, a)
	_ = st.redistribute(swFrom)
	_ = st.redistribute(swTo)

	return after - before - st.in.migrationCost(), true
}

// placeSeedAt restores a specific prior assignment.
func (st *heurState) placeSeedAt(p *seedPrep, n netmodel.SwitchID, a Assignment) {
	a.Switch = n
	st.placed[p.spec.ID] = a
	st.remaining[n] = st.remaining[n].Sub(allocSansPoll(a.Alloc))
	st.commitPolls(n, p.spec, a.Alloc)
	st.seedsOn[n] = append(st.seedsOn[n], p.spec.ID)
}

// applyMove performs the migration for real.
func (st *heurState) applyMove(id string, n netmodel.SwitchID) bool {
	a := st.placed[id]
	from := a.Switch
	p := st.preps[id]
	alloc := p.minAllocs[a.Case]
	st.unplaceSeed(id)
	if alloc == nil || !st.fits(n, p.spec, alloc) {
		st.placeSeedAt(p, from, a)
		return false
	}
	st.placeSeed(p, n, a.Case)
	swFrom, _ := st.in.switchByID(from)
	swTo, _ := st.in.switchByID(n)
	_ = st.redistribute(swFrom)
	_ = st.redistribute(swTo)
	return true
}
