package placement

import (
	"fmt"
	"math"
	"sort"
	"time"

	"farm/internal/lp"
	"farm/internal/netmodel"
)

// MILPOptions configures the exact solver.
type MILPOptions struct {
	// Timeout bounds branch & bound (the paper runs Gurobi with 1 s and
	// 10 min budgets); 0 means no limit.
	Timeout time.Duration
	// MaxNodes caps the search; 0 uses the lp package default.
	MaxNodes int
}

// MILP solves the placement problem exactly (modulo the time budget)
// with the §IV-D mixed-integer formulation: binary plc(s,n) per
// seed-case and candidate, tplc(t) per task, continuous res(s,n,r), and
// shared pollres(n,p), maximizing MU under (C1)-(C4). Products
// plc·f(res) are linearized with big-M constants, exploiting that (C3)
// forces res = 0 on unplaced pairs.
//
// The result reports DeadlineExceeded runs through the best incumbent
// found (like a time-boxed Gurobi run).
func MILP(in *Input, opts MILPOptions) (*Result, error) {
	start := time.Now()
	if err := in.Validate(); err != nil {
		return nil, err
	}

	prob := lp.New(lp.Maximize)
	resNames := resourceNames(in)

	// Big-M per utility: a bound no achievable utility exceeds.
	bigU := 1.0
	for i := range in.Seeds {
		for _, c := range in.Seeds[i].Utility {
			for _, term := range c.Util {
				bound := math.Abs(term.Const)
				for _, sw := range in.Switches {
					v := term.Const
					for _, r := range term.Vars() {
						if term.CoefOf(r) > 0 {
							v += term.CoefOf(r) * sw.Capacity[r]
						}
					}
					if v > bound {
						bound = v
					}
				}
				if bound > bigU {
					bigU = bound
				}
			}
		}
	}
	bigU *= 2

	type pairVars struct {
		plc  lp.Var
		util lp.Var
		res  map[string]lp.Var
	}
	// pair per (seed, case, candidate switch)
	type pairKey struct {
		seed    int
		caseIdx int
		sw      netmodel.SwitchID
	}
	pairs := map[pairKey]*pairVars{}
	tplc := map[string]lp.Var{}
	var obj []lp.Coef

	// usage[sw][r] rows; pollres[sw][subject] vars.
	usage := map[netmodel.SwitchID]map[string][]lp.Coef{}
	pollres := map[netmodel.SwitchID]map[string]lp.Var{}
	for _, sw := range in.Switches {
		usage[sw.ID] = map[string][]lp.Coef{}
		pollres[sw.ID] = map[string]lp.Var{}
	}

	taskNames := map[string]bool{}
	for i := range in.Seeds {
		taskNames[in.Seeds[i].Task] = true
	}
	ordered := make([]string, 0, len(taskNames))
	for t := range taskNames {
		ordered = append(ordered, t)
	}
	sort.Strings(ordered)
	for _, t := range ordered {
		tplc[t] = prob.AddBinary("tplc." + t)
	}

	for si := range in.Seeds {
		s := &in.Seeds[si]
		// C1: sum over (case, switch) of plc == tplc(task).
		c1 := []lp.Coef{}
		for ci, c := range s.Utility {
			for _, swID := range s.Candidates {
				sw, _ := in.switchByID(swID)
				key := pairKey{si, ci, swID}
				pv := &pairVars{res: map[string]lp.Var{}}
				pv.plc = prob.AddBinary(fmt.Sprintf("plc.%s.%d.%d", s.ID, ci, swID))
				c1 = append(c1, lp.Coef{Var: pv.plc, Val: 1})
				for _, r := range resNames {
					if r == netmodel.ResPoll {
						continue
					}
					rv := prob.AddVar(fmt.Sprintf("res.%s.%d.%d.%s", s.ID, ci, swID, r), 0, sw.Capacity[r])
					pv.res[r] = rv
					// C3: res <= cap * plc.
					prob.AddConstraint([]lp.Coef{{Var: rv, Val: 1}, {Var: pv.plc, Val: -sw.Capacity[r]}}, lp.LE, 0)
					usage[swID][r] = append(usage[swID][r], lp.Coef{Var: rv, Val: 1})
				}
				// C2: case constraints, relaxed when unplaced:
				// con(res) + M(1-plc) >= 0.
				for _, con := range c.Constraints {
					coefs := []lp.Coef{}
					for _, r := range con.Vars() {
						if rv, ok := pv.res[r]; ok {
							coefs = append(coefs, lp.Coef{Var: rv, Val: con.CoefOf(r)})
						}
					}
					// bigC: worst violation at res=0 is |con.Const|.
					bigC := math.Abs(con.Const) + 1
					coefs = append(coefs, lp.Coef{Var: pv.plc, Val: -bigC})
					prob.AddConstraint(coefs, lp.GE, -con.Const-bigC)
				}
				// Utility: u >= 0, u <= bigU*plc, u <= term(res) + bigU(1-plc).
				pv.util = prob.AddVar(fmt.Sprintf("u.%s.%d.%d", s.ID, ci, swID), 0, lp.Inf)
				prob.AddConstraint([]lp.Coef{{Var: pv.util, Val: 1}, {Var: pv.plc, Val: -bigU}}, lp.LE, 0)
				for _, term := range c.Util {
					// u <= term(res) + bigU*(1-plc), i.e.
					// u + bigU*plc - term_vars(res) <= term.Const + bigU.
					coefs := []lp.Coef{{Var: pv.util, Val: 1}, {Var: pv.plc, Val: bigU}}
					for _, r := range term.Vars() {
						if rv, ok := pv.res[r]; ok {
							coefs = append(coefs, lp.Coef{Var: rv, Val: -term.CoefOf(r)})
						}
					}
					prob.AddConstraint(coefs, lp.LE, term.Const+bigU)
				}
				obj = append(obj, lp.Coef{Var: pv.util, Val: 1})
				// Polling: pollres(n,p) >= alpha*rate(res) - bigP(1-plc).
				for _, pd := range s.Polls {
					pr, ok := pollres[swID][pd.Subject]
					if !ok {
						pr = prob.AddVar(fmt.Sprintf("pollres.%d.%s", swID, pd.Subject), 0, lp.Inf)
						pollres[swID][pd.Subject] = pr
					}
					// Worst-case demand bound for big-M.
					bigP := math.Abs(in.alphaPoll()*pd.Rate.Const) + 1
					for _, r := range pd.Rate.Vars() {
						if pd.Rate.CoefOf(r) > 0 {
							bigP += in.alphaPoll() * pd.Rate.CoefOf(r) * sw.Capacity[r]
						}
					}
					coefs := []lp.Coef{{Var: pr, Val: 1}, {Var: pv.plc, Val: -bigP}}
					for _, r := range pd.Rate.Vars() {
						if rv, ok := pv.res[r]; ok {
							coefs = append(coefs, lp.Coef{Var: rv, Val: -in.alphaPoll() * pd.Rate.CoefOf(r)})
						}
					}
					prob.AddConstraint(coefs, lp.GE, in.alphaPoll()*pd.Rate.Const-bigP)
				}
				pairs[key] = pv
			}
		}
		c1 = append(c1, lp.Coef{Var: tplc[s.Task], Val: -1})
		prob.AddConstraint(c1, lp.EQ, 0)
	}

	// C4: per-switch capacity and shared poll budget.
	for _, sw := range in.Switches {
		for r, coefs := range usage[sw.ID] {
			prob.AddConstraint(coefs, lp.LE, sw.Capacity[r])
		}
		if len(pollres[sw.ID]) > 0 {
			var coefs []lp.Coef
			for _, pr := range pollres[sw.ID] {
				coefs = append(coefs, lp.Coef{Var: pr, Val: 1})
			}
			prob.AddConstraint(coefs, lp.LE, sw.Capacity[netmodel.ResPoll])
		}
	}

	prob.SetObjective(obj, 0)
	sol, err := prob.SolveMILP(lp.MILPOptions{Timeout: opts.Timeout, MaxNodes: opts.MaxNodes})
	if err != nil {
		return nil, fmt.Errorf("placement: MILP: %w", err)
	}
	res := &Result{Placed: map[string]Assignment{}, Runtime: time.Since(start)}
	if sol.Status == lp.Infeasible || sol.Values == nil {
		for t := range tplc {
			res.DroppedTasks = append(res.DroppedTasks, t)
		}
		sort.Strings(res.DroppedTasks)
		return res, nil
	}
	for key, pv := range pairs {
		if sol.Value(pv.plc) < 0.5 {
			continue
		}
		s := &in.Seeds[key.seed]
		alloc := netmodel.Resources{}
		for r, rv := range pv.res {
			if x := sol.Value(rv); x > 1e-9 {
				alloc[r] = x
			}
		}
		res.Placed[s.ID] = Assignment{
			Switch:  key.sw,
			Alloc:   alloc,
			Case:    key.caseIdx,
			Utility: sol.Value(pv.util),
		}
	}
	for t, tv := range tplc {
		if sol.Value(tv) < 0.5 {
			res.DroppedTasks = append(res.DroppedTasks, t)
		}
	}
	sort.Strings(res.DroppedTasks)
	res.Utility = TotalUtility(in, res.Placed)
	return res, nil
}
