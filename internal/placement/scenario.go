package placement

import (
	"fmt"
	"math/rand"

	"farm/internal/netmodel"
	"farm/internal/poly"
)

// ScenarioConfig parameterizes the random workload generator used for
// the Fig. 7 evaluation: up to 10 task types (drawn from Tab. I-like
// profiles), seeds with randomized resource and placement needs spread
// over the fabric.
type ScenarioConfig struct {
	Switches int
	Seeds    int
	Tasks    int // distinct task instances; seeds are spread across them
	Seed     int64
	// CandidateSpread is the max size of a seed's candidate set
	// (uniform in [1, CandidateSpread]); 0 means 4.
	CandidateSpread int
}

// taskProfile mirrors the shape of a Tab. I use case: how demanding its
// seeds are and how their utility responds to resources.
type taskProfile struct {
	name     string
	minVCPU  float64
	minRAM   float64
	utilOf   func(r *rand.Rand) poly.Utility
	pollRate func(r *rand.Rand) []PollDemand
}

var profiles = []taskProfile{
	{
		name: "hh", minVCPU: 0.25, minRAM: 64,
		utilOf: func(r *rand.Rand) poly.Utility {
			return boundedUtility(0.25+r.Float64()*0.5, 64, poly.MinOf(
				poly.Term(netmodel.ResVCPU, 8+r.Float64()*4),
				poly.Term(netmodel.ResPCIe, 10+r.Float64()*5),
			))
		},
		pollRate: func(r *rand.Rand) []PollDemand {
			return []PollDemand{{Subject: "ports:all", Rate: poly.Term(netmodel.ResPCIe, 50+r.Float64()*50)}}
		},
	},
	{
		name: "ddos", minVCPU: 0.5, minRAM: 128,
		utilOf: func(r *rand.Rand) poly.Utility {
			return boundedUtility(0.5, 128, poly.MinOf(
				poly.Term(netmodel.ResVCPU, 12+r.Float64()*6),
				poly.Term(netmodel.ResTCAM, 0.1+r.Float64()*0.1).Add(poly.Constant(2)),
			))
		},
		pollRate: func(r *rand.Rand) []PollDemand {
			return []PollDemand{{Subject: "rule:syn", Rate: poly.Constant(100 + r.Float64()*100)}}
		},
	},
	{
		name: "superspreader", minVCPU: 0.5, minRAM: 256,
		utilOf: func(r *rand.Rand) poly.Utility {
			return boundedUtility(0.5, 256, poly.MinOf(
				poly.Term(netmodel.ResRAM, 0.02+r.Float64()*0.01),
			))
		},
		pollRate: func(r *rand.Rand) []PollDemand {
			return []PollDemand{{Subject: "ports:all", Rate: poly.Constant(50 + r.Float64()*50)}}
		},
	},
	{
		name: "portscan", minVCPU: 0.25, minRAM: 64,
		utilOf: func(r *rand.Rand) poly.Utility {
			return boundedUtility(0.25, 64, poly.MinOf(
				poly.Term(netmodel.ResVCPU, 6+r.Float64()*2).Add(poly.Constant(1)),
			))
		},
		pollRate: func(r *rand.Rand) []PollDemand {
			return []PollDemand{{Subject: "rule:scan", Rate: poly.Constant(80 + r.Float64()*40)}}
		},
	},
	{
		name: "entropy", minVCPU: 1, minRAM: 512,
		utilOf: func(r *rand.Rand) poly.Utility {
			return boundedUtility(1, 512, poly.MinOf(
				poly.Term(netmodel.ResVCPU, 10),
				poly.Term(netmodel.ResRAM, 0.01),
			))
		},
		pollRate: func(r *rand.Rand) []PollDemand {
			return []PollDemand{{Subject: "ports:all", Rate: poly.Term(netmodel.ResPCIe, 100)}}
		},
	},
	{
		name: "flowsize", minVCPU: 0.5, minRAM: 256,
		utilOf: func(r *rand.Rand) poly.Utility {
			u := boundedUtility(0.5, 256, poly.MinOf(poly.Term(netmodel.ResVCPU, 9)))
			// A cheap fallback case: lower utility at lower footprint
			// (or-split shape).
			u = append(u, poly.Case{
				Constraints: []poly.Linear{poly.Term(netmodel.ResVCPU, 1).Sub(poly.Constant(0.1))},
				Util:        poly.MinOf(poly.Term(netmodel.ResVCPU, 3)),
			})
			return u
		},
		pollRate: func(r *rand.Rand) []PollDemand {
			return []PollDemand{{Subject: "rule:flows", Rate: poly.Constant(60)}}
		},
	},
	{
		name: "synflood", minVCPU: 0.25, minRAM: 64,
		utilOf: func(r *rand.Rand) poly.Utility {
			return boundedUtility(0.25, 64, poly.MinOf(
				poly.Term(netmodel.ResVCPU, 7+r.Float64()*3),
				poly.Term(netmodel.ResPoll, 0.02),
			))
		},
		pollRate: func(r *rand.Rand) []PollDemand {
			return []PollDemand{{Subject: "rule:syn", Rate: poly.Constant(120)}}
		},
	},
	{
		name: "linkfail", minVCPU: 0.1, minRAM: 32,
		utilOf: func(r *rand.Rand) poly.Utility {
			return boundedUtility(0.1, 32, poly.MinOf(poly.Constant(5+r.Float64()*5)))
		},
		pollRate: func(r *rand.Rand) []PollDemand {
			return []PollDemand{{Subject: "ports:all", Rate: poly.Constant(20)}}
		},
	},
	{
		name: "slowloris", minVCPU: 0.5, minRAM: 128,
		utilOf: func(r *rand.Rand) poly.Utility {
			return boundedUtility(0.5, 128, poly.MinOf(
				poly.Term(netmodel.ResVCPU, 8),
				poly.Term(netmodel.ResTCAM, 0.05).Add(poly.Constant(1)),
			))
		},
		pollRate: func(r *rand.Rand) []PollDemand {
			return []PollDemand{{Subject: "rule:http", Rate: poly.Constant(90)}}
		},
	},
	{
		name: "ml", minVCPU: 2, minRAM: 1024,
		utilOf: func(r *rand.Rand) poly.Utility {
			return boundedUtility(2, 1024, poly.MinOf(
				poly.Term(netmodel.ResVCPU, 15),
			))
		},
		pollRate: func(r *rand.Rand) []PollDemand {
			return []PollDemand{{Subject: "ports:all", Rate: poly.Constant(200)}}
		},
	},
}

// boundedUtility builds a single-case utility with vCPU/RAM lower
// bounds and the given min-of-linear value.
func boundedUtility(minVCPU, minRAM float64, u poly.MinExpr) poly.Utility {
	return poly.Utility{{
		Constraints: []poly.Linear{
			poly.Term(netmodel.ResVCPU, 1).Sub(poly.Constant(minVCPU)),
			poly.Term(netmodel.ResRAM, 1).Sub(poly.Constant(minRAM)),
		},
		Util: u,
	}}
}

// RandomScenario builds a reproducible Fig. 7-style placement problem.
func RandomScenario(cfg ScenarioConfig) *Input {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.CandidateSpread <= 0 {
		cfg.CandidateSpread = 4
	}
	if cfg.Tasks <= 0 {
		cfg.Tasks = 1
	}
	in := &Input{}
	for i := 0; i < cfg.Switches; i++ {
		in.Switches = append(in.Switches, SwitchInfo{
			ID:       netmodel.SwitchID(i),
			Capacity: netmodel.DefaultLeafCapacity(),
		})
	}
	for i := 0; i < cfg.Seeds; i++ {
		taskIdx := i % cfg.Tasks
		prof := profiles[taskIdx%len(profiles)]
		nCand := 1 + rng.Intn(cfg.CandidateSpread)
		if nCand > cfg.Switches {
			nCand = cfg.Switches
		}
		cands := make([]netmodel.SwitchID, 0, nCand)
		for _, p := range rng.Perm(cfg.Switches)[:nCand] {
			cands = append(cands, netmodel.SwitchID(p))
		}
		in.Seeds = append(in.Seeds, SeedSpec{
			ID:         fmt.Sprintf("t%d/s%d", taskIdx, i),
			Task:       fmt.Sprintf("task%d-%s", taskIdx, prof.name),
			Machine:    prof.name,
			Candidates: cands,
			Utility:    prof.utilOf(rng),
			Polls:      prof.pollRate(rng),
		})
	}
	return in
}
