package placement

import (
	"fmt"
	"testing"

	"farm/internal/netmodel"
)

// digestScenario is the shared mid-size random problem for the
// determinism tests: big enough to exercise LP degeneracy, drops, and
// migrations, small enough for -race.
func digestScenario() *Input {
	return RandomScenario(ScenarioConfig{Switches: 30, Seeds: 200, Tasks: 10, Seed: 3})
}

func solveAt(t *testing.T, in *Input, workers int) *Result {
	t.Helper()
	cp := *in
	cp.Parallel = workers
	res, err := Heuristic(&cp)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if err := CheckFeasible(&cp, res); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res
}

// TestHeuristicDigestAcrossWorkers pins the step-3 determinism
// contract: the parallel per-switch LP fan-out must reproduce the
// serial solve byte-for-byte at any worker count (mirroring
// TestGeneratorDigestAcrossEngines for the traffic layer).
func TestHeuristicDigestAcrossWorkers(t *testing.T) {
	in := digestScenario()
	ref := solveAt(t, in, -1)
	for _, workers := range []int{1, 4, 16} {
		res := solveAt(t, in, workers)
		if got, want := res.Digest(), ref.Digest(); got != want {
			t.Fatalf("workers=%d digest %s, serial %s", workers, got, want)
		}
	}
}

// TestHeuristicWarmDigestAcrossWorkers pins the same contract for
// warm-start replans: after a churn event, the warm solve is identical
// at 1/4/16 workers.
func TestHeuristicWarmDigestAcrossWorkers(t *testing.T) {
	in := digestScenario()
	first := solveAt(t, in, -1)

	// Churn: drop the first task, dirtying its former switches.
	gone := in.Seeds[0].Task
	warm := *in
	warm.Seeds = nil
	warm.Current = map[string]Assignment{}
	dirty := map[netmodel.SwitchID]bool{}
	for _, s := range in.Seeds {
		if s.Task == gone {
			if a, ok := first.Placed[s.ID]; ok {
				dirty[a.Switch] = true
			}
			continue
		}
		warm.Seeds = append(warm.Seeds, s)
	}
	for id, a := range first.Placed {
		if _, kept := warm.Current[id]; kept {
			continue
		}
		warm.Current[id] = a
	}
	for id := range dirty {
		warm.Touched = append(warm.Touched, id)
	}

	ref := solveAt(t, &warm, -1)
	for _, workers := range []int{1, 4, 16} {
		res := solveAt(t, &warm, workers)
		if got, want := res.Digest(), ref.Digest(); got != want {
			t.Fatalf("warm workers=%d digest %s, serial %s", workers, got, want)
		}
	}
}

// TestHeuristicWarmStartPinsUnchanged: with nothing touched, a warm
// replan reproduces the previous placement exactly — pinned tasks keep
// their assignments and no migrations fire.
func TestHeuristicWarmStartPinsUnchanged(t *testing.T) {
	in := digestScenario()
	first := solveAt(t, in, -1)

	warm := *in
	warm.Current = first.Placed
	warm.Touched = []netmodel.SwitchID{}
	res := solveAt(t, &warm, -1)

	if res.Migrations != 0 {
		t.Fatalf("migrations = %d on an untouched warm replan", res.Migrations)
	}
	for id, a := range first.Placed {
		got, ok := res.Placed[id]
		if !ok {
			t.Fatalf("seed %s lost its placement on an untouched warm replan", id)
		}
		if got.Switch != a.Switch || got.Case != a.Case || !sameRes(got.Alloc, a.Alloc) {
			t.Fatalf("seed %s changed on an untouched warm replan: %+v -> %+v", id, a, got)
		}
	}
}

func sameRes(a, b netmodel.Resources) bool {
	return a.AtLeast(b, 1e-9) && b.AtLeast(a, 1e-9)
}

// TestHeuristicNilTouchedIsClassic: Touched nil must leave the classic
// full solve untouched, even with Current set — existing callers see
// identical behavior.
func TestHeuristicNilTouchedIsClassic(t *testing.T) {
	in := digestScenario()
	first := solveAt(t, in, -1)

	withCur := *in
	withCur.Current = first.Placed
	classic := solveAt(t, &withCur, -1)

	forced := withCur
	forced.Touched = []netmodel.SwitchID{}
	forced.ForceFull = true
	full := solveAt(t, &forced, -1)

	if classic.Digest() != full.Digest() {
		t.Fatalf("nil-Touched solve %s differs from ForceFull solve %s",
			classic.Digest(), full.Digest())
	}
}

// TestHeuristicWarmFallsBackWhenMostlyDirty: when more tasks must
// re-place than the threshold allows, the warm path gives up and the
// result equals the full solve.
func TestHeuristicWarmFallsBackWhenMostlyDirty(t *testing.T) {
	in := digestScenario()
	first := solveAt(t, in, -1)

	warm := *in
	warm.Touched = []netmodel.SwitchID{}
	warm.FullThreshold = 0.05
	// Keep Current for only a handful of seeds: almost every task is
	// dirty, far past the 5% threshold.
	warm.Current = map[string]Assignment{}
	n := 0
	for _, s := range in.Seeds {
		if a, ok := first.Placed[s.ID]; ok && n < 3 {
			warm.Current[s.ID] = a
			n++
		}
	}
	fellBack := solveAt(t, &warm, -1)

	forced := warm
	forced.ForceFull = true
	full := solveAt(t, &forced, -1)
	if fellBack.Digest() != full.Digest() {
		t.Fatalf("over-threshold warm solve %s differs from full solve %s",
			fellBack.Digest(), full.Digest())
	}
}

// TestMigrateRedistributeErrorPropagates is the regression test for
// the formerly swallowed `_ = st.redistribute(...)` calls in the
// migration pass: an LP failure mid-migration must surface as an
// error, not silently leave inconsistent state behind.
func TestMigrateRedistributeErrorPropagates(t *testing.T) {
	in := digestScenario()
	first := solveAt(t, in, -1)
	in.Current = first.Placed
	// Skip step 3 so the only redistribution solves are the migration
	// pass's benefit evaluations — the site that used to discard errors.
	in.SkipRedistribution = true

	testRedistErr = func(netmodel.SwitchID) error {
		return fmt.Errorf("injected LP failure")
	}
	defer func() { testRedistErr = nil }()

	_, err := Heuristic(in)
	if err == nil {
		t.Fatal("Heuristic swallowed an injected redistribution failure in the migration pass")
	}
}
