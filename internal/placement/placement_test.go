package placement

import (
	"testing"
	"time"

	"farm/internal/netmodel"
	"farm/internal/poly"
)

// twoSwitchInput builds a tiny problem with hand-checkable optimum.
func twoSwitchInput() *Input {
	capSmall := netmodel.Resources{
		netmodel.ResVCPU: 2, netmodel.ResRAM: 1024,
		netmodel.ResTCAM: 64, netmodel.ResPCIe: 4, netmodel.ResPoll: 500,
	}
	// Seed utility: min-linear in vCPU, feasible above 0.5 vCPU.
	mkSeed := func(id, task string, cands ...netmodel.SwitchID) SeedSpec {
		return SeedSpec{
			ID: id, Task: task, Machine: "m",
			Candidates: cands,
			Utility: poly.Utility{{
				Constraints: []poly.Linear{poly.Term(netmodel.ResVCPU, 1).Sub(poly.Constant(0.5))},
				Util:        poly.MinOf(poly.Term(netmodel.ResVCPU, 10)),
			}},
			Polls: []PollDemand{{Subject: "ports:all", Rate: poly.Constant(100)}},
		}
	}
	return &Input{
		Switches: []SwitchInfo{
			{ID: 0, Capacity: capSmall.Clone()},
			{ID: 1, Capacity: capSmall.Clone()},
		},
		Seeds: []SeedSpec{
			mkSeed("a", "t1", 0, 1),
			mkSeed("b", "t1", 0, 1),
		},
	}
}

func TestHeuristicBasicPlacement(t *testing.T) {
	in := twoSwitchInput()
	res, err := Heuristic(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placed) != 2 || len(res.DroppedTasks) != 0 {
		t.Fatalf("placed=%d dropped=%v", len(res.Placed), res.DroppedTasks)
	}
	if err := CheckFeasible(in, res); err != nil {
		t.Fatal(err)
	}
	// LP redistribution should push each seed to its switch's full
	// 2 vCPU when seeds land on different switches, or split 2 vCPU
	// when they share; either way total utility = 10 * total vCPU
	// granted and must be at least 10*2 (all seeds at min 0.5 would be
	// 10; redistribution must do better on 2 switches x 2 vCPU).
	if res.Utility < 20-1e-6 {
		t.Fatalf("utility = %g, want >= 20 after redistribution", res.Utility)
	}
}

func TestHeuristicDropsWholeTask(t *testing.T) {
	in := twoSwitchInput()
	// Add a task with one placeable and one impossible seed.
	in.Seeds = append(in.Seeds,
		SeedSpec{
			ID: "c", Task: "t2", Machine: "m", Candidates: []netmodel.SwitchID{0},
			Utility: poly.Utility{{Util: poly.MinOf(poly.Constant(1))}},
		},
		SeedSpec{
			ID: "d", Task: "t2", Machine: "m", Candidates: []netmodel.SwitchID{1},
			Utility: poly.Utility{{
				Constraints: []poly.Linear{poly.Term(netmodel.ResVCPU, 1).Sub(poly.Constant(999))},
				Util:        poly.MinOf(poly.Constant(1000)),
			}},
		},
	)
	res, err := Heuristic(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DroppedTasks) != 1 || res.DroppedTasks[0] != "t2" {
		t.Fatalf("dropped = %v, want [t2]", res.DroppedTasks)
	}
	if _, ok := res.Placed["c"]; ok {
		t.Fatal("partial task placement violates C1")
	}
	if err := CheckFeasible(in, res); err != nil {
		t.Fatal(err)
	}
}

func TestHeuristicRespectsCandidates(t *testing.T) {
	in := twoSwitchInput()
	in.Seeds[0].Candidates = []netmodel.SwitchID{1}
	in.Seeds[1].Candidates = []netmodel.SwitchID{1}
	res, err := Heuristic(in)
	if err != nil {
		t.Fatal(err)
	}
	for id, a := range res.Placed {
		if a.Switch != 1 {
			t.Fatalf("seed %s on switch %d, want 1", id, a.Switch)
		}
	}
}

func TestHeuristicKeepsCurrentPlacement(t *testing.T) {
	in := twoSwitchInput()
	first, err := Heuristic(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Current = first.Placed
	second, err := Heuristic(in)
	if err != nil {
		t.Fatal(err)
	}
	for id, a := range second.Placed {
		if a.Switch != first.Placed[id].Switch {
			t.Fatalf("seed %s migrated from %d to %d without need",
				id, first.Placed[id].Switch, a.Switch)
		}
	}
	if second.Migrations != 0 {
		t.Fatalf("migrations = %d, want 0", second.Migrations)
	}
}

func TestHeuristicMigratesWhenBeneficial(t *testing.T) {
	// One big switch, one tiny switch. Seed x starts (per Current) on
	// the tiny one; moving it to the big one raises its utility well
	// past the migration cost.
	big := netmodel.Resources{netmodel.ResVCPU: 8, netmodel.ResRAM: 4096, netmodel.ResPoll: 1000, netmodel.ResPCIe: 8, netmodel.ResTCAM: 64}
	tiny := netmodel.Resources{netmodel.ResVCPU: 0.6, netmodel.ResRAM: 256, netmodel.ResPoll: 1000, netmodel.ResPCIe: 1, netmodel.ResTCAM: 8}
	in := &Input{
		Switches: []SwitchInfo{{ID: 0, Capacity: big}, {ID: 1, Capacity: tiny}},
		Seeds: []SeedSpec{{
			ID: "x", Task: "t", Machine: "m",
			Candidates: []netmodel.SwitchID{0, 1},
			Utility: poly.Utility{{
				Constraints: []poly.Linear{poly.Term(netmodel.ResVCPU, 1).Sub(poly.Constant(0.5))},
				Util:        poly.MinOf(poly.Term(netmodel.ResVCPU, 10)),
			}},
		}},
		Current: map[string]Assignment{
			"x": {Switch: 1, Alloc: netmodel.Resources{netmodel.ResVCPU: 0.5}, Case: 0, Utility: 5},
		},
	}
	res, err := Heuristic(in)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Placed["x"]
	if a.Switch != 0 {
		t.Fatalf("seed stayed on switch %d; migration benefit ignored", a.Switch)
	}
	if res.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", res.Migrations)
	}
	if a.Utility < 50 {
		t.Fatalf("post-migration utility = %g, want ~80", a.Utility)
	}
}

func TestHeuristicMigrationDisabled(t *testing.T) {
	in := twoSwitchInput()
	in.Current = map[string]Assignment{
		"a": {Switch: 0, Alloc: netmodel.Resources{netmodel.ResVCPU: 0.5}, Case: 0},
		"b": {Switch: 0, Alloc: netmodel.Resources{netmodel.ResVCPU: 0.5}, Case: 0},
	}
	in.DisableMigration = true
	res, err := Heuristic(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Fatalf("migrations = %d with migration disabled", res.Migrations)
	}
}

func TestHeuristicPollSharing(t *testing.T) {
	// Poll capacity 150; each seed demands 100 polls/s on the SAME
	// subject: aggregation shares the demand (max, not sum), so both
	// fit on one switch. On different subjects they would not.
	capacity := netmodel.Resources{
		netmodel.ResVCPU: 4, netmodel.ResRAM: 4096,
		netmodel.ResPoll: 150, netmodel.ResPCIe: 4, netmodel.ResTCAM: 64,
	}
	mk := func(id, subject string) SeedSpec {
		return SeedSpec{
			ID: id, Task: id, Machine: "m",
			Candidates: []netmodel.SwitchID{0},
			Utility:    poly.Utility{{Util: poly.MinOf(poly.Constant(1))}},
			Polls:      []PollDemand{{Subject: subject, Rate: poly.Constant(100)}},
		}
	}
	shared := &Input{
		Switches: []SwitchInfo{{ID: 0, Capacity: capacity.Clone()}},
		Seeds:    []SeedSpec{mk("a", "ports:all"), mk("b", "ports:all")},
	}
	res, err := Heuristic(shared)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placed) != 2 {
		t.Fatalf("shared-subject seeds placed = %d, want 2 (aggregation)", len(res.Placed))
	}
	distinct := &Input{
		Switches: []SwitchInfo{{ID: 0, Capacity: capacity.Clone()}},
		Seeds:    []SeedSpec{mk("a", "ports:all"), mk("b", "rule:other")},
	}
	res2, err := Heuristic(distinct)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Placed) != 1 {
		t.Fatalf("distinct-subject seeds placed = %d, want 1 (no sharing)", len(res2.Placed))
	}
}

func TestMILPBasic(t *testing.T) {
	in := twoSwitchInput()
	res, err := MILP(in, MILPOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placed) != 2 {
		t.Fatalf("placed = %d", len(res.Placed))
	}
	if err := CheckFeasible(in, res); err != nil {
		t.Fatal(err)
	}
	if res.Utility < 20-1e-4 {
		t.Fatalf("MILP utility = %g, want >= 20", res.Utility)
	}
}

func TestMILPBeatsOrMatchesHeuristic(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		in := RandomScenario(ScenarioConfig{Switches: 3, Seeds: 6, Tasks: 3, Seed: seed})
		h, err := Heuristic(in)
		if err != nil {
			t.Fatal(err)
		}
		m, err := MILP(in, MILPOptions{Timeout: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckFeasible(in, h); err != nil {
			t.Fatalf("seed %d: heuristic infeasible: %v", seed, err)
		}
		if err := CheckFeasible(in, m); err != nil {
			t.Fatalf("seed %d: MILP infeasible: %v", seed, err)
		}
		// The exact optimum is an upper bound for the heuristic
		// (allowing small LP tolerance).
		if h.Utility > m.Utility+1e-3 && len(m.DroppedTasks) == 0 {
			t.Fatalf("seed %d: heuristic %g beats complete MILP %g", seed, h.Utility, m.Utility)
		}
	}
}

func TestMILPInfeasibleTaskDropped(t *testing.T) {
	in := &Input{
		Switches: []SwitchInfo{{ID: 0, Capacity: netmodel.Resources{netmodel.ResVCPU: 1}}},
		Seeds: []SeedSpec{{
			ID: "x", Task: "t", Machine: "m", Candidates: []netmodel.SwitchID{0},
			Utility: poly.Utility{{
				Constraints: []poly.Linear{poly.Term(netmodel.ResVCPU, 1).Sub(poly.Constant(5))},
				Util:        poly.MinOf(poly.Constant(10)),
			}},
		}},
	}
	res, err := MILP(in, MILPOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placed) != 0 || len(res.DroppedTasks) != 1 {
		t.Fatalf("placed=%d dropped=%v", len(res.Placed), res.DroppedTasks)
	}
}

// Property: on random scenarios the heuristic always returns feasible
// placements satisfying (C1)-(C4).
func TestHeuristicAlwaysFeasible(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := RandomScenario(ScenarioConfig{Switches: 6, Seeds: 30, Tasks: 5, Seed: seed})
		res, err := Heuristic(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckFeasible(in, res); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Utility < 0 {
			t.Fatalf("seed %d: negative utility %g", seed, res.Utility)
		}
	}
}

func TestHeuristicScales(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling check skipped in -short")
	}
	in := RandomScenario(ScenarioConfig{Switches: 100, Seeds: 1000, Tasks: 10, Seed: 1})
	start := time.Now()
	res, err := Heuristic(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFeasible(in, res); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("heuristic took %v on 1000 seeds/100 switches", elapsed)
	}
	if len(res.Placed) == 0 {
		t.Fatal("nothing placed")
	}
}

func TestValidateErrors(t *testing.T) {
	base := twoSwitchInput()
	cases := []struct {
		name string
		mut  func(*Input)
	}{
		{"empty ID", func(in *Input) { in.Seeds[0].ID = "" }},
		{"dup ID", func(in *Input) { in.Seeds[1].ID = in.Seeds[0].ID }},
		{"no candidates", func(in *Input) { in.Seeds[0].Candidates = nil }},
		{"bad candidate", func(in *Input) { in.Seeds[0].Candidates = []netmodel.SwitchID{99} }},
		{"no utility", func(in *Input) { in.Seeds[0].Utility = nil }},
		{"dup switch", func(in *Input) { in.Switches = append(in.Switches, in.Switches[0]) }},
	}
	for _, c := range cases {
		in := twoSwitchInput()
		c.mut(in)
		if err := in.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base should validate: %v", err)
	}
}

func TestRandomScenarioShape(t *testing.T) {
	in := RandomScenario(ScenarioConfig{Switches: 5, Seeds: 20, Tasks: 4, Seed: 7})
	if len(in.Switches) != 5 || len(in.Seeds) != 20 {
		t.Fatalf("shape: %d switches, %d seeds", len(in.Switches), len(in.Seeds))
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	tasks := map[string]bool{}
	for _, s := range in.Seeds {
		tasks[s.Task] = true
	}
	if len(tasks) != 4 {
		t.Fatalf("tasks = %d, want 4", len(tasks))
	}
	// Determinism.
	in2 := RandomScenario(ScenarioConfig{Switches: 5, Seeds: 20, Tasks: 4, Seed: 7})
	for i := range in.Seeds {
		if in.Seeds[i].ID != in2.Seeds[i].ID || len(in.Seeds[i].Candidates) != len(in2.Seeds[i].Candidates) {
			t.Fatal("scenario generation not deterministic")
		}
	}
}

func TestMinimalAllocSimpleBounds(t *testing.T) {
	c := poly.Case{
		Constraints: []poly.Linear{
			poly.Term(netmodel.ResVCPU, 1).Sub(poly.Constant(0.5)),
			poly.Term(netmodel.ResRAM, 2).Sub(poly.Constant(100)), // 2*RAM >= 100 -> RAM >= 50
		},
	}
	alloc, ok := minimalAlloc(c, netmodel.Resources{netmodel.ResVCPU: 4, netmodel.ResRAM: 1024})
	if !ok {
		t.Fatal("should be feasible")
	}
	if alloc[netmodel.ResVCPU] != 0.5 || alloc[netmodel.ResRAM] != 50 {
		t.Fatalf("alloc = %v", alloc)
	}
	// Infeasible against capacity.
	if _, ok := minimalAlloc(c, netmodel.Resources{netmodel.ResVCPU: 0.25, netmodel.ResRAM: 1024}); ok {
		t.Fatal("should be infeasible")
	}
}

func TestMinimalAllocGeneralLP(t *testing.T) {
	// vCPU + RAM >= 10 (two-variable constraint forces the LP path).
	c := poly.Case{
		Constraints: []poly.Linear{
			poly.Term(netmodel.ResVCPU, 1).Add(poly.Term(netmodel.ResRAM, 1)).Sub(poly.Constant(10)),
		},
	}
	alloc, ok := minimalAlloc(c, netmodel.Resources{netmodel.ResVCPU: 4, netmodel.ResRAM: 1024})
	if !ok {
		t.Fatal("should be feasible")
	}
	if got := alloc[netmodel.ResVCPU] + alloc[netmodel.ResRAM]; got < 10-1e-6 {
		t.Fatalf("sum = %g, want >= 10", got)
	}
}
