package placement

import (
	"testing"
	"time"

	"farm/internal/netmodel"
)

func benchScenario(seeds, switches int) *Input {
	return RandomScenario(ScenarioConfig{
		Switches: switches, Seeds: seeds, Tasks: 10, Seed: 1,
	})
}

func BenchmarkHeuristic100(b *testing.B) {
	in := benchScenario(100, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Heuristic(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeuristic1000(b *testing.B) {
	in := benchScenario(1000, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Heuristic(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeuristicWarmReplan measures the dirty-set replan path: one
// task's seeds are removed from an otherwise pinned 1000-seed
// placement — the seeder's task-departure latency.
func BenchmarkHeuristicWarmReplan(b *testing.B) {
	in := benchScenario(1000, 100)
	first, err := Heuristic(in)
	if err != nil {
		b.Fatal(err)
	}
	gone := in.Seeds[0].Task
	warm := *in
	warm.Seeds = nil
	warm.Current = map[string]Assignment{}
	dirty := map[netmodel.SwitchID]bool{}
	for _, s := range in.Seeds {
		if s.Task == gone {
			if a, ok := first.Placed[s.ID]; ok {
				dirty[a.Switch] = true
			}
			continue
		}
		warm.Seeds = append(warm.Seeds, s)
		if a, ok := first.Placed[s.ID]; ok {
			warm.Current[s.ID] = a
		}
	}
	for id := range dirty {
		warm.Touched = append(warm.Touched, id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Heuristic(&warm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMILP20(b *testing.B) {
	in := benchScenario(20, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MILP(in, MILPOptions{Timeout: 5 * time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}
