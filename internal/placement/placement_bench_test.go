package placement

import (
	"testing"
	"time"
)

func benchScenario(seeds, switches int) *Input {
	return RandomScenario(ScenarioConfig{
		Switches: switches, Seeds: seeds, Tasks: 10, Seed: 1,
	})
}

func BenchmarkHeuristic100(b *testing.B) {
	in := benchScenario(100, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Heuristic(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeuristic1000(b *testing.B) {
	in := benchScenario(1000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Heuristic(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMILP20(b *testing.B) {
	in := benchScenario(20, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MILP(in, MILPOptions{Timeout: 5 * time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}
