package core

import (
	"errors"
	"fmt"
	"math"

	"farm/internal/almanac"
	"farm/internal/dataplane"
	"farm/internal/netmodel"
)

// The bytecode VM: executes an almanac.Lowered program allocation-free
// in steady state. Values live unboxed in rval frames (machine env
// slots, per-state persistent slots, a growable locals stack for
// handler/function activations, and a shared operand stack); only
// reference values (lists, maps, structs, sketches, ...) carry a boxed
// payload. The AST interpreter (seed.go/eval.go) stays the semantic
// reference: every operation here must match it bit-for-bit, including
// error strings — the parity property tests enforce that.

// rkind tags an rval.
type rkind uint8

const (
	rkUndef rkind = iota // local slot whose DeclStmt has not executed yet
	rkNil
	rkInt
	rkFloat
	rkBool
	rkStr
	rkRef
	rkMark // internal OpAndL marker ("lhs was truthy")
)

// rval is an unboxed VM value. Exactly one payload field is meaningful
// for a given kind; bools use i (0/1). Strings keep their boxed Value
// in ref — the common sources (literals, unbox) already hold one, so no
// conversion happens, and the struct stays 40 bytes, which matters:
// the dispatch loop is dominated by rval copies between slots.
type rval struct {
	k   rkind
	i   int64
	f   float64
	ref Value
}

// asStr reads an rkStr payload.
func (r rval) asStr() string { return r.ref.(string) }

func rint(v int64) rval     { return rval{k: rkInt, i: v} }
func rfloat(v float64) rval { return rval{k: rkFloat, f: v} }
func rstr(v string) rval    { return rval{k: rkStr, ref: v} }
func rbool(v bool) rval {
	if v {
		return rval{k: rkBool, i: 1}
	}
	return rval{k: rkBool}
}
func rref(v Value) rval { return rval{k: rkRef, ref: v} }

// unbox converts a boxed Value into an rval.
func unbox(v Value) rval {
	switch x := v.(type) {
	case nil:
		return rval{k: rkNil}
	case int64:
		return rint(x)
	case float64:
		return rfloat(x)
	case bool:
		return rbool(x)
	case string:
		return rstr(x)
	default:
		return rref(v)
	}
}

// box converts an rval back into a boxed Value (cold paths only:
// bridged builtins, snapshots, sends, struct/list construction).
func (r rval) box() Value {
	switch r.k {
	case rkUndef, rkNil:
		return nil
	case rkInt:
		return r.i
	case rkFloat:
		return r.f
	case rkBool:
		return r.i != 0
	case rkStr:
		return r.ref
	default:
		return r.ref
	}
}

// typeNameR mirrors TypeName without boxing.
func typeNameR(r rval) string {
	switch r.k {
	case rkUndef, rkNil:
		return "nil"
	case rkInt:
		return "long"
	case rkFloat:
		return "float"
	case rkBool:
		return "bool"
	case rkStr:
		return "string"
	default:
		return TypeName(r.ref)
	}
}

// truthyR mirrors Truthy without boxing.
func truthyR(r rval) (bool, error) {
	switch r.k {
	case rkBool, rkInt:
		return r.i != 0, nil
	case rkFloat:
		return r.f != 0, nil
	case rkNil:
		return false, nil
	}
	return false, fmt.Errorf("core: %s is not usable as a condition", typeNameR(r))
}

// asFloatR mirrors AsFloat without boxing.
func asFloatR(r rval) (float64, bool) {
	switch r.k {
	case rkInt:
		return float64(r.i), true
	case rkFloat:
		return r.f, true
	}
	return 0, false
}

// eqR mirrors Equal on two rvals. Kinds that differ (with rkInt/rkFloat
// as one numeric class) can never be Equal, which matches every branch
// of the boxed implementation; same-class scalars compare directly and
// references defer to Equal.
func eqR(l, r rval) bool {
	if lf, ok := asFloatR(l); ok {
		rf, ok2 := asFloatR(r)
		return ok2 && lf == rf
	}
	switch l.k {
	case rkBool:
		return r.k == rkBool && l.i == r.i
	case rkStr:
		return r.k == rkStr && l.asStr() == r.asStr()
	case rkNil, rkUndef:
		return r.k == rkNil || r.k == rkUndef
	case rkRef:
		return r.k == rkRef && Equal(l.ref, r.ref)
	}
	return false
}

// eqVR mirrors Equal(boxed, rval) without boxing the right side.
func eqVR(v Value, r rval) bool {
	if fv, ok := AsFloat(v); ok {
		rf, ok2 := asFloatR(r)
		return ok2 && fv == rf
	}
	switch x := v.(type) {
	case bool:
		return r.k == rkBool && x == (r.i != 0)
	case string:
		return r.k == rkStr && x == r.asStr()
	case nil:
		return r.k == rkNil
	default:
		return r.k == rkRef && Equal(v, r.ref)
	}
}

// Prebuilt boxed zero values for reference kinds that are immutable (or
// never mutated through the shared box), so OpZero stays allocation
// free where the interpreter's zeroValue would re-box.
var (
	zeroListVal   Value = List(nil)
	zeroFilterVal Value = FilterVal{}
	zeroActionVal Value = ActionVal(dataplane.ActAllow)
	zeroPacketVal Value = PacketVal{}
)

// zeroRval mirrors zeroValue. TMap must be fresh per execution (maps
// are mutable references).
func zeroRval(t almanac.Type) rval {
	switch t {
	case almanac.TBool:
		return rbool(false)
	case almanac.TInt, almanac.TLong:
		return rint(0)
	case almanac.TFloat:
		return rfloat(0)
	case almanac.TString:
		return rstr("")
	case almanac.TList:
		return rref(zeroListVal)
	case almanac.TMap:
		return rref(MapVal{})
	case almanac.TFilter:
		return rref(zeroFilterVal)
	case almanac.TAction:
		return rref(zeroActionVal)
	case almanac.TPacket:
		return rref(zeroPacketVal)
	default:
		return rval{k: rkNil}
	}
}

// vmSeed executes one deployed machine on the lowered back end. It
// satisfies Runner exactly like *Seed does.
type vmSeed struct {
	in      *Seed // interpreter twin: init evaluation, host, bridged builtins
	lp      *linkedLowered
	env     []rval
	states  [][]rval
	state   int32
	started bool
	actions int

	stack   []rval
	sp      int
	locals  []rval
	lbase   int
	scratch []Value // bridge argument buffer
	bindBuf [1]rval
}

// newVMSeed builds the VM instance. Construction delegates to NewSeed
// so init-expression evaluation, external binding/validation, and every
// construction-time error string are shared with the interpreter; the
// resulting maps are then flattened into slots.
func newVMSeed(cm *almanac.CompiledMachine, externals map[string]Value, host Host, lp *linkedLowered) (*vmSeed, error) {
	m := &vmSeed{}
	if err := m.initFrames(cm, externals, host, lp); err != nil {
		return nil, err
	}
	m.stack = make([]rval, 32)
	m.locals = make([]rval, 32)
	return m, nil
}

// initFrames is the construction path shared with the register VM
// (which embeds vmSeed): build the interpreter twin, then flatten its
// env and per-state variable maps into slot frames.
func (m *vmSeed) initFrames(cm *almanac.CompiledMachine, externals map[string]Value, host Host, lp *linkedLowered) error {
	in, err := NewSeed(cm, externals, host)
	if err != nil {
		return err
	}
	m.in, m.lp, m.state = in, lp, lp.p.InitialState
	m.env = make([]rval, len(lp.p.EnvSlots))
	for i, s := range lp.p.EnvSlots {
		m.env[i] = unbox(in.env[s.Name])
	}
	m.states = make([][]rval, len(lp.p.States))
	for si := range lp.p.States {
		slots := lp.p.States[si].Slots
		fr := make([]rval, len(slots))
		sv := in.stateVars[lp.p.States[si].Name]
		for i, s := range slots {
			fr[i] = unbox(sv[s.Name])
		}
		m.states[si] = fr
	}
	return nil
}

func (m *vmSeed) Machine() *almanac.CompiledMachine { return m.in.Machine() }

func (m *vmSeed) State() string { return m.lp.p.States[m.state].Name }

func (m *vmSeed) Var(name string) (Value, bool) {
	if ei, ok := m.lp.envIdx[name]; ok {
		return m.env[ei].box(), true
	}
	return nil, false
}

func (m *vmSeed) TakeActionCount() int {
	n := m.actions
	m.actions = 0
	return n
}

func (m *vmSeed) Start() error {
	if m.started {
		return fmt.Errorf("core: seed %s already started", m.lp.p.Machine)
	}
	m.started = true
	if ci := m.lp.p.States[m.state].Enter; ci >= 0 {
		return m.runTop(ci, nil, 0)
	}
	return nil
}

func (m *vmSeed) HandleTrigger(varName string, data Value) error {
	ti, ok := m.lp.trigIdx[varName]
	if !ok {
		return nil
	}
	ci := m.lp.p.States[m.state].OnVar[ti]
	if ci < 0 {
		return nil // no handler in this state: the event is simply ignored
	}
	if m.lp.p.Chunks[ci].HasBind {
		m.bindBuf[0] = unbox(data)
		return m.runTop(ci, m.bindBuf[:1], 0)
	}
	return m.runTop(ci, nil, 0)
}

func (m *vmSeed) HandleRecv(from MsgSource, v Value) error {
	st := &m.lp.p.States[m.state]
	for i := range st.Recvs {
		rc := &st.Recvs[i]
		if !recvMatches(rc.Trigger, from, v) {
			continue
		}
		if m.lp.p.Chunks[rc.Chunk].HasBind {
			m.bindBuf[0] = unbox(CloneValue(v))
			return m.runTop(rc.Chunk, m.bindBuf[:1], 0)
		}
		return m.runTop(rc.Chunk, nil, 0)
	}
	return nil
}

func (m *vmSeed) HandleRealloc() error {
	if ci := m.lp.p.States[m.state].Realloc; ci >= 0 {
		return m.runTop(ci, nil, 0)
	}
	return nil
}

func (m *vmSeed) Snapshot() Snapshot {
	env := make(map[string]Value, len(m.env))
	for i, s := range m.lp.p.EnvSlots {
		env[s.Name] = CloneValue(m.env[i].box())
	}
	sv := make(map[string]map[string]Value, len(m.states))
	for si := range m.lp.p.States {
		slots := m.lp.p.States[si].Slots
		vars := make(map[string]Value, len(slots))
		for i, s := range slots {
			vars[s.Name] = CloneValue(m.states[si][i].box())
		}
		sv[m.lp.p.States[si].Name] = vars
	}
	return Snapshot{Machine: m.lp.p.Machine, State: m.State(), Env: env, StateVars: sv}
}

func (m *vmSeed) Restore(snap Snapshot) error {
	if snap.Machine != m.lp.p.Machine {
		return fmt.Errorf("core: snapshot of %s cannot restore into %s", snap.Machine, m.lp.p.Machine)
	}
	tgt, ok := m.lp.stateIdx[snap.State]
	if !ok {
		return fmt.Errorf("core: snapshot state %s unknown", snap.State)
	}
	for k, v := range snap.Env {
		ei, ok := m.lp.envIdx[k]
		if !ok {
			return fmt.Errorf("core: snapshot variable %s unknown", k)
		}
		m.env[ei] = unbox(CloneValue(v))
	}
	for stName, vars := range snap.StateVars {
		si, ok := m.lp.stateIdx[stName]
		if !ok {
			return fmt.Errorf("core: snapshot state %s unknown", stName)
		}
		idx := m.lp.svIdx[si]
		for k, v := range vars {
			if vi, ok := idx[k]; ok {
				m.states[si][vi] = unbox(CloneValue(v))
			}
			// Names the state never declared are silently dropped: the
			// interpreter would stash them in its map where no program
			// accepted by sema can observe them.
		}
	}
	m.state = tgt
	m.started = true
	return nil
}

// runTop runs a handler chunk and then any transition cascade it
// requests, with the interpreter's exact depth accounting (the depth
// bound is checked before a chunk's body runs).
func (m *vmSeed) runTop(ci int32, args []rval, depth int) error {
	if depth > maxTransitChain {
		return fmt.Errorf("core: seed %s: transition chain exceeds %d (state-machine loop?)", m.lp.p.Machine, maxTransitChain)
	}
	res, err := m.runChunk(ci, args)
	if err != nil {
		return err
	}
	if res.kind == ctrlTransit {
		return m.transitionTo(res.transit, depth+1)
	}
	return nil
}

func (m *vmSeed) transitionTo(target int32, depth int) error {
	if target < 0 {
		// Handler transits are sema-validated; lowering emits OpErr for
		// the unknown-state case, so this is unreachable. Keep the
		// interpreter's error as a backstop.
		return fmt.Errorf("core: seed %s: transit to unknown state %s", m.lp.p.Machine, "?")
	}
	old := &m.lp.p.States[m.state]
	if old.Exit >= 0 {
		res, err := m.runChunk(old.Exit, nil)
		if err != nil {
			return err
		}
		if res.kind == ctrlTransit {
			return fmt.Errorf("core: seed %s: transit inside exit handler is not allowed", m.lp.p.Machine)
		}
	}
	m.state = target
	if ci := m.lp.p.States[target].Enter; ci >= 0 {
		return m.runTop(ci, nil, depth)
	}
	return nil
}

// chunkResult is what a chunk halts with.
type chunkResult struct {
	kind    ctrl
	transit int32
	val     rval
}

func (m *vmSeed) growStack(sp int) []rval {
	ns := make([]rval, len(m.stack)*2+8)
	copy(ns, m.stack[:sp])
	m.stack = ns
	return ns
}

// dynLoad is the interpreter's scope chain minus handler locals
// (resolved statically): current state's vars, then machine env.
func (m *vmSeed) dynLoad(name string, line int32) (rval, error) {
	if vi, ok := m.lp.svIdx[m.state][name]; ok {
		return m.states[m.state][vi], nil
	}
	if ei, ok := m.lp.envIdx[name]; ok {
		return m.env[ei], nil
	}
	return rval{}, fmt.Errorf("core: undeclared variable %s (line %d)", name, line)
}

func (m *vmSeed) dynStore(name string, v rval) error {
	if vi, ok := m.lp.svIdx[m.state][name]; ok {
		m.states[m.state][vi] = v
		return nil
	}
	if ei, ok := m.lp.envIdx[name]; ok {
		m.env[ei] = v
		return nil
	}
	return fmt.Errorf("core: assignment to undeclared variable %s", name)
}

func opSym(op almanac.Op) string {
	switch op {
	case almanac.OpAdd:
		return "+"
	case almanac.OpSub:
		return "-"
	case almanac.OpMul:
		return "*"
	case almanac.OpDiv:
		return "/"
	case almanac.OpLt:
		return "<"
	case almanac.OpLe:
		return "<="
	case almanac.OpGt:
		return ">"
	case almanac.OpGe:
		return ">="
	}
	return "?"
}

// cmpBase maps a fused compare-and-branch opcode back to the plain
// comparison it was peepholed from, for the shared binOp slow path and
// its error strings.
func cmpBase(op almanac.Op) almanac.Op {
	switch op {
	case almanac.OpJLt:
		return almanac.OpLt
	case almanac.OpJLe:
		return almanac.OpLe
	case almanac.OpJGt:
		return almanac.OpGt
	default:
		return almanac.OpGe
	}
}

// setBoolR and setFloatR write a result into a stack slot touching only
// the discriminant and its payload; readers never look at the other
// fields, so skipping them avoids rewriting the whole rval.
func setBoolR(l *rval, b bool) {
	l.k = rkBool
	if b {
		l.i = 1
	} else {
		l.i = 0
	}
}

func setFloatR(l *rval, f float64) {
	l.k = rkFloat
	l.f = f
}

// runChunk executes one chunk with the given bindings in local slots
// 0..len(args)-1; all other local slots start undefined.
func (m *vmSeed) runChunk(ci int32, args []rval) (chunkResult, error) {
	ch := &m.lp.p.Chunks[ci]
	lbase := m.lbase
	need := lbase + int(ch.NumLocals)
	if need > len(m.locals) {
		nl := make([]rval, need*2+8)
		copy(nl, m.locals[:lbase])
		m.locals = nl
	}
	loc := m.locals[lbase:need:need]
	n := copy(loc, args)
	for i := n; i < len(loc); i++ {
		loc[i] = rval{}
	}
	m.lbase = need
	spBase := m.sp
	res, err := m.run(ch.Code, loc)
	m.lbase = lbase
	m.sp = spBase
	return res, err
}

func (m *vmSeed) run(code []almanac.Instr, loc []rval) (chunkResult, error) {
	lp := m.lp
	p := lp.p
	lits := lp.lits
	env := m.env
	stf := m.states[m.state] // m.state is fixed for a chunk: transit exits it
	st := m.stack
	sp := m.sp
	for pc := 0; pc < len(code); pc++ {
		in := &code[pc]
		switch in.Op {
		case almanac.OpNop:

		case almanac.OpConst:
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = lits[in.A]
			sp++

		case almanac.OpZero:
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = zeroRval(almanac.Type(in.A))
			sp++

		case almanac.OpLoadEnv:
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = env[in.A]
			sp++

		case almanac.OpStoreEnv:
			sp--
			env[in.A] = st[sp]

		case almanac.OpLoadSt:
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = stf[in.A]
			sp++

		case almanac.OpStoreSt:
			sp--
			stf[in.A] = st[sp]

		case almanac.OpLoadLocEnv:
			v := loc[in.A]
			if v.k == rkUndef {
				v = env[in.B]
			}
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = v
			sp++

		case almanac.OpLoadLocSt:
			v := loc[in.A]
			if v.k == rkUndef {
				v = stf[in.B]
			}
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = v
			sp++

		case almanac.OpLoadLocDyn:
			v := loc[in.A]
			if v.k == rkUndef {
				var err error
				v, err = m.dynLoad(p.Names[in.B], in.Line)
				if err != nil {
					return chunkResult{}, err
				}
			}
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = v
			sp++

		case almanac.OpLoadLocErr:
			v := loc[in.A]
			if v.k == rkUndef {
				return chunkResult{}, fmt.Errorf("core: undeclared variable %s (line %d)", p.Names[in.B], in.Line)
			}
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = v
			sp++

		case almanac.OpStoreLocal:
			sp--
			loc[in.A] = st[sp]

		case almanac.OpStoreLocEnv:
			sp--
			if loc[in.A].k != rkUndef {
				loc[in.A] = st[sp]
			} else {
				env[in.B] = st[sp]
			}

		case almanac.OpStoreLocSt:
			sp--
			if loc[in.A].k != rkUndef {
				loc[in.A] = st[sp]
			} else {
				stf[in.B] = st[sp]
			}

		case almanac.OpStoreLocDyn:
			sp--
			if loc[in.A].k != rkUndef {
				loc[in.A] = st[sp]
			} else if err := m.dynStore(p.Names[in.B], st[sp]); err != nil {
				return chunkResult{}, err
			}

		case almanac.OpStoreLocErr:
			sp--
			if loc[in.A].k != rkUndef {
				loc[in.A] = st[sp]
			} else {
				return chunkResult{}, fmt.Errorf("core: assignment to undeclared variable %s", p.Names[in.B])
			}

		case almanac.OpLoadDyn:
			v, err := m.dynLoad(p.Names[in.A], in.Line)
			if err != nil {
				return chunkResult{}, err
			}
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = v
			sp++

		case almanac.OpStoreDyn:
			sp--
			if err := m.dynStore(p.Names[in.A], st[sp]); err != nil {
				return chunkResult{}, err
			}

		case almanac.OpLoadErr:
			return chunkResult{}, fmt.Errorf("core: undeclared variable %s (line %d)", p.Names[in.A], in.Line)

		case almanac.OpStoreErr:
			return chunkResult{}, fmt.Errorf("core: assignment to undeclared variable %s", p.Names[in.A])

		case almanac.OpJump:
			pc = int(in.A) - 1

		case almanac.OpJumpIfFalse:
			sp--
			b, err := truthyR(st[sp])
			if err != nil {
				return chunkResult{}, err
			}
			if !b {
				pc = int(in.A) - 1
			}

		case almanac.OpLoopInit:
			loc[in.A] = rint(0)

		case almanac.OpLoopCheck:
			if loc[in.A].i >= maxWhileIterations {
				return chunkResult{}, fmt.Errorf("core: while loop exceeded %d iterations (line %d)", maxWhileIterations, in.Line)
			}
			loc[in.A].i++

		case almanac.OpTransit:
			m.sp = sp
			return chunkResult{kind: ctrlTransit, transit: in.A}, nil

		case almanac.OpReturn:
			res := chunkResult{kind: ctrlReturn, val: rval{k: rkNil}}
			if in.A == 1 {
				sp--
				res.val = st[sp]
			}
			m.sp = sp
			return res, nil

		case almanac.OpNot:
			b, err := truthyR(st[sp-1])
			if err != nil {
				return chunkResult{}, err
			}
			st[sp-1] = rbool(!b)

		case almanac.OpNeg:
			switch st[sp-1].k {
			case rkInt:
				st[sp-1].i = -st[sp-1].i
			case rkFloat:
				st[sp-1].f = -st[sp-1].f
			default:
				return chunkResult{}, fmt.Errorf("core: unary - on %s", typeNameR(st[sp-1]))
			}

		case almanac.OpEq:
			sp--
			setBoolR(&st[sp-1], eqR(st[sp-1], st[sp]))

		case almanac.OpNe:
			sp--
			setBoolR(&st[sp-1], !eqR(st[sp-1], st[sp]))

		case almanac.OpJEq:
			sp -= 2
			if !eqR(st[sp], st[sp+1]) {
				pc = int(in.A) - 1
			}

		case almanac.OpJNe:
			sp -= 2
			if eqR(st[sp], st[sp+1]) {
				pc = int(in.A) - 1
			}

		case almanac.OpJLt, almanac.OpJLe, almanac.OpJGt, almanac.OpJGe:
			sp -= 2
			l := &st[sp]
			r := &st[sp+1]
			var b bool
			if l.k == rkInt && r.k == rkInt {
				switch in.Op {
				case almanac.OpJLt:
					b = l.i < r.i
				case almanac.OpJLe:
					b = l.i <= r.i
				case almanac.OpJGt:
					b = l.i > r.i
				default:
					b = l.i >= r.i
				}
			} else if lf, lok := asFloatR(*l); lok {
				rf, rok := asFloatR(*r)
				if !rok {
					return chunkResult{}, fmt.Errorf("core: %s %s %s is not defined (line %d)",
						typeNameR(*l), opSym(cmpBase(in.Op)), typeNameR(*r), in.Line)
				}
				switch in.Op {
				case almanac.OpJLt:
					b = lf < rf
				case almanac.OpJLe:
					b = lf <= rf
				case almanac.OpJGt:
					b = lf > rf
				default:
					b = lf >= rf
				}
			} else {
				// Non-numeric left operand: the shared slow path raises
				// exactly the error the unfused comparison would.
				v, err := m.binOp(almanac.Instr{Op: cmpBase(in.Op), Line: in.Line}, *l, *r)
				if err != nil {
					return chunkResult{}, err
				}
				b = v.i != 0
			}
			if !b {
				pc = int(in.A) - 1
			}

		case almanac.OpAdd, almanac.OpSub, almanac.OpMul, almanac.OpDiv,
			almanac.OpLt, almanac.OpLe, almanac.OpGt, almanac.OpGe:
			sp--
			l := &st[sp-1]
			r := &st[sp]
			if l.k == rkInt && r.k == rkInt {
				// Long/long fast path inline; division falls through to
				// binOp when the divisor is zero (for the error).
				done := true
				switch in.Op {
				case almanac.OpAdd:
					l.i += r.i
				case almanac.OpSub:
					l.i -= r.i
				case almanac.OpMul:
					l.i *= r.i
				case almanac.OpDiv:
					if r.i == 0 {
						done = false
					} else {
						l.i /= r.i
					}
				case almanac.OpLt:
					setBoolR(l, l.i < r.i)
				case almanac.OpLe:
					setBoolR(l, l.i <= r.i)
				case almanac.OpGt:
					setBoolR(l, l.i > r.i)
				default:
					setBoolR(l, l.i >= r.i)
				}
				if done {
					break
				}
			}
			lf, lok := asFloatR(*l)
			rf, rok := asFloatR(*r)
			if lok && rok {
				// Mixed/float numeric fast path; division by zero falls
				// through to binOp for the shared error string.
				done := true
				switch in.Op {
				case almanac.OpAdd:
					setFloatR(l, lf+rf)
				case almanac.OpSub:
					setFloatR(l, lf-rf)
				case almanac.OpMul:
					setFloatR(l, lf*rf)
				case almanac.OpDiv:
					if rf == 0 {
						done = false
					} else {
						setFloatR(l, lf/rf)
					}
				case almanac.OpLt:
					setBoolR(l, lf < rf)
				case almanac.OpLe:
					setBoolR(l, lf <= rf)
				case almanac.OpGt:
					setBoolR(l, lf > rf)
				default:
					setBoolR(l, lf >= rf)
				}
				if done {
					break
				}
			}
			v, err := m.binOp(*in, st[sp-1], st[sp])
			if err != nil {
				return chunkResult{}, err
			}
			st[sp-1] = v

		case almanac.OpTruthy:
			b, err := truthyR(st[sp-1])
			if err != nil {
				return chunkResult{}, err
			}
			st[sp-1] = rbool(b)

		case almanac.OpAndL:
			l := st[sp-1]
			if l.k == rkRef {
				if _, ok := l.ref.(FilterVal); ok {
					break // leave the filter for OpAndR, evaluate rhs
				}
			}
			b, err := truthyR(l)
			if err != nil {
				return chunkResult{}, err
			}
			if !b {
				st[sp-1] = rbool(false)
				pc = int(in.A) - 1
				break
			}
			st[sp-1] = rval{k: rkMark}

		case almanac.OpAndR:
			sp--
			r := st[sp]
			mark := st[sp-1]
			if mark.k == rkMark {
				b, err := truthyR(r)
				if err != nil {
					return chunkResult{}, err
				}
				st[sp-1] = rbool(b)
				break
			}
			lf := mark.ref.(FilterVal)
			rf, ok := r.ref.(FilterVal)
			if r.k != rkRef || !ok {
				return chunkResult{}, fmt.Errorf("core: filter and %s", typeNameR(r))
			}
			lc := almanac.FilterConst(lf.F)
			lc.PortAny = lf.PortAny
			rc := almanac.FilterConst(rf.F)
			rc.PortAny = rf.PortAny
			merged, err := almanac.MergeFilterConsts(lc, rc)
			if err != nil {
				return chunkResult{}, err
			}
			st[sp-1] = rref(FilterVal{F: merged.Filter, PortAny: merged.PortAny})

		case almanac.OpOrL:
			b, err := truthyR(st[sp-1])
			if err != nil {
				return chunkResult{}, err
			}
			if b {
				st[sp-1] = rbool(true)
				pc = int(in.A) - 1
			} else {
				sp--
			}

		case almanac.OpField:
			v, err := m.fieldOp(st[sp-1], p.Names[in.A], in.Line)
			if err != nil {
				return chunkResult{}, err
			}
			st[sp-1] = v

		case almanac.OpFilterAtom:
			v, err := filterAtomOp(st[sp-1], p.Names[in.A], in.Line)
			if err != nil {
				return chunkResult{}, err
			}
			st[sp-1] = v

		case almanac.OpFilterAny:
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = rref(FilterVal{PortAny: true})
			sp++

		case almanac.OpStructLit:
			l := lp.layouts[in.A]
			n := len(l.Names)
			fields := make([]Value, n)
			for i := 0; i < n; i++ {
				fields[i] = st[sp-n+i].box()
			}
			sp -= n
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = rref(StructVal{L: l, V: fields})
			sp++

		case almanac.OpListLit:
			n := int(in.A)
			out := make(List, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, st[sp-n+i].box())
			}
			sp -= n
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = rref(out)
			sp++

		case almanac.OpCallB:
			argc := int(in.B)
			argv := st[sp-argc : sp]
			if nf := lp.natives[in.A]; nf != nil {
				res, handled, err := nf(m.in, argv, in.Line)
				if err != nil {
					return chunkResult{}, err
				}
				if handled {
					sp -= argc
					if sp == len(st) {
						st = m.growStack(sp)
					}
					st[sp] = res
					sp++
					break
				}
			}
			// Bridge: box the arguments and run the shared builtin, so
			// every cold path and error string has a single source.
			m.scratch = m.scratch[:0]
			for _, a := range argv {
				m.scratch = append(m.scratch, a.box())
			}
			v, err := lp.bfns[in.A](m.in, m.scratch, int(in.Line))
			if err != nil {
				return chunkResult{}, err
			}
			sp -= argc
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = unbox(v)
			sp++

		case almanac.OpCallFn:
			fn := &p.Funcs[in.A]
			argc := int(in.B)
			sp -= argc
			m.sp = sp
			res, err := m.runChunk(fn.Chunk, st[sp:sp+argc])
			st = m.stack // the callee may have grown the shared stack
			if err != nil {
				return chunkResult{}, err
			}
			if res.kind == ctrlTransit {
				return chunkResult{}, fmt.Errorf("core: transit inside function %s is not allowed", fn.Name)
			}
			v := res.val
			if res.kind != ctrlReturn {
				v = rval{k: rkNil}
			}
			if sp == len(st) {
				st = m.growStack(sp)
			}
			st[sp] = v
			sp++

		case almanac.OpStep:
			m.actions++

		case almanac.OpPop:
			sp--

		case almanac.OpSend:
			site := &p.Sends[in.A]
			dest := SendDest{Harvester: site.Harvester, Machine: site.Machine}
			if site.HasDst {
				sp--
				d := st[sp]
				if d.k != rkStr {
					return chunkResult{}, fmt.Errorf("core: send destination must be a string, got %s", typeNameR(d))
				}
				dest.Dst = d.asStr()
			}
			sp--
			m.in.host.Send(dest, CloneValue(st[sp].box()))

		case almanac.OpSetIval:
			sp--
			v := st[sp]
			name := p.Names[in.A]
			ms, ok := asFloatR(v)
			if !ok || ms <= 0 {
				return chunkResult{}, fmt.Errorf("core: trigger %s.ival must be a positive number, got %s", name, FormatValue(v.box()))
			}
			m.in.host.SetTriggerInterval(name, ms)

		case almanac.OpSetTrigger:
			sp--
			v := st[sp]
			name := p.Names[in.A]
			var sv StructVal
			ok := v.k == rkRef
			if ok {
				sv, ok = v.ref.(StructVal)
			}
			if !ok {
				return chunkResult{}, fmt.Errorf("core: trigger %s must be assigned a Poll/Probe value", name)
			}
			ivalV, ok := sv.Get("ival")
			if !ok {
				return chunkResult{}, fmt.Errorf("core: trigger %s reassignment needs .ival", name)
			}
			ms, ok := AsFloat(ivalV)
			if !ok || ms <= 0 {
				return chunkResult{}, fmt.Errorf("core: trigger %s.ival must be a positive number", name)
			}
			m.in.host.SetTriggerInterval(name, ms)

		case almanac.OpFieldAssign:
			sp--
			if err := m.fieldAssign(&p.FieldAssigns[in.A], loc, st[sp]); err != nil {
				return chunkResult{}, err
			}

		case almanac.OpErr:
			return chunkResult{}, errors.New(p.Errs[in.A])

		default:
			return chunkResult{}, fmt.Errorf("core: vm: unknown opcode %d", in.Op)
		}
	}
	m.sp = sp
	return chunkResult{val: rval{k: rkNil}}, nil
}

// binOp implements + - * / < <= > >= with the interpreter's exact
// semantics: string/list concatenation for +, int64 arithmetic when
// both operands are longs, the shared almanac float table otherwise.
func (m *vmSeed) binOp(in almanac.Instr, l, r rval) (rval, error) {
	if l.k == rkInt && r.k == rkInt {
		switch in.Op {
		case almanac.OpAdd:
			return rint(l.i + r.i), nil
		case almanac.OpSub:
			return rint(l.i - r.i), nil
		case almanac.OpMul:
			return rint(l.i * r.i), nil
		case almanac.OpDiv:
			if r.i == 0 {
				return rval{}, fmt.Errorf("core: division by zero (line %d)", in.Line)
			}
			return rint(l.i / r.i), nil
		case almanac.OpLt:
			return rbool(l.i < r.i), nil
		case almanac.OpLe:
			return rbool(l.i <= r.i), nil
		case almanac.OpGt:
			return rbool(l.i > r.i), nil
		case almanac.OpGe:
			return rbool(l.i >= r.i), nil
		}
	}
	if in.Op == almanac.OpAdd {
		if l.k == rkStr && r.k == rkStr {
			return rstr(l.asStr() + r.asStr()), nil
		}
		if l.k == rkRef && r.k == rkRef {
			if ll, ok := l.ref.(List); ok {
				if rl, ok := r.ref.(List); ok {
					out := make(List, 0, len(ll)+len(rl))
					out = append(out, ll...)
					return rref(append(out, rl...)), nil
				}
			}
		}
	}
	lf, lok := asFloatR(l)
	rf, rok := asFloatR(r)
	if !lok || !rok {
		return rval{}, fmt.Errorf("core: %s %s %s is not defined (line %d)", typeNameR(l), opSym(in.Op), typeNameR(r), in.Line)
	}
	if res, ok, err := almanac.NumArith(opSym(in.Op), lf, rf); ok {
		if err != nil {
			return rval{}, fmt.Errorf("core: %v (line %d)", err, in.Line)
		}
		return rfloat(res), nil
	}
	res, _ := almanac.NumCompare(opSym(in.Op), lf, rf)
	return rbool(res), nil
}

// fieldOp mirrors evalField/packetField.
func (m *vmSeed) fieldOp(x rval, field string, line int32) (rval, error) {
	if x.k == rkRef {
		switch v := x.ref.(type) {
		case StructVal:
			f, ok := v.Get(field)
			if !ok {
				return rval{}, fmt.Errorf("core: struct %s has no field %s (line %d)", v.Type(), field, line)
			}
			return unbox(f), nil
		case ResourcesVal:
			return unbox(netmodel.Resources(v)[field]), nil
		case MapVal:
			return unbox(v[field]), nil
		case PacketVal:
			return packetFieldR(v, field, line)
		}
	}
	return rval{}, fmt.Errorf("core: %s has no fields (line %d)", typeNameR(x), line)
}

// packetFieldR mirrors packetField without boxing.
func packetFieldR(p PacketVal, field string, line int32) (rval, error) {
	switch field {
	case "srcIP":
		return rstr(p.SrcIP.String()), nil
	case "dstIP":
		return rstr(p.DstIP.String()), nil
	case "srcPort":
		return rint(int64(p.SrcPort)), nil
	case "dstPort":
		return rint(int64(p.DstPort)), nil
	case "proto":
		return rstr(dataplaneProtoName(p)), nil
	case "size":
		return rint(int64(p.Size)), nil
	case "syn":
		return rbool(p.Flags.Has(flagSYN)), nil
	case "ack":
		return rbool(p.Flags.Has(flagACK)), nil
	case "fin":
		return rbool(p.Flags.Has(flagFIN)), nil
	case "rst":
		return rbool(p.Flags.Has(flagRST)), nil
	case "dnsResponse":
		return rbool(p.App.DNSResponse), nil
	case "dnsQName":
		return rstr(p.App.DNSQName), nil
	case "sshAuthFail":
		return rbool(p.App.SSHAuthFail), nil
	case "httpPartial":
		return rbool(p.App.HTTPPartial), nil
	case "flow":
		return rstr(dataplanePacket(p).Flow().String()), nil
	}
	return rval{}, fmt.Errorf("core: packet has no field %s (line %d)", field, line)
}

// filterAtomOp mirrors evalFilterAtom (the non-ANY path).
func filterAtomOp(arg rval, field string, line int32) (rval, error) {
	var c almanac.Const
	switch arg.k {
	case rkInt:
		c = almanac.NumConst(float64(arg.i))
	case rkFloat:
		c = almanac.NumConst(arg.f)
	case rkStr:
		c = almanac.StrConst(arg.asStr())
	default:
		return rval{}, fmt.Errorf("core: filter field %s: unsupported argument %s (line %d)", field, typeNameR(arg), line)
	}
	fc, err := almanac.BuildFilterAtom(field, c)
	if err != nil {
		return rval{}, fmt.Errorf("core: %w (line %d)", err, line)
	}
	return rref(FilterVal{F: fc.Filter, PortAny: fc.PortAny}), nil
}

// fieldAssign mirrors execAssign's struct-field path.
func (m *vmSeed) fieldAssign(fa *almanac.FieldAssignSite, loc []rval, v rval) error {
	var cur rval
	found := false
	if fa.Local >= 0 && loc[fa.Local].k != rkUndef {
		cur = loc[fa.Local]
		found = true
	} else if fa.Dyn {
		if vi, ok := m.lp.svIdx[m.state][fa.Target]; ok {
			cur = m.states[m.state][vi]
			found = true
		} else if ei, ok := m.lp.envIdx[fa.Target]; ok {
			cur = m.env[ei]
			found = true
		}
	} else if fa.St >= 0 {
		cur = m.states[m.state][fa.St]
		found = true
	} else if fa.Env >= 0 {
		cur = m.env[fa.Env]
		found = true
	}
	if !found {
		return fmt.Errorf("core: assignment to undeclared variable %s", fa.Target)
	}
	var sv StructVal
	ok := cur.k == rkRef
	if ok {
		sv, ok = cur.ref.(StructVal)
	}
	if !ok {
		return fmt.Errorf("core: %s is %s, not a struct", fa.Target, typeNameR(cur))
	}
	if !sv.Set(fa.Field, v.box()) {
		return fmt.Errorf("core: struct %s has no field %s", sv.Type(), fa.Field)
	}
	return nil
}

// nativeFn is an unboxed fast path for one builtin: handled=false means
// "bridge to the boxed builtin" (unexpected types, arity, or any error
// case — error strings have exactly one source, builtins.go).
type nativeFn func(s *Seed, args []rval, line int32) (res rval, handled bool, err error)

var vmNatives = map[string]nativeFn{
	"list_len":          nvListLen,
	"is_list_empty":     nvListEmpty,
	"list_get":          nvListGet,
	"list_contains":     nvListContains,
	"list_clear":        nvListClear,
	"map_new":           nvMapNew,
	"map_get":           nvMapGet,
	"map_set":           nvMapSet,
	"map_has":           nvMapHas,
	"map_del":           nvMapDel,
	"map_len":           nvMapLen,
	"min":               nvMin,
	"max":               nvMax,
	"abs":               nvAbs,
	"floor":             nvFloor,
	"log":               nvLog,
	"log2":              nvLog2,
	"now":               nvNow,
	"str":               nvStr,
	"getHH":             nvGetHH,
	"sketch_add":        nvSketchAdd,
	"sketch_count":      nvSketchCount,
	"sketch_total":      nvSketchTotal,
	"distinct_add":      nvDistinctAdd,
	"distinct_estimate": nvDistinctEstimate,
}

// asListR extracts a List per asList semantics (nil passes); handled
// reports whether the rval is list-shaped at all.
func asListR(r rval) (List, bool) {
	if r.k == rkNil {
		return nil, true
	}
	if r.k == rkRef {
		if l, ok := r.ref.(List); ok {
			return l, true
		}
	}
	return nil, false
}

func nvListLen(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 1 {
		return rval{}, false, nil
	}
	l, ok := asListR(args[0])
	if !ok {
		return rval{}, false, nil
	}
	return rint(int64(len(l))), true, nil
}

func nvListEmpty(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 1 {
		return rval{}, false, nil
	}
	l, ok := asListR(args[0])
	if !ok {
		return rval{}, false, nil
	}
	return rbool(len(l) == 0), true, nil
}

func nvListGet(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 2 {
		return rval{}, false, nil
	}
	l, ok := asListR(args[0])
	if !ok {
		return rval{}, false, nil
	}
	idx, ok := asFloatR(args[1])
	if !ok {
		return rval{}, false, nil
	}
	i := int(idx)
	if i < 0 || i >= len(l) {
		return rval{}, false, nil // bridge for the exact range error
	}
	return unbox(l[i]), true, nil
}

func nvListContains(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 2 {
		return rval{}, false, nil
	}
	l, ok := asListR(args[0])
	if !ok {
		return rval{}, false, nil
	}
	for _, e := range l {
		if eqVR(e, args[1]) {
			return rbool(true), true, nil
		}
	}
	return rbool(false), true, nil
}

func nvListClear(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 1 {
		return rval{}, false, nil
	}
	return rref(zeroListVal), true, nil
}

func nvMapNew(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 0 {
		return rval{}, false, nil
	}
	return rref(MapVal{}), true, nil
}

func nvMapGet(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 3 {
		return rval{}, false, nil
	}
	if args[0].k != rkRef || args[1].k != rkStr {
		return rval{}, false, nil
	}
	mv, ok := args[0].ref.(MapVal)
	if !ok {
		return rval{}, false, nil
	}
	if v, ok := mv[args[1].asStr()]; ok {
		return unbox(v), true, nil
	}
	return args[2], true, nil
}

func nvMapSet(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 3 {
		return rval{}, false, nil
	}
	if args[0].k != rkRef || args[1].k != rkStr {
		return rval{}, false, nil
	}
	mv, ok := args[0].ref.(MapVal)
	if !ok {
		return rval{}, false, nil
	}
	mv[args[1].asStr()] = args[2].box()
	return args[0], true, nil
}

func nvMapHas(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 2 {
		return rval{}, false, nil
	}
	if args[0].k != rkRef || args[1].k != rkStr {
		return rval{}, false, nil
	}
	mv, ok := args[0].ref.(MapVal)
	if !ok {
		return rval{}, false, nil
	}
	_, has := mv[args[1].asStr()]
	return rbool(has), true, nil
}

func nvMapDel(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 2 {
		return rval{}, false, nil
	}
	if args[0].k != rkRef || args[1].k != rkStr {
		return rval{}, false, nil
	}
	mv, ok := args[0].ref.(MapVal)
	if !ok {
		return rval{}, false, nil
	}
	delete(mv, args[1].asStr())
	return args[0], true, nil
}

func nvMapLen(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 1 {
		return rval{}, false, nil
	}
	if args[0].k != rkRef {
		return rval{}, false, nil
	}
	mv, ok := args[0].ref.(MapVal)
	if !ok {
		return rval{}, false, nil
	}
	return rint(int64(len(mv))), true, nil
}

// nvMinMax mirrors biMin/biMax: float comparison, int64 result when
// every operand is a long (including the same float64→int64 narrowing).
func nvMinMax(args []rval, max bool) (rval, bool, error) {
	if len(args) == 0 {
		return rval{}, false, nil
	}
	allInt := true
	best, ok := asFloatR(args[0])
	if !ok {
		return rval{}, false, nil
	}
	if args[0].k != rkInt {
		allInt = false
	}
	for _, a := range args[1:] {
		f, ok := asFloatR(a)
		if !ok {
			return rval{}, false, nil
		}
		if a.k != rkInt {
			allInt = false
		}
		if (max && f > best) || (!max && f < best) {
			best = f
		}
	}
	if allInt {
		return rint(int64(best)), true, nil
	}
	return rfloat(best), true, nil
}

func nvMin(_ *Seed, args []rval, _ int32) (rval, bool, error) { return nvMinMax(args, false) }
func nvMax(_ *Seed, args []rval, _ int32) (rval, bool, error) { return nvMinMax(args, true) }

func nvAbs(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 1 {
		return rval{}, false, nil
	}
	switch args[0].k {
	case rkInt:
		if args[0].i < 0 {
			return rint(-args[0].i), true, nil
		}
		return args[0], true, nil
	case rkFloat:
		return rfloat(math.Abs(args[0].f)), true, nil
	}
	return rval{}, false, nil
}

func nvFloor(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 1 {
		return rval{}, false, nil
	}
	f, ok := asFloatR(args[0])
	if !ok {
		return rval{}, false, nil
	}
	return rint(int64(math.Floor(f))), true, nil
}

func nvLog(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 1 {
		return rval{}, false, nil
	}
	f, ok := asFloatR(args[0])
	if !ok || f <= 0 {
		return rval{}, false, nil
	}
	return rfloat(math.Log(f)), true, nil
}

func nvLog2(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 1 {
		return rval{}, false, nil
	}
	f, ok := asFloatR(args[0])
	if !ok || f <= 0 {
		return rval{}, false, nil
	}
	return rfloat(math.Log2(f)), true, nil
}

func nvNow(s *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 0 {
		return rval{}, false, nil
	}
	return rfloat(float64(s.host.Now().Milliseconds())), true, nil
}

func nvStr(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 1 || args[0].k != rkStr {
		return rval{}, false, nil
	}
	return args[0], true, nil
}

func nvGetHH(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 2 {
		return rval{}, false, nil
	}
	stats, ok := asListR(args[0])
	if !ok {
		return rval{}, false, nil
	}
	th, ok := asFloatR(args[1])
	if !ok {
		return rval{}, false, nil
	}
	var hitters List
	for _, rec := range stats {
		sv, ok := rec.(StructVal)
		if !ok || sv.Type() != "PortStats" {
			return rval{}, false, nil // bridge for the exact error
		}
		if sv.L == portStatsLayout {
			d, _ := AsFloat(sv.V[psDTxBytes])
			if d >= th {
				hitters = append(hitters, sv.V[psPort])
			}
			continue
		}
		dv, _ := sv.Get("dTxBytes")
		d, _ := AsFloat(dv)
		if d >= th {
			pv, _ := sv.Get("port")
			hitters = append(hitters, pv)
		}
	}
	return rref(hitters), true, nil
}

func nvSketchAdd(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 3 {
		return rval{}, false, nil
	}
	if args[0].k != rkRef || args[1].k != rkStr {
		return rval{}, false, nil
	}
	s, ok := args[0].ref.(SketchVal)
	if !ok {
		return rval{}, false, nil
	}
	delta, ok := asFloatR(args[2])
	if !ok || delta < 0 {
		return rval{}, false, nil
	}
	s.S.Add(args[1].asStr(), uint64(delta))
	return args[0], true, nil
}

func nvSketchCount(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 2 {
		return rval{}, false, nil
	}
	if args[0].k != rkRef || args[1].k != rkStr {
		return rval{}, false, nil
	}
	s, ok := args[0].ref.(SketchVal)
	if !ok {
		return rval{}, false, nil
	}
	return rint(int64(s.S.Count(args[1].asStr()))), true, nil
}

func nvSketchTotal(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 1 || args[0].k != rkRef {
		return rval{}, false, nil
	}
	s, ok := args[0].ref.(SketchVal)
	if !ok {
		return rval{}, false, nil
	}
	return rint(int64(s.S.Total())), true, nil
}

func nvDistinctAdd(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 2 {
		return rval{}, false, nil
	}
	if args[0].k != rkRef || args[1].k != rkStr {
		return rval{}, false, nil
	}
	d, ok := args[0].ref.(DistinctVal)
	if !ok {
		return rval{}, false, nil
	}
	d.D.Add(args[1].asStr())
	return args[0], true, nil
}

func nvDistinctEstimate(_ *Seed, args []rval, _ int32) (rval, bool, error) {
	if len(args) != 1 || args[0].k != rkRef {
		return rval{}, false, nil
	}
	d, ok := args[0].ref.(DistinctVal)
	if !ok {
		return rval{}, false, nil
	}
	return rfloat(d.D.Estimate()), true, nil
}
