package core

import (
	"fmt"

	"farm/internal/sketch"
)

// SketchVal wraps a count-min sketch as an Almanac value. Sketches are
// reference values within a seed; CloneValue deep-copies them so
// migration snapshots and messages stay isolated.
type SketchVal struct{ S *sketch.CountMin }

// DistinctVal wraps a distinct counter as an Almanac value.
type DistinctVal struct{ D *sketch.Distinct }

func init() {
	// Sketch runtime library — the §VIII "integration of sketches into
	// FARM" extension. Bounded-memory stream state for seeds:
	//   sketch s = sketch_new(512, 4);
	//   sketch_add(s, p.dstIP, p.size);
	//   if (sketch_count(s, p.dstIP) >= threshold) then { ... }
	builtins["sketch_new"] = biSketchNew
	builtins["sketch_add"] = biSketchAdd
	builtins["sketch_count"] = biSketchCount
	builtins["sketch_total"] = biSketchTotal
	builtins["sketch_reset"] = biSketchReset
	builtins["distinct_new"] = biDistinctNew
	builtins["distinct_add"] = biDistinctAdd
	builtins["distinct_estimate"] = biDistinctEstimate
	builtins["distinct_reset"] = biDistinctReset
}

func biSketchNew(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("core: sketch_new(width, depth) (line %d)", line)
	}
	w, ok1 := AsFloat(args[0])
	d, ok2 := AsFloat(args[1])
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("core: sketch_new needs numeric dimensions (line %d)", line)
	}
	return SketchVal{S: sketch.NewCountMin(int(w), int(d))}, nil
}

func asSketch(v Value, name string, line int) (SketchVal, error) {
	s, ok := v.(SketchVal)
	if !ok {
		return SketchVal{}, fmt.Errorf("core: %s needs a sketch, got %s (line %d)", name, TypeName(v), line)
	}
	return s, nil
}

func biSketchAdd(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("core: sketch_add(sketch, key, delta) (line %d)", line)
	}
	s, err := asSketch(args[0], "sketch_add", line)
	if err != nil {
		return nil, err
	}
	delta, ok := AsFloat(args[2])
	if !ok || delta < 0 {
		return nil, fmt.Errorf("core: sketch_add delta must be a nonnegative number (line %d)", line)
	}
	s.S.Add(keyString(args[1]), uint64(delta))
	return s, nil
}

func biSketchCount(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("core: sketch_count(sketch, key) (line %d)", line)
	}
	s, err := asSketch(args[0], "sketch_count", line)
	if err != nil {
		return nil, err
	}
	return int64(s.S.Count(keyString(args[1]))), nil
}

func biSketchTotal(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("core: sketch_total(sketch) (line %d)", line)
	}
	s, err := asSketch(args[0], "sketch_total", line)
	if err != nil {
		return nil, err
	}
	return int64(s.S.Total()), nil
}

func biSketchReset(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("core: sketch_reset(sketch) (line %d)", line)
	}
	s, err := asSketch(args[0], "sketch_reset", line)
	if err != nil {
		return nil, err
	}
	s.S.Reset()
	return s, nil
}

func biDistinctNew(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("core: distinct_new(slots) (line %d)", line)
	}
	m, ok := AsFloat(args[0])
	if !ok {
		return nil, fmt.Errorf("core: distinct_new needs a numeric size (line %d)", line)
	}
	return DistinctVal{D: sketch.NewDistinct(int(m))}, nil
}

func asDistinct(v Value, name string, line int) (DistinctVal, error) {
	d, ok := v.(DistinctVal)
	if !ok {
		return DistinctVal{}, fmt.Errorf("core: %s needs a distinct counter, got %s (line %d)", name, TypeName(v), line)
	}
	return d, nil
}

func biDistinctAdd(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("core: distinct_add(counter, key) (line %d)", line)
	}
	d, err := asDistinct(args[0], "distinct_add", line)
	if err != nil {
		return nil, err
	}
	d.D.Add(keyString(args[1]))
	return d, nil
}

func biDistinctEstimate(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("core: distinct_estimate(counter) (line %d)", line)
	}
	d, err := asDistinct(args[0], "distinct_estimate", line)
	if err != nil {
		return nil, err
	}
	return d.D.Estimate(), nil
}

func biDistinctReset(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("core: distinct_reset(counter) (line %d)", line)
	}
	d, err := asDistinct(args[0], "distinct_reset", line)
	if err != nil {
		return nil, err
	}
	d.D.Reset()
	return d, nil
}
