package core

import (
	"fmt"

	"farm/internal/almanac"
	"farm/internal/netmodel"
)

// scope is one lexical activation: event-handler bindings and local
// declarations, layered over the current state's variables and the
// machine environment.
type scope struct {
	seed   *Seed
	locals map[string]Value
}

func newScope(s *Seed, bind map[string]Value) *scope {
	locals := bind
	if locals == nil {
		locals = map[string]Value{}
	}
	return &scope{seed: s, locals: locals}
}

// lookup resolves a variable: handler locals, then state locals, then
// machine variables.
func (sc *scope) lookup(name string) (Value, bool) {
	if v, ok := sc.locals[name]; ok {
		return v, true
	}
	if sv, ok := sc.seed.stateVars[sc.seed.state]; ok {
		if v, ok := sv[name]; ok {
			return v, true
		}
	}
	v, ok := sc.seed.env[name]
	return v, ok
}

// assign writes a variable wherever it is declared; handler locals win.
func (sc *scope) assign(name string, v Value) error {
	if _, ok := sc.locals[name]; ok {
		sc.locals[name] = v
		return nil
	}
	if sv, ok := sc.seed.stateVars[sc.seed.state]; ok {
		if _, ok := sv[name]; ok {
			sv[name] = v
			return nil
		}
	}
	if _, ok := sc.seed.env[name]; ok {
		sc.seed.env[name] = v
		return nil
	}
	return fmt.Errorf("core: assignment to undeclared variable %s", name)
}

func (sc *scope) declare(name string, v Value) {
	sc.locals[name] = v
}

// ctrl describes how a statement sequence terminated.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlReturn
	ctrlTransit
)

type execResult struct {
	kind    ctrl
	val     Value
	transit string
}

// maxWhileIterations bounds loops so a buggy machine cannot wedge the
// event loop.
const maxWhileIterations = 1_000_000

func (s *Seed) exec(body []almanac.Stmt, sc *scope) (execResult, error) {
	for _, stmt := range body {
		s.actions++
		switch st := stmt.(type) {
		case *almanac.AssignStmt:
			if err := s.execAssign(st, sc); err != nil {
				return execResult{}, err
			}
		case *almanac.DeclStmt:
			var v Value
			if st.Var.Init != nil {
				var err error
				v, err = s.eval(st.Var.Init, sc)
				if err != nil {
					return execResult{}, err
				}
			} else {
				v = zeroValue(st.Var.Type)
			}
			sc.declare(st.Var.Name, v)
		case *almanac.TransitStmt:
			return execResult{kind: ctrlTransit, transit: st.State}, nil
		case *almanac.ReturnStmt:
			var v Value
			if st.Val != nil {
				var err error
				v, err = s.eval(st.Val, sc)
				if err != nil {
					return execResult{}, err
				}
			}
			return execResult{kind: ctrlReturn, val: v}, nil
		case *almanac.IfStmt:
			cond, err := s.eval(st.Cond, sc)
			if err != nil {
				return execResult{}, err
			}
			b, err := Truthy(cond)
			if err != nil {
				return execResult{}, err
			}
			var res execResult
			if b {
				res, err = s.exec(st.Then, sc)
			} else if len(st.Else) > 0 {
				res, err = s.exec(st.Else, sc)
			}
			if err != nil {
				return execResult{}, err
			}
			if res.kind != ctrlNone {
				return res, nil
			}
		case *almanac.WhileStmt:
			for iter := 0; ; iter++ {
				if iter >= maxWhileIterations {
					return execResult{}, fmt.Errorf("core: while loop exceeded %d iterations (line %d)", maxWhileIterations, st.Line())
				}
				cond, err := s.eval(st.Cond, sc)
				if err != nil {
					return execResult{}, err
				}
				b, err := Truthy(cond)
				if err != nil {
					return execResult{}, err
				}
				if !b {
					break
				}
				res, err := s.exec(st.Body, sc)
				if err != nil {
					return execResult{}, err
				}
				if res.kind != ctrlNone {
					return res, nil
				}
			}
		case *almanac.SendStmt:
			v, err := s.eval(st.Val, sc)
			if err != nil {
				return execResult{}, err
			}
			dest := SendDest{Harvester: st.To.Harvester, Machine: st.To.Machine}
			if st.To.Dst != nil {
				d, err := s.eval(st.To.Dst, sc)
				if err != nil {
					return execResult{}, err
				}
				ds, ok := d.(string)
				if !ok {
					return execResult{}, fmt.Errorf("core: send destination must be a string, got %s", TypeName(d))
				}
				dest.Dst = ds
			}
			s.host.Send(dest, CloneValue(v))
		case *almanac.ExprStmt:
			if _, err := s.eval(st.X, sc); err != nil {
				return execResult{}, err
			}
		default:
			return execResult{}, fmt.Errorf("core: unknown statement %T", stmt)
		}
	}
	return execResult{}, nil
}

func (s *Seed) execAssign(st *almanac.AssignStmt, sc *scope) error {
	val, err := s.eval(st.Val, sc)
	if err != nil {
		return err
	}
	if st.Field != "" {
		// Trigger retuning: y.ival = expr.
		if s.isTrigger(st.Target) {
			if st.Field != "ival" {
				return fmt.Errorf("core: only .ival of trigger %s can be assigned", st.Target)
			}
			ms, ok := AsFloat(val)
			if !ok || ms <= 0 {
				return fmt.Errorf("core: trigger %s.ival must be a positive number, got %s", st.Target, FormatValue(val))
			}
			s.host.SetTriggerInterval(st.Target, ms)
			return nil
		}
		// Struct field assignment.
		cur, ok := sc.lookup(st.Target)
		if !ok {
			return fmt.Errorf("core: assignment to undeclared variable %s", st.Target)
		}
		sv, ok := cur.(StructVal)
		if !ok {
			return fmt.Errorf("core: %s is %s, not a struct", st.Target, TypeName(cur))
		}
		if !sv.Set(st.Field, val) {
			return fmt.Errorf("core: struct %s has no field %s", sv.Type(), st.Field)
		}
		return nil
	}
	// Whole-trigger reassignment: y = Poll { .ival = ..., ... }.
	if s.isTrigger(st.Target) {
		lit, ok := val.(StructVal)
		if !ok {
			return fmt.Errorf("core: trigger %s must be assigned a Poll/Probe value", st.Target)
		}
		ivalV, ok := lit.Get("ival")
		if !ok {
			return fmt.Errorf("core: trigger %s reassignment needs .ival", st.Target)
		}
		ms, ok := AsFloat(ivalV)
		if !ok || ms <= 0 {
			return fmt.Errorf("core: trigger %s.ival must be a positive number", st.Target)
		}
		s.host.SetTriggerInterval(st.Target, ms)
		return nil
	}
	return sc.assign(st.Target, val)
}

func (s *Seed) isTrigger(name string) bool {
	for _, t := range s.machine.Triggers {
		if t.Name == name {
			return true
		}
	}
	return false
}

func (s *Seed) eval(e almanac.Expr, sc *scope) (Value, error) {
	switch ex := e.(type) {
	case *almanac.IntLit:
		return ex.Val, nil
	case *almanac.FloatLit:
		return ex.Val, nil
	case *almanac.StringLit:
		return ex.Val, nil
	case *almanac.BoolLit:
		return ex.Val, nil
	case *almanac.Ident:
		if sc != nil {
			if v, ok := sc.lookup(ex.Name); ok {
				return v, nil
			}
		} else if v, ok := s.env[ex.Name]; ok {
			return v, nil
		}
		return nil, fmt.Errorf("core: undeclared variable %s (line %d)", ex.Name, ex.Line())
	case *almanac.UnaryExpr:
		v, err := s.eval(ex.X, sc)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "not":
			b, err := Truthy(v)
			if err != nil {
				return nil, err
			}
			return !b, nil
		case "-":
			switch x := v.(type) {
			case int64:
				return -x, nil
			case float64:
				return -x, nil
			}
			return nil, fmt.Errorf("core: unary - on %s", TypeName(v))
		}
		return nil, fmt.Errorf("core: unknown unary %q", ex.Op)
	case *almanac.BinaryExpr:
		return s.evalBinary(ex, sc)
	case *almanac.FieldExpr:
		return s.evalField(ex, sc)
	case *almanac.CallExpr:
		return s.evalCall(ex, sc)
	case *almanac.FilterAtom:
		return s.evalFilterAtom(ex, sc)
	case *almanac.StructLit:
		names := make([]string, len(ex.Fields))
		for i, f := range ex.Fields {
			names[i] = f.Name
		}
		sv := StructVal{L: LayoutOf(ex.TypeName, names), V: make([]Value, len(names))}
		for i, f := range ex.Fields {
			v, err := s.eval(f.Val, sc)
			if err != nil {
				return nil, err
			}
			sv.V[i] = v
		}
		return sv, nil
	case *almanac.ListLit:
		out := make(List, 0, len(ex.Elems))
		for _, el := range ex.Elems {
			v, err := s.eval(el, sc)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unknown expression %T", e)
}

// evalFilterAtom builds a filter value from a runtime-evaluated atom
// argument (which, unlike deploy-time placement filters, may contain
// arbitrary expressions — e.g. `port list_get(hitters, i)`).
func (s *Seed) evalFilterAtom(ex *almanac.FilterAtom, sc *scope) (Value, error) {
	if ex.Any {
		if ex.Field != "port" {
			return nil, fmt.Errorf("core: ANY is only valid with port (line %d)", ex.Line())
		}
		return FilterVal{PortAny: true}, nil
	}
	arg, err := s.eval(ex.Arg, sc)
	if err != nil {
		return nil, err
	}
	var c almanac.Const
	switch x := arg.(type) {
	case int64:
		c = almanac.NumConst(float64(x))
	case float64:
		c = almanac.NumConst(x)
	case string:
		c = almanac.StrConst(x)
	default:
		return nil, fmt.Errorf("core: filter field %s: unsupported argument %s (line %d)", ex.Field, TypeName(arg), ex.Line())
	}
	fc, err := almanac.BuildFilterAtom(ex.Field, c)
	if err != nil {
		return nil, fmt.Errorf("core: %w (line %d)", err, ex.Line())
	}
	return FilterVal{F: fc.Filter, PortAny: fc.PortAny}, nil
}

func (s *Seed) evalBinary(ex *almanac.BinaryExpr, sc *scope) (Value, error) {
	// Short-circuit logic.
	if ex.Op == "and" || ex.Op == "or" {
		l, err := s.eval(ex.L, sc)
		if err != nil {
			return nil, err
		}
		// Filter conjunction builds a bigger filter.
		if lf, ok := l.(FilterVal); ok && ex.Op == "and" {
			r, err := s.eval(ex.R, sc)
			if err != nil {
				return nil, err
			}
			rf, ok := r.(FilterVal)
			if !ok {
				return nil, fmt.Errorf("core: filter and %s", TypeName(r))
			}
			lc := almanac.FilterConst(lf.F)
			lc.PortAny = lf.PortAny
			rc := almanac.FilterConst(rf.F)
			rc.PortAny = rf.PortAny
			merged, err := almanac.MergeFilterConsts(lc, rc)
			if err != nil {
				return nil, err
			}
			return FilterVal{F: merged.Filter, PortAny: merged.PortAny}, nil
		}
		lb, err := Truthy(l)
		if err != nil {
			return nil, err
		}
		if ex.Op == "and" && !lb {
			return false, nil
		}
		if ex.Op == "or" && lb {
			return true, nil
		}
		r, err := s.eval(ex.R, sc)
		if err != nil {
			return nil, err
		}
		return Truthy(r)
	}

	l, err := s.eval(ex.L, sc)
	if err != nil {
		return nil, err
	}
	r, err := s.eval(ex.R, sc)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case "==":
		return Equal(l, r), nil
	case "<>":
		return !Equal(l, r), nil
	}
	// String concatenation.
	if ls, ok := l.(string); ok {
		if rs, ok := r.(string); ok && ex.Op == "+" {
			return ls + rs, nil
		}
	}
	// List concatenation.
	if ll, ok := l.(List); ok {
		if rl, ok := r.(List); ok && ex.Op == "+" {
			out := make(List, 0, len(ll)+len(rl))
			out = append(out, ll...)
			return append(out, rl...), nil
		}
	}
	lf, lok := AsFloat(l)
	rf, rok := AsFloat(r)
	if !lok || !rok {
		return nil, fmt.Errorf("core: %s %s %s is not defined (line %d)", TypeName(l), ex.Op, TypeName(r), ex.Line())
	}
	// Arithmetic stays in int64 when both operands are longs; the
	// float semantics (and division-by-zero) come from the shared
	// almanac operator table so EvalConst, the interpreter, and the
	// bytecode VM cannot drift.
	if res, ok, err := almanac.NumArith(ex.Op, lf, rf); ok {
		if err != nil {
			return nil, fmt.Errorf("core: %v (line %d)", err, ex.Line())
		}
		li, lint := l.(int64)
		ri, rint := r.(int64)
		if lint && rint {
			switch ex.Op {
			case "+":
				return li + ri, nil
			case "-":
				return li - ri, nil
			case "*":
				return li * ri, nil
			case "/":
				return li / ri, nil
			}
		}
		return res, nil
	}
	if res, ok := almanac.NumCompare(ex.Op, lf, rf); ok {
		return res, nil
	}
	return nil, fmt.Errorf("core: unknown operator %q", ex.Op)
}

func (s *Seed) evalField(ex *almanac.FieldExpr, sc *scope) (Value, error) {
	x, err := s.eval(ex.X, sc)
	if err != nil {
		return nil, err
	}
	switch v := x.(type) {
	case StructVal:
		if f, ok := v.Get(ex.Field); ok {
			return f, nil
		}
		return nil, fmt.Errorf("core: struct %s has no field %s (line %d)", v.Type(), ex.Field, ex.Line())
	case ResourcesVal:
		return netmodel.Resources(v)[ex.Field], nil
	case MapVal:
		return v[ex.Field], nil
	case PacketVal:
		return packetField(v, ex.Field, ex.Line())
	}
	return nil, fmt.Errorf("core: %s has no fields (line %d)", TypeName(x), ex.Line())
}

func packetField(p PacketVal, field string, line int) (Value, error) {
	switch field {
	case "srcIP":
		return p.SrcIP.String(), nil
	case "dstIP":
		return p.DstIP.String(), nil
	case "srcPort":
		return int64(p.SrcPort), nil
	case "dstPort":
		return int64(p.DstPort), nil
	case "proto":
		return dataplaneProtoName(p), nil
	case "size":
		return int64(p.Size), nil
	case "syn":
		return p.Flags.Has(flagSYN), nil
	case "ack":
		return p.Flags.Has(flagACK), nil
	case "fin":
		return p.Flags.Has(flagFIN), nil
	case "rst":
		return p.Flags.Has(flagRST), nil
	case "dnsResponse":
		return p.App.DNSResponse, nil
	case "dnsQName":
		return p.App.DNSQName, nil
	case "sshAuthFail":
		return p.App.SSHAuthFail, nil
	case "httpPartial":
		return p.App.HTTPPartial, nil
	case "flow":
		return dataplanePacket(p).Flow().String(), nil
	}
	return nil, fmt.Errorf("core: packet has no field %s (line %d)", field, line)
}
