package core

import (
	"sort"
	"strings"
	"sync"
)

// Layout is the interned shape of a struct type: an ordered field list
// plus a name→index map. Two StructVals with the same *Layout hold
// their fields at identical offsets, so compiled code (and the register
// VM's inline field caches) can replace per-record map lookups with an
// indexed load after a single pointer comparison. Layouts are interned
// globally: the same (type, field order) always yields the same
// pointer.
type Layout struct {
	TypeName string
	Names    []string
	index    map[string]int
}

// Index returns the slot of a field name, or -1.
func (l *Layout) Index(name string) int {
	if i, ok := l.index[name]; ok {
		return i
	}
	return -1
}

var (
	layoutMu  sync.Mutex
	layoutTab = map[string]*Layout{}
)

// LayoutOf interns the layout for a struct type with the given field
// order. Field order is significant: `{a, b}` and `{b, a}` are distinct
// layouts (Equal still compares by name, so values with either layout
// compare equal when their fields match).
func LayoutOf(typeName string, names []string) *Layout {
	key := typeName + "\x1f" + strings.Join(names, "\x1f")
	layoutMu.Lock()
	defer layoutMu.Unlock()
	if l, ok := layoutTab[key]; ok {
		return l
	}
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	l := &Layout{TypeName: typeName, Names: append([]string(nil), names...), index: idx}
	layoutTab[key] = l
	return l
}

// StructVal is a struct instance: an interned layout plus a flat field
// slice. The slice is shared by reference (like the old field map), so
// mutation through one handle is visible through every alias.
type StructVal struct {
	L *Layout
	V []Value
}

// Type returns the struct's type name.
func (s StructVal) Type() string {
	if s.L == nil {
		return ""
	}
	return s.L.TypeName
}

// Get looks a field up by name.
func (s StructVal) Get(name string) (Value, bool) {
	if s.L == nil {
		return nil, false
	}
	if i, ok := s.L.index[name]; ok {
		return s.V[i], true
	}
	return nil, false
}

// Set assigns a field by name, reporting whether it exists.
func (s StructVal) Set(name string, v Value) bool {
	if s.L == nil {
		return false
	}
	if i, ok := s.L.index[name]; ok {
		s.V[i] = v
		return true
	}
	return false
}

// StructOf builds a struct value from a field map (sorted field order).
// Convenience for hosts and tests; compiled code resolves layouts at
// link time instead.
func StructOf(typeName string, fields MapVal) StructVal {
	names := make([]string, 0, len(fields))
	for k := range fields {
		names = append(names, k)
	}
	sort.Strings(names)
	l := LayoutOf(typeName, names)
	v := make([]Value, len(names))
	for i, n := range names {
		v[i] = fields[n]
	}
	return StructVal{L: l, V: v}
}

// Pre-interned layouts for the poll records the soil hands to seeds on
// every statistics tick. The constant indices keep the record builders
// map-free on the per-poll hot path.
var (
	portStatsLayout = LayoutOf("PortStats", []string{
		"port", "rxBytes", "txBytes", "rxPkts", "txPkts",
		"dRxBytes", "dTxBytes", "dRxPkts", "dTxPkts",
	})
	ruleStatsLayout = LayoutOf("RuleStats", []string{
		"packets", "bytes", "dPackets", "dBytes",
	})
	ruleLayout = LayoutOf("Rule", []string{"pattern", "act", "priority"})
)

const (
	psPort = iota
	psRxBytes
	psTxBytes
	psRxPkts
	psTxPkts
	psDRxBytes
	psDTxBytes
	psDRxPkts
	psDTxPkts
)
