package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"farm/internal/almanac"
	"farm/internal/dataplane"
)

// The compiled back ends must be observationally identical to the AST
// interpreter: same states, same variables, same emissions, same error
// strings, same action counts. These tests run all three back ends —
// interpreter, stack VM, register VM — side by side over snippets,
// hand-picked corner cases, and long random trigger sequences, and diff
// everything pairwise against the interpreter.

func parityCompile(t *testing.T, src, name string) *almanac.CompiledMachine {
	t.Helper()
	prog, err := almanac.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	cm, err := almanac.CompileMachine(prog, name)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return cm
}

// parityBackends is every execution engine, interpreter (the semantic
// reference) first.
var parityBackends = []Backend{BackendInterp, BackendStack, BackendRegister}

// backendSet holds one runner per back end, deployed from one machine
// with identical externals, index-parallel to parityBackends.
type backendSet struct {
	rs []Runner
	hs []*mockHost
}

func newBackendSet(t *testing.T, cm *almanac.CompiledMachine, ext map[string]Value) *backendSet {
	t.Helper()
	p := &backendSet{
		rs: make([]Runner, len(parityBackends)),
		hs: make([]*mockHost, len(parityBackends)),
	}
	errs := make([]error, len(parityBackends))
	for i, be := range parityBackends {
		p.hs[i] = newMockHost()
		p.rs[i], errs[i] = NewRunner(cm, cloneExternals(ext), p.hs[i], be)
	}
	for i := 1; i < len(errs); i++ {
		if (errs[0] == nil) != (errs[i] == nil) || (errs[0] != nil && errs[0].Error() != errs[i].Error()) {
			t.Fatalf("construction diverged: interp=%v %s=%v", errs[0], parityBackends[i], errs[i])
		}
	}
	if errs[0] != nil {
		return nil
	}
	if _, ok := p.rs[0].(*Seed); !ok {
		t.Fatalf("BackendInterp returned %T", p.rs[0])
	}
	if _, ok := p.rs[1].(*vmSeed); !ok {
		t.Fatalf("BackendStack returned %T (lowering fell back?)", p.rs[1])
	}
	if _, ok := p.rs[2].(*rvmSeed); !ok {
		t.Fatalf("BackendRegister returned %T (lowering fell back?)", p.rs[2])
	}
	return p
}

// do applies one step to every back end and asserts the error outcomes
// are identical, returning the shared error. The callback must build
// fresh argument values per call (use CloneValue for lists/structs) so
// back ends never share mutable state.
func (p *backendSet) do(t *testing.T, ctx string, f func(r Runner) error) error {
	t.Helper()
	errs := make([]error, len(p.rs))
	for i, r := range p.rs {
		errs[i] = f(r)
	}
	for i := 1; i < len(errs); i++ {
		if (errs[0] == nil) != (errs[i] == nil) || (errs[0] != nil && errs[0].Error() != errs[i].Error()) {
			t.Fatalf("%s: error diverged\ninterp: %v\n%s: %v", ctx, errs[0], parityBackends[i], errs[i])
		}
	}
	return errs[0]
}

func cloneExternals(ext map[string]Value) map[string]Value {
	if ext == nil {
		return nil
	}
	out := make(map[string]Value, len(ext))
	for k, v := range ext {
		out[k] = CloneValue(v)
	}
	return out
}

// fingerprint renders a runner's full observable state deterministically.
func fingerprint(r Runner) string {
	snap := r.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "state=%s\n", snap.State)
	for _, k := range sortedKeys(snap.Env) {
		fmt.Fprintf(&b, "env %s=%s\n", k, FormatValue(snap.Env[k]))
	}
	stNames := make([]string, 0, len(snap.StateVars))
	for k := range snap.StateVars {
		stNames = append(stNames, k)
	}
	sort.Strings(stNames)
	for _, st := range stNames {
		for _, k := range sortedKeys(snap.StateVars[st]) {
			fmt.Fprintf(&b, "var %s.%s=%s\n", st, k, FormatValue(snap.StateVars[st][k]))
		}
	}
	return b.String()
}

func sortedKeys(m map[string]Value) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// hostTrace renders every externally visible host interaction.
func hostTrace(h *mockHost) string {
	var b strings.Builder
	for _, m := range h.sent {
		fmt.Fprintf(&b, "send harv=%v machine=%q dst=%q v=%s\n", m.to.Harvester, m.to.Machine, m.to.Dst, FormatValue(m.v))
	}
	ivals := make([]string, 0, len(h.intervals))
	for k, v := range h.intervals {
		ivals = append(ivals, fmt.Sprintf("ival %s=%g", k, v))
	}
	sort.Strings(ivals)
	for _, s := range ivals {
		fmt.Fprintf(&b, "%s\n", s)
	}
	for _, c := range h.execCalls {
		fmt.Fprintf(&b, "exec %s\n", c)
	}
	for _, l := range h.logs {
		fmt.Fprintf(&b, "log %s\n", l)
	}
	return b.String()
}

// diffSet asserts every back end is indistinguishable from the
// interpreter right now.
func diffSet(t *testing.T, p *backendSet, ctx string) {
	t.Helper()
	fp0, tr0 := fingerprint(p.rs[0]), hostTrace(p.hs[0])
	ac0 := p.rs[0].TakeActionCount()
	for i := 1; i < len(p.rs); i++ {
		name := parityBackends[i].String()
		if a, b := p.rs[0].State(), p.rs[i].State(); a != b {
			t.Fatalf("%s: state interp=%s %s=%s", ctx, a, name, b)
		}
		if b := fingerprint(p.rs[i]); fp0 != b {
			t.Fatalf("%s: fingerprint diverged\n--- interp ---\n%s--- %s ---\n%s", ctx, fp0, name, b)
		}
		if b := hostTrace(p.hs[i]); tr0 != b {
			t.Fatalf("%s: host trace diverged\n--- interp ---\n%s--- %s ---\n%s", ctx, tr0, name, b)
		}
		if b := p.rs[i].TakeActionCount(); ac0 != b {
			t.Fatalf("%s: action count interp=%d %s=%d", ctx, ac0, name, b)
		}
	}
}

func TestVMSnippetParity(t *testing.T) {
	cases := []struct {
		name  string
		decls string
		body  string
	}{
		{"integer arithmetic", "long a; long b;", "a = 7 * 6 - 2; b = a / 4;"},
		{"float promotion", "float f;", "f = 3 / 2.0;"},
		{"division by zero", "long a;", "a = 1 / 0;"},
		{"float division by zero", "float a;", "a = 1.0 / 0;"},
		{"string concat", "string s; bool eq;", `s = "a" + "b"; eq = s == "ab";`},
		{"list concat", "list l; long n; bool has;", "l = [1, 2] + [3]; n = list_len(l); has = list_contains(l, 3);"},
		{"map ops", "map m; long v; long missing; long sz;", `m = map_set(m, "k", 5); v = map_get(m, "k", 0); missing = map_get(m, "nope", 42); sz = map_len(m);`},
		{"while loop", "long sum; long i;", "i = 1; while (i <= 10) { sum = sum + i; i = i + 1; }"},
		{"if else chains", "long x; string cls;", `x = 7; if (x > 10) then { cls = "big"; } else if (x > 5) then { cls = "mid"; } else { cls = "small"; }`},
		{"short circuit", "bool a; bool b;", "a = false and (1 / 0 == 1); b = true or (1 / 0 == 1);"},
		{"not and comparisons", "bool a; bool b; bool c;", "a = not (1 > 2); b = 3 <> 4; c = 2 <= 2;"},
		{"mixed compare", "bool a; bool b;", "a = 1 < 1.5; b = 2.0 >= 2;"},
		{"math builtins", "long mn; long mx; long ab; long fl;", "mn = min(3, 1, 2); mx = max(3, 1, 2); ab = abs(0 - 9); fl = floor(3.9);"},
		{"float min max", "float mn; float mx;", "mn = min(3, 1.5); mx = max(0 - 2.5, 1);"},
		{"log builtins", "float a; float b;", "a = log(8.0); b = log2(8);"},
		{"log of nonpositive", "float a;", "a = log(0);"},
		{"unary minus", "long a; float b;", "a = -5; b = -(2.5);"},
		{"unary minus error", "string s; long a;", `s = "x"; a = -s;`},
		{"condition type error", "long a;", `if ("nope") then { a = 1; }`},
		{"add type error", "long a;", `a = 1 + "x";`},
		{"struct literal and field assign", "long out;", "Pair p = Pair { .a = 1, .b = 2 }; p.a = 10; out = p.a + p.b;"},
		{"struct field missing", "long out;", "Pair p = Pair { .a = 1, .b = 2 }; out = p.c;"},
		{"field assign non-struct", "long x;", "x = 1; x.a = 2;"},
		{"filter values", "filter f; bool removed;", `f = dstPort 80 and proto "tcp"; addTCAMRule(f, drop(), 5); removed = removeTCAMRule(f);`},
		{"filter and non-filter", "filter f;", `f = dstPort 80 and 1;`},
		{"sketch roundtrip", "list sk; long c; long tot;", `sk = sketch_new(64, 3); sketch_add(sk, "k", 5); sketch_add(sk, "k", 2); c = sketch_count(sk, "k"); tot = sketch_total(sk);`},
		{"distinct estimate", "list d; float est;", `d = distinct_new(1024); distinct_add(d, "a"); distinct_add(d, "b"); distinct_add(d, "a"); est = distinct_estimate(d);`},
		{"undeclared variable", "", "nosuch = 1;"},
		{"undeclared read", "long a;", "a = nosuch;"},
		{"unknown function", "long a;", "a = frobnicate(1);"},
		{"function arity", "long a;", "a = f2(1);"},
		{"list_get out of range", "long a;", "a = list_get([1], 5);"},
		{"list_get negative", "long a;", "a = list_get([1], 0 - 1);"},
		{"str rendering", "string s;", "s = str(42);"},
		{"str passthrough", "string s;", `s = str("x");`},
		{"now builtin", "float n;", "n = now();"},
		{"list append and clear", "list l; long n;", "l = list_append(l, 9); l = list_append(l, 8); n = list_len(l); l = list_clear(l);"},
		{"map keys", "map m; list ks;", `m = map_set(m, "b", 1); m = map_set(m, "a", 2); ks = map_keys(m);`},
		{"map has and del", "map m; bool h1; bool h2;", `m = map_set(m, "k", 1); h1 = map_has(m, "k"); m = map_del(m, "k"); h2 = map_has(m, "k");`},
		{"nested function calls", "long out;", "out = f2(f2(1, 2), f2(3, 4));"},
		{"function return nothing", "long out;", "out = 5; noret(1);"},
		{"conditional decl then use", "long out;", "if (1 > 2) then { long x = 5; } out = 1;"},
		{"conditional decl undeclared read", "long out;", "if (1 > 2) then { long x = 5; } out = x;"},
		{"decl shadows machine var", "long g; long out;", "g = 1; long g = 7; out = g;"},
		{"conditional shadow falls back", "long g; long out;", "g = 3; if (1 > 2) then { long g = 7; g = 9; } out = g;"},
		{"transit to other", "long a;", "a = 1; transit other;"},
		{"transit inside loop", "long i;", "while (i < 5) { i = i + 1; if (i == 3) then { transit other; } }"},
		{"send to harvester", "long a;", "a = 4; send a to harvester;"},
		{"send list clones", "list l;", "l = [1]; send l to harvester; l = list_append(l, 2);"},
		{"trigger retune", "", "p.ival = 50;"},
		{"trigger retune bad", "", "p.ival = 0 - 5;"},
		{"trigger retune non-number", "", `p.ival = "fast";`},
		{"trigger other field", "", "p.what = 1;"},
		{"res fields", "float c;", "c = res().vCPU + res().RAM;"},
		{"exec hook", "string r;", `r = str(exec("cmd", 1));`},
		{"log hook", "", `log_msg("hello " + str(7));`},
		{"empty list zero", "list l; bool e;", "e = is_list_empty(l);"},
		{"map zero fresh", "map m; long n;", `m = map_set(m, "x", 1); n = map_len(m);`},
		{"eq across types", "bool a; bool b; bool c;", `a = 1 == 1.0; b = 1 == "1"; c = [1] == [1];`},
		{"nil compare", "bool a;", "a = exec(\"x\", 0) == exec(\"y\", 0);"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			src := `
struct Pair { long a; long b; }
function f2(long a, long b) { return a * 10 + b; }
function noret(long a) { a = a + 1; }
machine T {
  place all;
  poll p = Poll { .ival = 10, .what = port ANY };
  ` + c.decls + `
  state s {
    when (enter) do {
      ` + c.body + `
    }
  }
  state other {
    when (enter) do { }
  }
}
`
			cm := parityCompile(t, src, "T")
			p := newBackendSet(t, cm, nil)
			p.do(t, "start", func(r Runner) error { return r.Start() })
			diffSet(t, p, "after start")
		})
	}
}

// propertySource is a machine exercising state vars, transit cascades,
// exit handlers, functions, maps, lists, and recv dispatch.
const propertySource = `
struct Rec { string key; long n; }
function clamp(long x, long lo, long hi) {
  if (x < lo) then { return lo; }
  if (x > hi) then { return hi; }
  return x;
}
machine P {
  place all;
  poll tick = Poll { .ival = 10, .what = port ANY };
  poll tock = Poll { .ival = 20, .what = port ANY };
  long total;
  map counts;
  list seen;
  string last;

  state idle {
    when (tick as v) do {
      total = total + clamp(v, 0 - 5, 5);
      last = str(v);
      if (total > 40) then { transit busy; }
    }
    when (tock as v) do {
      counts = map_set(counts, str(v), map_get(counts, str(v), 0) + 1);
      if (map_len(counts) > 6) then { transit busy; }
    }
    when (recv long x from harvester) do { total = total - x; }
    when (recv Rec r from harvester) do {
      counts = map_set(counts, r.key, r.n);
    }
  }
  state busy {
    long rounds;
    when (enter) do { send total to harvester; }
    when (tick as v) do {
      rounds = rounds + 1;
      seen = seen + [v];
      if (rounds >= 3) then {
        rounds = 0;
        transit idle;
      }
    }
    when (realloc) do { tick.ival = 15; }
    when (exit) do {
      total = 0;
      counts = map_new();
      seen = list_clear(seen);
    }
  }
}
`

// TestVMRandomProperty drives all three back ends through thousands of
// random steps and requires byte-identical observable behaviour
// throughout, including periodic snapshot rotation across back ends.
func TestVMRandomProperty(t *testing.T) {
	cm := parityCompile(t, propertySource, "P")
	rng := rand.New(rand.NewSource(42))
	p := newBackendSet(t, cm, nil)
	p.do(t, "start", func(r Runner) error { return r.Start() })
	const steps = 12000
	harv := MsgSource{Harvester: true}
	for i := 0; i < steps; i++ {
		ctx := fmt.Sprintf("step %d", i)
		switch k := rng.Intn(10); k {
		case 0, 1, 2, 3:
			v := int64(rng.Intn(21) - 10)
			p.do(t, ctx, func(r Runner) error { return r.HandleTrigger("tick", v) })
		case 4, 5:
			v := int64(rng.Intn(9))
			p.do(t, ctx, func(r Runner) error { return r.HandleTrigger("tock", v) })
		case 6:
			v := int64(rng.Intn(30))
			p.do(t, ctx, func(r Runner) error { return r.HandleRecv(harv, v) })
		case 7:
			key, n := fmt.Sprintf("k%d", rng.Intn(5)), int64(rng.Intn(100))
			p.do(t, ctx, func(r Runner) error {
				return r.HandleRecv(harv, StructOf("Rec", MapVal{"key": key, "n": n}))
			})
		case 8:
			p.do(t, ctx, func(r Runner) error { return r.HandleRealloc() })
		case 9:
			// Unknown trigger / unmatched recv are dropped by all.
			p.do(t, ctx, func(r Runner) error { return r.HandleTrigger("nosuch", int64(1)) })
		}
		if i%251 == 0 {
			diffSet(t, p, ctx)
		}
		if i%997 == 0 {
			// Cross-restore rotation: snapshot every back end, then
			// restore each snapshot into the *next* back end. All must
			// remain identical afterwards.
			snaps := make([]Snapshot, len(p.rs))
			for j, r := range p.rs {
				snaps[j] = r.Snapshot()
			}
			for j, r := range p.rs {
				src := (j + 1) % len(p.rs)
				if err := r.Restore(snaps[src]); err != nil {
					t.Fatalf("%s: restore %s snapshot into %s: %v",
						ctx, parityBackends[src], parityBackends[j], err)
				}
			}
			diffSet(t, p, ctx+" after cross-restore")
		}
	}
	diffSet(t, p, "final")
}

// TestVMSnapshotCrossBackend covers the failover path: run on one back
// end, snapshot, restore into every back end, and require identical
// subsequent behaviour (all source/destination combinations).
func TestVMSnapshotCrossBackend(t *testing.T) {
	cm := parityCompile(t, propertySource, "P")
	drive := func(r Runner, rng *rand.Rand, n int) {
		t.Helper()
		harv := MsgSource{Harvester: true}
		for i := 0; i < n; i++ {
			var err error
			switch rng.Intn(4) {
			case 0, 1:
				err = r.HandleTrigger("tick", int64(rng.Intn(21)-10))
			case 2:
				err = r.HandleTrigger("tock", int64(rng.Intn(9)))
			case 3:
				err = r.HandleRecv(harv, int64(rng.Intn(30)))
			}
			if err != nil {
				t.Fatalf("drive step %d: %v", i, err)
			}
		}
	}
	for _, from := range parityBackends {
		from := from
		t.Run("from-"+from.String(), func(t *testing.T) {
			src, err := NewRunner(cm, nil, newMockHost(), from)
			if err != nil {
				t.Fatal(err)
			}
			if err := src.Start(); err != nil {
				t.Fatal(err)
			}
			drive(src, rand.New(rand.NewSource(7)), 500)
			snap := src.Snapshot()

			// Restore the snapshot into a fresh runner of every back
			// end; drive them all identically and compare.
			hosts := make([]*mockHost, len(parityBackends))
			runners := make([]Runner, len(parityBackends))
			for i, be := range parityBackends {
				hosts[i] = newMockHost()
				runners[i], err = NewRunner(cm, nil, hosts[i], be)
				if err != nil {
					t.Fatal(err)
				}
				if err := runners[i].Restore(snap); err != nil {
					t.Fatal(err)
				}
			}
			fp0 := fingerprint(runners[0])
			for i := 1; i < len(runners); i++ {
				if b := fingerprint(runners[i]); fp0 != b {
					t.Fatalf("restored fingerprints differ\n--- interp ---\n%s--- %s ---\n%s", fp0, parityBackends[i], b)
				}
			}
			for _, r := range runners {
				drive(r, rand.New(rand.NewSource(11)), 500)
			}
			fp0, tr0 := fingerprint(runners[0]), hostTrace(hosts[0])
			for i := 1; i < len(runners); i++ {
				if b := fingerprint(runners[i]); fp0 != b {
					t.Fatalf("post-restore behaviour diverged\n--- interp ---\n%s--- %s ---\n%s", fp0, parityBackends[i], b)
				}
				if b := hostTrace(hosts[i]); tr0 != b {
					t.Fatalf("post-restore host traces diverged\n--- interp ---\n%s--- %s ---\n%s", tr0, parityBackends[i], b)
				}
			}
		})
	}
}

// TestVMRestoreErrors pins the error strings of invalid snapshots on
// every back end.
func TestVMRestoreErrors(t *testing.T) {
	cm := parityCompile(t, propertySource, "P")
	for _, snap := range []Snapshot{
		{Machine: "Q", State: "idle"},
		{Machine: "P", State: "nope"},
		{Machine: "P", State: "idle", Env: map[string]Value{"ghost": int64(1)}},
		{Machine: "P", State: "idle", StateVars: map[string]map[string]Value{"nope": {}}},
	} {
		snap := snap
		p := newBackendSet(t, cm, nil)
		if p.do(t, fmt.Sprintf("restore %+v", snap), func(r Runner) error { return r.Restore(snap) }) == nil {
			t.Fatalf("restore %+v: expected error", snap)
		}
	}
}

// TestVMHHParity runs the paper's heavy-hitter seed on all back ends
// with real PortStats batches, TCAM writes, and harvester traffic.
func TestVMHHParity(t *testing.T) {
	cm := compileSrc(t, hhRunnableSource, "HH")
	ext := map[string]Value{"threshold": int64(1000)}
	p := newBackendSet(t, cm, ext)
	p.do(t, "start", func(r Runner) error { return r.Start() })
	rng := rand.New(rand.NewSource(3))
	harv := MsgSource{Harvester: true}
	for i := 0; i < 400; i++ {
		ctx := fmt.Sprintf("step %d", i)
		switch rng.Intn(6) {
		case 0, 1, 2, 3:
			stats := make(List, 0, 8)
			for pt := 0; pt < 8; pt++ {
				stats = append(stats, StructOf("PortStats", MapVal{
					"port":     int64(pt),
					"dTxBytes": float64(rng.Intn(3000)),
				}))
			}
			p.do(t, ctx, func(r Runner) error {
				return r.HandleTrigger("pollStats", CloneValue(stats))
			})
		case 4:
			th := int64(rng.Intn(2500))
			p.do(t, ctx, func(r Runner) error { return r.HandleRecv(harv, th) })
		case 5:
			p.do(t, ctx, func(r Runner) error { return r.HandleRecv(harv, ActionVal(dataplane.ActDrop)) })
		}
		if i%37 == 0 {
			diffSet(t, p, ctx)
		}
	}
	diffSet(t, p, "final")
	if len(p.hs[0].sent) == 0 {
		t.Fatal("test never exercised the send path")
	}
}

// TestConstOpsCrossCheck drives the shared operator table through all
// consumers — EvalConst, the interpreter, and both VMs — over an
// operator/operand matrix and requires agreement.
func TestConstOpsCrossCheck(t *testing.T) {
	type operand struct {
		lit   string  // DSL literal
		num   float64 // numeric value
		isInt bool    // a long at runtime (floats at deployment time)
	}
	operands := []operand{
		{"0", 0, true}, {"1", 1, true}, {"7", 7, true}, {"0 - 3", -3, true},
		{"2.5", 2.5, false}, {"0.0", 0, false},
	}
	ops := []string{"+", "-", "*", "/", "<", "<=", ">", ">=", "==", "<>"}
	for _, op := range ops {
		for _, l := range operands {
			for _, r := range operands {
				expr := fmt.Sprintf("(%s) %s (%s)", l.lit, op, r.lit)
				// Reference: the shared table via EvalConst.
				prog, err := almanac.Parse(fmt.Sprintf(`
machine C {
  place all;
  float x = %s;
  state s { when (enter) do { } }
}`, expr))
				var cref almanac.Const
				var cerr error
				if err == nil {
					cref, cerr = almanac.EvalConst(prog.Machines[0].Vars[0].Init, nil)
				} else {
					t.Fatalf("parse %s: %v", expr, err)
				}

				// Runtime: every back end computing the same expression
				// into a dynamically typed variable.
				src := fmt.Sprintf(`
machine C {
  place all;
  state s {
    when (enter) do {
      map m;
      m = map_set(m, "r", %s);
      send map_get(m, "r", 0) to harvester;
    }
  }
}`, expr)
				cm := parityCompile(t, src, "C")
				p := newBackendSet(t, cm, nil)
				erri := p.do(t, expr, func(r Runner) error { return r.Start() })
				diffSet(t, p, expr)

				if cerr != nil || erri != nil {
					// Division by zero: every consumer must refuse.
					if strings.Contains(expr, "/") {
						if cerr == nil || erri == nil {
							t.Fatalf("%s: const err=%v runtime err=%v", expr, cerr, erri)
						}
						continue
					}
					t.Fatalf("%s: unexpected errors const=%v runtime=%v", expr, cerr, erri)
				}
				got := FormatValue(p.hs[0].sent[0].v)
				var want string
				switch cref.Kind {
				case almanac.ConstNum:
					want = FormatValue(cref.Num)
					// The runtime keeps int64 where both operands are
					// longs (integer division included); deployment-time
					// constants are float-only. Compare numerically with
					// that documented difference applied.
					expect := cref.Num
					if op == "/" && l.isInt && r.isInt {
						expect = float64(int64(l.num) / int64(r.num))
					}
					if f, ok := AsFloat(p.hs[0].sent[0].v); ok {
						if f != expect {
							t.Fatalf("%s: runtime %v, const %v (expect %v)", expr, f, cref.Num, expect)
						}
						continue
					}
				case almanac.ConstBool:
					want = FormatValue(cref.Bool)
				default:
					t.Fatalf("%s: unexpected const kind %v", expr, cref.Kind)
				}
				if got != want {
					t.Fatalf("%s: runtime %s, const %s", expr, got, want)
				}
			}
		}
	}
}
