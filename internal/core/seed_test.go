package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"farm/internal/almanac"
	"farm/internal/dataplane"
	"farm/internal/netmodel"
)

// mockHost records every interaction a seed makes with its environment.
type mockHost struct {
	now       time.Duration
	resources netmodel.Resources
	tcam      *dataplane.TCAM
	sent      []sentMsg
	intervals map[string]float64
	execCalls []string
	execFn    func(cmd string, arg Value) (Value, error)
	logs      []string
}

type sentMsg struct {
	to SendDest
	v  Value
}

func newMockHost() *mockHost {
	return &mockHost{
		resources: netmodel.Resources{netmodel.ResVCPU: 2, netmodel.ResRAM: 1024, netmodel.ResPCIe: 1},
		tcam:      dataplane.NewTCAM(64),
		intervals: map[string]float64{},
	}
}

func (h *mockHost) Now() time.Duration            { return h.now }
func (h *mockHost) Resources() netmodel.Resources { return h.resources }
func (h *mockHost) AddTCAMRule(r dataplane.Rule) error {
	return h.tcam.AddRule(r)
}
func (h *mockHost) RemoveTCAMRule(f dataplane.Filter) bool { return h.tcam.RemoveRule(f) }
func (h *mockHost) GetTCAMRule(f dataplane.Filter) (dataplane.Rule, bool) {
	return h.tcam.GetRule(f)
}
func (h *mockHost) Send(to SendDest, v Value) { h.sent = append(h.sent, sentMsg{to, v}) }
func (h *mockHost) SetTriggerInterval(trigger string, ms float64) {
	h.intervals[trigger] = ms
}
func (h *mockHost) Exec(cmd string, arg Value) (Value, error) {
	h.execCalls = append(h.execCalls, cmd)
	if h.execFn != nil {
		return h.execFn(cmd, arg)
	}
	return nil, nil
}
func (h *mockHost) Log(format string, args ...any) {
	h.logs = append(h.logs, fmt.Sprintf(format, args...))
}

// hhRunnableSource is List. 2 with setHitterRules spelled out using the
// runtime library, so it is fully executable.
const hhRunnableSource = `
function setHitterRules(list hs, action act) {
  long i = 0;
  while (i < list_len(hs)) {
    addTCAMRule(port list_get(hs, i), act, 10);
    i = i + 1;
  }
}
machine HH {
  place all;
  poll pollStats = Poll {
    .ival = 10 / res().PCIe, .what = port ANY
  };
  external long threshold;
  action hitterAction = setQoS();
  list hitters;

  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 100) then {
        return min(res.vCPU, res.PCIe);
      }
    }
    when (pollStats as stats) do {
      hitters = getHH(stats, threshold);
      if (not is_list_empty(hitters)) then {
        transit HHdetected;
      }
    }
  }
  state HHdetected {
    util (res) { return 100; }
    when (enter) do {
      send hitters to harvester;
      setHitterRules(hitters, hitterAction);
      transit observe;
    }
  }
  when (recv long newTh from harvester)
  do { threshold = newTh; }
  when (recv action hitAct from harvester)
  do { hitterAction = hitAct; }
}
`

func compileSrc(t *testing.T, src, name string) *almanac.CompiledMachine {
	t.Helper()
	prog, err := almanac.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := almanac.CompileMachine(prog, name)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func newHHSeed(t *testing.T, h Host) *Seed {
	t.Helper()
	cm := compileSrc(t, hhRunnableSource, "HH")
	s, err := NewSeed(cm, map[string]Value{"threshold": int64(1000)}, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func statsList(portBytes map[int]int64) List {
	var out List
	for port, d := range portBytes {
		out = append(out, StructOf("PortStats", MapVal{
			"port": int64(port), "dTxBytes": d, "txBytes": d,
			"dRxBytes": int64(0), "rxBytes": int64(0),
			"dTxPkts": int64(1), "txPkts": int64(1),
			"dRxPkts": int64(0), "rxPkts": int64(0),
		}))
	}
	return out
}

func TestHHSeedLifecycle(t *testing.T) {
	h := newMockHost()
	s := newHHSeed(t, h)
	if s.State() != "observe" {
		t.Fatalf("state = %s", s.State())
	}

	// Below threshold: stays observing.
	if err := s.HandleTrigger("pollStats", statsList(map[int]int64{1: 500, 2: 10})); err != nil {
		t.Fatal(err)
	}
	if s.State() != "observe" || len(h.sent) != 0 {
		t.Fatalf("state=%s sent=%d", s.State(), len(h.sent))
	}

	// Above threshold on port 2: transit to HHdetected, whose enter
	// handler reports to the harvester, installs rules, and returns.
	if err := s.HandleTrigger("pollStats", statsList(map[int]int64{2: 5000})); err != nil {
		t.Fatal(err)
	}
	if s.State() != "observe" {
		t.Fatalf("state = %s, want observe (round trip through HHdetected)", s.State())
	}
	if len(h.sent) != 1 || !h.sent[0].to.Harvester {
		t.Fatalf("sent = %+v", h.sent)
	}
	hit, ok := h.sent[0].v.(List)
	if !ok || len(hit) != 1 || hit[0] != int64(2) {
		t.Fatalf("hitters = %s", FormatValue(h.sent[0].v))
	}
	// Local reaction: a TCAM rule for port 2 with QoS action.
	r, ok := h.tcam.GetRule(dataplane.Filter{InPort: 2})
	if !ok || r.Action != dataplane.ActSetQoS || r.Priority != 10 {
		t.Fatalf("rule = %+v, %v", r, ok)
	}
	if r.Note != "HH" {
		t.Fatalf("rule note = %q", r.Note)
	}
}

func TestHHSeedHarvesterReconfigures(t *testing.T) {
	h := newMockHost()
	s := newHHSeed(t, h)
	// Harvester lowers the threshold.
	if err := s.HandleRecv(MsgSource{Harvester: true}, int64(100)); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Var("threshold"); v != int64(100) {
		t.Fatalf("threshold = %v", v)
	}
	// Harvester changes the action to drop.
	if err := s.HandleRecv(MsgSource{Harvester: true}, ActionVal(dataplane.ActDrop)); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleTrigger("pollStats", statsList(map[int]int64{3: 200})); err != nil {
		t.Fatal(err)
	}
	r, ok := h.tcam.GetRule(dataplane.Filter{InPort: 3})
	if !ok || r.Action != dataplane.ActDrop {
		t.Fatalf("rule = %+v, %v (threshold/action update not applied)", r, ok)
	}
}

func TestRecvPatternMatching(t *testing.T) {
	h := newMockHost()
	s := newHHSeed(t, h)
	// A string message matches neither recv pattern: dropped silently.
	if err := s.HandleRecv(MsgSource{Harvester: true}, "hello"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Var("threshold"); v != int64(1000) {
		t.Fatalf("threshold changed to %v by unmatched message", v)
	}
}

func TestExternalValidation(t *testing.T) {
	cm := compileSrc(t, hhRunnableSource, "HH")
	h := newMockHost()
	if _, err := NewSeed(cm, nil, h); err == nil || !strings.Contains(err.Error(), "not bound") {
		t.Fatalf("err = %v, want unbound-external error", err)
	}
	if _, err := NewSeed(cm, map[string]Value{"threshold": int64(1), "typo": int64(2)}, h); err == nil || !strings.Contains(err.Error(), "unknown external") {
		t.Fatalf("err = %v, want unknown-external error", err)
	}
}

func TestTriggerIgnoredInWrongState(t *testing.T) {
	src := `
machine M {
  place all;
  poll p = Poll { .ival = 1, .what = port ANY };
  long count;
  state a {
    when (p as x) do { count = count + 1; transit b; }
  }
  state b {
    when (enter) do { }
  }
}
`
	h := newMockHost()
	cm := compileSrc(t, src, "M")
	s, err := NewSeed(cm, nil, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	_ = s.HandleTrigger("p", List{})
	if s.State() != "b" {
		t.Fatalf("state = %s", s.State())
	}
	// In state b there is no handler for p: the firing is ignored.
	if err := s.HandleTrigger("p", List{}); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Var("count"); v != int64(1) {
		t.Fatalf("count = %v", v)
	}
}

func TestEnterExitOrder(t *testing.T) {
	src := `
machine M {
  place all;
  list trace;
  state a {
    when (enter) do { trace = list_append(trace, "enter-a"); }
    when (exit) do { trace = list_append(trace, "exit-a"); }
    when (recv long v from harvester) do { transit b; }
  }
  state b {
    when (enter) do { trace = list_append(trace, "enter-b"); }
  }
}
`
	h := newMockHost()
	s, err := NewSeed(compileSrc(t, src, "M"), nil, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleRecv(MsgSource{Harvester: true}, int64(1)); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Var("trace")
	got := FormatValue(v)
	want := `["enter-a", "exit-a", "enter-b"]`
	if got != want {
		t.Fatalf("trace = %s, want %s", got, want)
	}
}

func TestTransitLoopBounded(t *testing.T) {
	src := `
machine M {
  place all;
  state a { when (enter) do { transit b; } }
  state b { when (enter) do { transit a; } }
}
`
	h := newMockHost()
	s, err := NewSeed(compileSrc(t, src, "M"), nil, h)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Start()
	if err == nil || !strings.Contains(err.Error(), "transition chain") {
		t.Fatalf("err = %v, want bounded-transit error", err)
	}
}

func TestWhileLoopBounded(t *testing.T) {
	src := `
machine M {
  place all;
  state a { when (enter) do { while (true) { } } }
}
`
	h := newMockHost()
	s, err := NewSeed(compileSrc(t, src, "M"), nil, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil || !strings.Contains(err.Error(), "iterations") {
		t.Fatalf("err = %v, want bounded-loop error", err)
	}
}

func TestTriggerRetuning(t *testing.T) {
	src := `
machine M {
  place all;
  poll p = Poll { .ival = 10, .what = port ANY };
  state a {
    when (recv long v from harvester) do { p.ival = v; }
    when (recv float f from harvester) do { p = Poll { .ival = f, .what = port ANY }; }
  }
}
`
	h := newMockHost()
	s, err := NewSeed(compileSrc(t, src, "M"), nil, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleRecv(MsgSource{Harvester: true}, int64(50)); err != nil {
		t.Fatal(err)
	}
	if h.intervals["p"] != 50 {
		t.Fatalf("interval = %g, want 50", h.intervals["p"])
	}
	if err := s.HandleRecv(MsgSource{Harvester: true}, 2.5); err != nil {
		t.Fatal(err)
	}
	if h.intervals["p"] != 2.5 {
		t.Fatalf("interval = %g, want 2.5", h.intervals["p"])
	}
}

func TestSnapshotRestore(t *testing.T) {
	h := newMockHost()
	s := newHHSeed(t, h)
	// Mutate state: new threshold, detected hitters.
	_ = s.HandleRecv(MsgSource{Harvester: true}, int64(42))
	_ = s.HandleTrigger("pollStats", statsList(map[int]int64{7: 99999}))
	snap := s.Snapshot()

	// A fresh seed on another "switch" restores and continues.
	h2 := newMockHost()
	cm := compileSrc(t, hhRunnableSource, "HH")
	s2, err := NewSeed(cm, map[string]Value{"threshold": int64(1000)}, h2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if v, _ := s2.Var("threshold"); v != int64(42) {
		t.Fatalf("threshold = %v after restore", v)
	}
	if s2.State() != s.State() {
		t.Fatalf("state = %s vs %s", s2.State(), s.State())
	}
	// Snapshot must be a deep copy: mutating the restored seed must not
	// affect the snapshot or the original.
	_ = s2.HandleRecv(MsgSource{Harvester: true}, int64(7))
	if v, _ := s.Var("threshold"); v != int64(42) {
		t.Fatalf("original mutated: %v", v)
	}
}

func TestSnapshotRestoreWrongMachine(t *testing.T) {
	h := newMockHost()
	s := newHHSeed(t, h)
	snap := s.Snapshot()
	snap.Machine = "Other"
	if err := s.Restore(snap); err == nil {
		t.Fatal("expected machine-mismatch error")
	}
}

func TestExecHook(t *testing.T) {
	src := `
machine ML {
  place all;
  float prediction;
  state run {
    when (recv long v from harvester) do {
      prediction = exec("svr_predict", v);
    }
  }
}
`
	h := newMockHost()
	h.execFn = func(cmd string, arg Value) (Value, error) {
		if cmd != "svr_predict" {
			t.Fatalf("cmd = %s", cmd)
		}
		f, _ := AsFloat(arg)
		return f * 2, nil
	}
	s, err := NewSeed(compileSrc(t, src, "ML"), nil, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleRecv(MsgSource{Harvester: true}, int64(21)); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Var("prediction"); v != float64(42) {
		t.Fatalf("prediction = %v", v)
	}
	if len(h.execCalls) != 1 {
		t.Fatalf("exec calls = %v", h.execCalls)
	}
}

func TestActionCountAccounting(t *testing.T) {
	h := newMockHost()
	s := newHHSeed(t, h)
	s.TakeActionCount() // reset whatever Start consumed
	_ = s.HandleTrigger("pollStats", statsList(map[int]int64{1: 1}))
	n := s.TakeActionCount()
	if n == 0 {
		t.Fatal("no actions counted")
	}
	if s.TakeActionCount() != 0 {
		t.Fatal("counter not reset")
	}
}

func TestSeedToSeedSend(t *testing.T) {
	src := `
machine A {
  place all;
  state s {
    when (recv long v from harvester) do {
      send v to B @ "leaf1";
      send v to B;
    }
  }
}
machine B { place all; state s { when (enter) do {} } }
`
	h := newMockHost()
	s, err := NewSeed(compileSrc(t, src, "A"), nil, h)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Start()
	_ = s.HandleRecv(MsgSource{Harvester: true}, int64(5))
	if len(h.sent) != 2 {
		t.Fatalf("sent = %d", len(h.sent))
	}
	if h.sent[0].to.Machine != "B" || h.sent[0].to.Dst != "leaf1" {
		t.Fatalf("sent[0] = %+v", h.sent[0].to)
	}
	if h.sent[1].to.Dst != "" {
		t.Fatalf("sent[1] should be broadcast, got %+v", h.sent[1].to)
	}
}
