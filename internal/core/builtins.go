package core

import (
	"fmt"
	"math"
	"sort"

	"farm/internal/almanac"
	"farm/internal/dataplane"
)

// Aliases keeping eval.go terse.
const (
	flagSYN = dataplane.FlagSYN
	flagACK = dataplane.FlagACK
	flagFIN = dataplane.FlagFIN
	flagRST = dataplane.FlagRST
)

func dataplanePacket(p PacketVal) dataplane.Packet { return dataplane.Packet(p) }

func dataplaneProtoName(p PacketVal) string { return p.Proto.String() }

// evalCall dispatches user functions and the runtime library
// (List. 1 of the paper plus list/map/math helpers the Tab. I tasks use).
func (s *Seed) evalCall(ex *almanac.CallExpr, sc *scope) (Value, error) {
	// User-defined auxiliary functions shadow nothing: builtins win to
	// keep the runtime library stable.
	if fn, ok := builtins[ex.Name]; ok {
		args := make([]Value, len(ex.Args))
		for i, a := range ex.Args {
			v, err := s.eval(a, sc)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return fn(s, args, ex.Line())
	}
	if fd, ok := s.funcs[ex.Name]; ok {
		if len(ex.Args) != len(fd.Params) {
			return nil, fmt.Errorf("core: %s expects %d arguments, got %d (line %d)", ex.Name, len(fd.Params), len(ex.Args), ex.Line())
		}
		bind := map[string]Value{}
		for i, p := range fd.Params {
			v, err := s.eval(ex.Args[i], sc)
			if err != nil {
				return nil, err
			}
			bind[p.Name] = v
		}
		res, err := s.exec(fd.Body, newScope(s, bind))
		if err != nil {
			return nil, err
		}
		if res.kind == ctrlTransit {
			return nil, fmt.Errorf("core: transit inside function %s is not allowed", ex.Name)
		}
		return res.val, nil
	}
	return nil, fmt.Errorf("core: unknown function %s (line %d)", ex.Name, ex.Line())
}

type builtinFn func(s *Seed, args []Value, line int) (Value, error)

var builtins map[string]builtinFn

func init() {
	// Assigned in init to allow the table to reference helper functions
	// defined below without an initialization cycle.
	builtins = map[string]builtinFn{
		// Runtime library (List. 1).
		"res":            biRes,
		"addTCAMRule":    biAddTCAMRule,
		"removeTCAMRule": biRemoveTCAMRule,
		"getTCAMRule":    biGetTCAMRule,
		"exec":           biExec,
		// Actions for TCAM rules.
		"drop":      func(*Seed, []Value, int) (Value, error) { return ActionVal(dataplane.ActDrop), nil },
		"allow":     func(*Seed, []Value, int) (Value, error) { return ActionVal(dataplane.ActAllow), nil },
		"rateLimit": func(*Seed, []Value, int) (Value, error) { return ActionVal(dataplane.ActRateLimit), nil },
		"mirror":    func(*Seed, []Value, int) (Value, error) { return ActionVal(dataplane.ActMirror), nil },
		"countAct":  func(*Seed, []Value, int) (Value, error) { return ActionVal(dataplane.ActCount), nil },
		"setQoS":    func(*Seed, []Value, int) (Value, error) { return ActionVal(dataplane.ActSetQoS), nil },
		// Math.
		"min":   biMin,
		"max":   biMax,
		"abs":   biAbs,
		"log":   biLog,
		"log2":  biLog2,
		"floor": biFloor,
		// Lists.
		"list_append":   biListAppend,
		"list_len":      biListLen,
		"is_list_empty": biListEmpty,
		"list_contains": biListContains,
		"list_get":      biListGet,
		"list_clear":    func(*Seed, []Value, int) (Value, error) { return List(nil), nil },
		// Maps.
		"map_new":  func(*Seed, []Value, int) (Value, error) { return MapVal{}, nil },
		"map_get":  biMapGet,
		"map_set":  biMapSet,
		"map_has":  biMapHas,
		"map_del":  biMapDel,
		"map_len":  biMapLen,
		"map_keys": biMapKeys,
		// Misc.
		"now": biNow,
		"str": biStr,
		"log_msg": func(s *Seed, args []Value, _ int) (Value, error) {
			parts := make([]any, len(args))
			for i, a := range args {
				parts[i] = FormatValue(a)
			}
			s.host.Log("%v", parts)
			return nil, nil
		},
		// Statistics helpers for the canonical tasks.
		"getHH": biGetHH,
	}
}

func biRes(s *Seed, args []Value, line int) (Value, error) {
	if len(args) != 0 {
		return nil, fmt.Errorf("core: res() takes no arguments (line %d)", line)
	}
	return ResourcesVal(s.host.Resources()), nil
}

// biAddTCAMRule accepts either a Rule struct {.pattern, .act, .priority}
// or (filter, action [, priority]).
func biAddTCAMRule(s *Seed, args []Value, line int) (Value, error) {
	var rule dataplane.Rule
	switch {
	case len(args) == 1:
		sv, ok := args[0].(StructVal)
		if !ok || sv.Type() != "Rule" {
			return nil, fmt.Errorf("core: addTCAMRule needs a Rule struct (line %d)", line)
		}
		pat, _ := sv.Get("pattern")
		f, ok := pat.(FilterVal)
		if !ok {
			return nil, fmt.Errorf("core: Rule.pattern must be a filter (line %d)", line)
		}
		act, _ := sv.Get("act")
		a, ok := act.(ActionVal)
		if !ok {
			return nil, fmt.Errorf("core: Rule.act must be an action (line %d)", line)
		}
		rule.Filter, rule.Action = f.F, dataplane.Action(a)
		prio, _ := sv.Get("priority")
		if p, ok := AsFloat(prio); ok {
			rule.Priority = int(p)
		}
	case len(args) >= 2:
		f, ok := args[0].(FilterVal)
		if !ok {
			return nil, fmt.Errorf("core: addTCAMRule: first argument must be a filter (line %d)", line)
		}
		a, ok := args[1].(ActionVal)
		if !ok {
			return nil, fmt.Errorf("core: addTCAMRule: second argument must be an action (line %d)", line)
		}
		rule.Filter, rule.Action = f.F, dataplane.Action(a)
		if len(args) == 3 {
			p, ok := AsFloat(args[2])
			if !ok {
				return nil, fmt.Errorf("core: addTCAMRule: priority must be a number (line %d)", line)
			}
			rule.Priority = int(p)
		}
	default:
		return nil, fmt.Errorf("core: addTCAMRule needs a rule (line %d)", line)
	}
	rule.Note = s.machine.Name
	if err := s.host.AddTCAMRule(rule); err != nil {
		return nil, fmt.Errorf("core: addTCAMRule: %w (line %d)", err, line)
	}
	return nil, nil
}

func biRemoveTCAMRule(s *Seed, args []Value, line int) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("core: removeTCAMRule needs a filter (line %d)", line)
	}
	f, ok := args[0].(FilterVal)
	if !ok {
		return nil, fmt.Errorf("core: removeTCAMRule needs a filter, got %s (line %d)", TypeName(args[0]), line)
	}
	return s.host.RemoveTCAMRule(f.F), nil
}

func biGetTCAMRule(s *Seed, args []Value, line int) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("core: getTCAMRule needs a filter (line %d)", line)
	}
	f, ok := args[0].(FilterVal)
	if !ok {
		return nil, fmt.Errorf("core: getTCAMRule needs a filter (line %d)", line)
	}
	r, found := s.host.GetTCAMRule(f.F)
	if !found {
		return nil, nil
	}
	return StructVal{L: ruleLayout, V: []Value{
		FilterVal{F: r.Filter},
		ActionVal(r.Action),
		int64(r.Priority),
	}}, nil
}

func biExec(s *Seed, args []Value, line int) (Value, error) {
	if len(args) < 1 {
		return nil, fmt.Errorf("core: exec needs a command (line %d)", line)
	}
	cmd, ok := args[0].(string)
	if !ok {
		return nil, fmt.Errorf("core: exec command must be a string (line %d)", line)
	}
	var arg Value
	if len(args) == 2 {
		arg = args[1]
	}
	return s.host.Exec(cmd, arg)
}

func numericArgs(name string, args []Value, line int) ([]float64, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("core: %s needs arguments (line %d)", name, line)
	}
	out := make([]float64, len(args))
	for i, a := range args {
		f, ok := AsFloat(a)
		if !ok {
			return nil, fmt.Errorf("core: %s: argument %d is %s, not numeric (line %d)", name, i+1, TypeName(a), line)
		}
		out[i] = f
	}
	return out, nil
}

func allInts(args []Value) bool {
	for _, a := range args {
		if _, ok := a.(int64); !ok {
			return false
		}
	}
	return true
}

func biMin(_ *Seed, args []Value, line int) (Value, error) {
	fs, err := numericArgs("min", args, line)
	if err != nil {
		return nil, err
	}
	best := fs[0]
	for _, f := range fs[1:] {
		if f < best {
			best = f
		}
	}
	if allInts(args) {
		return int64(best), nil
	}
	return best, nil
}

func biMax(_ *Seed, args []Value, line int) (Value, error) {
	fs, err := numericArgs("max", args, line)
	if err != nil {
		return nil, err
	}
	best := fs[0]
	for _, f := range fs[1:] {
		if f > best {
			best = f
		}
	}
	if allInts(args) {
		return int64(best), nil
	}
	return best, nil
}

func biAbs(_ *Seed, args []Value, line int) (Value, error) {
	fs, err := numericArgs("abs", args, line)
	if err != nil {
		return nil, err
	}
	if v, ok := args[0].(int64); ok {
		if v < 0 {
			return -v, nil
		}
		return v, nil
	}
	return math.Abs(fs[0]), nil
}

func biLog(_ *Seed, args []Value, line int) (Value, error) {
	fs, err := numericArgs("log", args, line)
	if err != nil {
		return nil, err
	}
	if fs[0] <= 0 {
		return nil, fmt.Errorf("core: log of non-positive %g (line %d)", fs[0], line)
	}
	return math.Log(fs[0]), nil
}

func biLog2(_ *Seed, args []Value, line int) (Value, error) {
	fs, err := numericArgs("log2", args, line)
	if err != nil {
		return nil, err
	}
	if fs[0] <= 0 {
		return nil, fmt.Errorf("core: log2 of non-positive %g (line %d)", fs[0], line)
	}
	return math.Log2(fs[0]), nil
}

func biFloor(_ *Seed, args []Value, line int) (Value, error) {
	fs, err := numericArgs("floor", args, line)
	if err != nil {
		return nil, err
	}
	return int64(math.Floor(fs[0])), nil
}

func biListAppend(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("core: list_append(list, value) (line %d)", line)
	}
	l, ok := args[0].(List)
	if !ok && args[0] != nil {
		return nil, fmt.Errorf("core: list_append: first argument is %s (line %d)", TypeName(args[0]), line)
	}
	out := make(List, 0, len(l)+1)
	out = append(out, l...)
	return append(out, args[1]), nil
}

func asList(v Value, name string, line int) (List, error) {
	if v == nil {
		return nil, nil
	}
	l, ok := v.(List)
	if !ok {
		return nil, fmt.Errorf("core: %s needs a list, got %s (line %d)", name, TypeName(v), line)
	}
	return l, nil
}

func biListLen(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("core: list_len(list) (line %d)", line)
	}
	l, err := asList(args[0], "list_len", line)
	if err != nil {
		return nil, err
	}
	return int64(len(l)), nil
}

func biListEmpty(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("core: is_list_empty(list) (line %d)", line)
	}
	l, err := asList(args[0], "is_list_empty", line)
	if err != nil {
		return nil, err
	}
	return len(l) == 0, nil
}

func biListContains(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("core: list_contains(list, value) (line %d)", line)
	}
	l, err := asList(args[0], "list_contains", line)
	if err != nil {
		return nil, err
	}
	for _, e := range l {
		if Equal(e, args[1]) {
			return true, nil
		}
	}
	return false, nil
}

func biListGet(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("core: list_get(list, index) (line %d)", line)
	}
	l, err := asList(args[0], "list_get", line)
	if err != nil {
		return nil, err
	}
	idx, ok := AsFloat(args[1])
	if !ok {
		return nil, fmt.Errorf("core: list_get index must be numeric (line %d)", line)
	}
	i := int(idx)
	if i < 0 || i >= len(l) {
		return nil, fmt.Errorf("core: list_get index %d out of range [0,%d) (line %d)", i, len(l), line)
	}
	return l[i], nil
}

func asMap(v Value, name string, line int) (MapVal, error) {
	m, ok := v.(MapVal)
	if !ok {
		return nil, fmt.Errorf("core: %s needs a map, got %s (line %d)", name, TypeName(v), line)
	}
	return m, nil
}

func keyString(v Value) string {
	if s, ok := v.(string); ok {
		return s
	}
	return FormatValue(v)
}

func biMapGet(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("core: map_get(map, key, default) (line %d)", line)
	}
	m, err := asMap(args[0], "map_get", line)
	if err != nil {
		return nil, err
	}
	if v, ok := m[keyString(args[1])]; ok {
		return v, nil
	}
	return args[2], nil
}

func biMapSet(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("core: map_set(map, key, value) (line %d)", line)
	}
	m, err := asMap(args[0], "map_set", line)
	if err != nil {
		return nil, err
	}
	m[keyString(args[1])] = args[2]
	return m, nil
}

func biMapHas(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("core: map_has(map, key) (line %d)", line)
	}
	m, err := asMap(args[0], "map_has", line)
	if err != nil {
		return nil, err
	}
	_, ok := m[keyString(args[1])]
	return ok, nil
}

func biMapDel(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("core: map_del(map, key) (line %d)", line)
	}
	m, err := asMap(args[0], "map_del", line)
	if err != nil {
		return nil, err
	}
	delete(m, keyString(args[1]))
	return m, nil
}

func biMapLen(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("core: map_len(map) (line %d)", line)
	}
	m, err := asMap(args[0], "map_len", line)
	if err != nil {
		return nil, err
	}
	return int64(len(m)), nil
}

func biMapKeys(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("core: map_keys(map) (line %d)", line)
	}
	m, err := asMap(args[0], "map_keys", line)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make(List, len(keys))
	for i, k := range keys {
		out[i] = k
	}
	return out, nil
}

func biNow(s *Seed, args []Value, line int) (Value, error) {
	if len(args) != 0 {
		return nil, fmt.Errorf("core: now() takes no arguments (line %d)", line)
	}
	return float64(s.host.Now().Milliseconds()), nil
}

func biStr(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("core: str(value) (line %d)", line)
	}
	if s, ok := args[0].(string); ok {
		return s, nil
	}
	return FormatValue(args[0]), nil
}

// biGetHH is the paper's abstracted getHH helper: given a list of
// PortStats records and a byte threshold, return the ports whose
// transmitted bytes since the last poll reach the threshold.
func biGetHH(_ *Seed, args []Value, line int) (Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("core: getHH(stats, threshold) (line %d)", line)
	}
	stats, err := asList(args[0], "getHH", line)
	if err != nil {
		return nil, err
	}
	th, ok := AsFloat(args[1])
	if !ok {
		return nil, fmt.Errorf("core: getHH threshold must be numeric (line %d)", line)
	}
	var hitters List
	for _, rec := range stats {
		sv, ok := rec.(StructVal)
		if !ok || sv.Type() != "PortStats" {
			return nil, fmt.Errorf("core: getHH expects PortStats records, got %s (line %d)", TypeName(rec), line)
		}
		if sv.L == portStatsLayout {
			d, _ := AsFloat(sv.V[psDTxBytes])
			if d >= th {
				hitters = append(hitters, sv.V[psPort])
			}
			continue
		}
		dv, _ := sv.Get("dTxBytes")
		d, _ := AsFloat(dv)
		if d >= th {
			p, _ := sv.Get("port")
			hitters = append(hitters, p)
		}
	}
	return hitters, nil
}

// BuiltinNames returns the sorted runtime library function names
// (documentation and farmctl introspection).
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
