package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"farm/internal/dataplane"
)

// randValue builds a random value tree of bounded depth.
func randValue(rng *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return int64(rng.Intn(1000) - 500)
		case 1:
			return rng.Float64() * 100
		case 2:
			return rng.Intn(2) == 0
		default:
			return string(rune('a' + rng.Intn(26)))
		}
	}
	switch rng.Intn(6) {
	case 0:
		n := rng.Intn(4)
		l := make(List, n)
		for i := range l {
			l[i] = randValue(rng, depth-1)
		}
		return l
	case 1:
		m := MapVal{}
		for i := 0; i < rng.Intn(4); i++ {
			m[string(rune('a'+rng.Intn(8)))] = randValue(rng, depth-1)
		}
		return m
	case 2:
		return StructOf("T", MapVal{"x": randValue(rng, depth-1)})
	case 3:
		return FilterVal{F: dataplane.Filter{DstPort: uint16(rng.Intn(100))}}
	case 4:
		return ActionVal(dataplane.ActDrop)
	default:
		return randValue(rng, 0)
	}
}

// Property: Equal is reflexive on arbitrary value trees.
func TestEqualReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		v := randValue(rng, 3)
		if !Equal(v, v) {
			t.Fatalf("value not equal to itself: %s", FormatValue(v))
		}
	}
}

// Property: CloneValue produces an Equal value whose mutation does not
// affect the original.
func TestClonePreservesEqualityAndIsolates(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 300; i++ {
		v := randValue(rng, 3)
		c := CloneValue(v)
		if !Equal(v, c) {
			t.Fatalf("clone differs:\n  v=%s\n  c=%s", FormatValue(v), FormatValue(c))
		}
		// Mutate every mutable container in the clone.
		mutate(c)
		// The original must render identically to a fresh clone-check
		// baseline: compare via a second clone taken before mutation is
		// not available, so instead verify mutation did not leak by
		// checking against the original's own format, captured first.
	}
	// Directed isolation checks (the random walk above can't easily
	// capture before/after).
	orig := MapVal{"k": List{int64(1)}, "s": StructOf("T", MapVal{"f": int64(2)})}
	c := CloneValue(orig).(MapVal)
	c["k"].(List)[0] = int64(99)
	c["s"].(StructVal).Set("f", int64(99))
	if orig["k"].(List)[0] != int64(1) {
		t.Fatal("list mutation leaked into the original")
	}
	if f, _ := orig["s"].(StructVal).Get("f"); f != int64(2) {
		t.Fatal("struct mutation leaked into the original")
	}
}

func mutate(v Value) {
	switch x := v.(type) {
	case List:
		if len(x) > 0 {
			x[0] = int64(123456)
		}
	case MapVal:
		x["__mutated"] = true
	case StructVal:
		if len(x.V) > 0 {
			x.V[0] = int64(123456)
		}
	}
}

// Property: FormatValue is deterministic (same value renders the same
// twice — map ordering must be stable).
func TestFormatDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 300; i++ {
		v := randValue(rng, 3)
		if FormatValue(v) != FormatValue(v) {
			t.Fatal("non-deterministic rendering")
		}
	}
}

// Property: numeric Equal treats int64 and float64 with equal magnitude
// as equal, and AsFloat round-trips small integers.
func TestNumericEquivalence(t *testing.T) {
	f := func(n int32) bool {
		v := int64(n)
		fl, ok := AsFloat(v)
		if !ok {
			return false
		}
		return Equal(v, fl) && int64(fl) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Truthy never errors on bool/int/float and matches Go truth.
func TestTruthyNumbers(t *testing.T) {
	f := func(n int16, x float32) bool {
		b1, err1 := Truthy(int64(n))
		b2, err2 := Truthy(float64(x))
		b3, err3 := Truthy(n != 0)
		return err1 == nil && err2 == nil && err3 == nil &&
			b1 == (n != 0) && b2 == (x != 0) && b3 == (n != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Truthy(List{}); err == nil {
		t.Fatal("list must not be truthy-convertible")
	}
}

func TestPortStatsRecordDeltas(t *testing.T) {
	cur := dataplane.PortStats{TxBytes: 1000, TxPackets: 10, RxBytes: 500, RxPackets: 5}
	prev := dataplane.PortStats{TxBytes: 400, TxPackets: 4, RxBytes: 100, RxPackets: 1}
	rec := PortStatsRecord(7, cur, prev)
	if p, _ := rec.Get("port"); p != int64(7) {
		t.Fatalf("port = %v", p)
	}
	dtx, _ := rec.Get("dTxBytes")
	drx, _ := rec.Get("dRxPkts")
	if dtx != int64(600) || drx != int64(4) {
		t.Fatalf("deltas = %s", FormatValue(rec))
	}
}

func TestRuleStatsRecordDeltas(t *testing.T) {
	rec := RuleStatsRecord(
		dataplane.RuleStats{Packets: 10, Bytes: 1000},
		dataplane.RuleStats{Packets: 3, Bytes: 300},
	)
	dp, _ := rec.Get("dPackets")
	db, _ := rec.Get("dBytes")
	if dp != int64(7) || db != int64(700) {
		t.Fatalf("deltas = %s", FormatValue(rec))
	}
}
