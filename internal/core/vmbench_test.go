package core

import (
	"testing"

	"farm/internal/almanac"
)

// benchSource is a poll handler with the catalogue's typical shape: a
// tight scan over a port-stats batch with comparisons, arithmetic, and
// a couple of env writes. It deliberately sticks to the non-allocating
// runtime surface so the compiled back end can be held to 0 allocs/op.
const benchSource = `
machine Bench {
  place all;
  poll stats = Poll { .ival = 10, .what = port ANY };
  external float threshold;
  long hot;
  float acc;
  state observe {
    when (stats as recs) do {
      long n = list_len(recs);
      long i = 0;
      long hits = 0;
      float sum = 0.0;
      while (i < n) {
        float d = list_get(recs, i).dTxBytes;
        sum = sum + d;
        if (d >= threshold) then { hits = hits + 1; }
        i = i + 1;
      }
      hot = hits;
      acc = acc + sum / (n + 1);
    }
  }
}
`

func benchStats(n int) List {
	stats := make(List, 0, n)
	for i := 0; i < n; i++ {
		stats = append(stats, StructOf("PortStats", MapVal{
			"port":     int64(i),
			"dTxBytes": float64((i * 37) % 1900),
		}))
	}
	return stats
}

// benchScalarSource is the other common seed shape: pure scalar
// arithmetic and control flow (EWMA-style smoothing), no per-event list
// or map traffic. It isolates dispatch cost from the shared Value
// operations both back ends pay identically.
const benchScalarSource = `
machine BenchS {
  place all;
  poll tick = Poll { .ival = 10, .what = port ANY };
  float ewma;
  long rounds;
  state observe {
    when (tick as v) do {
      float e = ewma;
      long i = 0;
      while (i < 64) {
        float x = i * 3.0 + 1.0;
        e = e * 0.9 + x * 0.1;
        if (e > 100.0) then { e = e / 2.0; }
        i = i + 1;
      }
      ewma = e;
      rounds = rounds + 1;
    }
  }
}
`

func benchCompile(b *testing.B, src, name string) *almanac.CompiledMachine {
	b.Helper()
	prog, err := almanac.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	cm, err := almanac.CompileMachine(prog, name)
	if err != nil {
		b.Fatal(err)
	}
	return cm
}

// benchBackends is every execution engine the seed-path benchmarks
// A/B: the AST interpreter baseline, the stack bytecode VM, and the
// register VM (the default).
var benchBackends = []Backend{BackendInterp, BackendStack, BackendRegister}

// BenchmarkSeedHandleTrigger is the headline seed-path number: one poll
// delivery on each back end. The register VM is held to the ISSUE 9 bar
// (>=5x over the interpreter at 0 allocs/op).
func BenchmarkSeedHandleTrigger(b *testing.B) {
	cm := benchCompile(b, benchSource, "Bench")
	stats := benchStats(48)
	for _, be := range benchBackends {
		b.Run(be.String(), func(b *testing.B) {
			r, err := NewRunner(cm, map[string]Value{"threshold": float64(1000)}, newMockHost(), be)
			if err != nil {
				b.Fatal(err)
			}
			if err := r.Start(); err != nil {
				b.Fatal(err)
			}
			var data Value = stats // box once: the conversion is the caller's, not the engine's
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.HandleTrigger("stats", data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSeedScalarHandler measures the dispatch-bound shape: the VM's
// advantage here is bounded only by its own loop, not by shared list and
// map operations.
func BenchmarkSeedScalarHandler(b *testing.B) {
	cm := benchCompile(b, benchScalarSource, "BenchS")
	for _, be := range benchBackends {
		b.Run(be.String(), func(b *testing.B) {
			r, err := NewRunner(cm, nil, newMockHost(), be)
			if err != nil {
				b.Fatal(err)
			}
			if err := r.Start(); err != nil {
				b.Fatal(err)
			}
			var data Value = int64(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.HandleTrigger("tick", data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
