// Package core implements the seed runtime: executable state machines
// compiled from Almanac (§II-B-a of the FARM paper). A Seed holds the
// machine's variables and current state, reacts to triggers (poll,
// probe, time), messages, and reallocation events, and performs local
// (re)actions — state transitions, TCAM updates, sends — through a Host
// interface implemented by the soil.
package core

import (
	"fmt"
	"sort"

	"farm/internal/dataplane"
	"farm/internal/netmodel"
)

// Value is an Almanac runtime value. The concrete types are:
//
//	int64            int/long
//	float64          float
//	bool             bool
//	string           string
//	List             list
//	MapVal           map (string-keyed)
//	FilterVal        filter
//	ActionVal        action
//	PacketVal        packet
//	StructVal        user/runtime structs (incl. poll records)
//	ResourcesVal     the res() result
type Value any

// List is an Almanac list.
type List []Value

// MapVal is an Almanac map with string keys.
type MapVal map[string]Value

// FilterVal wraps a packet filter; PortAny marks `port ANY`.
type FilterVal struct {
	F       dataplane.Filter
	PortAny bool
}

// ActionVal is a data-plane action (drop, rate-limit, ...).
type ActionVal dataplane.Action

// PacketVal is a sampled packet.
type PacketVal dataplane.Packet

// ResourcesVal is the allocation returned by res().
type ResourcesVal netmodel.Resources

// TypeName returns a human-readable type tag for diagnostics.
func TypeName(v Value) string {
	switch v.(type) {
	case nil:
		return "nil"
	case int64:
		return "long"
	case float64:
		return "float"
	case bool:
		return "bool"
	case string:
		return "string"
	case List:
		return "list"
	case MapVal:
		return "map"
	case FilterVal:
		return "filter"
	case ActionVal:
		return "action"
	case PacketVal:
		return "packet"
	case StructVal:
		return "struct"
	case ResourcesVal:
		return "resources"
	}
	return fmt.Sprintf("%T", Value(nil))
}

// Truthy converts a value to a boolean condition.
func Truthy(v Value) (bool, error) {
	switch x := v.(type) {
	case bool:
		return x, nil
	case int64:
		return x != 0, nil
	case float64:
		return x != 0, nil
	case nil:
		return false, nil
	}
	return false, fmt.Errorf("core: %s is not usable as a condition", TypeName(v))
}

// AsFloat widens numeric values.
func AsFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

// Equal compares two values structurally.
func Equal(a, b Value) bool {
	if fa, ok := AsFloat(a); ok {
		if fb, ok2 := AsFloat(b); ok2 {
			return fa == fb
		}
		return false
	}
	switch x := a.(type) {
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case nil:
		return b == nil
	case FilterVal:
		y, ok := b.(FilterVal)
		return ok && x == y
	case ActionVal:
		y, ok := b.(ActionVal)
		return ok && x == y
	case PacketVal:
		y, ok := b.(PacketVal)
		return ok && x == y
	case List:
		y, ok := b.(List)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case MapVal:
		y, ok := b.(MapVal)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			w, present := y[k]
			if !present || !Equal(v, w) {
				return false
			}
		}
		return true
	case StructVal:
		y, ok := b.(StructVal)
		if !ok || len(x.V) != len(y.V) {
			return false
		}
		if x.L == y.L {
			for i := range x.V {
				if !Equal(x.V[i], y.V[i]) {
					return false
				}
			}
			return true
		}
		// Different layouts (e.g. different field order from two
		// compilation sites): compare by name, like the old map form.
		if x.Type() != y.Type() {
			return false
		}
		for i, n := range x.L.Names {
			w, present := y.Get(n)
			if !present || !Equal(x.V[i], w) {
				return false
			}
		}
		return true
	}
	return false
}

// CloneValue deep-copies a value (used for migration snapshots and
// message passing between seeds, which must not share mutable state).
func CloneValue(v Value) Value {
	switch x := v.(type) {
	case List:
		out := make(List, len(x))
		for i, e := range x {
			out[i] = CloneValue(e)
		}
		return out
	case MapVal:
		out := make(MapVal, len(x))
		for k, e := range x {
			out[k] = CloneValue(e)
		}
		return out
	case StructVal:
		out := make([]Value, len(x.V))
		for i, e := range x.V {
			out[i] = CloneValue(e)
		}
		return StructVal{L: x.L, V: out}
	case ResourcesVal:
		return ResourcesVal(netmodel.Resources(x).Clone())
	case SketchVal:
		return SketchVal{S: x.S.Clone()}
	case DistinctVal:
		return DistinctVal{D: x.D.Clone()}
	default:
		return v // scalars and immutable wrappers
	}
}

// FormatValue renders a value deterministically for logs and tests.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case string:
		return fmt.Sprintf("%q", x)
	case List:
		s := "["
		for i, e := range x {
			if i > 0 {
				s += ", "
			}
			s += FormatValue(e)
		}
		return s + "]"
	case MapVal:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s := "{"
		for i, k := range keys {
			if i > 0 {
				s += ", "
			}
			s += fmt.Sprintf("%s: %s", k, FormatValue(x[k]))
		}
		return s + "}"
	case StructVal:
		// Render sorted by field name, independent of layout order, so
		// digests and golden logs stay stable across layouts.
		names := append([]string(nil), x.L.Names...)
		sort.Strings(names)
		s := x.Type() + "{"
		for i, n := range names {
			if i > 0 {
				s += ", "
			}
			v, _ := x.Get(n)
			s += fmt.Sprintf("%s: %s", n, FormatValue(v))
		}
		return s + "}"
	case FilterVal:
		if x.PortAny {
			return "filter(port ANY)"
		}
		return x.F.String()
	case ActionVal:
		return dataplane.Action(x).String()
	case PacketVal:
		return dataplane.Packet(x).Flow().String()
	case SketchVal:
		return fmt.Sprintf("sketch(%dx%d,total=%d)", x.S.Width(), x.S.Depth(), x.S.Total())
	case DistinctVal:
		return fmt.Sprintf("distinct(~%.0f)", x.D.Estimate())
	default:
		return fmt.Sprintf("%v", x)
	}
}

// PortStatsRecord builds the struct value delivered per port by a
// statistics poll: cumulative counters plus deltas since the previous
// poll of the same subject.
func PortStatsRecord(port int, cur, prev dataplane.PortStats) StructVal {
	v := make([]Value, len(portStatsLayout.Names))
	v[psPort] = int64(port)
	v[psRxBytes] = int64(cur.RxBytes)
	v[psTxBytes] = int64(cur.TxBytes)
	v[psRxPkts] = int64(cur.RxPackets)
	v[psTxPkts] = int64(cur.TxPackets)
	v[psDRxBytes] = int64(cur.RxBytes - prev.RxBytes)
	v[psDTxBytes] = int64(cur.TxBytes - prev.TxBytes)
	v[psDRxPkts] = int64(cur.RxPackets - prev.RxPackets)
	v[psDTxPkts] = int64(cur.TxPackets - prev.TxPackets)
	return StructVal{L: portStatsLayout, V: v}
}

// RuleStatsRecord builds the struct value delivered by a rule-counter
// poll.
func RuleStatsRecord(cur, prev dataplane.RuleStats) StructVal {
	return StructVal{L: ruleStatsLayout, V: []Value{
		int64(cur.Packets),
		int64(cur.Bytes),
		int64(cur.Packets - prev.Packets),
		int64(cur.Bytes - prev.Bytes),
	}}
}
