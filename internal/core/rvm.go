package core

import (
	"errors"
	"fmt"

	"farm/internal/almanac"
)

// The register VM: executes the register form of a lowered program
// (almanac.RegChunk) with the same observable behaviour as the stack VM
// and the AST interpreter — the three-way parity storms pin states,
// snapshots, host-effect traces, action counts, and error strings.
//
// Compared to the stack VM it executes far fewer instructions per
// statement (operands are read in place from registers, literals, and
// slots instead of being pushed first) and resolves struct field reads
// through per-site inline caches keyed on the record's interned layout,
// so the hot path does no map hashing.
//
// rvmSeed embeds vmSeed for everything that is not the dispatch loop:
// construction/frame flattening, Snapshot/Restore, dynamic name
// resolution, the arithmetic slow path, and the builtin bridge. The
// embedded stack/locals fields stay nil — only runChunk/run below ever
// execute code.
type rvmSeed struct {
	vmSeed
	regs  []rval // register arena; chunk frames are windows into it
	rbase int
	fc    []fieldCache // one per RField site, lazily filled
	nargs [2]rval      // RCallB2 argument buffer
}

// fieldCache is one RField site's inline cache: last-seen layout and
// the field's slot in it. Caches are per-seed (the linked program is
// shared across goroutines and must stay immutable).
type fieldCache struct {
	l    *Layout
	slot int32
}

func newRVMSeed(cm *almanac.CompiledMachine, externals map[string]Value, host Host, lp *linkedLowered) (*rvmSeed, error) {
	m := &rvmSeed{}
	if err := m.initFrames(cm, externals, host, lp); err != nil {
		return nil, err
	}
	m.regs = make([]rval, 64)
	if n := lp.p.RFieldSites; n > 0 {
		m.fc = make([]fieldCache, n)
	}
	return m, nil
}

func (m *rvmSeed) Start() error {
	if m.started {
		return fmt.Errorf("core: seed %s already started", m.lp.p.Machine)
	}
	m.started = true
	if ci := m.lp.p.States[m.state].Enter; ci >= 0 {
		return m.runTop(ci, nil, 0)
	}
	return nil
}

func (m *rvmSeed) HandleTrigger(varName string, data Value) error {
	ti, ok := m.lp.trigIdx[varName]
	if !ok {
		return nil
	}
	ci := m.lp.p.States[m.state].OnVar[ti]
	if ci < 0 {
		return nil
	}
	if m.lp.p.RegChunks[ci].HasBind {
		m.bindBuf[0] = unbox(data)
		return m.runTop(ci, m.bindBuf[:1], 0)
	}
	return m.runTop(ci, nil, 0)
}

func (m *rvmSeed) HandleRecv(from MsgSource, v Value) error {
	st := &m.lp.p.States[m.state]
	for i := range st.Recvs {
		rc := &st.Recvs[i]
		if !recvMatches(rc.Trigger, from, v) {
			continue
		}
		if m.lp.p.RegChunks[rc.Chunk].HasBind {
			m.bindBuf[0] = unbox(CloneValue(v))
			return m.runTop(rc.Chunk, m.bindBuf[:1], 0)
		}
		return m.runTop(rc.Chunk, nil, 0)
	}
	return nil
}

func (m *rvmSeed) HandleRealloc() error {
	if ci := m.lp.p.States[m.state].Realloc; ci >= 0 {
		return m.runTop(ci, nil, 0)
	}
	return nil
}

func (m *rvmSeed) runTop(ci int32, args []rval, depth int) error {
	if depth > maxTransitChain {
		return fmt.Errorf("core: seed %s: transition chain exceeds %d (state-machine loop?)", m.lp.p.Machine, maxTransitChain)
	}
	res, err := m.runChunk(ci, args)
	if err != nil {
		return err
	}
	if res.kind == ctrlTransit {
		return m.transitionTo(res.transit, depth+1)
	}
	return nil
}

func (m *rvmSeed) transitionTo(target int32, depth int) error {
	if target < 0 {
		return fmt.Errorf("core: seed %s: transit to unknown state %s", m.lp.p.Machine, "?")
	}
	old := &m.lp.p.States[m.state]
	if old.Exit >= 0 {
		res, err := m.runChunk(old.Exit, nil)
		if err != nil {
			return err
		}
		if res.kind == ctrlTransit {
			return fmt.Errorf("core: seed %s: transit inside exit handler is not allowed", m.lp.p.Machine)
		}
	}
	m.state = target
	if ci := m.lp.p.States[target].Enter; ci >= 0 {
		return m.runTop(ci, nil, depth)
	}
	return nil
}

// runChunk executes one register chunk: carve a frame window out of the
// arena, bind the arguments, mark the remaining locals undefined, and
// leave the temporaries dirty (every temporary read is dominated by a
// write by construction).
func (m *rvmSeed) runChunk(ci int32, args []rval) (chunkResult, error) {
	ch := &m.lp.p.RegChunks[ci]
	base := m.rbase
	need := base + int(ch.NumRegs)
	if need > len(m.regs) {
		nr := make([]rval, need*2+16)
		copy(nr, m.regs[:base])
		m.regs = nr
	}
	regs := m.regs[base:need:need]
	n := copy(regs, args)
	for i := n; i < int(ch.NumLocals); i++ {
		regs[i] = rval{}
	}
	m.rbase = need
	res, err := m.run(ch, base)
	m.rbase = base
	return res, err
}

// opndBases maps each operand class to its backing storage so reads
// decode without a data-dependent branch: the class bits index the
// table, the offset bits index the slice. A branchy decode mispredicts
// badly in loops because one switch case serves register and literal
// operands on alternating pcs; two dependent loads do not.
type opndBases [4][]rval

func (t *opndBases) rd(o int32) rval {
	return t[o>>almanac.ROpndShift][o&almanac.ROpndMask]
}

// rdOpnd decodes a class-tagged operand. The plain-register fast path
// is first: hot loops run almost entirely on registers.
func rdOpnd(o int32, regs, env, stf, lits []rval) rval {
	if o <= almanac.ROpndMask {
		return regs[o]
	}
	i := o & almanac.ROpndMask
	switch o >> almanac.ROpndShift {
	case almanac.RClassLit:
		return lits[i]
	case almanac.RClassEnv:
		return env[i]
	default:
		return stf[i]
	}
}

// wrOpnd writes a class-tagged destination (register, env, or state
// slot — stores retargeted by the translator write slots directly).
func wrOpnd(d int32, v rval, regs, env, stf []rval) {
	if d <= almanac.ROpndMask {
		regs[d] = v
		return
	}
	i := d & almanac.ROpndMask
	if d>>almanac.ROpndShift == almanac.RClassEnv {
		env[i] = v
	} else {
		stf[i] = v
	}
}

// wrScalar writes a scalar result (int, float, bool — ref is never
// consulted for those kinds) without touching the destination's ref
// word. Register writes skip the pointer store entirely — no write
// barrier on the hottest path; env/state slots get a clean full write
// so long-lived slots never pin a stale reference.
func wrScalar(d int32, v rval, regs, env, stf []rval) {
	if d <= almanac.ROpndMask {
		p := &regs[d]
		p.k, p.i, p.f = v.k, v.i, v.f
		return
	}
	i := d & almanac.ROpndMask
	if d>>almanac.ROpndShift == almanac.RClassEnv {
		env[i] = rval{k: v.k, i: v.i, f: v.f}
	} else {
		stf[i] = rval{k: v.k, i: v.i, f: v.f}
	}
}

// cmpSlow resolves a fused compare-and-branch whose operands were not
// both numeric (the inline tiers cover those): a numeric left against a
// non-numeric right gets the comparison error, everything else goes to
// binOp (matching the stack VM's cmpBase path and error strings).
func (m *rvmSeed) cmpSlow(op almanac.Op, l, r rval, line int32) (bool, error) {
	if _, lok := asFloatR(l); lok {
		return false, fmt.Errorf("core: %s %s %s is not defined (line %d)",
			typeNameR(l), opSym(op), typeNameR(r), line)
	}
	v, err := m.binOp(almanac.Instr{Op: op, Line: line}, l, r)
	if err != nil {
		return false, err
	}
	return v.i != 0, nil
}

// bridgeB boxes the arguments and runs the shared boxed builtin — the
// fallback for the specialized native opcodes (RListLen, RListGet) when
// the unboxed fast path does not apply. It mirrors the RCallB bridge so
// cold paths and error strings have a single source.
func (m *rvmSeed) bridgeB(name int32, argv []rval, line int32) (rval, error) {
	m.scratch = m.scratch[:0]
	for _, a := range argv {
		m.scratch = append(m.scratch, a.box())
	}
	v, err := m.lp.bfns[name](m.in, m.scratch, int(line))
	if err != nil {
		return rval{}, err
	}
	return unbox(v), nil
}

func (m *rvmSeed) run(ch *almanac.RegChunk, base int) (chunkResult, error) {
	lp := m.lp
	p := lp.p
	lits := lp.lits
	env := m.env
	stf := m.states[m.state] // fixed for the chunk: transit exits it
	regs := m.regs[base : base+int(ch.NumRegs)]
	bases := opndBases{almanac.RClassReg: regs, almanac.RClassLit: lits, almanac.RClassEnv: env, almanac.RClassSt: stf}
	code := ch.Code
	for pc := 0; pc < len(code); pc++ {
		in := code[pc]
		// Folded per-statement accounting. The guard keeps the serial
		// load-add-store chain through m.actions as short as the real
		// statement count instead of one RMW per dispatch.
		if in.Step != 0 {
			m.actions += int(in.Step)
		}
		switch in.Op {
		case almanac.RNop:

		case almanac.RMove:
			wrOpnd(in.Dst, bases.rd(in.A), regs, env, stf)

		case almanac.RZero:
			wrOpnd(in.Dst, zeroRval(almanac.Type(in.A)), regs, env, stf)

		case almanac.RLoadLE:
			v := regs[in.A]
			if v.k == rkUndef {
				v = env[in.B]
			}
			wrOpnd(in.Dst, v, regs, env, stf)

		case almanac.RLoadLS:
			v := regs[in.A]
			if v.k == rkUndef {
				v = stf[in.B]
			}
			wrOpnd(in.Dst, v, regs, env, stf)

		case almanac.RLoadLD:
			v := regs[in.A]
			if v.k == rkUndef {
				var err error
				v, err = m.dynLoad(p.Names[in.B], in.Line)
				if err != nil {
					return chunkResult{}, err
				}
			}
			wrOpnd(in.Dst, v, regs, env, stf)

		case almanac.RLoadLErr:
			v := regs[in.A]
			if v.k == rkUndef {
				return chunkResult{}, fmt.Errorf("core: undeclared variable %s (line %d)", p.Names[in.B], in.Line)
			}
			wrOpnd(in.Dst, v, regs, env, stf)

		case almanac.RStoreLE:
			v := bases.rd(in.C)
			if regs[in.A].k != rkUndef {
				regs[in.A] = v
			} else {
				env[in.B] = v
			}

		case almanac.RStoreLS:
			v := bases.rd(in.C)
			if regs[in.A].k != rkUndef {
				regs[in.A] = v
			} else {
				stf[in.B] = v
			}

		case almanac.RStoreLD:
			v := bases.rd(in.C)
			if regs[in.A].k != rkUndef {
				regs[in.A] = v
			} else if err := m.dynStore(p.Names[in.B], v); err != nil {
				return chunkResult{}, err
			}

		case almanac.RStoreLErr:
			v := bases.rd(in.C)
			if regs[in.A].k != rkUndef {
				regs[in.A] = v
			} else {
				return chunkResult{}, fmt.Errorf("core: assignment to undeclared variable %s", p.Names[in.B])
			}

		case almanac.RLoadDyn:
			v, err := m.dynLoad(p.Names[in.A], in.Line)
			if err != nil {
				return chunkResult{}, err
			}
			wrOpnd(in.Dst, v, regs, env, stf)

		case almanac.RStoreDyn:
			if err := m.dynStore(p.Names[in.A], bases.rd(in.B)); err != nil {
				return chunkResult{}, err
			}

		case almanac.RLoadErr:
			return chunkResult{}, fmt.Errorf("core: undeclared variable %s (line %d)", p.Names[in.A], in.Line)

		case almanac.RStoreErr:
			return chunkResult{}, fmt.Errorf("core: assignment to undeclared variable %s", p.Names[in.A])

		case almanac.RJump:
			pc = int(in.A) - 1

		case almanac.RJF:
			b, err := truthyR(bases.rd(in.A))
			if err != nil {
				return chunkResult{}, err
			}
			if !b {
				pc = int(in.B) - 1
			}

		case almanac.RLoopInit:
			regs[in.A] = rint(0)

		case almanac.RLoopCheck:
			if regs[in.A].i >= maxWhileIterations {
				return chunkResult{}, fmt.Errorf("core: while loop exceeded %d iterations (line %d)", maxWhileIterations, in.Line)
			}
			regs[in.A].i++

		case almanac.RTransit:
			return chunkResult{kind: ctrlTransit, transit: in.A}, nil

		case almanac.RReturn:
			res := chunkResult{kind: ctrlReturn, val: rval{k: rkNil}}
			if in.A >= 0 {
				res.val = bases.rd(in.A)
			}
			return res, nil

		case almanac.RNot:
			b, err := truthyR(bases.rd(in.A))
			if err != nil {
				return chunkResult{}, err
			}
			wrOpnd(in.Dst, rbool(!b), regs, env, stf)

		case almanac.RNeg:
			v := bases.rd(in.A)
			switch v.k {
			case rkInt:
				v.i = -v.i
			case rkFloat:
				v.f = -v.f
			default:
				return chunkResult{}, fmt.Errorf("core: unary - on %s", typeNameR(v))
			}
			wrOpnd(in.Dst, v, regs, env, stf)

		case almanac.REq:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			wrOpnd(in.Dst, rbool(eqR(l, r)), regs, env, stf)

		case almanac.RNe:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			wrOpnd(in.Dst, rbool(!eqR(l, r)), regs, env, stf)

		case almanac.RJEq:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			if !eqR(l, r) {
				pc = int(in.C) - 1
			}

		case almanac.RJNe:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			if eqR(l, r) {
				pc = int(in.C) - 1
			}

		// Fused compare-and-branch and the numeric operators get one
		// dispatch case per opcode: a single jump-table hit selects the
		// operation, with the long/long and float/float tiers inline and
		// everything else (mixed promotion, strings, lists, division by
		// zero) in the shared slow helpers below.
		case almanac.RJLt:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			var b bool
			if l.k == rkInt && r.k == rkInt {
				b = l.i < r.i
			} else if l.k == rkFloat && r.k == rkFloat {
				b = l.f < r.f
			} else if l.k == rkInt && r.k == rkFloat {
				b = float64(l.i) < r.f
			} else if l.k == rkFloat && r.k == rkInt {
				b = l.f < float64(r.i)
			} else {
				var err error
				if b, err = m.cmpSlow(almanac.OpLt, l, r, in.Line); err != nil {
					return chunkResult{}, err
				}
			}
			if !b {
				pc = int(in.C) - 1
			}

		case almanac.RJLe:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			var b bool
			if l.k == rkInt && r.k == rkInt {
				b = l.i <= r.i
			} else if l.k == rkFloat && r.k == rkFloat {
				b = l.f <= r.f
			} else if l.k == rkInt && r.k == rkFloat {
				b = float64(l.i) <= r.f
			} else if l.k == rkFloat && r.k == rkInt {
				b = l.f <= float64(r.i)
			} else {
				var err error
				if b, err = m.cmpSlow(almanac.OpLe, l, r, in.Line); err != nil {
					return chunkResult{}, err
				}
			}
			if !b {
				pc = int(in.C) - 1
			}

		case almanac.RJGt:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			var b bool
			if l.k == rkInt && r.k == rkInt {
				b = l.i > r.i
			} else if l.k == rkFloat && r.k == rkFloat {
				b = l.f > r.f
			} else if l.k == rkInt && r.k == rkFloat {
				b = float64(l.i) > r.f
			} else if l.k == rkFloat && r.k == rkInt {
				b = l.f > float64(r.i)
			} else {
				var err error
				if b, err = m.cmpSlow(almanac.OpGt, l, r, in.Line); err != nil {
					return chunkResult{}, err
				}
			}
			if !b {
				pc = int(in.C) - 1
			}

		case almanac.RJGe:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			var b bool
			if l.k == rkInt && r.k == rkInt {
				b = l.i >= r.i
			} else if l.k == rkFloat && r.k == rkFloat {
				b = l.f >= r.f
			} else if l.k == rkInt && r.k == rkFloat {
				b = float64(l.i) >= r.f
			} else if l.k == rkFloat && r.k == rkInt {
				b = l.f >= float64(r.i)
			} else {
				var err error
				if b, err = m.cmpSlow(almanac.OpGe, l, r, in.Line); err != nil {
					return chunkResult{}, err
				}
			}
			if !b {
				pc = int(in.C) - 1
			}

		case almanac.RMulAdd:
			// Fused multiply feeding an add. The operand C read happens
			// after the product but before the destination write, exactly
			// like the unfused pair (C may alias Dst).
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			if l.k == rkInt && r.k == rkInt {
				l.i *= r.i
			} else if l.k == rkFloat && r.k == rkFloat {
				l.f *= r.f
			} else if l.k == rkInt && r.k == rkFloat {
				l.k, l.f = rkFloat, float64(l.i)*r.f
			} else if l.k == rkFloat && r.k == rkInt {
				l.f *= float64(r.i)
			} else {
				v, err := m.binOp(almanac.Instr{Op: almanac.OpMul, Line: in.Line}, l, r)
				if err != nil {
					return chunkResult{}, err
				}
				l = v
			}
			c := bases.rd(in.C)
			if l.k == rkInt && c.k == rkInt {
				l.i += c.i
			} else if l.k == rkFloat && c.k == rkFloat {
				l.f += c.f
			} else if l.k == rkInt && c.k == rkFloat {
				l.k, l.f = rkFloat, float64(l.i)+c.f
			} else if l.k == rkFloat && c.k == rkInt {
				l.f += float64(c.i)
			} else {
				v, err := m.binOp(almanac.Instr{Op: almanac.OpAdd, Line: in.Line}, l, c)
				if err != nil {
					return chunkResult{}, err
				}
				l = v
			}
			wrOpnd(in.Dst, l, regs, env, stf)

		case almanac.RAdd:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			if l.k == rkInt && r.k == rkInt {
				l.i += r.i
			} else if l.k == rkFloat && r.k == rkFloat {
				l.f += r.f
			} else if l.k == rkInt && r.k == rkFloat {
				l.k, l.f = rkFloat, float64(l.i)+r.f
			} else if l.k == rkFloat && r.k == rkInt {
				l.f += float64(r.i)
			} else {
				// Non-numeric add (string/list concat, type errors) is
				// binOp's; its result may be a reference, so this is the
				// one tier that takes the full write.
				v, err := m.binOp(almanac.Instr{Op: almanac.OpAdd, Line: in.Line}, l, r)
				if err != nil {
					return chunkResult{}, err
				}
				wrOpnd(in.Dst, v, regs, env, stf)
				break
			}
			wrOpnd(in.Dst, l, regs, env, stf)

		case almanac.RSub:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			if l.k == rkInt && r.k == rkInt {
				l.i -= r.i
			} else if l.k == rkFloat && r.k == rkFloat {
				l.f -= r.f
			} else if l.k == rkInt && r.k == rkFloat {
				l.k, l.f = rkFloat, float64(l.i)-r.f
			} else if l.k == rkFloat && r.k == rkInt {
				l.f -= float64(r.i)
			} else {
				v, err := m.binOp(almanac.Instr{Op: almanac.OpSub, Line: in.Line}, l, r)
				if err != nil {
					return chunkResult{}, err
				}
				wrOpnd(in.Dst, v, regs, env, stf)
				break
			}
			wrOpnd(in.Dst, l, regs, env, stf)

		case almanac.RMul:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			if l.k == rkInt && r.k == rkInt {
				l.i *= r.i
			} else if l.k == rkFloat && r.k == rkFloat {
				l.f *= r.f
			} else if l.k == rkInt && r.k == rkFloat {
				l.k, l.f = rkFloat, float64(l.i)*r.f
			} else if l.k == rkFloat && r.k == rkInt {
				l.f *= float64(r.i)
			} else {
				v, err := m.binOp(almanac.Instr{Op: almanac.OpMul, Line: in.Line}, l, r)
				if err != nil {
					return chunkResult{}, err
				}
				wrOpnd(in.Dst, v, regs, env, stf)
				break
			}
			wrOpnd(in.Dst, l, regs, env, stf)

		case almanac.RDiv:
			// Division by zero falls to binOp for the shared error.
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			if l.k == rkInt && r.k == rkInt && r.i != 0 {
				l.i /= r.i
			} else if l.k == rkFloat && r.k == rkFloat && r.f != 0 {
				l.f /= r.f
			} else if l.k == rkInt && r.k == rkFloat && r.f != 0 {
				l.k, l.f = rkFloat, float64(l.i)/r.f
			} else if l.k == rkFloat && r.k == rkInt && r.i != 0 {
				l.f /= float64(r.i)
			} else {
				v, err := m.binOp(almanac.Instr{Op: almanac.OpDiv, Line: in.Line}, l, r)
				if err != nil {
					return chunkResult{}, err
				}
				wrOpnd(in.Dst, v, regs, env, stf)
				break
			}
			wrOpnd(in.Dst, l, regs, env, stf)

		case almanac.RLt:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			if l.k == rkInt && r.k == rkInt {
				setBoolR(&l, l.i < r.i)
			} else if l.k == rkFloat && r.k == rkFloat {
				setBoolR(&l, l.f < r.f)
			} else if l.k == rkInt && r.k == rkFloat {
				setBoolR(&l, float64(l.i) < r.f)
			} else if l.k == rkFloat && r.k == rkInt {
				setBoolR(&l, l.f < float64(r.i))
			} else {
				var err error
				if l, err = m.binOp(almanac.Instr{Op: almanac.OpLt, Line: in.Line}, l, r); err != nil {
					return chunkResult{}, err
				}
			}
			wrOpnd(in.Dst, l, regs, env, stf)

		case almanac.RLe:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			if l.k == rkInt && r.k == rkInt {
				setBoolR(&l, l.i <= r.i)
			} else if l.k == rkFloat && r.k == rkFloat {
				setBoolR(&l, l.f <= r.f)
			} else if l.k == rkInt && r.k == rkFloat {
				setBoolR(&l, float64(l.i) <= r.f)
			} else if l.k == rkFloat && r.k == rkInt {
				setBoolR(&l, l.f <= float64(r.i))
			} else {
				var err error
				if l, err = m.binOp(almanac.Instr{Op: almanac.OpLe, Line: in.Line}, l, r); err != nil {
					return chunkResult{}, err
				}
			}
			wrOpnd(in.Dst, l, regs, env, stf)

		case almanac.RGt:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			if l.k == rkInt && r.k == rkInt {
				setBoolR(&l, l.i > r.i)
			} else if l.k == rkFloat && r.k == rkFloat {
				setBoolR(&l, l.f > r.f)
			} else if l.k == rkInt && r.k == rkFloat {
				setBoolR(&l, float64(l.i) > r.f)
			} else if l.k == rkFloat && r.k == rkInt {
				setBoolR(&l, l.f > float64(r.i))
			} else {
				var err error
				if l, err = m.binOp(almanac.Instr{Op: almanac.OpGt, Line: in.Line}, l, r); err != nil {
					return chunkResult{}, err
				}
			}
			wrOpnd(in.Dst, l, regs, env, stf)

		case almanac.RGe:
			l := bases.rd(in.A)
			r := bases.rd(in.B)
			if l.k == rkInt && r.k == rkInt {
				setBoolR(&l, l.i >= r.i)
			} else if l.k == rkFloat && r.k == rkFloat {
				setBoolR(&l, l.f >= r.f)
			} else if l.k == rkInt && r.k == rkFloat {
				setBoolR(&l, float64(l.i) >= r.f)
			} else if l.k == rkFloat && r.k == rkInt {
				setBoolR(&l, l.f >= float64(r.i))
			} else {
				var err error
				if l, err = m.binOp(almanac.Instr{Op: almanac.OpGe, Line: in.Line}, l, r); err != nil {
					return chunkResult{}, err
				}
			}
			wrOpnd(in.Dst, l, regs, env, stf)

		case almanac.RTruthy:
			b, err := truthyR(bases.rd(in.A))
			if err != nil {
				return chunkResult{}, err
			}
			regs[in.Dst] = rbool(b)

		case almanac.RAndL:
			l := bases.rd(in.A)
			if l.k == rkRef {
				if _, ok := l.ref.(FilterVal); ok {
					regs[in.Dst] = l // leave the filter for RAndR
					break
				}
			}
			b, err := truthyR(l)
			if err != nil {
				return chunkResult{}, err
			}
			if !b {
				regs[in.Dst] = rbool(false)
				pc = int(in.B) - 1
				break
			}
			regs[in.Dst] = rval{k: rkMark}

		case almanac.RAndR:
			r := bases.rd(in.A)
			mark := regs[in.Dst]
			if mark.k == rkMark {
				b, err := truthyR(r)
				if err != nil {
					return chunkResult{}, err
				}
				regs[in.Dst] = rbool(b)
				break
			}
			lf := mark.ref.(FilterVal)
			rf, ok := r.ref.(FilterVal)
			if r.k != rkRef || !ok {
				return chunkResult{}, fmt.Errorf("core: filter and %s", typeNameR(r))
			}
			lc := almanac.FilterConst(lf.F)
			lc.PortAny = lf.PortAny
			rc := almanac.FilterConst(rf.F)
			rc.PortAny = rf.PortAny
			merged, err := almanac.MergeFilterConsts(lc, rc)
			if err != nil {
				return chunkResult{}, err
			}
			regs[in.Dst] = rref(FilterVal{F: merged.Filter, PortAny: merged.PortAny})

		case almanac.ROrL:
			b, err := truthyR(bases.rd(in.A))
			if err != nil {
				return chunkResult{}, err
			}
			if b {
				regs[in.Dst] = rbool(true)
				pc = int(in.B) - 1
			}

		case almanac.RField:
			x := bases.rd(in.A)
			if x.k == rkRef {
				if sv, ok := x.ref.(StructVal); ok {
					c := &m.fc[in.C]
					if c.l == sv.L {
						wrOpnd(in.Dst, unbox(sv.V[c.slot]), regs, env, stf)
						break
					}
					if i := sv.L.Index(p.Names[in.B]); i >= 0 {
						c.l, c.slot = sv.L, int32(i)
						wrOpnd(in.Dst, unbox(sv.V[i]), regs, env, stf)
						break
					}
					return chunkResult{}, fmt.Errorf("core: struct %s has no field %s (line %d)", sv.Type(), p.Names[in.B], in.Line)
				}
			}
			v, err := m.fieldOp(x, p.Names[in.B], in.Line)
			if err != nil {
				return chunkResult{}, err
			}
			wrOpnd(in.Dst, v, regs, env, stf)

		case almanac.RFilterAtom:
			v, err := filterAtomOp(bases.rd(in.A), p.Names[in.B], in.Line)
			if err != nil {
				return chunkResult{}, err
			}
			wrOpnd(in.Dst, v, regs, env, stf)

		case almanac.RFilterAny:
			wrOpnd(in.Dst, rref(FilterVal{PortAny: true}), regs, env, stf)

		case almanac.RStructLit:
			l := lp.layouts[in.A]
			n := len(l.Names)
			fields := make([]Value, n)
			for i := 0; i < n; i++ {
				fields[i] = regs[int(in.B)+i].box()
			}
			wrOpnd(in.Dst, rref(StructVal{L: l, V: fields}), regs, env, stf)

		case almanac.RListLit:
			n := int(in.B)
			out := make(List, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, regs[int(in.A)+i].box())
			}
			wrOpnd(in.Dst, rref(out), regs, env, stf)

		case almanac.RListLen:
			v := bases.rd(in.B)
			if l, ok := asListR(v); ok {
				wrOpnd(in.Dst, rint(int64(len(l))), regs, env, stf)
				break
			}
			m.nargs[0] = v
			res, err := m.bridgeB(in.A, m.nargs[:1], in.Line)
			if err != nil {
				return chunkResult{}, err
			}
			wrOpnd(in.Dst, res, regs, env, stf)

		case almanac.RListGet:
			lv := bases.rd(in.B)
			iv := bases.rd(in.C)
			if l, ok := asListR(lv); ok {
				if idx, ok2 := asFloatR(iv); ok2 {
					if i := int(idx); i >= 0 && i < len(l) {
						wrOpnd(in.Dst, unbox(l[i]), regs, env, stf)
						break
					}
				}
			}
			m.nargs[0], m.nargs[1] = lv, iv
			res, err := m.bridgeB(in.A, m.nargs[:2], in.Line)
			if err != nil {
				return chunkResult{}, err
			}
			wrOpnd(in.Dst, res, regs, env, stf)

		case almanac.RCallB, almanac.RCallB2:
			var argv []rval
			if in.Op == almanac.RCallB {
				argv = regs[in.B : in.B+in.C]
			} else {
				argc := 0
				if in.B >= 0 {
					m.nargs[0] = bases.rd(in.B)
					argc = 1
					if in.C >= 0 {
						m.nargs[1] = bases.rd(in.C)
						argc = 2
					}
				}
				argv = m.nargs[:argc]
			}
			if nf := lp.natives[in.A]; nf != nil {
				res, handled, err := nf(m.in, argv, in.Line)
				if err != nil {
					return chunkResult{}, err
				}
				if handled {
					wrOpnd(in.Dst, res, regs, env, stf)
					break
				}
			}
			// Bridge: box the arguments and run the shared builtin, so
			// every cold path and error string has a single source.
			m.scratch = m.scratch[:0]
			for _, a := range argv {
				m.scratch = append(m.scratch, a.box())
			}
			v, err := lp.bfns[in.A](m.in, m.scratch, int(in.Line))
			if err != nil {
				return chunkResult{}, err
			}
			wrOpnd(in.Dst, unbox(v), regs, env, stf)

		case almanac.RCallFn:
			fn := &p.Funcs[in.A]
			res, err := m.runChunk(fn.Chunk, regs[in.B:in.B+in.C])
			regs = m.regs[base : base+int(ch.NumRegs)] // callee may grow the arena
			bases[almanac.RClassReg] = regs
			if err != nil {
				return chunkResult{}, err
			}
			if res.kind == ctrlTransit {
				return chunkResult{}, fmt.Errorf("core: transit inside function %s is not allowed", fn.Name)
			}
			v := res.val
			if res.kind != ctrlReturn {
				v = rval{k: rkNil}
			}
			wrOpnd(in.Dst, v, regs, env, stf)

		case almanac.RStep:
			m.actions++

		case almanac.RSend:
			site := &p.Sends[in.A]
			dest := SendDest{Harvester: site.Harvester, Machine: site.Machine}
			if in.C >= 0 {
				d := bases.rd(in.C)
				if d.k != rkStr {
					return chunkResult{}, fmt.Errorf("core: send destination must be a string, got %s", typeNameR(d))
				}
				dest.Dst = d.asStr()
			}
			m.in.host.Send(dest, CloneValue(bases.rd(in.B).box()))

		case almanac.RSetIval:
			v := bases.rd(in.B)
			name := p.Names[in.A]
			ms, ok := asFloatR(v)
			if !ok || ms <= 0 {
				return chunkResult{}, fmt.Errorf("core: trigger %s.ival must be a positive number, got %s", name, FormatValue(v.box()))
			}
			m.in.host.SetTriggerInterval(name, ms)

		case almanac.RSetTrigger:
			v := bases.rd(in.B)
			name := p.Names[in.A]
			var sv StructVal
			ok := v.k == rkRef
			if ok {
				sv, ok = v.ref.(StructVal)
			}
			if !ok {
				return chunkResult{}, fmt.Errorf("core: trigger %s must be assigned a Poll/Probe value", name)
			}
			ivalV, ok := sv.Get("ival")
			if !ok {
				return chunkResult{}, fmt.Errorf("core: trigger %s reassignment needs .ival", name)
			}
			ms, ok := AsFloat(ivalV)
			if !ok || ms <= 0 {
				return chunkResult{}, fmt.Errorf("core: trigger %s.ival must be a positive number", name)
			}
			m.in.host.SetTriggerInterval(name, ms)

		case almanac.RFieldAssign:
			v := bases.rd(in.B)
			if err := m.fieldAssign(&p.FieldAssigns[in.A], regs[:ch.NumLocals], v); err != nil {
				return chunkResult{}, err
			}

		case almanac.RErr:
			return chunkResult{}, errors.New(p.Errs[in.A])

		default:
			return chunkResult{}, fmt.Errorf("core: rvm: unknown opcode %d", in.Op)
		}
	}
	return chunkResult{val: rval{k: rkNil}}, nil
}
