package core

import (
	"fmt"
	"time"

	"farm/internal/almanac"
	"farm/internal/dataplane"
	"farm/internal/netmodel"
)

// SendDest identifies a message destination from a seed's perspective.
type SendDest struct {
	Harvester bool
	Machine   string // target machine name when not harvester
	Dst       string // optional destination selector (switch name); "" = broadcast
}

// MsgSource identifies where a received message came from.
type MsgSource struct {
	Harvester bool
	Machine   string // sending machine name
	Switch    string // sending switch name ("" for harvester)
}

// Host is the seed's window onto its switch and network — implemented
// by the soil. All methods are called from the seed's event handlers on
// the simulation loop.
type Host interface {
	// Now returns the current (virtual) time.
	Now() time.Duration
	// Resources returns the seed's current resource allocation (res()).
	Resources() netmodel.Resources
	// AddTCAMRule installs a monitoring TCAM rule (local reaction).
	AddTCAMRule(r dataplane.Rule) error
	// RemoveTCAMRule removes the rule with exactly the given filter.
	RemoveTCAMRule(f dataplane.Filter) bool
	// GetTCAMRule fetches the rule with exactly the given filter.
	GetTCAMRule(f dataplane.Filter) (dataplane.Rule, bool)
	// Send delivers a value to the harvester or other seeds.
	Send(to SendDest, v Value)
	// SetTriggerInterval retunes a trigger variable's period (ms).
	SetTriggerInterval(trigger string, ivalMillis float64)
	// Exec runs external code (the ML task hook, List. 1's exec()).
	Exec(command string, arg Value) (Value, error)
	// Log records a diagnostic message.
	Log(format string, args ...any)
}

// Seed is a running instance of a compiled machine.
type Seed struct {
	machine *almanac.CompiledMachine
	host    Host

	env       map[string]Value            // machine-level variables
	stateVars map[string]map[string]Value // per-state locals
	state     string

	funcs   map[string]*almanac.FuncDecl
	structs map[string]*almanac.StructDecl

	started bool
	// actions counts executed statements since the last TakeActionCount;
	// the soil charges CPU cost proportionally.
	actions int
}

// NewSeed instantiates a machine with bound external variables.
// Externals must cover every external declaration; extra keys are
// rejected to catch typos at deploy time.
func NewSeed(cm *almanac.CompiledMachine, externals map[string]Value, host Host) (*Seed, error) {
	s := &Seed{
		machine:   cm,
		host:      host,
		env:       make(map[string]Value),
		stateVars: make(map[string]map[string]Value),
		state:     cm.InitialState,
		funcs:     make(map[string]*almanac.FuncDecl),
		structs:   make(map[string]*almanac.StructDecl),
	}
	for i := range cm.Funcs {
		s.funcs[cm.Funcs[i].Name] = &cm.Funcs[i]
	}
	for i := range cm.Structs {
		s.structs[cm.Structs[i].Name] = &cm.Structs[i]
	}

	extSeen := map[string]bool{}
	for _, v := range cm.Vars {
		var val Value
		if v.Init != nil {
			var err error
			val, err = s.eval(v.Init, nil)
			if err != nil {
				return nil, fmt.Errorf("core: %s: init of %s: %w", cm.Name, v.Name, err)
			}
		} else {
			val = zeroValue(v.Type)
		}
		if v.External {
			ext, ok := externals[v.Name]
			if ok {
				val = CloneValue(ext)
			} else if v.Init == nil {
				return nil, fmt.Errorf("core: %s: external variable %s not bound at deployment", cm.Name, v.Name)
			}
			extSeen[v.Name] = true
		}
		s.env[v.Name] = val
	}
	for name := range externals {
		if !extSeen[name] {
			return nil, fmt.Errorf("core: %s: unknown external variable %s", cm.Name, name)
		}
	}
	// State locals are initialized once, up front; they persist across
	// transitions like the machine's own state does.
	for _, st := range cm.States {
		locals := make(map[string]Value)
		for _, v := range st.Vars {
			if v.Init != nil {
				val, err := s.eval(v.Init, nil)
				if err != nil {
					return nil, fmt.Errorf("core: %s: state %s: init of %s: %w", cm.Name, st.Name, v.Name, err)
				}
				locals[v.Name] = val
			} else {
				locals[v.Name] = zeroValue(v.Type)
			}
		}
		s.stateVars[st.Name] = locals
	}
	return s, nil
}

func zeroValue(t almanac.Type) Value {
	switch t {
	case almanac.TBool:
		return false
	case almanac.TInt, almanac.TLong:
		return int64(0)
	case almanac.TFloat:
		return float64(0)
	case almanac.TString:
		return ""
	case almanac.TList:
		return List(nil)
	case almanac.TMap:
		return MapVal{}
	case almanac.TFilter:
		return FilterVal{}
	case almanac.TAction:
		return ActionVal(dataplane.ActAllow)
	case almanac.TPacket:
		return PacketVal{}
	default:
		return nil
	}
}

// Machine returns the seed's compiled machine.
func (s *Seed) Machine() *almanac.CompiledMachine { return s.machine }

// State returns the current state name.
func (s *Seed) State() string { return s.state }

// Var reads a machine-level variable (tests and harvesters' debugging).
func (s *Seed) Var(name string) (Value, bool) {
	v, ok := s.env[name]
	return v, ok
}

// TakeActionCount returns the number of Almanac actions executed since
// the previous call and resets the counter. The soil uses it for CPU
// cost accounting.
func (s *Seed) TakeActionCount() int {
	n := s.actions
	s.actions = 0
	return n
}

// Start fires the initial state's enter event.
func (s *Seed) Start() error {
	if s.started {
		return fmt.Errorf("core: seed %s already started", s.machine.Name)
	}
	s.started = true
	return s.fire(almanac.TrigOnEnter, nil, MsgSource{}, nil)
}

// HandleTrigger delivers a trigger-variable firing (poll result, probe
// packet, or time tick) to the current state.
func (s *Seed) HandleTrigger(varName string, data Value) error {
	st, ok := s.machine.State(s.state)
	if !ok {
		return fmt.Errorf("core: seed %s in unknown state %s", s.machine.Name, s.state)
	}
	for i := range st.Events {
		ev := &st.Events[i]
		if ev.Trigger.Kind == almanac.TrigOnVar && ev.Trigger.VarName == varName {
			bind := map[string]Value{}
			if ev.Trigger.AsName != "" {
				bind[ev.Trigger.AsName] = data
			}
			return s.runBody(ev, bind)
		}
	}
	return nil // no handler in this state: the event is simply ignored
}

// HandleRecv delivers a message. The first recv event in the current
// state whose pattern (type and source) matches consumes it; a
// non-matching message is dropped, following the pattern-matching
// semantics of §III-A-c.
func (s *Seed) HandleRecv(from MsgSource, v Value) error {
	st, ok := s.machine.State(s.state)
	if !ok {
		return fmt.Errorf("core: seed %s in unknown state %s", s.machine.Name, s.state)
	}
	for i := range st.Events {
		ev := &st.Events[i]
		if ev.Trigger.Kind != almanac.TrigOnRecv {
			continue
		}
		if !recvMatches(ev.Trigger, from, v) {
			continue
		}
		bind := map[string]Value{ev.Trigger.RecvVar: CloneValue(v)}
		return s.runBody(ev, bind)
	}
	return nil
}

// HandleRealloc fires the realloc event after a placement
// re-optimization changed the seed's resources (§III-A-c).
func (s *Seed) HandleRealloc() error {
	return s.fire(almanac.TrigOnRealloc, nil, MsgSource{}, nil)
}

func recvMatches(trg almanac.EventTrigger, from MsgSource, v Value) bool {
	if trg.FromHarvester && !from.Harvester {
		return false
	}
	if trg.FromMachine != "" && trg.FromMachine != from.Machine {
		return false
	}
	switch trg.RecvType {
	case almanac.TUnknown:
		return true
	case almanac.TInt, almanac.TLong:
		_, ok := v.(int64)
		return ok
	case almanac.TFloat:
		_, ok := v.(float64)
		return ok
	case almanac.TBool:
		_, ok := v.(bool)
		return ok
	case almanac.TString:
		_, ok := v.(string)
		return ok
	case almanac.TList:
		_, ok := v.(List)
		return ok
	case almanac.TMap:
		_, ok := v.(MapVal)
		return ok
	case almanac.TFilter:
		_, ok := v.(FilterVal)
		return ok
	case almanac.TAction:
		_, ok := v.(ActionVal)
		return ok
	case almanac.TPacket:
		_, ok := v.(PacketVal)
		return ok
	case almanac.TStruct:
		sv, ok := v.(StructVal)
		return ok && (trg.RecvTypeName == "" || sv.Type() == trg.RecvTypeName)
	}
	return false
}

// fire runs the handler for a parameterless trigger kind in the current
// state, if declared.
func (s *Seed) fire(kind almanac.TriggerKind, _ Value, _ MsgSource, bind map[string]Value) error {
	st, ok := s.machine.State(s.state)
	if !ok {
		return fmt.Errorf("core: seed %s in unknown state %s", s.machine.Name, s.state)
	}
	for i := range st.Events {
		ev := &st.Events[i]
		if ev.Trigger.Kind == kind {
			return s.runBody(ev, bind)
		}
	}
	return nil
}

// maxTransitChain bounds enter/exit cascades so a buggy machine cannot
// loop the soil forever.
const maxTransitChain = 64

func (s *Seed) runBody(ev *almanac.EventDecl, bind map[string]Value) error {
	return s.runStmtsWithTransit(ev.Body, bind, 0)
}

func (s *Seed) runStmtsWithTransit(body []almanac.Stmt, bind map[string]Value, depth int) error {
	if depth > maxTransitChain {
		return fmt.Errorf("core: seed %s: transition chain exceeds %d (state-machine loop?)", s.machine.Name, maxTransitChain)
	}
	scope := newScope(s, bind)
	res, err := s.exec(body, scope)
	if err != nil {
		return err
	}
	if res.kind == ctrlTransit {
		return s.transitionTo(res.transit, depth+1)
	}
	return nil
}

func (s *Seed) transitionTo(target string, depth int) error {
	if _, ok := s.machine.State(target); !ok {
		return fmt.Errorf("core: seed %s: transit to unknown state %s", s.machine.Name, target)
	}
	// Exit events of the old state run first (still in the old state).
	st, _ := s.machine.State(s.state)
	for i := range st.Events {
		ev := &st.Events[i]
		if ev.Trigger.Kind == almanac.TrigOnExit {
			scope := newScope(s, nil)
			res, err := s.exec(ev.Body, scope)
			if err != nil {
				return err
			}
			if res.kind == ctrlTransit {
				return fmt.Errorf("core: seed %s: transit inside exit handler is not allowed", s.machine.Name)
			}
			break
		}
	}
	s.state = target
	// Enter events of the new state.
	newSt, _ := s.machine.State(target)
	for i := range newSt.Events {
		ev := &newSt.Events[i]
		if ev.Trigger.Kind == almanac.TrigOnEnter {
			return s.runStmtsWithTransit(ev.Body, nil, depth)
		}
	}
	return nil
}

// --- Migration snapshot (§IV-B-a, §V-B) ---

// Snapshot is a seed's full mutable state, transferable to another
// switch during migration. Values are deep copies.
type Snapshot struct {
	Machine   string
	State     string
	Env       map[string]Value
	StateVars map[string]map[string]Value
}

// Snapshot captures the seed's current state for migration.
func (s *Seed) Snapshot() Snapshot {
	env := make(map[string]Value, len(s.env))
	for k, v := range s.env {
		env[k] = CloneValue(v)
	}
	sv := make(map[string]map[string]Value, len(s.stateVars))
	for st, vars := range s.stateVars {
		m := make(map[string]Value, len(vars))
		for k, v := range vars {
			m[k] = CloneValue(v)
		}
		sv[st] = m
	}
	return Snapshot{Machine: s.machine.Name, State: s.state, Env: env, StateVars: sv}
}

// Restore loads a snapshot into a freshly created seed (same machine).
// Execution resumes in the snapshot's state without re-firing its enter
// event — the seed continues, it does not restart (§V-B).
func (s *Seed) Restore(snap Snapshot) error {
	if snap.Machine != s.machine.Name {
		return fmt.Errorf("core: snapshot of %s cannot restore into %s", snap.Machine, s.machine.Name)
	}
	if _, ok := s.machine.State(snap.State); !ok {
		return fmt.Errorf("core: snapshot state %s unknown", snap.State)
	}
	for k, v := range snap.Env {
		if _, ok := s.env[k]; !ok {
			return fmt.Errorf("core: snapshot variable %s unknown", k)
		}
		s.env[k] = CloneValue(v)
	}
	for st, vars := range snap.StateVars {
		dst, ok := s.stateVars[st]
		if !ok {
			return fmt.Errorf("core: snapshot state %s unknown", st)
		}
		for k, v := range vars {
			dst[k] = CloneValue(v)
		}
	}
	s.state = snap.State
	s.started = true
	return nil
}
