package core

import (
	"sync"

	"farm/internal/almanac"
)

// Backend selects the execution engine for a deployed machine. The
// register VM is the zero value and the default; the stack VM and the
// AST interpreter remain available for A/B comparison and as the
// semantic reference. All three are cross-restorable: a Snapshot taken
// on any back end restores into any other.
type Backend int

const (
	BackendRegister Backend = iota // register VM over fixed record layouts
	BackendStack                   // stack bytecode VM
	BackendInterp                  // AST interpreter (semantic reference)
)

// String names a backend the way experiment output and bench artifacts
// spell it.
func (b Backend) String() string {
	switch b {
	case BackendRegister:
		return "register"
	case BackendStack:
		return "stack"
	default:
		return "interpreted"
	}
}

// Runner is a deployed machine instance: the AST interpreter (*Seed),
// the stack VM (*vmSeed), or the register VM (*rvmSeed). Soil programs
// against this so the back end can be swapped per deployment.
type Runner interface {
	Machine() *almanac.CompiledMachine
	State() string
	Var(name string) (Value, bool)
	TakeActionCount() int
	Start() error
	HandleTrigger(varName string, data Value) error
	HandleRecv(from MsgSource, v Value) error
	HandleRealloc() error
	Snapshot() Snapshot
	Restore(snap Snapshot) error
}

var (
	_ Runner = (*Seed)(nil)
	_ Runner = (*vmSeed)(nil)
	_ Runner = (*rvmSeed)(nil)
)

// linkedLowered is a Lowered program resolved against this package's
// runtime: literals pre-unboxed, name->index maps for dispatch and
// snapshots, and builtin name slots bound to their implementations
// (plus native unboxed fast paths where we have them).
type linkedLowered struct {
	p        *almanac.Lowered
	lits     []rval
	trigIdx  map[string]int32
	stateIdx map[string]int32
	envIdx   map[string]int32
	svIdx    []map[string]int32
	bfns     []builtinFn
	natives  []nativeFn
	// layouts[i] is the interned record layout for struct site
	// p.Structs[i]: struct literals become a layout pointer plus a flat
	// field slice, no per-record map.
	layouts []*Layout
}

func link(p *almanac.Lowered) *linkedLowered {
	lp := &linkedLowered{p: p}
	lp.lits = make([]rval, len(p.Lits))
	for i, l := range p.Lits {
		switch l.Kind {
		case almanac.LitInt:
			lp.lits[i] = rint(l.I)
		case almanac.LitFloat:
			lp.lits[i] = rfloat(l.F)
		case almanac.LitBool:
			lp.lits[i] = rbool(l.B)
		default:
			lp.lits[i] = rstr(l.S)
		}
	}
	lp.trigIdx = make(map[string]int32, len(p.TriggerNames))
	for i, n := range p.TriggerNames {
		lp.trigIdx[n] = int32(i)
	}
	lp.stateIdx = make(map[string]int32, len(p.States))
	lp.svIdx = make([]map[string]int32, len(p.States))
	for si := range p.States {
		lp.stateIdx[p.States[si].Name] = int32(si)
		idx := make(map[string]int32, len(p.States[si].Slots))
		for vi, s := range p.States[si].Slots {
			idx[s.Name] = int32(vi)
		}
		lp.svIdx[si] = idx
	}
	lp.envIdx = make(map[string]int32, len(p.EnvSlots))
	for i, s := range p.EnvSlots {
		lp.envIdx[s.Name] = int32(i)
	}
	lp.bfns = make([]builtinFn, len(p.Names))
	lp.natives = make([]nativeFn, len(p.Names))
	for i, n := range p.Names {
		if fn, ok := builtins[n]; ok {
			lp.bfns[i] = fn
			lp.natives[i] = vmNatives[n]
		}
	}
	lp.layouts = make([]*Layout, len(p.Structs))
	for i := range p.Structs {
		lp.layouts[i] = LayoutOf(p.Structs[i].TypeName, p.Structs[i].Fields)
	}
	return lp
}

// lowerCache memoizes lowering+linking per compiled machine, so a
// fabric deploying the same machine onto hundreds of switches lowers
// it once.
var lowerCache sync.Map // *almanac.CompiledMachine -> *lowerResult

type lowerResult struct {
	lp  *linkedLowered
	err error
}

func linkedProgram(cm *almanac.CompiledMachine) (*linkedLowered, error) {
	if r, ok := lowerCache.Load(cm); ok {
		res := r.(*lowerResult)
		return res.lp, res.err
	}
	res := &lowerResult{}
	p, err := almanac.Lower(cm, BuiltinNames())
	if err != nil {
		res.err = err
	} else {
		res.lp = link(p)
	}
	lowerCache.Store(cm, res)
	return res.lp, res.err
}

// NewRunner deploys a machine on the requested back end. The register
// VM is the default; BackendInterp forces the AST walker. If lowering
// fails (it should not for any sema-accepted program), the interpreter
// is used as a fallback rather than failing the deployment.
func NewRunner(cm *almanac.CompiledMachine, externals map[string]Value, host Host, be Backend) (Runner, error) {
	if be != BackendInterp {
		if lp, err := linkedProgram(cm); err == nil {
			if be == BackendStack {
				return newVMSeed(cm, externals, host, lp)
			}
			return newRVMSeed(cm, externals, host, lp)
		}
	}
	return NewSeed(cm, externals, host)
}
