package core

import (
	"strings"
	"testing"

	"farm/internal/almanac"
)

// runSnippet wraps a statement block into a machine's enter handler,
// runs it, and returns the seed for inspection.
func runSnippet(t *testing.T, decls, body string) (*Seed, error) {
	t.Helper()
	src := `
machine T {
  place all;
  ` + decls + `
  state s {
    when (enter) do {
      ` + body + `
    }
  }
  state other {
    when (enter) do { }
  }
}
`
	prog, err := almanac.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	cm, err := almanac.CompileMachine(prog, "T")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s, err := NewSeed(cm, nil, newMockHost())
	if err != nil {
		t.Fatalf("new seed: %v", err)
	}
	return s, s.Start()
}

func TestInterpreterSnippets(t *testing.T) {
	cases := []struct {
		name   string
		decls  string
		body   string
		check  map[string]string // var -> expected FormatValue
		errSub string            // expected runtime error substring ("" = none)
	}{
		{
			name:  "integer arithmetic",
			decls: "long a; long b;",
			body:  "a = 7 * 6 - 2; b = a / 4;",
			check: map[string]string{"a": "40", "b": "10"},
		},
		{
			name:  "float promotion",
			decls: "float f;",
			body:  "f = 3 / 2.0;",
			check: map[string]string{"f": "1.5"},
		},
		{
			name:   "division by zero",
			decls:  "long a;",
			body:   "a = 1 / 0;",
			errSub: "division by zero",
		},
		{
			name:  "string concat and compare",
			decls: "string s; bool eq;",
			body:  `s = "a" + "b"; eq = s == "ab";`,
			check: map[string]string{"s": `"ab"`, "eq": "true"},
		},
		{
			name:  "list concat and helpers",
			decls: "list l; long n; bool has;",
			body:  "l = [1, 2] + [3]; n = list_len(l); has = list_contains(l, 3);",
			check: map[string]string{"l": "[1, 2, 3]", "n": "3", "has": "true"},
		},
		{
			name:  "map operations",
			decls: "map m; long v; long missing; long sz;",
			body: `m = map_set(m, "k", 5); v = map_get(m, "k", 0);
			       missing = map_get(m, "nope", 42); sz = map_len(m);`,
			check: map[string]string{"v": "5", "missing": "42", "sz": "1"},
		},
		{
			name:  "while with condition",
			decls: "long sum; long i;",
			body:  "i = 1; while (i <= 10) { sum = sum + i; i = i + 1; }",
			check: map[string]string{"sum": "55"},
		},
		{
			name:  "if else chains",
			decls: "long x; string cls;",
			body: `x = 7;
			       if (x > 10) then { cls = "big"; }
			       else if (x > 5) then { cls = "mid"; }
			       else { cls = "small"; }`,
			check: map[string]string{"cls": `"mid"`},
		},
		{
			name:  "short circuit and/or",
			decls: "bool a; bool b;",
			body:  "a = false and (1 / 0 == 1); b = true or (1 / 0 == 1);",
			check: map[string]string{"a": "false", "b": "true"},
		},
		{
			name:  "not and comparisons",
			decls: "bool a; bool b; bool c;",
			body:  "a = not (1 > 2); b = 3 <> 4; c = 2 <= 2;",
			check: map[string]string{"a": "true", "b": "true", "c": "true"},
		},
		{
			name:  "math builtins",
			decls: "long mn; long mx; long ab; long fl;",
			body:  "mn = min(3, 1, 2); mx = max(3, 1, 2); ab = abs(0 - 9); fl = floor(3.9);",
			check: map[string]string{"mn": "1", "mx": "3", "ab": "9", "fl": "3"},
		},
		{
			name:  "struct literal and field assignment",
			decls: "long out;",
			body: `Pair p = Pair { .a = 1, .b = 2 };
			       p.a = 10;
			       out = p.a + p.b;`,
			check: map[string]string{"out": "12"},
		},
		{
			name:  "filter values",
			decls: "filter f; bool removed;",
			body: `f = dstPort 80 and proto "tcp";
			       addTCAMRule(f, drop(), 5);
			       removed = removeTCAMRule(f);`,
			check: map[string]string{"removed": "true"},
		},
		{
			name:  "sketch roundtrip",
			decls: "list sk; long c;",
			body: `sk = sketch_new(64, 3);
			       sketch_add(sk, "k", 5);
			       sketch_add(sk, "k", 2);
			       c = sketch_count(sk, "k");`,
			check: map[string]string{"c": "7"},
		},
		{
			name:  "distinct estimate",
			decls: "list d; float est;",
			body: `d = distinct_new(1024);
			       distinct_add(d, "a"); distinct_add(d, "b"); distinct_add(d, "a");
			       est = distinct_estimate(d);`,
			// ~2 expected; exact value depends on the estimator, so just
			// range-check below.
		},
		{
			name:   "undeclared variable",
			decls:  "",
			body:   "nosuch = 1;",
			errSub: "undeclared variable",
		},
		{
			name:   "unknown function",
			decls:  "long a;",
			body:   "a = frobnicate(1);",
			errSub: "unknown function",
		},
		{
			name:   "list_get out of range",
			decls:  "long a;",
			body:   "a = list_get([1], 5);",
			errSub: "out of range",
		},
		{
			name:  "str rendering",
			decls: "string s;",
			body:  "s = str(42);",
			check: map[string]string{"s": `"42"`},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seed, err := runSnippetWithStructs(t, c.decls, c.body)
			if c.errSub != "" {
				if err == nil || !strings.Contains(err.Error(), c.errSub) {
					t.Fatalf("err = %v, want substring %q", err, c.errSub)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			for name, want := range c.check {
				v, ok := seed.Var(name)
				if !ok {
					t.Fatalf("variable %s missing", name)
				}
				if got := FormatValue(v); got != want {
					t.Fatalf("%s = %s, want %s", name, got, want)
				}
			}
			if c.name == "distinct estimate" {
				v, _ := seed.Var("est")
				f, ok := AsFloat(v)
				if !ok || f < 1 || f > 4 {
					t.Fatalf("est = %v, want ~2", v)
				}
			}
		})
	}
}

func runSnippetWithStructs(t *testing.T, decls, body string) (*Seed, error) {
	t.Helper()
	src := `
struct Pair { long a; long b; }
machine T {
  place all;
  ` + decls + `
  state s {
    when (enter) do {
      ` + body + `
    }
  }
}
`
	prog, err := almanac.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	cm, err := almanac.CompileMachine(prog, "T")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s, err := NewSeed(cm, nil, newMockHost())
	if err != nil {
		t.Fatalf("new seed: %v", err)
	}
	return s, s.Start()
}

func TestRunSnippetHelperTransits(t *testing.T) {
	s, err := runSnippet(t, "long x;", "x = 1; transit other;")
	if err != nil {
		t.Fatal(err)
	}
	if s.State() != "other" {
		t.Fatalf("state = %s", s.State())
	}
}
