package traffic

import (
	"testing"
	"time"

	"farm/internal/dataplane"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
)

func testFabric(t *testing.T, spines, leaves, hosts int) *fabric.Fabric {
	t.Helper()
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{Spines: spines, Leaves: leaves, HostsPerLeaf: hosts})
	if err != nil {
		t.Fatal(err)
	}
	return fabric.New(topo, engine.NewSerial(), fabric.Options{})
}

func TestStartFlowRate(t *testing.T) {
	fab := testFabric(t, 1, 2, 1)
	g := NewGenerator(fab, 1)
	stop := g.StartFlow(FlowSpec{
		Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
		SrcPort: 1, DstPort: 80, Proto: dataplane.ProtoTCP,
		PacketSize: 100, Rate: 1000,
	})
	fab.Sched().RunFor(100 * time.Millisecond)
	stop()
	// 1000 pkt/s for 100 ms = ~100 packets (jittered).
	if d := fab.Delivered(); d < 80 || d > 120 {
		t.Fatalf("delivered = %d, want ~100", d)
	}
	n := fab.Delivered()
	fab.Sched().RunFor(100 * time.Millisecond)
	if fab.Delivered() > n+1 {
		t.Fatal("flow kept sending after stop")
	}
}

func TestBurst(t *testing.T) {
	fab := testFabric(t, 1, 2, 1)
	g := NewGenerator(fab, 1)
	g.Burst(FlowSpec{
		Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
		SrcPort: 1, DstPort: 80, Proto: dataplane.ProtoTCP,
		PacketSize: 100, Rate: 1,
	}, 25)
	fab.Sched().RunFor(time.Millisecond)
	if fab.Delivered() != 25 {
		t.Fatalf("delivered = %d, want 25", fab.Delivered())
	}
}

func TestSYNFlood(t *testing.T) {
	fab := testFabric(t, 1, 3, 4)
	g := NewGenerator(fab, 2)
	target := fabric.HostIP(0, 0)
	stop := g.SYNFlood(target, 8, 4000)
	fab.Sched().RunFor(50 * time.Millisecond)
	stop()
	// The target's leaf saw SYNs to the victim.
	host, _ := fab.Topology().HostByIP(target)
	port, _ := fab.HostPort(host.Leaf, host.ID)
	st, _ := fab.Switch(host.Leaf).PortStats(port)
	if st.TxPackets < 100 {
		t.Fatalf("victim port saw %d packets, want >= 100", st.TxPackets)
	}
}

func TestPortScanAdvancesPorts(t *testing.T) {
	fab := testFabric(t, 1, 2, 1)
	g := NewGenerator(fab, 3)
	seen := map[uint16]bool{}
	dstHost, _ := fab.Topology().HostByIP(fabric.HostIP(1, 0))
	fab.Switch(dstHost.Leaf).AddSampler(dataplane.Filter{}, 1, func(p dataplane.Packet) {
		seen[p.DstPort] = true
	})
	stop := g.PortScan(fabric.HostIP(0, 0), fabric.HostIP(1, 0), 1000)
	fab.Sched().RunFor(50 * time.Millisecond)
	stop()
	if len(seen) < 40 {
		t.Fatalf("scanned %d distinct ports, want >= 40", len(seen))
	}
}

func TestSuperSpreaderFanout(t *testing.T) {
	fab := testFabric(t, 1, 4, 4)
	g := NewGenerator(fab, 4)
	src := fabric.HostIP(0, 0)
	dsts := map[string]bool{}
	for _, s := range fab.Topology().Switches() {
		if s.Role != netmodel.Leaf {
			continue
		}
		fab.Switch(s.ID).AddSampler(dataplane.Filter{}, 1, func(p dataplane.Packet) {
			if p.SrcIP == src {
				dsts[p.DstIP.String()] = true
			}
		})
	}
	stop := g.SuperSpreader(src, 10, 2000)
	fab.Sched().RunFor(50 * time.Millisecond)
	stop()
	if len(dsts) < 10 {
		t.Fatalf("spreader reached %d destinations, want >= 10", len(dsts))
	}
}

func TestDNSReflectionMarksResponses(t *testing.T) {
	fab := testFabric(t, 1, 2, 2)
	g := NewGenerator(fab, 5)
	victim := fabric.HostIP(0, 0)
	var dnsSeen int
	host, _ := fab.Topology().HostByIP(victim)
	fab.Switch(host.Leaf).AddSampler(dataplane.Filter{}, 1, func(p dataplane.Packet) {
		if p.DstIP == victim && p.App.Kind == dataplane.AppDNS && p.App.DNSResponse {
			dnsSeen++
		}
	})
	stop := g.DNSReflection(victim, 4, 2000)
	fab.Sched().RunFor(50 * time.Millisecond)
	stop()
	if dnsSeen < 50 {
		t.Fatalf("saw %d DNS responses, want >= 50", dnsSeen)
	}
}

func TestSSHBruteForceFlags(t *testing.T) {
	fab := testFabric(t, 1, 2, 1)
	g := NewGenerator(fab, 6)
	var fails int
	dst := fabric.HostIP(1, 0)
	host, _ := fab.Topology().HostByIP(dst)
	fab.Switch(host.Leaf).AddSampler(dataplane.Filter{DstPort: 22}, 1, func(p dataplane.Packet) {
		if p.App.SSHAuthFail {
			fails++
		}
	})
	stop := g.SSHBruteForce(fabric.HostIP(0, 0), dst, 1000)
	fab.Sched().RunFor(50 * time.Millisecond)
	stop()
	if fails < 40 {
		t.Fatalf("saw %d failed auths, want >= 40", fails)
	}
}

func TestSlowloris(t *testing.T) {
	fab := testFabric(t, 1, 2, 4)
	g := NewGenerator(fab, 7)
	dst := fabric.HostIP(1, 0)
	partial := 0
	host, _ := fab.Topology().HostByIP(dst)
	fab.Switch(host.Leaf).AddSampler(dataplane.Filter{DstPort: 80}, 1, func(p dataplane.Packet) {
		if p.App.HTTPPartial {
			partial++
		}
	})
	stop := g.Slowloris(dst, 10, 100)
	fab.Sched().RunFor(100 * time.Millisecond)
	stop()
	if partial < 50 {
		t.Fatalf("saw %d partial requests, want >= 50", partial)
	}
}

func TestBulkWorkloadDrivesCounters(t *testing.T) {
	fab := testFabric(t, 1, 2, 4)
	w := NewBulkWorkload(fab, BulkConfig{
		Tick: time.Millisecond, BaseRate: 1e5, HeavyRate: 1e8,
		HeavyRatio: 0.25, Seed: 1,
	})
	if w.NumPorts() != 8 {
		t.Fatalf("driven ports = %d, want 8", w.NumPorts())
	}
	heavy := w.HeavyPorts()
	if len(heavy) != 2 {
		t.Fatalf("heavy ports = %d, want 2 (25%% of 8)", len(heavy))
	}
	fab.Sched().RunFor(100 * time.Millisecond)
	w.Stop()
	// Heavy ports must accumulate ~1000x the bytes of base ports.
	heavySet := map[[2]int]bool{}
	for _, h := range heavy {
		heavySet[[2]int{int(h.Switch), h.Port}] = true
	}
	for _, h := range fab.Topology().Hosts() {
		port, _ := fab.HostPort(h.Leaf, h.ID)
		st, _ := fab.Switch(h.Leaf).PortStats(port)
		isHeavy := heavySet[[2]int{int(h.Leaf), port}]
		if isHeavy && st.TxBytes < 5e6 {
			t.Fatalf("heavy port %v/%d only %d bytes", h.Leaf, port, st.TxBytes)
		}
		if !isHeavy && st.TxBytes > 1e5 {
			t.Fatalf("base port %v/%d has %d bytes", h.Leaf, port, st.TxBytes)
		}
	}
}

func TestBulkWorkloadChurn(t *testing.T) {
	fab := testFabric(t, 1, 4, 8)
	w := NewBulkWorkload(fab, BulkConfig{
		Tick: 10 * time.Millisecond, HeavyRatio: 0.25,
		Churn: 50 * time.Millisecond, Seed: 2,
	})
	before := w.HeavyPorts()
	fab.Sched().RunFor(300 * time.Millisecond)
	after := w.HeavyPorts()
	w.Stop()
	if len(before) != len(after) {
		t.Fatalf("heavy count changed: %d -> %d", len(before), len(after))
	}
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("churn did not re-pick the heavy set")
	}
}

func TestStartFlowPanicsOnBadRate(t *testing.T) {
	fab := testFabric(t, 1, 1, 1)
	g := NewGenerator(fab, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.StartFlow(FlowSpec{Rate: 0})
}
