// Package traffic generates workloads for the emulated data center:
// per-packet flows, the attack patterns behind the Tab. I use cases, and
// bulk counter-credit workloads that scale to thousands of ports.
//
// This substitutes for the production SAP traffic the paper evaluates
// against. The evaluation parameterizes workloads by heavy-hitter ratio,
// churn rate, and flow counts (§VI-B); the generators expose exactly
// those knobs, seeded deterministically for reproducible runs.
package traffic

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"farm/internal/dataplane"
	"farm/internal/fabric"
	"farm/internal/netmodel"
	"farm/internal/simclock"
)

// FlowSpec describes one generated flow.
type FlowSpec struct {
	Src, Dst   netip.Addr
	SrcPort    uint16
	DstPort    uint16
	Proto      dataplane.Proto
	Flags      dataplane.TCPFlags
	PacketSize int
	Rate       float64 // packets per second
	App        dataplane.AppInfo
}

func (s FlowSpec) packet() dataplane.Packet {
	return dataplane.Packet{
		SrcIP: s.Src, DstIP: s.Dst,
		SrcPort: s.SrcPort, DstPort: s.DstPort,
		Proto: s.Proto, Flags: s.Flags,
		Size: s.PacketSize, App: s.App,
	}
}

// Generator drives workloads onto a fabric. Seeded deterministically:
// the same seed yields the same packet sequence.
type Generator struct {
	fab  *fabric.Fabric
	loop *simclock.Loop
	rng  *rand.Rand
}

// NewGenerator returns a generator over the fabric.
func NewGenerator(fab *fabric.Fabric, seed int64) *Generator {
	return &Generator{fab: fab, loop: fab.Loop(), rng: rand.New(rand.NewSource(seed))}
}

// Rand exposes the generator's deterministic source for scenario code.
func (g *Generator) Rand() *rand.Rand { return g.rng }

// StartFlow emits spec's packets until stop is called, at the given
// mean rate with uniform +/-50% inter-packet jitter. The jitter (and a
// random start phase) keeps concurrent flows interleaving like real
// traffic; strictly periodic flows would alias with periodic samplers
// and rate limiters.
func (g *Generator) StartFlow(spec FlowSpec) (stop func()) {
	if spec.Rate <= 0 {
		panic(fmt.Sprintf("traffic: flow rate must be positive, got %g", spec.Rate))
	}
	interval := float64(time.Second) / spec.Rate
	stopped := false
	var emit func()
	schedule := func(scale float64) {
		d := time.Duration(interval * scale)
		if d <= 0 {
			d = time.Nanosecond
		}
		g.loop.After(d, emit)
	}
	emit = func() {
		if stopped {
			return
		}
		_ = g.fab.Send(spec.packet())
		schedule(0.5 + g.rng.Float64())
	}
	schedule(g.rng.Float64()) // random start phase
	return func() { stopped = true }
}

// Burst sends n packets of the flow immediately.
func (g *Generator) Burst(spec FlowSpec, n int) {
	for i := 0; i < n; i++ {
		_ = g.fab.Send(spec.packet())
	}
}

// --- Attack / scenario generators (Tab. I workloads) ---

// SYNFlood floods target with TCP SYNs from nSources spoofed hosts at
// the aggregate rate. The sources are picked from existing hosts so the
// packets route.
func (g *Generator) SYNFlood(target netip.Addr, nSources int, rate float64) (stop func()) {
	hosts := g.fab.Topology().Hosts()
	specs := make([]FlowSpec, 0, nSources)
	for i := 0; i < nSources; i++ {
		src := hosts[g.rng.Intn(len(hosts))].IP
		if src == target {
			continue
		}
		specs = append(specs, FlowSpec{
			Src: src, Dst: target,
			SrcPort: uint16(g.rng.Intn(60000) + 1024), DstPort: 80,
			Proto: dataplane.ProtoTCP, Flags: dataplane.FlagSYN,
			PacketSize: 60, Rate: rate / float64(nSources),
		})
	}
	return g.startAll(specs)
}

// PortScan probes sequential destination ports on target from src.
func (g *Generator) PortScan(src, target netip.Addr, portsPerSec float64) (stop func()) {
	next := uint16(1)
	interval := time.Duration(float64(time.Second) / portsPerSec)
	tk := g.loop.Every(interval, func() {
		_ = g.fab.Send(dataplane.Packet{
			SrcIP: src, DstIP: target,
			SrcPort: 40000, DstPort: next,
			Proto: dataplane.ProtoTCP, Flags: dataplane.FlagSYN, Size: 60,
		})
		next++
		if next == 0 {
			next = 1
		}
	})
	return tk.Stop
}

// SuperSpreader has src contact fanout distinct destinations at rate
// connections/s (one SYN each, to port 443).
func (g *Generator) SuperSpreader(src netip.Addr, fanout int, rate float64) (stop func()) {
	hosts := g.fab.Topology().Hosts()
	dsts := make([]netip.Addr, 0, fanout)
	for _, h := range g.rng.Perm(len(hosts)) {
		ip := hosts[h].IP
		if ip != src {
			dsts = append(dsts, ip)
		}
		if len(dsts) == fanout {
			break
		}
	}
	i := 0
	interval := time.Duration(float64(time.Second) / rate)
	tk := g.loop.Every(interval, func() {
		// Random destination order: real spreaders do not round-robin
		// in lockstep with samplers.
		dst := dsts[g.rng.Intn(len(dsts))]
		_ = g.fab.Send(dataplane.Packet{
			SrcIP: src, DstIP: dst,
			SrcPort: uint16(30000 + i%1000), DstPort: 443,
			Proto: dataplane.ProtoTCP, Flags: dataplane.FlagSYN, Size: 60,
		})
		i++
	})
	return tk.Stop
}

// DNSReflection emits large DNS responses from reflector hosts toward
// the victim (amplification attack signature: UDP src port 53, big
// payload, responses without matching queries).
func (g *Generator) DNSReflection(victim netip.Addr, nReflectors int, rate float64) (stop func()) {
	hosts := g.fab.Topology().Hosts()
	specs := make([]FlowSpec, 0, nReflectors)
	for i := 0; i < nReflectors; i++ {
		refl := hosts[g.rng.Intn(len(hosts))].IP
		if refl == victim {
			continue
		}
		specs = append(specs, FlowSpec{
			Src: refl, Dst: victim,
			SrcPort: 53, DstPort: uint16(g.rng.Intn(60000) + 1024),
			Proto: dataplane.ProtoUDP, PacketSize: 3000,
			Rate: rate / float64(nReflectors),
			App:  dataplane.AppInfo{Kind: dataplane.AppDNS, DNSResponse: true, DNSQName: "any.example."},
		})
	}
	return g.startAll(specs)
}

// SSHBruteForce emits failed SSH authentication attempts from src to dst.
func (g *Generator) SSHBruteForce(src, dst netip.Addr, rate float64) (stop func()) {
	return g.StartFlow(FlowSpec{
		Src: src, Dst: dst,
		SrcPort: 51000, DstPort: 22,
		Proto: dataplane.ProtoTCP, Flags: dataplane.FlagPSH | dataplane.FlagACK,
		PacketSize: 120, Rate: rate,
		App: dataplane.AppInfo{Kind: dataplane.AppSSH, SSHAuthFail: true},
	})
}

// Slowloris opens many slow, incomplete HTTP requests against dst.
func (g *Generator) Slowloris(dst netip.Addr, nConns int, perConnRate float64) (stop func()) {
	hosts := g.fab.Topology().Hosts()
	specs := make([]FlowSpec, 0, nConns)
	for i := 0; i < nConns; i++ {
		src := hosts[g.rng.Intn(len(hosts))].IP
		if src == dst {
			continue
		}
		specs = append(specs, FlowSpec{
			Src: src, Dst: dst,
			SrcPort: uint16(20000 + i), DstPort: 80,
			Proto: dataplane.ProtoTCP, Flags: dataplane.FlagPSH | dataplane.FlagACK,
			PacketSize: 40, Rate: perConnRate,
			App: dataplane.AppInfo{Kind: dataplane.AppHTTP, HTTPPartial: true},
		})
	}
	return g.startAll(specs)
}

func (g *Generator) startAll(specs []FlowSpec) (stop func()) {
	stops := make([]func(), 0, len(specs))
	for _, s := range specs {
		stops = append(stops, g.StartFlow(s))
	}
	return func() {
		for _, st := range stops {
			st()
		}
	}
}

// --- Bulk counter workloads ---

// PortLoad is the offered load of one switch port in a bulk workload.
type PortLoad struct {
	Switch netmodel.SwitchID
	Port   int
	// BytesPerSec of traffic transmitted on the port.
	BytesPerSec float64
	PacketSize  int
}

// BulkWorkload drives port counters directly at a configurable tick,
// scaling to thousands of ports with one event per tick. Heavy-hitter
// experiments flip a fraction of ports to a heavy rate and re-pick that
// set periodically (churn), matching the paper's production observations
// (1-10% of ports heavy, ratio changing up to once a minute).
type BulkWorkload struct {
	fab  *fabric.Fabric
	loop *simclock.Loop
	rng  *rand.Rand

	Tick      time.Duration
	BaseRate  float64 // bytes/s on a normal port
	HeavyRate float64 // bytes/s on a heavy port
	PktSize   int

	ports  []PortLoad // all driven ports, base rates
	heavy  map[int]bool
	ticker *simclock.Ticker
}

// BulkConfig configures NewBulkWorkload.
type BulkConfig struct {
	Tick       time.Duration // counter update granularity; default 1ms
	BaseRate   float64       // bytes/s per normal port; default 1e5
	HeavyRate  float64       // bytes/s per heavy port; default 1e8
	PacketSize int           // default 1000
	HeavyRatio float64       // fraction of ports heavy
	Churn      time.Duration // re-pick heavy set every Churn; 0 = never
	Seed       int64
}

// NewBulkWorkload creates a bulk workload over every host-facing port of
// every leaf switch in the fabric.
func NewBulkWorkload(fab *fabric.Fabric, cfg BulkConfig) *BulkWorkload {
	if cfg.Tick == 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.BaseRate == 0 {
		cfg.BaseRate = 1e5
	}
	if cfg.HeavyRate == 0 {
		cfg.HeavyRate = 1e8
	}
	if cfg.PacketSize == 0 {
		cfg.PacketSize = 1000
	}
	w := &BulkWorkload{
		fab:       fab,
		loop:      fab.Loop(),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		Tick:      cfg.Tick,
		BaseRate:  cfg.BaseRate,
		HeavyRate: cfg.HeavyRate,
		PktSize:   cfg.PacketSize,
		heavy:     map[int]bool{},
	}
	topo := fab.Topology()
	for _, h := range topo.Hosts() {
		if port, ok := fab.HostPort(h.Leaf, h.ID); ok {
			w.ports = append(w.ports, PortLoad{Switch: h.Leaf, Port: port, BytesPerSec: cfg.BaseRate, PacketSize: cfg.PacketSize})
		}
	}
	w.pickHeavy(cfg.HeavyRatio)
	w.ticker = w.loop.Every(cfg.Tick, w.tick)
	if cfg.Churn > 0 {
		ratio := cfg.HeavyRatio
		w.loop.Every(cfg.Churn, func() { w.pickHeavy(ratio) })
	}
	return w
}

func (w *BulkWorkload) pickHeavy(ratio float64) {
	w.heavy = map[int]bool{}
	n := int(ratio * float64(len(w.ports)))
	for _, i := range w.rng.Perm(len(w.ports))[:n] {
		w.heavy[i] = true
	}
}

// HeavyPorts returns the currently heavy (switch, port) pairs — the
// ground truth detection tasks are scored against.
func (w *BulkWorkload) HeavyPorts() []PortLoad {
	var out []PortLoad
	for i, p := range w.ports {
		if w.heavy[i] {
			p.BytesPerSec = w.HeavyRate
			out = append(out, p)
		}
	}
	return out
}

// NumPorts returns the number of driven ports.
func (w *BulkWorkload) NumPorts() int { return len(w.ports) }

// Stop halts the workload.
func (w *BulkWorkload) Stop() { w.ticker.Stop() }

func (w *BulkWorkload) tick() {
	dt := w.Tick.Seconds()
	for i, p := range w.ports {
		rate := w.BaseRate
		if w.heavy[i] {
			rate = w.HeavyRate
		}
		bytes := uint64(rate * dt)
		pkts := bytes / uint64(p.PacketSize)
		if pkts == 0 {
			pkts = 1
		}
		_ = w.fab.Switch(p.Switch).CreditPort(p.Port, 0, 0, pkts, bytes)
	}
}
