// Package traffic generates workloads for the emulated data center:
// per-packet flows, the attack patterns behind the Tab. I use cases, and
// bulk counter-credit workloads that scale to thousands of ports.
//
// This substitutes for the production SAP traffic the paper evaluates
// against. The evaluation parameterizes workloads by heavy-hitter ratio,
// churn rate, and flow counts (§VI-B); the generators expose exactly
// those knobs, seeded deterministically for reproducible runs.
package traffic

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"farm/internal/dataplane"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
)

// FlowSpec describes one generated flow.
type FlowSpec struct {
	Src, Dst   netip.Addr
	SrcPort    uint16
	DstPort    uint16
	Proto      dataplane.Proto
	Flags      dataplane.TCPFlags
	PacketSize int
	Rate       float64 // packets per second
	App        dataplane.AppInfo
}

func (s FlowSpec) packet() dataplane.Packet {
	return dataplane.Packet{
		SrcIP: s.Src, DstIP: s.Dst,
		SrcPort: s.SrcPort, DstPort: s.DstPort,
		Proto: s.Proto, Flags: s.Flags,
		Size: s.PacketSize, App: s.App,
	}
}

// Generator drives workloads onto a fabric. Seeded deterministically:
// the same seed yields the same per-switch packet sequence on any
// engine at any worker count.
//
// Every flow is homed on its ingress leaf — the leaf its source host
// attaches to — and ticks on that leaf's home shard
// (fabric.SchedulerFor), injecting through the fused fast path so each
// leaf's flow cache stays hot. Emission-time randomness (jitter, start
// phase, random destination picks) comes from per-flow splitmix streams
// keyed by (seed, flow creation index), never a shared *rand.Rand, so
// the sequence a leaf emits is a pure function of the seed and the
// order scenarios were constructed in — independent of how shards
// interleave. Construction-time randomness (which hosts a scenario
// picks) still uses one seeded source, drawn only on the driving
// goroutine while building scenarios.
//
// Scenario stop funcs follow the engine's ownership contract: call them
// from the driving goroutine between runs (or from a callback on the
// flow's own shard).
type Generator struct {
	fab   *fabric.Fabric
	seed  int64
	setup *rand.Rand
	// nextFlow numbers flows in creation order; it keys each flow's
	// splitmix stream.
	nextFlow uint64
	// digests holds one per-leaf emission digest cell, built up front so
	// emission never mutates the map (concurrent reads from many shards
	// are safe; each cell has a single writing shard).
	digests map[netmodel.SwitchID]*ingressDigest
}

// NewGenerator returns a generator over the fabric.
func NewGenerator(fab *fabric.Fabric, seed int64) *Generator {
	g := &Generator{
		fab:     fab,
		seed:    seed,
		setup:   rand.New(rand.NewSource(seed)),
		digests: make(map[netmodel.SwitchID]*ingressDigest),
	}
	for _, sw := range fab.Topology().Switches() {
		g.digests[sw.ID] = &ingressDigest{h: digestOffset}
	}
	return g
}

// Rand exposes the generator's construction-time random source. It is
// only safe to draw from on the driving goroutine (scenario setup);
// emission-time draws come from per-flow streams.
func (g *Generator) Rand() *rand.Rand { return g.setup }

// stream allocates the next flow's RNG stream.
func (g *Generator) stream() stream {
	id := g.nextFlow
	g.nextFlow++
	return stream{state: bulkMix(uint64(g.seed), id)}
}

// ingress resolves a source address to its ingress leaf and that leaf's
// home-shard scheduler. Unroutable sources (fab.Send rejects their
// packets anyway) are homed on the central shard so their schedule
// still ticks deterministically.
func (g *Generator) ingress(src netip.Addr) (netmodel.SwitchID, engine.Scheduler) {
	if h, ok := g.fab.Topology().HostByIP(src); ok {
		return h.Leaf, g.fab.SchedulerFor(h.Leaf)
	}
	return -1, g.fab.CentralSched()
}

// inject folds the packet into the ingress leaf's emission digest and
// sends it. Must run on the leaf's home shard (or the driving goroutine
// between runs, for Burst).
func (g *Generator) inject(leaf netmodel.SwitchID, clock engine.Clock, p dataplane.Packet) {
	if d := g.digests[leaf]; d != nil {
		d.fold(clock.Now(), p)
	}
	_ = g.fab.Send(p)
}

// PerSwitchDigest returns, per ingress leaf, a digest of every packet
// the generator injected there: emission time, 5-tuple, size, flags,
// and app kind, folded in emission order. This is the generator's
// determinism contract made checkable — the same seed must produce
// byte-identical digests on the serial engine and on the sharded engine
// at any worker count (workload-scale and the traffic tests compare
// them). Call it while the engine is quiescent. Leaves that emitted
// nothing are omitted.
func (g *Generator) PerSwitchDigest() map[netmodel.SwitchID]uint64 {
	out := make(map[netmodel.SwitchID]uint64, len(g.digests))
	for id, d := range g.digests {
		if d.h != digestOffset {
			out[id] = d.h
		}
	}
	return out
}

// StartFlow emits spec's packets until stop is called, at the given
// mean rate with uniform +/-50% inter-packet jitter. The jitter (and a
// random start phase) keeps concurrent flows interleaving like real
// traffic; strictly periodic flows would alias with periodic samplers
// and rate limiters. The flow ticks on its ingress leaf's home shard.
func (g *Generator) StartFlow(spec FlowSpec) (stop func()) {
	if spec.Rate <= 0 {
		panic(fmt.Sprintf("traffic: flow rate must be positive, got %g", spec.Rate))
	}
	leaf, sched := g.ingress(spec.Src)
	pkt := spec.packet()
	rng := g.stream()
	interval := float64(time.Second) / spec.Rate
	stopped := false
	var emit func()
	schedule := func(scale float64) {
		d := time.Duration(interval * scale)
		if d <= 0 {
			d = time.Nanosecond
		}
		engine.ScheduleOn(sched, d, emit)
	}
	emit = func() {
		if stopped {
			return
		}
		g.inject(leaf, sched, pkt)
		schedule(0.5 + rng.float64())
	}
	schedule(rng.float64()) // random start phase
	return func() { stopped = true }
}

// Burst sends n packets of the flow immediately (driving goroutine,
// between runs).
func (g *Generator) Burst(spec FlowSpec, n int) {
	leaf, sched := g.ingress(spec.Src)
	pkt := spec.packet()
	for i := 0; i < n; i++ {
		g.inject(leaf, sched, pkt)
	}
}

// --- Per-flow RNG streams and the emission digest ---

// stream is a splitmix64 generator seeded per flow with
// bulkMix(seed, flow index) — the same pure-function construction
// BulkWorkload uses for its heavy sets. State is owned by the flow's
// closure on its home shard; nothing is shared.
type stream struct{ state uint64 }

func (s *stream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// float64 draws a uniform value in [0, 1).
func (s *stream) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// intn draws a uniform value in [0, n).
func (s *stream) intn(n int) int {
	return int(s.next() % uint64(n))
}

// FNV-1a parameters for the emission digest.
const (
	digestOffset uint64 = 14695981039346656037
	digestPrime  uint64 = 1099511628211
)

// ingressDigest accumulates one leaf's emission digest. Padded to a
// cache line: cells are written concurrently by different shards and
// must not false-share.
type ingressDigest struct {
	h uint64
	_ [56]byte
}

func (d *ingressDigest) fold(at time.Duration, p dataplane.Packet) {
	var keyArr [64]byte
	key := p.Flow().AppendTo(keyArr[:0])
	h := foldUint(d.h, uint64(at))
	for _, c := range key {
		h ^= uint64(c)
		h *= digestPrime
	}
	h = foldUint(h, uint64(p.Size))
	h ^= uint64(p.Flags)
	h *= digestPrime
	h ^= uint64(p.App.Kind)
	h *= digestPrime
	d.h = h
}

func foldUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= digestPrime
		v >>= 8
	}
	return h
}

// --- Attack / scenario generators (Tab. I workloads) ---

// SYNFlood floods target with TCP SYNs from nSources spoofed hosts at
// the aggregate rate. The sources are picked from existing hosts so the
// packets route.
func (g *Generator) SYNFlood(target netip.Addr, nSources int, rate float64) (stop func()) {
	hosts := g.fab.Topology().Hosts()
	specs := make([]FlowSpec, 0, nSources)
	for i := 0; i < nSources; i++ {
		src := hosts[g.setup.Intn(len(hosts))].IP
		if src == target {
			continue
		}
		specs = append(specs, FlowSpec{
			Src: src, Dst: target,
			SrcPort: uint16(g.setup.Intn(60000) + 1024), DstPort: 80,
			Proto: dataplane.ProtoTCP, Flags: dataplane.FlagSYN,
			PacketSize: 60, Rate: rate / float64(nSources),
		})
	}
	return g.startAll(specs)
}

// PortScan probes sequential destination ports on target from src. The
// scan ticks on src's ingress leaf.
func (g *Generator) PortScan(src, target netip.Addr, portsPerSec float64) (stop func()) {
	leaf, sched := g.ingress(src)
	next := uint16(1)
	interval := time.Duration(float64(time.Second) / portsPerSec)
	tk := sched.Every(interval, func() {
		g.inject(leaf, sched, dataplane.Packet{
			SrcIP: src, DstIP: target,
			SrcPort: 40000, DstPort: next,
			Proto: dataplane.ProtoTCP, Flags: dataplane.FlagSYN, Size: 60,
		})
		next++
		if next == 0 {
			next = 1
		}
	})
	return tk.Stop
}

// SuperSpreader has src contact fanout distinct destinations at rate
// connections/s (one SYN each, to port 443).
func (g *Generator) SuperSpreader(src netip.Addr, fanout int, rate float64) (stop func()) {
	hosts := g.fab.Topology().Hosts()
	dsts := make([]netip.Addr, 0, fanout)
	for _, h := range g.setup.Perm(len(hosts)) {
		ip := hosts[h].IP
		if ip != src {
			dsts = append(dsts, ip)
		}
		if len(dsts) == fanout {
			break
		}
	}
	leaf, sched := g.ingress(src)
	rng := g.stream()
	i := 0
	interval := time.Duration(float64(time.Second) / rate)
	tk := sched.Every(interval, func() {
		// Random destination order: real spreaders do not round-robin
		// in lockstep with samplers.
		dst := dsts[rng.intn(len(dsts))]
		g.inject(leaf, sched, dataplane.Packet{
			SrcIP: src, DstIP: dst,
			SrcPort: uint16(30000 + i%1000), DstPort: 443,
			Proto: dataplane.ProtoTCP, Flags: dataplane.FlagSYN, Size: 60,
		})
		i++
	})
	return tk.Stop
}

// DNSReflection emits large DNS responses from reflector hosts toward
// the victim (amplification attack signature: UDP src port 53, big
// payload, responses without matching queries).
func (g *Generator) DNSReflection(victim netip.Addr, nReflectors int, rate float64) (stop func()) {
	hosts := g.fab.Topology().Hosts()
	specs := make([]FlowSpec, 0, nReflectors)
	for i := 0; i < nReflectors; i++ {
		refl := hosts[g.setup.Intn(len(hosts))].IP
		if refl == victim {
			continue
		}
		specs = append(specs, FlowSpec{
			Src: refl, Dst: victim,
			SrcPort: 53, DstPort: uint16(g.setup.Intn(60000) + 1024),
			Proto: dataplane.ProtoUDP, PacketSize: 3000,
			Rate: rate / float64(nReflectors),
			App:  dataplane.AppInfo{Kind: dataplane.AppDNS, DNSResponse: true, DNSQName: "any.example."},
		})
	}
	return g.startAll(specs)
}

// SSHBruteForce emits failed SSH authentication attempts from src to dst.
func (g *Generator) SSHBruteForce(src, dst netip.Addr, rate float64) (stop func()) {
	return g.StartFlow(FlowSpec{
		Src: src, Dst: dst,
		SrcPort: 51000, DstPort: 22,
		Proto: dataplane.ProtoTCP, Flags: dataplane.FlagPSH | dataplane.FlagACK,
		PacketSize: 120, Rate: rate,
		App: dataplane.AppInfo{Kind: dataplane.AppSSH, SSHAuthFail: true},
	})
}

// Slowloris opens many slow, incomplete HTTP requests against dst.
func (g *Generator) Slowloris(dst netip.Addr, nConns int, perConnRate float64) (stop func()) {
	hosts := g.fab.Topology().Hosts()
	specs := make([]FlowSpec, 0, nConns)
	for i := 0; i < nConns; i++ {
		src := hosts[g.setup.Intn(len(hosts))].IP
		if src == dst {
			continue
		}
		specs = append(specs, FlowSpec{
			Src: src, Dst: dst,
			SrcPort: uint16(20000 + i), DstPort: 80,
			Proto: dataplane.ProtoTCP, Flags: dataplane.FlagPSH | dataplane.FlagACK,
			PacketSize: 40, Rate: perConnRate,
			App: dataplane.AppInfo{Kind: dataplane.AppHTTP, HTTPPartial: true},
		})
	}
	return g.startAll(specs)
}

func (g *Generator) startAll(specs []FlowSpec) (stop func()) {
	stops := make([]func(), 0, len(specs))
	for _, s := range specs {
		stops = append(stops, g.StartFlow(s))
	}
	return func() {
		for _, st := range stops {
			st()
		}
	}
}

// --- Bulk counter workloads ---

// PortLoad is the offered load of one switch port in a bulk workload.
type PortLoad struct {
	Switch netmodel.SwitchID
	Port   int
	// BytesPerSec of traffic transmitted on the port.
	BytesPerSec float64
	PacketSize  int
}

// BulkWorkload drives port counters directly at a configurable tick,
// scaling to thousands of ports with one event per switch per tick.
// Heavy-hitter experiments flip a fraction of ports to a heavy rate and
// re-pick that set periodically (churn), matching the paper's production
// observations (1-10% of ports heavy, ratio changing up to once a
// minute).
//
// The workload is shard-safe: each switch's ports are credited by a
// ticker on that switch's home shard, and the heavy set for a churn
// epoch is a pure function of (seed, epoch) — a seeded ranking every
// switch recomputes locally — so no shard reads state another mutates.
type BulkWorkload struct {
	fab *fabric.Fabric

	Tick      time.Duration
	BaseRate  float64 // bytes/s on a normal port
	HeavyRate float64 // bytes/s on a heavy port
	PktSize   int

	seed  int64
	ratio float64
	churn time.Duration

	ports    []PortLoad // all driven ports, base rates, in host order
	switches []*bulkSwitch
	tickers  []engine.Ticker
}

// bulkSwitch is the per-switch slice of a BulkWorkload, owned by the
// switch's home shard.
type bulkSwitch struct {
	id    netmodel.SwitchID
	idx   []int        // global port indices driven on this switch
	heavy map[int]bool // global port index -> heavy, for this epoch
}

// BulkConfig configures NewBulkWorkload.
type BulkConfig struct {
	Tick       time.Duration // counter update granularity; default 1ms
	BaseRate   float64       // bytes/s per normal port; default 1e5
	HeavyRate  float64       // bytes/s per heavy port; default 1e8
	PacketSize int           // default 1000
	HeavyRatio float64       // fraction of ports heavy
	Churn      time.Duration // re-pick heavy set every Churn; 0 = never
	Seed       int64
}

// NewBulkWorkload creates a bulk workload over every host-facing port of
// every leaf switch in the fabric.
func NewBulkWorkload(fab *fabric.Fabric, cfg BulkConfig) *BulkWorkload {
	if cfg.Tick == 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.BaseRate == 0 {
		cfg.BaseRate = 1e5
	}
	if cfg.HeavyRate == 0 {
		cfg.HeavyRate = 1e8
	}
	if cfg.PacketSize == 0 {
		cfg.PacketSize = 1000
	}
	w := &BulkWorkload{
		fab:       fab,
		Tick:      cfg.Tick,
		BaseRate:  cfg.BaseRate,
		HeavyRate: cfg.HeavyRate,
		PktSize:   cfg.PacketSize,
		seed:      cfg.Seed,
		ratio:     cfg.HeavyRatio,
		churn:     cfg.Churn,
	}
	topo := fab.Topology()
	bySwitch := map[netmodel.SwitchID]*bulkSwitch{}
	for _, h := range topo.Hosts() {
		if port, ok := fab.HostPort(h.Leaf, h.ID); ok {
			bs := bySwitch[h.Leaf]
			if bs == nil {
				bs = &bulkSwitch{id: h.Leaf}
				bySwitch[h.Leaf] = bs
				w.switches = append(w.switches, bs)
			}
			bs.idx = append(bs.idx, len(w.ports))
			w.ports = append(w.ports, PortLoad{Switch: h.Leaf, Port: port, BytesPerSec: cfg.BaseRate, PacketSize: cfg.PacketSize})
		}
	}
	sort.Slice(w.switches, func(i, j int) bool { return w.switches[i].id < w.switches[j].id })

	epoch := w.epochAt(fab.Sched().Now())
	for _, bs := range w.switches {
		bs := bs
		sched := fab.SchedulerFor(bs.id)
		bs.heavy = w.heavyFor(bs, epoch)
		w.tickers = append(w.tickers, sched.Every(cfg.Tick, func() { w.tick(bs) }))
		if cfg.Churn > 0 {
			w.tickers = append(w.tickers, sched.Every(cfg.Churn, func() {
				bs.heavy = w.heavyFor(bs, w.epochAt(sched.Now()))
			}))
		}
	}
	return w
}

// epochAt maps virtual time to a churn epoch. All switches churn at the
// same instants, so the epoch they compute is identical.
func (w *BulkWorkload) epochAt(now time.Duration) int64 {
	if w.churn <= 0 {
		return 0
	}
	return int64(now / w.churn)
}

// bulkMix is a splitmix64-style hash step used to rank ports per epoch.
func bulkMix(h, v uint64) uint64 {
	h ^= v
	h += 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// heavyIndices returns the heavy port set of an epoch: the ratio*N
// lowest-ranked ports under a (seed, epoch)-keyed hash. It is a pure
// function, so every shard (and HeavyPorts) derives the same set without
// shared state.
func (w *BulkWorkload) heavyIndices(epoch int64) []int {
	n := int(w.ratio * float64(len(w.ports)))
	if n <= 0 {
		return nil
	}
	key := bulkMix(uint64(w.seed), uint64(epoch))
	order := make([]int, len(w.ports))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := bulkMix(key, uint64(order[a])), bulkMix(key, uint64(order[b]))
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})
	return order[:n]
}

// heavyFor filters the epoch's heavy set down to one switch's ports.
func (w *BulkWorkload) heavyFor(bs *bulkSwitch, epoch int64) map[int]bool {
	on := map[int]bool{}
	for _, i := range w.heavyIndices(epoch) {
		on[i] = true
	}
	heavy := map[int]bool{}
	for _, i := range bs.idx {
		if on[i] {
			heavy[i] = true
		}
	}
	return heavy
}

// HeavyPorts returns the currently heavy (switch, port) pairs — the
// ground truth detection tasks are scored against. Call it while the
// engine is quiescent.
func (w *BulkWorkload) HeavyPorts() []PortLoad {
	idx := append([]int(nil), w.heavyIndices(w.epochAt(w.fab.Sched().Now()))...)
	sort.Ints(idx)
	var out []PortLoad
	for _, i := range idx {
		p := w.ports[i]
		p.BytesPerSec = w.HeavyRate
		out = append(out, p)
	}
	return out
}

// NumPorts returns the number of driven ports.
func (w *BulkWorkload) NumPorts() int { return len(w.ports) }

// Stop halts the workload.
func (w *BulkWorkload) Stop() {
	for _, tk := range w.tickers {
		tk.Stop()
	}
}

func (w *BulkWorkload) tick(bs *bulkSwitch) {
	dt := w.Tick.Seconds()
	sw := w.fab.Switch(bs.id)
	for _, i := range bs.idx {
		p := w.ports[i]
		rate := w.BaseRate
		if bs.heavy[i] {
			rate = w.HeavyRate
		}
		bytes := uint64(rate * dt)
		pkts := bytes / uint64(p.PacketSize)
		if pkts == 0 {
			pkts = 1
		}
		_ = sw.CreditPort(p.Port, 0, 0, pkts, bytes)
	}
}
