package traffic

import (
	"testing"
	"time"

	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
)

// runScenarioMix drives the full attack-scenario cocktail plus plain
// flows on the given engine and returns the generator's per-switch
// emission digests, the delivered-packet count, and the leaves that
// emitted. One scenario (the port scan) is stopped halfway through the
// run: cancellation from the driving goroutine must not perturb
// determinism either.
func runScenarioMix(t *testing.T, mk func(topo *netmodel.Topology) (engine.Scheduler, func())) (map[netmodel.SwitchID]uint64, uint64) {
	t.Helper()
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{Spines: 2, Leaves: 6, HostsPerLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	loop, stopEngine := mk(topo)
	defer stopEngine()
	fab := fabric.New(topo, loop, fabric.Options{})
	g := NewGenerator(fab, 42)

	victim := fabric.HostIP(0, 0)
	stopScan := g.PortScan(fabric.HostIP(1, 0), victim, 2000)
	stops := []func(){
		g.SYNFlood(victim, 8, 4000),
		g.SuperSpreader(fabric.HostIP(2, 1), 12, 2000),
		g.DNSReflection(victim, 5, 2000),
		g.SSHBruteForce(fabric.HostIP(3, 2), fabric.HostIP(0, 1), 400),
		g.Slowloris(fabric.HostIP(4, 3), 10, 40),
		g.StartFlow(FlowSpec{
			Src: fabric.HostIP(5, 0), Dst: fabric.HostIP(0, 2),
			SrcPort: 9000, DstPort: 80, PacketSize: 200, Rate: 1500,
		}),
	}
	loop.RunFor(150 * time.Millisecond)
	stopScan() // mid-run cancellation of one scenario
	loop.RunFor(150 * time.Millisecond)
	for _, stop := range stops {
		stop()
	}
	return g.PerSwitchDigest(), fab.Delivered()
}

// TestGeneratorDigestAcrossEngines is the generator's determinism gate:
// the same seed must produce byte-identical per-switch emission digests
// on the serial engine and on the sharded engine at 1, 4, and 16
// workers (worker pool forced on, so the race detector exercises the
// concurrent path even on a single-CPU host).
func TestGeneratorDigestAcrossEngines(t *testing.T) {
	ref, refDelivered := runScenarioMix(t, func(*netmodel.Topology) (engine.Scheduler, func()) {
		return engine.NewSerial(), func() {}
	})
	if len(ref) == 0 {
		t.Fatal("serial reference run produced no emission digests")
	}
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		got, delivered := runScenarioMix(t, func(topo *netmodel.Topology) (engine.Scheduler, func()) {
			x := engine.NewSharded(engine.ShardedOptions{
				Shards:       topo.NumSwitches(),
				Workers:      workers,
				Lookahead:    fabric.Options{}.MinCrossLatency(),
				ForceWorkers: true,
			})
			return x, x.Stop
		})
		if delivered != refDelivered {
			t.Errorf("workers=%d: delivered %d packets, serial delivered %d", workers, delivered, refDelivered)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d leaves emitted, serial had %d", workers, len(got), len(ref))
		}
		for leaf, h := range ref {
			if got[leaf] != h {
				t.Errorf("workers=%d: leaf %d digest %#x, serial %#x", workers, leaf, got[leaf], h)
			}
		}
	}
}

// TestGeneratorDigestSameSeedReproduces pins run-to-run reproducibility
// on a single engine (the cheaper, more local property).
func TestGeneratorDigestSameSeedReproduces(t *testing.T) {
	a, _ := runScenarioMix(t, func(*netmodel.Topology) (engine.Scheduler, func()) {
		return engine.NewSerial(), func() {}
	})
	b, _ := runScenarioMix(t, func(*netmodel.Topology) (engine.Scheduler, func()) {
		return engine.NewSerial(), func() {}
	})
	if len(a) != len(b) {
		t.Fatalf("leaf sets differ: %d vs %d", len(a), len(b))
	}
	for leaf, h := range a {
		if b[leaf] != h {
			t.Errorf("leaf %d digest differs across identical runs", leaf)
		}
	}
}
