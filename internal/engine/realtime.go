package engine

import (
	"container/heap"
	"sync"
	"time"
)

// RealTime is a Scheduler driven by the wall clock: Now is the elapsed
// wall time since construction, and the Run methods sleep until each
// event's deadline instead of jumping virtual time forward. It lets
// demos and latency benches (the Fig. 10 transports) run against real
// timers through the same interface every other component is written
// to — swap NewSerial() for NewRealTime() and the fabric, seeder, and
// generators run in real time.
//
// Concurrency: unlike the virtual-time engines, timers may be scheduled
// from any goroutine (an earlier-than-current-head At wakes a sleeping
// run loop). Callbacks still execute inline on the single driving
// goroutine calling Step/RunUntil/RunFor/Drain, so scheduled state
// needs no locking of its own. Wall-clock execution is inherently not
// deterministic — an event that fires late fires late — so RealTime is
// for demos and wall-clock measurements, never for the reproducible
// experiments (those stay on virtual time).
//
// Events share the pooled event type and free list with the virtual
// time engines (an eventQueue on the heap backend — sleeps dominate
// here, so the wheel would buy nothing, but the pooling does: periodic
// work on a long-lived daemon stops churning the garbage collector).
//
// RealTime implements Partitioned trivially (one shard, CrossAfter =
// After), like Serial, so a fabric can be built directly on it.
type RealTime struct {
	mu sync.Mutex
	// q is the pending-event queue, guarded by mu (heap backend: the
	// run loop needs cheap head peeks and SetInterval re-keys in place
	// with heap.Fix).
	q      eventQueue
	start  time.Time
	closed bool
	// wake preempts a sleeping run loop when a new earliest event
	// arrives from another goroutine.
	wake chan struct{}
	// done is closed by Close: every sleeping run loop selects on it so
	// a long-lived daemon's shutdown never waits out a wall deadline.
	done chan struct{}
}

// NewRealTime returns a wall-clock scheduler whose time starts now.
func NewRealTime() *RealTime {
	r := &RealTime{
		start: time.Now(),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	r.q.kind = QueueHeap
	return r
}

// Close shuts the scheduler down: any goroutine blocked in
// Step/RunUntil/RunFor/Drain wakes immediately and returns without
// running further events, and later run calls return at once. Events
// still pending (and any scheduled afterwards) never fire. Close is
// idempotent and safe from any goroutine — it is the daemon shutdown
// path, where the driving goroutine is asleep inside RunFor and must
// be released without waiting out the current deadline.
func (r *RealTime) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.closed {
		r.closed = true
		close(r.done)
	}
	return nil
}

// Done exposes the closed-on-Close channel so callers waiting on the
// scheduler (an exec path handing work to the run loop) can abandon the
// wait when the scheduler shuts down underneath them.
func (r *RealTime) Done() <-chan struct{} { return r.done }

// Closed reports whether Close has been called.
func (r *RealTime) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Now returns the elapsed wall time since construction.
func (r *RealTime) Now() time.Duration { return time.Since(r.start) }

// wakeup preempts a run loop sleeping toward a stale head deadline.
func (r *RealTime) wakeup() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// At schedules fn at elapsed-time at (in the past means: as soon as the
// run loop gets to it).
func (r *RealTime) At(at time.Duration, fn func()) Timer {
	r.mu.Lock()
	if r.closed {
		// The scheduler is shut down: the event would never run, so
		// don't hold it. The inert handle keeps callers race-free.
		r.mu.Unlock()
		return &realTimer{}
	}
	if now := r.Now(); at < now {
		at = now
	}
	ev := r.q.add(at, fn)
	t := &realTimer{r: r, ev: ev, gen: ev.gen}
	isHead := r.q.heap[0] == ev
	r.mu.Unlock()
	if isHead {
		// New earliest deadline: wake a run loop sleeping toward the
		// previous head.
		r.wakeup()
	}
	return t
}

// After schedules fn after delay d of wall time.
func (r *RealTime) After(d time.Duration, fn func()) Timer {
	return r.At(r.Now()+d, fn)
}

// schedule arms fn after d without materializing a Timer handle (see
// ScheduleOn).
func (r *RealTime) schedule(d time.Duration, fn func()) {
	at := r.Now() + d
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if now := r.Now(); at < now {
		at = now
	}
	ev := r.q.add(at, fn)
	isHead := r.q.heap[0] == ev
	r.mu.Unlock()
	if isHead {
		r.wakeup()
	}
}

// Every schedules a periodic callback.
func (r *RealTime) Every(interval time.Duration, fn func()) Ticker {
	return EveryOn(r, interval, fn)
}

// Pending returns the number of scheduled (unfired, uncancelled)
// events. Cancelled events awaiting reclaim are not counted.
func (r *RealTime) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.q.live
}

// Step waits for the earliest pending event's wall deadline, runs it,
// and reports whether an event ran. It returns false immediately when
// nothing is scheduled.
func (r *RealTime) Step() bool { return r.runNext(-1) }

// runNext runs the earliest event whose deadline is <= bound (bound < 0
// means no bound), sleeping until the deadline arrives. It returns
// false when no such event exists.
func (r *RealTime) runNext(bound time.Duration) bool {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return false
		}
		for len(r.q.heap) > 0 && r.q.heap[0].stopped {
			r.q.release(r.q.pop())
		}
		if len(r.q.heap) == 0 {
			r.mu.Unlock()
			return false
		}
		head := r.q.heap[0]
		if bound >= 0 && head.at > bound {
			r.mu.Unlock()
			return false
		}
		if head.at <= r.Now() {
			ev := r.q.pop()
			fn := ev.fn
			if !ev.held {
				r.q.release(ev)
			}
			r.mu.Unlock()
			fn()
			return true
		}
		wait := head.at - r.Now()
		r.mu.Unlock()
		// Sleep toward the deadline, preempted if an earlier event is
		// scheduled meanwhile (or the scheduler shuts down); then
		// re-evaluate from scratch.
		tmr := time.NewTimer(wait)
		select {
		case <-tmr.C:
		case <-r.wake:
			tmr.Stop()
		case <-r.done:
			tmr.Stop()
			return false
		}
	}
}

// RunUntil processes all events with deadlines at or before t, sleeping
// through the gaps, and returns once the wall clock passes t.
func (r *RealTime) RunUntil(t time.Duration) {
	for {
		for r.runNext(t) {
		}
		if r.Closed() {
			return
		}
		wait := t - r.Now()
		if wait <= 0 {
			return
		}
		// Idle until t, but stay preemptible: an event scheduled from
		// another goroutine with a deadline before t must still run,
		// and Close must release the loop immediately.
		tmr := time.NewTimer(wait)
		select {
		case <-tmr.C:
		case <-r.wake:
			tmr.Stop()
		case <-r.done:
			tmr.Stop()
			return
		}
	}
}

// RunFor processes events for the next d of wall time.
func (r *RealTime) RunFor(d time.Duration) { r.RunUntil(r.Now() + d) }

// Drain runs events (waiting out their deadlines) until none remain or
// the limit is reached. It returns the number of events processed.
func (r *RealTime) Drain(limit int) int {
	n := 0
	for n < limit && r.Step() {
		n++
	}
	return n
}

// Shards implements Partitioned: a real-time engine is one shard.
func (r *RealTime) Shards() int { return 1 }

// Shard implements Partitioned.
func (r *RealTime) Shard(i int) Scheduler {
	if i != 0 {
		panic("engine: real-time engine has a single shard")
	}
	return r
}

// CrossAfter implements Partitioned: with one shard there is nothing to
// cross, so it degenerates to After.
func (r *RealTime) CrossAfter(from, to int, d time.Duration, fn func()) {
	r.After(d, fn)
}

// realTimer is the Timer handle of the real-time engine. Like the
// virtual-time handles it carries the generation the event had when
// scheduled, so a handle whose event fired and was recycled is inert.
type realTimer struct {
	r   *RealTime
	ev  *event
	gen uint64
}

// Stop implements Timer. Unlike the virtual-time engines it may be
// called from any goroutine.
func (t *realTimer) Stop() bool {
	if t == nil || t.ev == nil {
		return false
	}
	t.r.mu.Lock()
	defer t.r.mu.Unlock()
	ev := t.ev
	if ev.gen != t.gen || ev.stopped || ev.index < 0 {
		return false
	}
	t.r.q.stop(ev)
	return true
}

// realTicker is the RealTime fast-path Ticker: one event and one
// closure for the ticker's lifetime, re-armed under the scheduler lock,
// so a daemon's periodic work (heartbeats, background traffic, poll
// loops) allocates nothing per firing. Stop and SetInterval are safe
// from any goroutine, matching the scheduler's concurrency contract —
// the generic re-arm ticker never was.
type realTicker struct {
	r        *RealTime
	ev       *event
	fire     func()
	interval time.Duration
	fn       func()
	stopped  bool
}

func newRealTicker(r *RealTime, interval time.Duration, fn func()) *realTicker {
	t := &realTicker{r: r, interval: interval, fn: fn}
	t.fire = func() {
		t.fn()
		r.mu.Lock()
		if !t.stopped && !r.closed && t.ev != nil {
			ev := t.ev
			r.q.rearm(ev, r.Now()+t.interval)
			isHead := r.q.heap[0] == ev
			r.mu.Unlock()
			if isHead {
				r.wakeup()
			}
			return
		}
		if ev := t.ev; ev != nil {
			// Stopped (or closed) while firing: hand the held event
			// back to the pool.
			t.ev = nil
			ev.held = false
			r.q.release(ev)
		}
		r.mu.Unlock()
	}
	r.mu.Lock()
	if r.closed {
		t.stopped = true
		r.mu.Unlock()
		return t
	}
	ev := r.q.alloc(r.Now()+interval, t.fire)
	ev.held = true
	r.q.enqueue(ev)
	t.ev = ev
	isHead := r.q.heap[0] == ev
	r.mu.Unlock()
	if isHead {
		r.wakeup()
	}
	return t
}

func (t *realTicker) Stop() {
	r := t.r
	r.mu.Lock()
	if t.stopped {
		r.mu.Unlock()
		return
	}
	t.stopped = true
	if ev := t.ev; ev != nil && ev.index >= 0 {
		// Armed: cancel the pending firing; the run loop or compaction
		// reclaims it. If the event is mid-fire instead, the fire
		// epilogue sees stopped and releases it.
		t.ev = nil
		ev.held = false
		r.q.stop(ev)
	}
	r.mu.Unlock()
}

func (t *realTicker) Interval() time.Duration {
	t.r.mu.Lock()
	defer t.r.mu.Unlock()
	return t.interval
}

func (t *realTicker) SetInterval(interval time.Duration) {
	if interval <= 0 {
		panic("engine: non-positive ticker interval")
	}
	r := t.r
	r.mu.Lock()
	t.interval = interval
	if ev := t.ev; !t.stopped && ev != nil && ev.index >= 0 {
		// Armed: re-key the pending firing to interval from now. The
		// heap supports an in-place Fix, and a fresh sequence number
		// keeps FIFO order against events already scheduled at the same
		// instant (mirroring the virtual-time tickers). Mid-fire, the
		// epilogue re-arms with the new interval instead.
		ev.at = r.Now() + interval
		ev.seq = r.q.seq
		r.q.seq++
		heap.Fix(&r.q.heap, ev.index)
		isHead := r.q.heap[0] == ev
		r.mu.Unlock()
		if isHead {
			r.wakeup()
		}
		return
	}
	r.mu.Unlock()
}
