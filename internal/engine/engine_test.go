package engine

import (
	"testing"
	"time"
)

// forEachEngine runs a subtest against both engine implementations on
// both queue backends (the default timing wheel and the container/heap
// reference). The sharded engine runs with several shards and workers
// even though these conformance tests schedule through the root view
// (shard 0), so epoch bookkeeping is exercised.
func forEachEngine(t *testing.T, fn func(t *testing.T, s Scheduler)) {
	t.Run("serial", func(t *testing.T) { fn(t, NewSerial()) })
	t.Run("serial-heap", func(t *testing.T) { fn(t, NewSerialQueue(QueueHeap)) })
	for _, kind := range []QueueBackend{QueueWheel, QueueHeap} {
		kind := kind
		t.Run("sharded-"+kind.String(), func(t *testing.T) {
			x := NewSharded(ShardedOptions{Shards: 4, Workers: 2, ForceWorkers: true, Queue: kind})
			t.Cleanup(x.Stop)
			fn(t, x)
		})
	}
}

func TestAfterOrdering(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		var got []int
		l.After(3*time.Millisecond, func() { got = append(got, 3) })
		l.After(1*time.Millisecond, func() { got = append(got, 1) })
		l.After(2*time.Millisecond, func() { got = append(got, 2) })
		l.RunFor(10 * time.Millisecond)
		want := []int{1, 2, 3}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order = %v, want %v", got, want)
			}
		}
		if l.Now() != 10*time.Millisecond {
			t.Fatalf("now = %v, want 10ms", l.Now())
		}
	})
}

func TestSimultaneousFIFO(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		var got []int
		for i := 0; i < 5; i++ {
			i := i
			l.At(time.Millisecond, func() { got = append(got, i) })
		}
		l.RunFor(time.Millisecond)
		for i := 0; i < 5; i++ {
			if got[i] != i {
				t.Fatalf("FIFO violated: %v", got)
			}
		}
	})
}

func TestTimerStop(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		fired := false
		tm := l.After(time.Millisecond, func() { fired = true })
		if !tm.Stop() {
			t.Fatal("Stop should report true before firing")
		}
		l.RunFor(5 * time.Millisecond)
		if fired {
			t.Fatal("stopped timer fired")
		}
		if tm.Stop() {
			t.Fatal("second Stop should report false")
		}
	})
}

func TestTimerStopAfterFire(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		tm := l.After(time.Millisecond, func() {})
		l.RunFor(2 * time.Millisecond)
		if tm.Stop() {
			t.Fatal("Stop after fire should report false")
		}
	})
}

func TestScheduleInPast(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		l.RunFor(10 * time.Millisecond)
		fired := time.Duration(-1)
		var now func() time.Duration = l.Now
		l.At(time.Millisecond, func() { fired = now() })
		l.RunFor(time.Millisecond)
		if fired != 10*time.Millisecond {
			t.Fatalf("past event fired at %v, want 10ms", fired)
		}
	})
}

func TestEvery(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		var times []time.Duration
		tk := l.Every(2*time.Millisecond, func() { times = append(times, l.Now()) })
		l.RunFor(7 * time.Millisecond)
		if len(times) != 3 {
			t.Fatalf("fired %d times, want 3 (%v)", len(times), times)
		}
		for i, at := range times {
			if want := time.Duration(i+1) * 2 * time.Millisecond; at != want {
				t.Fatalf("fire %d at %v, want %v", i, at, want)
			}
		}
		tk.Stop()
		n := len(times)
		l.RunFor(10 * time.Millisecond)
		if len(times) != n {
			t.Fatal("ticker fired after Stop")
		}
	})
}

func TestTickerSetInterval(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		var times []time.Duration
		tk := l.Every(10*time.Millisecond, func() { times = append(times, l.Now()) })
		l.RunFor(10 * time.Millisecond) // first fire at 10ms
		tk.SetInterval(time.Millisecond)
		l.RunFor(3 * time.Millisecond) // fires at 11, 12, 13ms
		if len(times) != 4 {
			t.Fatalf("fired %d times, want 4 (%v)", len(times), times)
		}
		if times[1] != 11*time.Millisecond {
			t.Fatalf("rescheduled fire at %v, want 11ms", times[1])
		}
		if tk.Interval() != time.Millisecond {
			t.Fatalf("interval = %v", tk.Interval())
		}
	})
}

func TestTickerStopInsideCallback(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		count := 0
		var tk Ticker
		tk = l.Every(time.Millisecond, func() {
			count++
			if count == 2 {
				tk.Stop()
			}
		})
		l.RunFor(10 * time.Millisecond)
		if count != 2 {
			t.Fatalf("count = %d, want 2", count)
		}
	})
}

func TestNestedScheduling(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		var at time.Duration
		l.After(time.Millisecond, func() {
			l.After(time.Millisecond, func() { at = l.Now() })
		})
		l.RunFor(5 * time.Millisecond)
		if at != 2*time.Millisecond {
			t.Fatalf("nested event at %v, want 2ms", at)
		}
	})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		l.RunUntil(42 * time.Millisecond)
		if l.Now() != 42*time.Millisecond {
			t.Fatalf("now = %v", l.Now())
		}
		// RunUntil into the past must not rewind.
		l.RunUntil(10 * time.Millisecond)
		if l.Now() != 42*time.Millisecond {
			t.Fatalf("clock rewound to %v", l.Now())
		}
	})
}

func TestDrainLimit(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		l.Every(time.Millisecond, func() {}) // self-perpetuating
		if n := l.Drain(100); n != 100 {
			t.Fatalf("drained %d, want 100", n)
		}
	})
}

func TestPending(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		if l.Pending() != 0 {
			t.Fatal("fresh loop should have no events")
		}
		l.After(time.Millisecond, func() {})
		l.After(2*time.Millisecond, func() {})
		if l.Pending() != 2 {
			t.Fatalf("pending = %d, want 2", l.Pending())
		}
		l.RunFor(5 * time.Millisecond)
		if l.Pending() != 0 {
			t.Fatalf("pending = %d after drain, want 0", l.Pending())
		}
	})
}

func TestEveryPanicsOnBadInterval(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		l.Every(0, func() {})
	})
}
