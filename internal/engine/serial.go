package engine

import "time"

// Serial is the single-threaded discrete-event scheduler over virtual
// time (formerly simclock.Loop). All scheduled callbacks run inline on
// the goroutine that calls Run/Step. This mirrors the paper's preferred
// seed execution model (seeds as threads of the soil process, §VI-E)
// and keeps every experiment reproducible: FARM's evaluation quantities
// — detection latency (Tab. 4), polling accuracy and CPU load
// (Fig. 5/6), bus congestion (Fig. 8) — are all functions of poll
// intervals, batch windows, and propagation delays, which a virtual
// clock measures exactly while a simulated minute completes in
// milliseconds of wall time.
//
// Events live in a pooled timing-wheel queue (see wheel.go): insert,
// fire, and ticker re-arm are O(1) and allocation-free in steady state.
// The zero value is ready to use, starting at virtual time 0.
type Serial struct {
	now time.Duration
	q   eventQueue
}

// NewSerial returns a fresh serial scheduler at virtual time 0, backed
// by the timing wheel.
func NewSerial() *Serial { return &Serial{} }

// NewSerialQueue returns a serial scheduler on an explicit queue
// backend. QueueHeap selects the original container/heap implementation
// (per-call event and handle allocations included), kept as the
// reference side of the engine-loop A/B gate and the heap-vs-wheel
// benchmarks.
func NewSerialQueue(kind QueueBackend) *Serial {
	l := &Serial{}
	l.q.kind = kind
	l.q.nopool = kind == QueueHeap
	return l
}

// Queue returns the queue backend this scheduler runs on.
func (l *Serial) Queue() QueueBackend { return l.q.kind }

// Now returns the current virtual time.
func (l *Serial) Now() time.Duration { return l.now }

// Pending returns the number of scheduled (unfired, uncancelled)
// events. Cancelled events awaiting lazy reclaim are not counted.
func (l *Serial) Pending() int { return l.q.live }

// serialTimer is the Timer handle of the serial engine. It carries the
// generation the event had when scheduled, so once the event fires and
// is recycled the stale handle deactivates itself.
type serialTimer struct {
	l   *Serial
	ev  *event
	gen uint64
}

func (t *serialTimer) Stop() bool {
	if t == nil || t.ev == nil {
		return false
	}
	ev := t.ev
	if ev.gen != t.gen || ev.stopped || ev.index < 0 {
		// Recycled (fired), already cancelled, or fired on the unpooled
		// reference backend.
		return false
	}
	t.l.q.stop(ev)
	return true
}

// At implements Scheduler.
func (l *Serial) At(at time.Duration, fn func()) Timer {
	if at < l.now {
		at = l.now
	}
	ev := l.q.add(at, fn)
	return &serialTimer{l: l, ev: ev, gen: ev.gen}
}

// After implements Scheduler.
func (l *Serial) After(d time.Duration, fn func()) Timer {
	return l.At(l.now+d, fn)
}

// schedule arms fn after d without materializing a Timer handle (see
// ScheduleOn).
func (l *Serial) schedule(d time.Duration, fn func()) {
	at := l.now + d
	if at < l.now {
		at = l.now
	}
	l.q.add(at, fn)
}

// Every implements Scheduler.
func (l *Serial) Every(interval time.Duration, fn func()) Ticker {
	return EveryOn(l, interval, fn)
}

// queue implements queueOwner for the ticker fast path.
func (l *Serial) queue() *eventQueue { return &l.q }

// checkTickerContext implements queueOwner: the serial engine is
// single-threaded, every context may mutate the queue.
func (l *Serial) checkTickerContext(string) {}

// noteQueueChanged implements queueOwner: nothing to maintain.
func (l *Serial) noteQueueChanged() {}

// Step runs the earliest pending event, advancing virtual time to it.
// It reports whether an event ran.
func (l *Serial) Step() bool {
	for {
		ev := l.q.pop()
		if ev == nil {
			return false
		}
		if ev.stopped {
			l.q.release(ev)
			continue
		}
		l.now = ev.at
		fn := ev.fn
		if !ev.held {
			// Recycle before running, so an At inside the callback can
			// reuse the slot; the handle generation was bumped, keeping
			// a Stop on the fired timer inert.
			l.q.release(ev)
		}
		fn()
		return true
	}
}

// RunUntil processes all events scheduled at or before t, then advances
// the clock to exactly t.
func (l *Serial) RunUntil(t time.Duration) {
	for {
		at, ok := l.q.nextAt()
		if !ok || at > t {
			break
		}
		if !l.Step() {
			break
		}
	}
	if l.now < t {
		l.now = t
	}
}

// RunFor advances the clock by d, processing everything in between.
func (l *Serial) RunFor(d time.Duration) { l.RunUntil(l.now + d) }

// Drain runs events until none remain or the limit is reached. It
// returns the number of events processed.
func (l *Serial) Drain(limit int) int {
	n := 0
	for n < limit && l.Step() {
		n++
	}
	return n
}

// Shards implements Partitioned: a serial engine is one shard.
func (l *Serial) Shards() int { return 1 }

// Shard implements Partitioned.
func (l *Serial) Shard(i int) Scheduler {
	if i != 0 {
		panic("engine: serial engine has a single shard")
	}
	return l
}

// CrossAfter implements Partitioned: with one shard there is nothing to
// cross, so it degenerates to After.
func (l *Serial) CrossAfter(from, to int, d time.Duration, fn func()) {
	l.After(d, fn)
}
