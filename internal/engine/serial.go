package engine

import (
	"container/heap"
	"time"
)

// Serial is the single-threaded discrete-event scheduler over virtual
// time (formerly simclock.Loop). All scheduled callbacks run inline on
// the goroutine that calls Run/Step. This mirrors the paper's preferred
// seed execution model (seeds as threads of the soil process, §VI-E)
// and keeps every experiment reproducible: FARM's evaluation quantities
// — detection latency (Tab. 4), polling accuracy and CPU load
// (Fig. 5/6), bus congestion (Fig. 8) — are all functions of poll
// intervals, batch windows, and propagation delays, which a virtual
// clock measures exactly while a simulated minute completes in
// milliseconds of wall time.
//
// The zero value is ready to use, starting at virtual time 0.
type Serial struct {
	now    time.Duration
	events eventHeap
	seq    uint64
}

// NewSerial returns a fresh serial scheduler at virtual time 0.
func NewSerial() *Serial { return &Serial{} }

// Now returns the current virtual time.
func (l *Serial) Now() time.Duration { return l.now }

// Pending returns the number of scheduled (unfired, uncancelled) events.
func (l *Serial) Pending() int { return len(l.events) }

type event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
	index   int
	// gen is bumped each time the sharded engine recycles the event
	// through a shard free list; shardTimer handles compare it to detect
	// staleness. The serial engine never recycles, so gen stays 0 there.
	gen uint64
}

// serialTimer is the Timer handle of the serial engine.
type serialTimer struct{ ev *event }

func (t *serialTimer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.stopped {
		return false
	}
	fired := t.ev.index < 0
	t.ev.stopped = true
	return !fired
}

// At implements Scheduler.
func (l *Serial) At(at time.Duration, fn func()) Timer {
	if at < l.now {
		at = l.now
	}
	ev := &event{at: at, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.events, ev)
	return &serialTimer{ev: ev}
}

// After implements Scheduler.
func (l *Serial) After(d time.Duration, fn func()) Timer {
	return l.At(l.now+d, fn)
}

// Every implements Scheduler.
func (l *Serial) Every(interval time.Duration, fn func()) Ticker {
	return EveryOn(l, interval, fn)
}

// Step runs the earliest pending event, advancing virtual time to it.
// It reports whether an event ran.
func (l *Serial) Step() bool {
	for len(l.events) > 0 {
		ev := heap.Pop(&l.events).(*event)
		if ev.stopped {
			continue
		}
		l.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// RunUntil processes all events scheduled at or before t, then advances
// the clock to exactly t.
func (l *Serial) RunUntil(t time.Duration) {
	for len(l.events) > 0 && l.events[0].at <= t {
		if !l.Step() {
			break
		}
	}
	if l.now < t {
		l.now = t
	}
}

// RunFor advances the clock by d, processing everything in between.
func (l *Serial) RunFor(d time.Duration) { l.RunUntil(l.now + d) }

// Drain runs events until none remain or the limit is reached. It
// returns the number of events processed.
func (l *Serial) Drain(limit int) int {
	n := 0
	for n < limit && l.Step() {
		n++
	}
	return n
}

// Shards implements Partitioned: a serial engine is one shard.
func (l *Serial) Shards() int { return 1 }

// Shard implements Partitioned.
func (l *Serial) Shard(i int) Scheduler {
	if i != 0 {
		panic("engine: serial engine has a single shard")
	}
	return l
}

// CrossAfter implements Partitioned: with one shard there is nothing to
// cross, so it degenerates to After.
func (l *Serial) CrossAfter(from, to int, d time.Duration, fn func()) {
	l.After(d, fn)
}

// eventHeap orders events by (at, seq) for deterministic FIFO behaviour
// among simultaneous events.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// up restores the heap invariant for element j against its ancestors —
// the same sift container/heap.Push performs after an append. The
// sharded engine's batched barrier merge appends a batch of events and
// then calls up on each appended index in order, which is exactly
// equivalent to the sequence of individual heap.Push calls.
func (h eventHeap) up(j int) {
	for {
		i := (j - 1) / 2
		if i == j || !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}
