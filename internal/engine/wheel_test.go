package engine

import (
	"fmt"
	"testing"
	"time"
)

// --- wheel-vs-heap equivalence ---

// runSerialScript drives a randomized scheduling script — one-shots
// across every wheel range (cur window, all three levels, overflow),
// nested scheduling, cancels, tickers with SetInterval and Stop, a mass
// cancel, and chunked runs — and returns the exact firing log. The
// script is a pure function of the seed, so the wheel and heap backends
// must produce byte-identical logs.
func runSerialScript(kind QueueBackend, seed uint64) []string {
	l := NewSerialQueue(kind)
	rng := seed
	next := func(n int) int {
		rng = mix(rng, 0x6a09e667f3bcc909)
		return int(rng % uint64(n))
	}
	deltas := []time.Duration{
		0,
		1,
		300 * time.Nanosecond,
		7 * time.Microsecond,
		100 * time.Microsecond,
		900 * time.Microsecond,
		3 * time.Millisecond, // beyond level 0's 2.1ms block
		47 * time.Millisecond,
		800 * time.Millisecond, // beyond level 1's 268ms block
		2 * time.Second,
		40 * time.Second, // beyond level 2's 34.4s block: overflow
		11 * time.Minute,
	}
	var log []string
	var timers []Timer
	id := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		myid := id
		id++
		d := deltas[next(len(deltas))]
		tm := l.After(d, func() {
			log = append(log, fmt.Sprintf("%d@%d", myid, l.Now()))
			if depth < 3 {
				for i, k := 0, next(4); i < k; i++ {
					spawn(depth + 1)
				}
			}
			if len(timers) > 0 && next(3) == 0 {
				timers[next(len(timers))].Stop()
			}
		})
		if next(4) == 0 {
			timers = append(timers, tm)
		}
	}
	for i := 0; i < 40; i++ {
		spawn(0)
	}
	for i := 0; i < 6; i++ {
		tid := id
		id++
		iv := deltas[3+next(6)]
		fires := 0
		var tk Ticker
		tk = l.Every(iv, func() {
			fires++
			log = append(log, fmt.Sprintf("t%d@%d", tid, l.Now()))
			switch {
			case fires == 4:
				tk.SetInterval(iv + iv/2)
			case fires >= 8:
				tk.Stop()
			}
		})
	}
	l.RunFor(10 * time.Second)
	for _, tm := range timers {
		tm.Stop()
	}
	l.RunFor(11 * time.Minute)
	l.Drain(1 << 20)
	return log
}

func TestWheelMatchesHeapPopOrder(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		wheel := runSerialScript(QueueWheel, seed)
		ref := runSerialScript(QueueHeap, seed)
		if len(wheel) == 0 {
			t.Fatalf("seed %d: empty firing log", seed)
		}
		if len(wheel) != len(ref) {
			t.Fatalf("seed %d: wheel fired %d events, heap %d", seed, len(wheel), len(ref))
		}
		for i := range wheel {
			if wheel[i] != ref[i] {
				t.Fatalf("seed %d: firing %d diverged: wheel %s, heap %s", seed, i, wheel[i], ref[i])
			}
		}
	}
}

// TestShardedWheelMatchesHeap pins the cross-shard workload digest
// across queue backends on both engines — the in-test form of the
// farm-bench engine-loop A/B gate.
func TestShardedWheelMatchesHeap(t *testing.T) {
	const nodes = 24
	run := func(part Partitioned, sched Scheduler) string {
		w := startNodes(part, nodes)
		sched.RunFor(50 * time.Millisecond)
		return w.digest()
	}
	serialWheel := NewSerial()
	want := run(serialWheel, serialWheel)

	serialHeap := NewSerialQueue(QueueHeap)
	if got := run(serialHeap, serialHeap); got != want {
		t.Errorf("serial heap diverged:\n got %s\nwant %s", got, want)
	}
	for _, kind := range []QueueBackend{QueueWheel, QueueHeap} {
		x := NewSharded(ShardedOptions{Shards: 5, Workers: 3, Lookahead: testLookahead, ForceWorkers: true, Queue: kind})
		got := run(x, x)
		x.Stop()
		if got != want {
			t.Errorf("sharded %v diverged:\n got %s\nwant %s", kind, got, want)
		}
	}
}

// --- Pending and lazy compaction ---

// TestPendingExcludesCancelled is the regression test for the
// documented contract: Pending counts unfired, uncancelled events.
// (The heap-era Serial counted cancelled events until they drained.)
func TestPendingExcludesCancelled(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		l.After(time.Millisecond, func() {})
		tm := l.After(2*time.Millisecond, func() {})
		l.After(3*time.Millisecond, func() {})
		tk := l.Every(4*time.Millisecond, func() {})
		if n := l.Pending(); n != 4 {
			t.Fatalf("Pending() = %d before cancel, want 4", n)
		}
		tm.Stop()
		if n := l.Pending(); n != 3 {
			t.Fatalf("Pending() = %d after Timer.Stop, want 3", n)
		}
		tk.Stop()
		if n := l.Pending(); n != 2 {
			t.Fatalf("Pending() = %d after Ticker.Stop, want 2", n)
		}
		l.RunFor(10 * time.Millisecond)
		if n := l.Pending(); n != 0 {
			t.Fatalf("Pending() = %d after drain, want 0", n)
		}
	})
}

// TestMassCancelCompacts cancels a large far-future batch and requires
// the queue to reclaim the dead entries immediately instead of
// stranding them until their (distant) pop time.
func TestMassCancelCompacts(t *testing.T) {
	for _, kind := range []QueueBackend{QueueWheel, QueueHeap} {
		t.Run(kind.String(), func(t *testing.T) {
			l := NewSerialQueue(kind)
			const n = 10000
			timers := make([]Timer, 0, n)
			for i := 0; i < n; i++ {
				// Spread across every wheel level and the overflow.
				d := time.Duration(i) * 7 * time.Millisecond
				timers = append(timers, l.After(time.Millisecond+d, func() {}))
			}
			ran := 0
			l.After(500*time.Microsecond, func() { ran++ })
			for _, tm := range timers {
				if !tm.Stop() {
					t.Fatal("Stop on pending timer reported false")
				}
			}
			if l.q.dead >= compactMinDead {
				t.Fatalf("%d cancelled events still queued after mass cancel, want < %d", l.q.dead, compactMinDead)
			}
			if n := l.Pending(); n != 1 {
				t.Fatalf("Pending() = %d after mass cancel, want 1", n)
			}
			l.RunFor(time.Second)
			if ran != 1 {
				t.Fatalf("surviving event ran %d times, want 1", ran)
			}
			if n := l.Pending(); n != 0 {
				t.Fatalf("Pending() = %d after drain, want 0", n)
			}
		})
	}
}

// TestSerialStaleHandleAfterRecycle mirrors the sharded pool test: once
// an event fires and its slot is reused, the old handle's Stop must be
// inert rather than cancelling the slot's new occupant.
func TestSerialStaleHandleAfterRecycle(t *testing.T) {
	l := NewSerial()
	tm1 := l.After(time.Millisecond, func() {})
	l.RunFor(2 * time.Millisecond)
	ran := false
	l.After(time.Millisecond, func() { ran = true }) // reuses the pooled event
	if tm1.Stop() {
		t.Fatal("Stop on a fired (recycled) handle reported true")
	}
	l.RunFor(2 * time.Millisecond)
	if !ran {
		t.Fatal("stale handle Stop cancelled the recycled slot's new event")
	}
}

// --- ticker edge semantics ---

// TestTickerSetIntervalVsSimultaneous: rescheduling an armed ticker
// takes a fresh sequence number, so an event already scheduled at the
// rescheduled instant keeps FIFO priority over the ticker's firing.
func TestTickerSetIntervalVsSimultaneous(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		var log []string
		tk := l.Every(10*time.Millisecond, func() { log = append(log, "tick") })
		l.After(5*time.Millisecond, func() {
			// First the one-shot lands at 15ms, then the ticker is
			// rescheduled to the same instant: FIFO says X fires first.
			l.After(10*time.Millisecond, func() { log = append(log, "X") })
			tk.SetInterval(10 * time.Millisecond)
		})
		l.RunFor(26 * time.Millisecond)
		want := []string{"X", "tick", "tick"}
		if fmt.Sprint(log) != fmt.Sprint(want) {
			t.Fatalf("log = %v, want %v (one-shot before rescheduled ticker at 15ms, next tick at 25ms)", log, want)
		}
	})
}

// TestTickerRearmFIFOAmongSameTick: tickers sharing an instant fire in
// creation order on every round — the in-place re-arm must keep
// assigning sequence numbers in firing order.
func TestTickerRearmFIFOAmongSameTick(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		var log []string
		for _, name := range []string{"A", "B", "C"} {
			name := name
			l.Every(time.Millisecond, func() { log = append(log, name) })
		}
		l.RunFor(4 * time.Millisecond)
		want := []string{"A", "B", "C", "A", "B", "C", "A", "B", "C", "A", "B", "C"}
		if fmt.Sprint(log) != fmt.Sprint(want) {
			t.Fatalf("log = %v, want 4 rounds of [A B C]", log)
		}
	})
}

// TestTickerStopReleasesHeldEvent: a fast-path ticker owns one event
// for its lifetime; stopping it from inside its own callback must hand
// that event back to the pool (the fire epilogue path), and stopping
// while armed must reclaim it lazily without counting it as pending.
func TestTickerStopReleasesHeldEvent(t *testing.T) {
	l := NewSerial()
	fires := 0
	var tk Ticker
	tk = l.Every(time.Millisecond, func() {
		fires++
		if fires == 2 {
			tk.Stop()
		}
	})
	l.RunFor(10 * time.Millisecond)
	if fires != 2 {
		t.Fatalf("ticker fired %d times after in-callback Stop, want 2", fires)
	}
	if n := l.Pending(); n != 0 {
		t.Fatalf("Pending() = %d after ticker stop, want 0", n)
	}
	if len(l.q.free) == 0 {
		t.Fatal("held ticker event was not returned to the pool")
	}
	// The pooled event must be reusable.
	ran := false
	l.After(time.Millisecond, func() { ran = true })
	l.RunFor(2 * time.Millisecond)
	if !ran {
		t.Fatal("event pooled from a stopped ticker did not fire when reused")
	}
}

// --- RealTime ticker semantics (wall clock: generous assertions) ---

func TestRealTimeTickerStopInsideCallback(t *testing.T) {
	r := NewRealTime()
	fires := 0
	var tk Ticker
	tk = r.Every(2*time.Millisecond, func() {
		fires++
		if fires == 2 {
			tk.Stop()
		}
	})
	r.RunFor(20 * time.Millisecond)
	if fires != 2 {
		t.Fatalf("ticker fired %d times after in-callback Stop, want 2", fires)
	}
	if n := r.Pending(); n != 0 {
		t.Fatalf("Pending() = %d after ticker stop, want 0", n)
	}
}

func TestRealTimeTickerRearmFIFO(t *testing.T) {
	r := NewRealTime()
	var log []string
	rounds := 0
	r.Every(5*time.Millisecond, func() { log = append(log, "A") })
	r.Every(5*time.Millisecond, func() { log = append(log, "B"); rounds++ })
	for i := 0; i < 40 && rounds < 3; i++ {
		r.RunFor(5 * time.Millisecond)
	}
	if rounds < 3 {
		t.Fatalf("only %d rounds completed", rounds)
	}
	for i := 0; i+1 < 2*rounds; i += 2 {
		if log[i] != "A" || log[i+1] != "B" {
			t.Fatalf("round %d fired as %v, want A before B every round", i/2, log[i:i+2])
		}
	}
}

func TestRealTimeTickerSetIntervalWhileArmed(t *testing.T) {
	r := NewRealTime()
	fires := 0
	tk := r.Every(time.Hour, func() { fires++ })
	if n := r.Pending(); n != 1 {
		t.Fatalf("Pending() = %d with one armed ticker, want 1", n)
	}
	// Re-key the armed firing from an hour out to milliseconds.
	tk.SetInterval(2 * time.Millisecond)
	if got := tk.Interval(); got != 2*time.Millisecond {
		t.Fatalf("Interval() = %v, want 2ms", got)
	}
	for i := 0; i < 40 && fires < 2; i++ {
		r.RunFor(2 * time.Millisecond)
	}
	if fires < 2 {
		t.Fatal("rescheduled ticker never fired on the shortened interval")
	}
	tk.Stop()
	if n := r.Pending(); n != 0 {
		t.Fatalf("Pending() = %d after Stop, want 0", n)
	}
}

func TestRealTimeStaleHandleAfterRecycle(t *testing.T) {
	r := NewRealTime()
	tm1 := r.After(time.Millisecond, func() {})
	r.RunFor(5 * time.Millisecond)
	ran := false
	r.After(2*time.Millisecond, func() { ran = true }) // reuses the pooled event
	if tm1.Stop() {
		t.Fatal("Stop on a fired (recycled) handle reported true")
	}
	r.RunFor(10 * time.Millisecond)
	if !ran {
		t.Fatal("stale handle Stop cancelled the recycled slot's new event")
	}
}

// --- ScheduleOn ---

func TestScheduleOn(t *testing.T) {
	forEachEngine(t, func(t *testing.T, l Scheduler) {
		var got []int
		ScheduleOn(l, 2*time.Millisecond, func() { got = append(got, 2) })
		ScheduleOn(l, time.Millisecond, func() { got = append(got, 1) })
		if n := l.Pending(); n != 2 {
			t.Fatalf("Pending() = %d, want 2", n)
		}
		l.RunFor(5 * time.Millisecond)
		if fmt.Sprint(got) != fmt.Sprint([]int{1, 2}) {
			t.Fatalf("fired as %v, want [1 2]", got)
		}
	})
	// RealTime implements the handle-free path too.
	r := NewRealTime()
	ran := false
	ScheduleOn(r, time.Millisecond, func() { ran = true })
	r.RunFor(15 * time.Millisecond)
	if !ran {
		t.Fatal("ScheduleOn event did not fire on RealTime")
	}
}
