package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestShardTimerStopCrossShardPanics pins the owning-shard contract for
// Timer.Stop: stopping a timer that lives on shard 0 from an event
// executing on shard 1 is a data race on live heap state, and the
// executor diagnoses the detectable case with a panic instead of
// corrupting silently.
func TestShardTimerStopCrossShardPanics(t *testing.T) {
	x := NewSharded(ShardedOptions{Shards: 2, Workers: 1, Lookahead: testLookahead})
	defer x.Stop()
	victim := x.Shard(0).After(10*time.Millisecond, func() {})
	x.Shard(1).After(100*time.Microsecond, func() {
		victim.Stop()
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cross-shard Stop did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "outside its execution context") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	x.RunFor(time.Millisecond)
}

// TestShardTimerStopOwnShardAllowed is the positive counterpart: a
// callback stopping a timer on its own shard, and the driver stopping
// any timer between runs, are both legal.
func TestShardTimerStopOwnShardAllowed(t *testing.T) {
	x := NewSharded(ShardedOptions{Shards: 2, Workers: 1, Lookahead: testLookahead})
	defer x.Stop()
	fired := false
	victim := x.Shard(1).After(10*time.Millisecond, func() { fired = true })
	stopped := false
	x.Shard(1).After(100*time.Microsecond, func() {
		stopped = victim.Stop()
	})
	x.RunFor(20 * time.Millisecond)
	if !stopped || fired {
		t.Fatalf("same-shard stop: stopped=%v fired=%v, want true/false", stopped, fired)
	}
	other := x.Shard(0).After(10*time.Millisecond, func() { t.Error("stopped timer fired") })
	if !other.Stop() {
		t.Fatal("driver-context stop between runs returned false")
	}
	x.RunFor(20 * time.Millisecond)
}

// TestStaleHandleAfterRecycle pins the generation check on pooled
// events: once a timer's event has fired and been recycled into a new
// event, Stop through the stale handle must report false and must not
// cancel the event now occupying the slot.
func TestStaleHandleAfterRecycle(t *testing.T) {
	x := NewSharded(ShardedOptions{Shards: 1, Workers: 1, Lookahead: testLookahead})
	defer x.Stop()
	first := x.Shard(0).After(time.Millisecond, func() {})
	x.RunFor(2 * time.Millisecond) // fires and recycles the event
	secondFired := false
	x.Shard(0).After(time.Millisecond, func() { secondFired = true })
	if first.Stop() {
		t.Fatal("stale handle Stop returned true after its event fired")
	}
	x.RunFor(2 * time.Millisecond)
	if !secondFired {
		t.Fatal("recycled event was cancelled through a stale handle")
	}
}

// poolScriptOp is one step of the pooling property test: an event at a
// pseudo-random time that optionally schedules a child and optionally
// stops an earlier op's timer.
type poolScriptOp struct {
	at         time.Duration
	childDelay time.Duration // 0 = no child
	stopTarget int           // -1 = no stop
}

// runPoolScript executes the script on any scheduler and returns the
// observed firing order. All decisions live in the pre-generated
// script, so serial and sharded runs execute literally the same
// closures.
func runPoolScript(s Scheduler, script []poolScriptOp, runFor time.Duration) []int {
	timers := make([]Timer, len(script))
	var order []int
	for i, op := range script {
		i, op := i, op
		timers[i] = s.At(op.at, func() {
			order = append(order, i)
			if op.childDelay > 0 {
				s.After(op.childDelay, func() { order = append(order, len(script)+i) })
			}
			if op.stopTarget >= 0 {
				timers[op.stopTarget].Stop()
			}
		})
	}
	s.RunFor(runFor)
	return order
}

// TestPooledOrderMatchesSerial is the pooling property test: a
// single-shard sharded executor — whose events are recycled through the
// shard free list, with batched barrier repairs and the head-time heap
// in play — must produce the exact firing order of the serial engine
// (itself pinned against the unpooled container/heap reference by
// TestWheelMatchesHeapPopOrder), across randomized schedules with duplicate
// times, nested scheduling, and Stop/cancel interleavings (including
// stops of already-fired, already-recycled events).
func TestPooledOrderMatchesSerial(t *testing.T) {
	const ops = 200
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		script := make([]poolScriptOp, ops)
		for i := range script {
			script[i] = poolScriptOp{
				// Coarse quantization forces plenty of equal-time ties.
				at:         time.Duration(rng.Intn(40)) * 250 * time.Microsecond,
				stopTarget: -1,
			}
			if rng.Intn(2) == 0 {
				script[i].childDelay = time.Duration(1+rng.Intn(8)) * 250 * time.Microsecond
			}
			if i > 0 && rng.Intn(3) == 0 {
				script[i].stopTarget = rng.Intn(i)
			}
		}
		runFor := 15 * time.Millisecond

		ref := runPoolScript(NewSerial(), script, runFor)
		x := NewSharded(ShardedOptions{Shards: 1, Workers: 1, Lookahead: testLookahead})
		got := runPoolScript(x, script, runFor)
		x.Stop()

		if len(ref) != len(got) {
			t.Fatalf("seed %d: serial fired %d events, pooled fired %d", seed, len(ref), len(got))
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("seed %d: pop order diverged at %d: serial %d, pooled %d", seed, i, ref[i], got[i])
			}
		}
	}
}
