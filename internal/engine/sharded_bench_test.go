package engine

import (
	"fmt"
	"testing"
	"time"
)

// benchWorkload builds a pure-engine approximation of the fabric's
// steady state at fabric scale: nodes ticking on their home shards with
// staggered intervals, a fraction of ticks emitting cross-shard sends.
// No fabric, soil, or Almanac cost — what remains is exactly the
// executor's own overhead: epoch selection, per-shard heap churn, event
// allocation, and the barrier merge.
func benchWorkload(part Partitioned, nodes int, crossEvery int) {
	for n := 0; n < nodes; n++ {
		n := n
		home := n % part.Shards()
		s := part.Shard(home)
		interval := 100*time.Microsecond + time.Duration(n%37)*time.Microsecond
		count := 0
		s.Every(interval, func() {
			count++
			if crossEvery > 0 && count%crossEvery == 0 {
				dst := (home + 1 + n%7) % part.Shards()
				part.CrossAfter(home, dst, testLookahead+time.Duration(n%5)*time.Microsecond, func() {})
			}
		})
	}
}

// BenchmarkShardedHotLoop measures the executor's own per-epoch costs at
// several shard counts: ns/op and allocs/op over a fixed span of virtual
// time. Shard counts sweep past the fabric sizes of interest (a
// 500-switch fat-tree maps to ~512 shards); allocations here are almost
// entirely event scheduling and barrier-merge traffic.
func BenchmarkShardedHotLoop(b *testing.B) {
	for _, shards := range []int{16, 128, 512} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x := NewSharded(ShardedOptions{
					Shards:    shards,
					Workers:   4,
					Lookahead: testLookahead,
				})
				benchWorkload(x, shards, 8)
				x.RunFor(40 * time.Millisecond)
				epochs, runs := x.EpochStats()
				x.Stop()
				b.ReportMetric(float64(runs)/float64(epochs), "par-avail")
			}
		})
	}
}

// BenchmarkShardedSparseSelect is the regime the shard-time heap exists
// for: many shards, activity concentrated in a few. Per epoch the old
// executor paid O(shards) scans regardless; with the head-time heap,
// epoch selection costs O(runnable·log shards).
func BenchmarkShardedSparseSelect(b *testing.B) {
	const shards = 512
	for _, active := range []int{4, 32} {
		b.Run(fmt.Sprintf("active=%d", active), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x := NewSharded(ShardedOptions{
					Shards:    shards,
					Workers:   4,
					Lookahead: testLookahead,
				})
				benchWorkload(x, active, 8)
				x.RunFor(40 * time.Millisecond)
				x.Stop()
			}
		})
	}
}

// BenchmarkSerialHotLoop is the single-heap reference for the same
// workload shape.
func BenchmarkSerialHotLoop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := NewSerial()
		benchWorkload(l, 512, 8)
		l.RunFor(40 * time.Millisecond)
	}
}
