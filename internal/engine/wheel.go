package engine

import (
	"container/heap"
	"math/bits"
	"time"
)

// QueueBackend selects the event-queue data structure of an executor.
type QueueBackend uint8

const (
	// QueueWheel is the default: a hierarchical timing wheel for the
	// near future with a min-heap overflow for events beyond the wheel
	// horizon. Insert and re-arm are O(1) for the periodic workloads
	// that dominate the emulator (poll groups, time triggers, traffic
	// schedules, bus flushes).
	QueueWheel QueueBackend = iota
	// QueueHeap is the original container/heap backend, kept as the
	// reference implementation for the engine-loop A/B digest gate and
	// the heap-vs-wheel benchmark variants.
	QueueHeap
)

// String names the backend for experiment tables and -json output.
func (k QueueBackend) String() string {
	if k == QueueHeap {
		return "heap"
	}
	return "wheel"
}

// event is the one scheduled-callback record shared by every executor
// (serial, sharded shards, RealTime).
type event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
	// index is >= 0 while the event is queued (it is the heap index on
	// heap-backed queues and a plain queued marker on the wheel) and -1
	// once popped. Timer handles and the ticker fast path use it to
	// distinguish armed from in-flight events.
	index int
	// gen is bumped each time the event is recycled through a free
	// list; Timer handles compare it to detect staleness, so a Stop on
	// a handle whose event has fired and been reused is inert.
	gen uint64
	// held marks an event owned by a fast-path ticker: the queue never
	// recycles it on pop, so the ticker can re-arm the same object with
	// a fresh (at, seq) every period — zero allocations per firing.
	held bool
}

// eventLess is the executor-wide total order: time first, then the
// submission sequence number, so simultaneous events run FIFO.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is the pooled pending-event set of one execution lane (the
// serial engine, or one shard of the sharded engine). It owns the event
// free list and the (at, seq) sequence counter, and orders events behind
// one of two backends: the timing wheel (default) or the reference
// container/heap. Both produce the identical pop sequence — (at, seq) is
// a strict total order, so the internal shape is unobservable.
type eventQueue struct {
	kind QueueBackend
	// nopool disables event recycling. Only the serial heap reference
	// backend sets it, to stay byte-faithful to the original allocation
	// behaviour that the A/B benchmarks compare against.
	nopool bool
	seq    uint64
	// live and dead partition the queued events into unfired-uncancelled
	// and cancelled-awaiting-reclaim; Pending reports live only.
	live int
	dead int

	heap eventHeap
	// mergePending counts events appended raw to the heap during a
	// sharded barrier-merge batch, repaired in one flushMerge pass.
	mergePending int

	w *wheel

	free []*event
}

// alloc takes an event off the free list (or allocates one) and stamps
// it with the queue's next sequence number.
func (q *eventQueue) alloc(at time.Duration, fn func()) *event {
	var ev *event
	if n := len(q.free); n > 0 {
		ev = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.stopped = at, q.seq, fn, false
	} else {
		ev = &event{at: at, seq: q.seq, fn: fn}
	}
	q.seq++
	return ev
}

// release returns a popped event to the free list. Bumping the
// generation invalidates any Timer handle still pointing at it.
func (q *eventQueue) release(ev *event) {
	ev.fn = nil
	if q.nopool {
		return
	}
	ev.gen++
	q.free = append(q.free, ev)
}

// add allocates, stamps, and enqueues a new event.
func (q *eventQueue) add(at time.Duration, fn func()) *event {
	ev := q.alloc(at, fn)
	q.enqueue(ev)
	return ev
}

// rearm re-enqueues an event the caller still owns (a ticker's held
// event) with a fresh time and sequence number.
func (q *eventQueue) rearm(ev *event, at time.Duration) {
	ev.at, ev.seq, ev.stopped = at, q.seq, false
	q.seq++
	q.enqueue(ev)
}

func (q *eventQueue) enqueue(ev *event) {
	q.live++
	if q.kind == QueueHeap {
		heap.Push(&q.heap, ev)
		return
	}
	if q.w == nil {
		q.w = &wheel{}
	}
	if q.live+q.dead == 1 {
		// Empty queue: move the wheel origin to the event so placement
		// never cascades through the dead range in between.
		q.w.base = int64(ev.at) >> wheelTickShift
	}
	ev.index = 0
	q.w.place(ev)
}

// merge enqueues a barrier-merge event. On the heap backend the event
// is appended raw and repaired in one flushMerge batch (exactly
// equivalent to sequential pushes); on the wheel, placement is O(1)
// already and no repair pass is needed.
func (q *eventQueue) merge(at time.Duration, fn func()) {
	if q.kind != QueueHeap {
		q.add(at, fn)
		return
	}
	ev := q.alloc(at, fn)
	q.live++
	ev.index = len(q.heap)
	q.heap = append(q.heap, ev)
	q.mergePending++
}

// flushMerge repairs the heap after a merge batch: a sift-up per
// appended event when the batch is small relative to the heap, or one
// heap.Init when the batch dominates. Both yield a valid heap over the
// same (at, seq) set, so the pop sequence is unaffected.
func (q *eventQueue) flushMerge() {
	k, n := q.mergePending, len(q.heap)
	if k == 0 {
		return
	}
	if k*(bits.Len(uint(n))+1) < n {
		for i := n - k; i < n; i++ {
			q.heap.up(i)
		}
	} else {
		heap.Init(&q.heap)
	}
	q.mergePending = 0
}

// nextAt peeks the earliest queued event time (cancelled events
// included, mirroring the heap-head semantics the sharded executor's
// epoch selection has always used).
func (q *eventQueue) nextAt() (time.Duration, bool) {
	if q.kind == QueueHeap {
		if len(q.heap) == 0 {
			return 0, false
		}
		return q.heap[0].at, true
	}
	if q.w == nil || !q.w.ensureCur() {
		return 0, false
	}
	return q.w.cur[q.w.curPos].at, true
}

// pop removes and returns the earliest queued event, or nil.
func (q *eventQueue) pop() *event {
	var ev *event
	if q.kind == QueueHeap {
		if len(q.heap) == 0 {
			return nil
		}
		ev = heap.Pop(&q.heap).(*event)
	} else {
		if q.w == nil || !q.w.ensureCur() {
			return nil
		}
		w := q.w
		ev = w.cur[w.curPos]
		w.cur[w.curPos] = nil
		w.curPos++
		if w.curPos == len(w.cur) {
			w.cur = w.cur[:0]
			w.curPos = 0
		}
		ev.index = -1
	}
	if ev.stopped {
		q.dead--
	} else {
		q.live--
	}
	return ev
}

// stop cancels a queued event in place. The slot is reclaimed lazily:
// on pop, or by compact once cancelled events dominate the queue (so a
// mass cancel — e.g. removing a seed and its timers — cannot strand an
// arbitrarily large dead tail).
func (q *eventQueue) stop(ev *event) {
	ev.stopped = true
	q.live--
	q.dead++
	if q.dead >= compactMinDead && q.dead >= q.live {
		q.compact()
	}
}

// compactMinDead is the lazy-compaction floor: below it the dead tail
// is too small to be worth a sweep regardless of the live count.
const compactMinDead = 64

// compact removes every cancelled event from the queue. Firing order is
// untouched — only events that would have been skipped on pop vanish —
// so digests cannot move; on the sharded engine the epoch structure may
// change (a cancelled head no longer opens a window), which is equally
// unobservable because skipped events never advance a shard clock.
func (q *eventQueue) compact() {
	if q.kind == QueueHeap {
		kept := q.heap[:0]
		for _, ev := range q.heap {
			if ev.stopped {
				q.release(ev)
			} else {
				kept = append(kept, ev)
			}
		}
		for i := len(kept); i < len(q.heap); i++ {
			q.heap[i] = nil
		}
		q.heap = kept
		for i, ev := range q.heap {
			ev.index = i
		}
		heap.Init(&q.heap)
		q.mergePending = 0
		q.dead = 0
		return
	}
	w := q.w
	// cur: filter in place, preserving sorted order.
	j := w.curPos
	for i := w.curPos; i < len(w.cur); i++ {
		ev := w.cur[i]
		if ev.stopped {
			ev.index = -1
			q.release(ev)
		} else {
			w.cur[j] = ev
			j++
		}
	}
	for i := j; i < len(w.cur); i++ {
		w.cur[i] = nil
	}
	w.cur = w.cur[:j]
	if w.curPos == len(w.cur) {
		w.cur = w.cur[:0]
		w.curPos = 0
	}
	// slots: order within a slot is irrelevant (drain sorts), so filter
	// each occupied one.
	for level := 0; level < wheelLevels; level++ {
		for word := range w.occ[level] {
			m := w.occ[level][word]
			for m != 0 {
				b := bits.TrailingZeros64(m)
				m &^= 1 << b
				idx := word<<6 + b
				slot := w.slot[level][idx]
				k := 0
				for _, ev := range slot {
					if ev.stopped {
						ev.index = -1
						q.release(ev)
					} else {
						slot[k] = ev
						k++
					}
				}
				for i := k; i < len(slot); i++ {
					slot[i] = nil
				}
				w.slot[level][idx] = slot[:k]
				if k == 0 {
					w.occ[level][word] &^= 1 << b
				}
			}
		}
	}
	// overflow: filter and rebuild.
	kept := w.over[:0]
	for _, ev := range w.over {
		if ev.stopped {
			ev.index = -1
			q.release(ev)
		} else {
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(w.over); i++ {
		w.over[i] = nil
	}
	w.over = kept
	for i, ev := range w.over {
		ev.index = i
	}
	heap.Init(&w.over)
	q.dead = 0
}

// Wheel geometry: 16.384µs level-0 ticks, 128 slots per level, three
// levels. Aligned blocks (not sliding windows) keep placement a pure
// function of (tick, base): level 0 spans the current 2.1ms block,
// level 1 the current 268ms block, level 2 the current 34.4s block, and
// everything beyond the level-2 block waits in the overflow heap.
const (
	wheelTickShift = 14
	wheelSlotBits  = 7
	wheelSlots     = 1 << wheelSlotBits
	wheelSlotMask  = wheelSlots - 1
	wheelLevels    = 3
)

// wheel is the QueueWheel backend state. Invariants, with base the
// level-0 tick of the wheel origin:
//
//   - every event in cur has tick < base; cur is sorted by (at, seq)
//     and consumed from curPos, so cur's remainder is globally earliest;
//   - every event in a slot or the overflow has tick >= base;
//   - the level-1 slot at base's own index and the level-2 slot at
//     base's own index are empty except immediately after base enters a
//     new block (a drain rollover), and ensureCur cascades them before
//     any further draining — so a block's leftovers can never be
//     overtaken by later events already sitting in level 0.
type wheel struct {
	base   int64
	cur    []*event
	curPos int
	slot   [wheelLevels][wheelSlots][]*event
	occ    [wheelLevels][wheelSlots / 64]uint64
	over   eventHeap
}

// place routes an event by its tick relative to base. O(1): no loops,
// no sifting.
func (w *wheel) place(ev *event) {
	tick := int64(ev.at) >> wheelTickShift
	if tick < w.base {
		w.curInsert(ev)
		return
	}
	switch {
	case tick>>wheelSlotBits == w.base>>wheelSlotBits:
		w.put(0, int(tick)&wheelSlotMask, ev)
	case tick>>(2*wheelSlotBits) == w.base>>(2*wheelSlotBits):
		w.put(1, int(tick>>wheelSlotBits)&wheelSlotMask, ev)
	case tick>>(3*wheelSlotBits) == w.base>>(3*wheelSlotBits):
		w.put(2, int(tick>>(2*wheelSlotBits))&wheelSlotMask, ev)
	default:
		heap.Push(&w.over, ev)
	}
}

func (w *wheel) put(level, idx int, ev *event) {
	ev.index = 0
	w.slot[level][idx] = append(w.slot[level][idx], ev)
	w.occ[level][idx>>6] |= 1 << (idx & 63)
}

// curInsert places an event scheduled before the wheel origin (clamped
// "now" scheduling during a drain) into the sorted cur window. Callers
// clamp at >= now, so the insertion point is always at or after curPos.
func (w *wheel) curInsert(ev *event) {
	ev.index = 0
	lo, hi := w.curPos, len(w.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(w.cur[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.cur = append(w.cur, nil)
	copy(w.cur[lo+1:], w.cur[lo:])
	w.cur[lo] = ev
}

// scan returns the lowest occupied slot index >= from at the given
// level.
func (w *wheel) scan(level, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	occ := &w.occ[level]
	word, bit := from>>6, from&63
	if v := occ[word] &^ (1<<bit - 1); v != 0 {
		return word<<6 + bits.TrailingZeros64(v), true
	}
	for i := word + 1; i < len(occ); i++ {
		if occ[i] != 0 {
			return i<<6 + bits.TrailingZeros64(occ[i]), true
		}
	}
	return 0, false
}

func (w *wheel) occupied(level, idx int) bool {
	return w.occ[level][idx>>6]&(1<<(idx&63)) != 0
}

// ensureCur refills the sorted cur window when it is exhausted: cascade
// any leftovers in the current upper-level slots, migrate due overflow,
// then drain the earliest occupied level-0 slot. Reports whether any
// event is queued.
func (w *wheel) ensureCur() bool {
	if w.curPos < len(w.cur) {
		return true
	}
	for {
		// Overflow events whose tick entered base's level-2 block (base
		// only moves between drains, so this runs before any draining in
		// the new block).
		for len(w.over) > 0 && int64(w.over[0].at)>>wheelTickShift>>(3*wheelSlotBits) == w.base>>(3*wheelSlotBits) {
			w.place(heap.Pop(&w.over).(*event))
		}
		// Leftovers in the current upper-level slots — present only just
		// after base rolled into a new block — must cascade down before
		// level 0 is trusted, or later events already in level 0 would
		// overtake them.
		if idx := int(w.base>>(2*wheelSlotBits)) & wheelSlotMask; w.occupied(2, idx) {
			w.cascade(2, idx)
			continue
		}
		if idx := int(w.base>>wheelSlotBits) & wheelSlotMask; w.occupied(1, idx) {
			w.cascade(1, idx)
			continue
		}
		if idx, ok := w.scan(0, int(w.base)&wheelSlotMask); ok {
			w.drain(idx)
			return true
		}
		if idx, ok := w.scan(1, int(w.base>>wheelSlotBits)&wheelSlotMask+1); ok {
			w.cascade(1, idx)
			continue
		}
		if idx, ok := w.scan(2, int(w.base>>(2*wheelSlotBits))&wheelSlotMask+1); ok {
			w.cascade(2, idx)
			continue
		}
		if len(w.over) > 0 {
			// Everything pending is beyond the wheel horizon: jump the
			// origin to it and migrate.
			w.base = int64(w.over[0].at) >> wheelTickShift
			continue
		}
		return false
	}
}

// cascade empties one upper-level slot, advancing base to the slot's
// block start if that is ahead, and re-places its events — each lands
// at a lower level (or cur), never back in the same slot.
func (w *wheel) cascade(level, idx int) {
	evs := w.slot[level][idx]
	w.slot[level][idx] = evs[:0]
	w.occ[level][idx>>6] &^= 1 << (idx & 63)
	shift := uint(level * wheelSlotBits)
	blockStart := (w.base &^ (1<<(shift+wheelSlotBits) - 1)) | int64(idx)<<shift
	if blockStart > w.base {
		w.base = blockStart
	}
	for i, ev := range evs {
		evs[i] = nil
		w.place(ev)
	}
}

// drain moves one level-0 slot into cur (sorted by (at, seq) so
// simultaneous events keep FIFO order) and advances base past it. The
// slot keeps its backing array and cur keeps its own, so each converges
// to its individual high-water capacity and steady state allocates
// nothing. (An earlier draft swapped the two backings instead; rotating
// arrays through all 128 slots meant the smallest array in the rotation
// set the realloc rate, which kept a slow allocation trickle alive.)
func (w *wheel) drain(idx int) {
	evs := w.slot[0][idx]
	w.slot[0][idx] = evs[:0]
	w.occ[0][idx>>6] &^= 1 << (idx & 63)
	w.base = (w.base&^wheelSlotMask | int64(idx)) + 1
	sortEvents(evs)
	w.cur = append(w.cur[:0], evs...)
	w.curPos = 0
	for i := range evs {
		evs[i] = nil // the retained slot backing must not pin fired events
	}
}

// sortEvents orders events by (at, seq) in place without allocating:
// insertion sort for typical slot sizes, heapsort beyond. The order is
// a strict total order, so the result is unique either way.
func sortEvents(evs []*event) {
	n := len(evs)
	if n < 2 {
		return
	}
	if n <= 32 {
		for i := 1; i < n; i++ {
			ev := evs[i]
			j := i - 1
			for j >= 0 && eventLess(ev, evs[j]) {
				evs[j+1] = evs[j]
				j--
			}
			evs[j+1] = ev
		}
		return
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDownEvents(evs, i, n)
	}
	for i := n - 1; i > 0; i-- {
		evs[0], evs[i] = evs[i], evs[0]
		siftDownEvents(evs, 0, i)
	}
}

func siftDownEvents(evs []*event, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && eventLess(evs[c], evs[c+1]) {
			c++
		}
		if !eventLess(evs[i], evs[c]) {
			return
		}
		evs[i], evs[c] = evs[c], evs[i]
		i = c
	}
}

// eventHeap orders events by (at, seq) for deterministic FIFO behaviour
// among simultaneous events. It backs the QueueHeap reference mode, the
// wheel's overflow, and the RealTime scheduler.
type eventHeap []*event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// up restores the heap invariant for element j against its ancestors —
// the same sift container/heap.Push performs after an append. flushMerge
// calls it per raw-appended event when a barrier batch is small, which
// is exactly equivalent to the sequence of individual heap.Push calls.
func (h eventHeap) up(j int) {
	for {
		i := (j - 1) / 2
		if i == j || !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}

// queueOwner is implemented by schedulers whose pending events live in
// an eventQueue — the serial engine and the sharded engine's shard
// views. EveryOn routes Ticker construction through it onto the
// zero-alloc fast path.
type queueOwner interface {
	Scheduler
	queue() *eventQueue
	// checkTickerContext panics when the caller may not mutate the
	// queue right now (a cross-shard ticker mutation during an epoch).
	checkTickerContext(op string)
	// noteQueueChanged runs the owner's post-mutation maintenance after
	// a direct queue insert or cancel (the sharded engine re-keys the
	// shard's entry in the head-time heap when in driver context; the
	// serial engine needs nothing). The ticker fire path skips it: a
	// firing ticker is by definition inside its owner's run loop, where
	// the epoch barrier re-keys heads anyway.
	noteQueueChanged()
}

// queueTicker is the fast-path Ticker: one event object and one closure
// for the ticker's lifetime, re-armed in place with a fresh (at, seq)
// after each firing. Steady state allocates nothing — the generic
// re-arm ticker allocates an event and a Timer handle per firing.
type queueTicker struct {
	o        queueOwner
	ev       *event
	fire     func()
	interval time.Duration
	fn       func()
	stopped  bool
}

func newQueueTicker(o queueOwner, interval time.Duration, fn func()) *queueTicker {
	t := &queueTicker{o: o, interval: interval, fn: fn}
	t.fire = func() {
		// Run the callback before re-arming, like the generic ticker:
		// events the callback schedules take their sequence numbers
		// first, so the FIFO order among simultaneous events is
		// bit-identical to the allocate-per-fire implementation.
		t.fn()
		q := t.o.queue()
		if !t.stopped {
			q.rearm(t.ev, t.o.Now()+t.interval)
		} else if ev := t.ev; ev != nil {
			// Stopped from inside its own callback: the held event is
			// in flight, so the epilogue hands it back to the pool.
			t.ev = nil
			ev.held = false
			q.release(ev)
		}
	}
	q := o.queue()
	ev := q.alloc(o.Now()+interval, t.fire)
	ev.held = true
	q.enqueue(ev)
	t.ev = ev
	o.noteQueueChanged()
	return t
}

func (t *queueTicker) Stop() {
	if t.stopped {
		return
	}
	t.o.checkTickerContext("Ticker.Stop")
	t.stopped = true
	if ev := t.ev; ev != nil && ev.index >= 0 {
		// Armed: cancel the pending firing; the queue reclaims the
		// event lazily (pop or compaction).
		t.ev = nil
		ev.held = false
		t.o.queue().stop(ev)
		t.o.noteQueueChanged()
	}
}

func (t *queueTicker) Interval() time.Duration { return t.interval }

func (t *queueTicker) SetInterval(interval time.Duration) {
	if interval <= 0 {
		panic("engine: non-positive ticker interval")
	}
	if t.stopped {
		t.interval = interval
		return
	}
	t.o.checkTickerContext("Ticker.SetInterval")
	t.interval = interval
	if ev := t.ev; ev != nil && ev.index >= 0 {
		// Armed: reschedule the pending firing to interval from now.
		// The queued event is abandoned in place and a fresh one takes
		// a new sequence number — the same ordering the generic
		// ticker's Stop+After produced, so an event already scheduled
		// at the same instant still fires first.
		q := t.o.queue()
		ev.held = false
		q.stop(ev)
		nev := q.alloc(t.o.Now()+interval, t.fire)
		nev.held = true
		q.enqueue(nev)
		t.ev = nev
		t.o.noteQueueChanged()
	}
	// Inside our own callback the epilogue re-arms at interval from
	// now, which is the same instant the armed path would pick.
}

// scheduleOnly is implemented by schedulers that can arm a one-shot
// callback without materializing a Timer handle.
type scheduleOnly interface {
	schedule(d time.Duration, fn func())
}

// ScheduleOn schedules fn after d on s without returning a Timer. For
// callers that never cancel (the bus flush path re-arms one prebuilt
// closure per subscriber), this skips the per-call handle allocation
// entirely: on a pooled queue the steady state allocates nothing.
func ScheduleOn(s Scheduler, d time.Duration, fn func()) {
	if p, ok := s.(scheduleOnly); ok {
		p.schedule(d, fn)
		return
	}
	s.After(d, fn)
}
