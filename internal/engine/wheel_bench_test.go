package engine

import (
	"runtime"
	"testing"
	"time"
)

// BenchmarkSerialTickerStorm is the regime the pooled wheel exists for:
// a large population of periodic timers re-arming forever, the shape of
// the fabric's steady state (every switch polling counters, every seed
// on its interval). Setup and warm-up are outside the timer; the
// measured region is pure steady-state firing. On the wheel backend a
// re-arm reuses the ticker's one held event in place, so the measured
// loop must run at 0 B/op; the heap backend is the seed behavior, two
// allocations per fire (event + timer handle).
func BenchmarkSerialTickerStorm(b *testing.B) {
	for _, kind := range []QueueBackend{QueueWheel, QueueHeap} {
		b.Run(kind.String(), func(b *testing.B) {
			l := NewSerialQueue(kind)
			const tickers = 1024
			if kind == QueueWheel {
				// One-time capacity convergence: the aligned-block wheel
				// touches a fresh top-level slot every 268ms and only
				// revisits it one full rotation (34.4s) later, so slot
				// arrays keep growing for the first rotation of virtual
				// time. Spray one tick-sized batch per top-level slot
				// across a whole rotation so every array reaches its
				// steady-state capacity before the measured region.
				for d := 250 * time.Millisecond; d <= 36*time.Second; d += 250 * time.Millisecond {
					for k := 0; k < tickers; k++ {
						l.At(d+time.Duration(k)*300*time.Nanosecond, func() {})
					}
				}
				l.Drain(1 << 30)
			}
			for i := 0; i < tickers; i++ {
				interval := time.Duration(100+i%400) * time.Microsecond
				l.Every(interval, func() {})
			}
			l.RunFor(2 * time.Second) // converge level-0/1 occupancy highs
			runtime.GC()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.RunFor(time.Millisecond)
			}
		})
	}
}

// BenchmarkSerialAtStop measures one-shot churn with heavy
// cancellation: arm a batch, cancel half, drain. This exercises the
// pooled free list, lazy compaction, and wheel placement across the
// near levels.
func BenchmarkSerialAtStop(b *testing.B) {
	for _, kind := range []QueueBackend{QueueWheel, QueueHeap} {
		b.Run(kind.String(), func(b *testing.B) {
			l := NewSerialQueue(kind)
			var timers [256]Timer
			l.RunFor(time.Millisecond) // move off t=0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range timers {
					d := time.Duration(1+(i+j)%500) * time.Microsecond
					timers[j] = l.After(d, func() {})
				}
				for j := 0; j < len(timers); j += 2 {
					timers[j].Stop()
				}
				l.RunFor(600 * time.Microsecond)
			}
		})
	}
}
