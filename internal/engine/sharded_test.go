package engine

import (
	"fmt"
	"testing"
	"time"
)

// mix is a splitmix64-style hash step: the workload below uses it so a
// node's digest depends on the exact (time, value) sequence it saw.
func mix(h, v uint64) uint64 {
	h ^= v
	h += 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// nodeWorkload is a synthetic multi-node simulation written against the
// Partitioned interface, mirroring how the fabric partitions switches:
// every node's state is mutated only by events on its home shard, and
// cross-node messages go through CrossAfter with a delay >= lookahead.
// Cross messages merge into an XOR accumulator, so the digest is
// insensitive to arrival order among same-time messages (which the
// serial and sharded engines may interleave differently) but fully
// sensitive to which tick observes each message.
type nodeWorkload struct {
	part  Partitioned
	nodes int
	hash  []uint64
	inbox []uint64
	count []uint64
}

const testLookahead = 50 * time.Microsecond

func startNodes(part Partitioned, nodes int) *nodeWorkload {
	w := &nodeWorkload{
		part:  part,
		nodes: nodes,
		hash:  make([]uint64, nodes),
		inbox: make([]uint64, nodes),
		count: make([]uint64, nodes),
	}
	for n := 0; n < nodes; n++ {
		n := n
		home := n % part.Shards()
		s := part.Shard(home)
		interval := 100*time.Microsecond + time.Duration(n)*7*time.Microsecond
		s.Every(interval, func() {
			w.hash[n] = mix(w.hash[n], uint64(n)<<32^uint64(s.Now()))
			w.hash[n] = mix(w.hash[n], w.inbox[n])
			w.inbox[n] = 0
			w.count[n]++
			if w.hash[n]%3 == 0 {
				dst := int(w.hash[n] >> 8 % uint64(nodes))
				v := w.hash[n]
				// Arrivals land on a half-microsecond offset so they
				// never collide with tick instants (which are whole
				// microseconds): which tick observes a message is then
				// identical across engines.
				delay := testLookahead + 500*time.Nanosecond + time.Duration(w.hash[n]%97)*time.Microsecond
				w.part.CrossAfter(home, dst%part.Shards(), delay, func() {
					w.inbox[dst] ^= v
				})
			}
		})
	}
	return w
}

func (w *nodeWorkload) digest() string {
	h := uint64(0)
	events := uint64(0)
	for n := 0; n < w.nodes; n++ {
		h = mix(h, w.hash[n])
		h = mix(h, w.inbox[n])
		events += w.count[n]
	}
	return fmt.Sprintf("digest=%016x events=%d", h, events)
}

// TestShardedMatchesSerial drives the same partitioned workload on the
// serial engine and on sharded executors of several geometries and
// requires byte-identical digests — the determinism property the
// experiment pipeline relies on.
func TestShardedMatchesSerial(t *testing.T) {
	const nodes = 24
	run := func(part Partitioned, sched Scheduler) string {
		w := startNodes(part, nodes)
		sched.RunFor(50 * time.Millisecond)
		return w.digest()
	}

	serial := NewSerial()
	want := run(serial, serial)

	for _, geom := range []ShardedOptions{
		{Shards: 1, Workers: 1},
		{Shards: 5, Workers: 3, ForceWorkers: true},
		{Shards: 24, Workers: 8, ForceWorkers: true},
	} {
		geom.Lookahead = testLookahead
		x := NewSharded(geom)
		got := run(x, x)
		x.Stop()
		if got != want {
			t.Errorf("sharded %d/%d diverged:\n got %s\nwant %s", geom.Shards, geom.Workers, got, want)
		}
	}
}

// TestShardedRepeatable runs the same sharded workload twice and
// requires identical digests (no dependence on goroutine scheduling).
func TestShardedRepeatable(t *testing.T) {
	run := func() string {
		x := NewSharded(ShardedOptions{Shards: 7, Workers: 4, Lookahead: testLookahead, ForceWorkers: true})
		defer x.Stop()
		w := startNodes(x, 20)
		x.RunFor(80 * time.Millisecond)
		return w.digest()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("sharded runs diverged:\n run1 %s\n run2 %s", a, b)
	}
}

// TestCrossMergeOrderDeterministic sends same-timestamp cross messages
// from several shards to one destination and checks the delivery order
// is the documented (source shard, emission order) merge order,
// independent of worker count.
func TestCrossMergeOrderDeterministic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		x := NewSharded(ShardedOptions{Shards: 4, Workers: workers, Lookahead: testLookahead, ForceWorkers: true})
		var got []int
		for sh := 3; sh >= 1; sh-- {
			sh := sh
			x.Shard(sh).At(0, func() {
				for k := 0; k < 2; k++ {
					k := k
					x.CrossAfter(sh, 0, time.Millisecond, func() {
						got = append(got, sh*10+k)
					})
				}
			})
		}
		x.RunFor(2 * time.Millisecond)
		x.Stop()
		want := []int{10, 11, 20, 21, 30, 31}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("workers=%d: merge order = %v, want %v", workers, got, want)
		}
	}
}

// TestCrossBelowLookaheadPanics verifies the conservative contract is
// enforced: emitting a cross-shard event that would land inside the
// executing epoch is a bug in the caller.
func TestCrossBelowLookaheadPanics(t *testing.T) {
	x := NewSharded(ShardedOptions{Shards: 2, Workers: 1, Lookahead: testLookahead})
	defer x.Stop()
	x.Shard(0).After(time.Millisecond, func() {
		x.CrossAfter(0, 1, time.Nanosecond, func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected lookahead-violation panic")
		}
	}()
	x.RunFor(2 * time.Millisecond)
}

// TestShardViewRunPanics: shard views schedule, the root drives.
func TestShardViewRunPanics(t *testing.T) {
	x := NewSharded(ShardedOptions{Shards: 2, Workers: 1})
	defer x.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.Shard(1).RunFor(time.Millisecond)
}

// TestSetupCrossDelivery: CrossAfter from the driving goroutine before
// any run is merged at the next run start, regardless of delay.
func TestSetupCrossDelivery(t *testing.T) {
	x := NewSharded(ShardedOptions{Shards: 3, Workers: 2, Lookahead: testLookahead, ForceWorkers: true})
	defer x.Stop()
	fired := time.Duration(-1)
	sh2 := x.Shard(2)
	x.CrossAfter(0, 2, time.Microsecond, func() { fired = sh2.Now() })
	x.RunFor(time.Millisecond)
	if fired != time.Microsecond {
		t.Fatalf("setup cross event fired at %v, want 1µs", fired)
	}
}
