package engine

import (
	"testing"
	"time"
)

// Short wall-clock intervals with generous assertions: the point is
// that events fire on the wall clock in deadline order, not precise
// timing (CI machines stall).

func TestRealTimeFiresOnWallClock(t *testing.T) {
	r := NewRealTime()
	var fired []int
	r.After(4*time.Millisecond, func() { fired = append(fired, 2) })
	r.After(1*time.Millisecond, func() { fired = append(fired, 1) })
	ticks := 0
	tk := r.Every(3*time.Millisecond, func() { ticks++ })

	start := time.Now()
	r.RunFor(30 * time.Millisecond)
	elapsed := time.Since(start)
	tk.Stop()

	if elapsed < 30*time.Millisecond {
		t.Fatalf("RunFor returned after %v of wall time, want >= 30ms", elapsed)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("one-shots fired as %v, want [1 2] in deadline order", fired)
	}
	// 3 ms period over 30 ms: nominally 10 firings; accept any real
	// progress so a stalled CI runner can't flake the test.
	if ticks < 3 {
		t.Fatalf("ticker fired %d times in 30ms at 3ms period, want >= 3", ticks)
	}
	if now := r.Now(); now < 30*time.Millisecond {
		t.Fatalf("Now() = %v after a 30ms run", now)
	}
}

func TestRealTimeTimerStop(t *testing.T) {
	r := NewRealTime()
	ran := false
	tm := r.After(5*time.Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop before firing reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	r.RunFor(10 * time.Millisecond)
	if ran {
		t.Fatal("cancelled timer fired")
	}
	if n := r.Pending(); n != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", n)
	}
}

func TestRealTimeStepAndDrain(t *testing.T) {
	r := NewRealTime()
	if r.Step() {
		t.Fatal("Step on an empty scheduler reported work")
	}
	n := 0
	r.After(time.Millisecond, func() { n++ })
	r.After(2*time.Millisecond, func() { n++ })
	if !r.Step() {
		t.Fatal("Step did not run the pending event")
	}
	if n != 1 {
		t.Fatalf("ran %d events after one Step, want 1", n)
	}
	if got := r.Drain(10); got != 1 {
		t.Fatalf("Drain processed %d events, want 1", got)
	}
	if n != 2 {
		t.Fatalf("ran %d events total, want 2", n)
	}
}

// TestRealTimeCloseWakesBlockedRun is the daemon-shutdown contract: a
// run loop asleep toward a far-future deadline must return within
// 100 ms of Close, not wait the deadline out.
func TestRealTimeCloseWakesBlockedRun(t *testing.T) {
	r := NewRealTime()
	r.After(time.Hour, func() { t.Error("event fired after Close") })
	returned := make(chan struct{})
	go func() {
		r.RunFor(time.Hour)
		close(returned)
	}()
	time.Sleep(10 * time.Millisecond) // let the loop reach its sleep
	start := time.Now()
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-returned:
	case <-time.After(100 * time.Millisecond):
		t.Fatal("RunFor still blocked 100ms after Close")
	}
	if d := time.Since(start); d >= 100*time.Millisecond {
		t.Fatalf("shutdown took %v, want < 100ms", d)
	}
	// After Close the scheduler is inert: runs return immediately and
	// new events are refused.
	if r.Step() {
		t.Fatal("Step ran an event after Close")
	}
	if tm := r.After(time.Millisecond, func() { t.Error("post-Close event fired") }); tm.Stop() {
		t.Fatal("post-Close timer claimed to be stoppable")
	}
	r.RunFor(5 * time.Millisecond)
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestRealTimeCrossGoroutineSchedule exercises the wake path: an event
// scheduled from another goroutine with an earlier deadline than the
// one the run loop is sleeping toward must still fire on time.
func TestRealTimeCrossGoroutineSchedule(t *testing.T) {
	r := NewRealTime()
	fired := make(chan struct{}, 1)
	r.After(250*time.Millisecond, func() {}) // far-out head to sleep toward
	go func() {
		time.Sleep(2 * time.Millisecond)
		r.After(time.Millisecond, func() { fired <- struct{}{} })
	}()
	done := make(chan struct{})
	go func() {
		r.RunFor(60 * time.Millisecond)
		close(done)
	}()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("cross-goroutine event never fired")
	}
	<-done
}
