package engine

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// ShardedOptions configures a sharded executor.
type ShardedOptions struct {
	// Shards is the number of event partitions. Consumers (the fabric)
	// map each emulated switch to one shard; more shards than workers
	// improves load balance. 0 means 2*Workers.
	Shards int
	// Workers is the number of worker goroutines executing shards
	// concurrently within an epoch. 0 means GOMAXPROCS.
	Workers int
	// Lookahead is the conservative synchronization window: events
	// within [T, T+Lookahead) execute in parallel across shards, so
	// every cross-shard send must be delayed by at least Lookahead. The
	// fabric's minimum cross-switch latency (min of hop latency and
	// control base latency) is the natural choice. 0 means 50µs, the
	// fabric's default minimum.
	Lookahead time.Duration
	// ForceWorkers dispatches epochs to the worker pool even when the
	// process has a single CPU (where the executor normally degrades to
	// running shards inline, since goroutine handoff without parallelism
	// is pure overhead). Tests set it to exercise the concurrent path
	// under the race detector on any machine.
	ForceWorkers bool
}

// DefaultLookahead matches the default fabric's minimum cross-switch
// latency (fabric.DefaultHopLatency).
const DefaultLookahead = 50 * time.Microsecond

// Sharded is a conservative-parallel discrete-event executor. Events
// are partitioned into shards, each with its own heap, clock, and
// sequence counter. Execution proceeds epoch-by-epoch: all shards with
// events inside the current lookahead window run concurrently on worker
// goroutines, then a barrier merges cross-shard sends into destination
// heaps in a fixed (epoch, source shard, emission seq) order. Because
// per-shard execution is a deterministic (time, seq) order and the
// barrier merge is a deterministic order too, a run is reproducible —
// and for state partitioned by shard it is identical to the serial
// engine's output (see docs/engine.md for the argument).
//
// Sharded itself implements Scheduler; its At/After/Every/Now delegate
// to shard 0, the conventional home of centralized components. Step,
// RunUntil, RunFor, and Drain drive the epoch machinery and must be
// called from one goroutine (the driver).
type Sharded struct {
	opts   ShardedOptions
	shards []*shard
	now    time.Duration

	// epochEnd is the exclusive bound of the executing epoch, read by
	// workers to enforce the lookahead contract. Written only while
	// workers are idle; the work-channel send / WaitGroup pair orders
	// the accesses.
	epochEnd time.Duration
	inEpoch  bool

	work     chan *shard
	wg       sync.WaitGroup
	runnable []*shard
	inline   bool
	started  bool
	stopped  bool

	// epoch statistics, maintained by the driver.
	epochs    uint64
	shardRuns uint64
}

// shard is one event partition. Between epochs it is owned by the
// driving goroutine; during an epoch it is owned by exactly one worker.
type shard struct {
	x      *Sharded
	id     int
	now    time.Duration
	events eventHeap
	seq    uint64
	outbox []crossEvent
	ran    int
}

type crossEvent struct {
	to int
	at time.Duration
	fn func()
}

// NewSharded returns a sharded executor at virtual time 0.
func NewSharded(opts ShardedOptions) *Sharded {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Shards <= 0 {
		opts.Shards = 2 * opts.Workers
	}
	if opts.Lookahead <= 0 {
		opts.Lookahead = DefaultLookahead
	}
	x := &Sharded{opts: opts}
	x.inline = opts.Workers == 1 || (runtime.GOMAXPROCS(0) == 1 && !opts.ForceWorkers)
	x.shards = make([]*shard, opts.Shards)
	for i := range x.shards {
		x.shards[i] = &shard{x: x, id: i}
	}
	x.work = make(chan *shard, opts.Shards)
	return x
}

// Shards implements Partitioned.
func (x *Sharded) Shards() int { return x.opts.Shards }

// Workers returns the worker goroutine count.
func (x *Sharded) Workers() int { return x.opts.Workers }

// Lookahead returns the conservative window. Consumers validate their
// minimum cross-shard latency against it.
func (x *Sharded) Lookahead() time.Duration { return x.opts.Lookahead }

// EpochStats reports how many epochs have run and the total shard-runs
// dispatched across them. Their ratio is the mean number of shards
// eligible to execute concurrently per epoch — the executor's available
// parallelism on this workload, independent of the host's core count.
func (x *Sharded) EpochStats() (epochs, shardRuns uint64) {
	return x.epochs, x.shardRuns
}

// Shard implements Partitioned.
func (x *Sharded) Shard(i int) Scheduler { return x.shards[i] }

// CrossAfter implements Partitioned: it buffers fn in shard from's
// outbox for delivery on shard to at from's current time plus d. The
// buffer is merged into to's heap at the next epoch barrier, so d must
// be >= Lookahead when called from an executing event (enforced).
func (x *Sharded) CrossAfter(from, to int, d time.Duration, fn func()) {
	s := x.shards[from]
	at := s.now + d
	if x.inEpoch && at < x.epochEnd {
		panic(fmt.Sprintf("engine: cross-shard delay %v below lookahead %v", d, x.opts.Lookahead))
	}
	s.outbox = append(s.outbox, crossEvent{to: to, at: at, fn: fn})
}

// Stop terminates the worker goroutines. The executor must not be used
// afterwards. Safe to call multiple times.
func (x *Sharded) Stop() {
	if x.started && !x.stopped {
		close(x.work)
	}
	x.stopped = true
}

func (x *Sharded) start() {
	if x.started {
		return
	}
	x.started = true
	for i := 0; i < x.opts.Workers; i++ {
		go func() {
			for s := range x.work {
				s.run(s.x.epochEnd)
				s.x.wg.Done()
			}
		}()
	}
}

// Now delegates to shard 0, like the other root Scheduler methods: it
// returns the event time inside a shard-0 callback and the completed
// global frontier between runs (advance raises every shard clock to the
// frontier after each epoch).
func (x *Sharded) Now() time.Duration { return x.shards[0].now }

// At delegates to shard 0 (the home of centralized components).
func (x *Sharded) At(at time.Duration, fn func()) Timer { return x.shards[0].At(at, fn) }

// After delegates to shard 0.
func (x *Sharded) After(d time.Duration, fn func()) Timer { return x.shards[0].After(d, fn) }

// Every delegates to shard 0.
func (x *Sharded) Every(interval time.Duration, fn func()) Ticker {
	return EveryOn(x.shards[0], interval, fn)
}

// Pending returns scheduled events across all shards and outboxes.
func (x *Sharded) Pending() int {
	n := 0
	for _, s := range x.shards {
		n += len(s.events) + len(s.outbox)
	}
	return n
}

// nextEventTime returns the earliest pending event time, or -1 if none.
func (x *Sharded) nextEventTime() time.Duration {
	next := time.Duration(-1)
	for _, s := range x.shards {
		if len(s.events) > 0 && (next < 0 || s.events[0].at < next) {
			next = s.events[0].at
		}
	}
	return next
}

// RunUntil processes all events scheduled at or before t, then advances
// every clock to exactly t.
func (x *Sharded) RunUntil(t time.Duration) {
	x.start()
	x.merge()
	for {
		next := x.nextEventTime()
		if next < 0 || next > t {
			break
		}
		// Conservative window: events strictly before end are
		// independent across shards because any cross-shard effect they
		// emit arrives at >= next+Lookahead >= end. The final window is
		// [next, t+1) so events at exactly t run (their cross effects
		// land beyond t, outside this call).
		end := next + x.opts.Lookahead
		if end > t {
			end = t + 1
		}
		x.runEpoch(end)
		x.merge()
		frontier := end
		if frontier > t {
			frontier = t
		}
		x.advance(frontier)
	}
	x.advance(t)
}

// RunFor advances the clock by d, processing everything in between.
func (x *Sharded) RunFor(d time.Duration) { x.RunUntil(x.now + d) }

// Step runs one epoch at the earliest pending event time. It reports
// whether any event ran.
func (x *Sharded) Step() bool {
	x.start()
	x.merge()
	for {
		next := x.nextEventTime()
		if next < 0 {
			return false
		}
		end := next + x.opts.Lookahead
		ran := x.runEpoch(end)
		x.merge()
		x.advance(end)
		if ran > 0 {
			return true
		}
	}
}

// Drain runs epochs until no events remain or limit events have been
// processed. It returns the number of events processed.
func (x *Sharded) Drain(limit int) int {
	x.start()
	x.merge()
	n := 0
	for n < limit {
		next := x.nextEventTime()
		if next < 0 {
			break
		}
		ran := x.runEpoch(next + x.opts.Lookahead)
		x.merge()
		x.advance(next + x.opts.Lookahead)
		if ran == 0 && x.nextEventTime() < 0 {
			break
		}
		n += ran
	}
	return n
}

// runEpoch executes every shard with events inside [_, end) and blocks
// until all complete. It returns the number of events processed.
func (x *Sharded) runEpoch(end time.Duration) int {
	run := x.runnable[:0]
	for _, s := range x.shards {
		if len(s.events) > 0 && s.events[0].at < end {
			run = append(run, s)
		}
	}
	x.runnable = run
	if len(run) == 0 {
		return 0
	}
	x.epochEnd = end
	x.inEpoch = true
	x.epochs++
	x.shardRuns += uint64(len(run))
	if len(run) == 1 || x.inline {
		// No parallelism to exploit; skip the handoff.
		for _, s := range run {
			s.run(end)
		}
	} else {
		x.wg.Add(len(run))
		for _, s := range run {
			x.work <- s
		}
		x.wg.Wait()
	}
	x.inEpoch = false
	total := 0
	for _, s := range run {
		total += s.ran
	}
	return total
}

// merge drains every outbox into the destination heaps in (source
// shard, emission order) order, assigning destination sequence numbers
// deterministically.
func (x *Sharded) merge() {
	for _, s := range x.shards {
		for _, ce := range s.outbox {
			d := x.shards[ce.to]
			at := ce.at
			if at < d.now {
				at = d.now
			}
			ev := &event{at: at, seq: d.seq, fn: ce.fn}
			d.seq++
			heap.Push(&d.events, ev)
		}
		s.outbox = s.outbox[:0]
	}
}

// advance raises every clock to at least t.
func (x *Sharded) advance(t time.Duration) {
	if x.now < t {
		x.now = t
	}
	for _, s := range x.shards {
		if s.now < t {
			s.now = t
		}
	}
}

// run executes the shard's events strictly before end in (time, seq)
// order. Called with exclusive ownership of the shard.
func (s *shard) run(end time.Duration) {
	s.ran = 0
	for len(s.events) > 0 && s.events[0].at < end {
		ev := heap.Pop(&s.events).(*event)
		if ev.stopped {
			continue
		}
		s.now = ev.at
		ev.fn()
		s.ran++
	}
}

// --- shard as a Scheduler view ---

// Now returns the shard-local virtual time.
func (s *shard) Now() time.Duration { return s.now }

// At schedules fn on this shard. Must be called from an event executing
// on this shard, or from the driving goroutine between runs.
func (s *shard) At(at time.Duration, fn func()) Timer {
	if at < s.now {
		at = s.now
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &serialTimer{ev: ev}
}

// After schedules fn on this shard after delay d.
func (s *shard) After(d time.Duration, fn func()) Timer {
	return s.At(s.now+d, fn)
}

// Every schedules a periodic callback on this shard.
func (s *shard) Every(interval time.Duration, fn func()) Ticker {
	return EveryOn(s, interval, fn)
}

// Pending returns this shard's scheduled event count.
func (s *shard) Pending() int { return len(s.events) }

func (s *shard) Step() bool               { panic("engine: drive the root executor, not a shard view") }
func (s *shard) RunUntil(t time.Duration) { panic("engine: drive the root executor, not a shard view") }
func (s *shard) RunFor(d time.Duration)   { panic("engine: drive the root executor, not a shard view") }
func (s *shard) Drain(limit int) int      { panic("engine: drive the root executor, not a shard view") }
