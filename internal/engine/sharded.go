package engine

import (
	"container/heap"
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// ShardedOptions configures a sharded executor.
type ShardedOptions struct {
	// Shards is the number of event partitions. Consumers (the fabric)
	// map each emulated switch to one shard; more shards than workers
	// improves load balance. 0 means 2*Workers.
	Shards int
	// Workers is the number of worker goroutines executing shards
	// concurrently within an epoch. 0 means GOMAXPROCS.
	Workers int
	// Lookahead is the conservative synchronization window: events
	// within [T, T+Lookahead) execute in parallel across shards, so
	// every cross-shard send must be delayed by at least Lookahead. The
	// fabric's minimum cross-switch latency (min of hop latency and
	// control base latency) is the natural choice. 0 means 50µs, the
	// fabric's default minimum.
	Lookahead time.Duration
	// ForceWorkers dispatches epochs to the worker pool even when the
	// process has a single CPU (where the executor normally degrades to
	// running shards inline, since goroutine handoff without parallelism
	// is pure overhead). Tests set it to exercise the concurrent path
	// under the race detector on any machine.
	ForceWorkers bool
	// ProfileLabels attaches pprof labels to the driver and worker
	// goroutines per executor phase ("select", "run", "merge"), so a CPU
	// profile of a large run shows where epoch time goes. Off by default:
	// setting goroutine labels on every phase transition costs a few
	// percent on the hot loop.
	ProfileLabels bool
	// Queue selects each shard's event-queue backend. The zero value is
	// QueueWheel; QueueHeap keeps the original container/heap for the
	// engine-loop A/B gate.
	Queue QueueBackend
}

// DefaultLookahead matches the default fabric's minimum cross-switch
// latency (fabric.DefaultHopLatency).
const DefaultLookahead = 50 * time.Microsecond

// Sharded is a conservative-parallel discrete-event executor. Events
// are partitioned into shards, each with its own heap, clock, and
// sequence counter. Execution proceeds epoch-by-epoch: all shards with
// events inside the current lookahead window run concurrently on worker
// goroutines, then a barrier merges cross-shard sends into destination
// heaps in a fixed (epoch, source shard, emission seq) order. Because
// per-shard execution is a deterministic (time, seq) order and the
// barrier merge is a deterministic order too, a run is reproducible —
// and for state partitioned by shard it is identical to the serial
// engine's output (see docs/engine.md for the argument).
//
// Epoch selection is O(runnable·log shards), not O(shards): an indexed
// min-heap over shard head-times tracks the global minimum, updated
// incrementally whenever a shard's head can have changed (after it runs,
// after a merge lands events on it, after a root At between runs). The
// steady-state loop is also allocation-light: each shard recycles popped
// events through a free list it alone owns, and the runnable set, outbox
// buffers, and merge scratch all reuse their backing arrays.
//
// Sharded itself implements Scheduler; its At/After/Every/Now delegate
// to shard 0, the conventional home of centralized components. Step,
// RunUntil, RunFor, and Drain drive the epoch machinery and must be
// called from one goroutine (the driver).
type Sharded struct {
	opts   ShardedOptions
	shards []*shard

	// now is the completed global frontier, advanced only between
	// epochs. A shard's effective clock is max(shard.now, x.now): idle
	// shards are dragged along lazily instead of by an O(shards) sweep
	// per epoch.
	now time.Duration

	// heads is the indexed min-heap of all shards keyed by head event
	// time (empty shards carry a +inf sentinel); shard.pos is the index
	// maintenance for heap.Fix. Epoch selection walks the heap array
	// without mutating it — every shard inside the window is reachable
	// from the root through ancestors also inside the window — and
	// re-keys changed heads afterwards in one batch.
	heads shardHeap

	// dfs is the reusable stack for the heap walk in runEpoch.
	dfs []int32

	// headsDirty means the head keys (shard.headAt) are current but the
	// heap order is not. Dense epochs — where most heads move and a
	// rebuild would cost more than a scan — set it and selection falls
	// back to one linear pass over the keys; the first sparse barrier
	// afterwards rebuilds the heap once and incremental maintenance
	// resumes. The executor thereby self-selects: O(shards) read-only
	// scans while most shards are runnable anyway, O(runnable·log
	// shards) selection when activity is concentrated in few shards.
	headsDirty bool

	// epochEnd is the exclusive bound of the executing epoch, read by
	// workers to enforce the lookahead contract. Written only while
	// workers are idle; the work-channel send / WaitGroup pair orders
	// the accesses.
	epochEnd time.Duration
	inEpoch  bool

	work     chan *shard
	wg       sync.WaitGroup
	runnable []*shard
	// mergeSrc collects shards with non-empty outboxes since the last
	// barrier: appended by CrossAfter between runs and by the driver for
	// shards that ran. Sorted by shard id before draining, so the merge
	// order stays (source shard, emission order) regardless of how the
	// epoch discovered the sources.
	mergeSrc []*shard
	// mergeDst collects destination shards that received events during
	// the current barrier, for the batched heap repair + head refresh.
	mergeDst []*shard
	// fix is the reusable scratch list of shards whose head keys moved
	// during a barrier.
	fix     []*shard
	inline  bool
	started bool
	stopped bool

	// epoch statistics, maintained by the driver.
	epochs    uint64
	shardRuns uint64

	// pprof label sets, nil unless ProfileLabels (phase() is then a
	// no-op branch on the hot path).
	lblSelect, lblRun, lblMerge, lblNone context.Context
}

// shard is one event partition. Between epochs it is owned by the
// driving goroutine; during an epoch it is owned by exactly one worker.
type shard struct {
	x   *Sharded
	id  int
	now time.Duration
	// q holds the shard's pending events: pooled free list, sequence
	// counter, and the wheel (or reference heap) behind one type shared
	// with the serial engine. Single owner, so no locking.
	q      eventQueue
	outbox []crossEvent
	ran    int
	// ranTotal is the cumulative event count this shard has executed
	// across all epochs; ShardEventCounts reads it between runs.
	ranTotal uint64

	// headAt/pos are this shard's key and index in x.heads. headAt is
	// the head event time, or headInf when the shard has no events.
	headAt time.Duration
	pos    int

	// executing is true while run() owns the shard, used to diagnose
	// cross-shard Timer.Stop misuse (see shardTimer.Stop).
	executing bool

	// merging tracks this shard as a destination during one barrier
	// merge (it is in x.mergeDst awaiting flushMerge + head re-key).
	merging bool
	queued  bool // in x.mergeSrc
	dirty   bool // in the barrier's fix list (dedup mark, cleared each barrier)
}

type crossEvent struct {
	to int
	at time.Duration
	fn func()
}

// NewSharded returns a sharded executor at virtual time 0.
func NewSharded(opts ShardedOptions) *Sharded {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Shards <= 0 {
		opts.Shards = 2 * opts.Workers
	}
	if opts.Lookahead <= 0 {
		opts.Lookahead = DefaultLookahead
	}
	x := &Sharded{opts: opts}
	x.inline = opts.Workers == 1 || (runtime.GOMAXPROCS(0) == 1 && !opts.ForceWorkers)
	x.shards = make([]*shard, opts.Shards)
	x.heads = make(shardHeap, opts.Shards)
	for i := range x.shards {
		s := &shard{x: x, id: i, pos: i, headAt: headInf}
		s.q.kind = opts.Queue
		x.shards[i] = s
		x.heads[i] = s
	}
	x.work = make(chan *shard, opts.Shards)
	if opts.ProfileLabels {
		bg := context.Background()
		x.lblSelect = pprof.WithLabels(bg, pprof.Labels("engine", "select"))
		x.lblRun = pprof.WithLabels(bg, pprof.Labels("engine", "run"))
		x.lblMerge = pprof.WithLabels(bg, pprof.Labels("engine", "merge"))
		x.lblNone = bg
	}
	return x
}

// phase tags the driver goroutine for CPU profiles when ProfileLabels is
// set; otherwise it is a single predictable branch.
func (x *Sharded) phase(ctx context.Context) {
	if ctx != nil {
		pprof.SetGoroutineLabels(ctx)
	}
}

// Shards implements Partitioned.
func (x *Sharded) Shards() int { return x.opts.Shards }

// Workers returns the worker goroutine count.
func (x *Sharded) Workers() int { return x.opts.Workers }

// Lookahead returns the conservative window. Consumers validate their
// minimum cross-shard latency against it.
func (x *Sharded) Lookahead() time.Duration { return x.opts.Lookahead }

// Queue returns the queue backend the shards run on.
func (x *Sharded) Queue() QueueBackend { return x.opts.Queue }

// EpochStats reports how many epochs have run and the total shard-runs
// dispatched across them. Their ratio is the mean number of shards
// eligible to execute concurrently per epoch — the executor's available
// parallelism on this workload, independent of the host's core count.
func (x *Sharded) EpochStats() (epochs, shardRuns uint64) {
	return x.epochs, x.shardRuns
}

// ShardEventCounts returns the cumulative number of events each shard
// has executed. Workload experiments use the share running on shard 0
// — the home of centralized components — as a direct measure of how
// much of the event stream still serializes on the central lane. Call
// it between runs.
func (x *Sharded) ShardEventCounts() []uint64 {
	out := make([]uint64, len(x.shards))
	for i, s := range x.shards {
		out[i] = s.ranTotal
	}
	return out
}

// Shard implements Partitioned.
func (x *Sharded) Shard(i int) Scheduler { return x.shards[i] }

// CrossAfter implements Partitioned: it buffers fn in shard from's
// outbox for delivery on shard to at from's current time plus d. The
// buffer is merged into to's heap at the next epoch barrier, so d must
// be >= Lookahead when called from an executing event (enforced).
func (x *Sharded) CrossAfter(from, to int, d time.Duration, fn func()) {
	s := x.shards[from]
	at := s.effNow() + d
	if x.inEpoch && at < x.epochEnd {
		panic(fmt.Sprintf("engine: cross-shard delay %v below lookahead %v", d, x.opts.Lookahead))
	}
	s.outbox = append(s.outbox, crossEvent{to: to, at: at, fn: fn})
	if !x.inEpoch && !s.queued {
		// Driver-context send (setup between runs): remember the source
		// so the next barrier drains it. During an epoch the source is by
		// contract an executing shard, which the barrier collects itself.
		s.queued = true
		x.mergeSrc = append(x.mergeSrc, s)
	}
}

// Stop terminates the worker goroutines. The executor must not be used
// afterwards. Safe to call multiple times.
func (x *Sharded) Stop() {
	if x.started && !x.stopped {
		close(x.work)
	}
	x.stopped = true
}

func (x *Sharded) start() {
	if x.started {
		return
	}
	x.started = true
	for i := 0; i < x.opts.Workers; i++ {
		go func() {
			if x.lblRun != nil {
				pprof.SetGoroutineLabels(x.lblRun)
			}
			for s := range x.work {
				s.run(s.x.epochEnd)
				s.x.wg.Done()
			}
		}()
	}
}

// Now delegates to shard 0, like the other root Scheduler methods: it
// returns the event time inside a shard-0 callback and the completed
// global frontier between runs.
func (x *Sharded) Now() time.Duration { return x.shards[0].effNow() }

// At delegates to shard 0 (the home of centralized components).
func (x *Sharded) At(at time.Duration, fn func()) Timer { return x.shards[0].At(at, fn) }

// After delegates to shard 0.
func (x *Sharded) After(d time.Duration, fn func()) Timer { return x.shards[0].After(d, fn) }

// Every delegates to shard 0.
func (x *Sharded) Every(interval time.Duration, fn func()) Ticker {
	return EveryOn(x.shards[0], interval, fn)
}

// Pending returns scheduled (unfired, uncancelled) events across all
// shards and outboxes. Cancelled events awaiting lazy reclaim are not
// counted.
func (x *Sharded) Pending() int {
	n := 0
	for _, s := range x.shards {
		n += s.q.live + len(s.outbox)
	}
	return n
}

// headInf is the head-time key of a shard with no pending events.
const headInf = time.Duration(1<<63 - 1)

// headChanged reports whether the shard's true head differs from its
// stored key, without storing — the barrier defers the store until the
// matching heap repair, so the heap stays valid w.r.t. stored keys at
// every intermediate step.
func (s *shard) headChanged() bool {
	at, ok := s.q.nextAt()
	if !ok {
		at = headInf
	}
	return at != s.headAt
}

// syncHead stores the shard's current head time as its heap key,
// reporting whether it moved (the caller then owes a heap.Fix or Init).
func (s *shard) syncHead() bool {
	at, ok := s.q.nextAt()
	if !ok {
		at = headInf
	}
	if at == s.headAt {
		return false
	}
	s.headAt = at
	return true
}

// refreshHead re-keys a shard in the head-time heap after its event heap
// may have changed. O(log shards) when the head moved, O(1) when not.
func (x *Sharded) refreshHead(s *shard) {
	if s.syncHead() && !x.headsDirty {
		heap.Fix(&x.heads, s.pos)
	}
}

// nextEventTime returns the earliest pending event time, or -1 if none:
// the root of the shard head-time heap, or a linear scan over the
// maintained keys while the heap order is suspended.
func (x *Sharded) nextEventTime() time.Duration {
	at := x.heads[0].headAt
	if x.headsDirty {
		at = headInf
		for _, s := range x.shards {
			if s.headAt < at {
				at = s.headAt
			}
		}
	}
	if at == headInf {
		return -1
	}
	return at
}

// RunUntil processes all events scheduled at or before t, then advances
// every clock to exactly t.
func (x *Sharded) RunUntil(t time.Duration) {
	x.start()
	x.barrier()
	for {
		x.phase(x.lblSelect)
		next := x.nextEventTime()
		if next < 0 || next > t {
			break
		}
		// Conservative window: events strictly before end are
		// independent across shards because any cross-shard effect they
		// emit arrives at >= next+Lookahead >= end. The final window is
		// [next, t+1) so events at exactly t run (their cross effects
		// land beyond t, outside this call).
		end := next + x.opts.Lookahead
		if end > t {
			end = t + 1
		}
		x.runEpoch(end)
		x.barrier()
		frontier := end
		if frontier > t {
			frontier = t
		}
		x.advance(frontier)
	}
	x.phase(x.lblNone)
	x.advance(t)
}

// RunFor advances the clock by d, processing everything in between.
func (x *Sharded) RunFor(d time.Duration) { x.RunUntil(x.now + d) }

// Step runs one epoch at the earliest pending event time. It reports
// whether any event ran.
func (x *Sharded) Step() bool {
	x.start()
	x.barrier()
	for {
		next := x.nextEventTime()
		if next < 0 {
			return false
		}
		end := next + x.opts.Lookahead
		ran := x.runEpoch(end)
		x.barrier()
		x.advance(end)
		if ran > 0 {
			return true
		}
	}
}

// Drain runs epochs until no events remain or limit events have been
// processed. It returns the number of events processed.
func (x *Sharded) Drain(limit int) int {
	x.start()
	x.barrier()
	n := 0
	for n < limit {
		next := x.nextEventTime()
		if next < 0 {
			break
		}
		ran := x.runEpoch(next + x.opts.Lookahead)
		x.barrier()
		x.advance(next + x.opts.Lookahead)
		if ran == 0 && x.nextEventTime() < 0 {
			break
		}
		n += ran
	}
	return n
}

// runEpoch executes every shard with events inside [_, end) and blocks
// until all complete. It returns the number of events processed.
//
// The runnable set is collected by walking the head-time heap array
// without mutating it: a shard inside the window has all its heap
// ancestors inside the window too (ancestor keys are <=), so a DFS from
// the root that stops at out-of-window nodes visits O(runnable) nodes
// and finds every runnable shard. The barrier afterwards re-keys the
// heads that moved.
func (x *Sharded) runEpoch(end time.Duration) int {
	run := x.runnable[:0]
	if x.headsDirty {
		for _, s := range x.shards {
			if s.headAt < end {
				run = append(run, s)
			}
		}
	} else if h := x.heads; h[0].headAt < end {
		stack := append(x.dfs[:0], 0)
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			run = append(run, h[i])
			if l := 2*i + 1; int(l) < len(h) && h[l].headAt < end {
				stack = append(stack, l)
			}
			if r := 2*i + 2; int(r) < len(h) && h[r].headAt < end {
				stack = append(stack, r)
			}
		}
		x.dfs = stack[:0]
	}
	x.runnable = run
	if len(run) == 0 {
		return 0
	}
	x.phase(x.lblRun)
	x.epochEnd = end
	x.inEpoch = true
	x.epochs++
	x.shardRuns += uint64(len(run))
	if len(run) == 1 || x.inline {
		// No parallelism to exploit; skip the handoff.
		for _, s := range run {
			s.run(end)
		}
	} else {
		x.wg.Add(len(run))
		for _, s := range run {
			x.work <- s
		}
		x.wg.Wait()
	}
	x.inEpoch = false
	total := 0
	for _, s := range run {
		total += s.ran
	}
	return total
}

// barrier merges every outstanding outbox into the destination queues
// in (source shard, emission order) order, assigning destination
// sequence numbers deterministically, then re-keys the head-time heap
// for every shard whose head may have moved (ran shards and merge
// destinations).
//
// On the wheel backend each merge insert is O(1) already; on the heap
// reference backend the merge stays batched per destination — events
// are appended raw and repaired in one flushMerge pass (a sift-up per
// appended event when the batch is small relative to the heap, exactly
// equivalent to sequential heap.Push, or a single heap.Init when the
// batch dominates). Either way the queue holds the same (at, seq) set,
// and since (at, seq) is a strict total order the pop sequence — the
// only thing downstream code can observe — is independent of the
// internal shape. So batching cannot perturb determinism.
func (x *Sharded) barrier() {
	x.phase(x.lblMerge)
	// Collect sources: shards that ran this epoch plus driver-context
	// senders queued by CrossAfter. Sorted by shard id so the (source
	// shard, emission order) merge order is independent of the order the
	// head-time heap released the runnable set.
	src := x.mergeSrc
	for _, s := range x.runnable {
		if len(s.outbox) > 0 && !s.queued {
			s.queued = true
			src = append(src, s)
		}
	}
	if len(src) > 1 {
		sort.Sort(byShardID(src))
	}
	for _, s := range src {
		for _, ce := range s.outbox {
			d := x.shards[ce.to]
			at := ce.at
			if now := d.effNow(); at < now {
				at = now
			}
			d.q.merge(at, ce.fn)
			if !d.merging {
				d.merging = true
				x.mergeDst = append(x.mergeDst, d)
			}
		}
		clearCross(s.outbox)
		s.outbox = s.outbox[:0]
		s.queued = false
	}
	x.mergeSrc = src[:0]
	// Repair destination queues in one batch each (no-op on the wheel).
	for _, d := range x.mergeDst {
		d.q.flushMerge()
		d.merging = false
	}
	// Re-key the head-time heap. First collect the heads that actually
	// moved (ran shards and merge destinations, deduped via the dirty
	// mark) without touching the stored keys, then repair by whichever
	// is cheaper: a few interleaved store+Fix operations — each Fix
	// sees a heap that is valid w.r.t. stored keys, so multi-key
	// batches stay sound — or, when most heads moved, one O(shards)
	// rebuild (deferred to the next sparse barrier via headsDirty,
	// since a scan-based epoch doesn't need the order at all). The
	// reachable state is the same either way; only the unobservable
	// internal heap shape can differ.
	fix := x.fix[:0]
	for _, s := range x.runnable {
		if !s.dirty && s.headChanged() {
			s.dirty = true
			fix = append(fix, s)
		}
	}
	x.runnable = x.runnable[:0]
	for _, d := range x.mergeDst {
		if !d.dirty && d.headChanged() {
			d.dirty = true
			fix = append(fix, d)
		}
	}
	x.mergeDst = x.mergeDst[:0]
	dense := len(fix)*(bits.Len(uint(len(x.heads)))+1) >= len(x.heads)
	for _, s := range fix {
		s.dirty = false
		s.syncHead()
		if !dense && !x.headsDirty {
			heap.Fix(&x.heads, s.pos)
		}
	}
	switch {
	case dense:
		x.headsDirty = true
	case x.headsDirty:
		// First sparse barrier after a dense stretch: rebuild once,
		// then resume incremental maintenance.
		heap.Init(&x.heads)
		x.headsDirty = false
	}
	x.fix = fix[:0]
}

// clearCross drops the callback references of a drained outbox so the
// reused backing array doesn't pin dead closures.
func clearCross(b []crossEvent) {
	for i := range b {
		b[i].fn = nil
	}
}

// advance raises the global frontier to at least t. Idle shard clocks
// follow lazily through effNow.
func (x *Sharded) advance(t time.Duration) {
	if x.now < t {
		x.now = t
	}
}

// effNow is the shard's effective clock: its own event time while it is
// executing (which is always >= the frontier inside an epoch), the
// global frontier once it has gone idle.
func (s *shard) effNow() time.Duration {
	if s.now > s.x.now {
		return s.now
	}
	return s.x.now
}

// run executes the shard's events strictly before end in (time, seq)
// order. Called with exclusive ownership of the shard.
func (s *shard) run(end time.Duration) {
	s.executing = true
	s.ran = 0
	for {
		at, ok := s.q.nextAt()
		if !ok || at >= end {
			break
		}
		ev := s.q.pop()
		if ev.stopped {
			s.q.release(ev)
			continue
		}
		s.now = ev.at
		fn := ev.fn
		if !ev.held {
			// Recycle before running, so an At inside the callback can
			// reuse the slot; the handle generation was bumped, keeping
			// a Stop on the fired timer inert. Ticker-held events skip
			// the pool — their owner re-arms the same object in place.
			s.q.release(ev)
		}
		fn()
		s.ran++
	}
	s.ranTotal += uint64(s.ran)
	s.executing = false
}

// --- shard as a Scheduler view ---

// Now returns the shard-local virtual time.
func (s *shard) Now() time.Duration { return s.effNow() }

// At schedules fn on this shard. Must be called from an event executing
// on this shard, or from the driving goroutine between runs.
func (s *shard) At(at time.Duration, fn func()) Timer {
	if now := s.effNow(); at < now {
		at = now
	}
	ev := s.q.add(at, fn)
	if !s.x.inEpoch {
		// Driver-context scheduling: the head-time heap is ours to fix.
		// Inside an epoch the shard is by contract the executing one;
		// the barrier re-keys it.
		s.x.refreshHead(s)
	}
	return &shardTimer{s: s, ev: ev, gen: ev.gen}
}

// After schedules fn on this shard after delay d.
func (s *shard) After(d time.Duration, fn func()) Timer {
	return s.At(s.effNow()+d, fn)
}

// schedule arms fn after d without materializing a Timer handle (see
// ScheduleOn).
func (s *shard) schedule(d time.Duration, fn func()) {
	now := s.effNow()
	at := now + d
	if at < now {
		at = now
	}
	s.q.add(at, fn)
	if !s.x.inEpoch {
		s.x.refreshHead(s)
	}
}

// Every schedules a periodic callback on this shard.
func (s *shard) Every(interval time.Duration, fn func()) Ticker {
	return EveryOn(s, interval, fn)
}

// queue implements queueOwner for the ticker fast path.
func (s *shard) queue() *eventQueue { return &s.q }

// checkTickerContext implements queueOwner: mutating another shard's
// ticker during an epoch is a data race on live state, same as
// shardTimer.Stop.
func (s *shard) checkTickerContext(op string) {
	if s.x.inEpoch && !s.executing {
		panic(fmt.Sprintf("engine: %s on shard %d from outside its execution context (mutate tickers from their owning shard, or between runs)", op, s.id))
	}
}

// noteQueueChanged implements queueOwner: in driver context the shard
// owns its head-time heap entry and re-keys it; inside an epoch the
// barrier does.
func (s *shard) noteQueueChanged() {
	if !s.x.inEpoch {
		s.x.refreshHead(s)
	}
}

// Pending returns this shard's scheduled (unfired, uncancelled) event
// count.
func (s *shard) Pending() int { return s.q.live }

func (s *shard) Step() bool               { panic("engine: drive the root executor, not a shard view") }
func (s *shard) RunUntil(t time.Duration) { panic("engine: drive the root executor, not a shard view") }
func (s *shard) RunFor(d time.Duration)   { panic("engine: drive the root executor, not a shard view") }
func (s *shard) Drain(limit int) int      { panic("engine: drive the root executor, not a shard view") }

// shardTimer is the Timer handle of a sharded-engine event. It carries
// the generation the event had when scheduled: once the event fires and
// is recycled, the generation moves on and the stale handle deactivates
// itself.
type shardTimer struct {
	s   *shard
	ev  *event
	gen uint64
}

// Stop implements Timer. It must be called from the owning shard's
// execution context: a callback executing on the same shard, or the
// driving goroutine between runs. Stopping another shard's timer during
// an epoch is a data race on live state; the executor diagnoses the
// detectable case (the owning shard idle while an epoch is in flight)
// with a panic, and the race detector flags the rest.
func (t *shardTimer) Stop() bool {
	if t == nil || t.ev == nil {
		return false
	}
	s := t.s
	if s.x.inEpoch && !s.executing {
		panic(fmt.Sprintf("engine: Timer.Stop on shard %d from outside its execution context (stop timers from their owning shard, or between runs)", s.id))
	}
	ev := t.ev
	if ev.gen != t.gen || ev.stopped {
		// Recycled (fired) or already cancelled.
		return false
	}
	s.q.stop(ev)
	// A compaction may have removed the stored head; re-key it in
	// driver context (inside an epoch the barrier re-keys, and a
	// transiently-early stored head only costs an empty epoch anyway).
	if !s.x.inEpoch {
		s.x.refreshHead(s)
	}
	return true
}

// byShardID sorts barrier-merge sources into ascending shard id without
// the reflection cost of sort.Slice on the per-epoch path.
type byShardID []*shard

func (b byShardID) Len() int           { return len(b) }
func (b byShardID) Less(i, j int) bool { return b[i].id < b[j].id }
func (b byShardID) Swap(i, j int)      { b[i], b[j] = b[j], b[i] }

// shardHeap is the indexed min-heap of all shards ordered by head event
// time; ties break on shard id so heap operations are deterministic.
// Every shard is always present (idle ones keyed headInf); selection
// reads the array, only Fix/Init mutate it.
type shardHeap []*shard

func (h shardHeap) Len() int { return len(h) }
func (h shardHeap) Less(i, j int) bool {
	if h[i].headAt != h[j].headAt {
		return h[i].headAt < h[j].headAt
	}
	return h[i].id < h[j].id
}
func (h shardHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *shardHeap) Push(v any) {
	s := v.(*shard)
	s.pos = len(*h)
	*h = append(*h, s)
}
func (h *shardHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.pos = -1
	*h = old[:n-1]
	return s
}
