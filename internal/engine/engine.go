// Package engine is the discrete-event scheduling core of the emulated
// data center. It decouples every layer of the reproduction (soil
// runtimes, fabric delivery, PCIe bus accounting, the broker, the §VI
// experiments) from a concrete event loop behind the Scheduler
// interface, with two implementations:
//
//   - Serial: the original single-threaded loop over virtual time.
//     Every scheduled callback runs inline on the driving goroutine;
//     execution order is a total (time, seq) order.
//
//   - Sharded: a conservative-parallel executor that partitions events
//     into shards (one or more emulated switches per shard), runs the
//     shards on worker goroutines epoch-by-epoch under a lookahead
//     window, and merges cross-shard sends at epoch barriers in a fixed
//     (epoch, source shard, seq) order, so simulation output is
//     reproducible — and, for state partitioned by switch, identical to
//     serial execution.
//
// See docs/engine.md for the determinism model and shard-count guidance.
package engine

import "time"

// Clock exposes virtual time. Meters and consumers that only read time
// depend on this narrow view.
type Clock interface {
	// Now returns the current virtual time. On a shard view this is the
	// shard-local time, which trails the epoch frontier by at most the
	// lookahead window and equals the global time between runs.
	Now() time.Duration
}

// Timer is a handle to a scheduled one-shot callback.
type Timer interface {
	// Stop cancels the timer if it has not fired. It reports whether the
	// call prevented the callback from running. Stop must be called from
	// the scheduler's own execution context (a callback on the same
	// shard, or the driving goroutine between runs).
	Stop() bool
}

// Ticker fires a callback periodically.
type Ticker interface {
	// Stop cancels future firings.
	Stop()
	// Interval returns the current period.
	Interval() time.Duration
	// SetInterval changes the period, rescheduling the pending firing to
	// interval from now. Seeds use this when they change their polling
	// rate dynamically (§II-B-a).
	SetInterval(interval time.Duration)
}

// Scheduler is a deterministic discrete-event scheduler over virtual
// time. Both engines implement it, as do the per-shard views of the
// sharded engine (whose Step/RunUntil/RunFor/Drain panic: runs are
// driven from the root executor only).
type Scheduler interface {
	Clock

	// At schedules fn at absolute virtual time at. Scheduling in the
	// past (at < Now) fires at the current time, preserving order of
	// submission.
	At(at time.Duration, fn func()) Timer
	// After schedules fn after delay d.
	After(d time.Duration, fn func()) Timer
	// Every schedules fn every interval, first firing one interval from
	// now. interval must be positive.
	Every(interval time.Duration, fn func()) Ticker
	// Pending returns the number of scheduled (unfired, uncancelled)
	// events.
	Pending() int

	// Step runs the earliest pending work unit — one event on the serial
	// engine, one epoch on the sharded engine — advancing virtual time.
	// It reports whether anything ran.
	Step() bool
	// RunUntil processes all events scheduled at or before t, then
	// advances the clock to exactly t.
	RunUntil(t time.Duration)
	// RunFor advances the clock by d, processing everything in between.
	RunFor(d time.Duration)
	// Drain runs events until none remain or the limit is reached (a
	// safety valve against self-perpetuating tickers). It returns the
	// number of events processed.
	Drain(limit int) int
}

// Partitioned is implemented by schedulers that expose per-shard
// scheduler views. Consumers that pin state to shards (the fabric) use
// it to place each emulated switch's events on that switch's shard and
// to route cross-shard sends through the epoch barrier.
//
// The contract callers must hold for determinism and race freedom:
//
//   - All events that mutate a piece of state are scheduled on one
//     shard (the state's home shard).
//   - CrossAfter is the only way one shard schedules onto another, and
//     its delay must be at least the executor's lookahead window.
type Partitioned interface {
	// Shards returns the number of shards.
	Shards() int
	// Shard returns the scheduler view pinned to shard i.
	Shard(i int) Scheduler
	// CrossAfter schedules fn on shard to, d after shard from's current
	// time. It must be called either from an event executing on shard
	// from, or from the driving goroutine between runs. On a parallel
	// executor d must be >= the lookahead window.
	CrossAfter(from, to int, d time.Duration, fn func())
}

// ticker is the engine-generic Ticker: it re-arms itself through any
// Scheduler, allocating a fresh event and Timer handle per firing.
// Queue-backed schedulers on the wheel backend get the zero-alloc
// queueTicker fast path instead (wheel.go); this implementation remains
// for foreign Scheduler implementations and as the reference side of
// the heap-vs-wheel A/B comparison.
type ticker struct {
	s        Scheduler
	interval time.Duration
	fn       func()
	fire     func() // the re-arming callback, built once so periodic re-arms don't allocate a closure per firing
	timer    Timer
	stopped  bool
	firing   bool
}

// EveryOn implements Scheduler.Every over any Scheduler.
func EveryOn(s Scheduler, interval time.Duration, fn func()) Ticker {
	if interval <= 0 {
		panic("engine: non-positive ticker interval")
	}
	if o, ok := s.(queueOwner); ok && o.queue().kind == QueueWheel {
		return newQueueTicker(o, interval, fn)
	}
	if r, ok := s.(*RealTime); ok {
		return newRealTicker(r, interval, fn)
	}
	t := &ticker{s: s, interval: interval, fn: fn}
	t.fire = func() {
		if t.stopped {
			return
		}
		t.firing = true
		t.fn()
		t.firing = false
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *ticker) arm() {
	t.timer = t.s.After(t.interval, t.fire)
}

func (t *ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

func (t *ticker) Interval() time.Duration { return t.interval }

func (t *ticker) SetInterval(interval time.Duration) {
	if interval <= 0 {
		panic("engine: non-positive ticker interval")
	}
	t.interval = interval
	if t.stopped || t.firing {
		// Inside our own callback the fire epilogue re-arms with the
		// new interval; arming here too would leave two live timers
		// ticking the same callback.
		return
	}
	t.timer.Stop()
	t.arm()
}
