package dataplane

import (
	"fmt"
	"sort"
)

// Action is what a TCAM rule does to matching packets.
type Action int

const (
	ActAllow Action = iota + 1
	ActDrop
	ActRateLimit // forwards but marks the flow rate-limited
	ActMirror    // forwards and copies to the management CPU
	ActCount     // forwards; exists only for its counters
	ActSetQoS    // forwards with altered QoS class
)

func (a Action) String() string {
	switch a {
	case ActAllow:
		return "allow"
	case ActDrop:
		return "drop"
	case ActRateLimit:
		return "rate-limit"
	case ActMirror:
		return "mirror"
	case ActCount:
		return "count"
	case ActSetQoS:
		return "set-qos"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Rule is one TCAM entry: a ternary filter with an action. Higher
// Priority wins; ties resolve to the earlier-installed rule.
type Rule struct {
	Priority int
	Filter   Filter
	Action   Action
	Note     string // free-form, e.g. the installing task's name
}

// RuleStats are the per-rule match counters.
type RuleStats struct {
	Packets uint64
	Bytes   uint64
}

type tcamEntry struct {
	rule  Rule
	seq   int
	stats RuleStats
}

// TCAM is a priority-matched ternary rule table with per-rule counters.
//
// Following iSTAMP's division (§II-B-b), the monitoring TCAM modelled
// here is the slice the soil carves out for M&M; forwarding rules live
// outside it and are unaffected by monitoring rule churn.
type TCAM struct {
	capacity int
	entries  []*tcamEntry
	// byFilter indexes entries by exact filter for the management-path
	// operations (install/remove/poll), which address rules by filter.
	byFilter map[Filter]*tcamEntry
	seq      int
}

// NewTCAM returns a TCAM with the given entry capacity.
func NewTCAM(capacity int) *TCAM {
	return &TCAM{capacity: capacity, byFilter: make(map[Filter]*tcamEntry)}
}

// Capacity returns the maximum number of entries.
func (t *TCAM) Capacity() int { return t.capacity }

// Size returns the current number of entries.
func (t *TCAM) Size() int { return len(t.entries) }

// Free returns the remaining entry capacity.
func (t *TCAM) Free() int { return t.capacity - len(t.entries) }

// ErrTCAMFull is returned by AddRule when the table is at capacity.
var ErrTCAMFull = fmt.Errorf("dataplane: TCAM full")

// AddRule installs a rule. Installing a rule with a filter identical to
// an existing rule replaces it (preserving its counters would be
// surprising; counters reset).
func (t *TCAM) AddRule(r Rule) error {
	if old, ok := t.byFilter[r.Filter]; ok {
		repl := &tcamEntry{rule: r, seq: old.seq}
		for i, e := range t.entries {
			if e == old {
				t.entries[i] = repl
				break
			}
		}
		t.byFilter[r.Filter] = repl
		t.sortEntries()
		return nil
	}
	if len(t.entries) >= t.capacity {
		return ErrTCAMFull
	}
	e := &tcamEntry{rule: r, seq: t.seq}
	t.entries = append(t.entries, e)
	t.byFilter[r.Filter] = e
	t.seq++
	t.sortEntries()
	return nil
}

func (t *TCAM) sortEntries() {
	sort.SliceStable(t.entries, func(i, j int) bool {
		if t.entries[i].rule.Priority != t.entries[j].rule.Priority {
			return t.entries[i].rule.Priority > t.entries[j].rule.Priority
		}
		return t.entries[i].seq < t.entries[j].seq
	})
}

// RemoveRule removes the rule with exactly the given filter. It reports
// whether a rule was removed.
func (t *TCAM) RemoveRule(f Filter) bool {
	e, ok := t.byFilter[f]
	if !ok {
		return false
	}
	delete(t.byFilter, f)
	for i, cur := range t.entries {
		if cur == e {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return true
		}
	}
	return false
}

// GetRule returns the rule with exactly the given filter.
func (t *TCAM) GetRule(f Filter) (Rule, bool) {
	if e, ok := t.byFilter[f]; ok {
		return e.rule, true
	}
	return Rule{}, false
}

// Rules returns all installed rules in match order.
func (t *TCAM) Rules() []Rule {
	out := make([]Rule, len(t.entries))
	for i, e := range t.entries {
		out[i] = e.rule
	}
	return out
}

// Stats returns the counters of the rule with exactly the given filter.
func (t *TCAM) Stats(f Filter) (RuleStats, bool) {
	if e, ok := t.byFilter[f]; ok {
		return e.stats, true
	}
	return RuleStats{}, false
}

// StatsMatching returns aggregate counters over all rules whose filter
// key is matched by the query filter's key prefix semantics — here
// simplified to: rules whose own filter equals the query, or, when the
// query is broader, rules whose filter matches every packet the rule
// would count. For polling purposes the soil uses exact filter keys, so
// exact equality is the hot path.
func (t *TCAM) StatsMatching(f Filter) RuleStats {
	var agg RuleStats
	for _, e := range t.entries {
		if e.rule.Filter == f || f.IsZero() {
			agg.Packets += e.stats.Packets
			agg.Bytes += e.stats.Bytes
		}
	}
	return agg
}

// Lookup returns the highest-priority matching rule for the packet.
func (t *TCAM) Lookup(p Packet, inPort int) (Rule, bool) {
	for _, e := range t.entries {
		if e.rule.Filter.Match(p, inPort) {
			e.stats.Packets++
			e.stats.Bytes += uint64(p.Size)
			return e.rule, true
		}
	}
	return Rule{}, false
}

// lookupReference is a non-mutating linear scan used by property tests
// to validate Lookup's priority semantics.
func (t *TCAM) lookupReference(p Packet, inPort int) (Rule, bool) {
	best := -1
	for i, e := range t.entries {
		if !e.rule.Filter.Match(p, inPort) {
			continue
		}
		if best == -1 ||
			e.rule.Priority > t.entries[best].rule.Priority ||
			(e.rule.Priority == t.entries[best].rule.Priority && e.seq < t.entries[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return Rule{}, false
	}
	return t.entries[best].rule, true
}

// PortStats are per-port traffic counters.
type PortStats struct {
	RxPackets uint64
	RxBytes   uint64
	TxPackets uint64
	TxBytes   uint64
}

// Sampler copies matching packets to a callback at a 1-in-N rate
// (deterministic: every Nth matching packet), emulating sFlow-style
// packet sampling and FARM probe triggers.
type Sampler struct {
	Filter  Filter
	OneInN  int
	fn      func(Packet)
	counter int
}

// Verdict reports what the ASIC did with an injected packet.
type Verdict struct {
	Rule    Rule
	Matched bool
	Dropped bool
}

// Switch is the emulated ASIC of one switch: ports, TCAM, samplers.
// It is not safe for concurrent use; in simulation everything runs on
// the single-threaded event loop.
type Switch struct {
	name     string
	ports    []PortStats // 1-based; index 0 unused
	tcam     *TCAM
	samplers []*Sampler
	dropped  uint64
}

// NewSwitch returns a switch with numPorts ports and the given
// monitoring-TCAM capacity.
func NewSwitch(name string, numPorts, tcamCapacity int) *Switch {
	return &Switch{
		name:  name,
		ports: make([]PortStats, numPorts+1),
		tcam:  NewTCAM(tcamCapacity),
	}
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// NumPorts returns the port count.
func (s *Switch) NumPorts() int { return len(s.ports) - 1 }

// TCAM exposes the monitoring TCAM.
func (s *Switch) TCAM() *TCAM { return s.tcam }

// PortStats returns counters for a 1-based port.
func (s *Switch) PortStats(port int) (PortStats, error) {
	if port < 1 || port >= len(s.ports) {
		return PortStats{}, fmt.Errorf("dataplane: switch %s has no port %d", s.name, port)
	}
	return s.ports[port], nil
}

// Dropped returns the total packets dropped by TCAM rules.
func (s *Switch) Dropped() uint64 { return s.dropped }

// AddSampler registers a packet sampler and returns a remove function.
func (s *Switch) AddSampler(f Filter, oneInN int, fn func(Packet)) (remove func()) {
	if oneInN < 1 {
		oneInN = 1
	}
	sm := &Sampler{Filter: f, OneInN: oneInN, fn: fn}
	s.samplers = append(s.samplers, sm)
	return func() {
		for i, cur := range s.samplers {
			if cur == sm {
				s.samplers = append(s.samplers[:i], s.samplers[i+1:]...)
				return
			}
		}
	}
}

// CreditPort adds traffic to a port's counters in bulk without per-packet
// processing. Large-scale workloads (thousands of ports, Fig. 4) use this
// to drive counter-polling tasks cheaply; per-packet features (TCAM
// matching, sampling) require Inject.
func (s *Switch) CreditPort(port int, rxPackets, rxBytes, txPackets, txBytes uint64) error {
	if port < 1 || port >= len(s.ports) {
		return fmt.Errorf("dataplane: switch %s has no port %d", s.name, port)
	}
	s.ports[port].RxPackets += rxPackets
	s.ports[port].RxBytes += rxBytes
	s.ports[port].TxPackets += txPackets
	s.ports[port].TxBytes += txBytes
	return nil
}

// CreditRule adds matches to the rule with exactly the given filter,
// the bulk analogue of TCAM counting.
func (s *Switch) CreditRule(f Filter, packets, bytes uint64) bool {
	if e, ok := s.tcam.byFilter[f]; ok {
		e.stats.Packets += packets
		e.stats.Bytes += bytes
		return true
	}
	return false
}

// Inject passes a packet through the ASIC: ingress counters, TCAM
// lookup (counting and possibly dropping), samplers, egress counters.
// inPort/outPort are 1-based; outPort 0 means locally destined.
func (s *Switch) Inject(p Packet, inPort, outPort int) Verdict {
	if inPort >= 1 && inPort < len(s.ports) {
		s.ports[inPort].RxPackets++
		s.ports[inPort].RxBytes += uint64(p.Size)
	}
	var v Verdict
	if r, ok := s.tcam.Lookup(p, inPort); ok {
		v.Rule, v.Matched = r, true
		if r.Action == ActDrop {
			v.Dropped = true
			s.dropped++
		}
	}
	for _, sm := range s.samplers {
		if sm.Filter.Match(p, inPort) {
			sm.counter++
			if sm.counter%sm.OneInN == 0 {
				sm.fn(p)
			}
		}
	}
	if !v.Dropped && outPort >= 1 && outPort < len(s.ports) {
		s.ports[outPort].TxPackets++
		s.ports[outPort].TxBytes += uint64(p.Size)
	}
	return v
}
