package dataplane

import "fmt"

// Action is what a TCAM rule does to matching packets.
type Action int

const (
	ActAllow Action = iota + 1
	ActDrop
	ActRateLimit // forwards but marks the flow rate-limited
	ActMirror    // forwards and copies to the management CPU
	ActCount     // forwards; exists only for its counters
	ActSetQoS    // forwards with altered QoS class
)

func (a Action) String() string {
	switch a {
	case ActAllow:
		return "allow"
	case ActDrop:
		return "drop"
	case ActRateLimit:
		return "rate-limit"
	case ActMirror:
		return "mirror"
	case ActCount:
		return "count"
	case ActSetQoS:
		return "set-qos"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Rule is one TCAM entry: a ternary filter with an action. Higher
// Priority wins; ties resolve to the earlier-installed rule.
type Rule struct {
	Priority int
	Filter   Filter
	Action   Action
	Note     string // free-form, e.g. the installing task's name
}

// RuleStats are the per-rule match counters.
type RuleStats struct {
	Packets uint64
	Bytes   uint64
}

type tcamEntry struct {
	rule  Rule
	seq   int
	stats RuleStats
}

// TCAM is a priority-matched ternary rule table with per-rule counters.
//
// Following iSTAMP's division (§II-B-b), the monitoring TCAM modelled
// here is the slice the soil carves out for M&M; forwarding rules live
// outside it and are unaffected by monitoring rule churn.
type TCAM struct {
	capacity int
	// entries is kept in match order (priority desc, seq asc) at all
	// times; AddRule/RemoveRule splice at binary-searched positions.
	entries []*tcamEntry
	// byFilter indexes entries by exact filter for the management-path
	// operations (install/remove/poll), which address rules by filter.
	byFilter map[Filter]*tcamEntry
	seq      int

	// Fast-path state (docs/dataplane.md): the bucketed rule index, the
	// generation counter bumped on every rule churn, and the
	// generation-stamped flow cache for direct Lookup callers.
	// Switch.Inject keeps its own fused cache and shares only the index
	// and the generation.
	index    ruleIndex
	gen      uint64
	cache    map[flowKey]cachedVerdict
	cacheCap int
	stats    CacheStats
	fastPath bool
}

// NewTCAM returns a TCAM with the given entry capacity.
func NewTCAM(capacity int) *TCAM {
	return &TCAM{
		capacity: capacity,
		byFilter: make(map[Filter]*tcamEntry),
		index:    newRuleIndex(),
		cache:    make(map[flowKey]cachedVerdict),
		cacheCap: defaultFlowCacheCap,
		fastPath: true,
	}
}

// SetFastPath toggles the indexed + flow-cached lookup path; disabling
// it reverts Lookup to the linear reference scan (for benchmarking and
// A/B validation — the two paths return identical results, which
// TestTCAMFastPathProperty pins). The flow cache is cleared on toggle.
func (t *TCAM) SetFastPath(on bool) {
	t.fastPath = on
	clear(t.cache)
}

// Generation returns the rule-churn generation counter; it advances on
// every AddRule/RemoveRule and stamps (and thereby invalidates) cached
// flow verdicts.
func (t *TCAM) Generation() uint64 { return t.gen }

// CacheStats returns hit/miss counters of the Lookup flow cache.
func (t *TCAM) CacheStats() CacheStats { return t.stats }

// Capacity returns the maximum number of entries.
func (t *TCAM) Capacity() int { return t.capacity }

// Size returns the current number of entries.
func (t *TCAM) Size() int { return len(t.entries) }

// Free returns the remaining entry capacity.
func (t *TCAM) Free() int { return t.capacity - len(t.entries) }

// ErrTCAMFull is returned by AddRule when the table is at capacity.
var ErrTCAMFull = fmt.Errorf("dataplane: TCAM full")

// AddRule installs a rule. Installing a rule with a filter identical to
// an existing rule replaces it (preserving its counters would be
// surprising; counters reset).
func (t *TCAM) AddRule(r Rule) error {
	if old, ok := t.byFilter[r.Filter]; ok {
		// Replace in place: keep the original installation sequence (so
		// tie-breaking order is stable), but re-position for the possibly
		// changed priority — O(log n) splices, no full re-sort.
		repl := &tcamEntry{rule: r, seq: old.seq}
		t.entries = removeSorted(t.entries, old)
		t.index.remove(old)
		t.entries = insertSorted(t.entries, repl)
		t.index.add(repl)
		t.byFilter[r.Filter] = repl
		t.gen++
		return nil
	}
	if len(t.entries) >= t.capacity {
		return ErrTCAMFull
	}
	e := &tcamEntry{rule: r, seq: t.seq}
	t.seq++
	t.entries = insertSorted(t.entries, e)
	t.index.add(e)
	t.byFilter[r.Filter] = e
	t.gen++
	return nil
}

// RemoveRule removes the rule with exactly the given filter. It reports
// whether a rule was removed.
func (t *TCAM) RemoveRule(f Filter) bool {
	e, ok := t.byFilter[f]
	if !ok {
		return false
	}
	delete(t.byFilter, f)
	t.entries = removeSorted(t.entries, e)
	t.index.remove(e)
	t.gen++
	return true
}

// GetRule returns the rule with exactly the given filter.
func (t *TCAM) GetRule(f Filter) (Rule, bool) {
	if e, ok := t.byFilter[f]; ok {
		return e.rule, true
	}
	return Rule{}, false
}

// Rules returns all installed rules in match order.
func (t *TCAM) Rules() []Rule {
	out := make([]Rule, len(t.entries))
	for i, e := range t.entries {
		out[i] = e.rule
	}
	return out
}

// Stats returns the counters of the rule with exactly the given filter.
func (t *TCAM) Stats(f Filter) (RuleStats, bool) {
	if e, ok := t.byFilter[f]; ok {
		return e.stats, true
	}
	return RuleStats{}, false
}

// StatsMatching returns counters for the query filter. A rule installed
// with exactly this filter answers alone, resolved O(1) through the
// byFilter index — the hot path, since the soil polls by exact filter
// key. Otherwise the query aggregates the counters of every rule it
// covers (every rule whose matched packets the query would also match,
// Filter.Covers); the zero filter aggregates the whole table.
func (t *TCAM) StatsMatching(f Filter) RuleStats {
	if e, ok := t.byFilter[f]; ok {
		return e.stats
	}
	var agg RuleStats
	for _, e := range t.entries {
		if f.Covers(e.rule.Filter) {
			agg.Packets += e.stats.Packets
			agg.Bytes += e.stats.Bytes
		}
	}
	return agg
}

// Lookup returns the highest-priority matching rule for the packet and
// counts the match. On the fast path a repeat flow resolves in one map
// probe; a cold or invalidated flow pays one indexed bucket scan.
func (t *TCAM) Lookup(p Packet, inPort int) (Rule, bool) {
	var e *tcamEntry
	if t.fastPath {
		k := flowKeyOf(p, inPort)
		if v, ok := t.cache[k]; ok && v.gen == t.gen {
			t.stats.Hits++
			e = v.e
		} else {
			t.stats.Misses++
			e = t.index.lookup(p, inPort)
			if len(t.cache) >= t.cacheCap {
				clear(t.cache)
			}
			t.cache[k] = cachedVerdict{gen: t.gen, e: e}
		}
	} else {
		e = t.scanLinear(p, inPort)
	}
	if e == nil {
		return Rule{}, false
	}
	e.stats.Packets++
	e.stats.Bytes += uint64(p.Size)
	return e.rule, true
}

// scanLinear is the pre-index lookup: first match in the match-ordered
// entry list. Kept as the SetFastPath(false) baseline.
func (t *TCAM) scanLinear(p Packet, inPort int) *tcamEntry {
	for _, e := range t.entries {
		if e.rule.Filter.Match(p, inPort) {
			return e
		}
	}
	return nil
}

// lookupReference is a non-mutating linear scan used by property tests
// to validate Lookup's priority semantics.
func (t *TCAM) lookupReference(p Packet, inPort int) (Rule, bool) {
	best := -1
	for i, e := range t.entries {
		if !e.rule.Filter.Match(p, inPort) {
			continue
		}
		if best == -1 ||
			e.rule.Priority > t.entries[best].rule.Priority ||
			(e.rule.Priority == t.entries[best].rule.Priority && e.seq < t.entries[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return Rule{}, false
	}
	return t.entries[best].rule, true
}

// PortStats are per-port traffic counters.
type PortStats struct {
	RxPackets uint64
	RxBytes   uint64
	TxPackets uint64
	TxBytes   uint64
}

// Sampler copies matching packets to a callback at a 1-in-N rate
// (deterministic: every Nth matching packet), emulating sFlow-style
// packet sampling and FARM probe triggers.
type Sampler struct {
	Filter  Filter
	OneInN  int
	fn      func(Packet)
	counter int
	removed bool
}

// Verdict reports what the ASIC did with an injected packet.
type Verdict struct {
	Rule    Rule
	Matched bool
	Dropped bool
}

// Switch is the emulated ASIC of one switch: ports, TCAM, samplers.
// It is not safe for concurrent use; in simulation everything runs on
// the single-threaded event loop.
type Switch struct {
	name     string
	ports    []PortStats // 1-based; index 0 unused
	tcam     *TCAM
	samplers []*Sampler
	dropped  uint64

	// Fused inject path: one flow cache holding the TCAM verdict and the
	// matching sampler set together, each half stamped with its own
	// generation (rule churn vs. sampler churn) so either kind of churn
	// invalidates only lazily, on the next probe of a stale flow.
	samplerGen uint64
	flowCache  map[flowKey]*injectVerdict
	cacheCap   int
	cacheStats CacheStats
	fastPath   bool
}

// injectVerdict is one memoized fused classification.
type injectVerdict struct {
	tcamGen    uint64
	samplerGen uint64
	e          *tcamEntry // nil = no rule matches
	samplers   []*Sampler // the samplers whose filter matches this flow
}

// NewSwitch returns a switch with numPorts ports and the given
// monitoring-TCAM capacity.
func NewSwitch(name string, numPorts, tcamCapacity int) *Switch {
	return &Switch{
		name:      name,
		ports:     make([]PortStats, numPorts+1),
		tcam:      NewTCAM(tcamCapacity),
		flowCache: make(map[flowKey]*injectVerdict),
		cacheCap:  defaultFlowCacheCap,
		fastPath:  true,
	}
}

// SetFastPath toggles the fused flow-cached inject path on this switch
// and the indexed lookup on its TCAM; off reverts to the linear
// reference behaviour (for benchmarking and A/B validation).
func (s *Switch) SetFastPath(on bool) {
	s.fastPath = on
	s.tcam.SetFastPath(on)
	clear(s.flowCache)
}

// CacheStats returns hit/miss counters of the fused inject flow cache.
func (s *Switch) CacheStats() CacheStats { return s.cacheStats }

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// NumPorts returns the port count.
func (s *Switch) NumPorts() int { return len(s.ports) - 1 }

// TCAM exposes the monitoring TCAM.
func (s *Switch) TCAM() *TCAM { return s.tcam }

// PortStats returns counters for a 1-based port.
func (s *Switch) PortStats(port int) (PortStats, error) {
	if port < 1 || port >= len(s.ports) {
		return PortStats{}, fmt.Errorf("dataplane: switch %s has no port %d", s.name, port)
	}
	return s.ports[port], nil
}

// Dropped returns the total packets dropped by TCAM rules.
func (s *Switch) Dropped() uint64 { return s.dropped }

// AddSampler registers a packet sampler and returns a remove function.
// Removal is effective immediately — even for a packet mid-Inject, the
// removed sampler no longer fires.
func (s *Switch) AddSampler(f Filter, oneInN int, fn func(Packet)) (remove func()) {
	if oneInN < 1 {
		oneInN = 1
	}
	sm := &Sampler{Filter: f, OneInN: oneInN, fn: fn}
	s.samplers = append(s.samplers, sm)
	s.samplerGen++
	return func() {
		if sm.removed {
			return
		}
		sm.removed = true
		s.samplerGen++
		for i, cur := range s.samplers {
			if cur == sm {
				s.samplers = append(s.samplers[:i], s.samplers[i+1:]...)
				return
			}
		}
	}
}

// CreditPort adds traffic to a port's counters in bulk without per-packet
// processing. Large-scale workloads (thousands of ports, Fig. 4) use this
// to drive counter-polling tasks cheaply; per-packet features (TCAM
// matching, sampling) require Inject.
func (s *Switch) CreditPort(port int, rxPackets, rxBytes, txPackets, txBytes uint64) error {
	if port < 1 || port >= len(s.ports) {
		return fmt.Errorf("dataplane: switch %s has no port %d", s.name, port)
	}
	s.ports[port].RxPackets += rxPackets
	s.ports[port].RxBytes += rxBytes
	s.ports[port].TxPackets += txPackets
	s.ports[port].TxBytes += txBytes
	return nil
}

// CreditRule adds matches to the rule with exactly the given filter,
// the bulk analogue of TCAM counting.
func (s *Switch) CreditRule(f Filter, packets, bytes uint64) bool {
	if e, ok := s.tcam.byFilter[f]; ok {
		e.stats.Packets += packets
		e.stats.Bytes += bytes
		return true
	}
	return false
}

// Inject passes a packet through the ASIC: ingress counters, TCAM
// classification (counting and possibly dropping), samplers, egress
// counters. inPort/outPort are 1-based; outPort 0 means locally
// destined.
//
// On the fast path TCAM and samplers are evaluated in one fused pass: a
// single flow-cache probe yields both the winning rule and the matching
// sampler set for a repeat flow; only a cold or churn-invalidated flow
// pays the indexed TCAM lookup plus the per-sampler filter scan.
func (s *Switch) Inject(p Packet, inPort, outPort int) Verdict {
	if inPort >= 1 && inPort < len(s.ports) {
		s.ports[inPort].RxPackets++
		s.ports[inPort].RxBytes += uint64(p.Size)
	}
	var v Verdict
	if s.fastPath {
		v = s.classifyFused(p, inPort)
	} else {
		v = s.classifyLinear(p, inPort)
	}
	if !v.Dropped && outPort >= 1 && outPort < len(s.ports) {
		s.ports[outPort].TxPackets++
		s.ports[outPort].TxBytes += uint64(p.Size)
	}
	return v
}

// classifyFused is the fused fast path: one flow-cache probe covering
// TCAM verdict and sampler set, recomputed lazily when either the rule
// or the sampler generation moved.
func (s *Switch) classifyFused(p Packet, inPort int) Verdict {
	k := flowKeyOf(p, inPort)
	cv, ok := s.flowCache[k]
	if !ok || cv.tcamGen != s.tcam.gen || cv.samplerGen != s.samplerGen {
		s.cacheStats.Misses++
		cv = &injectVerdict{tcamGen: s.tcam.gen, samplerGen: s.samplerGen}
		cv.e = s.tcam.index.lookup(p, inPort)
		for _, sm := range s.samplers {
			if sm.Filter.Match(p, inPort) {
				cv.samplers = append(cv.samplers, sm)
			}
		}
		if len(s.flowCache) >= s.cacheCap {
			clear(s.flowCache)
		}
		s.flowCache[k] = cv
	} else {
		s.cacheStats.Hits++
	}
	var v Verdict
	if cv.e != nil {
		cv.e.stats.Packets++
		cv.e.stats.Bytes += uint64(p.Size)
		v.Rule, v.Matched = cv.e.rule, true
		if cv.e.rule.Action == ActDrop {
			v.Dropped = true
			s.dropped++
		}
	}
	for _, sm := range cv.samplers {
		if sm.removed { // removed after this verdict was cached
			continue
		}
		sm.counter++
		if sm.counter%sm.OneInN == 0 {
			sm.fn(p)
		}
	}
	return v
}

// classifyLinear is the pre-fast-path behaviour: full TCAM scan, then a
// second scan over every sampler. Kept as the SetFastPath(false)
// baseline.
func (s *Switch) classifyLinear(p Packet, inPort int) Verdict {
	var v Verdict
	if r, ok := s.tcam.Lookup(p, inPort); ok {
		v.Rule, v.Matched = r, true
		if r.Action == ActDrop {
			v.Dropped = true
			s.dropped++
		}
	}
	for _, sm := range s.samplers {
		if sm.removed {
			continue
		}
		if sm.Filter.Match(p, inPort) {
			sm.counter++
			if sm.counter%sm.OneInN == 0 {
				sm.fn(p)
			}
		}
	}
	return v
}
