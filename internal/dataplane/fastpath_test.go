package dataplane

import (
	"fmt"
	"math/rand"
	"testing"
)

// genFilter draws a filter from a small structured pool so that every
// index bucket kind (dport/proto/inport/wildcard), replacement (filter
// collisions) and priority ties all occur frequently.
func genFilter(rng *rand.Rand) Filter {
	var f Filter
	switch rng.Intn(6) {
	case 0: // dport bucket
		f.DstPort = uint16(80 + rng.Intn(3))
		if rng.Intn(2) == 0 {
			f.Proto = ProtoTCP
		}
	case 1: // proto bucket
		f.Proto = []Proto{ProtoTCP, ProtoUDP, ProtoICMP}[rng.Intn(3)]
		if rng.Intn(2) == 0 {
			f.FlagsSet = FlagSYN
		}
	case 2: // inport bucket
		f.InPort = 1 + rng.Intn(3)
	case 3: // wildcard bucket: prefix-only
		f.SrcPrefix = pfx([]string{"10.0.0.0/8", "10.1.0.0/16", "10.1.1.0/24"}[rng.Intn(3)])
	case 4: // wildcard bucket: sport/flags-only
		if rng.Intn(2) == 0 {
			f.SrcPort = uint16(1000 + rng.Intn(3))
		} else {
			f.FlagsSet = FlagSYN | FlagACK
		}
	case 5: // combined, dport bucket with prefix
		f.DstPort = uint16(80 + rng.Intn(3))
		f.DstPrefix = pfx("10.2.0.0/16")
	}
	return f
}

func genPacket(rng *rand.Rand) (Packet, int) {
	srcs := []string{"10.1.1.4", "10.1.2.9", "10.2.0.7", "10.3.3.3"}
	p := Packet{
		SrcIP:   addr(srcs[rng.Intn(len(srcs))]),
		DstIP:   addr([]string{"10.2.1.1", "10.0.9.9"}[rng.Intn(2)]),
		SrcPort: uint16(1000 + rng.Intn(4)),
		DstPort: uint16(79 + rng.Intn(5)), // includes ports no rule names
		Proto:   []Proto{ProtoTCP, ProtoUDP, ProtoICMP, ProtoAny}[rng.Intn(4)],
		Size:    64 + rng.Intn(1400),
	}
	if rng.Intn(3) == 0 {
		p.Flags = []TCPFlags{FlagSYN, FlagSYN | FlagACK, FlagFIN}[rng.Intn(3)]
	}
	return p, rng.Intn(4) // inPort 0..3: 0 exercises the "no inport" path
}

// checkTCAMInvariants verifies the incremental structures agree with
// each other after arbitrary churn: entries strictly match-ordered,
// byFilter and the bucket index holding exactly the live entries, and
// every entry in the bucket its filter maps to.
func checkTCAMInvariants(t *testing.T, tc *TCAM) {
	t.Helper()
	for i := 1; i < len(tc.entries); i++ {
		if !entryLess(tc.entries[i-1], tc.entries[i]) {
			t.Fatalf("entries out of match order at %d", i)
		}
	}
	if len(tc.byFilter) != len(tc.entries) {
		t.Fatalf("byFilter size %d != entries %d", len(tc.byFilter), len(tc.entries))
	}
	indexed := 0
	for k, bucket := range tc.index.buckets {
		if len(bucket) == 0 {
			t.Fatalf("empty bucket %v retained", k)
		}
		for i, e := range bucket {
			if bucketFor(e.rule.Filter) != k {
				t.Fatalf("entry %v in wrong bucket %v", e.rule.Filter, k)
			}
			if i > 0 && !entryLess(bucket[i-1], e) {
				t.Fatalf("bucket %v out of match order", k)
			}
			if tc.byFilter[e.rule.Filter] != e {
				t.Fatalf("bucket entry %v not live in byFilter", e.rule.Filter)
			}
			indexed++
		}
	}
	if indexed != len(tc.entries) {
		t.Fatalf("index holds %d entries, table %d", indexed, len(tc.entries))
	}
}

// TestTCAMFastPathProperty interleaves rule churn with lookups and pins
// the fast path (bucketed index + generation-stamped flow cache) to the
// lookupReference oracle across >= 10k randomized steps, including
// replacements at capacity and priority ties.
func TestTCAMFastPathProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(271828))
	tc := NewTCAM(16)
	tc.cacheCap = 64 // small, so wholesale cache wipes happen too
	lookups, churn := 0, 0
	for step := 0; step < 12000; step++ {
		switch rng.Intn(8) {
		case 0, 1:
			r := Rule{
				Priority: rng.Intn(4), // few levels: ties are common
				Filter:   genFilter(rng),
				Action:   []Action{ActAllow, ActDrop, ActCount}[rng.Intn(3)],
				Note:     fmt.Sprintf("r%d", step),
			}
			if err := tc.AddRule(r); err != nil && tc.Size() < tc.Capacity() {
				t.Fatalf("step %d: AddRule: %v", step, err)
			}
			churn++
		case 2:
			// Replacement targeting an installed filter — exercised at
			// capacity too, where plain adds fail.
			if len(tc.entries) > 0 {
				e := tc.entries[rng.Intn(len(tc.entries))]
				r := Rule{Priority: rng.Intn(4), Filter: e.rule.Filter, Action: ActRateLimit, Note: fmt.Sprintf("repl%d", step)}
				if err := tc.AddRule(r); err != nil {
					t.Fatalf("step %d: replace: %v", step, err)
				}
				churn++
			}
		case 3:
			if len(tc.entries) > 0 && rng.Intn(2) == 0 {
				tc.RemoveRule(tc.entries[rng.Intn(len(tc.entries))].rule.Filter)
			} else {
				tc.RemoveRule(genFilter(rng)) // often a miss
			}
			churn++
		default:
			p, inPort := genPacket(rng)
			want, wantOK := tc.lookupReference(p, inPort)
			got, gotOK := tc.Lookup(p, inPort)
			if gotOK != wantOK || got != want {
				t.Fatalf("step %d: Lookup = %+v,%v; reference = %+v,%v", step, got, gotOK, want, wantOK)
			}
			// Immediate repeat: the flow cache must serve the same answer.
			again, againOK := tc.Lookup(p, inPort)
			if againOK != gotOK || again != got {
				t.Fatalf("step %d: cached repeat diverged: %+v,%v vs %+v,%v", step, again, againOK, got, gotOK)
			}
			lookups++
		}
		if step%500 == 0 {
			checkTCAMInvariants(t, tc)
		}
	}
	checkTCAMInvariants(t, tc)
	if lookups < 5000 || churn < 2000 {
		t.Fatalf("weak interleaving: %d lookups, %d churn ops", lookups, churn)
	}
	if st := tc.CacheStats(); st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache never exercised both ways: %+v", st)
	}
}

// TestSwitchFastPathEquivalence drives two switches — fused fast path
// vs. the linear reference path — through an identical schedule of
// packets, rule churn and sampler churn, and requires byte-identical
// observable behaviour: verdicts, per-rule counters, sampler delivery
// sequences, port counters and drop counts.
func TestSwitchFastPathEquivalence(t *testing.T) {
	const samplers = 4
	type world struct {
		sw      *Switch
		fired   [samplers][]int // packet indices delivered per sampler
		removes [samplers]func()
	}
	build := func(fast bool) *world {
		w := &world{sw: NewSwitch("sw", 4, 12)}
		w.sw.SetFastPath(fast)
		w.sw.cacheCap = 128
		filters := []Filter{{}, {DstPort: 80}, {Proto: ProtoUDP}, {SrcPrefix: pfx("10.1.0.0/16")}}
		for i := 0; i < samplers; i++ {
			i := i
			w.removes[i] = w.sw.AddSampler(filters[i], 1+i, func(Packet) {
				w.fired[i] = append(w.fired[i], len(w.fired[i]))
			})
		}
		return w
	}
	fastW, slowW := build(true), build(false)

	rng := rand.New(rand.NewSource(99))
	var ops []func(w *world) // one schedule, applied to both worlds
	for i := 0; i < 6000; i++ {
		switch rng.Intn(10) {
		case 0:
			r := Rule{Priority: rng.Intn(3), Filter: genFilter(rng), Action: []Action{ActAllow, ActDrop, ActCount}[rng.Intn(3)]}
			ops = append(ops, func(w *world) { _ = w.sw.TCAM().AddRule(r) })
		case 1:
			f := genFilter(rng)
			ops = append(ops, func(w *world) { w.sw.TCAM().RemoveRule(f) })
		case 2:
			if rng.Intn(10) == 0 { // rare: sampler removal mid-stream
				idx := rng.Intn(samplers)
				ops = append(ops, func(w *world) { w.removes[idx]() })
			}
		default:
			p, inPort := genPacket(rng)
			outPort := rng.Intn(4)
			ops = append(ops, func(w *world) { w.sw.Inject(p, inPort, outPort) })
		}
	}
	for _, op := range ops {
		op(fastW)
		op(slowW)
	}

	if fastW.sw.Dropped() != slowW.sw.Dropped() {
		t.Fatalf("dropped: fast %d, linear %d", fastW.sw.Dropped(), slowW.sw.Dropped())
	}
	for port := 1; port <= 4; port++ {
		fs, _ := fastW.sw.PortStats(port)
		ss, _ := slowW.sw.PortStats(port)
		if fs != ss {
			t.Fatalf("port %d stats diverged: %+v vs %+v", port, fs, ss)
		}
	}
	fr, sr := fastW.sw.TCAM().Rules(), slowW.sw.TCAM().Rules()
	if len(fr) != len(sr) {
		t.Fatalf("rule counts diverged: %d vs %d", len(fr), len(sr))
	}
	for i := range fr {
		if fr[i] != sr[i] {
			t.Fatalf("rule %d diverged: %+v vs %+v", i, fr[i], sr[i])
		}
		fst, _ := fastW.sw.TCAM().Stats(fr[i].Filter)
		sst, _ := slowW.sw.TCAM().Stats(sr[i].Filter)
		if fst != sst {
			t.Fatalf("rule %v counters diverged: %+v vs %+v", fr[i].Filter, fst, sst)
		}
	}
	for i := 0; i < samplers; i++ {
		if len(fastW.fired[i]) != len(slowW.fired[i]) {
			t.Fatalf("sampler %d deliveries diverged: %d vs %d", i, len(fastW.fired[i]), len(slowW.fired[i]))
		}
	}
	if st := fastW.sw.CacheStats(); st.Hits == 0 {
		t.Fatal("fused flow cache never hit")
	}
}

func TestFlowCacheInvalidationOnChurn(t *testing.T) {
	tc := NewTCAM(8)
	low := Rule{Priority: 1, Filter: Filter{Proto: ProtoTCP}, Action: ActAllow, Note: "low"}
	if err := tc.AddRule(low); err != nil {
		t.Fatal(err)
	}
	p := pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 100)
	if r, ok := tc.Lookup(p, 1); !ok || r.Note != "low" {
		t.Fatalf("lookup = %+v, %v", r, ok)
	}
	// Warm cache, then install a higher-priority rule for the same flow:
	// the next lookup must see it despite the cached verdict.
	high := Rule{Priority: 9, Filter: Filter{DstPort: 80}, Action: ActDrop, Note: "high"}
	if err := tc.AddRule(high); err != nil {
		t.Fatal(err)
	}
	if r, ok := tc.Lookup(p, 1); !ok || r.Note != "high" {
		t.Fatalf("post-churn lookup = %+v, %v; cache not invalidated", r, ok)
	}
	// Removal invalidates too.
	tc.RemoveRule(high.Filter)
	if r, ok := tc.Lookup(p, 1); !ok || r.Note != "low" {
		t.Fatalf("post-remove lookup = %+v, %v", r, ok)
	}
	if tc.Generation() != 3 {
		t.Fatalf("generation = %d, want 3 (two installs + one removal)", tc.Generation())
	}
}

func TestFlowCacheCapWipe(t *testing.T) {
	tc := NewTCAM(4)
	tc.cacheCap = 8
	_ = tc.AddRule(Rule{Priority: 1, Filter: Filter{Proto: ProtoTCP}})
	for i := 0; i < 100; i++ {
		p := pkt("10.0.0.1", "10.0.0.2", uint16(1000+i), 80, ProtoTCP, 64)
		tc.Lookup(p, 1)
		if len(tc.cache) > tc.cacheCap {
			t.Fatalf("cache grew past cap: %d > %d", len(tc.cache), tc.cacheCap)
		}
	}
}

func TestStatsMatchingExactIsByFilter(t *testing.T) {
	tc := NewTCAM(8)
	broad := Filter{Proto: ProtoTCP}
	narrow := Filter{Proto: ProtoTCP, DstPort: 80}
	_ = tc.AddRule(Rule{Priority: 2, Filter: narrow, Action: ActCount})
	_ = tc.AddRule(Rule{Priority: 1, Filter: broad, Action: ActCount})
	tc.Lookup(pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 100), 1) // narrow wins
	tc.Lookup(pkt("10.0.0.1", "10.0.0.2", 1, 443, ProtoTCP, 50), 1) // broad wins
	// Exact-key query answers from that rule alone, even though the
	// broad filter covers the narrow rule as well.
	if st := tc.StatsMatching(broad); st.Packets != 1 || st.Bytes != 50 {
		t.Fatalf("exact broad = %+v, want the broad rule's own counters", st)
	}
	if st := tc.StatsMatching(narrow); st.Packets != 1 || st.Bytes != 100 {
		t.Fatalf("exact narrow = %+v", st)
	}
}

func TestStatsMatchingBroadQueryCovers(t *testing.T) {
	tc := NewTCAM(8)
	_ = tc.AddRule(Rule{Priority: 3, Filter: Filter{Proto: ProtoTCP, DstPort: 80}, Action: ActCount})
	_ = tc.AddRule(Rule{Priority: 2, Filter: Filter{Proto: ProtoTCP, DstPort: 443}, Action: ActCount})
	_ = tc.AddRule(Rule{Priority: 1, Filter: Filter{Proto: ProtoUDP}, Action: ActCount})
	tc.Lookup(pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 100), 1)
	tc.Lookup(pkt("10.0.0.1", "10.0.0.2", 1, 443, ProtoTCP, 30), 1)
	tc.Lookup(pkt("10.0.0.1", "10.0.0.2", 1, 53, ProtoUDP, 20), 1)
	// Not installed exactly -> aggregates the two TCP rules it covers.
	if st := tc.StatsMatching(Filter{Proto: ProtoTCP}); st.Packets != 2 || st.Bytes != 130 {
		t.Fatalf("broad TCP = %+v, want 2 pkts / 130 B", st)
	}
	// The zero filter covers everything.
	if st := tc.StatsMatching(Filter{}); st.Packets != 3 || st.Bytes != 150 {
		t.Fatalf("zero query = %+v, want whole table", st)
	}
}

func TestFilterCovers(t *testing.T) {
	cases := []struct {
		name string
		f, g Filter
		want bool
	}{
		{"zero covers anything", Filter{}, Filter{DstPort: 80, Proto: ProtoTCP}, true},
		{"equal filters", Filter{DstPort: 80}, Filter{DstPort: 80}, true},
		{"narrow does not cover broad", Filter{DstPort: 80}, Filter{}, false},
		{"proto covers proto+port", Filter{Proto: ProtoTCP}, Filter{Proto: ProtoTCP, DstPort: 80}, true},
		{"proto mismatch", Filter{Proto: ProtoTCP}, Filter{Proto: ProtoUDP, DstPort: 80}, false},
		{"wider prefix covers narrower", Filter{SrcPrefix: pfx("10.0.0.0/8")}, Filter{SrcPrefix: pfx("10.1.0.0/16")}, true},
		{"narrower prefix does not cover wider", Filter{SrcPrefix: pfx("10.1.0.0/16")}, Filter{SrcPrefix: pfx("10.0.0.0/8")}, false},
		{"disjoint prefixes", Filter{SrcPrefix: pfx("10.1.0.0/16")}, Filter{SrcPrefix: pfx("10.2.0.0/16")}, false},
		{"prefix does not cover no-prefix", Filter{SrcPrefix: pfx("10.0.0.0/8")}, Filter{DstPort: 80}, false},
		{"flag subset covers superset", Filter{FlagsSet: FlagSYN}, Filter{FlagsSet: FlagSYN | FlagACK}, true},
		{"flag superset does not cover subset", Filter{FlagsSet: FlagSYN | FlagACK}, Filter{FlagsSet: FlagSYN}, false},
		{"inport exact", Filter{InPort: 2}, Filter{InPort: 2, Proto: ProtoTCP}, true},
		{"inport mismatch", Filter{InPort: 2}, Filter{InPort: 3}, false},
	}
	for _, c := range cases {
		if got := c.f.Covers(c.g); got != c.want {
			t.Errorf("%s: Covers = %v, want %v", c.name, got, c.want)
		}
	}
}

// Covers must be sound w.r.t. Match: if f covers g, every packet g
// matches, f matches.
func TestFilterCoversSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		f, g := genFilter(rng), genFilter(rng)
		if !f.Covers(g) {
			continue
		}
		for j := 0; j < 50; j++ {
			p, inPort := genPacket(rng)
			if g.Match(p, inPort) && !f.Match(p, inPort) {
				t.Fatalf("f=%v covers g=%v but missed packet %+v in %d", f, g, p, inPort)
			}
		}
	}
}

func TestFilterKeyCachedAndAllocationFree(t *testing.T) {
	f := Filter{SrcPrefix: pfx("10.77.0.0/16"), DstPort: 8080, Proto: ProtoTCP, FlagsSet: FlagSYN, InPort: 2}
	want := "src=10.77.0.0/16;dport=8080;proto=6;flags=2;in=2"
	if got := f.Key(); got != want {
		t.Fatalf("Key = %q, want %q", got, want)
	}
	// After the first call the key is cached: repeated calls allocate
	// nothing.
	if allocs := testing.AllocsPerRun(100, func() {
		if f.Key() != want {
			t.Fatal("cached key changed")
		}
	}); allocs != 0 {
		t.Fatalf("cached Key allocates %v per call, want 0", allocs)
	}
	if (Filter{}).Key() != "any" {
		t.Fatal("zero filter key")
	}
}

// Satellite: deterministic 1-in-N cadence across interleaved matching
// and non-matching packets — only matching packets advance the counter.
func TestSamplerCadenceInterleaved(t *testing.T) {
	for _, fast := range []bool{true, false} {
		sw := NewSwitch("sw0", 2, 16)
		sw.SetFastPath(fast)
		var got []uint16
		sw.AddSampler(Filter{DstPort: 80}, 3, func(p Packet) { got = append(got, p.SrcPort) })
		matching := 0
		for i := 0; i < 30; i++ {
			if i%2 == 0 { // even injections match; odd ones must not advance cadence
				matching++
				sw.Inject(pkt("10.0.0.1", "10.0.0.2", uint16(matching), 80, ProtoTCP, 64), 1, 2)
			} else {
				sw.Inject(pkt("10.0.0.1", "10.0.0.2", uint16(1000+i), 443, ProtoTCP, 64), 1, 2)
			}
		}
		// 15 matching packets at 1-in-3: exactly the 3rd, 6th, 9th, 12th,
		// 15th matching packets are delivered.
		want := []uint16{3, 6, 9, 12, 15}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("fast=%v: sampled %v, want %v", fast, got, want)
		}
	}
}

// Satellite: removal via the returned remove func mid-stream stops
// delivery immediately and leaves other samplers' cadence intact —
// including when the removal happens after the flow cache is warm.
func TestSamplerRemoveMidStream(t *testing.T) {
	for _, fast := range []bool{true, false} {
		sw := NewSwitch("sw0", 2, 16)
		sw.SetFastPath(fast)
		var a, b int
		removeA := sw.AddSampler(Filter{}, 2, func(Packet) { a++ })
		sw.AddSampler(Filter{}, 5, func(Packet) { b++ })
		p := pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 64)
		for i := 0; i < 10; i++ { // warm cache on the fast path
			sw.Inject(p, 1, 2)
		}
		if a != 5 || b != 2 {
			t.Fatalf("fast=%v: pre-removal a=%d b=%d, want 5, 2", fast, a, b)
		}
		removeA()
		removeA() // double removal is a no-op
		for i := 0; i < 10; i++ {
			sw.Inject(p, 1, 2)
		}
		if a != 5 {
			t.Fatalf("fast=%v: removed sampler fired: a=%d", fast, a)
		}
		if b != 4 {
			t.Fatalf("fast=%v: surviving sampler cadence broken: b=%d, want 4", fast, b)
		}
	}
}

// A sampler removing itself (or a peer) from inside its callback must
// take effect for the same packet's remaining samplers.
func TestSamplerRemoveDuringCallback(t *testing.T) {
	for _, fast := range []bool{true, false} {
		sw := NewSwitch("sw0", 2, 16)
		sw.SetFastPath(fast)
		var first, second int
		var removeSecond func()
		sw.AddSampler(Filter{}, 1, func(Packet) {
			first++
			if first == 3 {
				removeSecond()
			}
		})
		removeSecond = sw.AddSampler(Filter{}, 1, func(Packet) { second++ })
		p := pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 64)
		for i := 0; i < 6; i++ {
			sw.Inject(p, 1, 2)
		}
		// second fires for packets 1 and 2 only: on packet 3 the first
		// sampler removes it before it is reached.
		if first != 6 || second != 2 {
			t.Fatalf("fast=%v: first=%d second=%d, want 6, 2", fast, first, second)
		}
	}
}
