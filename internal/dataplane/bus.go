package dataplane

import (
	"time"

	"farm/internal/engine"
)

// Bus models the PCIe link between the switch management CPU and the
// ASIC as a rate-limited FIFO channel. All statistics polling, rule
// updates, and sampled packets cross it; with the capacities measured in
// the paper (8 Mbps polling vs. 100 Gbps ASIC, a 1:12500 ratio) it is
// the first resource to congest (Fig. 8).
type Bus struct {
	sched       engine.Scheduler
	bytesPerSec float64
	busyUntil   time.Duration

	// cumulative accounting
	requests   uint64
	bytes      uint64
	busy       time.Duration
	delaySum   time.Duration
	delayMax   time.Duration
	lastActive time.Duration
}

// DefaultPCIePollBytesPerSec is the paper's measured polling capacity:
// 8 Mbps = 1e6 bytes/s.
const DefaultPCIePollBytesPerSec = 1_000_000

// NewBus returns a bus on the given scheduler (under the sharded
// engine: the owning switch's shard view) with the given capacity in
// bytes per second.
func NewBus(sched engine.Scheduler, bytesPerSec float64) *Bus {
	if bytesPerSec <= 0 {
		bytesPerSec = DefaultPCIePollBytesPerSec
	}
	return &Bus{sched: sched, bytesPerSec: bytesPerSec}
}

// Request enqueues a transfer of size bytes and calls fn when it
// completes; fn receives the total latency (queueing + transfer).
func (b *Bus) Request(size int, fn func(latency time.Duration)) {
	now := b.sched.Now()
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	transfer := time.Duration(float64(size) / b.bytesPerSec * float64(time.Second))
	done := start + transfer
	b.busyUntil = done
	b.requests++
	b.bytes += uint64(size)
	b.busy += transfer
	queueDelay := start - now
	b.delaySum += queueDelay
	if queueDelay > b.delayMax {
		b.delayMax = queueDelay
	}
	latency := done - now
	if fn != nil {
		b.sched.At(done, func() { fn(latency) })
	}
}

// Backlog returns how far in the future the bus is already committed.
func (b *Bus) Backlog() time.Duration {
	if b.busyUntil <= b.sched.Now() {
		return 0
	}
	return b.busyUntil - b.sched.Now()
}

// BusSnapshot is a point-in-time view of cumulative bus accounting.
type BusSnapshot struct {
	At       time.Duration
	Requests uint64
	Bytes    uint64
	Busy     time.Duration
	DelaySum time.Duration
	DelayMax time.Duration
}

// Snapshot returns the cumulative counters.
func (b *Bus) Snapshot() BusSnapshot {
	return BusSnapshot{
		At:       b.sched.Now(),
		Requests: b.requests,
		Bytes:    b.bytes,
		Busy:     b.busy,
		DelaySum: b.delaySum,
		DelayMax: b.delayMax,
	}
}

// UtilizationSince returns the fraction of time the bus was busy between
// an earlier snapshot and now (may exceed 1 when the queue has built a
// backlog beyond "now").
func (b *Bus) UtilizationSince(prev BusSnapshot) float64 {
	elapsed := b.sched.Now() - prev.At
	if elapsed <= 0 {
		return 0
	}
	return float64(b.busy-prev.Busy) / float64(elapsed)
}

// Transfer size constants (bytes) for the operations crossing the bus.
const (
	portStatsReqBytes  = 16 // request descriptor
	portStatsRespBytes = 32 // counters for one port
	ruleStatsBytes     = 48 // request + one rule's counters
	ruleUpdateBytes    = 96 // install/remove a TCAM entry
	sampleHeaderBytes  = 128
)

// Driver is the soil's window onto the ASIC (the Stratum / EOS SDK role
// in §V-A). All operations are asynchronous: results arrive via
// callback after the modelled bus transfer completes.
type Driver interface {
	// NumPorts reports the ASIC port count.
	NumPorts() int
	// PollPortStats reads counters for the given 1-based ports. nil or
	// empty polls every port.
	PollPortStats(ports []int, fn func(map[int]PortStats))
	// PollRuleStats reads the counters of the rule with exactly filter f.
	PollRuleStats(f Filter, fn func(RuleStats, bool))
	// AddRule installs a TCAM rule.
	AddRule(r Rule, fn func(error))
	// RemoveRule removes the rule with exactly filter f.
	RemoveRule(f Filter, fn func(removed bool))
	// GetRule fetches the rule with exactly filter f.
	GetRule(f Filter, fn func(Rule, bool))
	// StartSampling mirrors 1-in-N matching packets to fn. Each sample
	// crosses the bus; samples are dropped when the backlog exceeds the
	// driver's limit. stop unregisters the sampler.
	StartSampling(f Filter, oneInN int, fn func(Packet)) (stop func())
}

// EmuDriver implements Driver over an emulated Switch and Bus.
type EmuDriver struct {
	sw  *Switch
	bus *Bus
	// MaxSampleBacklog drops samples once the bus backlog exceeds it
	// (the real PCIe DMA ring would overflow); 0 means DefaultMaxSampleBacklog.
	MaxSampleBacklog time.Duration
	sampleDrops      uint64
}

// DefaultMaxSampleBacklog approximates the ASIC's mirror DMA ring
// capacity expressed as time at line rate.
const DefaultMaxSampleBacklog = 100 * time.Millisecond

// NewEmuDriver returns a driver over the given switch and bus.
func NewEmuDriver(sw *Switch, bus *Bus) *EmuDriver {
	return &EmuDriver{sw: sw, bus: bus}
}

// Switch exposes the underlying emulated switch (test and traffic
// generator access; M&M code must stay behind the Driver interface).
func (d *EmuDriver) Switch() *Switch { return d.sw }

// Bus exposes the underlying bus for measurement.
func (d *EmuDriver) Bus() *Bus { return d.bus }

// SampleDrops returns the number of samples dropped due to bus backlog.
func (d *EmuDriver) SampleDrops() uint64 { return d.sampleDrops }

// NumPorts implements Driver.
func (d *EmuDriver) NumPorts() int { return d.sw.NumPorts() }

// PollPortStats implements Driver.
func (d *EmuDriver) PollPortStats(ports []int, fn func(map[int]PortStats)) {
	if len(ports) == 0 {
		ports = make([]int, d.sw.NumPorts())
		for i := range ports {
			ports[i] = i + 1
		}
	}
	size := portStatsReqBytes + portStatsRespBytes*len(ports)
	// Capture the port list; read counters at completion time (the
	// ASIC answers with its state when the request is serviced).
	ps := append([]int(nil), ports...)
	d.bus.Request(size, func(time.Duration) {
		out := make(map[int]PortStats, len(ps))
		for _, p := range ps {
			if st, err := d.sw.PortStats(p); err == nil {
				out[p] = st
			}
		}
		fn(out)
	})
}

// PollRuleStats implements Driver.
func (d *EmuDriver) PollRuleStats(f Filter, fn func(RuleStats, bool)) {
	d.bus.Request(ruleStatsBytes, func(time.Duration) {
		st, ok := d.sw.TCAM().Stats(f)
		fn(st, ok)
	})
}

// AddRule implements Driver.
func (d *EmuDriver) AddRule(r Rule, fn func(error)) {
	d.bus.Request(ruleUpdateBytes, func(time.Duration) {
		err := d.sw.TCAM().AddRule(r)
		if fn != nil {
			fn(err)
		}
	})
}

// RemoveRule implements Driver.
func (d *EmuDriver) RemoveRule(f Filter, fn func(bool)) {
	d.bus.Request(ruleUpdateBytes, func(time.Duration) {
		ok := d.sw.TCAM().RemoveRule(f)
		if fn != nil {
			fn(ok)
		}
	})
}

// GetRule implements Driver.
func (d *EmuDriver) GetRule(f Filter, fn func(Rule, bool)) {
	d.bus.Request(ruleStatsBytes, func(time.Duration) {
		r, ok := d.sw.TCAM().GetRule(f)
		fn(r, ok)
	})
}

// StartSampling implements Driver.
func (d *EmuDriver) StartSampling(f Filter, oneInN int, fn func(Packet)) (stop func()) {
	limit := d.MaxSampleBacklog
	if limit == 0 {
		limit = DefaultMaxSampleBacklog
	}
	return d.sw.AddSampler(f, oneInN, func(p Packet) {
		if d.bus.Backlog() > limit {
			d.sampleDrops++
			return
		}
		size := sampleHeaderBytes
		if p.Size < size {
			size = p.Size
		}
		d.bus.Request(size, func(time.Duration) { fn(p) })
	})
}
