package dataplane

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"farm/internal/engine"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func pkt(src, dst string, sport, dport uint16, proto Proto, size int) Packet {
	return Packet{
		SrcIP: addr(src), DstIP: addr(dst),
		SrcPort: sport, DstPort: dport,
		Proto: proto, Size: size,
	}
}

func TestFilterMatch(t *testing.T) {
	p := pkt("10.1.1.4", "10.0.1.9", 1234, 80, ProtoTCP, 100)
	cases := []struct {
		name  string
		f     Filter
		want  bool
		inPrt int
	}{
		{"zero matches all", Filter{}, true, 1},
		{"src prefix hit", Filter{SrcPrefix: pfx("10.1.0.0/16")}, true, 1},
		{"src prefix miss", Filter{SrcPrefix: pfx("10.2.0.0/16")}, false, 1},
		{"dst prefix hit", Filter{DstPrefix: pfx("10.0.1.0/24")}, true, 1},
		{"dst port hit", Filter{DstPort: 80}, true, 1},
		{"dst port miss", Filter{DstPort: 443}, false, 1},
		{"src port hit", Filter{SrcPort: 1234}, true, 1},
		{"proto hit", Filter{Proto: ProtoTCP}, true, 1},
		{"proto miss", Filter{Proto: ProtoUDP}, false, 1},
		{"inport hit", Filter{InPort: 1}, true, 1},
		{"inport miss", Filter{InPort: 2}, false, 1},
		{"combined", Filter{SrcPrefix: pfx("10.1.1.4/32"), DstPort: 80, Proto: ProtoTCP}, true, 1},
	}
	for _, c := range cases {
		if got := c.f.Match(p, c.inPrt); got != c.want {
			t.Errorf("%s: match = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFilterFlags(t *testing.T) {
	p := pkt("10.0.0.1", "10.0.0.2", 1, 2, ProtoTCP, 40)
	p.Flags = FlagSYN
	if !(Filter{FlagsSet: FlagSYN}).Match(p, 1) {
		t.Fatal("SYN filter should match SYN packet")
	}
	if (Filter{FlagsSet: FlagSYN | FlagACK}).Match(p, 1) {
		t.Fatal("SYN+ACK filter should not match pure SYN")
	}
}

func TestFilterKeyCanonical(t *testing.T) {
	f1 := Filter{SrcPrefix: pfx("10.1.0.0/16"), DstPort: 80}
	f2 := Filter{DstPort: 80, SrcPrefix: pfx("10.1.0.0/16")}
	if f1.Key() != f2.Key() {
		t.Fatalf("keys differ: %q vs %q", f1.Key(), f2.Key())
	}
	if (Filter{}).Key() != "any" {
		t.Fatalf("zero filter key = %q", (Filter{}).Key())
	}
	f3 := Filter{DstPort: 443}
	if f1.Key() == f3.Key() {
		t.Fatal("distinct filters share a key")
	}
}

func TestTCAMPriority(t *testing.T) {
	tc := NewTCAM(10)
	low := Rule{Priority: 1, Filter: Filter{Proto: ProtoTCP}, Action: ActAllow}
	high := Rule{Priority: 5, Filter: Filter{DstPort: 80}, Action: ActDrop}
	if err := tc.AddRule(low); err != nil {
		t.Fatal(err)
	}
	if err := tc.AddRule(high); err != nil {
		t.Fatal(err)
	}
	p := pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 100)
	r, ok := tc.Lookup(p, 1)
	if !ok || r.Action != ActDrop {
		t.Fatalf("lookup = %+v, %v; want drop rule", r, ok)
	}
	// Only the matched rule counts.
	if st, _ := tc.Stats(high.Filter); st.Packets != 1 || st.Bytes != 100 {
		t.Fatalf("high stats = %+v", st)
	}
	if st, _ := tc.Stats(low.Filter); st.Packets != 0 {
		t.Fatalf("low stats = %+v, want zero", st)
	}
}

func TestTCAMTieBreakBySeq(t *testing.T) {
	tc := NewTCAM(10)
	first := Rule{Priority: 3, Filter: Filter{Proto: ProtoTCP}, Action: ActAllow, Note: "first"}
	second := Rule{Priority: 3, Filter: Filter{DstPort: 80}, Action: ActDrop, Note: "second"}
	_ = tc.AddRule(first)
	_ = tc.AddRule(second)
	p := pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 10)
	r, _ := tc.Lookup(p, 1)
	if r.Note != "first" {
		t.Fatalf("tie broke to %q, want first-installed", r.Note)
	}
}

func TestTCAMCapacityAndReplace(t *testing.T) {
	tc := NewTCAM(2)
	_ = tc.AddRule(Rule{Priority: 1, Filter: Filter{DstPort: 1}})
	_ = tc.AddRule(Rule{Priority: 1, Filter: Filter{DstPort: 2}})
	if err := tc.AddRule(Rule{Priority: 1, Filter: Filter{DstPort: 3}}); err != ErrTCAMFull {
		t.Fatalf("err = %v, want ErrTCAMFull", err)
	}
	// Replacing an existing filter succeeds at capacity.
	if err := tc.AddRule(Rule{Priority: 9, Filter: Filter{DstPort: 2}, Action: ActDrop}); err != nil {
		t.Fatal(err)
	}
	r, ok := tc.GetRule(Filter{DstPort: 2})
	if !ok || r.Priority != 9 || r.Action != ActDrop {
		t.Fatalf("replaced rule = %+v, %v", r, ok)
	}
	if tc.Size() != 2 || tc.Free() != 0 {
		t.Fatalf("size=%d free=%d", tc.Size(), tc.Free())
	}
}

func TestTCAMRemove(t *testing.T) {
	tc := NewTCAM(4)
	f := Filter{DstPort: 80}
	_ = tc.AddRule(Rule{Priority: 1, Filter: f})
	if !tc.RemoveRule(f) {
		t.Fatal("remove should succeed")
	}
	if tc.RemoveRule(f) {
		t.Fatal("second remove should fail")
	}
	if _, ok := tc.GetRule(f); ok {
		t.Fatal("rule still present")
	}
}

// Property: Lookup agrees with a brute-force reference scan on random
// rule tables and packets.
func TestTCAMLookupMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		tc := NewTCAM(32)
		nRules := 1 + rng.Intn(10)
		for i := 0; i < nRules; i++ {
			f := Filter{}
			if rng.Intn(2) == 0 {
				f.DstPort = uint16(rng.Intn(3) + 80)
			}
			if rng.Intn(2) == 0 {
				f.Proto = ProtoTCP
			}
			if rng.Intn(3) == 0 {
				f.InPort = rng.Intn(3) + 1
			}
			_ = tc.AddRule(Rule{Priority: rng.Intn(5), Filter: f, Note: "r"})
		}
		for j := 0; j < 20; j++ {
			p := pkt("10.0.0.1", "10.0.0.2", uint16(rng.Intn(1000)+1), uint16(rng.Intn(3)+80), ProtoTCP, 64)
			if rng.Intn(2) == 0 {
				p.Proto = ProtoUDP
			}
			inPort := rng.Intn(3) + 1
			want, wantOK := tc.lookupReference(p, inPort)
			got, gotOK := tc.Lookup(p, inPort)
			if gotOK != wantOK || (gotOK && (got.Priority != want.Priority || got.Filter != want.Filter)) {
				t.Fatalf("trial %d: lookup %+v,%v != reference %+v,%v", trial, got, gotOK, want, wantOK)
			}
		}
	}
}

func TestSwitchInjectCounters(t *testing.T) {
	sw := NewSwitch("sw0", 4, 16)
	p := pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 150)
	sw.Inject(p, 1, 2)
	sw.Inject(p, 1, 2)
	in, _ := sw.PortStats(1)
	out, _ := sw.PortStats(2)
	if in.RxPackets != 2 || in.RxBytes != 300 {
		t.Fatalf("rx = %+v", in)
	}
	if out.TxPackets != 2 || out.TxBytes != 300 {
		t.Fatalf("tx = %+v", out)
	}
	if _, err := sw.PortStats(9); err == nil {
		t.Fatal("expected port range error")
	}
}

func TestSwitchDropRule(t *testing.T) {
	sw := NewSwitch("sw0", 2, 16)
	_ = sw.TCAM().AddRule(Rule{Priority: 1, Filter: Filter{DstPort: 666}, Action: ActDrop})
	bad := pkt("10.0.0.1", "10.0.0.2", 1, 666, ProtoTCP, 100)
	good := pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 100)
	v1 := sw.Inject(bad, 1, 2)
	v2 := sw.Inject(good, 1, 2)
	if !v1.Dropped || v2.Dropped {
		t.Fatalf("verdicts = %+v, %+v", v1, v2)
	}
	if sw.Dropped() != 1 {
		t.Fatalf("dropped = %d", sw.Dropped())
	}
	// Dropped packets are not transmitted.
	out, _ := sw.PortStats(2)
	if out.TxPackets != 1 {
		t.Fatalf("tx = %+v, want 1 packet", out)
	}
}

func TestSamplerOneInN(t *testing.T) {
	sw := NewSwitch("sw0", 2, 16)
	var got []Packet
	remove := sw.AddSampler(Filter{}, 3, func(p Packet) { got = append(got, p) })
	for i := 0; i < 10; i++ {
		sw.Inject(pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 100), 1, 2)
	}
	if len(got) != 3 {
		t.Fatalf("sampled %d, want 3 (1-in-3 of 10)", len(got))
	}
	remove()
	sw.Inject(pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 100), 1, 2)
	if len(got) != 3 {
		t.Fatal("sampler fired after removal")
	}
}

func TestBusSerializesTransfers(t *testing.T) {
	loop := engine.NewSerial()
	bus := NewBus(loop, 1000) // 1000 B/s -> 100 B takes 100 ms
	var done []time.Duration
	bus.Request(100, func(lat time.Duration) { done = append(done, loop.Now()) })
	bus.Request(100, func(lat time.Duration) { done = append(done, loop.Now()) })
	loop.RunFor(time.Second)
	if len(done) != 2 {
		t.Fatalf("completed %d, want 2", len(done))
	}
	if done[0] != 100*time.Millisecond || done[1] != 200*time.Millisecond {
		t.Fatalf("completions at %v, want 100ms and 200ms", done)
	}
}

func TestBusLatencyIncludesQueueing(t *testing.T) {
	loop := engine.NewSerial()
	bus := NewBus(loop, 1000)
	var lats []time.Duration
	bus.Request(100, func(l time.Duration) { lats = append(lats, l) })
	bus.Request(100, func(l time.Duration) { lats = append(lats, l) })
	loop.RunFor(time.Second)
	if lats[0] != 100*time.Millisecond || lats[1] != 200*time.Millisecond {
		t.Fatalf("latencies = %v", lats)
	}
	snap := bus.Snapshot()
	if snap.DelayMax != 100*time.Millisecond {
		t.Fatalf("max queue delay = %v, want 100ms", snap.DelayMax)
	}
}

// Property: bus conservation — busy time never exceeds capacity * bytes
// relation, i.e. busy == bytes / rate.
func TestBusConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	loop := engine.NewSerial()
	rate := 50000.0
	bus := NewBus(loop, rate)
	total := 0
	for i := 0; i < 100; i++ {
		sz := rng.Intn(2000) + 1
		total += sz
		bus.Request(sz, nil)
		loop.RunFor(time.Duration(rng.Intn(10)) * time.Millisecond)
	}
	snap := bus.Snapshot()
	wantBusy := time.Duration(float64(total) / rate * float64(time.Second))
	diff := snap.Busy - wantBusy
	if diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("busy = %v, want %v", snap.Busy, wantBusy)
	}
	if snap.Bytes != uint64(total) {
		t.Fatalf("bytes = %d, want %d", snap.Bytes, total)
	}
}

func TestBusUtilization(t *testing.T) {
	loop := engine.NewSerial()
	bus := NewBus(loop, 1000)
	start := bus.Snapshot()
	bus.Request(500, nil) // 500 ms of service
	loop.RunFor(time.Second)
	u := bus.UtilizationSince(start)
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %g, want ~0.5", u)
	}
}

func TestEmuDriverPollPortStats(t *testing.T) {
	loop := engine.NewSerial()
	sw := NewSwitch("sw0", 4, 16)
	drv := NewEmuDriver(sw, NewBus(loop, DefaultPCIePollBytesPerSec))
	// Traffic arrives while the poll is in flight; the response reflects
	// state at service time.
	sw.Inject(pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 100), 1, 2)
	var got map[int]PortStats
	drv.PollPortStats([]int{1, 2}, func(m map[int]PortStats) { got = m })
	loop.RunFor(10 * time.Millisecond)
	if got == nil {
		t.Fatal("poll did not complete")
	}
	if got[1].RxPackets != 1 || got[2].TxPackets != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestEmuDriverPollAllPorts(t *testing.T) {
	loop := engine.NewSerial()
	sw := NewSwitch("sw0", 8, 16)
	drv := NewEmuDriver(sw, NewBus(loop, DefaultPCIePollBytesPerSec))
	var got map[int]PortStats
	drv.PollPortStats(nil, func(m map[int]PortStats) { got = m })
	loop.RunFor(10 * time.Millisecond)
	if len(got) != 8 {
		t.Fatalf("polled %d ports, want 8", len(got))
	}
}

func TestEmuDriverRuleLifecycle(t *testing.T) {
	loop := engine.NewSerial()
	sw := NewSwitch("sw0", 2, 16)
	drv := NewEmuDriver(sw, NewBus(loop, DefaultPCIePollBytesPerSec))
	f := Filter{DstPort: 80}
	var addErr error = errSentinel
	drv.AddRule(Rule{Priority: 2, Filter: f, Action: ActCount}, func(err error) { addErr = err })
	loop.RunFor(10 * time.Millisecond)
	if addErr != nil {
		t.Fatalf("add err = %v", addErr)
	}
	sw.Inject(pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 77), 1, 2)
	var st RuleStats
	var ok bool
	drv.PollRuleStats(f, func(s RuleStats, o bool) { st, ok = s, o })
	loop.RunFor(10 * time.Millisecond)
	if !ok || st.Packets != 1 || st.Bytes != 77 {
		t.Fatalf("rule stats = %+v, %v", st, ok)
	}
	var removed bool
	drv.RemoveRule(f, func(r bool) { removed = r })
	loop.RunFor(10 * time.Millisecond)
	if !removed {
		t.Fatal("rule not removed")
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }

func TestEmuDriverSamplingDropsUnderBacklog(t *testing.T) {
	loop := engine.NewSerial()
	sw := NewSwitch("sw0", 2, 16)
	bus := NewBus(loop, 1000) // tiny bus: 128 B sample = 128 ms
	drv := NewEmuDriver(sw, bus)
	drv.MaxSampleBacklog = 200 * time.Millisecond
	delivered := 0
	stop := drv.StartSampling(Filter{}, 1, func(Packet) { delivered++ })
	defer stop()
	for i := 0; i < 10; i++ {
		sw.Inject(pkt("10.0.0.1", "10.0.0.2", 1, 80, ProtoTCP, 1000), 1, 2)
	}
	loop.RunFor(5 * time.Second)
	if drv.SampleDrops() == 0 {
		t.Fatal("expected sample drops under backlog")
	}
	if delivered+int(drv.SampleDrops()) != 10 {
		t.Fatalf("delivered %d + dropped %d != 10", delivered, drv.SampleDrops())
	}
}

func TestPacketFlowKey(t *testing.T) {
	p := pkt("10.0.0.1", "10.0.0.2", 5, 80, ProtoTCP, 64)
	q := pkt("10.0.0.1", "10.0.0.2", 5, 80, ProtoTCP, 9999)
	if p.Flow() != q.Flow() {
		t.Fatal("same 5-tuple should share FlowKey")
	}
	r := pkt("10.0.0.1", "10.0.0.2", 6, 80, ProtoTCP, 64)
	if p.Flow() == r.Flow() {
		t.Fatal("different src ports should differ")
	}
}
