// Package dataplane emulates a data center switch ASIC: ports with
// traffic counters, a priority TCAM with match/action rules, packet
// sampling, and the PCIe bus connecting the ASIC to the switch's
// management CPU.
//
// This is the substitution for the Tofino/Trident hardware the paper
// deploys on (§V-A): FARM's switch-local components only ever observe
// the ASIC through statistics polling, packet samples, and TCAM rule
// updates, and this package exposes exactly that surface. The PCIe bus
// is modelled as a rate-limited channel because its limited polling
// capacity (8 Mbps vs. the ASIC's 100 Gbps — a 1:12500 ratio, Fig. 8)
// is the key bottleneck FARM's polling aggregation addresses.
package dataplane

import (
	"fmt"
	"net/netip"
	"strconv"
	"sync"
	"sync/atomic"
)

// Proto is an IP protocol.
type Proto uint8

const (
	ProtoAny  Proto = 0
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
	ProtoICMP Proto = 1
)

func (p Proto) String() string {
	switch p {
	case ProtoAny:
		return "any"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoICMP:
		return "icmp"
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// TCPFlags is a TCP flag bitmask.
type TCPFlags uint8

const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// Has reports whether all flags in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// AppKind tags application-level packet content that payload-inspecting
// M&M tasks (DNS reflection, SSH brute force, Slowloris) react to.
type AppKind uint8

const (
	AppNone AppKind = iota
	AppDNS
	AppSSH
	AppHTTP
)

// AppInfo carries the payload hints the Tab. I tasks inspect. On real
// hardware these come from parsing sampled packet payloads; the
// generators set them directly.
type AppInfo struct {
	Kind AppKind
	// DNS
	DNSResponse bool
	DNSQName    string
	// SSH
	SSHAuthFail bool
	// HTTP
	HTTPPartial bool // incomplete request header (Slowloris signature)
}

// Packet is a single packet as seen by the ASIC.
type Packet struct {
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   Proto
	Flags   TCPFlags
	Size    int // total bytes on the wire
	App     AppInfo
}

// FlowKey identifies the 5-tuple flow of a packet.
type FlowKey struct {
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// Flow returns the packet's 5-tuple.
func (p Packet) Flow() FlowKey {
	return FlowKey{SrcIP: p.SrcIP, DstIP: p.DstIP, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
}

// AppendTo appends the flow's canonical text form to b and returns the
// extended slice — the allocation-free building block for per-packet
// consumers (the fabric's ECMP flow hash feeds these exact bytes to
// FNV-1a, so the encoding must stay stable).
func (k FlowKey) AppendTo(b []byte) []byte {
	b = k.SrcIP.AppendTo(b)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(k.SrcPort), 10)
	b = append(b, '-', '>')
	b = k.DstIP.AppendTo(b)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(k.DstPort), 10)
	b = append(b, '/')
	b = append(b, k.Proto.String()...)
	return b
}

func (k FlowKey) String() string {
	return string(k.AppendTo(make([]byte, 0, 64)))
}

// Filter is a ternary match over packet headers and ingress port. The
// zero value matches everything ("port ANY" in Almanac terms).
type Filter struct {
	SrcPrefix netip.Prefix // invalid (zero) = any
	DstPrefix netip.Prefix // invalid (zero) = any
	SrcPort   uint16       // 0 = any
	DstPort   uint16       // 0 = any
	Proto     Proto        // 0 = any
	FlagsSet  TCPFlags     // all listed flags must be set
	InPort    int          // 0 = any; ports are 1-based
}

// IsZero reports whether f matches everything.
func (f Filter) IsZero() bool { return f == Filter{} }

// Match reports whether packet p arriving on inPort matches f.
func (f Filter) Match(p Packet, inPort int) bool {
	if f.SrcPrefix.IsValid() && !f.SrcPrefix.Contains(p.SrcIP) {
		return false
	}
	if f.DstPrefix.IsValid() && !f.DstPrefix.Contains(p.DstIP) {
		return false
	}
	if f.SrcPort != 0 && f.SrcPort != p.SrcPort {
		return false
	}
	if f.DstPort != 0 && f.DstPort != p.DstPort {
		return false
	}
	if f.Proto != ProtoAny && f.Proto != p.Proto {
		return false
	}
	if f.FlagsSet != 0 && !p.Flags.Has(f.FlagsSet) {
		return false
	}
	if f.InPort != 0 && f.InPort != inPort {
		return false
	}
	return true
}

// Covers reports whether f is at least as broad as g: every packet g
// matches (on any ingress port g accepts), f matches too. Each of f's
// constrained dimensions must constrain g at least as tightly —
// wildcard fields of f cover anything, a valid prefix of f must contain
// g's (necessarily valid) prefix, exact fields must be equal, and f's
// required flags must be a subset of g's.
func (f Filter) Covers(g Filter) bool {
	if f.SrcPrefix.IsValid() &&
		!(g.SrcPrefix.IsValid() && f.SrcPrefix.Bits() <= g.SrcPrefix.Bits() && f.SrcPrefix.Contains(g.SrcPrefix.Addr())) {
		return false
	}
	if f.DstPrefix.IsValid() &&
		!(g.DstPrefix.IsValid() && f.DstPrefix.Bits() <= g.DstPrefix.Bits() && f.DstPrefix.Contains(g.DstPrefix.Addr())) {
		return false
	}
	if f.SrcPort != 0 && f.SrcPort != g.SrcPort {
		return false
	}
	if f.DstPort != 0 && f.DstPort != g.DstPort {
		return false
	}
	if f.Proto != ProtoAny && f.Proto != g.Proto {
		return false
	}
	if f.FlagsSet != 0 && g.FlagsSet&f.FlagsSet != f.FlagsSet {
		return false
	}
	if f.InPort != 0 && f.InPort != g.InPort {
		return false
	}
	return true
}

// keyCache memoizes Filter.Key results. The soil encodes the polling
// subject of every poll wiring through Key, and seeds churn rules with
// recurring filters, so the steady state is all hits. Bounded: highly
// dynamic filter populations (per-attacker /32 blocks) stop being
// cached once the cache is full rather than growing it forever.
var (
	keyCache     sync.Map // Filter -> string
	keyCacheSize atomic.Int64
)

const keyCacheCap = 4096

// Key returns a canonical encoding of the filter. Two filters with equal
// keys poll the same ASIC state; this is the φ_enc polling-subject
// encoding used for aggregation (§III-B-c). Built allocation-free by
// strconv appends and cached on first use.
func (f Filter) Key() string {
	if f.IsZero() {
		return "any"
	}
	if v, ok := keyCache.Load(f); ok {
		return v.(string)
	}
	b := make([]byte, 0, 64)
	if f.SrcPrefix.IsValid() {
		b = append(b, "src="...)
		b = f.SrcPrefix.AppendTo(b)
		b = append(b, ';')
	}
	if f.DstPrefix.IsValid() {
		b = append(b, "dst="...)
		b = f.DstPrefix.AppendTo(b)
		b = append(b, ';')
	}
	if f.SrcPort != 0 {
		b = append(b, "sport="...)
		b = strconv.AppendUint(b, uint64(f.SrcPort), 10)
		b = append(b, ';')
	}
	if f.DstPort != 0 {
		b = append(b, "dport="...)
		b = strconv.AppendUint(b, uint64(f.DstPort), 10)
		b = append(b, ';')
	}
	if f.Proto != ProtoAny {
		b = append(b, "proto="...)
		b = strconv.AppendUint(b, uint64(f.Proto), 10)
		b = append(b, ';')
	}
	if f.FlagsSet != 0 {
		b = append(b, "flags="...)
		b = strconv.AppendUint(b, uint64(f.FlagsSet), 10)
		b = append(b, ';')
	}
	if f.InPort != 0 {
		b = append(b, "in="...)
		b = strconv.AppendInt(b, int64(f.InPort), 10)
		b = append(b, ';')
	}
	s := string(b[:len(b)-1]) // drop the trailing ';'
	if keyCacheSize.Load() < keyCacheCap {
		if _, loaded := keyCache.LoadOrStore(f, s); !loaded {
			keyCacheSize.Add(1)
		}
	}
	return s
}

func (f Filter) String() string { return "filter(" + f.Key() + ")" }
