// Package dataplane emulates a data center switch ASIC: ports with
// traffic counters, a priority TCAM with match/action rules, packet
// sampling, and the PCIe bus connecting the ASIC to the switch's
// management CPU.
//
// This is the substitution for the Tofino/Trident hardware the paper
// deploys on (§V-A): FARM's switch-local components only ever observe
// the ASIC through statistics polling, packet samples, and TCAM rule
// updates, and this package exposes exactly that surface. The PCIe bus
// is modelled as a rate-limited channel because its limited polling
// capacity (8 Mbps vs. the ASIC's 100 Gbps — a 1:12500 ratio, Fig. 8)
// is the key bottleneck FARM's polling aggregation addresses.
package dataplane

import (
	"fmt"
	"net/netip"
	"strings"
)

// Proto is an IP protocol.
type Proto uint8

const (
	ProtoAny  Proto = 0
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
	ProtoICMP Proto = 1
)

func (p Proto) String() string {
	switch p {
	case ProtoAny:
		return "any"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoICMP:
		return "icmp"
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// TCPFlags is a TCP flag bitmask.
type TCPFlags uint8

const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// Has reports whether all flags in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// AppKind tags application-level packet content that payload-inspecting
// M&M tasks (DNS reflection, SSH brute force, Slowloris) react to.
type AppKind uint8

const (
	AppNone AppKind = iota
	AppDNS
	AppSSH
	AppHTTP
)

// AppInfo carries the payload hints the Tab. I tasks inspect. On real
// hardware these come from parsing sampled packet payloads; the
// generators set them directly.
type AppInfo struct {
	Kind AppKind
	// DNS
	DNSResponse bool
	DNSQName    string
	// SSH
	SSHAuthFail bool
	// HTTP
	HTTPPartial bool // incomplete request header (Slowloris signature)
}

// Packet is a single packet as seen by the ASIC.
type Packet struct {
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   Proto
	Flags   TCPFlags
	Size    int // total bytes on the wire
	App     AppInfo
}

// FlowKey identifies the 5-tuple flow of a packet.
type FlowKey struct {
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// Flow returns the packet's 5-tuple.
func (p Packet) Flow() FlowKey {
	return FlowKey{SrcIP: p.SrcIP, DstIP: p.DstIP, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%s", k.SrcIP, k.SrcPort, k.DstIP, k.DstPort, k.Proto)
}

// Filter is a ternary match over packet headers and ingress port. The
// zero value matches everything ("port ANY" in Almanac terms).
type Filter struct {
	SrcPrefix netip.Prefix // invalid (zero) = any
	DstPrefix netip.Prefix // invalid (zero) = any
	SrcPort   uint16       // 0 = any
	DstPort   uint16       // 0 = any
	Proto     Proto        // 0 = any
	FlagsSet  TCPFlags     // all listed flags must be set
	InPort    int          // 0 = any; ports are 1-based
}

// IsZero reports whether f matches everything.
func (f Filter) IsZero() bool { return f == Filter{} }

// Match reports whether packet p arriving on inPort matches f.
func (f Filter) Match(p Packet, inPort int) bool {
	if f.SrcPrefix.IsValid() && !f.SrcPrefix.Contains(p.SrcIP) {
		return false
	}
	if f.DstPrefix.IsValid() && !f.DstPrefix.Contains(p.DstIP) {
		return false
	}
	if f.SrcPort != 0 && f.SrcPort != p.SrcPort {
		return false
	}
	if f.DstPort != 0 && f.DstPort != p.DstPort {
		return false
	}
	if f.Proto != ProtoAny && f.Proto != p.Proto {
		return false
	}
	if f.FlagsSet != 0 && !p.Flags.Has(f.FlagsSet) {
		return false
	}
	if f.InPort != 0 && f.InPort != inPort {
		return false
	}
	return true
}

// Key returns a canonical encoding of the filter. Two filters with equal
// keys poll the same ASIC state; this is the φ_enc polling-subject
// encoding used for aggregation (§III-B-c).
func (f Filter) Key() string {
	var b strings.Builder
	if f.SrcPrefix.IsValid() {
		fmt.Fprintf(&b, "src=%s;", f.SrcPrefix)
	}
	if f.DstPrefix.IsValid() {
		fmt.Fprintf(&b, "dst=%s;", f.DstPrefix)
	}
	if f.SrcPort != 0 {
		fmt.Fprintf(&b, "sport=%d;", f.SrcPort)
	}
	if f.DstPort != 0 {
		fmt.Fprintf(&b, "dport=%d;", f.DstPort)
	}
	if f.Proto != ProtoAny {
		fmt.Fprintf(&b, "proto=%d;", uint8(f.Proto))
	}
	if f.FlagsSet != 0 {
		fmt.Fprintf(&b, "flags=%d;", uint8(f.FlagsSet))
	}
	if f.InPort != 0 {
		fmt.Fprintf(&b, "in=%d;", f.InPort)
	}
	if b.Len() == 0 {
		return "any"
	}
	return strings.TrimSuffix(b.String(), ";")
}

func (f Filter) String() string { return "filter(" + f.Key() + ")" }
