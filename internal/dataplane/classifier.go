// Fast classification layer: the per-packet hot path of the emulated
// ASIC (see docs/dataplane.md).
//
// Real switch ASICs classify at line rate through indexed lookup
// structures; a linear TCAM scan per packet would make per-packet
// experiments measure classification cost instead of the monitoring
// behaviour under test. This file provides the two lower tiers of the
// three-tier classifier:
//
//   - a static rule index (ruleIndex): TCAM entries partitioned into
//     buckets by the exact-match discriminators DstPort, Proto and
//     InPort, each bucket kept in match order, so a lookup scans only
//     the (at most four) candidate buckets instead of every entry;
//   - generation-stamped flow caches (flowCache): the winning entry —
//     and, on the fused Switch.Inject path, the matching sampler set —
//     memoized per (FlowKey, Flags, inPort), invalidated wholesale by
//     bumping a generation counter on any rule or sampler churn.
//
// The top tier, the fused Switch.Inject pass, lives in switch.go.
package dataplane

import "sort"

// entryLess orders TCAM entries in match order: higher priority first,
// ties broken by installation sequence (earlier wins). (Priority, seq)
// is unique per live entry — seq is never shared — so this is a strict
// total order and binary searches resolve exact positions.
func entryLess(a, b *tcamEntry) bool {
	if a.rule.Priority != b.rule.Priority {
		return a.rule.Priority > b.rule.Priority
	}
	return a.seq < b.seq
}

// insertSorted inserts e at its binary-searched position in a
// match-ordered slice.
func insertSorted(s []*tcamEntry, e *tcamEntry) []*tcamEntry {
	i := sort.Search(len(s), func(i int) bool { return entryLess(e, s[i]) })
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = e
	return s
}

// removeSorted removes e from a match-ordered slice, locating it by
// binary search on its (priority, seq) key.
func removeSorted(s []*tcamEntry, e *tcamEntry) []*tcamEntry {
	i := sort.Search(len(s), func(i int) bool { return !entryLess(s[i], e) })
	for i < len(s) && s[i] != e { // defensive; the order key is unique
		i++
	}
	if i == len(s) {
		return s
	}
	copy(s[i:], s[i+1:])
	s[len(s)-1] = nil
	return s[:len(s)-1]
}

// bucketKey identifies one partition of the rule index.
type bucketKey struct {
	kind uint8
	val  uint32
}

const (
	bWildcard uint8 = iota // rules with no exact discriminator
	bDstPort
	bProto
	bInPort
)

// bucketFor assigns a filter to its index bucket by its most selective
// exact discriminator: DstPort, then Proto, then InPort. Filters with
// none of the three (prefix-, SrcPort- or flags-only, and the zero
// filter) land in the wildcard bucket, which every lookup scans.
func bucketFor(f Filter) bucketKey {
	switch {
	case f.DstPort != 0:
		return bucketKey{bDstPort, uint32(f.DstPort)}
	case f.Proto != ProtoAny:
		return bucketKey{bProto, uint32(f.Proto)}
	case f.InPort != 0:
		return bucketKey{bInPort, uint32(f.InPort)}
	}
	return bucketKey{bWildcard, 0}
}

// ruleIndex is the static rule index: every live entry is in exactly
// one bucket, each bucket in match order. Maintained incrementally on
// AddRule/RemoveRule — inserts and removals are O(log b) in the bucket
// size, never a full re-sort.
type ruleIndex struct {
	buckets map[bucketKey][]*tcamEntry
}

func newRuleIndex() ruleIndex {
	return ruleIndex{buckets: make(map[bucketKey][]*tcamEntry)}
}

func (ix *ruleIndex) add(e *tcamEntry) {
	k := bucketFor(e.rule.Filter)
	ix.buckets[k] = insertSorted(ix.buckets[k], e)
}

func (ix *ruleIndex) remove(e *tcamEntry) {
	k := bucketFor(e.rule.Filter)
	s := removeSorted(ix.buckets[k], e)
	if len(s) == 0 {
		delete(ix.buckets, k)
	} else {
		ix.buckets[k] = s
	}
}

// scanBucket returns the best match in one bucket, given the best match
// found so far. Buckets are in match order, so the scan stops at the
// first match — and early, as soon as no remaining entry can beat best.
func (ix *ruleIndex) scanBucket(k bucketKey, p Packet, inPort int, best *tcamEntry) *tcamEntry {
	for _, e := range ix.buckets[k] {
		if best != nil && !entryLess(e, best) {
			break
		}
		if e.rule.Filter.Match(p, inPort) {
			return e
		}
	}
	return best
}

// lookup returns the highest-priority entry matching the packet, or nil.
// A matching rule's bucket discriminator necessarily equals the packet's
// corresponding field, so only the packet's own candidate buckets (plus
// the wildcard bucket) can hold a match.
func (ix *ruleIndex) lookup(p Packet, inPort int) *tcamEntry {
	best := ix.scanBucket(bucketKey{bWildcard, 0}, p, inPort, nil)
	if p.DstPort != 0 {
		best = ix.scanBucket(bucketKey{bDstPort, uint32(p.DstPort)}, p, inPort, best)
	}
	if p.Proto != ProtoAny {
		best = ix.scanBucket(bucketKey{bProto, uint32(p.Proto)}, p, inPort, best)
	}
	if inPort != 0 {
		best = ix.scanBucket(bucketKey{bInPort, uint32(inPort)}, p, inPort, best)
	}
	return best
}

// flowKey is the flow-cache key: everything a Filter can match on. Two
// packets with equal flowKeys classify identically (Size and App are
// not matchable), so the verdict can be memoized per flowKey.
type flowKey struct {
	flow   FlowKey
	flags  TCPFlags
	inPort int32
}

func flowKeyOf(p Packet, inPort int) flowKey {
	return flowKey{flow: p.Flow(), flags: p.Flags, inPort: int32(inPort)}
}

// defaultFlowCacheCap bounds the flow caches; when full, the cache is
// wiped wholesale (deterministic, unlike per-entry eviction) and
// rebuilt from the live traffic.
const defaultFlowCacheCap = 1 << 14

// cachedVerdict is one memoized TCAM classification: the winning entry
// (nil for a cached miss), stamped with the rule generation it was
// computed under. A stamp older than the table's current generation
// means rule churn happened since; the entry is recomputed lazily.
type cachedVerdict struct {
	gen uint64
	e   *tcamEntry
}

// CacheStats reports flow-cache effectiveness.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any probe.
func (c CacheStats) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}
