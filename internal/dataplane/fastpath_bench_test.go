package dataplane

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// benchRules builds a deterministic rule set spreading across all index
// bucket kinds, with priority ties, sized n.
func benchRules(n int) []Rule {
	rng := rand.New(rand.NewSource(1))
	rules := make([]Rule, 0, n)
	for len(rules) < n {
		var f Filter
		switch len(rules) % 5 {
		case 0:
			f.DstPort = uint16(8000 + len(rules))
		case 1:
			f.DstPort = uint16(80 + rng.Intn(4))
			f.Proto = ProtoTCP
		case 2:
			f.Proto = []Proto{ProtoTCP, ProtoUDP, ProtoICMP}[rng.Intn(3)]
			f.SrcPort = uint16(1 + rng.Intn(1000))
		case 3:
			f.InPort = 1 + rng.Intn(8)
			f.SrcPort = uint16(1 + rng.Intn(1000))
		case 4: // wildcard bucket
			f.SrcPrefix = pfx(fmt.Sprintf("10.%d.0.0/16", rng.Intn(200)))
		}
		rules = append(rules, Rule{Priority: rng.Intn(4), Filter: f, Action: ActCount})
	}
	return rules
}

// benchTraffic pre-generates a skewed packet trace: flows drawn from a
// pool with a power-law bias (a few flows dominate, as in real traffic)
// so the flow cache sees a realistic hit pattern.
func benchTraffic(flows, count int) ([]Packet, []int) {
	rng := rand.New(rand.NewSource(2))
	pool := make([]Packet, flows)
	ports := make([]int, flows)
	for i := range pool {
		pool[i] = Packet{
			SrcIP:   addr(fmt.Sprintf("10.%d.%d.%d", rng.Intn(200), rng.Intn(200), 1+rng.Intn(200))),
			DstIP:   addr(fmt.Sprintf("10.%d.%d.%d", rng.Intn(200), rng.Intn(200), 1+rng.Intn(200))),
			SrcPort: uint16(1024 + rng.Intn(30000)),
			DstPort: uint16(80 + rng.Intn(8)),
			Proto:   []Proto{ProtoTCP, ProtoUDP}[rng.Intn(2)],
			Size:    64 + rng.Intn(1400),
		}
		ports[i] = 1 + rng.Intn(8)
	}
	pkts := make([]Packet, count)
	inPorts := make([]int, count)
	for i := range pkts {
		idx := int(float64(flows) * math.Pow(rng.Float64(), 3)) // skew toward low indices
		pkts[i] = pool[idx]
		inPorts[i] = ports[idx]
	}
	return pkts, inPorts
}

// BenchmarkTCAMLookup measures classification ns/op, naive linear scan
// vs. the bucketed index + flow cache, at growing table sizes under a
// skewed flow distribution.
func BenchmarkTCAMLookup(b *testing.B) {
	pkts, inPorts := benchTraffic(512, 4096)
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"naive", false}} {
		for _, n := range []int{64, 256} {
			b.Run(fmt.Sprintf("%s/rules=%d", mode.name, n), func(b *testing.B) {
				tc := NewTCAM(n)
				for _, r := range benchRules(n) {
					if err := tc.AddRule(r); err != nil {
						b.Fatal(err)
					}
				}
				tc.SetFastPath(mode.fast)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					j := i % len(pkts)
					tc.Lookup(pkts[j], inPorts[j])
				}
			})
		}
	}
}

// BenchmarkSwitchInject measures the full per-packet ASIC pass (ports,
// TCAM, samplers), naive two-scan vs. the fused flow-cached path.
func BenchmarkSwitchInject(b *testing.B) {
	pkts, inPorts := benchTraffic(512, 4096)
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"naive", false}} {
		for _, n := range []int{64, 256} {
			b.Run(fmt.Sprintf("%s/rules=%d", mode.name, n), func(b *testing.B) {
				sw := NewSwitch("bench", 8, n)
				for _, r := range benchRules(n) {
					if err := sw.TCAM().AddRule(r); err != nil {
						b.Fatal(err)
					}
				}
				sink := 0
				sw.AddSampler(Filter{Proto: ProtoTCP}, 100, func(Packet) { sink++ })
				sw.AddSampler(Filter{DstPort: 80}, 50, func(Packet) { sink++ })
				sw.AddSampler(Filter{SrcPrefix: pfx("10.8.0.0/16")}, 10, func(Packet) { sink++ })
				sw.AddSampler(Filter{FlagsSet: FlagSYN}, 1, func(Packet) { sink++ })
				sw.SetFastPath(mode.fast)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					j := i % len(pkts)
					sw.Inject(pkts[j], inPorts[j], (j%7)+1)
				}
			})
		}
	}
}

// BenchmarkTCAMChurn measures management-path rule churn (install +
// remove) at a large table size — O(log n) splices vs. the seed's
// full re-sort per install and O(n) scans.
func BenchmarkTCAMChurn(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			tc := NewTCAM(n + 1)
			for _, r := range benchRules(n) {
				if err := tc.AddRule(r); err != nil {
					b.Fatal(err)
				}
			}
			f := Filter{DstPort: 29999}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tc.AddRule(Rule{Priority: i % 4, Filter: f, Action: ActCount}); err != nil {
					b.Fatal(err)
				}
				tc.RemoveRule(f)
			}
		})
	}
}
