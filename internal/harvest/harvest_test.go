package harvest

import (
	"testing"
	"time"

	"farm/internal/core"
	"farm/internal/soil"
)

type fakeCtx struct {
	now  time.Duration
	sent []struct {
		machine, sw string
		v           core.Value
	}
	logs []string
}

func (c *fakeCtx) SendToSeeds(machine, switchName string, v core.Value) {
	c.sent = append(c.sent, struct {
		machine, sw string
		v           core.Value
	}{machine, switchName, v})
}
func (c *fakeCtx) Now() time.Duration             { return c.now }
func (c *fakeCtx) Log(format string, args ...any) { c.logs = append(c.logs, format) }

func TestFuncLogicDispatch(t *testing.T) {
	started := false
	var got core.Value
	logic := FuncLogic{
		Start: func(ctx Context) { started = true },
		Message: func(ctx Context, from soil.SeedRef, v core.Value) {
			got = v
			ctx.SendToSeeds("HH", "", int64(1))
		},
	}
	ctx := &fakeCtx{}
	h := New("t", logic)
	h.Bind(ctx)
	if !started {
		t.Fatal("OnStart not called on Bind")
	}
	h.Deliver(soil.SeedRef{Task: "t", Machine: "HH", Switch: "leaf0"}, int64(42))
	if got != int64(42) {
		t.Fatalf("got = %v", got)
	}
	if len(ctx.sent) != 1 || ctx.sent[0].machine != "HH" {
		t.Fatalf("sent = %+v", ctx.sent)
	}
}

func TestNilLogicCollectsOnly(t *testing.T) {
	h := New("t", nil)
	h.Bind(&fakeCtx{now: 5 * time.Millisecond})
	h.Deliver(soil.SeedRef{Switch: "leaf0"}, "a")
	h.Deliver(soil.SeedRef{Switch: "leaf1"}, "b")
	if len(h.History()) != 2 {
		t.Fatalf("history = %d", len(h.History()))
	}
	rec, ok := h.LastReport()
	if !ok || rec.Val != "b" || rec.From.Switch != "leaf1" || rec.At != 5*time.Millisecond {
		t.Fatalf("last = %+v, %v", rec, ok)
	}
}

func TestHistoryBounded(t *testing.T) {
	h := New("t", nil)
	h.HistoryLimit = 3
	h.Bind(&fakeCtx{})
	for i := 0; i < 10; i++ {
		h.Deliver(soil.SeedRef{}, int64(i))
	}
	hist := h.History()
	if len(hist) != 3 {
		t.Fatalf("history = %d, want 3", len(hist))
	}
	if hist[0].Val != int64(7) || hist[2].Val != int64(9) {
		t.Fatalf("history kept wrong records: %v %v", hist[0].Val, hist[2].Val)
	}
}

func TestLastReportEmpty(t *testing.T) {
	h := New("t", nil)
	if _, ok := h.LastReport(); ok {
		t.Fatal("empty history should report none")
	}
}

func TestDeliverBeforeBind(t *testing.T) {
	// Delivery before Bind must not panic; records at time zero.
	h := New("t", FuncLogic{})
	h.Deliver(soil.SeedRef{}, "x")
	if len(h.History()) != 1 || h.History()[0].At != 0 {
		t.Fatalf("history = %+v", h.History())
	}
}
