// Package harvest implements the harvester framework: the optional
// per-task centralized component that collects reports from a task's
// seeds and takes global management actions when seed-local decisions
// are insufficient (§II-C-a of the FARM paper).
package harvest

import (
	"time"

	"farm/internal/core"
	"farm/internal/soil"
)

// Context is what harvester logic may do: talk back to the task's seeds
// and observe time. The seeder wires the implementation (message routing
// over the control network with its latency).
type Context interface {
	// SendToSeeds delivers v to seeds of the given machine type;
	// switchName "" broadcasts to all instances.
	SendToSeeds(machine, switchName string, v core.Value)
	// Now returns the current virtual time.
	Now() time.Duration
	// Log records a diagnostic line.
	Log(format string, args ...any)
}

// Logic is user-supplied harvester behaviour.
type Logic interface {
	// OnStart runs once when the task deploys.
	OnStart(ctx Context)
	// OnSeedMessage handles one report from a seed.
	OnSeedMessage(ctx Context, from soil.SeedRef, v core.Value)
}

// FuncLogic adapts plain functions to Logic. Either field may be nil.
type FuncLogic struct {
	Start   func(ctx Context)
	Message func(ctx Context, from soil.SeedRef, v core.Value)
}

// OnStart implements Logic.
func (f FuncLogic) OnStart(ctx Context) {
	if f.Start != nil {
		f.Start(ctx)
	}
}

// OnSeedMessage implements Logic.
func (f FuncLogic) OnSeedMessage(ctx Context, from soil.SeedRef, v core.Value) {
	if f.Message != nil {
		f.Message(ctx, from, v)
	}
}

// Record is one message retained in the harvester's history.
type Record struct {
	At   time.Duration
	From soil.SeedRef
	Val  core.Value
}

// Harvester hosts one task's Logic and keeps a bounded history of
// received reports for inspection by tests and operators.
type Harvester struct {
	Task    string
	logic   Logic
	ctx     Context
	history []Record
	// HistoryLimit bounds retained records; 0 means DefaultHistoryLimit.
	HistoryLimit int
}

// DefaultHistoryLimit bounds the report history.
const DefaultHistoryLimit = 4096

// New creates a harvester for a task. logic may be nil (collect-only).
func New(task string, logic Logic) *Harvester {
	return &Harvester{Task: task, logic: logic}
}

// Bind attaches the seeder-provided context and runs OnStart.
func (h *Harvester) Bind(ctx Context) {
	h.ctx = ctx
	if h.logic != nil {
		h.logic.OnStart(ctx)
	}
}

// Deliver hands a seed report to the logic and records it.
func (h *Harvester) Deliver(from soil.SeedRef, v core.Value) {
	at := time.Duration(0)
	if h.ctx != nil {
		at = h.ctx.Now()
	}
	limit := h.HistoryLimit
	if limit == 0 {
		limit = DefaultHistoryLimit
	}
	if len(h.history) >= limit {
		h.history = h.history[1:]
	}
	h.history = append(h.history, Record{At: at, From: from, Val: v})
	if h.logic != nil && h.ctx != nil {
		h.logic.OnSeedMessage(h.ctx, from, v)
	}
}

// History returns the retained reports (callers must not modify).
func (h *Harvester) History() []Record { return h.history }

// LastReport returns the most recent report, if any.
func (h *Harvester) LastReport() (Record, bool) {
	if len(h.history) == 0 {
		return Record{}, false
	}
	return h.history[len(h.history)-1], true
}
