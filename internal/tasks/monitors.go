package tasks

import (
	"farm/internal/core"
)

// LinkFailureSource detects dead links from stalled port counters
// (Everflow-style packet-level telemetry reduced to liveness).
const LinkFailureSource = `
// Link failure detection: a port that carried traffic but whose
// counters stop advancing for consecutive polls is reported failed.
machine LinkFail {
  place all;
  poll stats = Poll { .ival = 100, .what = port ANY };
  external long quietPolls;
  map lastBytes;
  map quietFor;
  list failed;

  state watch {
    util (res) {
      if (res.vCPU >= 0.25) then { return res.vCPU; }
    }
    when (stats as recs) do {
      failed = list_clear();
      long i = 0;
      while (i < list_len(recs)) {
        PortStats r = list_get(recs, i);
        long prev = map_get(lastBytes, r.port, 0 - 1);
        if (prev >= 0) then {
          if (r.txBytes == prev) then {
            quietFor = map_set(quietFor, r.port, map_get(quietFor, r.port, 0) + 1);
            if (map_get(quietFor, r.port, 0) == quietPolls) then {
              failed = list_append(failed, r.port);
            }
          } else {
            quietFor = map_set(quietFor, r.port, 0);
          }
        }
        lastBytes = map_set(lastBytes, r.port, r.txBytes);
        i = i + 1;
      }
      if (not is_list_empty(failed)) then {
        send failed to harvester;
      }
    }
  }
}
`

// TrafficChangeSource is Tab. I's smallest task (7 seed LoC): report
// when a switch's aggregate rate changes by more than a factor.
const TrafficChangeSource = `
// Traffic change detection (reversible-sketch lineage, simplified).
machine TrafficChange {
  place all;
  poll stats = Poll { .ival = 100, .what = port ANY };
  external long factor;
  long lastTotal;

  state watch {
    util (res) { if (res.vCPU >= 0.25) then { return res.vCPU; } }
    when (stats as recs) do {
      long total = 0;
      long i = 0;
      while (i < list_len(recs)) {
        PortStats r = list_get(recs, i);
        total = total + r.dTxBytes;
        i = i + 1;
      }
      if (lastTotal > 0 and total > lastTotal * factor) then {
        send total to harvester;
      }
      lastTotal = total;
    }
  }
}
`

// FlowSizeDistSource estimates the flow size distribution from sampled
// packets (Duffield et al., SIGCOMM'03).
const FlowSizeDistSource = `
// Flow size distribution: accumulate per-flow byte counts from probes,
// bucket them into powers of two, and periodically ship the histogram.
machine FlowSizeDist {
  place all;
  probe pkts = Probe { .ival = 2, .what = proto "tcp" };
  time report = 1000;
  map flowBytes;

  state collect {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 256) then {
        return min(res.vCPU, res.RAM / 128);
      }
    }
    when (pkts as p) do {
      flowBytes = map_set(flowBytes, p.flow, map_get(flowBytes, p.flow, 0) + p.size);
    }
    when (report as now) do {
      map hist = map_new();
      list fs = map_keys(flowBytes);
      long i = 0;
      while (i < list_len(fs)) {
        long bytes = map_get(flowBytes, list_get(fs, i), 0);
        long bucket = floor(log2(bytes + 1));
        map_set(hist, bucket, map_get(hist, bucket, 0) + 1);
        i = i + 1;
      }
      send hist to harvester;
      flowBytes = map_new();
    }
  }
}
`

// EntropySource estimates source-address entropy, a classic anomaly
// signal (Mitzenmacher & Vadhan lineage).
const EntropySource = `
// Entropy estimation over source addresses: low entropy means traffic
// concentration (possible DoS source or sink), high entropy with many
// sources can mean scanning. Ship the estimate every window.
machine Entropy {
  place all;
  probe pkts = Probe { .ival = 1, .what = port ANY };
  time window = 1000;
  map counts;
  long total;

  state estimate {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 256) then {
        return min(res.vCPU * 2, res.RAM / 128);
      }
    }
    when (pkts as p) do {
      counts = map_set(counts, p.srcIP, map_get(counts, p.srcIP, 0) + 1);
      total = total + 1;
    }
    when (window as now) do {
      if (total > 0) then {
        float h = 0.0;
        list ks = map_keys(counts);
        long i = 0;
        while (i < list_len(ks)) {
          long c = map_get(counts, list_get(ks, i), 0);
          float frac = c / (total * 1.0);
          h = h - frac * log2(frac);
          i = i + 1;
        }
        send h to harvester;
      }
      counts = map_new();
      total = 0;
    }
  }
}
`

func init() {
	register(Def{
		Name:        "link-failure",
		Description: "Dead link detection from stalled port counters",
		Source:      LinkFailureSource,
		Machines:    []string{"LinkFail"},
		DefaultExternals: map[string]map[string]core.Value{
			"LinkFail": {"quietPolls": int64(3)},
		},
	})
	register(Def{
		Name:        "traffic-change",
		Description: "Aggregate traffic change detection",
		Source:      TrafficChangeSource,
		Machines:    []string{"TrafficChange"},
		DefaultExternals: map[string]map[string]core.Value{
			"TrafficChange": {"factor": int64(4)},
		},
	})
	register(Def{
		Name:        "flow-size-dist",
		Description: "Flow size distribution histogram from sampled packets",
		Source:      FlowSizeDistSource,
		Machines:    []string{"FlowSizeDist"},
	})
	register(Def{
		Name:        "entropy",
		Description: "Source-address entropy estimation",
		Source:      EntropySource,
		Machines:    []string{"Entropy"},
	})
}
