package tasks

import (
	"strings"
	"testing"
	"time"

	"farm/internal/almanac"
	"farm/internal/core"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
	"farm/internal/seeder"
	"farm/internal/traffic"
)

// Every catalogued task must parse, compile, pass static analysis, and
// survive the XML wire format — this is the Tab. I "implemented in
// FARM" claim, mechanized.
func TestAllTasksCompileAnalyzeRoundTrip(t *testing.T) {
	all := All()
	if len(all) < 16 {
		t.Fatalf("catalogue has %d tasks, Tab. I wants >= 16", len(all))
	}
	for _, d := range all {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			prog, err := almanac.Parse(d.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			machines := d.Machines
			if machines == nil {
				for _, m := range prog.Machines {
					machines = append(machines, m.Name)
				}
			}
			for _, mn := range machines {
				cm, err := almanac.CompileMachine(prog, mn)
				if err != nil {
					t.Fatalf("compile %s: %v", mn, err)
				}
				env := map[string]almanac.Const{}
				for name, v := range d.DefaultExternals[mn] {
					if iv, ok := v.(int64); ok {
						env[name] = almanac.NumConst(float64(iv))
					}
				}
				for _, st := range cm.States {
					if _, err := almanac.AnalyzeUtility(st.Util, env); err != nil {
						t.Fatalf("utility %s.%s: %v", mn, st.Name, err)
					}
				}
				if _, err := almanac.AnalyzePolls(cm, env); err != nil {
					t.Fatalf("polls %s: %v", mn, err)
				}
				data, err := almanac.EncodeXML(cm)
				if err != nil {
					t.Fatalf("encode %s: %v", mn, err)
				}
				back, err := almanac.DecodeXML(data)
				if err != nil {
					t.Fatalf("decode %s: %v", mn, err)
				}
				again, err := almanac.EncodeXML(back)
				if err != nil {
					t.Fatalf("re-encode %s: %v", mn, err)
				}
				if string(data) != string(again) {
					t.Fatalf("%s: XML round trip not a fixed point", mn)
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("hh"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected unknown-task error")
	}
	names := Names()
	if len(names) != len(All()) {
		t.Fatal("Names/All length mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}

// --- End-to-end detections through the full stack ---

type env struct {
	fab  *fabric.Fabric
	loop engine.Scheduler
	sd   *seeder.Seeder
	gen  *traffic.Generator
}

func newEnv(t *testing.T, leaves, hosts int) *env {
	t.Helper()
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{Spines: 1, Leaves: leaves, HostsPerLeaf: hosts})
	if err != nil {
		t.Fatal(err)
	}
	loop := engine.NewSerial()
	fab := fabric.New(topo, loop, fabric.Options{})
	return &env{
		fab:  fab,
		loop: loop,
		sd:   seeder.New(fab, seeder.Options{}),
		gen:  traffic.NewGenerator(fab, 42),
	}
}

func (e *env) deploy(t *testing.T, name string) {
	t.Helper()
	d, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	spec := seeder.TaskSpec{
		Name: d.Name, Source: d.Source, Machines: d.Machines,
		Externals: d.DefaultExternals,
	}
	if d.NewHarvester != nil {
		spec.Harvester = d.NewHarvester()
	}
	if err := e.sd.AddTask(spec); err != nil {
		t.Fatal(err)
	}
}

// lastReportString waits for a harvester report and returns it rendered.
func (e *env) waitReport(t *testing.T, task string, within time.Duration) (core.Value, bool) {
	t.Helper()
	h, ok := e.sd.Harvester(task)
	if !ok {
		t.Fatalf("no harvester for %s", task)
	}
	deadline := e.loop.Now() + within
	for e.loop.Now() < deadline {
		e.loop.RunFor(10 * time.Millisecond)
		if rec, ok := h.LastReport(); ok {
			return rec.Val, true
		}
	}
	return nil, false
}

func TestDDoSDetectsAndMitigates(t *testing.T) {
	e := newEnv(t, 3, 4)
	e.deploy(t, "ddos")
	victim := fabric.HostIP(0, 0)
	stop := e.gen.SYNFlood(victim, 6, 5000)
	defer stop()
	v, ok := e.waitReport(t, "ddos", 2*time.Second)
	if !ok {
		t.Fatal("no DDoS report")
	}
	if v != victim.String() {
		t.Fatalf("reported %v, want %v", v, victim)
	}
	// Local mitigation: a drop rule for the victim exists somewhere,
	// and the fabric actually drops attack traffic.
	e.loop.RunFor(100 * time.Millisecond)
	before := e.fab.DroppedInFabric()
	e.loop.RunFor(500 * time.Millisecond)
	if e.fab.DroppedInFabric() <= before {
		t.Fatal("mitigation rule drops nothing")
	}
}

func TestPortScanDetection(t *testing.T) {
	e := newEnv(t, 2, 2)
	e.deploy(t, "port-scan")
	stop := e.gen.PortScan(fabric.HostIP(0, 0), fabric.HostIP(1, 0), 2000)
	defer stop()
	v, ok := e.waitReport(t, "port-scan", 2*time.Second)
	if !ok {
		t.Fatal("no scan report")
	}
	if v != fabric.HostIP(0, 0).String() {
		t.Fatalf("reported scanner %v", v)
	}
}

func TestSuperSpreaderDetection(t *testing.T) {
	e := newEnv(t, 4, 6)
	e.deploy(t, "superspreader")
	stop := e.gen.SuperSpreader(fabric.HostIP(0, 0), 16, 4000)
	defer stop()
	v, ok := e.waitReport(t, "superspreader", 2*time.Second)
	if !ok {
		t.Fatal("no spreader report")
	}
	if v != fabric.HostIP(0, 0).String() {
		t.Fatalf("reported %v", v)
	}
}

func TestSSHBruteForceDetection(t *testing.T) {
	e := newEnv(t, 2, 2)
	e.deploy(t, "ssh-brute")
	stop := e.gen.SSHBruteForce(fabric.HostIP(0, 1), fabric.HostIP(1, 0), 500)
	defer stop()
	v, ok := e.waitReport(t, "ssh-brute", 2*time.Second)
	if !ok {
		t.Fatal("no brute-force report")
	}
	if v != fabric.HostIP(0, 1).String() {
		t.Fatalf("reported %v", v)
	}
}

func TestDNSReflectionDetection(t *testing.T) {
	e := newEnv(t, 3, 4)
	e.deploy(t, "dns-reflection")
	victim := fabric.HostIP(1, 1)
	stop := e.gen.DNSReflection(victim, 5, 2000)
	defer stop()
	v, ok := e.waitReport(t, "dns-reflection", 2*time.Second)
	if !ok {
		t.Fatal("no reflection report")
	}
	refl, ok := v.(core.List)
	if !ok || len(refl) == 0 {
		t.Fatalf("reflector list = %v", core.FormatValue(v))
	}
}

func TestSlowlorisDetection(t *testing.T) {
	e := newEnv(t, 3, 6)
	e.deploy(t, "slowloris")
	target := fabric.HostIP(0, 0)
	stop := e.gen.Slowloris(target, 12, 50)
	defer stop()
	v, ok := e.waitReport(t, "slowloris", 3*time.Second)
	if !ok {
		t.Fatal("no slowloris report")
	}
	culprits, ok := v.(core.List)
	if !ok || len(culprits) < 8 {
		t.Fatalf("culprits = %v", core.FormatValue(v))
	}
}

func TestNewTCPConnCounting(t *testing.T) {
	e := newEnv(t, 2, 2)
	e.deploy(t, "new-tcp")
	// 200 conn/s of fresh SYNs.
	stop := e.gen.SYNFlood(fabric.HostIP(1, 0), 4, 200)
	defer stop()
	v, ok := e.waitReport(t, "new-tcp", 3*time.Second)
	if !ok {
		t.Fatal("no connection-count report")
	}
	if n, isInt := v.(int64); !isInt || n <= 0 {
		t.Fatalf("count = %v", core.FormatValue(v))
	}
}

func TestEntropyEstimation(t *testing.T) {
	e := newEnv(t, 2, 4)
	e.deploy(t, "entropy")
	// Traffic from several sources -> nonzero entropy.
	for i := 0; i < 4; i++ {
		stop := e.gen.StartFlow(traffic.FlowSpec{
			Src: fabric.HostIP(0, i), Dst: fabric.HostIP(1, 0),
			SrcPort: uint16(1000 + i), DstPort: 80, Proto: 6,
			PacketSize: 200, Rate: 500,
		})
		defer stop()
	}
	v, ok := e.waitReport(t, "entropy", 3*time.Second)
	if !ok {
		t.Fatal("no entropy report")
	}
	h, isF := v.(float64)
	if !isF || h <= 0 || h > 8 {
		t.Fatalf("entropy = %v", core.FormatValue(v))
	}
}

func TestLinkFailureDetection(t *testing.T) {
	e := newEnv(t, 2, 2)
	e.deploy(t, "link-failure")
	// Carry traffic, then stop it: the quiet port is reported.
	stop := e.gen.StartFlow(traffic.FlowSpec{
		Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
		SrcPort: 5, DstPort: 80, Proto: 6, PacketSize: 500, Rate: 1000,
	})
	e.loop.RunFor(600 * time.Millisecond)
	stop() // "link failure"
	v, ok := e.waitReport(t, "link-failure", 3*time.Second)
	if !ok {
		t.Fatal("no link-failure report")
	}
	ports, isList := v.(core.List)
	if !isList || len(ports) == 0 {
		t.Fatalf("failed ports = %v", core.FormatValue(v))
	}
}

func TestTrafficChangeDetection(t *testing.T) {
	e := newEnv(t, 2, 2)
	e.deploy(t, "traffic-change")
	// Quiet baseline, then a 10x surge.
	stopA := e.gen.StartFlow(traffic.FlowSpec{
		Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
		SrcPort: 5, DstPort: 80, Proto: 6, PacketSize: 200, Rate: 100,
	})
	defer stopA()
	e.loop.RunFor(500 * time.Millisecond)
	stopB := e.gen.StartFlow(traffic.FlowSpec{
		Src: fabric.HostIP(0, 1), Dst: fabric.HostIP(1, 1),
		SrcPort: 6, DstPort: 80, Proto: 6, PacketSize: 1500, Rate: 4000,
	})
	defer stopB()
	if _, ok := e.waitReport(t, "traffic-change", 2*time.Second); !ok {
		t.Fatal("no change report")
	}
}

func TestFlowSizeDistribution(t *testing.T) {
	e := newEnv(t, 2, 2)
	e.deploy(t, "flow-size-dist")
	stop := e.gen.StartFlow(traffic.FlowSpec{
		Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
		SrcPort: 5, DstPort: 80, Proto: 6, PacketSize: 700, Rate: 800,
	})
	defer stop()
	v, ok := e.waitReport(t, "flow-size-dist", 3*time.Second)
	if !ok {
		t.Fatal("no histogram report")
	}
	hist, isMap := v.(core.MapVal)
	if !isMap || len(hist) == 0 {
		t.Fatalf("histogram = %v", core.FormatValue(v))
	}
}

func TestSYNFloodImbalance(t *testing.T) {
	e := newEnv(t, 2, 2)
	e.deploy(t, "syn-flood")
	stop := e.gen.SYNFlood(fabric.HostIP(1, 0), 4, 2000)
	defer stop()
	v, ok := e.waitReport(t, "syn-flood", 2*time.Second)
	if !ok {
		t.Fatal("no flood report")
	}
	if v != fabric.HostIP(1, 0).String() {
		t.Fatalf("victim = %v", v)
	}
}

func TestPartialTCPFlows(t *testing.T) {
	e := newEnv(t, 2, 2)
	e.deploy(t, "partial-tcp")
	// Pure SYNs that never complete.
	stop := e.gen.SYNFlood(fabric.HostIP(1, 0), 16, 1600)
	defer stop()
	v, ok := e.waitReport(t, "partial-tcp", 3*time.Second)
	if !ok {
		t.Fatal("no partial-flow report")
	}
	if n, isInt := v.(int64); !isInt || n < 10 {
		t.Fatalf("partials = %v", core.FormatValue(v))
	}
}

func TestHHHInheritedSharesHHPolling(t *testing.T) {
	// The inherited HHH keeps HH's poll variable; deploying it next to
	// plain HH lets the soil aggregate their identical subjects.
	e := newEnv(t, 2, 2)
	e.deploy(t, "hh")
	e.deploy(t, "hhh-inherited")
	e.loop.RunFor(200 * time.Millisecond)
	aggregated := false
	for _, sw := range e.fab.Topology().Switches() {
		s := e.sd.Soil(sw.ID)
		if s.NumSeeds() >= 2 && s.PollsDelivered() > s.PollsIssued() {
			aggregated = true
		}
	}
	if !aggregated {
		t.Fatal("no polling aggregation observed across HH and HHH")
	}
}

// Every catalogue task must be lint-clean: tasks that install TCAM
// rules demand TCAM in util (the zero-allocation pitfall).
func TestCatalogueLintClean(t *testing.T) {
	for _, d := range All() {
		prog, err := almanac.Parse(d.Source)
		if err != nil {
			t.Fatal(err)
		}
		machines := d.Machines
		if machines == nil {
			for _, m := range prog.Machines {
				machines = append(machines, m.Name)
			}
		}
		for _, mn := range machines {
			cm, err := almanac.CompileMachine(prog, mn)
			if err != nil {
				t.Fatal(err)
			}
			if warns := almanac.Lint(cm); len(warns) != 0 {
				t.Errorf("task %s machine %s: %v", d.Name, mn, warns)
			}
		}
	}
}

func TestTab1LoCReport(t *testing.T) {
	// Sanity on the catalogue sizes (the Tab. I LoC claim): every task
	// is a real program, not a stub.
	for _, d := range All() {
		lines := 0
		for _, ln := range strings.Split(d.Source, "\n") {
			ln = strings.TrimSpace(ln)
			if ln != "" && !strings.HasPrefix(ln, "//") {
				lines++
			}
		}
		if lines < 7 {
			t.Errorf("task %s has only %d LoC of Almanac", d.Name, lines)
		}
	}
}

func TestSketchHHDetection(t *testing.T) {
	e := newEnv(t, 2, 2)
	e.deploy(t, "hh-sketch")
	// One elephant flow: 1000 pkt/s x 1000 B = 1 MB/s >> 100 KB per
	// 500 ms window at the probe's sampled granularity.
	stop := e.gen.StartFlow(traffic.FlowSpec{
		Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
		SrcPort: 7, DstPort: 80, Proto: 6, PacketSize: 1000, Rate: 1000,
	})
	defer stop()
	v, ok := e.waitReport(t, "hh-sketch", 3*time.Second)
	if !ok {
		t.Fatal("no sketch-HH report")
	}
	if v != fabric.HostIP(1, 0).String() {
		t.Fatalf("reported %v, want the elephant destination", v)
	}
}

func TestSketchSeedSurvivesMigrationSnapshot(t *testing.T) {
	// Sketch state must deep-copy through the snapshot path: snapshot a
	// sketch-bearing seed, restore it elsewhere, and keep detecting.
	e := newEnv(t, 1, 2)
	e.deploy(t, "hh-sketch")
	stop := e.gen.StartFlow(traffic.FlowSpec{
		Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
		SrcPort: 7, DstPort: 80, Proto: 6, PacketSize: 1000, Rate: 1000,
	})
	defer stop()
	e.loop.RunFor(300 * time.Millisecond)
	// Snapshot whichever seed runs on leaf0 and restore-check equality.
	for _, sw := range e.fab.Topology().Switches() {
		s := e.sd.Soil(sw.ID)
		for _, id := range s.SeedIDs() {
			snap, err := s.SnapshotSeed(id)
			if err != nil {
				t.Fatal(err)
			}
			if snap.State == "" {
				t.Fatal("empty snapshot state")
			}
		}
	}
}
