package tasks

import "farm/internal/core"

// SketchHHSource is the §VIII future-work extension implemented: a
// flow-granularity heavy-hitter detector whose state is a count-min
// sketch instead of exact per-flow counters, bounding seed memory
// regardless of the flow universe. Heavy keys are tracked in a small
// candidate list populated when a probed packet's estimate crosses the
// threshold.
const SketchHHSource = `
// Sketch-based heavy hitters (per destination, probe-driven). Sketches
// have no declared type in Fig. 3's grammar; a variable holds whatever
// sketch_new returns.
machine SketchHH {
  place all;
  probe pkts = Probe { .ival = 1, .what = port ANY };
  time window = 500;
  external long bytesThreshold;
  list sk;
  list hitters;

  state watch {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 64) then {
        return min(res.vCPU * 2, res.RAM / 32);
      }
    }
    when (enter) do {
      sk = sketch_new(512, 4);
    }
    when (pkts as p) do {
      sketch_add(sk, p.dstIP, p.size);
      if (sketch_count(sk, p.dstIP) >= bytesThreshold) then {
        if (not list_contains(hitters, p.dstIP)) then {
          hitters = list_append(hitters, p.dstIP);
          send p.dstIP to harvester;
        }
      }
    }
    when (window as now) do {
      sketch_reset(sk);
      hitters = list_clear();
    }
  }
}
`

func init() {
	register(Def{
		Name:        "hh-sketch",
		Description: "Sketch-based HH (count-min, bounded memory) — the paper's future-work extension",
		Source:      SketchHHSource,
		Machines:    []string{"SketchHH"},
		DefaultExternals: map[string]map[string]core.Value{
			"SketchHH": {"bytesThreshold": int64(100_000)},
		},
	})
}
