package tasks

import (
	"farm/internal/core"
	"farm/internal/harvest"
	"farm/internal/soil"
)

// DDoSSource detects volumetric attacks on a destination: probe SYN
// packets, count per destination within a sliding interval, and react
// locally by dropping the attack traffic (Mirkovic & Reiher taxonomy).
const DDoSSource = `
// DDoS detection and mitigation: track per-destination SYN rates via
// packet probes; when a destination exceeds the attack threshold,
// install a drop rule locally (the quench reaction of §I) and inform
// the harvester so it can coordinate network-wide blocking.
machine DDoS {
  place all;
  probe syns = Probe { .ival = 1, .what = proto "tcp" };
  time window = 100;
  external long synThreshold;
  map synCount;
  string attacked;

  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 200 and res.TCAM >= 4) then {
        return min(res.vCPU * 3, res.PCIe * 2);
      }
    }
    when (syns as p) do {
      if (p.syn and not p.ack) then {
        string d = p.dstIP;
        synCount = map_set(synCount, d, map_get(synCount, d, 0) + 1);
        if (map_get(synCount, d, 0) >= synThreshold) then {
          attacked = d;
          transit mitigate;
        }
      }
    }
    when (window as now) do {
      synCount = map_new();
    }
  }
  state mitigate {
    util (res) { return 200; }
    when (enter) do {
      addTCAMRule(dstIP attacked and proto "tcp", drop(), 100);
      send attacked to harvester;
      transit observe;
    }
    when (exit) do {
      synCount = map_new();
    }
  }
  when (recv string unblock from harvester) do {
    removeTCAMRule(dstIP unblock and proto "tcp");
  }
}
`

// NewTCPConnSource counts new TCP connections per window and reports
// the rate (NetQRE's counting example).
const NewTCPConnSource = `
// New TCP connection counting: one count per observed SYN without ACK.
machine NewTCP {
  place all;
  probe syns = Probe { .ival = 1, .what = proto "tcp" };
  time window = 1000;
  long conns;

  state count {
    util (res) {
      if (res.vCPU >= 0.5) then { return res.vCPU; }
    }
    when (syns as p) do {
      if (p.syn and not p.ack) then { conns = conns + 1; }
    }
    when (window as now) do {
      send conns to harvester;
      conns = 0;
    }
  }
}
`

// SYNFloodSource detects SYN floods by the imbalance between SYNs and
// the handshake completions that should follow.
const SYNFloodSource = `
// TCP SYN flood detection: compare SYN arrivals against SYN+ACK
// responses per destination within a window; a large imbalance means
// half-open connection buildup. React by rate-limiting SYNs to the
// victim and escalate to the harvester.
machine SYNFlood {
  place all;
  probe pkts = Probe { .ival = 1, .what = proto "tcp" };
  time window = 200;
  external long imbalanceLimit;
  map synsSeen;
  map acksSeen;
  string victim;

  state watch {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 128 and res.TCAM >= 2) then {
        return min(res.vCPU * 2, 50);
      }
    }
    when (pkts as p) do {
      if (p.syn and not p.ack) then {
        synsSeen = map_set(synsSeen, p.dstIP, map_get(synsSeen, p.dstIP, 0) + 1);
      }
      if (p.syn and p.ack) then {
        acksSeen = map_set(acksSeen, p.srcIP, map_get(acksSeen, p.srcIP, 0) + 1);
      }
    }
    when (window as now) do {
      list ds = map_keys(synsSeen);
      long i = 0;
      while (i < list_len(ds)) {
        string d = list_get(ds, i);
        long imbalance = map_get(synsSeen, d, 0) - map_get(acksSeen, d, 0);
        if (imbalance >= imbalanceLimit) then {
          victim = d;
          transit flooded;
        }
        i = i + 1;
      }
      synsSeen = map_new();
      acksSeen = map_new();
    }
  }
  state flooded {
    util (res) { return 150; }
    when (enter) do {
      addTCAMRule(dstIP victim and proto "tcp", rateLimit(), 90);
      send victim to harvester;
      transit watch;
    }
  }
  when (recv string clear from harvester) do {
    removeTCAMRule(dstIP clear and proto "tcp");
  }
}
`

// PartialTCPSource tracks flows that begin (SYN) but never carry
// payload or finish — NetQRE's partial flow query.
const PartialTCPSource = `
// Partial TCP flow detection: flows that open but never complete.
// A flow that stays SYN-only across a full sweep interval is partial.
machine PartialTCP {
  place all;
  probe pkts = Probe { .ival = 1, .what = proto "tcp" };
  time sweep = 500;
  external long reportLimit;
  map opened;
  map completed;
  long partials;

  state track {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 256) then {
        return min(res.vCPU, res.RAM / 256);
      }
    }
    when (pkts as p) do {
      if (p.syn and not p.ack) then {
        opened = map_set(opened, p.flow, 1);
      }
      if (p.fin or (p.ack and not p.syn)) then {
        completed = map_set(completed, p.flow, 1);
      }
    }
    when (sweep as now) do {
      partials = 0;
      list fs = map_keys(opened);
      long i = 0;
      while (i < list_len(fs)) {
        string f = list_get(fs, i);
        if (not map_has(completed, f)) then { partials = partials + 1; }
        i = i + 1;
      }
      if (partials >= reportLimit) then {
        send partials to harvester;
      }
      opened = map_new();
      completed = map_new();
    }
  }
}
`

// SlowlorisSource detects slow-rate DoS against HTTP servers.
const SlowlorisSource = `
// Slowloris detection (Cambiaso et al.): many concurrent connections
// sending partial HTTP requests at a trickle. Count distinct sources
// holding partial requests toward one server; react by rate-limiting
// the server's port 80 ingress and reporting the source list.
machine Slowloris {
  place all;
  probe http = Probe { .ival = 1, .what = dstPort 80 };
  time sweep = 500;
  external long connLimit;
  map partialsByDst;
  string target;
  list culprits;

  state watch {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 128 and res.TCAM >= 2) then {
        return min(res.vCPU * 2, res.RAM / 64);
      }
    }
    when (http as p) do {
      if (p.httpPartial) then {
        map perDst = map_get(partialsByDst, p.dstIP, map_new());
        map_set(perDst, p.srcIP, 1);
        partialsByDst = map_set(partialsByDst, p.dstIP, perDst);
      }
    }
    when (sweep as now) do {
      list ds = map_keys(partialsByDst);
      long i = 0;
      while (i < list_len(ds)) {
        string d = list_get(ds, i);
        map srcs = map_get(partialsByDst, d, map_new());
        if (map_len(srcs) >= connLimit) then {
          target = d;
          culprits = map_keys(srcs);
          transit throttle;
        }
        i = i + 1;
      }
      partialsByDst = map_new();
    }
  }
  state throttle {
    util (res) { return 120; }
    when (enter) do {
      addTCAMRule(dstIP target and dstPort 80, rateLimit(), 80);
      send culprits to harvester;
      transit watch;
    }
  }
}
`

// SuperSpreaderSource detects hosts contacting unusually many distinct
// destinations (OpenSketch's running example).
const SuperSpreaderSource = `
// Super-spreader detection: a source contacting more than fanoutLimit
// distinct destinations within a sweep is flagged; seeds on different
// switches exchange candidate sources so spreaders splitting their
// fan-out across ingress points are still caught (seed-to-seed
// communication, §II-C-b).
machine SuperSpreader {
  place all;
  probe pkts = Probe { .ival = 1, .what = proto "tcp" };
  time sweep = 500;
  external long fanoutLimit;
  map fanout;
  string spreader;

  state scan {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 256) then {
        return min(res.vCPU * 2, res.RAM / 128);
      }
    }
    when (pkts as p) do {
      if (p.syn and not p.ack) then {
        map dsts = map_get(fanout, p.srcIP, map_new());
        map_set(dsts, p.dstIP, 1);
        fanout = map_set(fanout, p.srcIP, dsts);
      }
    }
    when (sweep as now) do {
      list srcs = map_keys(fanout);
      long i = 0;
      while (i < list_len(srcs)) {
        string s = list_get(srcs, i);
        map dsts = map_get(fanout, s, map_new());
        if (map_len(dsts) >= fanoutLimit) then {
          spreader = s;
          transit flag;
        }
        if (map_len(dsts) >= fanoutLimit / 2) then {
          // Half the limit locally: other ingress switches may hold
          // the rest of the fan-out.
          send s to SuperSpreader;
        }
        i = i + 1;
      }
      fanout = map_new();
    }
  }
  state flag {
    util (res) { return 100; }
    when (enter) do {
      send spreader to harvester;
      fanout = map_new();
      transit scan;
    }
  }
  when (recv string candidate from SuperSpreader) do {
    // A peer saw this source spreading: lower our patience for it by
    // pre-populating half its budget.
    map dsts = map_get(fanout, candidate, map_new());
    map_set(dsts, "peer-reported", 1);
    fanout = map_set(fanout, candidate, dsts);
  }
}
`

// SSHBruteForceSource detects distributed SSH guessing (Javed & Paxson).
const SSHBruteForceSource = `
// SSH brute force: count failed authentications per client; clients
// crossing failLimit get a local drop rule for port 22 and are
// reported for network-wide banning.
machine SSHBrute {
  place all;
  probe ssh = Probe { .ival = 1, .what = dstPort 22 };
  time sweep = 1000;
  external long failLimit;
  map fails;
  string attacker;

  state watch {
    util (res) {
      if (res.vCPU >= 0.25 and res.TCAM >= 2) then { return res.vCPU; }
    }
    when (ssh as p) do {
      if (p.sshAuthFail) then {
        fails = map_set(fails, p.srcIP, map_get(fails, p.srcIP, 0) + 1);
        if (map_get(fails, p.srcIP, 0) >= failLimit) then {
          attacker = p.srcIP;
          transit ban;
        }
      }
    }
    when (sweep as now) do { fails = map_new(); }
  }
  state ban {
    util (res) { return 80; }
    when (enter) do {
      addTCAMRule(srcIP attacker and dstPort 22, drop(), 95);
      send attacker to harvester;
      transit watch;
    }
  }
}
`

// PortScanSource implements sequential-hypothesis-style scan detection
// (Jung et al., S&P'04) simplified to distinct-port counting.
const PortScanSource = `
// Port scan detection: a source probing many distinct ports on one
// destination within the sweep interval is scanning.
machine PortScan {
  place all;
  probe pkts = Probe { .ival = 1, .what = proto "tcp" };
  time sweep = 500;
  external long portLimit;
  map probed;
  string scanner;
  string scanned;

  state watch {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 128 and res.TCAM >= 2) then {
        return min(res.vCPU * 2, 40);
      }
    }
    when (pkts as p) do {
      if (p.syn and not p.ack) then {
        string key = p.srcIP + ">" + p.dstIP;
        map ports = map_get(probed, key, map_new());
        map_set(ports, p.dstPort, 1);
        probed = map_set(probed, key, ports);
        if (map_len(ports) >= portLimit) then {
          scanner = p.srcIP;
          scanned = p.dstIP;
          transit alarm;
        }
      }
    }
    when (sweep as now) do { probed = map_new(); }
  }
  state alarm {
    util (res) { return 90; }
    when (enter) do {
      addTCAMRule(srcIP scanner and dstIP scanned, drop(), 85);
      send scanner to harvester;
      probed = map_new();
      transit watch;
    }
  }
}
`

// DNSReflectionSource detects amplification attacks (Kührer et al.).
const DNSReflectionSource = `
// DNS reflection/amplification: large DNS responses converging on a
// victim that never asked. Track response bytes per destination; on
// crossing the threshold, drop DNS responses toward the victim locally
// and report the reflector set.
machine DNSReflect {
  place all;
  probe dns = Probe { .ival = 1, .what = srcPort 53 and proto "udp" };
  time window = 500;
  external long bytesLimit;
  map respBytes;
  map reflectors;
  string victim;

  state monitor {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 128 and res.TCAM >= 2) then {
        return min(res.vCPU * 2, res.PCIe);
      }
    }
    when (dns as p) do {
      if (p.dnsResponse) then {
        respBytes = map_set(respBytes, p.dstIP, map_get(respBytes, p.dstIP, 0) + p.size);
        map refl = map_get(reflectors, p.dstIP, map_new());
        map_set(refl, p.srcIP, 1);
        reflectors = map_set(reflectors, p.dstIP, refl);
        if (map_get(respBytes, p.dstIP, 0) >= bytesLimit) then {
          victim = p.dstIP;
          transit quench;
        }
      }
    }
    when (window as now) do {
      respBytes = map_new();
      reflectors = map_new();
    }
  }
  state quench {
    util (res) { return 150; }
    when (enter) do {
      addTCAMRule(dstIP victim and srcPort 53 and proto "udp", drop(), 96);
      send map_keys(map_get(reflectors, victim, map_new())) to harvester;
      transit monitor;
    }
  }
  when (recv string unquench from harvester) do {
    removeTCAMRule(dstIP unquench and srcPort 53 and proto "udp");
  }
}
`

// FloodDefenderSource models FloodDefender (Shang et al., INFOCOM'17):
// protecting the SDN control path from table-miss floods. It is the
// largest Tab. I task, combining polling, probing, multi-state logic,
// and staged mitigation.
const FloodDefenderSource = `
// FloodDefender: protect switch control-plane resources under
// SDN-aimed DoS. States: normal -> suspicious (rising table-miss/SYN
// rate, start shielding) -> attack (offload flows to drop rules,
// report) -> cooldown (gradually lift shields).
machine FloodDefender {
  place all;
  poll tableStats = Poll { .ival = 50, .what = port ANY };
  probe pkts = Probe { .ival = 1, .what = proto "tcp" };
  time cooldownTimer = 2000;
  external long missRateLimit;
  external long attackRateLimit;
  long missRate;
  long lastPkts;
  map synBySrc;
  list shielded;
  string offender;

  state normal {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 256 and res.TCAM >= 8) then {
        return min(res.vCPU * 4, res.PCIe * 3);
      }
    }
    when (tableStats as recs) do {
      long total = 0;
      long i = 0;
      while (i < list_len(recs)) {
        PortStats r = list_get(recs, i);
        total = total + r.dRxPkts;
        i = i + 1;
      }
      missRate = total;
      if (missRate >= missRateLimit) then { transit suspicious; }
    }
  }
  state suspicious {
    util (res) { return 120; }
    when (enter) do {
      // Shield: steer new-flow bursts into a rate limiter.
      addTCAMRule(proto "tcp", rateLimit(), 5);
      shielded = list_append(shielded, "tcp-shield");
    }
    when (pkts as p) do {
      if (p.syn and not p.ack) then {
        synBySrc = map_set(synBySrc, p.srcIP, map_get(synBySrc, p.srcIP, 0) + 1);
        if (map_get(synBySrc, p.srcIP, 0) >= attackRateLimit) then {
          offender = p.srcIP;
          transit attack;
        }
      }
    }
    when (tableStats as recs) do {
      long total = 0;
      long i = 0;
      while (i < list_len(recs)) {
        PortStats r = list_get(recs, i);
        total = total + r.dRxPkts;
        i = i + 1;
      }
      if (total < missRateLimit / 2) then { transit cooldown; }
    }
  }
  state attack {
    util (res) { return 250; }
    when (enter) do {
      addTCAMRule(srcIP offender and proto "tcp", drop(), 99);
      send offender to harvester;
      synBySrc = map_new();
      transit suspicious;
    }
  }
  state cooldown {
    util (res) { return 60; }
    when (cooldownTimer as now) do {
      removeTCAMRule(proto "tcp");
      shielded = list_clear();
      synBySrc = map_new();
      transit normal;
    }
    when (recv string reshield from harvester) do { transit suspicious; }
  }
}
`

func init() {
	register(Def{
		Name:        "ddos",
		Description: "Volumetric DDoS detection with local drop-rule mitigation",
		Source:      DDoSSource,
		Machines:    []string{"DDoS"},
		DefaultExternals: map[string]map[string]core.Value{
			"DDoS": {"synThreshold": int64(50)},
		},
		NewHarvester: func() harvest.Logic { return blocklistHarvester() },
	})
	register(Def{
		Name:        "new-tcp",
		Description: "New TCP connection rate accounting",
		Source:      NewTCPConnSource,
		Machines:    []string{"NewTCP"},
	})
	register(Def{
		Name:        "syn-flood",
		Description: "SYN flood detection via handshake imbalance",
		Source:      SYNFloodSource,
		Machines:    []string{"SYNFlood"},
		DefaultExternals: map[string]map[string]core.Value{
			"SYNFlood": {"imbalanceLimit": int64(40)},
		},
	})
	register(Def{
		Name:        "partial-tcp",
		Description: "Partial (never-completing) TCP flow accounting",
		Source:      PartialTCPSource,
		Machines:    []string{"PartialTCP"},
		DefaultExternals: map[string]map[string]core.Value{
			"PartialTCP": {"reportLimit": int64(10)},
		},
	})
	register(Def{
		Name:        "slowloris",
		Description: "Slow-rate HTTP DoS detection with rate-limit reaction",
		Source:      SlowlorisSource,
		Machines:    []string{"Slowloris"},
		DefaultExternals: map[string]map[string]core.Value{
			"Slowloris": {"connLimit": int64(8)},
		},
	})
	register(Def{
		Name:        "superspreader",
		Description: "Super-spreader detection with cross-seed hints",
		Source:      SuperSpreaderSource,
		Machines:    []string{"SuperSpreader"},
		DefaultExternals: map[string]map[string]core.Value{
			"SuperSpreader": {"fanoutLimit": int64(8)},
		},
	})
	register(Def{
		Name:        "ssh-brute",
		Description: "SSH brute-force detection with local banning",
		Source:      SSHBruteForceSource,
		Machines:    []string{"SSHBrute"},
		DefaultExternals: map[string]map[string]core.Value{
			"SSHBrute": {"failLimit": int64(20)},
		},
	})
	register(Def{
		Name:        "port-scan",
		Description: "Port scan detection via distinct-port counting",
		Source:      PortScanSource,
		Machines:    []string{"PortScan"},
		DefaultExternals: map[string]map[string]core.Value{
			"PortScan": {"portLimit": int64(15)},
		},
	})
	register(Def{
		Name:        "dns-reflection",
		Description: "DNS amplification detection with local quenching",
		Source:      DNSReflectionSource,
		Machines:    []string{"DNSReflect"},
		DefaultExternals: map[string]map[string]core.Value{
			"DNSReflect": {"bytesLimit": int64(100_000)},
		},
	})
	register(Def{
		Name:        "flood-defender",
		Description: "Control-plane flood protection with staged mitigation",
		Source:      FloodDefenderSource,
		Machines:    []string{"FloodDefender"},
		DefaultExternals: map[string]map[string]core.Value{
			"FloodDefender": {"missRateLimit": int64(5000), "attackRateLimit": int64(100)},
		},
	})
}

// blocklistHarvester coordinates mitigation globally: once a victim is
// reported by any switch, every switch is told to keep its block for a
// while, then release.
func blocklistHarvester() harvest.Logic {
	return harvest.FuncLogic{
		Message: func(ctx harvest.Context, from soil.SeedRef, v core.Value) {
			victim, ok := v.(string)
			if !ok {
				return
			}
			ctx.Log("harvester: %s reported attack on %s", from.Switch, victim)
		},
	}
}
