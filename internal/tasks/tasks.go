// Package tasks ships the 16 network monitoring and attack-detection
// use cases of Tab. I as Almanac programs, each deployable through the
// seeder. Together they exercise every language feature: polling,
// probing, time triggers, TCAM reactions, inheritance, inter-seed and
// harvester communication, maps/lists, and dynamic poll-rate changes.
package tasks

import (
	"fmt"
	"sort"

	"farm/internal/core"
	"farm/internal/harvest"
)

// Def is one catalogued M&M task.
type Def struct {
	Name        string
	Description string
	Source      string
	// Machines to deploy from the source (nil = all).
	Machines []string
	// DefaultExternals per machine.
	DefaultExternals map[string]map[string]core.Value
	// NewHarvester builds the task's default harvester logic (may
	// return nil for collect-only tasks).
	NewHarvester func() harvest.Logic
}

var registry []Def

func register(d Def) { registry = append(registry, d) }

// All returns every catalogued task, sorted by name.
func All() []Def {
	out := make([]Def, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName looks a task up.
func ByName(name string) (Def, error) {
	for _, d := range registry {
		if d.Name == name {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("tasks: unknown task %q", name)
}

// Names lists the catalogue.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, d := range all {
		names[i] = d.Name
	}
	return names
}
