package tasks

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"farm/internal/almanac"
	"farm/internal/core"
	"farm/internal/dataplane"
	"farm/internal/netmodel"
)

// Satellite of ISSUE 8: the whole task catalogue must (a) lower to
// bytecode — no machine may silently fall back to the AST walker — and
// (b) stay in observable lockstep with the interpreter under a random
// storm of triggers, messages, reallocs, and snapshots.

// parityTaskHost records every externally observable host effect as a
// deterministic trace line.
type parityTaskHost struct {
	now   time.Duration
	tcam  *dataplane.TCAM
	trace []string
}

func newParityTaskHost() *parityTaskHost {
	return &parityTaskHost{tcam: dataplane.NewTCAM(128)}
}

func (h *parityTaskHost) Now() time.Duration { return h.now }
func (h *parityTaskHost) Resources() netmodel.Resources {
	return netmodel.Resources{netmodel.ResVCPU: 2, netmodel.ResRAM: 1024, netmodel.ResPCIe: 1}
}
func (h *parityTaskHost) AddTCAMRule(r dataplane.Rule) error {
	h.trace = append(h.trace, fmt.Sprintf("tcam+ %+v", r))
	return h.tcam.AddRule(r)
}
func (h *parityTaskHost) RemoveTCAMRule(f dataplane.Filter) bool {
	h.trace = append(h.trace, fmt.Sprintf("tcam- %+v", f))
	return h.tcam.RemoveRule(f)
}
func (h *parityTaskHost) GetTCAMRule(f dataplane.Filter) (dataplane.Rule, bool) {
	return h.tcam.GetRule(f)
}
func (h *parityTaskHost) Send(to core.SendDest, v core.Value) {
	h.trace = append(h.trace, fmt.Sprintf("send %+v %s", to, core.FormatValue(v)))
}
func (h *parityTaskHost) SetTriggerInterval(trigger string, ms float64) {
	h.trace = append(h.trace, fmt.Sprintf("ival %s %g", trigger, ms))
}
func (h *parityTaskHost) Exec(cmd string, arg core.Value) (core.Value, error) {
	h.trace = append(h.trace, fmt.Sprintf("exec %s %s", cmd, core.FormatValue(arg)))
	return int64(1), nil
}
func (h *parityTaskHost) Log(format string, args ...any) {
	h.trace = append(h.trace, "log "+fmt.Sprintf(format, args...))
}

func snapFingerprint(s core.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "state=%s\n", s.State)
	envKeys := make([]string, 0, len(s.Env))
	for k := range s.Env {
		envKeys = append(envKeys, k)
	}
	sort.Strings(envKeys)
	for _, k := range envKeys {
		fmt.Fprintf(&b, "env %s=%s\n", k, core.FormatValue(s.Env[k]))
	}
	stKeys := make([]string, 0, len(s.StateVars))
	for k := range s.StateVars {
		stKeys = append(stKeys, k)
	}
	sort.Strings(stKeys)
	for _, st := range stKeys {
		vks := make([]string, 0, len(s.StateVars[st]))
		for k := range s.StateVars[st] {
			vks = append(vks, k)
		}
		sort.Strings(vks)
		for _, k := range vks {
			fmt.Fprintf(&b, "sv %s.%s=%s\n", st, k, core.FormatValue(s.StateVars[st][k]))
		}
	}
	return b.String()
}

func errStr(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

func taskPortStats(rng *rand.Rand, n int) core.List {
	out := make(core.List, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, core.StructVal{Type: "PortStats", Fields: core.MapVal{
			"port":     int64(i % 16),
			"dTxBytes": float64(rng.Intn(4000)),
			"dRxBytes": float64(rng.Intn(4000)),
			"txBytes":  float64(rng.Intn(1 << 20)),
			"rxBytes":  float64(rng.Intn(1 << 20)),
			"drops":    int64(rng.Intn(10)),
			"util":     rng.Float64(),
		}})
	}
	return out
}

func taskPayload(rng *rand.Rand) core.Value {
	switch rng.Intn(6) {
	case 0:
		return taskPortStats(rng, 4+rng.Intn(8))
	case 1:
		return int64(rng.Intn(5000))
	case 2:
		return rng.Float64() * 5000
	case 3:
		return core.StructVal{Type: "PortStats", Fields: core.MapVal{
			"port": int64(rng.Intn(16)), "dTxBytes": float64(rng.Intn(4000)),
		}}
	case 4:
		return core.ActionVal(dataplane.ActDrop)
	default:
		return core.List{int64(rng.Intn(8)), int64(rng.Intn(8))}
	}
}

// TestCatalogueLowersToBytecode pins that every catalogued machine
// lowers — the compiled back end is the default in soil, so a machine
// that only runs on the interpreter fallback is a regression — and that
// its disassembly renders.
func TestCatalogueLowersToBytecode(t *testing.T) {
	for _, d := range All() {
		prog, err := almanac.Parse(d.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", d.Name, err)
		}
		for _, m := range prog.Machines {
			cm, err := almanac.CompileMachine(prog, m.Name)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", d.Name, m.Name, err)
			}
			lp, err := almanac.Lower(cm, core.BuiltinNames())
			if err != nil {
				t.Fatalf("%s/%s: lower: %v", d.Name, m.Name, err)
			}
			if lp.NumInstrs() == 0 {
				t.Fatalf("%s/%s: lowered to an empty program", d.Name, m.Name)
			}
			if dump := lp.Disassemble(); !strings.Contains(dump, "machine "+m.Name) {
				t.Fatalf("%s/%s: disassembly missing header:\n%s", d.Name, m.Name, dump)
			}
		}
	}
}

// TestCatalogueBackendParity drives every catalogued machine on both
// back ends through a deterministic random event storm and requires
// identical states, snapshots, host effects, action counts, and errors.
func TestCatalogueBackendParity(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			prog, err := almanac.Parse(d.Source)
			if err != nil {
				t.Fatal(err)
			}
			machines := d.Machines
			if machines == nil {
				for _, m := range prog.Machines {
					machines = append(machines, m.Name)
				}
			}
			for _, mn := range machines {
				cm, err := almanac.CompileMachine(prog, mn)
				if err != nil {
					t.Fatalf("compile %s: %v", mn, err)
				}
				driveTaskParity(t, cm, d.DefaultExternals[mn])
			}
		})
	}
}

func driveTaskParity(t *testing.T, cm *almanac.CompiledMachine, ext map[string]core.Value) {
	t.Helper()
	hi := newParityTaskHost()
	hv := newParityTaskHost()
	ri, errI := core.NewRunner(cm, ext, hi, true)
	rv, errV := core.NewRunner(cm, ext, hv, false)
	if errStr(errI) != errStr(errV) {
		t.Fatalf("%s: construction divergence: interp %v vs vm %v", cm.Name, errI, errV)
	}
	if errI != nil {
		return
	}
	if errStr(ri.Start()) != errStr(rv.Start()) {
		t.Fatalf("%s: start divergence", cm.Name)
	}

	triggers := make([]string, 0, len(cm.Triggers)+1)
	for _, tr := range cm.Triggers {
		triggers = append(triggers, tr.Name)
	}
	triggers = append(triggers, "noSuchTrigger")

	rng := rand.New(rand.NewSource(911))
	diff := func(step int) {
		t.Helper()
		if ri.State() != rv.State() {
			t.Fatalf("%s step %d: state %q vs %q", cm.Name, step, ri.State(), rv.State())
		}
		if ai, av := ri.TakeActionCount(), rv.TakeActionCount(); ai != av {
			t.Fatalf("%s step %d: action count %d vs %d", cm.Name, step, ai, av)
		}
		fi, fv := snapFingerprint(ri.Snapshot()), snapFingerprint(rv.Snapshot())
		if fi != fv {
			t.Fatalf("%s step %d: snapshot divergence:\n--- interp\n%s--- vm\n%s", cm.Name, step, fi, fv)
		}
		if len(hi.trace) != len(hv.trace) {
			t.Fatalf("%s step %d: trace length %d vs %d", cm.Name, step, len(hi.trace), len(hv.trace))
		}
		for i := range hi.trace {
			if hi.trace[i] != hv.trace[i] {
				t.Fatalf("%s step %d: trace[%d] %q vs %q", cm.Name, step, i, hi.trace[i], hv.trace[i])
			}
		}
	}

	const steps = 400
	for step := 0; step < steps; step++ {
		now := time.Duration(step) * 7 * time.Millisecond
		hi.now, hv.now = now, now
		var e1, e2 error
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			tr := triggers[rng.Intn(len(triggers))]
			v := taskPayload(rng)
			e1 = ri.HandleTrigger(tr, v)
			e2 = rv.HandleTrigger(tr, v)
		case 6, 7:
			from := core.MsgSource{Harvester: true}
			if rng.Intn(2) == 0 {
				from = core.MsgSource{Machine: cm.Name, Switch: "s1"}
			}
			v := taskPayload(rng)
			e1 = ri.HandleRecv(from, v)
			e2 = rv.HandleRecv(from, v)
		case 8:
			e1 = ri.HandleRealloc()
			e2 = rv.HandleRealloc()
		default:
			// Cross-restore: each back end resumes from the other's
			// snapshot, which must be a no-op divergence-wise.
			si, sv := ri.Snapshot(), rv.Snapshot()
			e1 = ri.Restore(sv)
			e2 = rv.Restore(si)
		}
		if errStr(e1) != errStr(e2) {
			t.Fatalf("%s step %d: error divergence: interp %v vs vm %v", cm.Name, step, e1, e2)
		}
		if step%37 == 0 || step == steps-1 {
			diff(step)
		}
	}
	diff(steps)
}
