package tasks

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"farm/internal/almanac"
	"farm/internal/core"
	"farm/internal/dataplane"
	"farm/internal/netmodel"
)

// The whole task catalogue must (a) lower to bytecode AND register
// code — no machine may silently fall back to the AST walker — and
// (b) stay in observable lockstep across all three back ends under a
// random storm of triggers, messages, reallocs, and snapshots.

// parityTaskHost records every externally observable host effect as a
// deterministic trace line.
type parityTaskHost struct {
	now   time.Duration
	tcam  *dataplane.TCAM
	trace []string
}

func newParityTaskHost() *parityTaskHost {
	return &parityTaskHost{tcam: dataplane.NewTCAM(128)}
}

func (h *parityTaskHost) Now() time.Duration { return h.now }
func (h *parityTaskHost) Resources() netmodel.Resources {
	return netmodel.Resources{netmodel.ResVCPU: 2, netmodel.ResRAM: 1024, netmodel.ResPCIe: 1}
}
func (h *parityTaskHost) AddTCAMRule(r dataplane.Rule) error {
	h.trace = append(h.trace, fmt.Sprintf("tcam+ %+v", r))
	return h.tcam.AddRule(r)
}
func (h *parityTaskHost) RemoveTCAMRule(f dataplane.Filter) bool {
	h.trace = append(h.trace, fmt.Sprintf("tcam- %+v", f))
	return h.tcam.RemoveRule(f)
}
func (h *parityTaskHost) GetTCAMRule(f dataplane.Filter) (dataplane.Rule, bool) {
	return h.tcam.GetRule(f)
}
func (h *parityTaskHost) Send(to core.SendDest, v core.Value) {
	h.trace = append(h.trace, fmt.Sprintf("send %+v %s", to, core.FormatValue(v)))
}
func (h *parityTaskHost) SetTriggerInterval(trigger string, ms float64) {
	h.trace = append(h.trace, fmt.Sprintf("ival %s %g", trigger, ms))
}
func (h *parityTaskHost) Exec(cmd string, arg core.Value) (core.Value, error) {
	h.trace = append(h.trace, fmt.Sprintf("exec %s %s", cmd, core.FormatValue(arg)))
	return int64(1), nil
}
func (h *parityTaskHost) Log(format string, args ...any) {
	h.trace = append(h.trace, "log "+fmt.Sprintf(format, args...))
}

func snapFingerprint(s core.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "state=%s\n", s.State)
	envKeys := make([]string, 0, len(s.Env))
	for k := range s.Env {
		envKeys = append(envKeys, k)
	}
	sort.Strings(envKeys)
	for _, k := range envKeys {
		fmt.Fprintf(&b, "env %s=%s\n", k, core.FormatValue(s.Env[k]))
	}
	stKeys := make([]string, 0, len(s.StateVars))
	for k := range s.StateVars {
		stKeys = append(stKeys, k)
	}
	sort.Strings(stKeys)
	for _, st := range stKeys {
		vks := make([]string, 0, len(s.StateVars[st]))
		for k := range s.StateVars[st] {
			vks = append(vks, k)
		}
		sort.Strings(vks)
		for _, k := range vks {
			fmt.Fprintf(&b, "sv %s.%s=%s\n", st, k, core.FormatValue(s.StateVars[st][k]))
		}
	}
	return b.String()
}

func errStr(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

func taskPortStats(rng *rand.Rand, n int) core.List {
	out := make(core.List, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, core.StructOf("PortStats", core.MapVal{
			"port":     int64(i % 16),
			"dTxBytes": float64(rng.Intn(4000)),
			"dRxBytes": float64(rng.Intn(4000)),
			"txBytes":  float64(rng.Intn(1 << 20)),
			"rxBytes":  float64(rng.Intn(1 << 20)),
			"drops":    int64(rng.Intn(10)),
			"util":     rng.Float64(),
		}))
	}
	return out
}

func taskPayload(rng *rand.Rand) core.Value {
	switch rng.Intn(6) {
	case 0:
		return taskPortStats(rng, 4+rng.Intn(8))
	case 1:
		return int64(rng.Intn(5000))
	case 2:
		return rng.Float64() * 5000
	case 3:
		return core.StructOf("PortStats", core.MapVal{
			"port": int64(rng.Intn(16)), "dTxBytes": float64(rng.Intn(4000)),
		})
	case 4:
		return core.ActionVal(dataplane.ActDrop)
	default:
		return core.List{int64(rng.Intn(8)), int64(rng.Intn(8))}
	}
}

// TestCatalogueLowersToBytecode pins that every catalogued machine
// lowers — the compiled back end is the default in soil, so a machine
// that only runs on the interpreter fallback is a regression — and that
// its disassembly renders.
func TestCatalogueLowersToBytecode(t *testing.T) {
	for _, d := range All() {
		prog, err := almanac.Parse(d.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", d.Name, err)
		}
		for _, m := range prog.Machines {
			cm, err := almanac.CompileMachine(prog, m.Name)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", d.Name, m.Name, err)
			}
			lp, err := almanac.Lower(cm, core.BuiltinNames())
			if err != nil {
				t.Fatalf("%s/%s: lower: %v", d.Name, m.Name, err)
			}
			if lp.NumInstrs() == 0 {
				t.Fatalf("%s/%s: lowered to an empty program", d.Name, m.Name)
			}
			if lp.NumRegInstrs() == 0 {
				t.Fatalf("%s/%s: no register code generated", d.Name, m.Name)
			}
			if len(lp.RegChunks) != len(lp.Chunks) {
				t.Fatalf("%s/%s: %d register chunks for %d stack chunks",
					d.Name, m.Name, len(lp.RegChunks), len(lp.Chunks))
			}
			if dump := lp.Disassemble(); !strings.Contains(dump, "machine "+m.Name) {
				t.Fatalf("%s/%s: disassembly missing header:\n%s", d.Name, m.Name, dump)
			}
		}
	}
}

// TestCatalogueBackendParity drives every catalogued machine on all
// three back ends through a deterministic random event storm and
// requires identical states, snapshots, host effects, action counts,
// and errors, including cross-backend snapshot rotation.
func TestCatalogueBackendParity(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			prog, err := almanac.Parse(d.Source)
			if err != nil {
				t.Fatal(err)
			}
			machines := d.Machines
			if machines == nil {
				for _, m := range prog.Machines {
					machines = append(machines, m.Name)
				}
			}
			for _, mn := range machines {
				cm, err := almanac.CompileMachine(prog, mn)
				if err != nil {
					t.Fatalf("compile %s: %v", mn, err)
				}
				driveTaskParity(t, cm, d.DefaultExternals[mn])
			}
		})
	}
}

// parityBackends is every execution engine, the interpreter (semantic
// reference) first.
var parityBackends = []core.Backend{core.BackendInterp, core.BackendStack, core.BackendRegister}

func driveTaskParity(t *testing.T, cm *almanac.CompiledMachine, ext map[string]core.Value) {
	t.Helper()
	n := len(parityBackends)
	hosts := make([]*parityTaskHost, n)
	runners := make([]core.Runner, n)
	errs := make([]error, n)
	for i, be := range parityBackends {
		hosts[i] = newParityTaskHost()
		runners[i], errs[i] = core.NewRunner(cm, ext, hosts[i], be)
	}
	for i := 1; i < n; i++ {
		if errStr(errs[0]) != errStr(errs[i]) {
			t.Fatalf("%s: construction divergence: interp %v vs %s %v", cm.Name, errs[0], parityBackends[i], errs[i])
		}
	}
	if errs[0] != nil {
		return
	}
	// every applies one step per back end and requires identical errors.
	every := func(step int, f func(r core.Runner) error) {
		t.Helper()
		e0 := f(runners[0])
		for i := 1; i < n; i++ {
			if e := f(runners[i]); errStr(e0) != errStr(e) {
				t.Fatalf("%s step %d: error divergence: interp %v vs %s %v", cm.Name, step, e0, parityBackends[i], e)
			}
		}
	}
	every(-1, func(r core.Runner) error { return r.Start() })

	triggers := make([]string, 0, len(cm.Triggers)+1)
	for _, tr := range cm.Triggers {
		triggers = append(triggers, tr.Name)
	}
	triggers = append(triggers, "noSuchTrigger")

	rng := rand.New(rand.NewSource(911))
	diff := func(step int) {
		t.Helper()
		f0, a0 := snapFingerprint(runners[0].Snapshot()), runners[0].TakeActionCount()
		for i := 1; i < n; i++ {
			name := parityBackends[i].String()
			if runners[0].State() != runners[i].State() {
				t.Fatalf("%s step %d: state interp %q vs %s %q", cm.Name, step, runners[0].State(), name, runners[i].State())
			}
			if a := runners[i].TakeActionCount(); a0 != a {
				t.Fatalf("%s step %d: action count interp %d vs %s %d", cm.Name, step, a0, name, a)
			}
			if f := snapFingerprint(runners[i].Snapshot()); f0 != f {
				t.Fatalf("%s step %d: snapshot divergence:\n--- interp\n%s--- %s\n%s", cm.Name, step, f0, name, f)
			}
			if len(hosts[0].trace) != len(hosts[i].trace) {
				t.Fatalf("%s step %d: trace length interp %d vs %s %d", cm.Name, step, len(hosts[0].trace), name, len(hosts[i].trace))
			}
			for j := range hosts[0].trace {
				if hosts[0].trace[j] != hosts[i].trace[j] {
					t.Fatalf("%s step %d: trace[%d] interp %q vs %s %q", cm.Name, step, j, hosts[0].trace[j], name, hosts[i].trace[j])
				}
			}
		}
	}

	const steps = 400
	for step := 0; step < steps; step++ {
		now := time.Duration(step) * 7 * time.Millisecond
		for _, h := range hosts {
			h.now = now
		}
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			tr := triggers[rng.Intn(len(triggers))]
			v := taskPayload(rng)
			every(step, func(r core.Runner) error { return r.HandleTrigger(tr, core.CloneValue(v)) })
		case 6, 7:
			from := core.MsgSource{Harvester: true}
			if rng.Intn(2) == 0 {
				from = core.MsgSource{Machine: cm.Name, Switch: "s1"}
			}
			v := taskPayload(rng)
			every(step, func(r core.Runner) error { return r.HandleRecv(from, core.CloneValue(v)) })
		case 8:
			every(step, func(r core.Runner) error { return r.HandleRealloc() })
		default:
			// Cross-restore rotation: each back end resumes from the
			// next one's snapshot, which must be a no-op
			// divergence-wise.
			snaps := make([]core.Snapshot, n)
			for i, r := range runners {
				snaps[i] = r.Snapshot()
			}
			for i, r := range runners {
				src := (i + 1) % n
				if err := r.Restore(snaps[src]); err != nil {
					t.Fatalf("%s step %d: restore %s snapshot into %s: %v",
						cm.Name, step, parityBackends[src], parityBackends[i], err)
				}
			}
		}
		if step%37 == 0 || step == steps-1 {
			diff(step)
		}
	}
	diff(steps)
}
