package tasks

import (
	"farm/internal/core"
	"farm/internal/harvest"
	"farm/internal/soil"
)

// HHSource is the paper's List. 2 heavy-hitter seed with the abstracted
// auxiliary functions (getHH is a runtime builtin; setHitterRules is
// spelled out) made executable.
const HHSource = `
// Heavy hitter detection (List. 2 of the FARM paper): identify ports
// whose transmitted bytes cross a threshold within one poll interval,
// report them to the harvester, and react locally by installing a QoS
// rule for the offending ports.
function setHitterRules(list hs, action act) {
  long i = 0;
  while (i < list_len(hs)) {
    addTCAMRule(port list_get(hs, i), act, 10);
    i = i + 1;
  }
}
machine HH {
  place all;
  poll pollStats = Poll {
    .ival = 10 / res().PCIe, .what = port ANY
  };
  external long threshold;
  action hitterAction = setQoS();
  list hitters;

  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 100 and res.TCAM >= 8) then {
        return min(res.vCPU, res.PCIe);
      }
    }
    when (pollStats as stats) do {
      hitters = getHH(stats, threshold);
      if (not is_list_empty(hitters)) then {
        transit HHdetected;
      }
    }
  }
  state HHdetected {
    util (res) { return 100; }
    when (enter) do {
      send hitters to harvester;
      setHitterRules(hitters, hitterAction);
      transit observe;
    }
  }
  when (recv long newTh from harvester)
  do { threshold = newTh; }
  when (recv action hitAct from harvester)
  do { hitterAction = hitAct; }
}
`

// HHHSource adds hierarchical heavy hitter detection in the two forms
// of Tab. I: HHH inheriting from HH (overriding the detection state to
// aggregate into /24 prefixes) and a standalone HHH machine.
const HHHSource = HHSource + `
// Hierarchical HH via inheritance: reuse HH's polling and reaction but
// override the reporting state to aggregate hitters per port group
// before involving the harvester (Zhang et al., SIGCOMM'04 lineage).
machine HHH extends HH {
  state HHdetected {
    util (res) { return 100; }
    when (enter) do {
      map groups = map_new();
      long i = 0;
      while (i < list_len(hitters)) {
        long p = list_get(hitters, i);
        long g = p / 8;
        map_set(groups, g, map_get(groups, g, 0) + 1);
        i = i + 1;
      }
      send groups to harvester;
      setHitterRules(hitters, hitterAction);
      transit observe;
    }
  }
}
`

// HHHStandaloneSource is the non-inherited hierarchical HH variant
// (38 seed LoC in Tab. I): it maintains its own per-level counters.
const HHHStandaloneSource = `
// Standalone hierarchical heavy hitters: maintain byte counts at two
// aggregation levels (port and port-group) and report the deepest level
// whose count crosses its threshold.
machine HHHSolo {
  place all;
  poll stats = Poll { .ival = 20, .what = port ANY };
  external long portThreshold;
  external long groupThreshold;
  map groupBytes;
  list heavyPorts;
  list heavyGroups;

  state watch {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 200) then {
        return min(res.vCPU * 2, res.PCIe);
      }
    }
    when (stats as recs) do {
      groupBytes = map_new();
      heavyPorts = list_clear();
      heavyGroups = list_clear();
      long i = 0;
      while (i < list_len(recs)) {
        PortStats r = list_get(recs, i);
        if (r.dTxBytes >= portThreshold) then {
          heavyPorts = list_append(heavyPorts, r.port);
        }
        long g = r.port / 8;
        map_set(groupBytes, g, map_get(groupBytes, g, 0) + r.dTxBytes);
        i = i + 1;
      }
      list gs = map_keys(groupBytes);
      i = 0;
      while (i < list_len(gs)) {
        string g = list_get(gs, i);
        if (map_get(groupBytes, g, 0) >= groupThreshold) then {
          heavyGroups = list_append(heavyGroups, g);
        }
        i = i + 1;
      }
      if (not is_list_empty(heavyPorts)) then { transit report; }
      if (not is_list_empty(heavyGroups)) then { transit report; }
    }
  }
  state report {
    util (res) { return 50; }
    when (enter) do {
      if (not is_list_empty(heavyPorts)) then {
        send heavyPorts to harvester;
      } else {
        send heavyGroups to harvester;
      }
      transit watch;
    }
  }
  when (recv long th from harvester) do { portThreshold = th; }
}
`

func init() {
	register(Def{
		Name:        "hh",
		Description: "Heavy hitter detection with local QoS reaction (paper List. 2)",
		Source:      HHSource,
		Machines:    []string{"HH"},
		DefaultExternals: map[string]map[string]core.Value{
			"HH": {"threshold": int64(1_000_000)},
		},
		NewHarvester: func() harvest.Logic { return hhAdaptiveThreshold() },
	})
	register(Def{
		Name:        "hhh-inherited",
		Description: "Hierarchical HH inheriting from HH, overriding the report state",
		Source:      HHHSource,
		Machines:    []string{"HHH"},
		DefaultExternals: map[string]map[string]core.Value{
			"HHH": {"threshold": int64(1_000_000)},
		},
	})
	register(Def{
		Name:        "hhh",
		Description: "Standalone hierarchical HH with per-level thresholds",
		Source:      HHHStandaloneSource,
		Machines:    []string{"HHHSolo"},
		DefaultExternals: map[string]map[string]core.Value{
			"HHHSolo": {"portThreshold": int64(1_000_000), "groupThreshold": int64(4_000_000)},
		},
	})
}

// hhAdaptiveThreshold is the paper's example harvester behaviour: it
// observes the rate of HH reports and adapts the seeds' threshold to
// overall network load (§III-C).
func hhAdaptiveThreshold() harvest.Logic {
	reports := 0
	return harvest.FuncLogic{
		Message: func(ctx harvest.Context, from soil.SeedRef, v core.Value) {
			reports++
			// Under report storms, raise the threshold network-wide to
			// shed load; this exercises harvester -> seed control.
			if reports%50 == 0 {
				ctx.SendToSeeds(from.Machine, "", int64(2_000_000))
			}
		},
	}
}
