// Package metrics provides CPU and network cost accounting for the
// emulated data center.
//
// The paper's Figs. 5, 6, and 9 report switch CPU load and Fig. 4
// reports network load toward centralized components. Since the emulated
// switches don't burn real Atom-CPU cycles, every operation the real
// system would perform (polling, seed event handling, serialization,
// context switches, ML iterations) charges a modelled cost to a CPUMeter,
// and every control-plane message adds to a NetMeter. Costs are charged
// per actually-executed operation, so load curves inherit their shape
// from real execution counts, not from closed-form formulas.
package metrics

import (
	"time"

	"farm/internal/simclock"
)

// CPUMeter accumulates busy time for one switch management CPU.
type CPUMeter struct {
	loop  *simclock.Loop
	cores float64
	busy  time.Duration
}

// NewCPUMeter returns a meter for a CPU with the given core count
// (4 cores = a load ceiling of 400% in the paper's plots).
func NewCPUMeter(loop *simclock.Loop, cores float64) *CPUMeter {
	return &CPUMeter{loop: loop, cores: cores}
}

// Cores returns the core count.
func (m *CPUMeter) Cores() float64 { return m.cores }

// Charge adds d of busy time.
func (m *CPUMeter) Charge(d time.Duration) {
	if d > 0 {
		m.busy += d
	}
}

// Busy returns cumulative busy time.
func (m *CPUMeter) Busy() time.Duration { return m.busy }

// CPUSnapshot is a point-in-time view of a CPUMeter.
type CPUSnapshot struct {
	At   time.Duration
	Busy time.Duration
}

// Snapshot captures the current counters.
func (m *CPUMeter) Snapshot() CPUSnapshot {
	return CPUSnapshot{At: m.loop.Now(), Busy: m.busy}
}

// LoadSince returns the CPU load since an earlier snapshot, where 1.0
// means one fully busy core (100% in the paper's plots). Load may exceed
// Cores() — that is the "CPU unable to handle all seeds" regime of
// Fig. 6c, where demanded work outstrips the processor.
func (m *CPUMeter) LoadSince(prev CPUSnapshot) float64 {
	elapsed := m.loop.Now() - prev.At
	if elapsed <= 0 {
		return 0
	}
	return float64(m.busy-prev.Busy) / float64(elapsed)
}

// Saturated reports whether demand since prev exceeded the cores.
func (m *CPUMeter) Saturated(prev CPUSnapshot) bool {
	return m.LoadSince(prev) > m.cores
}

// CostModel holds per-operation CPU costs. The defaults are calibrated
// to an Intel Atom C2538-class management CPU (the paper's Accton
// AS5712/AS7712 platforms).
type CostModel struct {
	// PollIssue is charged when a poll request is issued to the driver.
	PollIssue time.Duration
	// PollPerRecord is charged per statistics record processed on
	// completion (per port or per rule entry).
	PollPerRecord time.Duration
	// HandlerDispatch is charged when a seed event handler fires.
	HandlerDispatch time.Duration
	// HandlerPerAction is charged per executed Almanac action.
	HandlerPerAction time.Duration
	// SampleProcess is charged per sampled packet handed to a seed.
	SampleProcess time.Duration
	// SerializePerByte is charged for marshalling control messages.
	SerializePerByte time.Duration
	// ContextSwitch is charged per wakeup of a process-model seed
	// (thread-model seeds run inline in the soil and skip it).
	ContextSwitch time.Duration
	// AggregationPerSeed is the soil-side fan-out cost when one poll
	// response is distributed to several seeds.
	AggregationPerSeed time.Duration
	// MLIteration is one iteration of the SVR matrix workload
	// (§VI-A-c), calibrated so that the Fig. 6 load curves land in the
	// paper's range (the Python 1000x1000 multiply is partitioned; one
	// "iteration" here is one partition slice on one Atom core).
	MLIteration time.Duration
}

// DefaultCostModel returns Atom-class defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		PollIssue:          2 * time.Microsecond,
		PollPerRecord:      300 * time.Nanosecond,
		HandlerDispatch:    1 * time.Microsecond,
		HandlerPerAction:   400 * time.Nanosecond,
		SampleProcess:      2 * time.Microsecond,
		SerializePerByte:   2 * time.Nanosecond,
		ContextSwitch:      15 * time.Microsecond,
		AggregationPerSeed: 500 * time.Nanosecond,
		MLIteration:        12 * time.Microsecond,
	}
}

// NetMeter counts control-plane traffic crossing a measurement point
// (e.g., the links into a central collector).
type NetMeter struct {
	loop    *simclock.Loop
	packets uint64
	bytes   uint64
}

// NewNetMeter returns a meter on the given loop.
func NewNetMeter(loop *simclock.Loop) *NetMeter {
	return &NetMeter{loop: loop}
}

// Add records a message of the given wire size.
func (m *NetMeter) Add(packets int, bytes int) {
	m.packets += uint64(packets)
	m.bytes += uint64(bytes)
}

// Packets returns the cumulative packet count.
func (m *NetMeter) Packets() uint64 { return m.packets }

// Bytes returns the cumulative byte count.
func (m *NetMeter) Bytes() uint64 { return m.bytes }

// NetSnapshot is a point-in-time view of a NetMeter.
type NetSnapshot struct {
	At      time.Duration
	Packets uint64
	Bytes   uint64
}

// Snapshot captures the current counters.
func (m *NetMeter) Snapshot() NetSnapshot {
	return NetSnapshot{At: m.loop.Now(), Packets: m.packets, Bytes: m.bytes}
}

// RateSince returns packets/s and bytes/s since an earlier snapshot.
func (m *NetMeter) RateSince(prev NetSnapshot) (pktPerSec, bytesPerSec float64) {
	elapsed := m.loop.Now() - prev.At
	if elapsed <= 0 {
		return 0, 0
	}
	secs := elapsed.Seconds()
	return float64(m.packets-prev.Packets) / secs, float64(m.bytes-prev.Bytes) / secs
}
