// Package metrics provides CPU and network cost accounting for the
// emulated data center.
//
// The paper's Figs. 5, 6, and 9 report switch CPU load and Fig. 4
// reports network load toward centralized components. Since the emulated
// switches don't burn real Atom-CPU cycles, every operation the real
// system would perform (polling, seed event handling, serialization,
// context switches, ML iterations) charges a modelled cost to a CPUMeter,
// and every control-plane message adds to a NetMeter. Costs are charged
// per actually-executed operation, so load curves inherit their shape
// from real execution counts, not from closed-form formulas.
//
// Concurrency contract under the sharded engine: a CPUMeter belongs to
// one switch and is only mutated by events on that switch's home shard.
// A NetMeter aggregates writers from many shards through per-shard
// lanes — each lane has a single writer, and the summed counters are
// read only while the workers are quiescent (between runs, or at epoch
// barriers), so no lock or atomic sits on the hot path.
package metrics

import (
	"time"

	"farm/internal/engine"
)

// CPUMeter accumulates busy time for one switch management CPU. It is
// mutated only from its owning shard and reads time from that shard's
// clock.
type CPUMeter struct {
	clock engine.Clock
	cores float64
	busy  time.Duration
}

// NewCPUMeter returns a meter for a CPU with the given core count
// (4 cores = a load ceiling of 400% in the paper's plots).
func NewCPUMeter(clock engine.Clock, cores float64) *CPUMeter {
	return &CPUMeter{clock: clock, cores: cores}
}

// Cores returns the core count.
func (m *CPUMeter) Cores() float64 { return m.cores }

// Charge adds d of busy time.
func (m *CPUMeter) Charge(d time.Duration) {
	if d > 0 {
		m.busy += d
	}
}

// Busy returns cumulative busy time.
func (m *CPUMeter) Busy() time.Duration { return m.busy }

// CPUSnapshot is a point-in-time view of a CPUMeter.
type CPUSnapshot struct {
	At   time.Duration
	Busy time.Duration
}

// Snapshot captures the current counters.
func (m *CPUMeter) Snapshot() CPUSnapshot {
	return CPUSnapshot{At: m.clock.Now(), Busy: m.busy}
}

// LoadSince returns the CPU load since an earlier snapshot, where 1.0
// means one fully busy core (100% in the paper's plots). Load may exceed
// Cores() — that is the "CPU unable to handle all seeds" regime of
// Fig. 6c, where demanded work outstrips the processor.
func (m *CPUMeter) LoadSince(prev CPUSnapshot) float64 {
	elapsed := m.clock.Now() - prev.At
	if elapsed <= 0 {
		return 0
	}
	return float64(m.busy-prev.Busy) / float64(elapsed)
}

// Saturated reports whether demand since prev exceeded the cores.
func (m *CPUMeter) Saturated(prev CPUSnapshot) bool {
	return m.LoadSince(prev) > m.cores
}

// CostModel holds per-operation CPU costs. The defaults are calibrated
// to an Intel Atom C2538-class management CPU (the paper's Accton
// AS5712/AS7712 platforms).
type CostModel struct {
	// PollIssue is charged when a poll request is issued to the driver.
	PollIssue time.Duration
	// PollPerRecord is charged per statistics record processed on
	// completion (per port or per rule entry).
	PollPerRecord time.Duration
	// HandlerDispatch is charged when a seed event handler fires.
	HandlerDispatch time.Duration
	// HandlerPerAction is charged per executed Almanac action.
	HandlerPerAction time.Duration
	// SampleProcess is charged per sampled packet handed to a seed.
	SampleProcess time.Duration
	// SerializePerByte is charged for marshalling control messages.
	SerializePerByte time.Duration
	// ContextSwitch is charged per wakeup of a process-model seed
	// (thread-model seeds run inline in the soil and skip it).
	ContextSwitch time.Duration
	// AggregationPerSeed is the soil-side fan-out cost when one poll
	// response is distributed to several seeds.
	AggregationPerSeed time.Duration
	// MLIteration is one iteration of the SVR matrix workload
	// (§VI-A-c), calibrated so that the Fig. 6 load curves land in the
	// paper's range (the Python 1000x1000 multiply is partitioned; one
	// "iteration" here is one partition slice on one Atom core).
	MLIteration time.Duration
}

// DefaultCostModel returns Atom-class defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		PollIssue:          2 * time.Microsecond,
		PollPerRecord:      300 * time.Nanosecond,
		HandlerDispatch:    1 * time.Microsecond,
		HandlerPerAction:   400 * time.Nanosecond,
		SampleProcess:      2 * time.Microsecond,
		SerializePerByte:   2 * time.Nanosecond,
		ContextSwitch:      15 * time.Microsecond,
		AggregationPerSeed: 500 * time.Nanosecond,
		MLIteration:        12 * time.Microsecond,
	}
}

// netLane is one writer's slice of a NetMeter, padded out to a cache
// line so lanes written by different worker goroutines don't false-share.
type netLane struct {
	packets uint64
	bytes   uint64
	_       [6]uint64
}

// NetMeter counts control-plane traffic crossing a measurement point
// (e.g., the links into a central collector). Writers on different
// shards add into distinct lanes; totals are the sum over lanes, read
// while writers are quiescent.
type NetMeter struct {
	clock engine.Clock
	lanes []netLane
}

// NewNetMeter returns a single-lane meter on the given clock.
func NewNetMeter(clock engine.Clock) *NetMeter {
	return NewNetMeterLanes(clock, 1)
}

// NewNetMeterLanes returns a meter with one lane per writer shard.
func NewNetMeterLanes(clock engine.Clock, lanes int) *NetMeter {
	if lanes < 1 {
		lanes = 1
	}
	return &NetMeter{clock: clock, lanes: make([]netLane, lanes)}
}

// Lanes returns the lane count.
func (m *NetMeter) Lanes() int { return len(m.lanes) }

// Add records a message of the given wire size on lane 0.
func (m *NetMeter) Add(packets int, bytes int) { m.AddLane(0, packets, bytes) }

// AddLane records a message on the caller's lane. Each lane must have at
// most one concurrent writer (under the sharded engine: the lane's shard).
func (m *NetMeter) AddLane(lane, packets, bytes int) {
	m.lanes[lane].packets += uint64(packets)
	m.lanes[lane].bytes += uint64(bytes)
}

// Lane returns the cumulative counters of one lane — under the fabric's
// wiring, the traffic contributed by that home shard. Like the totals,
// it must be read while writers are quiescent.
func (m *NetMeter) Lane(i int) (packets, bytes uint64) {
	return m.lanes[i].packets, m.lanes[i].bytes
}

// Imbalance returns the max/mean ratio over per-lane byte counts: 1.0
// means perfectly even shard load, N means one lane carries N times the
// mean. It returns 0 when no lane has carried traffic. Experiments
// report it for sharded runs to show how evenly the monitoring load
// spreads over shards (and therefore what speedup remains reachable).
func (m *NetMeter) Imbalance() float64 {
	var max, sum uint64
	for i := range m.lanes {
		b := m.lanes[i].bytes
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(m.lanes))
	return float64(max) / mean
}

// Packets returns the cumulative packet count across lanes.
func (m *NetMeter) Packets() uint64 {
	var n uint64
	for i := range m.lanes {
		n += m.lanes[i].packets
	}
	return n
}

// Bytes returns the cumulative byte count across lanes.
func (m *NetMeter) Bytes() uint64 {
	var n uint64
	for i := range m.lanes {
		n += m.lanes[i].bytes
	}
	return n
}

// NetSnapshot is a point-in-time view of a NetMeter.
type NetSnapshot struct {
	At      time.Duration
	Packets uint64
	Bytes   uint64
}

// Snapshot captures the current counters.
func (m *NetMeter) Snapshot() NetSnapshot {
	return NetSnapshot{At: m.clock.Now(), Packets: m.Packets(), Bytes: m.Bytes()}
}

// RateSince returns packets/s and bytes/s since an earlier snapshot.
func (m *NetMeter) RateSince(prev NetSnapshot) (pktPerSec, bytesPerSec float64) {
	elapsed := m.clock.Now() - prev.At
	if elapsed <= 0 {
		return 0, 0
	}
	secs := elapsed.Seconds()
	return float64(m.Packets()-prev.Packets) / secs, float64(m.Bytes()-prev.Bytes) / secs
}
