package metrics

import (
	"testing"
	"time"

	"farm/internal/engine"
)

func TestCPUMeterLoad(t *testing.T) {
	loop := engine.NewSerial()
	m := NewCPUMeter(loop, 4)
	snap := m.Snapshot()
	loop.RunFor(time.Second)
	m.Charge(500 * time.Millisecond)
	if got := m.LoadSince(snap); got < 0.499 || got > 0.501 {
		t.Fatalf("load = %g, want 0.5", got)
	}
	if m.Saturated(snap) {
		t.Fatal("0.5 load should not saturate 4 cores")
	}
}

func TestCPUMeterSaturation(t *testing.T) {
	loop := engine.NewSerial()
	m := NewCPUMeter(loop, 2)
	snap := m.Snapshot()
	loop.RunFor(100 * time.Millisecond)
	m.Charge(300 * time.Millisecond) // demand 3x elapsed
	if got := m.LoadSince(snap); got < 2.99 || got > 3.01 {
		t.Fatalf("load = %g, want 3", got)
	}
	if !m.Saturated(snap) {
		t.Fatal("3.0 load should saturate 2 cores")
	}
}

func TestCPUMeterNegativeChargeIgnored(t *testing.T) {
	loop := engine.NewSerial()
	m := NewCPUMeter(loop, 1)
	m.Charge(-time.Second)
	if m.Busy() != 0 {
		t.Fatalf("busy = %v, want 0", m.Busy())
	}
}

func TestCPUMeterZeroElapsed(t *testing.T) {
	loop := engine.NewSerial()
	m := NewCPUMeter(loop, 1)
	snap := m.Snapshot()
	m.Charge(time.Millisecond)
	if got := m.LoadSince(snap); got != 0 {
		t.Fatalf("load with zero elapsed = %g, want 0", got)
	}
}

func TestNetMeterRates(t *testing.T) {
	loop := engine.NewSerial()
	m := NewNetMeter(loop)
	snap := m.Snapshot()
	m.Add(10, 1500)
	m.Add(5, 500)
	loop.RunFor(2 * time.Second)
	pps, bps := m.RateSince(snap)
	if pps != 7.5 {
		t.Fatalf("pps = %g, want 7.5", pps)
	}
	if bps != 1000 {
		t.Fatalf("bps = %g, want 1000", bps)
	}
	if m.Packets() != 15 || m.Bytes() != 2000 {
		t.Fatalf("totals = %d pkts, %d bytes", m.Packets(), m.Bytes())
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	cm := DefaultCostModel()
	if cm.PollIssue <= 0 || cm.HandlerDispatch <= 0 || cm.MLIteration <= 0 {
		t.Fatal("default costs must be positive")
	}
	if cm.ContextSwitch <= cm.HandlerDispatch {
		t.Fatal("a process context switch must cost more than an inline dispatch")
	}
	if cm.MLIteration <= cm.HandlerDispatch {
		t.Fatal("an ML iteration must dominate a handler dispatch")
	}
}

func TestNetMeterLanes(t *testing.T) {
	loop := engine.NewSerial()
	m := NewNetMeterLanes(loop, 4)
	snap := m.Snapshot()
	m.AddLane(0, 1, 100)
	m.AddLane(3, 2, 200)
	m.AddLane(3, 1, 50)
	if m.Packets() != 4 || m.Bytes() != 350 {
		t.Fatalf("totals = %d pkts, %d bytes", m.Packets(), m.Bytes())
	}
	loop.RunFor(time.Second)
	pps, bps := m.RateSince(snap)
	if pps != 4 || bps != 350 {
		t.Fatalf("rates = %g pps, %g bps", pps, bps)
	}
}

func TestNetMeterLaneAccessAndImbalance(t *testing.T) {
	loop := engine.NewSerial()
	m := NewNetMeterLanes(loop, 4)
	if m.Imbalance() != 0 {
		t.Fatalf("idle imbalance = %g, want 0", m.Imbalance())
	}
	m.AddLane(0, 1, 100)
	m.AddLane(1, 1, 100)
	m.AddLane(2, 1, 100)
	m.AddLane(3, 1, 100)
	if got := m.Imbalance(); got != 1 {
		t.Fatalf("even imbalance = %g, want 1", got)
	}
	m.AddLane(3, 3, 400)
	if pkts, bytes := m.Lane(3); pkts != 4 || bytes != 500 {
		t.Fatalf("lane 3 = %d pkts, %d bytes, want 4/500", pkts, bytes)
	}
	// Lane bytes now 100,100,100,500: mean 200, max 500.
	if got := m.Imbalance(); got != 2.5 {
		t.Fatalf("skewed imbalance = %g, want 2.5", got)
	}
}
