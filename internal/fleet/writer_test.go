package fleet

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
	"farm/internal/seeder"
)

// replayAudit applies a service's audit log serially against a fresh
// fabric of the same shape and returns the resulting placement digest.
// Every entry is replayed through the same guarded code path the live
// writer used — including the ones that errored live, because seeder
// mutations are not atomic on error (FailSwitch marks the switch failed
// before the replan that may fail; a rolled-back AddTask leaves the
// replan's migrations applied). Errors are expected to recur
// identically: the replay checks each op's error against the audited
// one, which is itself part of the serial-equivalence claim.
func replayAudit(t *testing.T, cfg Config, log []AuditEntry) string {
	t.Helper()
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{
		Spines: cfg.Spines, Leaves: cfg.Leaves, HostsPerLeaf: cfg.HostsPerLeaf,
	})
	if err != nil {
		t.Fatalf("replay topo: %v", err)
	}
	loop := engine.NewSerial()
	fab := fabric.New(topo, loop, fabric.Options{})
	sd := seeder.New(fab, seeder.Options{PlacementParallel: cfg.PlacementParallel})
	for _, e := range log {
		var opErr error
		switch e.Op {
		case "submit":
			if sd.HasTask(e.Arg) {
				break
			}
			spec, err := CatalogueSpec(e.Arg, nil)
			if err != nil {
				t.Fatalf("replay seq %d: spec %s: %v", e.Seq, e.Arg, err)
			}
			opErr = sd.AddTask(spec)
		case "retire":
			if !sd.HasTask(e.Arg) {
				break
			}
			opErr = sd.RemoveTask(e.Arg)
		case "fail-switch":
			id, err := strconv.Atoi(e.Arg)
			if err != nil {
				t.Fatalf("replay seq %d: bad switch %q", e.Seq, e.Arg)
			}
			_, opErr = sd.FailSwitch(netmodel.SwitchID(id))
		case "recover-switch":
			id, err := strconv.Atoi(e.Arg)
			if err != nil {
				t.Fatalf("replay seq %d: bad switch %q", e.Seq, e.Arg)
			}
			opErr = sd.RecoverSwitch(netmodel.SwitchID(id))
		case "kill-leader", "takeover":
		default:
			t.Fatalf("replay seq %d: unknown op %q", e.Seq, e.Op)
		}
		got := ""
		if opErr != nil {
			got = opErr.Error()
		}
		if got != e.Err {
			t.Fatalf("replay seq %d (%s %s): error diverged\nlive:   %q\nreplay: %q",
				e.Seq, e.Op, e.Arg, e.Err, got)
		}
	}
	return sd.PlacementDigest()
}

// TestConcurrentWritersSerializable hammers the single-writer loop with
// submits, retires, and switch fail/recover from many goroutines at
// once, then replays the audit log serially against a fresh fabric: the
// placement digests must match byte-for-byte, proving the concurrent
// execution was equivalent to some serial order — the one the audit log
// records. Run with -race: this is also the data-race probe for the
// whole operator surface.
//
// Traffic stays off so seeds hold their initial state on both sides;
// placement utility reads live seed state, and a state transition the
// replay cannot see would (correctly) change the digest.
func TestConcurrentWritersSerializable(t *testing.T) {
	cfg := Config{
		Spines: 2, Leaves: 3, HostsPerLeaf: 4,
		Traffic:           false,
		HeartbeatInterval: 20 * time.Millisecond,
	}
	s := startService(t, cfg)
	waitReady(t, s, 2*time.Second)

	// One spine may fail/recover under the hammer; leaves keep quorum so
	// every task always has candidates.
	var spine netmodel.SwitchID = -1
	for _, sw := range s.Fabric().Topology().Switches() {
		if sw.Role == netmodel.Spine {
			spine = sw.ID
			break
		}
	}
	if spine < 0 {
		t.Fatalf("no spine switch")
	}

	taskPool := []string{"hh", "syn-flood", "port-scan", "entropy", "ddos", "superspreader"}
	const writers = 6
	const opsPerWriter = 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for i := 0; i < opsPerWriter; i++ {
				// Op errors are part of the exercise: writers race on the
				// spine's failure state ("already failed"/"not failed") and
				// on the fabric's capacity ("insufficient resources" when
				// too many tasks are up at once). Every outcome lands in
				// the audit log and must reproduce identically on replay.
				task := taskPool[rng.Intn(len(taskPool))]
				switch rng.Intn(6) {
				case 0, 1, 2:
					if err := s.Submit(task); err != nil {
						t.Logf("writer %d: submit %s: %v", w, task, err)
					}
				case 3, 4:
					if err := s.Retire(task); err != nil {
						t.Logf("writer %d: retire %s: %v", w, task, err)
					}
				case 5:
					if i%2 == 0 {
						if _, err := s.FailSwitch(spine); err != nil {
							t.Logf("writer %d: fail-switch: %v", w, err)
						}
					} else if err := s.RecoverSwitch(spine); err != nil {
						t.Logf("writer %d: recover-switch: %v", w, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	log, err := s.AuditLog()
	if err != nil {
		t.Fatalf("AuditLog: %v", err)
	}
	if len(log) != writers*opsPerWriter {
		t.Fatalf("audit entries: %d, want %d", len(log), writers*opsPerWriter)
	}
	succeeded := 0
	for i, e := range log {
		if e.Seq != i {
			t.Fatalf("audit seq %d at index %d: log not densely ordered", e.Seq, i)
		}
		if e.Err == "" {
			succeeded++
		}
	}
	// The hammer tolerates capacity and failure-state rejections, but a
	// run where almost every op failed is not exercising the writer loop.
	if succeeded < len(log)/4 {
		t.Fatalf("only %d/%d audited ops succeeded", succeeded, len(log))
	}

	live, err := s.PlacementDigest()
	if err != nil {
		t.Fatalf("PlacementDigest: %v", err)
	}
	if serial := replayAudit(t, cfg, log); serial != live {
		t.Fatalf("digest mismatch: live %s vs serial replay %s — concurrent execution not serializable", live, serial)
	}
}
