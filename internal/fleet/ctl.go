package fleet

import (
	"fmt"
	"io"
	"os"
	"time"

	"farm/internal/almanac"
	"farm/internal/core"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/harvest"
	"farm/internal/netmodel"
	"farm/internal/seeder"
	"farm/internal/soil"
	"farm/internal/tasks"
	"farm/internal/traffic"
)

// The operator pipeline farmctl fronts, as a library: compile Almanac
// sources, report the static analyses the seeder performs (placement
// directives, utility polynomials, polling subjects), emit the XML wire
// format, and run a catalogue task on a one-shot emulated fabric. The
// daemon reuses the same compile → analyze → place → install path
// through the seeder; these helpers are the offline halves.

// LoadProgram parses an Almanac source file.
func LoadProgram(path string) (*almanac.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return almanac.Parse(string(data))
}

// PickMachine selects the named machine, or the program's first.
func PickMachine(prog *almanac.Program, name string) (string, error) {
	if name != "" {
		return name, nil
	}
	if len(prog.Machines) == 0 {
		return "", fmt.Errorf("source declares no machines")
	}
	return prog.Machines[0].Name, nil
}

// CompileReport compiles every machine of a source file and writes a
// per-machine summary, including the lowered bytecode size the soil
// will actually execute. With dump set it appends each machine's full
// disassembly (frame layouts, dispatch tables, and instructions).
func CompileReport(w io.Writer, path string, dump bool) error {
	prog, err := LoadProgram(path)
	if err != nil {
		return err
	}
	cms, err := almanac.Compile(prog)
	if err != nil {
		return err
	}
	lps := make([]*almanac.Lowered, len(cms))
	for i, cm := range cms {
		fmt.Fprintf(w, "machine %s: %d states (initial %s), %d vars (%d external), %d triggers, %d placements\n",
			cm.Name, len(cm.States), cm.InitialState, len(cm.Vars), len(cm.ExternalVars()), len(cm.Triggers), len(cm.Placements))
		lp, err := almanac.Lower(cm, core.BuiltinNames())
		if err != nil {
			// The soil would fall back to the AST interpreter for this
			// machine; surface that as a warning, not a hard failure.
			fmt.Fprintf(w, "  bytecode: WARNING not lowered (%v), would run on the AST interpreter\n", err)
			continue
		}
		lps[i] = lp
		fmt.Fprintf(w, "  bytecode: %d instrs in %d chunks, %d state slots, %d env slots, %d literals\n",
			lp.NumInstrs(), len(lp.Chunks), lp.StateSlots(), len(lp.EnvSlots), len(lp.Lits))
		fmt.Fprintf(w, "  register form: %d instrs, max frame %d regs, %d record layouts, %d field sites\n",
			lp.NumRegInstrs(), lp.MaxRegs(), len(lp.Structs), lp.RFieldSites)
	}
	fmt.Fprintf(w, "ok: %d machine(s), %d function(s), %d struct(s)\n",
		len(cms), len(prog.Funcs), len(prog.Structs))
	if dump {
		for _, lp := range lps {
			if lp == nil {
				continue
			}
			fmt.Fprintln(w)
			fmt.Fprint(w, lp.Disassemble())
		}
	}
	return nil
}

// AnalyzeReport writes the placement/utility/poll analysis for one
// machine of a source file ("" machine = the first).
func AnalyzeReport(w io.Writer, path, machine string) error {
	prog, err := LoadProgram(path)
	if err != nil {
		return err
	}
	name, err := PickMachine(prog, machine)
	if err != nil {
		return err
	}
	cm, err := almanac.CompileMachine(prog, name)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "machine %s\n", cm.Name)
	for _, warn := range almanac.Lint(cm) {
		fmt.Fprintf(w, "WARNING: %s\n", warn)
	}
	if lp, err := almanac.Lower(cm, core.BuiltinNames()); err != nil {
		fmt.Fprintf(w, "compiled: not lowered (%v), runs on the AST interpreter\n", err)
	} else {
		maxLocals := int32(0)
		for _, ch := range lp.Chunks {
			if ch.NumLocals > maxLocals {
				maxLocals = ch.NumLocals
			}
		}
		fmt.Fprintf(w, "compiled: %d instrs, %d chunks, %d state slots, %d env slots, max frame %d locals\n",
			lp.NumInstrs(), len(lp.Chunks), lp.StateSlots(), len(lp.EnvSlots), maxLocals)
		fmt.Fprintf(w, "register form: %d instrs, max frame %d regs, %d record layouts, %d field sites\n",
			lp.NumRegInstrs(), lp.MaxRegs(), len(lp.Structs), lp.RFieldSites)
	}
	fmt.Fprintln(w, "placement directives:")
	for _, pl := range cm.Placements {
		if pl.HasRange {
			fmt.Fprintf(w, "  place %s %s range %s ...\n", pl.Quant, pl.Anchor, pl.RangeOp)
		} else if len(pl.Switches) > 0 {
			fmt.Fprintf(w, "  place %s on %d named switches\n", pl.Quant, len(pl.Switches))
		} else {
			fmt.Fprintf(w, "  place %s (all switches)\n", pl.Quant)
		}
	}
	fmt.Fprintln(w, "per-state utility (C^s >= 0 -> u^s):")
	for _, st := range cm.States {
		u, err := almanac.AnalyzeUtility(st.Util, nil)
		if err != nil {
			fmt.Fprintf(w, "  %s: needs deployment-time constants (%v)\n", st.Name, err)
			continue
		}
		for i, c := range u {
			fmt.Fprintf(w, "  %s case %d:\n", st.Name, i)
			for _, con := range c.Constraints {
				fmt.Fprintf(w, "    constraint: %s >= 0\n", con)
			}
			fmt.Fprintf(w, "    utility:    %s\n", c.Util)
		}
	}
	fmt.Fprintln(w, "trigger variables:")
	pis, err := almanac.AnalyzePolls(cm, nil)
	if err != nil {
		return err
	}
	for _, pi := range pis {
		fmt.Fprintf(w, "  %s (%s): rate/s = %s", pi.Name, pi.TType, pi.RatePerSec)
		if pi.What.Kind == almanac.ConstFilter {
			if key, err := soil.SubjectKey(pi.What); err == nil {
				fmt.Fprintf(w, ", subject = %s", key)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// XMLReport emits one machine's XML wire format.
func XMLReport(w io.Writer, path, machine string) error {
	prog, err := LoadProgram(path)
	if err != nil {
		return err
	}
	name, err := PickMachine(prog, machine)
	if err != nil {
		return err
	}
	cm, err := almanac.CompileMachine(prog, name)
	if err != nil {
		return err
	}
	data, err := almanac.EncodeXML(cm)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, string(data))
	return nil
}

// FormatSource reprints a source file in canonical form.
func FormatSource(w io.Writer, path string) error {
	prog, err := LoadProgram(path)
	if err != nil {
		return err
	}
	fmt.Fprint(w, almanac.Print(prog))
	return nil
}

// ListCatalogue writes the Tab. I catalogue.
func ListCatalogue(w io.Writer) {
	for _, d := range tasks.All() {
		fmt.Fprintf(w, "  %-16s %s\n", d.Name, d.Description)
	}
}

// ListBuiltins writes the runtime library function names.
func ListBuiltins(w io.Writer) {
	for _, n := range core.BuiltinNames() {
		fmt.Fprintln(w, n)
	}
}

// RunOptions shapes RunTask's one-shot fabric.
type RunOptions struct {
	Leaves  int // leaf switches (default 4)
	Seconds int // simulated seconds (default 2)
	Seed    int64
	// MaxPrinted caps the harvester reports echoed to w (default 10).
	MaxPrinted int
}

// RunTask deploys one catalogue task on a fresh virtual-time fabric
// with a mixed workload cocktail and runs it for the configured
// simulated time — farmctl's offline `run` mode, sharing the catalogue
// and deployment path with the daemon.
func RunTask(w io.Writer, taskName string, opts RunOptions) error {
	if opts.Leaves == 0 {
		opts.Leaves = 4
	}
	if opts.Seconds == 0 {
		opts.Seconds = 2
	}
	if opts.MaxPrinted == 0 {
		opts.MaxPrinted = 10
	}
	d, err := tasks.ByName(taskName)
	if err != nil {
		return err
	}
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{
		Spines: 2, Leaves: opts.Leaves, HostsPerLeaf: 8,
	})
	if err != nil {
		return err
	}
	loop := engine.NewSerial()
	fab := fabric.New(topo, loop, fabric.Options{})
	sd := seeder.New(fab, seeder.Options{})
	reports := 0
	spec := seeder.TaskSpec{
		Name: d.Name, Source: d.Source, Machines: d.Machines,
		Externals: d.DefaultExternals,
		Harvester: harvest.FuncLogic{
			Message: func(ctx harvest.Context, from soil.SeedRef, v core.Value) {
				reports++
				if reports <= opts.MaxPrinted {
					fmt.Fprintf(w, "[%10v] %s: %s\n", ctx.Now(), from.Switch, core.FormatValue(v))
				}
			},
		},
	}
	if err := sd.AddTask(spec); err != nil {
		return err
	}
	fmt.Fprintf(w, "running %s on %d switches with mixed traffic for %ds (simulated)\n",
		d.Name, topo.NumSwitches(), opts.Seconds)

	// A workload cocktail so most tasks have something to see.
	gen := traffic.NewGenerator(fab, opts.Seed)
	stops := []func(){
		gen.SYNFlood(fabric.HostIP(0, 0), 8, 4000),
		gen.PortScan(fabric.HostIP(1, 0), fabric.HostIP(0, 1), 1000),
		gen.SuperSpreader(fabric.HostIP(2%opts.Leaves, 0), 16, 2000),
		gen.SSHBruteForce(fabric.HostIP(1, 2), fabric.HostIP(0, 2), 200),
		gen.DNSReflection(fabric.HostIP(0, 3), 4, 1000),
		gen.Slowloris(fabric.HostIP(0, 4), 12, 50),
	}
	defer func() {
		for _, s := range stops {
			s()
		}
	}()
	bulk := traffic.NewBulkWorkload(fab, traffic.BulkConfig{
		Tick: 10 * time.Millisecond, HeavyRatio: 0.1, Churn: time.Second, Seed: 5,
	})
	defer bulk.Stop()

	loop.RunFor(time.Duration(opts.Seconds) * time.Second)
	fmt.Fprintf(w, "done: %d harvester reports, %d packets dropped by local reactions\n",
		reports, fab.DroppedInFabric())
	return nil
}
