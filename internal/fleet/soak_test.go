package fleet

import (
	"testing"
	"time"
)

// TestFleetSoak is the end-to-end gate from the issue: 8 concurrent RPC
// clients churn disjoint slices of the Tab. I catalogue against a live
// fleetd with background traffic on, the active replica is killed at
// roughly the halfway point, and the standby must take over (forced-full
// replan) with zero lost and zero duplicated tasks. Run with -race.
func TestFleetSoak(t *testing.T) {
	rep, err := Soak(SoakConfig{
		Service: Config{
			Spines: 2, Leaves: 3, HostsPerLeaf: 4,
			Traffic:           true,
			HeartbeatInterval: 10 * time.Millisecond,
		},
		Clients: 8,
		Rounds:  3,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	t.Logf("\n%s", rep)

	if rep.Takeovers != 1 {
		t.Fatalf("takeovers: %d, want exactly 1", rep.Takeovers)
	}
	if rep.LeaderAfter != "seeder-b" {
		t.Fatalf("leader after kill: %q, want seeder-b", rep.LeaderAfter)
	}
	if len(rep.Lost) > 0 {
		t.Fatalf("tasks lost across failover: %v", rep.Lost)
	}
	if len(rep.Unexpected) > 0 {
		t.Fatalf("unexpected tasks after failover: %v", rep.Unexpected)
	}
	if !rep.Passed() {
		t.Fatalf("soak failed:\n%s", rep)
	}
	// The kill landed mid-churn, so at least one client must have ridden
	// a no-leader window on its retry path — otherwise the soak never
	// actually exercised the failover.
	if rep.NotReadyFor <= 0 {
		t.Fatalf("not-ready window not observed: %v", rep.NotReadyFor)
	}
	// Readiness must come back within the heartbeat-scale bound (wide
	// wall-clock slack is built into the harness default).
	bound := 10*time.Millisecond*(5+10) + 2*time.Second
	if rep.NotReadyFor > bound {
		t.Fatalf("not-ready window %v exceeds bound %v", rep.NotReadyFor, bound)
	}
}
