package fleet

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"farm/internal/netmodel"
	"farm/internal/tasks"
)

// The fleet-soak harness: N concurrent RPC clients submit and retire
// tasks from the Tab. I catalogue against a live fleetd while
// background traffic runs, with one forced leader kill mid-run. Each
// client owns a disjoint slice of the catalogue and drives it through
// churn rounds, so the expected final task set is known exactly; the
// harness then reconciles it against the fleet's actual state. Zero
// lost and zero unexpected tasks across the failover is the pass bar.

// SoakConfig shapes a soak run. Zero values get defaults.
type SoakConfig struct {
	// Service is the fleet config to boot (RPCAddr must be enabled;
	// defaults to an ephemeral loopback port).
	Service Config
	// Clients is the number of concurrent RPC clients (default 8).
	Clients int
	// Rounds is the churn rounds per client (default 6): each round
	// submits every owned task, then retires a round-dependent subset.
	Rounds int
	// OpDeadline bounds each SubmitWait/RetireWait retry window across
	// the leadership gap (default 10s).
	OpDeadline time.Duration
	// ReadyBound bounds how long after the leader kill the service may
	// stay not-ready (default HeartbeatTimeout + 10×interval + 2s
	// wall-clock slack for the takeover replan).
	ReadyBound time.Duration
	Logf       func(format string, args ...any)
}

func (c *SoakConfig) fill() {
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Rounds == 0 {
		c.Rounds = 6
	}
	if c.OpDeadline == 0 {
		c.OpDeadline = 10 * time.Second
	}
	if c.Service.RPCAddr == "" {
		c.Service.RPCAddr = "127.0.0.1:0"
	}
	if c.Service.HTTPAddr == "" {
		c.Service.HTTPAddr = "127.0.0.1:0"
	}
	// The default AS5712/AS7712-class switch models hold only a few
	// Tab. I tasks at once; the soak churns the whole catalogue
	// concurrently, so give every switch data-center-scale headroom
	// unless the caller pinned its own capacities.
	if c.Service.LeafCapacity == nil {
		c.Service.LeafCapacity = soakCapacity()
	}
	if c.Service.SpineCapacity == nil {
		c.Service.SpineCapacity = soakCapacity()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// soakCapacity is a per-switch resource model wide enough for the full
// catalogue plus baseline agents on every switch simultaneously.
func soakCapacity() netmodel.Resources {
	return netmodel.Resources{
		netmodel.ResVCPU: 128,
		netmodel.ResRAM:  1 << 17, // 128 GB
		netmodel.ResTCAM: 1 << 14,
		netmodel.ResPCIe: 512,
		netmodel.ResPoll: 1e6,
	}
}

// SoakReport is the harness's verdict.
type SoakReport struct {
	Clients     int
	Ops         int           // RPC mutations issued (submits + retires)
	RetriedOps  int           // ops that hit at least one no-leader retry
	Takeovers   uint64        // standby promotions observed (want exactly 1)
	LeaderAfter string        // leader after the forced kill
	NotReadyFor time.Duration // /healthz-visible gap around the failover
	Expected    []string      // task set the clients converged on
	Actual      []string      // task set the fleet ended with
	Lost        []string      // expected but missing — must be empty
	Unexpected  []string      // present but never expected — must be empty
	Elapsed     time.Duration
}

// Passed reports whether the soak met the survivability bar.
func (r *SoakReport) Passed() bool {
	return r.Takeovers == 1 && len(r.Lost) == 0 && len(r.Unexpected) == 0
}

// String renders a one-screen summary.
func (r *SoakReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet-soak: %d clients, %d ops (%d retried across failover)\n",
		r.Clients, r.Ops, r.RetriedOps)
	fmt.Fprintf(&b, "  takeovers=%d leader=%s not-ready window=%v elapsed=%v\n",
		r.Takeovers, r.LeaderAfter, r.NotReadyFor, r.Elapsed)
	fmt.Fprintf(&b, "  final tasks: %d expected, %d actual, %d lost, %d unexpected\n",
		len(r.Expected), len(r.Actual), len(r.Lost), len(r.Unexpected))
	if r.Passed() {
		b.WriteString("  PASS: no task lost or duplicated across the leader kill\n")
	} else {
		fmt.Fprintf(&b, "  FAIL: lost=%v unexpected=%v takeovers=%d\n", r.Lost, r.Unexpected, r.Takeovers)
	}
	return b.String()
}

// soakClient is one operator: it owns a disjoint catalogue slice and
// churns it, riding out the failover with retrying calls.
type soakClient struct {
	id    int
	owned []string // disjoint slice of the catalogue
	keep  []string // the subset the client leaves deployed at the end
}

// Soak boots a fleet service, runs the concurrent churn with a forced
// leader kill at the halfway point, and reconciles the final state.
func Soak(cfg SoakConfig) (*SoakReport, error) {
	cfg.fill()
	start := time.Now()

	s, err := New(cfg.Service)
	if err != nil {
		return nil, err
	}
	if err := s.Start(); err != nil {
		return nil, err
	}
	defer s.Stop()

	cat := tasks.Names()
	if len(cat) < cfg.Clients {
		return nil, fmt.Errorf("fleet: soak needs >= %d catalogue tasks, have %d", cfg.Clients, len(cat))
	}
	clients := make([]*soakClient, cfg.Clients)
	for i := range clients {
		clients[i] = &soakClient{id: i}
	}
	// Deal the catalogue round-robin: disjoint ownership means no two
	// clients ever submit or retire the same task, so the expected final
	// set is exact, and an unexpected survivor can only come from the
	// fleet itself (a duplicated or resurrected task).
	for i, name := range cat {
		c := clients[i%cfg.Clients]
		c.owned = append(c.owned, name)
	}
	for _, c := range clients {
		// Even-indexed owned tasks stay deployed at the end.
		for i, name := range c.owned {
			if i%2 == 0 {
				c.keep = append(c.keep, name)
			}
		}
	}

	totalOps := 0
	for _, c := range clients {
		totalOps += cfg.Rounds*2*len(c.owned) + len(c.keep) // churn + final pass
	}
	var (
		opsDone    atomic.Int64
		retried    atomic.Int64
		killOnce   sync.Once
		killDone   = make(chan struct{})
		notReady   atomic.Int64 // not-ready window, ns
		clientErrs = make(chan error, cfg.Clients)
		wg         sync.WaitGroup
	)
	killAt := int64(totalOps / 2)

	// The killer: once half the ops have landed, kill the active replica
	// and clock how long the service stays not-ready.
	maybeKill := func() {
		if opsDone.Load() < killAt {
			return
		}
		killOnce.Do(func() {
			go func() {
				defer close(killDone)
				cfg.Logf("fleet-soak: killing leader after %d ops", opsDone.Load())
				if err := s.KillLeader(); err != nil {
					cfg.Logf("fleet-soak: kill leader: %v", err)
					return
				}
				t0 := time.Now()
				bound := cfg.ReadyBound
				if bound == 0 {
					bound = s.cfg.HeartbeatTimeout + 10*s.cfg.HeartbeatInterval + 2*time.Second
				}
				for !s.Ready() {
					if time.Since(t0) > bound {
						cfg.Logf("fleet-soak: still not ready after %v", bound)
						break
					}
					time.Sleep(time.Millisecond)
				}
				notReady.Store(int64(time.Since(t0)))
			}()
		})
	}

	runClient := func(c *soakClient) error {
		cl, err := Dial(s.RPCAddr())
		if err != nil {
			return fmt.Errorf("client %d: dial: %w", c.id, err)
		}
		defer cl.Close()
		rng := rand.New(rand.NewSource(int64(c.id)*104729 + 7))
		op := func(submit bool, name string) error {
			var err error
			if submit {
				err = cl.Submit(name)
			} else {
				err = cl.Retire(name)
			}
			if IsRetryable(err) {
				retried.Add(1)
				if submit {
					err = cl.SubmitWait(name, cfg.OpDeadline)
				} else {
					err = cl.RetireWait(name, cfg.OpDeadline)
				}
			}
			if err != nil {
				return fmt.Errorf("client %d: %s %s: %w", c.id, map[bool]string{true: "submit", false: "retire"}[submit], name, err)
			}
			opsDone.Add(1)
			maybeKill()
			return nil
		}
		for round := 0; round < cfg.Rounds; round++ {
			for _, name := range c.owned {
				if err := op(true, name); err != nil {
					return err
				}
				if rng.Intn(4) == 0 {
					time.Sleep(time.Duration(rng.Intn(2)) * time.Millisecond)
				}
			}
			for _, name := range c.owned {
				if err := op(false, name); err != nil {
					return err
				}
			}
		}
		// Final pass: leave exactly the keep-set deployed.
		for _, name := range c.keep {
			if err := op(true, name); err != nil {
				return err
			}
		}
		return nil
	}

	for _, c := range clients {
		wg.Add(1)
		go func(c *soakClient) {
			defer wg.Done()
			if err := runClient(c); err != nil {
				clientErrs <- err
			}
		}(c)
	}
	wg.Wait()
	close(clientErrs)
	for err := range clientErrs {
		return nil, err
	}
	select {
	case <-killDone:
	case <-time.After(cfg.OpDeadline):
		return nil, fmt.Errorf("fleet: soak finished without the leader kill completing")
	}

	rep := &SoakReport{
		Clients:     cfg.Clients,
		Ops:         int(opsDone.Load()),
		RetriedOps:  int(retried.Load()),
		Takeovers:   s.Takeovers(),
		NotReadyFor: time.Duration(notReady.Load()),
		Elapsed:     time.Since(start),
	}
	rep.LeaderAfter, _, _ = s.Leader()

	expected := map[string]bool{}
	for _, c := range clients {
		for _, name := range c.keep {
			expected[name] = true
		}
	}
	actual, err := s.TaskNames()
	if err != nil {
		return nil, err
	}
	actualSet := map[string]bool{}
	for _, name := range actual {
		actualSet[name] = true
	}
	for name := range expected {
		rep.Expected = append(rep.Expected, name)
		if !actualSet[name] {
			rep.Lost = append(rep.Lost, name)
		}
	}
	for _, name := range actual {
		rep.Actual = append(rep.Actual, name)
		if !expected[name] {
			rep.Unexpected = append(rep.Unexpected, name)
		}
	}
	sort.Strings(rep.Expected)
	sort.Strings(rep.Lost)
	sort.Strings(rep.Unexpected)

	if err := s.Stop(); err != nil {
		return nil, fmt.Errorf("fleet: soak stop: %w", err)
	}
	return rep, nil
}
