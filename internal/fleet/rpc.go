package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"farm/internal/tasks"
	"farm/internal/transport"
)

// The operator RPC rides the transport package's length-prefixed TCP
// batch framing (the Fig. 10 socket path) with JSON payloads: one
// request record in, one response record out, concurrent across
// connections.
//
// Both directions encode through pooled codecs instead of per-call
// json.Marshal: a json.Encoder writes straight into a reusable byte
// slice (server side: the transport's connection-local scratch, so the
// response JSON lands directly in the outgoing wire frame), and the
// encoder machinery itself is recycled through a sync.Pool.
//
// Ops: ping, submit <task>, retire <task>, status, catalogue.

// sliceWriter adapts an append-grown byte slice to io.Writer so a
// json.Encoder can emit into transport-owned buffers.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// rpcCodec is one pooled encoder. The sliceWriter's buffer is swapped
// in per call and detached before the codec returns to the pool, so
// the pooled object never retains (or races on) wire memory.
type rpcCodec struct {
	sw  sliceWriter
	enc *json.Encoder
}

var codecPool = sync.Pool{New: func() any {
	c := &rpcCodec{}
	c.enc = json.NewEncoder(&c.sw)
	return c
}}

// encodeInto appends v's JSON encoding (plus the encoder's trailing
// newline) to dst using a pooled encoder.
func encodeInto(dst []byte, v any) ([]byte, error) {
	c := codecPool.Get().(*rpcCodec)
	c.sw.b = dst
	err := c.enc.Encode(v)
	out := c.sw.b
	c.sw.b = nil
	codecPool.Put(c)
	if err != nil {
		return dst, err
	}
	return out, nil
}

type rpcRequest struct {
	Op   string `json:"op"`
	Task string `json:"task,omitempty"`
}

type rpcResponse struct {
	OK bool `json:"ok"`
	// Err is set when OK is false; Retryable marks leadership gaps the
	// client may simply retry through (a standby is taking over).
	Err       string          `json:"err,omitempty"`
	Retryable bool            `json:"retryable,omitempty"`
	Status    *StatusSnapshot `json:"status,omitempty"`
	Catalogue []string        `json:"catalogue,omitempty"`
}

// rpcState tracks the service's RPC listener.
type rpcState struct {
	srv *transport.TCPServer
}

func (s *Service) startRPC() error {
	if s.cfg.RPCAddr == "" {
		return nil
	}
	srv, err := transport.NewTCPServerOn(s.cfg.RPCAddr, s.handleRPC)
	if err != nil {
		return err
	}
	s.rpcState.srv = srv
	return nil
}

// RPCAddr returns the RPC listen address ("" when disabled).
func (s *Service) RPCAddr() string {
	if s.rpcState.srv == nil {
		return ""
	}
	return s.rpcState.srv.Addr()
}

func (s *Service) handleRPC(dst, req []byte) []byte {
	var q rpcRequest
	resp := rpcResponse{OK: true}
	if err := json.Unmarshal(req, &q); err != nil {
		resp = errResponse(fmt.Errorf("fleet: bad request: %w", err))
	} else {
		resp = s.dispatchRPC(q)
	}
	out, err := encodeInto(dst[:0], &resp)
	if err != nil {
		return append(dst[:0], `{"ok":false,"err":"fleet: response marshal failed"}`...)
	}
	return out
}

func (s *Service) dispatchRPC(q rpcRequest) rpcResponse {
	switch q.Op {
	case "ping":
		return rpcResponse{OK: true}
	case "submit":
		if err := s.Submit(q.Task); err != nil {
			return errResponse(err)
		}
		return rpcResponse{OK: true}
	case "retire":
		if err := s.Retire(q.Task); err != nil {
			return errResponse(err)
		}
		return rpcResponse{OK: true}
	case "status":
		st, err := s.Status()
		if err != nil {
			return errResponse(err)
		}
		return rpcResponse{OK: true, Status: st}
	case "catalogue":
		return rpcResponse{OK: true, Catalogue: tasks.Names()}
	default:
		return errResponse(fmt.Errorf("fleet: unknown op %q", q.Op))
	}
}

func errResponse(err error) rpcResponse {
	return rpcResponse{
		OK:        false,
		Err:       err.Error(),
		Retryable: errors.Is(err, ErrNoLeader),
	}
}

// Client is an operator-side RPC client for a running fleetd. Requests
// encode into a client-owned reusable buffer (mu serializes calls, as
// the underlying Conn would anyway).
type Client struct {
	conn transport.Conn
	mu   sync.Mutex
	enc  []byte
}

// Dial connects to a fleetd RPC endpoint.
func Dial(addr string) (*Client, error) {
	conn, err := transport.DialTCP(addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(q rpcRequest) (rpcResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	enc, err := encodeInto(c.enc[:0], &q)
	if err != nil {
		return rpcResponse{}, err
	}
	c.enc = enc
	// raw aliases the connection's receive arena: decode before the
	// next call (we hold mu, so that is guaranteed).
	raw, err := c.conn.Call(c.enc)
	if err != nil {
		return rpcResponse{}, err
	}
	var resp rpcResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return rpcResponse{}, fmt.Errorf("fleet: bad response: %w", err)
	}
	return resp, nil
}

// retryableError marks a server-reported condition the caller may wait
// out (no leader during failover).
type retryableError struct{ msg string }

func (e retryableError) Error() string { return e.msg }

// IsRetryable reports whether err is a transient leadership gap.
func IsRetryable(err error) bool {
	var re retryableError
	return errors.As(err, &re)
}

func (c *Client) do(q rpcRequest) (rpcResponse, error) {
	resp, err := c.call(q)
	if err != nil {
		return resp, err
	}
	if !resp.OK {
		if resp.Retryable {
			return resp, retryableError{msg: resp.Err}
		}
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// Ping round-trips a no-op.
func (c *Client) Ping() error {
	_, err := c.do(rpcRequest{Op: "ping"})
	return err
}

// Submit deploys a catalogue task on the fleet.
func (c *Client) Submit(task string) error {
	_, err := c.do(rpcRequest{Op: "submit", Task: task})
	return err
}

// Retire undeploys a task.
func (c *Client) Retire(task string) error {
	_, err := c.do(rpcRequest{Op: "retire", Task: task})
	return err
}

// Status fetches the service status snapshot.
func (c *Client) Status() (*StatusSnapshot, error) {
	resp, err := c.do(rpcRequest{Op: "status"})
	if err != nil {
		return nil, err
	}
	return resp.Status, nil
}

// Catalogue lists the Tab. I tasks the fleet can run.
func (c *Client) Catalogue() ([]string, error) {
	resp, err := c.do(rpcRequest{Op: "catalogue"})
	if err != nil {
		return nil, err
	}
	return resp.Catalogue, nil
}

// SubmitWait submits with retries across leadership gaps: while the
// server answers "no leader", it backs off and retries until the
// deadline — the client half of surviving a failover without losing
// the task.
func (c *Client) SubmitWait(task string, deadline time.Duration) error {
	return c.retryWait(deadline, func() error { return c.Submit(task) })
}

// RetireWait retires with the same retry behavior as SubmitWait.
func (c *Client) RetireWait(task string, deadline time.Duration) error {
	return c.retryWait(deadline, func() error { return c.Retire(task) })
}

func (c *Client) retryWait(deadline time.Duration, op func() error) error {
	start := time.Now()
	for {
		err := op()
		if err == nil || !IsRetryable(err) {
			return err
		}
		if time.Since(start) > deadline {
			return fmt.Errorf("fleet: gave up after %v: %w", deadline, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
