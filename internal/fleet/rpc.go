package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"farm/internal/tasks"
	"farm/internal/transport"
)

// The operator RPC rides the transport package's length-prefixed TCP
// framing (the Fig. 10 socket path) with JSON payloads: one request
// frame in, one response frame out, concurrent across connections.
//
// Ops: ping, submit <task>, retire <task>, status, catalogue.

type rpcRequest struct {
	Op   string `json:"op"`
	Task string `json:"task,omitempty"`
}

type rpcResponse struct {
	OK bool `json:"ok"`
	// Err is set when OK is false; Retryable marks leadership gaps the
	// client may simply retry through (a standby is taking over).
	Err       string          `json:"err,omitempty"`
	Retryable bool            `json:"retryable,omitempty"`
	Status    *StatusSnapshot `json:"status,omitempty"`
	Catalogue []string        `json:"catalogue,omitempty"`
}

// rpcState tracks the service's RPC listener.
type rpcState struct {
	srv *transport.TCPServer
}

func (s *Service) startRPC() error {
	if s.cfg.RPCAddr == "" {
		return nil
	}
	srv, err := transport.NewTCPServerOn(s.cfg.RPCAddr, s.handleRPC)
	if err != nil {
		return err
	}
	s.rpcState.srv = srv
	return nil
}

// RPCAddr returns the RPC listen address ("" when disabled).
func (s *Service) RPCAddr() string {
	if s.rpcState.srv == nil {
		return ""
	}
	return s.rpcState.srv.Addr()
}

func (s *Service) handleRPC(req []byte) []byte {
	var q rpcRequest
	resp := rpcResponse{OK: true}
	if err := json.Unmarshal(req, &q); err != nil {
		resp = errResponse(fmt.Errorf("fleet: bad request: %w", err))
	} else {
		resp = s.dispatchRPC(q)
	}
	out, err := json.Marshal(resp)
	if err != nil {
		out = []byte(`{"ok":false,"err":"fleet: response marshal failed"}`)
	}
	return out
}

func (s *Service) dispatchRPC(q rpcRequest) rpcResponse {
	switch q.Op {
	case "ping":
		return rpcResponse{OK: true}
	case "submit":
		if err := s.Submit(q.Task); err != nil {
			return errResponse(err)
		}
		return rpcResponse{OK: true}
	case "retire":
		if err := s.Retire(q.Task); err != nil {
			return errResponse(err)
		}
		return rpcResponse{OK: true}
	case "status":
		st, err := s.Status()
		if err != nil {
			return errResponse(err)
		}
		return rpcResponse{OK: true, Status: st}
	case "catalogue":
		return rpcResponse{OK: true, Catalogue: tasks.Names()}
	default:
		return errResponse(fmt.Errorf("fleet: unknown op %q", q.Op))
	}
}

func errResponse(err error) rpcResponse {
	return rpcResponse{
		OK:        false,
		Err:       err.Error(),
		Retryable: errors.Is(err, ErrNoLeader),
	}
}

// Client is an operator-side RPC client for a running fleetd.
type Client struct {
	conn transport.Conn
}

// Dial connects to a fleetd RPC endpoint.
func Dial(addr string) (*Client, error) {
	conn, err := transport.DialTCP(addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(q rpcRequest) (rpcResponse, error) {
	req, err := json.Marshal(q)
	if err != nil {
		return rpcResponse{}, err
	}
	raw, err := c.conn.Call(req)
	if err != nil {
		return rpcResponse{}, err
	}
	var resp rpcResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return rpcResponse{}, fmt.Errorf("fleet: bad response: %w", err)
	}
	return resp, nil
}

// retryableError marks a server-reported condition the caller may wait
// out (no leader during failover).
type retryableError struct{ msg string }

func (e retryableError) Error() string { return e.msg }

// IsRetryable reports whether err is a transient leadership gap.
func IsRetryable(err error) bool {
	var re retryableError
	return errors.As(err, &re)
}

func (c *Client) do(q rpcRequest) (rpcResponse, error) {
	resp, err := c.call(q)
	if err != nil {
		return resp, err
	}
	if !resp.OK {
		if resp.Retryable {
			return resp, retryableError{msg: resp.Err}
		}
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// Ping round-trips a no-op.
func (c *Client) Ping() error {
	_, err := c.do(rpcRequest{Op: "ping"})
	return err
}

// Submit deploys a catalogue task on the fleet.
func (c *Client) Submit(task string) error {
	_, err := c.do(rpcRequest{Op: "submit", Task: task})
	return err
}

// Retire undeploys a task.
func (c *Client) Retire(task string) error {
	_, err := c.do(rpcRequest{Op: "retire", Task: task})
	return err
}

// Status fetches the service status snapshot.
func (c *Client) Status() (*StatusSnapshot, error) {
	resp, err := c.do(rpcRequest{Op: "status"})
	if err != nil {
		return nil, err
	}
	return resp.Status, nil
}

// Catalogue lists the Tab. I tasks the fleet can run.
func (c *Client) Catalogue() ([]string, error) {
	resp, err := c.do(rpcRequest{Op: "catalogue"})
	if err != nil {
		return nil, err
	}
	return resp.Catalogue, nil
}

// SubmitWait submits with retries across leadership gaps: while the
// server answers "no leader", it backs off and retries until the
// deadline — the client half of surviving a failover without losing
// the task.
func (c *Client) SubmitWait(task string, deadline time.Duration) error {
	return c.retryWait(deadline, func() error { return c.Submit(task) })
}

// RetireWait retires with the same retry behavior as SubmitWait.
func (c *Client) RetireWait(task string, deadline time.Duration) error {
	return c.retryWait(deadline, func() error { return c.Retire(task) })
}

func (c *Client) retryWait(deadline time.Duration, op func() error) error {
	start := time.Now()
	for {
		err := op()
		if err == nil || !IsRetryable(err) {
			return err
		}
		if time.Since(start) > deadline {
			return fmt.Errorf("fleet: gave up after %v: %w", deadline, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
