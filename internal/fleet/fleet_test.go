package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// testConfig is a small, fast service shape shared by the tests:
// loopback listeners on ephemeral ports, quick heartbeats so failover
// drills finish in tens of milliseconds, and background traffic on so
// the control plane is exercised over a busy fabric.
func testConfig() Config {
	return Config{
		Spines: 2, Leaves: 3, HostsPerLeaf: 4,
		Traffic:           true,
		HeartbeatInterval: 10 * time.Millisecond,
		HTTPAddr:          "127.0.0.1:0",
		RPCAddr:           "127.0.0.1:0",
	}
}

func startService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Stop() })
	return s
}

// waitReady polls Ready until it holds or the deadline passes,
// returning how long it took.
func waitReady(t *testing.T, s *Service, deadline time.Duration) time.Duration {
	t.Helper()
	start := time.Now()
	for time.Since(start) < deadline {
		if s.Ready() {
			return time.Since(start)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("service not ready after %v", deadline)
	return 0
}

func httpGet(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestFleetLifecycle boots the daemon core, drives it over both
// operator surfaces (HTTP and RPC), shuts it down cleanly, and checks
// no goroutine outlives the service.
func TestFleetLifecycle(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := startService(t, testConfig())
	waitReady(t, s, 2*time.Second)

	client := &http.Client{}
	defer client.CloseIdleConnections()
	base := "http://" + s.HTTPAddr()

	// healthz: ready, bootstrap leader, term 1.
	var hz healthzPayload
	if code := httpGet(t, client, base+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz: code %d", code)
	}
	if !hz.Ready || hz.Leader != "seeder-a" || hz.Term != 1 {
		t.Fatalf("healthz: %+v", hz)
	}

	// RPC roundtrip: ping, submit, status, retire.
	c, err := Dial(s.RPCAddr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	cat, err := c.Catalogue()
	if err != nil || len(cat) == 0 {
		t.Fatalf("Catalogue: %v (%d tasks)", err, len(cat))
	}
	if err := c.Submit("hh"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := c.Submit("hh"); err != nil {
		t.Fatalf("idempotent Submit: %v", err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if len(st.Tasks) != 1 || st.Tasks[0].Name != "hh" || st.Tasks[0].Seeds == 0 {
		t.Fatalf("status after submit: %+v", st)
	}

	// HTTP mutation path: POST /tasks, /tasks listing, DELETE.
	resp, err := client.Post(base+"/tasks", "application/json", strings.NewReader(`{"name":"syn-flood"}`))
	if err != nil {
		t.Fatalf("POST /tasks: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /tasks: code %d", resp.StatusCode)
	}
	var listed StatusSnapshot
	httpGet(t, client, base+"/tasks", &listed)
	if len(listed.Tasks) != 2 {
		t.Fatalf("GET /tasks: want 2 tasks, got %+v", listed.Tasks)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/tasks/syn-flood", nil)
	dresp, err := client.Do(req)
	if err != nil {
		t.Fatalf("DELETE /tasks: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /tasks: code %d", dresp.StatusCode)
	}

	// Metrics reflect a live fabric: traffic flowing, one task placed.
	time.Sleep(50 * time.Millisecond)
	var m MetricsSnapshot
	httpGet(t, client, base+"/metrics", &m)
	if m.Tasks != 1 || m.PlacedSeeds == 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.Delivered == 0 {
		t.Fatalf("metrics: no traffic delivered")
	}

	if err := c.Retire("hh"); err != nil {
		t.Fatalf("Retire: %v", err)
	}
	if err := c.Retire("hh"); err != nil {
		t.Fatalf("idempotent Retire: %v", err)
	}

	// Drain: submissions refused, reads still served.
	s.Drain()
	if err := s.Submit("hh"); err != ErrDraining {
		t.Fatalf("submit while draining: %v", err)
	}
	if code := httpGet(t, client, base+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: code %d", code)
	}
	if _, err := s.Status(); err != nil {
		t.Fatalf("status while draining: %v", err)
	}

	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := s.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}

	// Post-stop: mutations fail fast rather than hanging.
	if err := s.Retire("hh"); err == nil {
		t.Fatalf("retire after stop: want error")
	}

	// Goroutine-leak check: allow the netpoller and closed connections a
	// moment to unwind.
	client.CloseIdleConnections()
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetFailover kills the active replica and checks the standby
// takes over within the heartbeat-timeout bound with no task loss.
func TestFleetFailover(t *testing.T) {
	cfg := testConfig()
	s := startService(t, cfg)
	waitReady(t, s, 2*time.Second)

	for _, task := range []string{"hh", "syn-flood", "port-scan"} {
		if err := s.Submit(task); err != nil {
			t.Fatalf("Submit %s: %v", task, err)
		}
	}
	digestBefore, err := s.PlacementDigest()
	if err != nil {
		t.Fatalf("digest: %v", err)
	}

	if err := s.KillLeader(); err != nil {
		t.Fatalf("KillLeader: %v", err)
	}
	if s.Ready() {
		t.Fatalf("ready immediately after leader kill")
	}

	// The standby must notice heartbeat silence and finish its takeover
	// replan within the timeout plus a few detection intervals (wide
	// wall-clock slack for race-mode scheduling).
	bound := s.cfg.HeartbeatTimeout + 10*s.cfg.HeartbeatInterval + 2*time.Second
	gap := waitReady(t, s, bound)
	t.Logf("failover: ready again after %v (bound %v)", gap, bound)

	name, term, ok := s.Leader()
	if !ok || name != "seeder-b" || term != 2 {
		t.Fatalf("leader after failover: %s term=%d ok=%v", name, term, ok)
	}
	if s.Takeovers() != 1 {
		t.Fatalf("takeovers: %d", s.Takeovers())
	}

	names, err := s.TaskNames()
	if err != nil {
		t.Fatalf("TaskNames: %v", err)
	}
	if fmt.Sprint(names) != "[hh port-scan syn-flood]" {
		t.Fatalf("tasks after failover: %v", names)
	}
	digestAfter, err := s.PlacementDigest()
	if err != nil {
		t.Fatalf("digest: %v", err)
	}
	if digestBefore == "" || digestAfter == "" {
		t.Fatalf("empty digest")
	}

	// The new leader accepts mutations.
	if err := s.Submit("entropy"); err != nil {
		t.Fatalf("submit on new leader: %v", err)
	}
	if err := s.Retire("entropy"); err != nil {
		t.Fatalf("retire on new leader: %v", err)
	}

	// A second kill exhausts the pair: no third replica exists.
	if err := s.KillLeader(); err != nil {
		t.Fatalf("second KillLeader: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := s.Submit("hh-sketch"); err == nil {
		t.Fatalf("submit with both replicas dead: want error")
	}
}
