package fleet

import (
	"time"

	"farm/internal/engine"
	"farm/internal/transport/bus"
)

// Control-bus topics of the active/standby pair. The active replica
// publishes heartbeats and task-state deltas; both replicas subscribe,
// so the standby mirrors the task set and watches for leader silence.
const (
	topicHeartbeat = "fleet.heartbeat"
	topicState     = "fleet.state"
)

// hbMsg is one heartbeat.
type hbMsg struct {
	Leader string
	Term   uint64
}

// stateDelta is one mirrored task-state change.
type stateDelta struct {
	Op   string // "add" | "remove"
	Task string
}

type replicaRole int

const (
	roleStandby replicaRole = iota
	roleActive
	roleDead
)

func (r replicaRole) String() string {
	switch r {
	case roleActive:
		return "active"
	case roleStandby:
		return "standby"
	default:
		return "dead"
	}
}

// Replica is one control instance of the active/standby seeder pair.
// All of its state is owned by the engine goroutine: role transitions,
// mirror updates, and heartbeat bookkeeping happen inside events, so
// the failure detector and the mutation path can never race.
type Replica struct {
	svc  *Service
	name string
	role replicaRole

	// mirror is this replica's copy of the deployed-task set, kept in
	// sync by the state deltas the active replica publishes. On
	// promotion it is reconciled against the fabric's surviving state.
	mirror map[string]struct{}

	// lastHB is the engine time of the last heartbeat heard from the
	// other replica (zero until the first one).
	lastHB time.Duration

	hbTick  interface{ Stop() }
	monTick interface{ Stop() }
	unsub   []func()
}

func newReplica(s *Service, name string) *Replica {
	return &Replica{svc: s, name: name, mirror: map[string]struct{}{}}
}

// wire subscribes the replica to the control-bus topics. Runs before
// the drive loop starts (or on the engine goroutine).
func (r *Replica) wire() {
	r.unsub = append(r.unsub,
		r.svc.broker.Subscribe(topicHeartbeat, r.onHeartbeat),
		r.svc.broker.Subscribe(topicState, r.onState),
	)
}

func (r *Replica) onHeartbeat(m bus.Message) {
	hb, ok := m.Payload.(hbMsg)
	if !ok || hb.Leader == r.name || r.role == roleDead {
		return
	}
	r.lastHB = r.svc.rt.Now()
}

func (r *Replica) onState(m bus.Message) {
	d, ok := m.Payload.(stateDelta)
	if !ok || r.role == roleDead {
		return
	}
	switch d.Op {
	case "add":
		r.mirror[d.Task] = struct{}{}
	case "remove":
		delete(r.mirror, d.Task)
	}
}

// promote makes the replica the active leader. On a takeover it first
// reconciles its mirrored task set against the fabric's surviving
// state — re-admitting any task whose deployment died with the old
// leader and adopting any it missed — and then forces a full placement
// replan, the warm-start machinery's recovery path.
func (r *Replica) promote(takeover bool, reason string) {
	s := r.svc
	r.role = roleActive
	if r.monTick != nil {
		r.monTick.Stop()
		r.monTick = nil
	}
	s.term++
	if takeover {
		s.takeovers++
		s.takeoversA.Store(s.takeovers)
	}
	s.leader = r

	if takeover {
		for _, name := range sortedKeys(r.mirror) {
			if s.sd.HasTask(name) {
				continue
			}
			spec, err := CatalogueSpec(name, s)
			if err != nil {
				s.cfg.Logf("fleet: %s takeover: mirrored task %s: %v", r.name, name, err)
				delete(r.mirror, name)
				continue
			}
			if err := s.sd.AddTask(spec); err != nil {
				s.cfg.Logf("fleet: %s takeover: re-admit %s: %v", r.name, name, err)
				delete(r.mirror, name)
			}
		}
		for _, name := range s.sd.TaskNames() {
			r.mirror[name] = struct{}{}
		}
		if err := s.sd.Reoptimize(); err != nil {
			s.cfg.Logf("fleet: %s takeover: forced-full replan: %v", r.name, err)
		}
		s.audit = append(s.audit, AuditEntry{
			Seq: len(s.audit), At: s.rt.Now(), Term: s.term, Op: "takeover", Arg: r.name + ": " + reason,
		})
	}

	// Leadership becomes visible to the fast paths only once the
	// takeover replan has run, so "ready" implies a consistent fabric.
	s.leaderView.Store(&leaderInfo{name: r.name, term: s.term})
	r.heartbeat()
	r.hbTick = s.rt.Every(s.cfg.HeartbeatInterval, r.heartbeat)
	s.cfg.Logf("fleet: %s promoted to leader (term %d, %s)", r.name, s.term, reason)
}

// standby arms the failure detector.
func (r *Replica) standby() {
	r.role = roleStandby
	r.monTick = r.svc.rt.Every(r.svc.cfg.HeartbeatInterval, r.monitor)
}

func (r *Replica) heartbeat() {
	if r.role != roleActive {
		return
	}
	r.svc.broker.Publish(topicHeartbeat, hbMsg{Leader: r.name, Term: r.svc.term})
}

// monitor is the standby's failure detector. A stale heartbeat makes
// the replica *suspect* leader loss; it confirms with a zero-delay
// re-check so that heartbeat deliveries already queued behind a stalled
// run loop (their deadlines predate this event's) get to land first —
// a slow engine must not masquerade as a dead leader.
func (r *Replica) monitor() {
	if r.role != roleStandby {
		return
	}
	now := r.svc.rt.Now()
	if r.lastHB == 0 {
		// Startup grace: begin the clock at the first observation.
		r.lastHB = now
		return
	}
	if now-r.lastHB <= r.svc.cfg.HeartbeatTimeout {
		return
	}
	engine.ScheduleOn(r.svc.rt, 0, func() {
		if r.role != roleStandby {
			return
		}
		if r.svc.rt.Now()-r.lastHB <= r.svc.cfg.HeartbeatTimeout {
			return
		}
		r.promote(true, "heartbeat timeout")
	})
}

// kill stops the replica dead: no more heartbeats, no more mutations.
// The standby notices via heartbeat silence and takes over.
func (r *Replica) kill() {
	s := r.svc
	r.role = roleDead
	if r.hbTick != nil {
		r.hbTick.Stop()
		r.hbTick = nil
	}
	if r.monTick != nil {
		r.monTick.Stop()
		r.monTick = nil
	}
	for _, u := range r.unsub {
		u()
	}
	r.unsub = nil
	if s.leader == r {
		s.leader = nil
		s.leaderView.Store(nil)
	}
	s.cfg.Logf("fleet: %s killed", r.name)
}

// shutdown quiesces timers and subscriptions for service stop.
func (r *Replica) shutdown() {
	if r.hbTick != nil {
		r.hbTick.Stop()
		r.hbTick = nil
	}
	if r.monTick != nil {
		r.monTick.Stop()
		r.monTick = nil
	}
	for _, u := range r.unsub {
		u()
	}
	r.unsub = nil
	r.role = roleDead
}

// submit admits one catalogue task and mirrors the addition.
func (r *Replica) submit(name string) error {
	s := r.svc
	if s.sd.HasTask(name) {
		return nil
	}
	spec, err := CatalogueSpec(name, s)
	if err != nil {
		return err
	}
	if err := s.sd.AddTask(spec); err != nil {
		return err
	}
	s.broker.Publish(topicState, stateDelta{Op: "add", Task: name})
	return nil
}

// retire removes one task and mirrors the removal.
func (r *Replica) retire(name string) error {
	s := r.svc
	if !s.sd.HasTask(name) {
		return nil
	}
	if err := s.sd.RemoveTask(name); err != nil {
		return err
	}
	s.broker.Publish(topicState, stateDelta{Op: "remove", Task: name})
	return nil
}
