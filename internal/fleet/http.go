package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// The HTTP operator API (the monitoring-server role of a production
// collector):
//
//	GET    /healthz        readiness: leader present, not draining
//	GET    /metrics        MetricsSnapshot (NetMeter lanes, wire, placement)
//	GET    /tasks          StatusSnapshot (deployed tasks + placements)
//	POST   /tasks          {"name": "<catalogue task>"} → submit
//	DELETE /tasks/{name}   retire
//	POST   /failover       kill the active replica (failover drill)
//	POST   /drain          stop admitting new tasks
//
// Reads are snapshots taken on the engine goroutine; mutations go
// through the same single-writer path as the RPC ops.

type httpState struct {
	srv *http.Server
	ln  net.Listener
}

func (s *Service) startHTTP() error {
	if s.cfg.HTTPAddr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /tasks", s.handleTasksGet)
	mux.HandleFunc("POST /tasks", s.handleTaskSubmit)
	mux.HandleFunc("DELETE /tasks/{name}", s.handleTaskRetire)
	mux.HandleFunc("POST /failover", s.handleFailover)
	mux.HandleFunc("POST /drain", s.handleDrain)
	s.httpState.ln = ln
	s.httpState.srv = &http.Server{Handler: mux}
	go func() {
		if err := s.httpState.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.cfg.Logf("fleet: http server: %v", err)
		}
	}()
	return nil
}

func (s *Service) stopHTTP() {
	if s.httpState.srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.httpState.srv.Shutdown(ctx); err != nil {
		s.stopErr = errors.Join(s.stopErr, err)
	}
}

// HTTPAddr returns the HTTP listen address ("" when disabled).
func (s *Service) HTTPAddr() string {
	if s.httpState.ln == nil {
		return ""
	}
	return s.httpState.ln.Addr().String()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNoLeader):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrDraining):
		code = http.StatusConflict
	case errors.Is(err, ErrStopped):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// healthzPayload is the /healthz body.
type healthzPayload struct {
	Ready    bool   `json:"ready"`
	Leader   string `json:"leader,omitempty"`
	Term     uint64 `json:"term"`
	Draining bool   `json:"draining"`
}

// handleHealthz answers from lock-free state only — it must stay
// responsive while the engine goroutine is busy, and it must go
// not-ready the instant the leader dies and ready again the instant
// the standby finishes its takeover replan.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	name, term, ok := s.Leader()
	p := healthzPayload{Ready: ok && !s.draining.Load(), Leader: name, Term: term, Draining: s.draining.Load()}
	code := http.StatusOK
	if !p.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, p)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m, err := s.Metrics()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Service) handleTasksGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleTaskSubmit(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Name == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": `body must be {"name": "<task>"}`})
		return
	}
	if err := s.Submit(body.Name); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"submitted": body.Name})
}

func (s *Service) handleTaskRetire(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.Retire(name); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"retired": name})
}

func (s *Service) handleFailover(w http.ResponseWriter, r *http.Request) {
	if err := s.KillLeader(); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": fmt.Sprintf("leader killed; standby takes over within %v", s.cfg.HeartbeatTimeout+2*s.cfg.HeartbeatInterval)})
}

func (s *Service) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.Drain()
	writeJSON(w, http.StatusOK, map[string]string{"status": "draining"})
}
