// Package fleet turns the batch-experiment reproduction into a
// long-lived fleet service: a Service boots a fabric on the wall-clock
// engine, runs background traffic, and serves the seeder's task
// lifecycle (compile → analyze → place → install, the pipeline farmctl
// fronts) to concurrent operators over HTTP and the transport package's
// TCP RPC.
//
// Concurrency model — the single-writer loop. The fabric, soils, and
// seeder are written for a single execution context: every mutation
// happens inside an event callback on the engine's driving goroutine.
// The Service keeps that invariant under concurrent clients by funneling
// every operator mutation through exec(), which schedules the operation
// as an immediate event on the real-time engine and waits for it. RPC
// and HTTP handlers therefore never touch the seeder directly; they
// enqueue, the engine goroutine applies, and the reply carries the
// result back. An audit log (one entry per applied mutation, in
// application order) makes the serialization checkable: replaying the
// log serially against a fresh fabric must reproduce the placement
// digest byte-for-byte.
//
// Survivability — the active/standby seeder pair. Two control replicas
// ride on the service. The active one owns task admission and publishes
// heartbeats and task-state deltas on the control bus; the standby
// mirrors the task set and watches the heartbeats. When heartbeats go
// quiet past the timeout the standby promotes itself: it reconciles its
// mirror against the fabric's surviving state and forces a full
// placement replan (the warm-start machinery's recovery path). See
// docs/fleetd.md.
package fleet

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/harvest"
	"farm/internal/netmodel"
	"farm/internal/seeder"
	"farm/internal/soil"
	"farm/internal/tasks"
	"farm/internal/traffic"
	"farm/internal/transport/bus"

	"farm/internal/core"
)

// Fleet-service errors surfaced to operators. ErrNoLeader is
// retryable: a standby is about to take over.
var (
	ErrStopped  = errors.New("fleet: service stopped")
	ErrDraining = errors.New("fleet: service draining, not accepting tasks")
	ErrNoLeader = errors.New("fleet: no active seeder replica (failover in progress)")
)

// Config shapes a Service.
type Config struct {
	// FatTreeK, when > 0, boots a k-ary fat-tree fabric; otherwise a
	// Spines×Leaves spine-leaf is built.
	FatTreeK int
	// Spines/Leaves/HostsPerLeaf shape the spine-leaf fabric (defaults
	// 2/4/8). HostsPerLeaf also applies to fat-tree edge switches.
	Spines, Leaves, HostsPerLeaf int
	// Traffic starts the background attack-cocktail workload.
	Traffic bool
	// TrafficSeed seeds the generator (0 means 1).
	TrafficSeed int64
	// HeartbeatInterval is the active replica's heartbeat period
	// (default 50 ms); HeartbeatTimeout is how long the standby waits
	// before suspecting leader loss (default 5× the interval).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// LeafCapacity/SpineCapacity override the per-switch resource models
	// (nil = the netmodel defaults). The soak harness uses generous
	// capacities so the whole catalogue can be live at once; the default
	// AS5712/AS7712-class models fit only a few Tab. I tasks per switch.
	LeafCapacity  netmodel.Resources
	SpineCapacity netmodel.Resources
	// PlacementParallel is the seeder's step-3 LP worker count.
	PlacementParallel int
	// ReoptimizeInterval, when > 0, re-runs global placement
	// periodically on the live fabric.
	ReoptimizeInterval time.Duration
	// HTTPAddr/RPCAddr are listen addresses ("" disables that server;
	// ":0" picks a free port, reported by HTTPAddr()/RPCAddr()).
	HTTPAddr string
	RPCAddr  string
	Logf     func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Spines == 0 {
		c.Spines = 2
	}
	if c.Leaves == 0 {
		c.Leaves = 4
	}
	if c.HostsPerLeaf == 0 {
		c.HostsPerLeaf = 8
	}
	if c.TrafficSeed == 0 {
		c.TrafficSeed = 1
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 5 * c.HeartbeatInterval
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// AuditEntry is one applied mutation of the single-writer loop.
type AuditEntry struct {
	Seq  int           `json:"seq"`
	At   time.Duration `json:"at"`
	Term uint64        `json:"term"`
	Op   string        `json:"op"`
	Arg  string        `json:"arg,omitempty"`
	Err  string        `json:"err,omitempty"`
}

// leaderInfo is the lock-free view of the current leadership the fast
// paths (healthz) read.
type leaderInfo struct {
	name string
	term uint64
}

// Service is the long-lived fleet daemon core.
type Service struct {
	cfg    Config
	rt     *engine.RealTime
	fab    *fabric.Fabric
	sd     *seeder.Seeder
	broker *bus.Broker

	// Engine-goroutine-owned state (touched only inside exec'd events
	// or during single-threaded wiring before the drive loop starts).
	replicas  []*Replica
	leader    *Replica
	term      uint64
	takeovers uint64
	audit     []AuditEntry

	leaderView   atomic.Pointer[leaderInfo]
	takeoversA   atomic.Uint64
	draining     atomic.Bool
	harvestCount atomic.Uint64

	trafficStops []func()

	httpState httpState
	rpcState  rpcState

	started   bool
	driveDone chan struct{}
	stopOnce  sync.Once
	stopErr   error

	fabricDesc string
}

// New builds a Service (fabric, seeder, broker, replicas) without
// starting any goroutine or listener; Start brings it up.
func New(cfg Config) (*Service, error) {
	cfg.fill()
	var topo *netmodel.Topology
	var err error
	if cfg.FatTreeK > 0 {
		topo, err = netmodel.FatTree(netmodel.FatTreeOptions{
			K: cfg.FatTreeK, HostsPerEdge: cfg.HostsPerLeaf,
			EdgeCapacity: cfg.LeafCapacity, AggCapacity: cfg.SpineCapacity,
		})
	} else {
		topo, err = netmodel.SpineLeaf(netmodel.SpineLeafOptions{
			Spines: cfg.Spines, Leaves: cfg.Leaves, HostsPerLeaf: cfg.HostsPerLeaf,
			LeafCapacity: cfg.LeafCapacity, SpineCapacity: cfg.SpineCapacity,
		})
	}
	if err != nil {
		return nil, err
	}
	rt := engine.NewRealTime()
	fab := fabric.New(topo, rt, fabric.Options{})
	sd := seeder.New(fab, seeder.Options{
		PlacementParallel: cfg.PlacementParallel,
		Logf:              cfg.Logf,
	})
	s := &Service{
		cfg:       cfg,
		rt:        rt,
		fab:       fab,
		sd:        sd,
		broker:    bus.New(rt, nil),
		driveDone: make(chan struct{}),
	}
	// Bound control-plane fan-out queues so a wedged subscriber degrades
	// into counted drops (surfaced via /metrics) instead of unbounded
	// memory growth; see docs/transport.md for the policy.
	s.broker.SetQueueLimit(4096)
	s.replicas = []*Replica{
		newReplica(s, "seeder-a"),
		newReplica(s, "seeder-b"),
	}
	if cfg.FatTreeK > 0 {
		s.fabricDesc = fmt.Sprintf("fat-tree k=%d (%d switches, %d hosts)",
			cfg.FatTreeK, topo.NumSwitches(), len(topo.Hosts()))
	} else {
		s.fabricDesc = fmt.Sprintf("spine-leaf %dx%d (%d switches, %d hosts)",
			cfg.Spines, cfg.Leaves, topo.NumSwitches(), len(topo.Hosts()))
	}
	return s, nil
}

// FabricDesc describes the booted fabric for banners and status lines.
func (s *Service) FabricDesc() string { return s.fabricDesc }

// Fabric exposes the live fabric (tests, metrics wiring).
func (s *Service) Fabric() *fabric.Fabric { return s.fab }

// Seeder exposes the underlying seeder. Mutations must go through the
// service's operator API — direct calls break the single-writer
// contract.
func (s *Service) Seeder() *seeder.Seeder { return s.sd }

// Start boots the service: replica bootstrap (seeder-a leads, seeder-b
// stands by), background traffic, the drive loop, and the HTTP/RPC
// listeners.
func (s *Service) Start() error {
	if s.started {
		return errors.New("fleet: already started")
	}
	s.started = true

	// Pre-drive wiring runs single-threaded: no event executes until
	// the drive goroutine starts.
	for _, r := range s.replicas {
		r.wire()
	}
	s.replicas[0].promote(false, "bootstrap")
	s.replicas[1].standby()

	if s.cfg.Traffic {
		s.startTraffic()
	}
	if iv := s.cfg.ReoptimizeInterval; iv > 0 {
		tk := s.rt.Every(iv, func() {
			if s.leader == nil {
				return
			}
			if err := s.sd.Reoptimize(); err != nil {
				s.cfg.Logf("fleet: periodic reoptimize: %v", err)
			}
		})
		s.trafficStops = append(s.trafficStops, tk.Stop)
	}

	go s.drive()

	if err := s.startRPC(); err != nil {
		s.Stop()
		return err
	}
	if err := s.startHTTP(); err != nil {
		s.Stop()
		return err
	}
	return nil
}

// drive is the engine goroutine: the single writer every mutation runs
// on. It sleeps between event deadlines and exits when the engine is
// closed by Stop.
func (s *Service) drive() {
	defer close(s.driveDone)
	const forever = time.Duration(1) << 62
	s.rt.RunUntil(forever)
}

// exec runs fn as an immediate event on the engine goroutine and waits
// for it — the only door into the seeder, fabric, broker, and replica
// state once the service is running.
func (s *Service) exec(fn func()) error {
	done := make(chan struct{})
	engine.ScheduleOn(s.rt, 0, func() {
		fn()
		close(done)
	})
	select {
	case <-done:
		return nil
	case <-s.driveDone:
		// The drive loop exited; the event either ran just before the
		// loop closed or will never run.
		select {
		case <-done:
			return nil
		default:
			return ErrStopped
		}
	}
}

// apply is exec plus an audit-log entry: every operator mutation lands
// here so the applied order is recorded for serial replay.
func (s *Service) apply(op, arg string, fn func() error) error {
	var opErr error
	err := s.exec(func() {
		opErr = fn()
		e := AuditEntry{
			Seq: len(s.audit), At: s.rt.Now(), Term: s.term, Op: op, Arg: arg,
		}
		if opErr != nil {
			e.Err = opErr.Error()
		}
		s.audit = append(s.audit, e)
	})
	if err != nil {
		return err
	}
	return opErr
}

// AuditLog snapshots the applied-mutation log.
func (s *Service) AuditLog() ([]AuditEntry, error) {
	var out []AuditEntry
	err := s.exec(func() {
		out = append(out, s.audit...)
	})
	return out, err
}

// CatalogueSpec builds the seeder TaskSpec for one Tab. I catalogue
// task, with its default externals and harvester. The harvester is
// wrapped to count reports into the service's metrics when svc is
// non-nil.
func CatalogueSpec(name string, svc *Service) (seeder.TaskSpec, error) {
	d, err := tasks.ByName(name)
	if err != nil {
		return seeder.TaskSpec{}, err
	}
	var logic harvest.Logic
	if d.NewHarvester != nil {
		logic = d.NewHarvester()
	}
	if svc != nil {
		logic = countingLogic{inner: logic, n: &svc.harvestCount}
	}
	return seeder.TaskSpec{
		Name:      d.Name,
		Source:    d.Source,
		Machines:  d.Machines,
		Externals: d.DefaultExternals,
		Harvester: logic,
	}, nil
}

// countingLogic wraps a harvester to count delivered reports.
type countingLogic struct {
	inner harvest.Logic
	n     *atomic.Uint64
}

func (c countingLogic) OnStart(ctx harvest.Context) {
	if c.inner != nil {
		c.inner.OnStart(ctx)
	}
}

func (c countingLogic) OnSeedMessage(ctx harvest.Context, from soil.SeedRef, v core.Value) {
	c.n.Add(1)
	if c.inner != nil {
		c.inner.OnSeedMessage(ctx, from, v)
	}
}

// Submit deploys a Tab. I catalogue task on the live fabric through the
// active replica. Submitting an already-deployed task is a no-op
// success, which makes client retries across a failover idempotent.
func (s *Service) Submit(name string) error {
	if s.draining.Load() {
		return ErrDraining
	}
	return s.apply("submit", name, func() error {
		if s.leader == nil {
			return ErrNoLeader
		}
		return s.leader.submit(name)
	})
}

// Retire undeploys a task. Retiring an absent task is a no-op success.
func (s *Service) Retire(name string) error {
	return s.apply("retire", name, func() error {
		if s.leader == nil {
			return ErrNoLeader
		}
		return s.leader.retire(name)
	})
}

// FailSwitch fails a switch on the live fabric and re-places the
// surviving tasks; tasks that no longer fit are undeployed (and
// un-mirrored) as in seeder.FailSwitch.
func (s *Service) FailSwitch(id netmodel.SwitchID) (dropped []string, err error) {
	opErr := s.apply("fail-switch", fmt.Sprint(id), func() error {
		if s.leader == nil {
			return ErrNoLeader
		}
		var ferr error
		dropped, ferr = s.sd.FailSwitch(id)
		if ferr == nil {
			for _, t := range dropped {
				s.broker.Publish(topicState, stateDelta{Op: "remove", Task: t})
			}
		}
		return ferr
	})
	return dropped, opErr
}

// RecoverSwitch returns a failed switch to service.
func (s *Service) RecoverSwitch(id netmodel.SwitchID) error {
	return s.apply("recover-switch", fmt.Sprint(id), func() error {
		if s.leader == nil {
			return ErrNoLeader
		}
		return s.sd.RecoverSwitch(id)
	})
}

// KillLeader force-kills the active control replica (failover drills
// and the soak harness): it stops heartbeating and processing
// mutations, and the standby takes over after the heartbeat timeout.
func (s *Service) KillLeader() error {
	return s.apply("kill-leader", "", func() error {
		r := s.leader
		if r == nil {
			return ErrNoLeader
		}
		r.kill()
		return nil
	})
}

// Leader returns the lock-free leadership view: replica name, term, and
// whether a leader currently exists.
func (s *Service) Leader() (name string, term uint64, ok bool) {
	li := s.leaderView.Load()
	if li == nil {
		return "", 0, false
	}
	return li.name, li.term, true
}

// Takeovers counts standby promotions caused by leader loss.
func (s *Service) Takeovers() uint64 { return s.takeoversA.Load() }

// Ready reports whether the service can accept operator mutations: a
// leader exists and the service is not draining.
func (s *Service) Ready() bool {
	return !s.draining.Load() && s.leaderView.Load() != nil
}

// Drain stops admission of new tasks; running tasks, traffic, and reads
// keep working. Part of the drain-then-stop shutdown sequence.
func (s *Service) Drain() { s.draining.Store(true) }

// Stop shuts the service down: drain, close the RPC server (in-flight
// calls complete), shut the HTTP server down, stop traffic and replica
// timers on the engine goroutine, then close the engine and join the
// drive loop. Safe to call more than once.
func (s *Service) Stop() error {
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		if s.rpcState.srv != nil {
			s.stopErr = errors.Join(s.stopErr, s.rpcState.srv.Close())
		}
		s.stopHTTP()
		// Quiesce engine-owned periodic work before closing the engine:
		// ticker Stop must run on the engine goroutine.
		_ = s.exec(func() {
			for _, stop := range s.trafficStops {
				stop()
			}
			s.trafficStops = nil
			for _, r := range s.replicas {
				r.shutdown()
			}
			s.leader = nil
			s.leaderView.Store(nil)
		})
		s.stopErr = errors.Join(s.stopErr, s.rt.Close())
		<-s.driveDone
	})
	return s.stopErr
}

// startTraffic launches the background attack cocktail. Source and
// victim addresses are drawn from the topology's real hosts, so any
// fabric shape (spine-leaf or fat-tree) works; rates are modest — the
// point is a continuously busy fabric under the control plane, not a
// stress test.
func (s *Service) startTraffic() {
	hosts := s.fab.Topology().Hosts()
	if len(hosts) < 2 {
		return
	}
	gen := traffic.NewGenerator(s.fab, s.cfg.TrafficSeed)
	n := len(hosts)
	ip := func(i int) netip.Addr { return hosts[i%n].IP }
	s.trafficStops = append(s.trafficStops,
		gen.SYNFlood(ip(0), 8, 600),
		gen.PortScan(ip(n/2), ip(0), 150),
		gen.SuperSpreader(ip(n/3), 12, 300),
		gen.SSHBruteForce(ip(n-1), ip(1), 80),
		gen.DNSReflection(ip(2), 4, 200),
		gen.Slowloris(ip(3), 8, 20),
	)
}

// StatusSnapshot is the operator-facing service state (RPC status and
// the HTTP /tasks endpoint).
type StatusSnapshot struct {
	Now            time.Duration `json:"now"`
	Leader         string        `json:"leader"`
	Term           uint64        `json:"term"`
	Takeovers      uint64        `json:"takeovers"`
	Ready          bool          `json:"ready"`
	Draining       bool          `json:"draining"`
	Tasks          []TaskStatus  `json:"tasks"`
	FailedSwitches []int         `json:"failed_switches,omitempty"`
	Migrations     uint64        `json:"migrations"`
	HarvestReports uint64        `json:"harvest_reports"`
}

// TaskStatus is one deployed task's placement view.
type TaskStatus struct {
	Name     string            `json:"name"`
	Seeds    int               `json:"seeds"`
	Switches map[string]string `json:"switches"` // seed ID → switch name
}

// Status snapshots service state on the engine goroutine.
func (s *Service) Status() (*StatusSnapshot, error) {
	st := &StatusSnapshot{}
	err := s.exec(func() {
		st.Now = s.rt.Now()
		if s.leader != nil {
			st.Leader = s.leader.name
		}
		st.Term = s.term
		st.Takeovers = s.takeovers
		st.Migrations = s.sd.Migrations()
		for _, id := range s.sd.FailedSwitches() {
			st.FailedSwitches = append(st.FailedSwitches, int(id))
		}
		for _, name := range s.sd.TaskNames() {
			seeds := s.sd.TaskSeeds(name)
			st.Tasks = append(st.Tasks, TaskStatus{Name: name, Seeds: len(seeds), Switches: seeds})
		}
	})
	if err != nil {
		return nil, err
	}
	st.Ready = s.Ready()
	st.Draining = s.draining.Load()
	st.HarvestReports = s.harvestCount.Load()
	return st, nil
}

// MetricsSnapshot is the /metrics payload: engine, wire, and placement
// gauges of the live fabric.
type MetricsSnapshot struct {
	Now             time.Duration `json:"now"`
	PendingEvents   int           `json:"pending_events"`
	Lanes           []LaneStat    `json:"central_lanes"`
	CentralPackets  uint64        `json:"central_packets"`
	CentralBytes    uint64        `json:"central_bytes"`
	LaneImbalance   float64       `json:"lane_imbalance"`
	Delivered       uint64        `json:"delivered"`
	DroppedInFabric uint64        `json:"dropped_in_fabric"`
	Tasks           int           `json:"tasks"`
	PlacedSeeds     int           `json:"placed_seeds"`
	Migrations      uint64        `json:"migrations"`
	BusPublished    uint64        `json:"bus_published"`
	BusDelivered    uint64        `json:"bus_delivered"`
	BusCoalesced    uint64        `json:"bus_coalesced"`
	BusDropped      uint64        `json:"bus_dropped"`
	// BusDroppedByTopic breaks bus overflow drops down per topic (absent
	// topics never dropped).
	BusDroppedByTopic map[string]uint64 `json:"bus_dropped_by_topic,omitempty"`
	HarvestReports    uint64            `json:"harvest_reports"`
	Term              uint64            `json:"term"`
	Takeovers         uint64            `json:"takeovers"`
}

// LaneStat is one NetMeter lane's cumulative counters.
type LaneStat struct {
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
}

// Metrics snapshots the live meters on the engine goroutine.
func (s *Service) Metrics() (*MetricsSnapshot, error) {
	m := &MetricsSnapshot{}
	err := s.exec(func() {
		m.Now = s.rt.Now()
		m.PendingEvents = s.rt.Pending()
		cn := s.fab.CentralNet
		for i := 0; i < cn.Lanes(); i++ {
			p, b := cn.Lane(i)
			m.Lanes = append(m.Lanes, LaneStat{Packets: p, Bytes: b})
		}
		m.CentralPackets = cn.Packets()
		m.CentralBytes = cn.Bytes()
		m.LaneImbalance = cn.Imbalance()
		m.Delivered = s.fab.Delivered()
		m.DroppedInFabric = s.fab.DroppedInFabric()
		m.Tasks = len(s.sd.TaskNames())
		m.PlacedSeeds = len(s.sd.Placements())
		m.Migrations = s.sd.Migrations()
		bs := s.broker.Stats()
		m.BusPublished = bs.Published
		m.BusDelivered = bs.Delivered
		m.BusCoalesced = bs.Coalesced
		m.BusDropped = bs.Dropped
		if bs.Dropped > 0 {
			m.BusDroppedByTopic = s.broker.DroppedByTopic()
		}
		m.Term = s.term
		m.Takeovers = s.takeovers
	})
	if err != nil {
		return nil, err
	}
	m.HarvestReports = s.harvestCount.Load()
	return m, nil
}

// PlacementDigest snapshots the seeder's placement digest (soak and the
// concurrency tests pin serial-equivalence through it).
func (s *Service) PlacementDigest() (string, error) {
	var d string
	err := s.exec(func() { d = s.sd.PlacementDigest() })
	return d, err
}

// TaskNames snapshots the deployed task set.
func (s *Service) TaskNames() ([]string, error) {
	var names []string
	err := s.exec(func() { names = s.sd.TaskNames() })
	return names, err
}

// sortedKeys is a tiny helper shared by replica reconciliation.
func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
