// Package lp implements a dense two-phase primal simplex solver for
// linear programs and a branch-and-bound solver for mixed-integer linear
// programs, using only the standard library.
//
// FARM's placement optimizer (§IV of the paper) has two consumers for
// this package: the full MILP formulation of the placement problem (the
// Gurobi role in Fig. 7) and the per-switch LP used by step 3 of the
// Alg. 1 heuristic ("redistribute resources using linear programming").
package lp

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Inf is a convenience positive infinity for variable bounds.
var Inf = math.Inf(1)

// Sense selects the optimization direction.
type Sense int

const (
	Maximize Sense = iota + 1
	Minimize
)

// Op is a constraint comparison operator.
type Op int

const (
	LE Op = iota + 1 // <=
	GE               // >=
	EQ               // ==
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Status reports the outcome of a solve.
type Status int

const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
	DeadlineExceeded // MILP hit its deadline; Solution holds the incumbent
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case DeadlineExceeded:
		return "deadline-exceeded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Var is a handle to a decision variable within one Problem.
type Var int

// Coef pairs a variable with its coefficient in a linear expression.
type Coef struct {
	Var Var
	Val float64
}

type variable struct {
	name    string
	lb, ub  float64
	integer bool
}

type constraint struct {
	coefs []Coef
	op    Op
	rhs   float64
}

// Problem is a linear or mixed-integer linear program under
// construction. The zero value is not usable; call New.
//
// A Problem is not safe for concurrent use: besides the builder state,
// it owns a grow-only scratch arena (bounds, flattened constraint rows,
// the dense tableau) that Solve reuses across calls, so repeat solves
// of same-shaped problems are allocation-light. Parallel solvers (the
// placement heuristic's per-switch redistribution pool) keep one
// Problem per worker and Reset it between solves.
type Problem struct {
	sense    Sense
	vars     []variable
	cons     []constraint
	objCoefs []Coef
	objConst float64
	// deadline, when nonzero, aborts long simplex runs with
	// ErrDeadline (set by SolveMILP so a single huge relaxation cannot
	// blow through the branch-and-bound budget).
	deadline time.Time
	// scr is the reusable solve arena (see solveRelaxation).
	scr scratch
}

// ErrDeadline is returned when a solve exceeds the configured deadline.
var ErrDeadline = errors.New("lp: deadline exceeded during simplex")

// New returns an empty problem with the given optimization sense.
func New(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// Reset clears the problem for rebuilding under a new sense while
// keeping every allocated buffer (variables, constraint rows, objective,
// solve arena) for reuse. Anything previously returned by the problem —
// Var handles, Solutions — is invalidated except Solution.Values, which
// is always freshly allocated.
func (p *Problem) Reset(sense Sense) {
	p.sense = sense
	p.vars = p.vars[:0]
	p.cons = p.cons[:0]
	p.objCoefs = p.objCoefs[:0]
	p.objConst = 0
	p.deadline = time.Time{}
}

// NumVars returns the number of declared variables.
func (p *Problem) NumVars() int { return len(p.vars) }

// NumConstraints returns the number of added constraints.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddVar declares a continuous variable with bounds [lb, ub]; ub may be
// lp.Inf. lb must be finite (free variables are not needed by FARM's
// formulations, where every quantity is a nonnegative resource amount or
// a 0/1 indicator).
func (p *Problem) AddVar(name string, lb, ub float64) Var {
	p.vars = append(p.vars, variable{name: name, lb: lb, ub: ub})
	return Var(len(p.vars) - 1)
}

// AddBinary declares a 0/1 integer variable.
func (p *Problem) AddBinary(name string) Var {
	v := p.AddVar(name, 0, 1)
	p.vars[v].integer = true
	return v
}

// AddIntVar declares an integer variable with bounds [lb, ub].
func (p *Problem) AddIntVar(name string, lb, ub float64) Var {
	v := p.AddVar(name, lb, ub)
	p.vars[v].integer = true
	return v
}

// SetInteger marks an existing variable as integral.
func (p *Problem) SetInteger(v Var) { p.vars[v].integer = true }

// AddConstraint adds sum(coefs) op rhs. The coefs slice is copied; after
// a Reset, retired rows' backing arrays are reused.
func (p *Problem) AddConstraint(coefs []Coef, op Op, rhs float64) {
	var cs []Coef
	if len(p.cons) < cap(p.cons) {
		// Reclaim the coef backing of the retired row in this slot.
		cs = p.cons[: len(p.cons)+1 : cap(p.cons)][len(p.cons)].coefs[:0]
	}
	if cap(cs) >= len(coefs) {
		cs = cs[:len(coefs)]
	} else {
		cs = make([]Coef, len(coefs))
	}
	copy(cs, coefs)
	p.cons = append(p.cons, constraint{coefs: cs, op: op, rhs: rhs})
}

// SetObjective sets the objective sum(coefs) + constant.
func (p *Problem) SetObjective(coefs []Coef, constant float64) {
	p.objCoefs = append(p.objCoefs[:0], coefs...)
	p.objConst = constant
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	Values    []float64 // indexed by Var
}

// Value returns the solved value of v.
func (s *Solution) Value(v Var) float64 { return s.Values[v] }

const (
	eps        = 1e-9
	ratioEps   = 1e-9
	intFeasTol = 1e-6
)

// ErrNumerical is returned when the simplex cannot make progress
// (cycling beyond the anti-cycling fallback's iteration budget).
var ErrNumerical = errors.New("lp: simplex failed to converge")

// Solve solves the continuous relaxation of the problem (integrality
// markers are ignored) with the two-phase primal simplex method.
func (p *Problem) Solve() (*Solution, error) {
	return p.solveRelaxation(nil, nil)
}

// scratch is the grow-only solve arena owned by a Problem: every buffer
// solveRelaxation needs, reused across calls so repeat solves of
// same-shaped problems allocate only the escaping Solution.
type scratch struct {
	lb, ub   []float64
	rowCoefs []float64 // flattened n-wide shifted constraint rows
	rowRHS   []float64
	rowOps   []Op
	cost     []float64
	c1, c2   []float64
	xs       []float64
	tab      tableau
	tabA     []float64 // dense tableau backing
}

// growF returns *buf resized to n without zeroing, growing it if needed.
func growF(buf *[]float64, n int) []float64 {
	if cap(*buf) >= n {
		*buf = (*buf)[:n]
	} else {
		*buf = make([]float64, n)
	}
	return *buf
}

// growFZero returns *buf resized to n with every element zeroed.
func growFZero(buf *[]float64, n int) []float64 {
	b := growF(buf, n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// tableau returns the arena's reusable tableau sized to m rows and
// maxCols columns, fully cleared.
func (s *scratch) tableau(m, maxCols int) *tableau {
	t := &s.tab
	need := m * maxCols
	if cap(s.tabA) >= need {
		s.tabA = s.tabA[:need]
		for i := range s.tabA {
			s.tabA[i] = 0
		}
	} else {
		s.tabA = make([]float64, need)
	}
	if cap(t.a) >= m {
		t.a = t.a[:m]
	} else {
		t.a = make([][]float64, m)
	}
	for i := range t.a {
		t.a[i] = s.tabA[i*maxCols : (i+1)*maxCols]
	}
	t.b = growFZero(&t.b, m)
	if cap(t.basis) >= m {
		t.basis = t.basis[:m]
	} else {
		t.basis = make([]int, m)
	}
	for i := range t.basis {
		t.basis[i] = -1
	}
	t.m, t.ncols = m, maxCols
	t.frozenFrom = -1
	t.objConst = 0
	t.deadline = time.Time{}
	return t
}

// solveRelaxation solves the LP relaxation with optional per-variable
// bound overrides (used by branch & bound; nil means no override).
func (p *Problem) solveRelaxation(lbOverride, ubOverride map[Var]float64) (*Solution, error) {
	n := len(p.vars)
	s := &p.scr
	lb := growF(&s.lb, n)
	ub := growF(&s.ub, n)
	for i, v := range p.vars {
		lb[i], ub[i] = v.lb, v.ub
	}
	for v, b := range lbOverride {
		if b > lb[v] {
			lb[v] = b
		}
	}
	for v, b := range ubOverride {
		if b < ub[v] {
			ub[v] = b
		}
	}
	for i := range p.vars {
		if lb[i] > ub[i]+eps {
			return &Solution{Status: Infeasible}, nil
		}
		if math.IsInf(lb[i], -1) {
			return nil, fmt.Errorf("lp: variable %q has no finite lower bound", p.vars[i].name)
		}
	}

	// Shift every variable by its lower bound: x = x' + lb, x' >= 0.
	// Finite upper bounds become extra rows x' <= ub-lb. Rows live in
	// the arena's flattened n-wide buffer.
	maxRows := len(p.cons) + n
	rowCoefs := growFZero(&s.rowCoefs, maxRows*n)
	rowRHS := growF(&s.rowRHS, maxRows)
	if cap(s.rowOps) >= maxRows {
		s.rowOps = s.rowOps[:maxRows]
	} else {
		s.rowOps = make([]Op, maxRows)
	}
	rowOps := s.rowOps
	m := 0
	for _, c := range p.cons {
		rc := rowCoefs[m*n : (m+1)*n]
		rhs := c.rhs
		for _, cf := range c.coefs {
			rc[cf.Var] += cf.Val
			rhs -= cf.Val * lb[cf.Var]
		}
		rowOps[m], rowRHS[m] = c.op, rhs
		m++
	}
	for i := 0; i < n; i++ {
		if math.IsInf(ub[i], 1) {
			continue
		}
		op := LE
		if ub[i]-lb[i] <= eps {
			// Fixed variable: pin with an equality so the tableau
			// cannot drift.
			op = EQ
		}
		rowCoefs[m*n+i] = 1
		rowOps[m], rowRHS[m] = op, ub[i]-lb[i]
		m++
	}

	// Objective in "minimize" form over shifted variables.
	objSign := 1.0
	if p.sense == Maximize {
		objSign = -1
	}
	cost := growFZero(&s.cost, n)
	objShift := p.objConst
	for _, cf := range p.objCoefs {
		cost[cf.Var] += objSign * cf.Val
		objShift += cf.Val * lb[cf.Var]
	}

	// Column layout: [structural n][slack/surplus][artificial].
	nSlack := 0
	for i := 0; i < m; i++ {
		if rowOps[i] != EQ {
			nSlack++
		}
	}
	total := n + nSlack + m // upper bound on artificials: one per row
	t := s.tableau(m, total)
	t.deadline = p.deadline
	slackCol := n
	artCol := n + nSlack
	nArt := 0
	for i := 0; i < m; i++ {
		rc := rowCoefs[i*n : (i+1)*n]
		rhs := rowRHS[i]
		sign := 1.0
		if rhs < 0 {
			sign = -1
			rhs = -rhs
		}
		row := t.a[i]
		for j, c := range rc {
			if c != 0 {
				row[j] = sign * c
			}
		}
		t.b[i] = rhs
		op := rowOps[i]
		if sign < 0 {
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		needArt := false
		switch op {
		case LE:
			t.a[i][slackCol] = 1
			// Slack can serve as the initial basic variable.
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol] = -1
			slackCol++
			needArt = true
		case EQ:
			needArt = true
		}
		if needArt {
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
			nArt++
		}
	}
	t.ncols = artCol
	artStart := n + nSlack

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		c1 := growFZero(&s.c1, t.ncols)
		for j := artStart; j < artStart+nArt; j++ {
			c1[j] = 1
		}
		if err := t.setObjective(c1); err != nil {
			return nil, err
		}
		if status, err := t.iterate(t.ncols); err != nil {
			return nil, err
		} else if status == Unbounded {
			// Phase 1 objective is bounded below by 0; unbounded
			// here means a numerical failure.
			return nil, ErrNumerical
		}
		if t.objValue() > 1e-7 {
			return &Solution{Status: Infeasible}, nil
		}
		// Pivot remaining artificials out of the basis where possible.
		// A row with no eligible column is redundant: its artificial
		// stays basic at zero, and phase 2 freezes artificials out of
		// the entering-column choice.
		for i := 0; i < m; i++ {
			if t.basis[i] < artStart {
				continue
			}
			for j := 0; j < artStart; j++ {
				if math.Abs(t.a[i][j]) > 1e-7 {
					t.pivot(i, j)
					break
				}
			}
		}
	}

	// Phase 2: minimize the real cost; artificial columns are frozen.
	c2 := growFZero(&s.c2, t.ncols)
	copy(c2, cost)
	t.frozenFrom = artStart
	if err := t.setObjective(c2); err != nil {
		return nil, err
	}
	status, err := t.iterate(artStart)
	if err != nil {
		return nil, err
	}
	if status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}

	// Extract the solution, undoing the lower-bound shift. Values is
	// freshly allocated — it escapes into the Solution.
	xs := growFZero(&s.xs, n)
	for i := 0; i < m; i++ {
		if t.basis[i] < n {
			xs[t.basis[i]] = t.b[i]
		}
	}
	vals := make([]float64, n)
	obj := objShift
	for i := 0; i < n; i++ {
		vals[i] = xs[i] + lb[i]
	}
	for _, cf := range p.objCoefs {
		obj += cf.Val * xs[cf.Var]
	}
	return &Solution{Status: Optimal, Objective: obj, Values: vals}, nil
}

// tableau is a dense simplex tableau for min c'x, Ax=b, x>=0, b>=0.
type tableau struct {
	m, ncols   int
	a          [][]float64
	b          []float64
	obj        []float64 // reduced costs
	objConst   float64
	basis      []int
	frozenFrom int // columns >= frozenFrom may not enter the basis (-1: none)
	deadline   time.Time
}

// setObjective installs cost vector c and prices out the current basis.
func (t *tableau) setObjective(c []float64) error {
	if cap(t.obj) >= t.ncols {
		t.obj = t.obj[:t.ncols]
	} else {
		t.obj = make([]float64, t.ncols)
	}
	copy(t.obj, c)
	t.objConst = 0
	for i := 0; i < t.m; i++ {
		k := t.basis[i]
		if k < 0 {
			return fmt.Errorf("lp: row %d has no basic variable", i)
		}
		ck := c[k]
		if ck == 0 {
			continue
		}
		for j := 0; j < t.ncols; j++ {
			t.obj[j] -= ck * t.a[i][j]
		}
		t.objConst -= ck * t.b[i]
	}
	return nil
}

func (t *tableau) objValue() float64 { return -t.objConst }

// iterate runs simplex pivots until optimality or unboundedness.
// enterLimit restricts entering columns to [0, enterLimit).
func (t *tableau) iterate(enterLimit int) (Status, error) {
	maxIters := 200 * (t.m + t.ncols)
	bland := false
	blandBudget := maxIters
	for iter := 0; ; iter++ {
		if !t.deadline.IsZero() && iter%64 == 0 && time.Now().After(t.deadline) {
			return 0, ErrDeadline
		}
		if iter > maxIters {
			if !bland {
				bland = true
				maxIters += blandBudget
				continue
			}
			return 0, ErrNumerical
		}
		limit := enterLimit
		if t.frozenFrom >= 0 && t.frozenFrom < limit {
			limit = t.frozenFrom
		}
		// Entering column.
		enter := -1
		if bland {
			for j := 0; j < limit; j++ {
				if t.obj[j] < -eps {
					enter = j
					break
				}
			}
		} else {
			best := -eps
			for j := 0; j < limit; j++ {
				if t.obj[j] < best {
					best = t.obj[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= ratioEps {
				continue
			}
			r := t.b[i] / aij
			if r < bestRatio-eps || (r < bestRatio+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = r
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	piv := t.a[leave][enter]
	inv := 1 / piv
	rowL := t.a[leave]
	for j := 0; j < t.ncols; j++ {
		rowL[j] *= inv
	}
	t.b[leave] *= inv
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.ncols; j++ {
			row[j] -= f * rowL[j]
		}
		t.b[i] -= f * t.b[leave]
		if t.b[i] < 0 && t.b[i] > -1e-11 {
			t.b[i] = 0
		}
	}
	f := t.obj[enter]
	if f != 0 {
		for j := 0; j < t.ncols; j++ {
			t.obj[j] -= f * rowL[j]
		}
		t.objConst -= f * t.b[leave]
	}
	t.basis[leave] = enter
}

// MILPOptions configures branch & bound.
type MILPOptions struct {
	Deadline time.Time     // zero: no deadline
	Timeout  time.Duration // alternative to Deadline; 0: none
	MaxNodes int           // 0: default 200000
}

// SolveMILP runs branch & bound on the integer-marked variables. If the
// deadline expires, the best incumbent found so far is returned with
// Status DeadlineExceeded (or Infeasible if none was found).
func (p *Problem) SolveMILP(opts MILPOptions) (*Solution, error) {
	deadline := opts.Deadline
	if deadline.IsZero() && opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200000
	}

	hasInt := false
	for _, v := range p.vars {
		if v.integer {
			hasInt = true
			break
		}
	}
	if !hasInt {
		return p.Solve()
	}
	p.deadline = deadline
	defer func() { p.deadline = time.Time{} }()

	type node struct {
		lb, ub map[Var]float64
	}
	cloneBounds := func(m map[Var]float64) map[Var]float64 {
		c := make(map[Var]float64, len(m)+1)
		for k, v := range m {
			c[k] = v
		}
		return c
	}

	var incumbent *Solution
	better := func(obj float64) bool {
		if incumbent == nil {
			return true
		}
		if p.sense == Maximize {
			return obj > incumbent.Objective+1e-9
		}
		return obj < incumbent.Objective-1e-9
	}
	bounds := func(obj float64) bool { // can this relaxation beat the incumbent?
		if incumbent == nil {
			return true
		}
		if p.sense == Maximize {
			return obj > incumbent.Objective+1e-9
		}
		return obj < incumbent.Objective-1e-9
	}

	stack := []node{{lb: map[Var]float64{}, ub: map[Var]float64{}}}
	nodes := 0
	timedOut := false
	for len(stack) > 0 {
		if nodes >= maxNodes {
			timedOut = true
			break
		}
		if !deadline.IsZero() && nodes%16 == 0 && nodes > 0 && time.Now().After(deadline) {
			timedOut = true
			break
		}
		nodes++
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		if nodes == 1 {
			// The root relaxation always runs to completion (the bound
			// a budgeted exact solver would report); the deadline
			// governs the branch-and-bound search after it.
			p.deadline = time.Time{}
		} else {
			p.deadline = deadline
		}
		sol, err := p.solveRelaxation(nd.lb, nd.ub)
		if err != nil {
			if errors.Is(err, ErrNumerical) {
				continue // prune the numerically troubled subtree
			}
			if errors.Is(err, ErrDeadline) {
				timedOut = true
				break
			}
			return nil, err
		}
		if sol.Status == Infeasible {
			continue
		}
		if sol.Status == Unbounded {
			return &Solution{Status: Unbounded}, nil
		}
		if !bounds(sol.Objective) {
			continue
		}
		// Find the most fractional integer variable.
		branch := Var(-1)
		worst := intFeasTol
		for i, v := range p.vars {
			if !v.integer {
				continue
			}
			x := sol.Values[i]
			frac := math.Abs(x - math.Round(x))
			if frac > worst {
				worst = frac
				branch = Var(i)
			}
		}
		if branch < 0 {
			// Integer feasible: round and accept.
			if better(sol.Objective) {
				vals := make([]float64, len(sol.Values))
				copy(vals, sol.Values)
				for i, v := range p.vars {
					if v.integer {
						vals[i] = math.Round(vals[i])
					}
				}
				incumbent = &Solution{Status: Optimal, Objective: sol.Objective, Values: vals}
			}
			continue
		}
		x := sol.Values[branch]
		down := node{lb: cloneBounds(nd.lb), ub: cloneBounds(nd.ub)}
		down.ub[branch] = math.Floor(x)
		up := node{lb: cloneBounds(nd.lb), ub: cloneBounds(nd.ub)}
		up.lb[branch] = math.Ceil(x)
		// Explore the side closer to the relaxation value first
		// (pushed last, popped first).
		if x-math.Floor(x) < 0.5 {
			stack = append(stack, up, down)
		} else {
			stack = append(stack, down, up)
		}
	}

	if incumbent == nil {
		if timedOut {
			return &Solution{Status: DeadlineExceeded}, nil
		}
		return &Solution{Status: Infeasible}, nil
	}
	if timedOut {
		incumbent.Status = DeadlineExceeded
	}
	return incumbent, nil
}
