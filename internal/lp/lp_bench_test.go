package lp

import (
	"math/rand"
	"testing"
)

func fillRandomLP(p *Problem, rng *rand.Rand, vars, cons int) {
	vs := make([]Var, vars)
	for i := range vs {
		vs[i] = p.AddVar("v", 0, 100)
	}
	for j := 0; j < cons; j++ {
		coefs := make([]Coef, 0, vars)
		for i := range vs {
			if rng.Intn(3) == 0 {
				coefs = append(coefs, Coef{vs[i], float64(rng.Intn(9) + 1)})
			}
		}
		if len(coefs) == 0 {
			coefs = append(coefs, Coef{vs[0], 1})
		}
		p.AddConstraint(coefs, LE, float64(rng.Intn(200)+50))
	}
	obj := make([]Coef, vars)
	for i := range vs {
		obj[i] = Coef{vs[i], rng.Float64() * 10}
	}
	p.SetObjective(obj, 0)
}

func randomLP(rng *rand.Rand, vars, cons int) *Problem {
	p := New(Maximize)
	fillRandomLP(p, rng, vars, cons)
	return p
}

func BenchmarkSimplexSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomLP(rng, 10, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p := randomLP(rng, 60, 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimplexRebuildReuse measures the redistribution hot path's
// shape: rebuild a same-shaped LP into one Reset problem arena and
// solve, every iteration. Grow-only buffers make repeat solves
// allocation-light.
func BenchmarkSimplexRebuildReuse(b *testing.B) {
	p := New(Maximize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset(Maximize)
		fillRandomLP(p, rand.New(rand.NewSource(2)), 60, 80)
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMILPKnapsack20(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := New(Maximize)
	var weights, values []Coef
	for i := 0; i < 20; i++ {
		v := p.AddBinary("b")
		weights = append(weights, Coef{v, float64(rng.Intn(20) + 1)})
		values = append(values, Coef{v, float64(rng.Intn(40) + 1)})
	}
	p.AddConstraint(weights, LE, 80)
	p.SetObjective(values, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveMILP(MILPOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
