package lp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> x=4, y=0, obj=12.
	p := New(Maximize)
	x := p.AddVar("x", 0, Inf)
	y := p.AddVar("y", 0, Inf)
	p.AddConstraint([]Coef{{x, 1}, {y, 1}}, LE, 4)
	p.AddConstraint([]Coef{{x, 1}, {y, 3}}, LE, 6)
	p.SetObjective([]Coef{{x, 3}, {y, 2}}, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Objective, 12, 1e-6, "objective")
	approx(t, sol.Value(x), 4, 1e-6, "x")
	approx(t, sol.Value(y), 0, 1e-6, "y")
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2 -> x=10 y=0? obj: coefficient of x
	// smaller, so push x: x=10, y=0, obj=20.
	p := New(Minimize)
	x := p.AddVar("x", 0, Inf)
	y := p.AddVar("y", 0, Inf)
	p.AddConstraint([]Coef{{x, 1}, {y, 1}}, GE, 10)
	p.AddConstraint([]Coef{{x, 1}}, GE, 2)
	p.SetObjective([]Coef{{x, 2}, {y, 3}}, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Objective, 20, 1e-6, "objective")
}

func TestEquality(t *testing.T) {
	// max x + y s.t. x + y == 5, x <= 3 -> obj = 5.
	p := New(Maximize)
	x := p.AddVar("x", 0, 3)
	y := p.AddVar("y", 0, Inf)
	p.AddConstraint([]Coef{{x, 1}, {y, 1}}, EQ, 5)
	p.SetObjective([]Coef{{x, 1}, {y, 1}}, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Objective, 5, 1e-6, "objective")
	approx(t, sol.Value(x)+sol.Value(y), 5, 1e-6, "x+y")
}

func TestInfeasible(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 0, Inf)
	p.AddConstraint([]Coef{{x, 1}}, LE, 1)
	p.AddConstraint([]Coef{{x, 1}}, GE, 2)
	p.SetObjective([]Coef{{x, 1}}, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 0, Inf)
	p.AddConstraint([]Coef{{x, -1}}, LE, 1)
	p.SetObjective([]Coef{{x, 1}}, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestVariableBounds(t *testing.T) {
	// max x + y with 1 <= x <= 2, 0 <= y <= 3, x + y <= 4 -> x=2 (or 1..2), y up to 3; obj=4+? x+y<=4 binds: obj=4.
	p := New(Maximize)
	x := p.AddVar("x", 1, 2)
	y := p.AddVar("y", 0, 3)
	p.AddConstraint([]Coef{{x, 1}, {y, 1}}, LE, 4)
	p.SetObjective([]Coef{{x, 1}, {y, 1}}, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 4, 1e-6, "objective")
	if sol.Value(x) < 1-1e-9 || sol.Value(x) > 2+1e-9 {
		t.Fatalf("x = %g out of bounds", sol.Value(x))
	}
}

func TestLowerBoundShift(t *testing.T) {
	// min x with x >= 5 via bound -> 5.
	p := New(Minimize)
	x := p.AddVar("x", 5, Inf)
	p.SetObjective([]Coef{{x, 1}}, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 5, 1e-6, "objective")
	approx(t, sol.Value(x), 5, 1e-6, "x")
}

func TestFixedVariable(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 2, 2)
	y := p.AddVar("y", 0, Inf)
	p.AddConstraint([]Coef{{x, 1}, {y, 1}}, LE, 5)
	p.SetObjective([]Coef{{x, 1}, {y, 1}}, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Value(x), 2, 1e-6, "x")
	approx(t, sol.Objective, 5, 1e-6, "objective")
}

func TestObjectiveConstant(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 0, 1)
	p.SetObjective([]Coef{{x, 1}}, 10)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 11, 1e-6, "objective")
}

func TestNegativeRHS(t *testing.T) {
	// x - y <= -2 with max x, x <= 5 -> y >= x+2 always satisfiable; obj=5.
	p := New(Maximize)
	x := p.AddVar("x", 0, 5)
	y := p.AddVar("y", 0, Inf)
	p.AddConstraint([]Coef{{x, 1}, {y, -1}}, LE, -2)
	p.SetObjective([]Coef{{x, 1}}, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 5, 1e-6, "objective")
	if sol.Value(y) < sol.Value(x)+2-1e-6 {
		t.Fatalf("constraint violated: x=%g y=%g", sol.Value(x), sol.Value(y))
	}
}

func TestDegenerate(t *testing.T) {
	// A classic degenerate LP; checks anti-cycling survives.
	p := New(Minimize)
	x1 := p.AddVar("x1", 0, Inf)
	x2 := p.AddVar("x2", 0, Inf)
	x3 := p.AddVar("x3", 0, Inf)
	x4 := p.AddVar("x4", 0, Inf)
	p.AddConstraint([]Coef{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	p.AddConstraint([]Coef{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	p.AddConstraint([]Coef{{x3, 1}}, LE, 1)
	p.SetObjective([]Coef{{x1, -0.75}, {x2, 150}, {x3, -0.02}, {x4, 6}}, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Objective, -0.05, 1e-6, "objective (Beale's example)")
}

// Property-style test: on random feasible programs the simplex solution
// must satisfy every constraint and variable bound.
func TestRandomFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(6)
		p := New(Maximize)
		vars := make([]Var, n)
		for i := 0; i < n; i++ {
			vars[i] = p.AddVar("v", 0, 10)
		}
		type consT struct {
			coefs []Coef
			rhs   float64
		}
		var cons []consT
		for j := 0; j < m; j++ {
			coefs := make([]Coef, 0, n)
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					coefs = append(coefs, Coef{vars[i], float64(rng.Intn(5) + 1)})
				}
			}
			if len(coefs) == 0 {
				coefs = append(coefs, Coef{vars[0], 1})
			}
			rhs := float64(rng.Intn(40) + 5)
			p.AddConstraint(coefs, LE, rhs)
			cons = append(cons, consT{coefs, rhs})
		}
		obj := make([]Coef, n)
		for i := 0; i < n; i++ {
			obj[i] = Coef{vars[i], rng.Float64()*4 - 1}
		}
		p.SetObjective(obj, 0)
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		for i := 0; i < n; i++ {
			v := sol.Value(vars[i])
			if v < -1e-6 || v > 10+1e-6 {
				t.Fatalf("trial %d: var %d = %g out of [0,10]", trial, i, v)
			}
		}
		for j, c := range cons {
			lhs := 0.0
			for _, cf := range c.coefs {
				lhs += cf.Val * sol.Value(cf.Var)
			}
			if lhs > c.rhs+1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %g > %g", trial, j, lhs, c.rhs)
			}
		}
	}
}

// Weak duality style optimality spot-check: perturbing the optimum along
// feasible directions should not improve the objective. We instead verify
// against a brute-force grid on small integer-coefficient problems.
func TestOptimalityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		p := New(Maximize)
		x := p.AddVar("x", 0, 6)
		y := p.AddVar("y", 0, 6)
		a1, b1 := float64(rng.Intn(3)+1), float64(rng.Intn(3)+1)
		r1 := float64(rng.Intn(12) + 4)
		a2, b2 := float64(rng.Intn(3)+1), float64(rng.Intn(3)+1)
		r2 := float64(rng.Intn(12) + 4)
		cx, cy := float64(rng.Intn(5)+1), float64(rng.Intn(5)+1)
		p.AddConstraint([]Coef{{x, a1}, {y, b1}}, LE, r1)
		p.AddConstraint([]Coef{{x, a2}, {y, b2}}, LE, r2)
		p.SetObjective([]Coef{{x, cx}, {y, cy}}, 0)
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		// Fine grid brute force.
		best := 0.0
		for xi := 0.0; xi <= 6.0001; xi += 0.01 {
			// For fixed x, best y is bounded by constraints.
			ymax := 6.0
			if b1 > 0 {
				ymax = math.Min(ymax, (r1-a1*xi)/b1)
			}
			if b2 > 0 {
				ymax = math.Min(ymax, (r2-a2*xi)/b2)
			}
			if ymax < 0 {
				continue
			}
			if v := cx*xi + cy*ymax; v > best {
				best = v
			}
		}
		if sol.Objective < best-1e-2 {
			t.Fatalf("trial %d: simplex %g < brute force %g", trial, sol.Objective, best)
		}
	}
}

func TestMILPKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary -> a=1,c=1 (17)
	// vs b=1,c=1 (20; weight 6 ok) -> optimal 20.
	p := New(Maximize)
	a := p.AddBinary("a")
	b := p.AddBinary("b")
	c := p.AddBinary("c")
	p.AddConstraint([]Coef{{a, 3}, {b, 4}, {c, 2}}, LE, 6)
	p.SetObjective([]Coef{{a, 10}, {b, 13}, {c, 7}}, 0)
	sol, err := p.SolveMILP(MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Objective, 20, 1e-6, "objective")
	approx(t, sol.Value(b), 1, 1e-6, "b")
	approx(t, sol.Value(c), 1, 1e-6, "c")
}

func TestMILPIntegerVar(t *testing.T) {
	// max x s.t. 2x <= 7, x integer -> 3.
	p := New(Maximize)
	x := p.AddIntVar("x", 0, 100)
	p.AddConstraint([]Coef{{x, 2}}, LE, 7)
	p.SetObjective([]Coef{{x, 1}}, 0)
	sol, err := p.SolveMILP(MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 3, 1e-6, "objective")
}

func TestMILPInfeasible(t *testing.T) {
	p := New(Maximize)
	x := p.AddBinary("x")
	p.AddConstraint([]Coef{{x, 1}}, GE, 0.4)
	p.AddConstraint([]Coef{{x, 1}}, LE, 0.6)
	p.SetObjective([]Coef{{x, 1}}, 0)
	sol, err := p.SolveMILP(MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestMILPMixed(t *testing.T) {
	// max 2x + y, x binary, y continuous <= 1.5, x + y <= 2 -> x=1, y=1 -> 3.
	p := New(Maximize)
	x := p.AddBinary("x")
	y := p.AddVar("y", 0, 1.5)
	p.AddConstraint([]Coef{{x, 1}, {y, 1}}, LE, 2)
	p.SetObjective([]Coef{{x, 2}, {y, 1}}, 0)
	sol, err := p.SolveMILP(MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 3, 1e-6, "objective")
	approx(t, sol.Value(x), 1, 1e-6, "x")
}

func TestMILPDeadline(t *testing.T) {
	// A larger random knapsack; a 0 deadline in the past must return
	// quickly with DeadlineExceeded.
	rng := rand.New(rand.NewSource(3))
	p := New(Maximize)
	var coefs, weights []Coef
	for i := 0; i < 40; i++ {
		v := p.AddBinary("b")
		coefs = append(coefs, Coef{v, float64(rng.Intn(50) + 1)})
		weights = append(weights, Coef{v, float64(rng.Intn(30) + 1)})
	}
	p.AddConstraint(weights, LE, 120)
	p.SetObjective(coefs, 0)
	start := time.Now()
	sol, err := p.SolveMILP(MILPOptions{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != DeadlineExceeded {
		t.Fatalf("status = %v, want deadline-exceeded", sol.Status)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline not honored promptly")
	}
}

// Property: branch & bound yields integral values and never exceeds the
// LP relaxation bound.
func TestMILPIntegralityAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(4)
		p := New(Maximize)
		vars := make([]Var, n)
		var weight []Coef
		var objc []Coef
		for i := 0; i < n; i++ {
			vars[i] = p.AddBinary("b")
			weight = append(weight, Coef{vars[i], float64(rng.Intn(9) + 1)})
			objc = append(objc, Coef{vars[i], float64(rng.Intn(20) + 1)})
		}
		cap := float64(rng.Intn(20) + 5)
		p.AddConstraint(weight, LE, cap)
		p.SetObjective(objc, 0)

		relax, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		sol, err := p.SolveMILP(MILPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if sol.Objective > relax.Objective+1e-6 {
			t.Fatalf("trial %d: MILP %g beats relaxation %g", trial, sol.Objective, relax.Objective)
		}
		total := 0.0
		for i, v := range vars {
			x := sol.Value(v)
			if math.Abs(x-math.Round(x)) > 1e-6 {
				t.Fatalf("trial %d: var %d = %g not integral", trial, i, x)
			}
			total += weight[i].Val * x
		}
		if total > cap+1e-6 {
			t.Fatalf("trial %d: knapsack overweight %g > %g", trial, total, cap)
		}
	}
}
