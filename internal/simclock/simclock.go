// Package simclock provides a deterministic discrete-event simulation
// loop with virtual time.
//
// FARM's evaluation quantities — detection latency (Tab. 4), polling
// accuracy and CPU load (Fig. 5/6), bus congestion (Fig. 8) — are all
// functions of poll intervals, batch windows, and propagation delays.
// Running the emulated data center on a virtual clock measures those
// exactly and deterministically, and lets a simulated minute complete in
// milliseconds of wall time.
//
// A Loop is single-threaded: all scheduled callbacks run inline on the
// goroutine that calls Run/Step. This mirrors the paper's preferred seed
// execution model (seeds as threads of the soil process, §VI-E) and
// keeps every experiment reproducible.
package simclock

import (
	"container/heap"
	"time"
)

// Loop is a discrete-event scheduler over virtual time. The zero value
// is ready to use, starting at virtual time 0.
type Loop struct {
	now    time.Duration
	events eventHeap
	seq    uint64
}

// New returns a fresh loop at virtual time 0.
func New() *Loop { return &Loop{} }

// Now returns the current virtual time.
func (l *Loop) Now() time.Duration { return l.now }

// Pending returns the number of scheduled (unfired, uncancelled) events.
func (l *Loop) Pending() int { return len(l.events) }

type event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
	index   int
}

// Timer is a handle to a scheduled one-shot callback.
type Timer struct{ ev *event }

// Stop cancels the timer if it has not fired. It reports whether the
// call prevented the callback from running.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.stopped {
		return false
	}
	fired := t.ev.index < 0
	t.ev.stopped = true
	return !fired
}

// At schedules fn at absolute virtual time at. Scheduling in the past
// (at < Now) fires at the current time, preserving order of submission.
func (l *Loop) At(at time.Duration, fn func()) *Timer {
	if at < l.now {
		at = l.now
	}
	ev := &event{at: at, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn after delay d.
func (l *Loop) After(d time.Duration, fn func()) *Timer {
	return l.At(l.now+d, fn)
}

// Ticker fires a callback periodically. Created by Every.
type Ticker struct {
	loop     *Loop
	interval time.Duration
	fn       func()
	timer    *Timer
	stopped  bool
}

// Every schedules fn every interval, first firing one interval from now.
// interval must be positive.
func (l *Loop) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("simclock: non-positive ticker interval")
	}
	t := &Ticker{loop: l, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.loop.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

// Interval returns the current period.
func (t *Ticker) Interval() time.Duration { return t.interval }

// SetInterval changes the period. The change takes effect immediately:
// the pending firing is rescheduled to interval from now. Seeds use this
// when they change their polling rate dynamically (§II-B-a).
func (t *Ticker) SetInterval(interval time.Duration) {
	if interval <= 0 {
		panic("simclock: non-positive ticker interval")
	}
	if t.stopped {
		t.interval = interval
		return
	}
	t.timer.Stop()
	t.interval = interval
	t.arm()
}

// Step runs the earliest pending event, advancing virtual time to it.
// It reports whether an event ran.
func (l *Loop) Step() bool {
	for len(l.events) > 0 {
		ev := heap.Pop(&l.events).(*event)
		if ev.stopped {
			continue
		}
		l.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// RunUntil processes all events scheduled at or before t, then advances
// the clock to exactly t.
func (l *Loop) RunUntil(t time.Duration) {
	for len(l.events) > 0 && l.events[0].at <= t {
		if !l.Step() {
			break
		}
	}
	if l.now < t {
		l.now = t
	}
}

// RunFor advances the clock by d, processing everything in between.
func (l *Loop) RunFor(d time.Duration) { l.RunUntil(l.now + d) }

// Drain runs events until none remain or the limit is reached (a safety
// valve against self-perpetuating tickers). It returns the number of
// events processed.
func (l *Loop) Drain(limit int) int {
	n := 0
	for n < limit && l.Step() {
		n++
	}
	return n
}

// eventHeap orders events by (at, seq) for deterministic FIFO behaviour
// among simultaneous events.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
