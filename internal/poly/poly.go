// Package poly implements multivariate linear polynomials and
// piecewise-linear utility functions.
//
// Almanac's static analysis (§III-B of the FARM paper) turns every seed's
// util callback into an explicit polynomial representation: a set of
// alternatives ("cases"), each consisting of linear resource constraints
// C^s(r) >= 0 and a utility u^s(r) expressed as the minimum of linear
// terms. This canonical form is what the placement optimizer (§IV)
// consumes, both in the MILP formulation and in the Alg. 1 heuristic.
package poly

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Linear is a linear polynomial c0 + sum_i coef[v_i] * v_i over named
// variables. The zero value is the constant polynomial 0 and is ready to
// use.
type Linear struct {
	Const float64
	Coef  map[string]float64
}

// Constant returns the constant polynomial c.
func Constant(c float64) Linear { return Linear{Const: c} }

// Var returns the polynomial 1*name.
func Var(name string) Linear {
	return Linear{Coef: map[string]float64{name: 1}}
}

// Term returns the polynomial coef*name.
func Term(name string, coef float64) Linear {
	if coef == 0 {
		return Linear{}
	}
	return Linear{Coef: map[string]float64{name: coef}}
}

// clone returns a deep copy of p.
func (p Linear) clone() Linear {
	q := Linear{Const: p.Const}
	if len(p.Coef) > 0 {
		q.Coef = make(map[string]float64, len(p.Coef))
		for k, v := range p.Coef {
			q.Coef[k] = v
		}
	}
	return q
}

// IsConstant reports whether p has no variable terms.
func (p Linear) IsConstant() bool {
	for _, c := range p.Coef {
		if c != 0 {
			return false
		}
	}
	return true
}

// CoefOf returns the coefficient of the named variable (0 if absent).
func (p Linear) CoefOf(name string) float64 { return p.Coef[name] }

// Vars returns the sorted names of variables with nonzero coefficients.
func (p Linear) Vars() []string {
	vs := make([]string, 0, len(p.Coef))
	for v, c := range p.Coef {
		if c != 0 {
			vs = append(vs, v)
		}
	}
	sort.Strings(vs)
	return vs
}

// Add returns p + q.
func (p Linear) Add(q Linear) Linear {
	r := p.clone()
	r.Const += q.Const
	for v, c := range q.Coef {
		if c == 0 {
			continue
		}
		if r.Coef == nil {
			r.Coef = make(map[string]float64)
		}
		r.Coef[v] += c
	}
	return r
}

// Sub returns p - q.
func (p Linear) Sub(q Linear) Linear { return p.Add(q.Scale(-1)) }

// Scale returns k*p.
func (p Linear) Scale(k float64) Linear {
	r := Linear{Const: p.Const * k}
	if len(p.Coef) > 0 && k != 0 {
		r.Coef = make(map[string]float64, len(p.Coef))
		for v, c := range p.Coef {
			if c*k != 0 {
				r.Coef[v] = c * k
			}
		}
	}
	return r
}

// Mul returns p*q if at least one operand is constant. Products of two
// non-constant polynomials are non-linear and rejected, matching the
// syntactic restrictions the paper imposes on util bodies.
func (p Linear) Mul(q Linear) (Linear, error) {
	switch {
	case p.IsConstant():
		return q.Scale(p.Const), nil
	case q.IsConstant():
		return p.Scale(q.Const), nil
	default:
		return Linear{}, fmt.Errorf("poly: product %v * %v is non-linear", p, q)
	}
}

// Div returns p/q for constant, nonzero q.
func (p Linear) Div(q Linear) (Linear, error) {
	if !q.IsConstant() {
		return Linear{}, fmt.Errorf("poly: division by non-constant %v", q)
	}
	if q.Const == 0 {
		return Linear{}, fmt.Errorf("poly: division by zero")
	}
	return p.Scale(1 / q.Const), nil
}

// Eval evaluates p at the given assignment. Unassigned variables
// evaluate to 0.
func (p Linear) Eval(assign map[string]float64) float64 {
	v := p.Const
	for name, c := range p.Coef {
		v += c * assign[name]
	}
	return v
}

// Equal reports whether p and q are the same polynomial (coefficient-wise
// within eps).
func (p Linear) Equal(q Linear, eps float64) bool {
	if math.Abs(p.Const-q.Const) > eps {
		return false
	}
	seen := map[string]bool{}
	for v, c := range p.Coef {
		if math.Abs(c-q.Coef[v]) > eps {
			return false
		}
		seen[v] = true
	}
	for v, c := range q.Coef {
		if !seen[v] && math.Abs(c) > eps {
			return false
		}
	}
	return true
}

// String renders p deterministically, e.g. "2.5 + 1*vCPU - 3*RAM".
func (p Linear) String() string {
	var b strings.Builder
	b.WriteString(strconv.FormatFloat(p.Const, 'g', -1, 64))
	for _, v := range p.Vars() {
		c := p.Coef[v]
		if c >= 0 {
			fmt.Fprintf(&b, " + %s*%s", strconv.FormatFloat(c, 'g', -1, 64), v)
		} else {
			fmt.Fprintf(&b, " - %s*%s", strconv.FormatFloat(-c, 'g', -1, 64), v)
		}
	}
	return b.String()
}

// MinExpr is a piecewise-linear concave utility: the pointwise minimum of
// its linear terms. An empty MinExpr is invalid; use Constant terms for
// fixed utilities.
type MinExpr []Linear

// MinOf builds a MinExpr from terms.
func MinOf(terms ...Linear) MinExpr { return MinExpr(terms) }

// Eval evaluates the minimum at the given assignment. Evaluating an
// empty MinExpr returns +Inf (the identity of min).
func (m MinExpr) Eval(assign map[string]float64) float64 {
	v := math.Inf(1)
	for _, t := range m {
		if tv := t.Eval(assign); tv < v {
			v = tv
		}
	}
	return v
}

// Add returns the MinExpr shifted by a linear polynomial:
// min_i(t_i) + q = min_i(t_i + q).
func (m MinExpr) Add(q Linear) MinExpr {
	r := make(MinExpr, len(m))
	for i, t := range m {
		r[i] = t.Add(q)
	}
	return r
}

// Scale multiplies by k >= 0 (scaling by a negative constant would turn
// min into max and is rejected).
func (m MinExpr) Scale(k float64) (MinExpr, error) {
	if k < 0 {
		return nil, fmt.Errorf("poly: scaling MinExpr by negative %g", k)
	}
	r := make(MinExpr, len(m))
	for i, t := range m {
		r[i] = t.Scale(k)
	}
	return r, nil
}

// Merge returns min(m, n) as a single MinExpr.
func (m MinExpr) Merge(n MinExpr) MinExpr {
	r := make(MinExpr, 0, len(m)+len(n))
	r = append(r, m...)
	r = append(r, n...)
	return r
}

// Vars returns the sorted union of variables across all terms.
func (m MinExpr) Vars() []string {
	set := map[string]bool{}
	for _, t := range m {
		for _, v := range t.Vars() {
			set[v] = true
		}
	}
	vs := make([]string, 0, len(set))
	for v := range set {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

func (m MinExpr) String() string {
	if len(m) == 1 {
		return m[0].String()
	}
	parts := make([]string, len(m))
	for i, t := range m {
		parts[i] = t.String()
	}
	return "min(" + strings.Join(parts, ", ") + ")"
}

// Case is one alternative of a piecewise utility: when all Constraints
// evaluate >= 0 the seed may be placed under this case and contributes
// Util to the monitoring utility. A util body with `or` conditions or
// several `if` branches compiles to multiple cases (§III-B-b).
type Case struct {
	Constraints []Linear // each must be >= 0 for the case to apply
	Util        MinExpr  // utility under this case
}

// Feasible reports whether all constraints hold at the assignment
// (with tolerance eps for roundoff).
func (c Case) Feasible(assign map[string]float64, eps float64) bool {
	for _, con := range c.Constraints {
		if con.Eval(assign) < -eps {
			return false
		}
	}
	return true
}

// Utility is a full piecewise-linear utility function: the set of
// alternative cases extracted from a util callback. At most one case is
// selected by the optimizer (the paper models this by splitting the seed
// into copies, of which at most one is placed).
type Utility []Case

// Eval returns the best utility over all feasible cases, and false if no
// case is feasible at the assignment.
func (u Utility) Eval(assign map[string]float64) (float64, bool) {
	best, ok := math.Inf(-1), false
	for _, c := range u {
		if !c.Feasible(assign, 1e-9) {
			continue
		}
		if v := c.Util.Eval(assign); !ok || v > best {
			best, ok = v, true
		}
	}
	return best, ok
}

// Vars returns the sorted union of variables mentioned anywhere in u.
func (u Utility) Vars() []string {
	set := map[string]bool{}
	for _, c := range u {
		for _, con := range c.Constraints {
			for _, v := range con.Vars() {
				set[v] = true
			}
		}
		for _, v := range c.Util.Vars() {
			set[v] = true
		}
	}
	vs := make([]string, 0, len(set))
	for v := range set {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}
