package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearBasics(t *testing.T) {
	p := Constant(2).Add(Term("x", 3)).Add(Term("y", -1))
	if got := p.Eval(map[string]float64{"x": 1, "y": 4}); got != 1 {
		t.Fatalf("eval = %g, want 1", got)
	}
	if p.IsConstant() {
		t.Fatal("p should not be constant")
	}
	if !Constant(5).IsConstant() {
		t.Fatal("Constant(5) should be constant")
	}
	if got := p.CoefOf("x"); got != 3 {
		t.Fatalf("CoefOf(x) = %g, want 3", got)
	}
	if got := p.CoefOf("z"); got != 0 {
		t.Fatalf("CoefOf(z) = %g, want 0", got)
	}
}

func TestLinearVarsSorted(t *testing.T) {
	p := Term("zz", 1).Add(Term("aa", 2)).Add(Term("mm", 3))
	vs := p.Vars()
	want := []string{"aa", "mm", "zz"}
	if len(vs) != len(want) {
		t.Fatalf("vars = %v, want %v", vs, want)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("vars = %v, want %v", vs, want)
		}
	}
}

func TestLinearZeroCoefDropped(t *testing.T) {
	p := Term("x", 2).Add(Term("x", -2))
	if vs := p.Vars(); len(vs) != 0 {
		t.Fatalf("vars after cancellation = %v, want none", vs)
	}
	if !p.IsConstant() {
		t.Fatal("cancelled polynomial should be constant")
	}
}

func TestLinearMul(t *testing.T) {
	p := Term("x", 2).Add(Constant(1))
	q, err := p.Mul(Constant(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Eval(map[string]float64{"x": 2}); got != 15 {
		t.Fatalf("eval = %g, want 15", got)
	}
	if _, err := p.Mul(Term("y", 1)); err == nil {
		t.Fatal("nonlinear product should error")
	}
}

func TestLinearDiv(t *testing.T) {
	p := Term("x", 4)
	q, err := p.Div(Constant(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := q.CoefOf("x"); got != 2 {
		t.Fatalf("coef = %g, want 2", got)
	}
	if _, err := p.Div(Constant(0)); err == nil {
		t.Fatal("division by zero should error")
	}
	if _, err := p.Div(Term("y", 1)); err == nil {
		t.Fatal("division by variable should error")
	}
}

func TestLinearString(t *testing.T) {
	p := Constant(2.5).Add(Term("vCPU", 1)).Add(Term("RAM", -3))
	if got, want := p.String(), "2.5 - 3*RAM + 1*vCPU"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestLinearEqual(t *testing.T) {
	p := Constant(1).Add(Term("x", 2))
	q := Term("x", 2).Add(Constant(1))
	if !p.Equal(q, 1e-12) {
		t.Fatal("p and q should be equal")
	}
	r := q.Add(Term("y", 1e-6))
	if p.Equal(r, 1e-12) {
		t.Fatal("p and r should differ")
	}
	if !p.Equal(r, 1e-3) {
		t.Fatal("p and r should be equal within 1e-3")
	}
}

// Property: evaluation is a homomorphism for Add/Sub/Scale.
func TestEvalHomomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randLin := func() Linear {
		p := Constant(rng.NormFloat64())
		for _, v := range []string{"a", "b", "c"} {
			if rng.Intn(2) == 0 {
				p = p.Add(Term(v, rng.NormFloat64()))
			}
		}
		return p
	}
	assign := map[string]float64{"a": 1.5, "b": -2, "c": 0.25}
	for i := 0; i < 200; i++ {
		p, q := randLin(), randLin()
		k := rng.NormFloat64()
		if got, want := p.Add(q).Eval(assign), p.Eval(assign)+q.Eval(assign); math.Abs(got-want) > 1e-9 {
			t.Fatalf("add: %g != %g", got, want)
		}
		if got, want := p.Sub(q).Eval(assign), p.Eval(assign)-q.Eval(assign); math.Abs(got-want) > 1e-9 {
			t.Fatalf("sub: %g != %g", got, want)
		}
		if got, want := p.Scale(k).Eval(assign), k*p.Eval(assign); math.Abs(got-want) > 1e-9 {
			t.Fatalf("scale: %g != %g", got, want)
		}
	}
}

func TestMinExprEval(t *testing.T) {
	m := MinOf(Term("x", 1), Constant(5))
	if got := m.Eval(map[string]float64{"x": 3}); got != 3 {
		t.Fatalf("eval = %g, want 3", got)
	}
	if got := m.Eval(map[string]float64{"x": 9}); got != 5 {
		t.Fatalf("eval = %g, want 5", got)
	}
	if got := (MinExpr{}).Eval(nil); !math.IsInf(got, 1) {
		t.Fatalf("empty min = %g, want +Inf", got)
	}
}

func TestMinExprAddDistributes(t *testing.T) {
	m := MinOf(Term("x", 1), Term("y", 2))
	q := Constant(10)
	assign := map[string]float64{"x": 1, "y": 5}
	if got, want := m.Add(q).Eval(assign), m.Eval(assign)+10; got != want {
		t.Fatalf("add: %g != %g", got, want)
	}
}

func TestMinExprScale(t *testing.T) {
	m := MinOf(Term("x", 1), Constant(4))
	s, err := m.Scale(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Eval(map[string]float64{"x": 1}); got != 2 {
		t.Fatalf("eval = %g, want 2", got)
	}
	if _, err := m.Scale(-1); err == nil {
		t.Fatal("negative scale must error")
	}
}

func TestMinExprMerge(t *testing.T) {
	m := MinOf(Constant(3)).Merge(MinOf(Constant(1), Constant(2)))
	if got := m.Eval(nil); got != 1 {
		t.Fatalf("merged min = %g, want 1", got)
	}
}

// Property: min is monotone — increasing any variable with nonnegative
// coefficients everywhere never decreases the min.
func TestMinMonotone(t *testing.T) {
	f := func(c0, c1, base, delta float64) bool {
		c0, c1 = math.Abs(c0), math.Abs(c1)
		delta = math.Abs(delta)
		m := MinOf(Term("x", c0).Add(Constant(1)), Term("x", c1))
		lo := m.Eval(map[string]float64{"x": base})
		hi := m.Eval(map[string]float64{"x": base + delta})
		return hi >= lo-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCaseFeasible(t *testing.T) {
	c := Case{
		Constraints: []Linear{Term("vCPU", 1).Sub(Constant(1)), Term("RAM", 1).Sub(Constant(100))},
		Util:        MinOf(Term("vCPU", 1)),
	}
	if !c.Feasible(map[string]float64{"vCPU": 2, "RAM": 128}, 0) {
		t.Fatal("should be feasible")
	}
	if c.Feasible(map[string]float64{"vCPU": 0.5, "RAM": 128}, 0) {
		t.Fatal("should be infeasible (vCPU)")
	}
	if c.Feasible(map[string]float64{"vCPU": 2, "RAM": 64}, 0) {
		t.Fatal("should be infeasible (RAM)")
	}
}

func TestUtilityEvalPicksBestFeasibleCase(t *testing.T) {
	u := Utility{
		{Constraints: []Linear{Term("x", 1).Sub(Constant(10))}, Util: MinOf(Constant(100))},
		{Constraints: nil, Util: MinOf(Constant(1))},
	}
	if v, ok := u.Eval(map[string]float64{"x": 20}); !ok || v != 100 {
		t.Fatalf("eval = %g,%v want 100,true", v, ok)
	}
	if v, ok := u.Eval(map[string]float64{"x": 0}); !ok || v != 1 {
		t.Fatalf("eval = %g,%v want 1,true", v, ok)
	}
	empty := Utility{{Constraints: []Linear{Constant(-1)}}}
	if _, ok := empty.Eval(nil); ok {
		t.Fatal("no case should be feasible")
	}
}

func TestUtilityVars(t *testing.T) {
	u := Utility{
		{Constraints: []Linear{Term("RAM", 1)}, Util: MinOf(Term("vCPU", 1), Term("PCIe", 1))},
	}
	vs := u.Vars()
	want := []string{"PCIe", "RAM", "vCPU"}
	if len(vs) != 3 {
		t.Fatalf("vars = %v, want %v", vs, want)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("vars = %v, want %v", vs, want)
		}
	}
}

// The HH example from the paper (List. 2): util returns
// min(res.vCPU, res.PCIe) under vCPU>=1 and RAM>=100.
func TestPaperHHUtility(t *testing.T) {
	u := Utility{{
		Constraints: []Linear{
			Term("vCPU", 1).Sub(Constant(1)),
			Term("RAM", 1).Sub(Constant(100)),
		},
		Util: MinOf(Term("vCPU", 1), Term("PCIe", 1)),
	}}
	v, ok := u.Eval(map[string]float64{"vCPU": 2, "RAM": 256, "PCIe": 1.5})
	if !ok || v != 1.5 {
		t.Fatalf("eval = %g,%v want 1.5,true", v, ok)
	}
	if _, ok := u.Eval(map[string]float64{"vCPU": 0.5, "RAM": 256, "PCIe": 1.5}); ok {
		t.Fatal("should be infeasible below vCPU=1")
	}
}
