package fabric

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"farm/internal/dataplane"
	"farm/internal/engine"
	"farm/internal/netmodel"
)

// TestFlowHashMatchesFmt pins the allocation-free ECMP hash to the
// original fmt/fnv formulation byte for byte: if they ever diverge,
// path selection — and with it every experiment's output — would shift.
func TestFlowHashMatchesFmt(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		k := dataplane.FlowKey{
			SrcIP:   netip.AddrFrom4([4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}),
			DstIP:   netip.AddrFrom4([4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}),
			SrcPort: uint16(rng.Intn(1 << 16)),
			DstPort: uint16(rng.Intn(1 << 16)),
			Proto:   []dataplane.Proto{dataplane.ProtoTCP, dataplane.ProtoUDP, dataplane.ProtoICMP, dataplane.ProtoAny, dataplane.Proto(rng.Intn(256))}[rng.Intn(5)],
		}
		h := fnv.New32a()
		fmt.Fprintf(h, "%v", k)
		if want, got := h.Sum32(), flowHash(k); got != want {
			t.Fatalf("flow %v: hash %08x, fmt reference %08x", k, got, want)
		}
	}
}

func TestFlowHashAllocationFree(t *testing.T) {
	k := dataplane.FlowKey{
		SrcIP:   netip.MustParseAddr("10.1.0.1"),
		DstIP:   netip.MustParseAddr("10.3.0.7"),
		SrcPort: 40000, DstPort: 443, Proto: dataplane.ProtoTCP,
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = flowHash(k) }); allocs != 0 {
		t.Fatalf("flowHash allocates %v per call, want 0", allocs)
	}
}

// BenchmarkFlowHash compares the seed's fmt+fnv ECMP hash with the
// allocation-free replacement on the packet path.
func BenchmarkFlowHash(b *testing.B) {
	k := dataplane.FlowKey{
		SrcIP:   netip.MustParseAddr("10.1.0.1"),
		DstIP:   netip.MustParseAddr("10.3.0.7"),
		SrcPort: 40000, DstPort: 443, Proto: dataplane.ProtoTCP,
	}
	b.Run("fmt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h := fnv.New32a()
			fmt.Fprintf(h, "%v", k)
			_ = h.Sum32()
		}
	})
	b.Run("append", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = flowHash(k)
		}
	})
}

// BenchmarkFabricSend measures the full per-packet fabric path — ECMP
// selection plus multi-hop Inject through each switch's classifier.
func BenchmarkFabricSend(b *testing.B) {
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{Spines: 2, Leaves: 4, HostsPerLeaf: 4})
	if err != nil {
		b.Fatal(err)
	}
	loop := engine.NewSerial()
	fab := New(topo, loop, Options{})
	// A monitoring rule on every switch, as deployed tasks would install.
	for _, sw := range topo.Switches() {
		if err := fab.Switch(sw.ID).TCAM().AddRule(dataplane.Rule{
			Priority: 1, Filter: dataplane.Filter{Proto: dataplane.ProtoTCP, DstPort: 80}, Action: dataplane.ActCount,
		}); err != nil {
			b.Fatal(err)
		}
	}
	pkts := make([]dataplane.Packet, 64)
	for i := range pkts {
		pkts[i] = dataplane.Packet{
			SrcIP: HostIP(i%4, i%4), DstIP: HostIP((i+1)%4, (i+2)%4),
			SrcPort: uint16(1024 + i), DstPort: 80, Proto: dataplane.ProtoTCP, Size: 200,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fab.MustSend(pkts[i%len(pkts)])
		if i%1024 == 0 {
			loop.RunFor(10 * time.Millisecond) // drain cross-hop events
		}
	}
	loop.RunFor(time.Second)
}
