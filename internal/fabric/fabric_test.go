package fabric

import (
	"testing"
	"time"

	"farm/internal/dataplane"
	"farm/internal/engine"
	"farm/internal/netmodel"
)

func testFabric(t *testing.T, spines, leaves, hosts int) (*Fabric, engine.Scheduler) {
	t.Helper()
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{Spines: spines, Leaves: leaves, HostsPerLeaf: hosts})
	if err != nil {
		t.Fatal(err)
	}
	loop := engine.NewSerial()
	return New(topo, loop, Options{}), loop
}

func TestPortAssignment(t *testing.T) {
	f, _ := testFabric(t, 2, 3, 4)
	topo := f.Topology()
	for _, sw := range topo.Switches() {
		nHosts := 0
		for _, h := range topo.Hosts() {
			if h.Leaf == sw.ID {
				nHosts++
			}
		}
		want := nHosts + len(topo.Neighbors(sw.ID))
		if got := f.NumPorts(sw.ID); got != want {
			t.Fatalf("%s: ports = %d, want %d", sw.Name, got, want)
		}
		// All ports distinct and in range.
		seen := map[int]bool{}
		for _, h := range topo.Hosts() {
			if h.Leaf != sw.ID {
				continue
			}
			p, ok := f.HostPort(sw.ID, h.ID)
			if !ok || p < 1 || p > want || seen[p] {
				t.Fatalf("%s host port %d invalid", sw.Name, p)
			}
			seen[p] = true
		}
		for _, nb := range topo.Neighbors(sw.ID) {
			p, ok := f.PortToward(sw.ID, nb)
			if !ok || p < 1 || p > want || seen[p] {
				t.Fatalf("%s uplink port %d invalid", sw.Name, p)
			}
			seen[p] = true
		}
	}
}

func TestSendAcrossLeaves(t *testing.T) {
	f, loop := testFabric(t, 2, 2, 2)
	p := dataplane.Packet{
		SrcIP: HostIP(0, 0), DstIP: HostIP(1, 0),
		SrcPort: 1234, DstPort: 80, Proto: dataplane.ProtoTCP, Size: 100,
	}
	if err := f.Send(p); err != nil {
		t.Fatal(err)
	}
	loop.RunFor(time.Millisecond)
	if f.Delivered() != 1 {
		t.Fatalf("delivered = %d, want 1", f.Delivered())
	}
	// The packet crossed leaf0 -> a spine -> leaf1: each switch on the
	// path saw it once.
	path, err := f.PathFor(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("path = %v, want 3 hops", path)
	}
	for i, sw := range path {
		total := uint64(0)
		for port := 1; port <= f.NumPorts(sw); port++ {
			st, _ := f.Switch(sw).PortStats(port)
			total += st.RxPackets
		}
		if total != 1 {
			t.Fatalf("hop %d (%s) saw %d packets, want 1", i, f.Topology().Switch(sw).Name, total)
		}
	}
}

func TestSendSameLeaf(t *testing.T) {
	f, loop := testFabric(t, 2, 2, 2)
	p := dataplane.Packet{
		SrcIP: HostIP(0, 0), DstIP: HostIP(0, 1),
		SrcPort: 1, DstPort: 2, Proto: dataplane.ProtoUDP, Size: 64,
	}
	if err := f.Send(p); err != nil {
		t.Fatal(err)
	}
	loop.RunFor(time.Millisecond)
	if f.Delivered() != 1 {
		t.Fatalf("delivered = %d", f.Delivered())
	}
}

func TestSendUnknownHost(t *testing.T) {
	f, _ := testFabric(t, 1, 1, 1)
	p := dataplane.Packet{SrcIP: HostIP(9, 9), DstIP: HostIP(0, 0), Size: 10}
	if err := f.Send(p); err == nil {
		t.Fatal("unknown source should error")
	}
}

func TestECMPDeterministicPerFlow(t *testing.T) {
	f, _ := testFabric(t, 4, 2, 1)
	p := dataplane.Packet{
		SrcIP: HostIP(0, 0), DstIP: HostIP(1, 0),
		SrcPort: 1234, DstPort: 80, Proto: dataplane.ProtoTCP, Size: 100,
	}
	p1, err := f.PathFor(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := f.PathFor(p)
	if p1.Key() != p2.Key() {
		t.Fatal("same flow must take the same path")
	}
	// Different flows should (eventually) spread across spines.
	seen := map[string]bool{}
	for sp := uint16(1); sp <= 64; sp++ {
		q := p
		q.SrcPort = sp
		qp, _ := f.PathFor(q)
		seen[qp.Key()] = true
	}
	if len(seen) < 2 {
		t.Fatal("ECMP did not spread flows across paths")
	}
}

func TestTCAMDropStopsForwarding(t *testing.T) {
	f, loop := testFabric(t, 1, 2, 1)
	p := dataplane.Packet{
		SrcIP: HostIP(0, 0), DstIP: HostIP(1, 0),
		SrcPort: 5, DstPort: 666, Proto: dataplane.ProtoTCP, Size: 100,
	}
	path, _ := f.PathFor(p)
	// Install a drop rule at the first hop.
	err := f.Switch(path[0]).TCAM().AddRule(dataplane.Rule{
		Priority: 10, Filter: dataplane.Filter{DstPort: 666}, Action: dataplane.ActDrop,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Send(p)
	loop.RunFor(time.Millisecond)
	if f.Delivered() != 0 || f.DroppedInFabric() != 1 {
		t.Fatalf("delivered=%d dropped=%d", f.Delivered(), f.DroppedInFabric())
	}
	// Downstream switches never saw the packet.
	for _, sw := range path[1:] {
		for port := 1; port <= f.NumPorts(sw); port++ {
			st, _ := f.Switch(sw).PortStats(port)
			if st.RxPackets != 0 {
				t.Fatalf("switch %v saw dropped packet", sw)
			}
		}
	}
}

func TestControlLatencyMonotoneInHops(t *testing.T) {
	f, _ := testFabric(t, 2, 2, 1)
	topo := f.Topology()
	var spine, leaf netmodel.SwitchID
	for _, s := range topo.Switches() {
		switch s.Role {
		case netmodel.Spine:
			spine = s.ID
		case netmodel.Leaf:
			leaf = s.ID
		}
	}
	// Central attaches at switch 0 (a spine): spine closer than leaf.
	if f.ControlLatency(spine) >= f.ControlLatency(leaf) && spine == netmodel.SwitchID(0) {
		t.Fatalf("central spine latency %v should be < leaf %v",
			f.ControlLatency(spine), f.ControlLatency(leaf))
	}
}

func TestSendToCentralMetersTraffic(t *testing.T) {
	f, loop := testFabric(t, 1, 2, 1)
	var leaf netmodel.SwitchID
	for _, s := range f.Topology().Switches() {
		if s.Role == netmodel.Leaf {
			leaf = s.ID
			break
		}
	}
	delivered := false
	f.SendToCentral(leaf, 256, func() { delivered = true })
	if f.CentralNet.Packets() != 1 || f.CentralNet.Bytes() != 256 {
		t.Fatalf("central meter = %d pkts, %d bytes", f.CentralNet.Packets(), f.CentralNet.Bytes())
	}
	if delivered {
		t.Fatal("delivery must be delayed")
	}
	loop.RunFor(10 * time.Millisecond)
	if !delivered {
		t.Fatal("message never delivered")
	}
	if f.CPU(leaf).Busy() == 0 {
		t.Fatal("serialization cost not charged")
	}
}

func TestSwitchToSwitchLatency(t *testing.T) {
	f, loop := testFabric(t, 2, 2, 1)
	var leaves []netmodel.SwitchID
	for _, s := range f.Topology().Switches() {
		if s.Role == netmodel.Leaf {
			leaves = append(leaves, s.ID)
		}
	}
	var at time.Duration
	f.SendSwitchToSwitch(leaves[0], leaves[1], 64, func() { at = loop.Now() })
	loop.RunFor(10 * time.Millisecond)
	want := DefaultControlBaseLatency + 2*DefaultHopLatency // leaf-spine-leaf = 2 hops
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	// Same-switch messages are cheaper.
	var local time.Duration
	start := loop.Now()
	f.SendSwitchToSwitch(leaves[0], leaves[0], 64, func() { local = loop.Now() - start })
	loop.RunFor(10 * time.Millisecond)
	if local >= want {
		t.Fatalf("local delivery %v not faster than remote %v", local, want)
	}
}
