// Package fabric ties the pieces of the emulated data center together:
// it instantiates one emulated ASIC (dataplane.Switch), PCIe bus, driver,
// and CPU meter per topology switch, routes generated packets hop-by-hop
// along ECMP paths, and models control-plane communication latency
// between switches and centralized components.
//
// The fabric is the layer that maps the emulation onto the engine's
// shards: every switch has a home shard (round-robin over sorted switch
// IDs), all of a switch's state — its ASIC, TCAM, PCIe bus, CPU meter,
// soil — is mutated only by events on that shard, and anything that
// crosses switches (packet hops, control messages to/from the central
// components, seed-to-seed sends) is routed through Partitioned.CrossAfter
// so the sharded engine can merge it deterministically at epoch barriers.
// Centralized components (seeder, harvesters, collectors) live on shard 0.
package fabric

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"farm/internal/dataplane"
	"farm/internal/engine"
	"farm/internal/metrics"
	"farm/internal/netmodel"
)

// Options configures fabric construction.
type Options struct {
	// BusBytesPerSec is the PCIe polling capacity per switch;
	// 0 means dataplane.DefaultPCIePollBytesPerSec.
	BusBytesPerSec float64
	// HopLatency is the per-switch-hop propagation+forwarding delay;
	// 0 means DefaultHopLatency.
	HopLatency time.Duration
	// ControlBaseLatency is the fixed software overhead of any
	// control-plane message; 0 means DefaultControlBaseLatency.
	ControlBaseLatency time.Duration
	// CPUCores is the management CPU core count per switch; 0 means 4.
	CPUCores float64
	// Costs is the CPU cost model; the zero value means
	// metrics.DefaultCostModel().
	Costs metrics.CostModel
	// CentralAt is the switch the centralized components (seeder,
	// harvesters, collectors) attach behind. Defaults to switch 0
	// (a spine under the SpineLeaf builder).
	CentralAt netmodel.SwitchID
}

// Default latency constants for an intra-DC fabric.
const (
	DefaultHopLatency         = 50 * time.Microsecond
	DefaultControlBaseLatency = 100 * time.Microsecond
)

// MinCrossLatency returns the smallest delay any cross-switch event can
// carry under these options: the lesser of one forwarding hop and a
// same-switch control round (ControlBaseLatency/2, see SwitchLatency).
// A sharded engine's lookahead window must not exceed it.
func (o Options) MinCrossLatency() time.Duration {
	hop := o.HopLatency
	if hop == 0 {
		hop = DefaultHopLatency
	}
	base := o.ControlBaseLatency
	if base == 0 {
		base = DefaultControlBaseLatency
	}
	if hop < base/2 {
		return hop
	}
	return base / 2
}

// padCounter is a per-shard event counter, padded so shards don't
// false-share cache lines.
type padCounter struct {
	n uint64
	_ [7]uint64
}

// Fabric is the assembled emulated data center.
type Fabric struct {
	topo  *netmodel.Topology
	sched engine.Scheduler
	part  engine.Partitioned
	opts  Options
	costs metrics.CostModel

	switches map[netmodel.SwitchID]*dataplane.Switch
	drivers  map[netmodel.SwitchID]*dataplane.EmuDriver
	cpus     map[netmodel.SwitchID]*metrics.CPUMeter
	// ports[sw] maps neighbor switch IDs and host IDs to 1-based ports.
	swPorts   map[netmodel.SwitchID]map[netmodel.SwitchID]int
	hostPorts map[netmodel.SwitchID]map[netmodel.HostID]int
	numPorts  map[netmodel.SwitchID]int

	// shardOf pins each switch to its home shard; shardScheds caches the
	// per-shard scheduler views.
	shardOf     map[netmodel.SwitchID]int
	shardScheds []engine.Scheduler

	// CentralNet meters all traffic into centralized components: the
	// collector-bottleneck measurement of Fig. 4. One lane per shard;
	// senders add on their home lane at send time.
	CentralNet *metrics.NetMeter

	hopDist map[netmodel.SwitchID]int // hops to CentralAt

	delivered []padCounter // per shard
	dropped   []padCounter // per shard
}

// New assembles a fabric over the topology, scheduling onto sched. When
// sched is partitioned with more than one shard (engine.Sharded),
// switches are spread round-robin (in switch-ID order) across the
// shards and every cross-switch interaction goes through CrossAfter.
func New(topo *netmodel.Topology, sched engine.Scheduler, opts Options) *Fabric {
	if opts.HopLatency == 0 {
		opts.HopLatency = DefaultHopLatency
	}
	if opts.ControlBaseLatency == 0 {
		opts.ControlBaseLatency = DefaultControlBaseLatency
	}
	if opts.CPUCores == 0 {
		opts.CPUCores = 4
	}
	if opts.Costs == (metrics.CostModel{}) {
		opts.Costs = metrics.DefaultCostModel()
	}
	part, ok := sched.(engine.Partitioned)
	if !ok {
		part = singleShard{sched}
	}
	if la, ok := sched.(interface{ Lookahead() time.Duration }); ok && part.Shards() > 1 {
		if min := opts.MinCrossLatency(); la.Lookahead() > min {
			panic(fmt.Sprintf("fabric: engine lookahead %v exceeds minimum cross-switch latency %v",
				la.Lookahead(), min))
		}
	}
	f := &Fabric{
		topo:        topo,
		sched:       sched,
		part:        part,
		opts:        opts,
		costs:       opts.Costs,
		switches:    make(map[netmodel.SwitchID]*dataplane.Switch),
		drivers:     make(map[netmodel.SwitchID]*dataplane.EmuDriver),
		cpus:        make(map[netmodel.SwitchID]*metrics.CPUMeter),
		swPorts:     make(map[netmodel.SwitchID]map[netmodel.SwitchID]int),
		hostPorts:   make(map[netmodel.SwitchID]map[netmodel.HostID]int),
		numPorts:    make(map[netmodel.SwitchID]int),
		shardOf:     make(map[netmodel.SwitchID]int),
		shardScheds: make([]engine.Scheduler, part.Shards()),
		CentralNet:  metrics.NewNetMeterLanes(sched, part.Shards()),
		delivered:   make([]padCounter, part.Shards()),
		dropped:     make([]padCounter, part.Shards()),
	}
	for i := range f.shardScheds {
		f.shardScheds[i] = part.Shard(i)
	}

	// Home-shard assignment: round-robin in switch-ID order, so the
	// mapping is independent of topology-map iteration order.
	ids := make([]netmodel.SwitchID, 0, len(topo.Switches()))
	for _, sw := range topo.Switches() {
		ids = append(ids, sw.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		f.shardOf[id] = i % part.Shards()
	}

	// Port assignment: hosts first (in host-ID order), then neighbor
	// switches (in ID order).
	hostsBySwitch := map[netmodel.SwitchID][]netmodel.HostID{}
	for _, h := range topo.Hosts() {
		hostsBySwitch[h.Leaf] = append(hostsBySwitch[h.Leaf], h.ID)
	}
	for _, sw := range topo.Switches() {
		port := 1
		f.hostPorts[sw.ID] = map[netmodel.HostID]int{}
		for _, h := range hostsBySwitch[sw.ID] {
			f.hostPorts[sw.ID][h] = port
			port++
		}
		nbs := append([]netmodel.SwitchID(nil), topo.Neighbors(sw.ID)...)
		sort.Slice(nbs, func(i, j int) bool { return nbs[i] < nbs[j] })
		f.swPorts[sw.ID] = map[netmodel.SwitchID]int{}
		for _, nb := range nbs {
			f.swPorts[sw.ID][nb] = port
			port++
		}
		f.numPorts[sw.ID] = port - 1

		tcamCap := int(sw.Capacity[netmodel.ResTCAM])
		if tcamCap <= 0 {
			tcamCap = 1024
		}
		ds := dataplane.NewSwitch(sw.Name, port-1, tcamCap)
		f.switches[sw.ID] = ds
		home := f.shardScheds[f.shardOf[sw.ID]]
		bus := dataplane.NewBus(home, opts.BusBytesPerSec)
		f.drivers[sw.ID] = dataplane.NewEmuDriver(ds, bus)
		f.cpus[sw.ID] = metrics.NewCPUMeter(home, opts.CPUCores)
	}

	// BFS hop distance to the central attachment point.
	f.hopDist = map[netmodel.SwitchID]int{opts.CentralAt: 0}
	queue := []netmodel.SwitchID{opts.CentralAt}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range topo.Neighbors(cur) {
			if _, seen := f.hopDist[nb]; !seen {
				f.hopDist[nb] = f.hopDist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return f
}

// singleShard adapts a plain Scheduler to the Partitioned interface.
type singleShard struct{ engine.Scheduler }

func (s singleShard) Shards() int { return 1 }
func (s singleShard) Shard(i int) engine.Scheduler {
	if i != 0 {
		panic("fabric: scheduler has a single shard")
	}
	return s.Scheduler
}
func (s singleShard) CrossAfter(from, to int, d time.Duration, fn func()) {
	s.After(d, fn)
}

// Sched returns the root scheduler driving the fabric. Runs
// (RunFor/RunUntil/Step/Drain) go through it.
func (f *Fabric) Sched() engine.Scheduler { return f.sched }

// Partition returns the shard-routing view of the scheduler.
func (f *Fabric) Partition() engine.Partitioned { return f.part }

// ShardOf returns the home shard of a switch.
func (f *Fabric) ShardOf(id netmodel.SwitchID) int { return f.shardOf[id] }

// SchedulerFor returns the scheduler view of a switch's home shard. All
// events touching the switch's state must be scheduled through it.
func (f *Fabric) SchedulerFor(id netmodel.SwitchID) engine.Scheduler {
	return f.shardScheds[f.shardOf[id]]
}

// CentralShard is the home shard of the centralized components.
const CentralShard = 0

// CentralSched returns the scheduler view the centralized components
// (seeder, harvesters, collectors) schedule through.
func (f *Fabric) CentralSched() engine.Scheduler { return f.shardScheds[CentralShard] }

// Topology returns the underlying topology.
func (f *Fabric) Topology() *netmodel.Topology { return f.topo }

// Costs returns the CPU cost model.
func (f *Fabric) Costs() metrics.CostModel { return f.costs }

// Switch returns the emulated ASIC of a switch.
func (f *Fabric) Switch(id netmodel.SwitchID) *dataplane.Switch { return f.switches[id] }

// Driver returns the ASIC driver of a switch.
func (f *Fabric) Driver(id netmodel.SwitchID) *dataplane.EmuDriver { return f.drivers[id] }

// CPU returns the management CPU meter of a switch.
func (f *Fabric) CPU(id netmodel.SwitchID) *metrics.CPUMeter { return f.cpus[id] }

// NumPorts returns the port count of a switch.
func (f *Fabric) NumPorts(id netmodel.SwitchID) int { return f.numPorts[id] }

// HostPort returns the 1-based port a host attaches to on its leaf.
func (f *Fabric) HostPort(sw netmodel.SwitchID, h netmodel.HostID) (int, bool) {
	p, ok := f.hostPorts[sw][h]
	return p, ok
}

// PortToward returns the 1-based port of sw facing neighbor nb.
func (f *Fabric) PortToward(sw, nb netmodel.SwitchID) (int, bool) {
	p, ok := f.swPorts[sw][nb]
	return p, ok
}

// Delivered returns the number of packets that reached their last hop.
// Summed over per-shard counters; read it while the engine is quiescent.
func (f *Fabric) Delivered() uint64 {
	var n uint64
	for i := range f.delivered {
		n += f.delivered[i].n
	}
	return n
}

// DroppedInFabric returns packets dropped by TCAM rules en route.
// Summed over per-shard counters; read it while the engine is quiescent.
func (f *Fabric) DroppedInFabric() uint64 {
	var n uint64
	for i := range f.dropped {
		n += f.dropped[i].n
	}
	return n
}

// PathFor returns the ECMP path a flow takes between two hosts,
// selected deterministically by flow hash.
func (f *Fabric) PathFor(p dataplane.Packet) (netmodel.Path, error) {
	src, ok := f.topo.HostByIP(p.SrcIP)
	if !ok {
		return nil, fmt.Errorf("fabric: unknown source host %v", p.SrcIP)
	}
	dst, ok := f.topo.HostByIP(p.DstIP)
	if !ok {
		return nil, fmt.Errorf("fabric: unknown destination host %v", p.DstIP)
	}
	paths := f.topo.Paths(src.Leaf, dst.Leaf)
	if len(paths) == 0 {
		return nil, fmt.Errorf("fabric: no path %v -> %v", src.Leaf, dst.Leaf)
	}
	return paths[int(flowHash(p.Flow()))%len(paths)], nil
}

// flowHash is the ECMP path selector: FNV-1a over the flow's canonical
// text bytes. Byte-identical to the previous
// fmt.Fprintf(fnv.New32a(), "%v", flow) — path selection, and with it
// every experiment output, is unchanged (TestFlowHashMatchesFmt pins
// this) — but without the hasher and fmt allocations on the per-packet
// path.
func flowHash(k dataplane.FlowKey) uint32 {
	var arr [64]byte
	b := k.AppendTo(arr[:0])
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	return h
}

// Send injects a packet at its source host's leaf and forwards it
// hop-by-hop along its ECMP path, applying each switch's TCAM. The
// packet is dropped mid-path if a rule says so.
//
// Under a sharded engine, Send must be called either from an event on
// the source leaf's home shard (traffic.BulkWorkload arranges this) or
// from the driving goroutine between runs.
func (f *Fabric) Send(p dataplane.Packet) error {
	path, err := f.PathFor(p)
	if err != nil {
		return err
	}
	src, _ := f.topo.HostByIP(p.SrcIP)
	dst, _ := f.topo.HostByIP(p.DstIP)

	var step func(i int)
	step = func(i int) {
		sw := path[i]
		inPort := 0
		if i == 0 {
			inPort = f.hostPorts[sw][src.ID]
		} else {
			inPort = f.swPorts[sw][path[i-1]]
		}
		outPort := 0
		if i == len(path)-1 {
			outPort = f.hostPorts[sw][dst.ID]
		} else {
			outPort = f.swPorts[sw][path[i+1]]
		}
		v := f.switches[sw].Inject(p, inPort, outPort)
		if v.Dropped {
			f.dropped[f.shardOf[sw]].n++
			return
		}
		if i == len(path)-1 {
			f.delivered[f.shardOf[sw]].n++
			return
		}
		f.part.CrossAfter(f.shardOf[sw], f.shardOf[path[i+1]], f.opts.HopLatency,
			func() { step(i + 1) })
	}
	step(0)
	return nil
}

// MustSend is Send for callers holding pre-validated addresses.
func (f *Fabric) MustSend(p dataplane.Packet) {
	if err := f.Send(p); err != nil {
		panic(err)
	}
}

// HostIP returns the i-th host IP on the given leaf index under the
// SpineLeaf addressing scheme (convenience for generators/tests).
func HostIP(leafIndex, hostIndex int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(leafIndex), byte(hostIndex / 250), byte(hostIndex%250 + 1)})
}

// ControlLatency returns the one-way latency for a control-plane message
// from a switch's CPU to the centralized components.
func (f *Fabric) ControlLatency(from netmodel.SwitchID) time.Duration {
	hops, ok := f.hopDist[from]
	if !ok {
		hops = 3
	}
	return f.opts.ControlBaseLatency + time.Duration(hops)*f.opts.HopLatency
}

// SwitchLatency returns the one-way control-plane latency between two
// switch CPUs.
func (f *Fabric) SwitchLatency(a, b netmodel.SwitchID) time.Duration {
	if a == b {
		return f.opts.ControlBaseLatency / 2
	}
	paths := f.topo.Paths(a, b)
	hops := 3
	if len(paths) > 0 {
		hops = len(paths[0]) - 1
	}
	return f.opts.ControlBaseLatency + time.Duration(hops)*f.opts.HopLatency
}

// MTU is the payload capacity used to convert message sizes into
// packet counts on the central links.
const MTU = 1400

// SendToCentral models a control message from a switch to a centralized
// component: it meters the bytes (and MTU-derived packet count) on the
// central links, charges serialization cost to the switch CPU, and
// delivers fn on the central shard after the control latency. It must be
// called from the sending switch's home shard (or between runs).
func (f *Fabric) SendToCentral(from netmodel.SwitchID, bytes int, fn func()) {
	pkts := (bytes + MTU - 1) / MTU
	if pkts < 1 {
		pkts = 1
	}
	home := f.shardOf[from]
	f.CentralNet.AddLane(home, pkts, bytes)
	f.cpus[from].Charge(time.Duration(bytes) * f.costs.SerializePerByte)
	f.part.CrossAfter(home, CentralShard, f.ControlLatency(from), fn)
}

// SendFromCentral models a control message from a centralized component
// to a switch CPU; fn is delivered on the switch's home shard.
func (f *Fabric) SendFromCentral(to netmodel.SwitchID, bytes int, fn func()) {
	f.part.CrossAfter(CentralShard, f.shardOf[to], f.ControlLatency(to), fn)
}

// SendSwitchToSwitch models a control message between two switch CPUs
// (seed-to-seed communication, §II-C-b). It must be called from the
// sending switch's home shard; fn is delivered on the receiver's.
func (f *Fabric) SendSwitchToSwitch(from, to netmodel.SwitchID, bytes int, fn func()) {
	f.cpus[from].Charge(time.Duration(bytes) * f.costs.SerializePerByte)
	f.part.CrossAfter(f.shardOf[from], f.shardOf[to], f.SwitchLatency(from, to), fn)
}
