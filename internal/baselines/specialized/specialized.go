// Package specialized records the reference latencies of the two
// specialized link-utilization/HH monitoring systems the paper compares
// against in Tab. 4. Planck and Helios are closed systems built on
// special-purpose hardware (mirror-port packet processing and a hybrid
// electrical/optical fabric, respectively); the paper cites their
// published detection times rather than re-running them, and this
// reproduction does the same.
package specialized

import "time"

// Reference is one specialized system's published detection time.
type Reference struct {
	System string
	Kind   string // "specialized" per Tab. 4's type column
	// DetectTime is the published HH/link-utilization detection
	// latency.
	DetectTime time.Duration
	Source     string
}

// PlanckDetectTime is Planck's millisecond-scale monitoring latency at
// 10 Gbps (Rasley et al., SIGCOMM'14), as cited in Tab. 4.
const PlanckDetectTime = 4 * time.Millisecond

// HeliosDetectTime is Helios's measured reaction latency (Farrington et
// al., SIGCOMM'11), as cited in Tab. 4.
const HeliosDetectTime = 77 * time.Millisecond

// References returns the Tab. 4 rows for the specialized systems.
func References() []Reference {
	return []Reference{
		{System: "Planck", Kind: "S", DetectTime: PlanckDetectTime, Source: "Rasley et al., SIGCOMM'14 (10 Gbps)"},
		{System: "Helios", Kind: "S", DetectTime: HeliosDetectTime, Source: "Farrington et al., SIGCOMM'11"},
	}
}
