// Package sonata emulates a Sonata-style stream-telemetry system
// (Gupta et al., SIGCOMM'18): declarative dataflow queries whose simple
// aggregation steps run in the switch data plane (P4) and whose
// remaining operators run in a centralized micro-batch stream processor
// (the Spark Streaming role).
//
// Characteristics reproduced from the paper's comparison (§VI-B, §VII):
//   - state on switches is limited to per-key aggregates within a
//     window; results only surface at window boundaries, so detection
//     latency ≈ window + micro-batch processing + collection delay
//     (the 3427 ms row in Tab. 4);
//   - no cross-switch stream merging: heavy hitters are switch-local;
//   - each window's partial aggregates stream to the central processor,
//     scaled by a data-plane aggregation factor.
package sonata

import (
	"sort"
	"time"

	"farm/internal/dataplane"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
)

// ReduceOp is the aggregation applied per key within a window.
type ReduceOp int

const (
	Count ReduceOp = iota + 1
	SumBytes
)

// KeyFunc extracts the grouping key from a packet.
type KeyFunc func(p dataplane.Packet, inPort int) string

// KeyByDstIP groups by destination address (classic HH query).
func KeyByDstIP(p dataplane.Packet, _ int) string { return p.DstIP.String() }

// KeyBySrcIP groups by source address (super-spreader style).
func KeyBySrcIP(p dataplane.Packet, _ int) string { return p.SrcIP.String() }

// KeyByInPort groups by ingress port (port-level HH, comparable to
// FARM's HH seed).
func KeyByInPort(_ dataplane.Packet, inPort int) string {
	return portKey(inPort)
}

func portKey(port int) string {
	return "port:" + itoa(port)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Query is one Sonata dataflow: filter → key → reduce within Window,
// then `having value >= Threshold` evaluated centrally per (switch,key).
type Query struct {
	Name      string
	Filter    dataplane.Filter
	Key       KeyFunc
	Reduce    ReduceOp
	Window    time.Duration
	Threshold float64
}

// Config tunes the system-level behaviour.
type Config struct {
	// BatchDelay models the stream processor's micro-batch scheduling
	// and computation time; results of a window surface this long after
	// the window closes. 0 means DefaultBatchDelay.
	BatchDelay time.Duration
	// AggregationFactor is the fraction of raw records the data-plane
	// reduction eliminates before export (the paper grants Sonata 75%,
	// the best achievable with the HH ratio changing once a minute).
	AggregationFactor float64
	// RecordBytes is the export size per surviving record; 0 means 64.
	RecordBytes int
}

// DefaultBatchDelay approximates Spark Streaming micro-batch scheduling
// plus query execution on the paper's collector hardware.
const DefaultBatchDelay = 400 * time.Millisecond

// Detection is one `having` match emitted by the stream processor.
type Detection struct {
	Query  string
	Switch netmodel.SwitchID
	Key    string
	Value  float64
	At     time.Duration
}

// System is a deployed Sonata instance. The data-plane side is
// per-switch: each (switch, query) aggregate lives on the switch's home
// shard, written by the in-ASIC tap and flushed by a window ticker on
// the same shard; only the exported batch crosses to the stream
// processor (fabric.SendToCentral → CrossAfter). Detections and the
// micro-batch delay are central-shard state.
type System struct {
	fab     *fabric.Fabric
	central engine.Scheduler // stream processor's shard-0 view
	cfg     Config

	// OnDetect fires per having-match (optional). Called on the central
	// shard.
	OnDetect func(Detection)

	detections []Detection
	tickers    []engine.Ticker
	stops      []func()
	// keyScratch is the stream processor's reusable sort buffer;
	// processBatch runs only on the central shard, so reuse is safe and
	// the per-window key sort stops allocating once it has grown.
	keyScratch []string
	// exported counts records shipped to the stream processor, in
	// per-shard single-writer lanes (flush tickers run on every shard);
	// RecordsAggregated sums them between runs.
	exported []exportLane
}

// exportLane is a cache-line-padded per-shard export counter.
type exportLane struct {
	n uint64
	_ [56]byte
}

// Deploy installs the queries on every switch.
//
// The data-plane part taps packets inside the ASIC (P4 stage), so the
// per-packet path costs no PCIe bandwidth and no management CPU — but
// its state is only a per-key aggregate, flushed at window boundaries
// to the central processor over the collection network.
func Deploy(fab *fabric.Fabric, queries []Query, cfg Config) *System {
	if cfg.BatchDelay == 0 {
		cfg.BatchDelay = DefaultBatchDelay
	}
	if cfg.RecordBytes == 0 {
		cfg.RecordBytes = 64
	}
	s := &System{
		fab:      fab,
		central:  fab.CentralSched(),
		cfg:      cfg,
		exported: make([]exportLane, fab.Partition().Shards()),
	}
	for _, swInfo := range fab.Topology().Switches() {
		swID := swInfo.ID
		home := fab.ShardOf(swID)
		sched := fab.SchedulerFor(swID)
		for _, q := range queries {
			q := q
			agg := map[string]float64{}
			// In-ASIC tap: direct sampler on the emulated switch, not
			// through the PCIe-limited driver. Samplers fire inside
			// Switch.Inject, which runs on the switch's home shard, so
			// agg is single-shard state.
			remove := fab.Switch(swID).AddSampler(q.Filter, 1, func(p dataplane.Packet) {
				// The emulated sampler sees egress-bound packets once
				// per switch; reduce in place.
				key := q.Key(p, 0)
				switch q.Reduce {
				case SumBytes:
					agg[key] += float64(p.Size)
				default:
					agg[key]++
				}
			})
			s.stops = append(s.stops, remove)
			// Window flush on the same home shard: the aggregate never
			// leaves the switch — only the export batch does.
			tk := sched.Every(q.Window, func() {
				if len(agg) == 0 {
					return
				}
				// Export surviving records to the stream processor.
				records := len(agg)
				exported := int(float64(records)*(1-cfg.AggregationFactor) + 0.999)
				if exported < 1 {
					exported = 1
				}
				s.exported[home].n += uint64(records)
				size := exported * cfg.RecordBytes
				batch := agg
				agg = map[string]float64{}
				fab.SendToCentral(swID, size, func() {
					// Micro-batch processing delay before results.
					s.central.After(cfg.BatchDelay, func() {
						s.processBatch(q, swID, batch)
					})
				})
			})
			s.tickers = append(s.tickers, tk)
		}
	}
	return s
}

// IngestCounterWindow feeds the data-plane aggregation from bulk port
// counters (used by large-scale workloads that do not generate
// per-packet events): each port with traffic contributes one record per
// window with its byte count. Call it from the sending switch's home
// shard (or the driving goroutine between runs), like any other
// switch-local export.
func (s *System) IngestCounterWindow(q Query, sw netmodel.SwitchID, portBytes map[int]float64) {
	batch := map[string]float64{}
	for port, bytes := range portBytes {
		batch[portKey(port)] = bytes
	}
	records := len(batch)
	if records == 0 {
		return
	}
	exported := int(float64(records)*(1-s.cfg.AggregationFactor) + 0.999)
	if exported < 1 {
		exported = 1
	}
	s.exported[s.fab.ShardOf(sw)].n += uint64(records)
	s.fab.SendToCentral(sw, exported*s.cfg.RecordBytes, func() {
		s.central.After(s.cfg.BatchDelay, func() {
			s.processBatch(q, sw, batch)
		})
	})
}

func (s *System) processBatch(q Query, sw netmodel.SwitchID, batch map[string]float64) {
	keys := s.keyScratch[:0]
	for k := range batch {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := batch[k]
		if v < q.Threshold {
			continue
		}
		d := Detection{Query: q.Name, Switch: sw, Key: k, Value: v, At: s.central.Now()}
		s.detections = append(s.detections, d)
		if s.OnDetect != nil {
			s.OnDetect(d)
		}
	}
	// Keep the grown backing array but drop the key references, so the
	// scratch never pins a retired batch's strings.
	for i := range keys {
		keys[i] = ""
	}
	s.keyScratch = keys[:0]
}

// Detections returns all having-matches so far. Call it while the
// engine is quiescent (the slice is owned by the central shard).
func (s *System) Detections() []Detection { return s.detections }

// RecordsAggregated returns the raw record count reduced in the data
// plane (before the aggregation factor was applied for export), summed
// over the per-shard export lanes. Call it while the engine is
// quiescent.
func (s *System) RecordsAggregated() uint64 {
	var n uint64
	for i := range s.exported {
		n += s.exported[i].n
	}
	return n
}

// Stop halts the deployment. Call it from the driving goroutine between
// runs (flush tickers live on their switches' home shards).
func (s *System) Stop() {
	for _, tk := range s.tickers {
		tk.Stop()
	}
	for _, stop := range s.stops {
		stop()
	}
}
