package sonata

import (
	"testing"
	"time"

	"farm/internal/dataplane"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
	"farm/internal/traffic"
)

func testFabric(t *testing.T, leaves, hosts int) *fabric.Fabric {
	t.Helper()
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{Spines: 1, Leaves: leaves, HostsPerLeaf: hosts})
	if err != nil {
		t.Fatal(err)
	}
	return fabric.New(topo, engine.NewSerial(), fabric.Options{})
}

func hhQuery(window time.Duration, threshold float64) Query {
	return Query{
		Name:      "hh",
		Filter:    dataplane.Filter{},
		Key:       KeyByDstIP,
		Reduce:    SumBytes,
		Window:    window,
		Threshold: threshold,
	}
}

func TestWindowedDetection(t *testing.T) {
	fab := testFabric(t, 2, 2)
	sys := Deploy(fab, []Query{hhQuery(200*time.Millisecond, 100_000)}, Config{AggregationFactor: 0.75})
	defer sys.Stop()
	g := traffic.NewGenerator(fab, 1)
	stop := g.StartFlow(traffic.FlowSpec{
		Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
		SrcPort: 1, DstPort: 80, Proto: dataplane.ProtoTCP,
		PacketSize: 1000, Rate: 2000, // 2 MB/s >> threshold per window
	})
	defer stop()
	fab.Sched().RunFor(time.Second)
	dets := sys.Detections()
	if len(dets) == 0 {
		t.Fatal("no detections")
	}
	d := dets[0]
	if d.Key != fabric.HostIP(1, 0).String() {
		t.Fatalf("detected key %q, want the heavy destination", d.Key)
	}
	// Detection cannot precede the first window boundary + batch delay.
	min := 200*time.Millisecond + DefaultBatchDelay
	if d.At < min {
		t.Fatalf("detection at %v, cannot be before %v", d.At, min)
	}
}

func TestDetectionLatencyDominatedByWindow(t *testing.T) {
	// Like the Tab. 4 comparison: with a multi-second window, latency
	// is in seconds even for an instantly recognizable HH.
	fab := testFabric(t, 2, 1)
	window := 3 * time.Second
	sys := Deploy(fab, []Query{hhQuery(window, 1000)}, Config{AggregationFactor: 0.75})
	defer sys.Stop()
	g := traffic.NewGenerator(fab, 2)
	stop := g.StartFlow(traffic.FlowSpec{
		Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
		SrcPort: 9, DstPort: 80, Proto: dataplane.ProtoTCP,
		PacketSize: 1500, Rate: 1000,
	})
	defer stop()
	fab.Sched().RunFor(5 * time.Second)
	dets := sys.Detections()
	if len(dets) == 0 {
		t.Fatal("no detections")
	}
	if dets[0].At < window {
		t.Fatalf("detection at %v before the window closed", dets[0].At)
	}
	if dets[0].At > window+time.Second {
		t.Fatalf("detection at %v, want within ~1s after the window", dets[0].At)
	}
}

func TestSwitchLocalOnly(t *testing.T) {
	// Two flows to the same destination, entering at different leaves
	// with per-flow volume below threshold but combined above: Sonata
	// must NOT detect (no cross-switch merge, §VII).
	fab := testFabric(t, 3, 2)
	sys := Deploy(fab, []Query{{
		Name: "hh", Key: KeyByDstIP, Reduce: SumBytes,
		Window: 200 * time.Millisecond, Threshold: 150_000,
	}}, Config{AggregationFactor: 0.75})
	defer sys.Stop()
	g := traffic.NewGenerator(fab, 3)
	// Each flow: 0.5 MB/s -> 100 KB per 200 ms window < 150 KB
	// threshold; combined 200 KB > threshold.
	// Use sources on distinct leaves so their ingress aggregation never
	// meets. Destination on leaf2; note the destination leaf sees BOTH
	// flows, so key the query by ingress instead for strictness... the
	// shared egress leaf legitimately sees the sum — which is exactly
	// the switch-local semantics. Assert no detection on the two
	// ingress leaves.
	stop1 := g.StartFlow(traffic.FlowSpec{
		Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(2, 0),
		SrcPort: 1, DstPort: 80, Proto: dataplane.ProtoTCP, PacketSize: 1000, Rate: 500,
	})
	defer stop1()
	stop2 := g.StartFlow(traffic.FlowSpec{
		Src: fabric.HostIP(1, 0), Dst: fabric.HostIP(2, 0),
		SrcPort: 2, DstPort: 80, Proto: dataplane.ProtoTCP, PacketSize: 1000, Rate: 500,
	})
	defer stop2()
	fab.Sched().RunFor(time.Second)
	topo := fab.Topology()
	for _, d := range sys.Detections() {
		name := topo.Switch(d.Switch).Name
		if name == "leaf0" || name == "leaf1" {
			t.Fatalf("ingress leaf %s detected a global HH it only saw half of", name)
		}
	}
}

func TestExportRespectsAggregationFactor(t *testing.T) {
	run := func(aggFactor float64) uint64 {
		fab := testFabric(t, 2, 2)
		sys := Deploy(fab, []Query{hhQuery(100*time.Millisecond, 1e12)}, Config{AggregationFactor: aggFactor})
		defer sys.Stop()
		g := traffic.NewGenerator(fab, 4)
		stop := g.StartFlow(traffic.FlowSpec{
			Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
			SrcPort: 1, DstPort: 80, Proto: dataplane.ProtoTCP, PacketSize: 500, Rate: 1000,
		})
		defer stop()
		fab.Sched().RunFor(time.Second)
		return fab.CentralNet.Bytes()
	}
	high := run(0.75)
	none := run(0)
	if high == 0 || none == 0 {
		t.Fatalf("exports: agg=%d none=%d", high, none)
	}
	if none < high {
		t.Fatalf("aggregation factor increased export: %d (0.75) vs %d (0)", high, none)
	}
}

func TestIngestCounterWindow(t *testing.T) {
	fab := testFabric(t, 1, 1)
	q := Query{Name: "hh", Key: KeyByInPort, Reduce: SumBytes, Window: time.Second, Threshold: 1000}
	sys := Deploy(fab, nil, Config{AggregationFactor: 0.75})
	defer sys.Stop()
	sys.IngestCounterWindow(q, 0, map[int]float64{1: 5000, 2: 10})
	fab.Sched().RunFor(time.Second)
	dets := sys.Detections()
	if len(dets) != 1 || dets[0].Key != "port:1" {
		t.Fatalf("detections = %v", dets)
	}
}

func TestStopSilences(t *testing.T) {
	fab := testFabric(t, 2, 1)
	sys := Deploy(fab, []Query{hhQuery(50*time.Millisecond, 1)}, Config{})
	g := traffic.NewGenerator(fab, 5)
	stop := g.StartFlow(traffic.FlowSpec{
		Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
		SrcPort: 1, DstPort: 80, Proto: dataplane.ProtoTCP, PacketSize: 100, Rate: 1000,
	})
	defer stop()
	fab.Sched().RunFor(500 * time.Millisecond)
	if len(sys.Detections()) == 0 {
		t.Fatal("no detections before stop")
	}
	sys.Stop()
	// Drain in-flight windows and micro-batches.
	fab.Sched().RunFor(2 * time.Second)
	n := len(sys.Detections())
	// Traffic keeps flowing, but no new windows may open.
	fab.Sched().RunFor(2 * time.Second)
	if got := len(sys.Detections()); got != n {
		t.Fatalf("detections kept flowing after Stop: %d -> %d", n, got)
	}
}
