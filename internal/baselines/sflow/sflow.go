// Package sflow emulates an sFlow-style collection-centric monitoring
// system (RFC 3176): per-switch agents periodically read every port's
// counters and sample packets, forwarding everything unfiltered to a
// logically centralized collector that performs all analysis.
//
// This is the paper's primary generic baseline (§VI-B): detection
// latency is dominated by the collector's analysis interval, network
// load toward the collector grows linearly with the number of ports,
// and the agent CPU cost is flat (sample-and-forward, no switch-local
// filtering).
package sflow

import (
	"time"

	"farm/internal/dataplane"
	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/metrics"
	"farm/internal/netmodel"
)

// Config parameterizes the deployment.
type Config struct {
	// PollInterval is the agents' counter-export period (the paper runs
	// 1 ms to match FARM's responsiveness, and 10 ms to reduce load).
	PollInterval time.Duration
	// SampleOneInN enables 1-in-N packet sampling when > 0.
	SampleOneInN int
	// AnalysisInterval is the collector's processing period; detection
	// happens at analysis boundaries. 0 means PollInterval.
	AnalysisInterval time.Duration
	// SampleExportBatch coalesces this many packet samples into one
	// datagram toward the collector (0 or 1 = one datagram per sample,
	// the classic behavior). The same total sample bytes cross the
	// collection network in fewer, larger packets; partial batches are
	// flushed on the poll tick, so no sample lingers longer than one
	// PollInterval.
	SampleExportBatch int
	// HHThresholdBytesPerSec classifies a port as a heavy hitter.
	HHThresholdBytesPerSec float64
}

// Detection is one heavy hitter identified by the collector.
type Detection struct {
	Switch netmodel.SwitchID
	Port   int
	At     time.Duration
}

// System is a deployed sFlow instance. The agents are per-switch: each
// polls and pre-serializes on its switch's home shard and ships records
// over the collection network (fabric.SendToCentral, a CrossAfter under
// the hood). All collector state below lives on the central shard —
// mutated only inside the shipped callbacks and the analysis ticker —
// so the whole system runs on the sharded engine with the same wire
// sizes, tick times, and latencies as the old central loop.
type System struct {
	fab     *fabric.Fabric
	central engine.Scheduler // the collector's shard-0 view
	cfg     Config

	// OnHH fires on each new detection (optional). Called on the
	// central shard.
	OnHH func(Detection)

	detections []Detection
	active     map[[2]int]bool // (switch,port) currently flagged
	pendingHH  map[[2]int]bool // classified, awaiting the analysis tick
	// collector state: last seen counters and arrival times
	lastCounters map[[2]int]counterRecord
	tickers      []engine.Ticker
	stopSamplers []func()
	samplesRecv  uint64
}

type counterRecord struct {
	at time.Duration
	st dataplane.PortStats
}

// counterExportBytes is the wire size of one port's counter record in
// an sFlow datagram.
const counterExportBytes = 88

// Deploy installs agents on every switch and starts the collector.
func Deploy(fab *fabric.Fabric, cfg Config) *System {
	if cfg.AnalysisInterval == 0 {
		cfg.AnalysisInterval = cfg.PollInterval
	}
	s := &System{
		fab:          fab,
		central:      fab.CentralSched(),
		cfg:          cfg,
		active:       map[[2]int]bool{},
		pendingHH:    map[[2]int]bool{},
		lastCounters: map[[2]int]counterRecord{},
	}
	costs := fab.Costs()
	for _, sw := range fab.Topology().Switches() {
		swID := sw.ID
		drv := fab.Driver(swID)
		cpu := fab.CPU(swID)
		sched := fab.SchedulerFor(swID)
		// Counter polling agent on the switch's home shard: read all
		// ports, pre-serialize, forward unfiltered. The poll, the CPU
		// charges, and the export all stay switch-local; only the
		// serialized record crosses to the collector.
		tk := sched.Every(cfg.PollInterval, func() {
			cpu.Charge(costs.PollIssue)
			drv.PollPortStats(nil, func(stats map[int]dataplane.PortStats) {
				// The agent does NOT analyze: it serializes and ships.
				cpu.Charge(time.Duration(len(stats)) * costs.PollPerRecord)
				size := len(stats) * counterExportBytes
				at := sched.Now()
				recs := stats
				fab.SendToCentral(swID, size, func() {
					s.ingestCounters(swID, at, recs)
				})
			})
		})
		s.tickers = append(s.tickers, tk)
		if cfg.SampleOneInN > 0 {
			batch := cfg.SampleExportBatch
			if batch < 1 {
				batch = 1
			}
			// Per-switch pending batch, confined to the switch's home
			// shard (the sampler callback and the flush ticker both run
			// there); only the shipped datagram crosses to the collector.
			pendBytes, pendCount := 0, 0
			ship := func() {
				if pendCount == 0 {
					return
				}
				n, size := uint64(pendCount), pendBytes
				pendBytes, pendCount = 0, 0
				fab.SendToCentral(swID, size, func() { s.samplesRecv += n })
			}
			stop := drv.StartSampling(dataplane.Filter{}, cfg.SampleOneInN, func(p dataplane.Packet) {
				cpu.Charge(costs.SampleProcess)
				pendBytes += sampleBytes(p)
				pendCount++
				if pendCount >= batch {
					ship()
				}
			})
			if batch > 1 {
				s.tickers = append(s.tickers, sched.Every(cfg.PollInterval, ship))
			}
			s.stopSamplers = append(s.stopSamplers, stop)
		}
	}
	// Collector analysis loop, on the central shard.
	s.tickers = append(s.tickers, s.central.Every(cfg.AnalysisInterval, s.analyze))
	return s
}

func sampleBytes(p dataplane.Packet) int {
	n := p.Size
	if n > 128 {
		n = 128
	}
	return n + 28 // truncated header + encapsulation
}

func (s *System) ingestCounters(sw netmodel.SwitchID, at time.Duration, stats map[int]dataplane.PortStats) {
	for port, st := range stats {
		key := [2]int{int(sw), port}
		prev, ok := s.lastCounters[key]
		if !ok {
			s.lastCounters[key] = counterRecord{at: at, st: st}
			continue
		}
		// Keep the newest record; rate computed at analysis time uses
		// the previous analysis window baseline, so store both.
		if at > prev.at {
			s.lastCounters[key] = counterRecord{at: at, st: st}
			s.analyzeRate(sw, port, prev, counterRecord{at: at, st: st})
		}
	}
}

// analyzeRate classifies based on the rate between two consecutive
// reports; detection is only surfaced at the collector's analysis tick,
// so here we just stage the classification.
func (s *System) analyzeRate(sw netmodel.SwitchID, port int, prev, cur counterRecord) {
	elapsed := cur.at - prev.at
	if elapsed <= 0 {
		return
	}
	rate := float64(cur.st.TxBytes-prev.st.TxBytes) / elapsed.Seconds()
	key := [2]int{int(sw), port}
	if rate >= s.cfg.HHThresholdBytesPerSec {
		s.pendingHH[key] = true
	} else {
		delete(s.pendingHH, key)
		delete(s.active, key)
	}
}

func (s *System) analyze() {
	for key := range s.pendingHH {
		if s.active[key] {
			continue
		}
		s.active[key] = true
		d := Detection{Switch: netmodel.SwitchID(key[0]), Port: key[1], At: s.central.Now()}
		s.detections = append(s.detections, d)
		if s.OnHH != nil {
			s.OnHH(d)
		}
	}
}

// Detections returns all heavy hitters found so far. Call it while the
// engine is quiescent (the slice is owned by the central shard).
func (s *System) Detections() []Detection { return s.detections }

// SamplesReceived returns how many packet samples reached the collector.
// Call it while the engine is quiescent.
func (s *System) SamplesReceived() uint64 { return s.samplesRecv }

// CentralTraffic exposes the collector-side network meter.
func (s *System) CentralTraffic() *metrics.NetMeter { return s.fab.CentralNet }

// Stop halts agents and collector. Call it from the driving goroutine
// between runs (agent tickers live on their switches' home shards).
func (s *System) Stop() {
	for _, tk := range s.tickers {
		tk.Stop()
	}
	for _, stop := range s.stopSamplers {
		stop()
	}
}
