package sflow

import (
	"testing"
	"time"

	"farm/internal/engine"
	"farm/internal/fabric"
	"farm/internal/netmodel"
	"farm/internal/traffic"
)

func testFabric(t *testing.T, leaves, hosts int) *fabric.Fabric {
	t.Helper()
	topo, err := netmodel.SpineLeaf(netmodel.SpineLeafOptions{Spines: 1, Leaves: leaves, HostsPerLeaf: hosts})
	if err != nil {
		t.Fatal(err)
	}
	return fabric.New(topo, engine.NewSerial(), fabric.Options{})
}

func TestDetectsHeavyHitter(t *testing.T) {
	fab := testFabric(t, 2, 2)
	sys := Deploy(fab, Config{
		PollInterval:           10 * time.Millisecond,
		HHThresholdBytesPerSec: 1e7,
	})
	defer sys.Stop()
	w := traffic.NewBulkWorkload(fab, traffic.BulkConfig{
		Tick: time.Millisecond, BaseRate: 1e5, HeavyRate: 1e8,
		HeavyRatio: 0.25, Seed: 1,
	})
	defer w.Stop()
	fab.Sched().RunFor(500 * time.Millisecond)
	dets := sys.Detections()
	if len(dets) == 0 {
		t.Fatal("no detections")
	}
	heavy := w.HeavyPorts()
	found := false
	for _, d := range dets {
		for _, h := range heavy {
			if d.Switch == h.Switch && d.Port == h.Port {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("detections %v do not include a true heavy port %v", dets, heavy)
	}
}

func TestNoFalsePositivesWithoutHeavy(t *testing.T) {
	fab := testFabric(t, 2, 2)
	sys := Deploy(fab, Config{
		PollInterval:           10 * time.Millisecond,
		HHThresholdBytesPerSec: 1e7,
	})
	defer sys.Stop()
	w := traffic.NewBulkWorkload(fab, traffic.BulkConfig{
		Tick: time.Millisecond, BaseRate: 1e5, HeavyRate: 1e8,
		HeavyRatio: 0, Seed: 1,
	})
	defer w.Stop()
	fab.Sched().RunFor(500 * time.Millisecond)
	if dets := sys.Detections(); len(dets) != 0 {
		t.Fatalf("false positives: %v", dets)
	}
}

// The collection-centric signature: central traffic grows linearly with
// the number of ports, independent of whether anything interesting
// happens.
func TestCentralLoadScalesWithPorts(t *testing.T) {
	load := func(leaves, hosts int) float64 {
		fab := testFabric(t, leaves, hosts)
		sys := Deploy(fab, Config{
			PollInterval:           10 * time.Millisecond,
			HHThresholdBytesPerSec: 1e12, // nothing detected: pure overhead
		})
		defer sys.Stop()
		snap := fab.CentralNet.Snapshot()
		fab.Sched().RunFor(time.Second)
		_, bps := fab.CentralNet.RateSince(snap)
		return bps
	}
	small := load(2, 2)
	big := load(8, 8)
	if small <= 0 {
		t.Fatal("no collector traffic")
	}
	// 4x leaves x 4x hosts ≈ >4x the exported counters.
	if big < small*3 {
		t.Fatalf("central load small=%g big=%g: not scaling with ports", small, big)
	}
}

func TestDetectionLatencyBoundedByIntervals(t *testing.T) {
	fab := testFabric(t, 2, 1)
	sys := Deploy(fab, Config{
		PollInterval:           100 * time.Millisecond,
		HHThresholdBytesPerSec: 1e6,
	})
	defer sys.Stop()
	loop := fab.Sched()
	loop.RunFor(300 * time.Millisecond) // baseline counters exist
	start := loop.Now()
	// Sudden heavy flow.
	var leaf netmodel.SwitchID
	for _, sw := range fab.Topology().Switches() {
		if sw.Name == "leaf0" {
			leaf = sw.ID
		}
	}
	hot := loop.Every(time.Millisecond, func() {
		_ = fab.Switch(leaf).CreditPort(1, 0, 0, 100, 1_000_000)
	})
	defer hot.Stop()
	loop.RunFor(time.Second)
	dets := sys.Detections()
	if len(dets) == 0 {
		t.Fatal("no detection")
	}
	latency := dets[0].At - start
	// Detection requires two polls (rate needs a delta) plus the
	// analysis tick: with a 100 ms period expect 100-400 ms — an order
	// of magnitude above FARM's switch-local detection.
	if latency < 50*time.Millisecond || latency > 500*time.Millisecond {
		t.Fatalf("latency = %v, want ~100-400ms for 100ms polling", latency)
	}
}

// TestSampleExportBatching pins the batched export lane: the collector
// receives the same samples and the same total sample bytes whether
// datagrams carry 1 or 8 samples — only the datagram count shrinks.
func TestSampleExportBatching(t *testing.T) {
	run := func(batch int) (samples, packets, bytes uint64) {
		fab := testFabric(t, 2, 2)
		sys := Deploy(fab, Config{
			PollInterval:           100 * time.Millisecond,
			SampleOneInN:           10,
			SampleExportBatch:      batch,
			HHThresholdBytesPerSec: 1e12,
		})
		defer sys.Stop()
		g := traffic.NewGenerator(fab, 3)
		stop := g.StartFlow(traffic.FlowSpec{
			Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
			SrcPort: 1, DstPort: 80, Proto: 6, PacketSize: 500, Rate: 2000,
		})
		fab.Sched().RunFor(500 * time.Millisecond)
		stop()
		// One more poll period so partial batches flush and land.
		fab.Sched().RunFor(200 * time.Millisecond)
		return sys.SamplesReceived(), fab.CentralNet.Packets(), fab.CentralNet.Bytes()
	}
	s1, p1, b1 := run(1)
	s8, p8, b8 := run(8)
	if s1 == 0 {
		t.Fatal("no samples reached the collector")
	}
	if s8 != s1 {
		t.Fatalf("samples received: batch-8 %d vs batch-1 %d", s8, s1)
	}
	if b8 != b1 {
		t.Fatalf("central bytes: batch-8 %d vs batch-1 %d", b8, b1)
	}
	if p8 >= p1 {
		t.Fatalf("central packets: batch-8 %d not below batch-1 %d", p8, p1)
	}
}

func TestPacketSamplingForwardsToCollector(t *testing.T) {
	fab := testFabric(t, 2, 2)
	sys := Deploy(fab, Config{
		PollInterval:           100 * time.Millisecond,
		SampleOneInN:           10,
		HHThresholdBytesPerSec: 1e12,
	})
	defer sys.Stop()
	g := traffic.NewGenerator(fab, 3)
	stop := g.StartFlow(traffic.FlowSpec{
		Src: fabric.HostIP(0, 0), Dst: fabric.HostIP(1, 0),
		SrcPort: 1, DstPort: 80, Proto: 6, PacketSize: 500, Rate: 2000,
	})
	defer stop()
	fab.Sched().RunFor(500 * time.Millisecond)
	if sys.SamplesReceived() == 0 {
		t.Fatal("no samples reached the collector")
	}
	// ~1000 packets, 1-in-10 sampling, 3 switches on the path: within
	// a loose band (bus backlog may drop some).
	if sys.SamplesReceived() > 400 {
		t.Fatalf("samples = %d, sampling rate not applied", sys.SamplesReceived())
	}
}
